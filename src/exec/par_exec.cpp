#include "exec/par_exec.hpp"

#include <limits>
#include <memory>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace polyast::exec {

namespace {

/// True if `node` or any descendant loop carries a parallelism mark. Used
/// as a fast path: subtrees with no marks are handed to the sequential
/// interpreter in one call instead of being walked node by node.
bool containsParallelMark(const ir::NodePtr& node) {
  switch (node->kind) {
    case ir::Node::Kind::Block: {
      for (const auto& c : std::static_pointer_cast<ir::Block>(node)->children)
        if (containsParallelMark(c)) return true;
      return false;
    }
    case ir::Node::Kind::Loop: {
      auto l = std::static_pointer_cast<ir::Loop>(node);
      if (l->parallel != ir::ParallelKind::None) return true;
      return containsParallelMark(l->body);
    }
    case ir::Node::Kind::Stmt:
      return false;
  }
  return false;
}

/// The single loop child of a pipeline-marked loop's body, or null when the
/// body is not exactly one loop (possibly wrapped in nested blocks).
std::shared_ptr<ir::Loop> soleLoopChild(const ir::NodePtr& body) {
  ir::NodePtr cur = body;
  while (cur->kind == ir::Node::Kind::Block) {
    const auto& kids = std::static_pointer_cast<ir::Block>(cur)->children;
    if (kids.size() != 1) return nullptr;
    cur = kids.front();
  }
  if (cur->kind != ir::Node::Kind::Loop) return nullptr;
  return std::static_pointer_cast<ir::Loop>(cur);
}

bool boundsIndependentOf(const ir::Loop& loop, const std::string& iter) {
  for (const auto& p : loop.lower.parts)
    if (p.coeff(iter) != 0) return false;
  for (const auto& p : loop.upper.parts)
    if (p.coeff(iter) != 0) return false;
  return true;
}

class Walker {
 public:
  Walker(const ir::Program& program, Context& ctx, runtime::ThreadPool& pool)
      : prog_(program), ctx_(ctx), pool_(pool) {
    for (const auto& [k, v] : ctx.params()) env_[k] = v;
  }

  ParallelRunReport run() {
    walk(prog_.root);
    auto& m = obs::Registry::global();
    m.counter("exec.par.doall_loops").add(report_.doallLoops);
    m.counter("exec.par.pipeline_loops").add(report_.pipelineLoops);
    m.counter("exec.par.sequential_fallbacks").add(report_.sequentialFallbacks);
    return std::move(report_);
  }

 private:
  void walk(const ir::NodePtr& node) {
    if (!containsParallelMark(node)) {
      runSubtree(prog_, ctx_, node, env_);
      return;
    }
    switch (node->kind) {
      case ir::Node::Kind::Block: {
        for (const auto& c :
             std::static_pointer_cast<ir::Block>(node)->children)
          walk(c);
        break;
      }
      case ir::Node::Kind::Loop:
        walkLoop(std::static_pointer_cast<ir::Loop>(node));
        break;
      case ir::Node::Kind::Stmt:
        runSubtree(prog_, ctx_, node, env_);
        break;
    }
  }

  std::int64_t evalLower(const ir::Bound& b) const {
    std::int64_t lo = std::numeric_limits<std::int64_t>::min();
    for (const auto& part : b.parts) lo = std::max(lo, part.evaluate(env_));
    return lo;
  }

  std::int64_t evalUpper(const ir::Bound& b) const {
    std::int64_t hi = std::numeric_limits<std::int64_t>::max();
    for (const auto& part : b.parts) hi = std::min(hi, part.evaluate(env_));
    return hi;
  }

  static std::int64_t tripCount(std::int64_t lo, std::int64_t hi,
                                std::int64_t step) {
    return lo < hi ? (hi - lo + step - 1) / step : 0;
  }

  void walkLoop(const std::shared_ptr<ir::Loop>& l) {
    POLYAST_CHECK(l->step >= 1, "non-positive loop step");
    switch (l->parallel) {
      case ir::ParallelKind::Doall:
        runDoall(l);
        return;
      case ir::ParallelKind::Pipeline:
        if (runPipeline(l)) return;
        fallback(l, "pipeline body is not a single rectangular inner loop");
        return;
      case ir::ParallelKind::Reduction:
        fallback(l, "array reduction executed sequentially");
        return;
      case ir::ParallelKind::ReductionPipeline:
        fallback(l, "reduction pipeline executed sequentially");
        return;
      case ir::ParallelKind::None:
        break;
    }
    // Sequential loop enclosing parallel work: iterate here so inner marks
    // still map onto the runtime (one parallel region per iteration, the
    // way an OpenMP backend would run it).
    const std::int64_t lo = evalLower(l->lower);
    const std::int64_t hi = evalUpper(l->upper);
    const bool shadowed = env_.count(l->iter) != 0;
    const std::int64_t saved = shadowed ? env_[l->iter] : 0;
    for (std::int64_t v = lo; v < hi; v += l->step) {
      env_[l->iter] = v;
      walk(l->body);
    }
    if (shadowed)
      env_[l->iter] = saved;
    else
      env_.erase(l->iter);
  }

  void runDoall(const std::shared_ptr<ir::Loop>& l) {
    const std::int64_t lo = evalLower(l->lower);
    const std::int64_t hi = evalUpper(l->upper);
    const std::int64_t trips = tripCount(lo, hi, l->step);
    ++report_.doallLoops;
    if (trips <= 0) return;
    obs::Span span(obs::Tracer::global(), "exec.doall", "exec");
    span.attr("iter", l->iter);
    span.attr("trips", trips);
    const std::int64_t step = l->step;
    const ir::NodePtr body = l->body;
    // Iterations of a doall write disjoint cells, so worker threads may
    // interpret their chunks over the shared Context concurrently.
    runtime::parallelForBlocked(
        pool_, 0, trips, [&](std::int64_t tBegin, std::int64_t tEnd) {
          std::map<std::string, std::int64_t> env = env_;
          for (std::int64_t t = tBegin; t < tEnd; ++t) {
            env[l->iter] = lo + t * step;
            runSubtree(prog_, ctx_, body, env);
          }
        });
  }

  /// Maps `outer` (Pipeline) plus its sole inner loop onto pipeline2D when
  /// the inner bounds do not involve the outer iterator. Returns false if
  /// the shape does not match.
  bool runPipeline(const std::shared_ptr<ir::Loop>& outer) {
    auto inner = soleLoopChild(outer->body);
    if (!inner || !boundsIndependentOf(*inner, outer->iter)) return false;
    POLYAST_CHECK(inner->step >= 1, "non-positive loop step");
    const std::int64_t rLo = evalLower(outer->lower);
    const std::int64_t rHi = evalUpper(outer->upper);
    const std::int64_t cLo = evalLower(inner->lower);
    const std::int64_t cHi = evalUpper(inner->upper);
    const std::int64_t rows = tripCount(rLo, rHi, outer->step);
    const std::int64_t cols = tripCount(cLo, cHi, inner->step);
    ++report_.pipelineLoops;
    if (rows <= 0 || cols <= 0) return true;
    obs::Span span(obs::Tracer::global(), "exec.pipeline", "exec");
    span.attr("outer", outer->iter);
    span.attr("inner", inner->iter);
    span.attr("rows", rows);
    span.attr("cols", cols);
    const ir::NodePtr body = inner->body;
    runtime::pipeline2D(
        pool_, rows, cols, [&](std::int64_t r, std::int64_t c) {
          std::map<std::string, std::int64_t> env = env_;
          env[outer->iter] = rLo + r * outer->step;
          env[inner->iter] = cLo + c * inner->step;
          runSubtree(prog_, ctx_, body, env);
        });
    return true;
  }

  void fallback(const std::shared_ptr<ir::Loop>& l, const std::string& why) {
    ++report_.sequentialFallbacks;
    report_.notes.push_back("loop " + l->iter + " (" +
                            ir::parallelKindName(l->parallel) + "): " + why);
    runSubtree(prog_, ctx_, l, env_);
  }

  const ir::Program& prog_;
  Context& ctx_;
  runtime::ThreadPool& pool_;
  std::map<std::string, std::int64_t> env_;
  ParallelRunReport report_;
};

}  // namespace

std::string ParallelRunReport::summary() const {
  std::ostringstream os;
  os << "parallel execution: " << doallLoops << " doall, " << pipelineLoops
     << " pipeline, " << sequentialFallbacks << " sequential fallback(s)";
  for (const auto& n : notes) os << "\n  - " << n;
  return os.str();
}

ParallelRunReport runParallel(const ir::Program& program, Context& ctx,
                              runtime::ThreadPool& pool) {
  obs::Span span(obs::Tracer::global(), "exec.parallel", "exec");
  span.attr("program", program.name);
  span.attr("threads",
            static_cast<std::int64_t>(pool.threadCount()));
  return Walker(program, ctx, pool).run();
}

}  // namespace polyast::exec
