#include "exec/par_exec.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <sstream>

#include "obs/attrib.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace polyast::exec {

namespace {

/// True if `node` or any descendant loop carries a parallelism mark. Used
/// as a fast path: subtrees with no marks are handed to the sequential
/// interpreter in one call instead of being walked node by node.
bool containsParallelMark(const ir::NodePtr& node) {
  switch (node->kind) {
    case ir::Node::Kind::Block: {
      for (const auto& c : std::static_pointer_cast<ir::Block>(node)->children)
        if (containsParallelMark(c)) return true;
      return false;
    }
    case ir::Node::Kind::Loop: {
      auto l = std::static_pointer_cast<ir::Loop>(node);
      if (l->parallel != ir::ParallelKind::None) return true;
      return containsParallelMark(l->body);
    }
    case ir::Node::Kind::Stmt:
      return false;
  }
  return false;
}

// The shape/privatization queries the walker uses to pick a runtime
// construct (soleLoopChild, boundsIndependentOf, innerBoundsReference,
// privatizableArrays) live in ir/ast.hpp: the native kernel emitter must
// make the exact same mapping decisions at emit time, so both layers
// consume one implementation.
using ir::boundsIndependentOf;
using ir::innerBoundsReference;
using ir::privatizableArrays;
using ir::soleLoopChild;

class Walker {
 public:
  Walker(const ir::Program& program, Context& ctx, runtime::ThreadPool& pool)
      : prog_(program), ctx_(ctx), pool_(pool) {
    for (const auto& [k, v] : ctx.params()) env_[k] = v;
    // Construct-level attribution: index the marked loops once per run
    // (one predicate when hooks are inactive — the walkLoop hot path
    // then never touches the hooks).
    if (obs::constructHooksActive())
      for (const auto& c : ir::collectParallelConstructs(program))
        constructIds_[c.loop.get()] = c.id;
  }

  ParallelRunReport run() {
    walk(prog_.root);
    return std::move(report_);
  }

 private:
  /// Per-worker-thread execution state for one parallel region: the
  /// persistent interpreter (one env per thread, reused across chunks and
  /// cells — not one deep map copy per cell) plus, for reductions, the
  /// thread's private accumulator buffers.
  struct TidState {
    std::vector<std::vector<double>> privBufs;
    BufferOverrides overrides;
    std::unique_ptr<SubtreeRunner> runner;
  };

  /// Builds one TidState per pool thread. `privatized` may be empty (no
  /// overrides installed). The runner starts from the Walker's current
  /// environment, so marks under sequential outer loops see those
  /// iterators' bindings.
  std::vector<TidState> makeTidStates(
      const std::vector<std::string>& privatized) {
    std::vector<TidState> states(pool_.threadCount());
    for (auto& st : states) {
      st.privBufs.reserve(privatized.size());
      for (const auto& name : privatized) {
        st.privBufs.emplace_back(ctx_.buffer(name).size(), 0.0);
        st.overrides[name] = st.privBufs.back().data();
      }
      st.runner = std::make_unique<SubtreeRunner>(
          prog_, ctx_, privatized.empty() ? nullptr : &st.overrides);
      for (const auto& [k, v] : env_) st.runner->bind(k, v);
    }
    return states;
  }

  /// Sums every thread's private accumulator buffers into the shared
  /// arrays (parallel over each array).
  void mergePrivatized(std::vector<TidState>& states,
                       const std::vector<std::string>& privatized) {
    const unsigned threads = pool_.threadCount();
    for (std::size_t k = 0; k < privatized.size(); ++k) {
      std::vector<double>& target = ctx_.buffer(privatized[k]);
      runtime::parallelForBlocked(
          pool_, 0, static_cast<std::int64_t>(target.size()),
          [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t i = lo; i < hi; ++i) {
              double sum = 0.0;
              for (unsigned t = 0; t < threads; ++t)
                sum += states[t].privBufs[k][static_cast<std::size_t>(i)];
              target[static_cast<std::size_t>(i)] += sum;
            }
          });
    }
  }

  void walk(const ir::NodePtr& node) {
    if (!containsParallelMark(node)) {
      runSubtree(prog_, ctx_, node, env_);
      return;
    }
    switch (node->kind) {
      case ir::Node::Kind::Block: {
        for (const auto& c :
             std::static_pointer_cast<ir::Block>(node)->children)
          walk(c);
        break;
      }
      case ir::Node::Kind::Loop:
        walkLoop(std::static_pointer_cast<ir::Loop>(node));
        break;
      case ir::Node::Kind::Stmt:
        runSubtree(prog_, ctx_, node, env_);
        break;
    }
  }

  std::int64_t evalLower(const ir::Loop& l) const {
    POLYAST_CHECK(!l.lower.parts.empty(),
                  "loop '" + l.iter + "' has an empty lower bound list");
    std::int64_t lo = std::numeric_limits<std::int64_t>::min();
    for (const auto& part : l.lower.parts)
      lo = std::max(lo, part.evaluate(env_));
    return lo;
  }

  std::int64_t evalUpper(const ir::Loop& l) const {
    POLYAST_CHECK(!l.upper.parts.empty(),
                  "loop '" + l.iter + "' has an empty upper bound list");
    std::int64_t hi = std::numeric_limits<std::int64_t>::max();
    for (const auto& part : l.upper.parts)
      hi = std::min(hi, part.evaluate(env_));
    return hi;
  }

  static std::int64_t tripCount(std::int64_t lo, std::int64_t hi,
                                std::int64_t step) {
    return lo < hi ? (hi - lo + step - 1) / step : 0;
  }

  void walkLoop(const std::shared_ptr<ir::Loop>& l) {
    POLYAST_CHECK(l->step >= 1, "non-positive loop step");
    // Attribution bracket around the whole dispatch (including the
    // sequential fallbacks below): one enter/exit pair per dynamic
    // encounter, fired even when the trip space turns out empty — the
    // exact semantics the native emitter compiles into kernel TUs.
    struct ConstructGuard {
      std::int64_t id = -1;
      ~ConstructGuard() {
        if (id >= 0) obs::constructExit(id);
      }
    } guard;
    if (l->parallel != ir::ParallelKind::None && !constructIds_.empty()) {
      auto it = constructIds_.find(l.get());
      if (it != constructIds_.end()) {
        guard.id = it->second;
        const std::string kind = ir::parallelKindName(l->parallel);
        obs::constructEnter(guard.id, kind.c_str(), l->iter.c_str());
      }
    }
    switch (l->parallel) {
      case ir::ParallelKind::Doall:
        runDoall(l);
        return;
      case ir::ParallelKind::Pipeline:
        if (runPipeline(l, /*withReduction=*/false)) return;
        fallback(l, "pipeline body is not a chained loop nest");
        return;
      case ir::ParallelKind::Reduction:
        runReduction(l);
        return;
      case ir::ParallelKind::ReductionPipeline:
        if (runPipeline(l, /*withReduction=*/true)) return;
        fallback(l, "reduction pipeline body is not a chained loop nest");
        return;
      case ir::ParallelKind::None:
        break;
    }
    // Sequential loop enclosing parallel work: iterate here so inner marks
    // still map onto the runtime (one parallel region per iteration, the
    // way an OpenMP backend would run it).
    const std::int64_t lo = evalLower(*l);
    const std::int64_t hi = evalUpper(*l);
    const bool shadowed = env_.count(l->iter) != 0;
    const std::int64_t saved = shadowed ? env_[l->iter] : 0;
    for (std::int64_t v = lo; v < hi; v += l->step) {
      env_[l->iter] = v;
      walk(l->body);
    }
    if (shadowed)
      env_[l->iter] = saved;
    else
      env_.erase(l->iter);
  }

  void runDoall(const std::shared_ptr<ir::Loop>& l) {
    const std::int64_t lo = evalLower(*l);
    const std::int64_t hi = evalUpper(*l);
    const std::int64_t trips = tripCount(lo, hi, l->step);
    ++report_.doallLoops;
    if (trips <= 0) return;
    obs::Span span(obs::Tracer::global(), "exec.doall", "exec");
    span.attr("iter", l->iter);
    span.attr("trips", trips);
    // Imbalanced trip spaces (inner bounds referencing the doall iterator)
    // would leave static chunks lopsided; claim shrinking blocks off a
    // shared counter instead.
    runtime::ForOptions opts;
    if (innerBoundsReference(l->body, l->iter)) {
      opts.schedule = runtime::Schedule::Guided;
      opts.minBlock = 1;
      ++report_.guidedLoops;
    }
    span.attr("schedule",
              opts.schedule == runtime::Schedule::Guided ? "guided"
                                                         : "static");
    const std::int64_t step = l->step;
    const ir::NodePtr body = l->body;
    // Iterations of a doall write disjoint cells, so worker threads may
    // interpret their chunks over the shared Context concurrently. Each
    // thread reuses one persistent environment across all its chunks.
    std::vector<TidState> states = makeTidStates({});
    runtime::parallelForBlocked(
        pool_, 0, trips,
        [&](unsigned tid, std::int64_t tBegin, std::int64_t tEnd) {
          SubtreeRunner& r = *states[tid].runner;
          for (std::int64_t t = tBegin; t < tEnd; ++t) {
            r.bind(l->iter, lo + t * step);
            r.run(body);
          }
        },
        opts);
  }

  void runReduction(const std::shared_ptr<ir::Loop>& l) {
    const std::int64_t lo = evalLower(*l);
    const std::int64_t hi = evalUpper(*l);
    const std::int64_t trips = tripCount(lo, hi, l->step);
    ++report_.reductionLoops;
    if (trips <= 0) return;
    const std::vector<std::string> privatized = privatizableArrays(l);
    obs::Span span(obs::Tracer::global(), "exec.reduction", "exec");
    span.attr("iter", l->iter);
    span.attr("trips", trips);
    span.attr("privatized", static_cast<std::int64_t>(privatized.size()));
    const std::int64_t step = l->step;
    const ir::NodePtr body = l->body;
    if (privatized.empty()) {
      // No accumulate-only array: a valid mark then has no carried
      // dependence at all, so a plain blocked doall is equivalent.
      std::vector<TidState> states = makeTidStates({});
      runtime::parallelForBlocked(
          pool_, 0, trips,
          [&](unsigned tid, std::int64_t tBegin, std::int64_t tEnd) {
            SubtreeRunner& r = *states[tid].runner;
            for (std::int64_t t = tBegin; t < tEnd; ++t) {
              r.bind(l->iter, lo + t * step);
              r.run(body);
            }
          },
          runtime::ForOptions{});
      return;
    }
    std::vector<runtime::ReduceTarget> targets;
    targets.reserve(privatized.size());
    for (const auto& name : privatized) {
      std::vector<double>& buf = ctx_.buffer(name);
      targets.push_back({buf.data(), buf.size()});
    }
    runtime::parallelReduce(
        pool_, 0, trips, targets,
        [&](unsigned tid, const std::vector<double*>& priv,
            std::int64_t tBegin, std::int64_t tEnd) {
          (void)tid;
          // The runtime zero-initializes `priv`; route every access to a
          // privatized array there, run the chunk, and let the runtime
          // merge the partial sums into the shared targets.
          BufferOverrides overrides;
          for (std::size_t k = 0; k < privatized.size(); ++k)
            overrides[privatized[k]] = priv[k];
          SubtreeRunner r(prog_, ctx_, &overrides);
          for (const auto& [k, v] : env_) r.bind(k, v);
          for (std::int64_t t = tBegin; t < tEnd; ++t) {
            r.bind(l->iter, lo + t * step);
            r.run(body);
          }
        });
  }

  /// Maps a Pipeline / ReductionPipeline mark onto the runtime's doacross
  /// executors, preferring the deepest shape the mark's sync depth and the
  /// nest's structure allow:
  ///
  ///   1. pipeline3D  — depth >= 3 and a 3-deep chain whose inner bounds
  ///      are independent of the outer chain iterators (rectangular grid).
  ///   2. pipeline2D  — chained inner loop with bounds independent of the
  ///      outer iterator (rectangular grid).
  ///   3. pipelineDynamic2D — chained inner loop whose bounds reference
  ///      the outer iterator (triangular/trapezoidal grid). The per-row
  ///      cell counts and the row-relative await counts come from
  ///      evaluating the inner bounds per outer iteration; the affine
  ///      bounds keep the value space convex (empty rows only at the
  ///      ends), and a shared per-row stride lattice — verified
  ///      numerically, e.g. skewed stencils where the inner origin shifts
  ///      by a multiple of the step each row — gives transitive coverage.
  ///
  /// Falling back from a deeper shape to a shallower one is always sound:
  /// a dependence with componentwise non-negative distance on d levels is
  /// ordered a fortiori when only a prefix of those levels is synchronized
  /// cell-by-cell and the rest runs sequentially inside the cell.
  ///
  /// Returns false when no shape matches (the caller falls back).
  bool runPipeline(const std::shared_ptr<ir::Loop>& outer,
                   bool withReduction) {
    auto inner = soleLoopChild(outer->body);
    if (!inner) return false;
    POLYAST_CHECK(inner->step >= 1, "non-positive loop step");
    const std::int64_t depth =
        outer->pipelineDepth > 0 ? outer->pipelineDepth : 2;
    const std::vector<std::string> privatized =
        withReduction ? privatizableArrays(outer) : std::vector<std::string>();
    auto& counter =
        withReduction ? report_.reductionPipelineLoops : report_.pipelineLoops;

    // ---- pipeline3D: 3-deep rectangular chain, mark depth >= 3 ----------
    auto third = depth >= 3 ? soleLoopChild(inner->body) : nullptr;
    if (third && boundsIndependentOf(*inner, outer->iter) &&
        boundsIndependentOf(*third, outer->iter) &&
        boundsIndependentOf(*third, inner->iter)) {
      POLYAST_CHECK(third->step >= 1, "non-positive loop step");
      const std::int64_t pLo = evalLower(*outer);
      const std::int64_t rLo = evalLower(*inner);
      const std::int64_t cLo = evalLower(*third);
      const std::int64_t planes =
          tripCount(pLo, evalUpper(*outer), outer->step);
      const std::int64_t rows = tripCount(rLo, evalUpper(*inner), inner->step);
      const std::int64_t cols = tripCount(cLo, evalUpper(*third), third->step);
      ++counter;
      ++report_.pipeline3dLoops;
      if (planes <= 0 || rows <= 0 || cols <= 0) return true;
      obs::Span span(obs::Tracer::global(), "exec.pipeline3d", "exec");
      span.attr("outer", outer->iter);
      span.attr("planes", planes);
      span.attr("rows", rows);
      span.attr("cols", cols);
      const ir::NodePtr body = third->body;
      std::vector<TidState> states = makeTidStates(privatized);
      runtime::pipeline3D(
          pool_, planes, rows, cols,
          [&](std::int64_t p, std::int64_t r, std::int64_t c) {
            SubtreeRunner& run =
                *states[runtime::ThreadPool::currentTid()].runner;
            run.bind(outer->iter, pLo + p * outer->step);
            run.bind(inner->iter, rLo + r * inner->step);
            run.bind(third->iter, cLo + c * third->step);
            run.run(body);
          });
      mergePrivatized(states, privatized);
      return true;
    }

    // ---- pipeline2D: rectangular chained inner loop ---------------------
    if (boundsIndependentOf(*inner, outer->iter)) {
      const std::int64_t rLo = evalLower(*outer);
      const std::int64_t cLo = evalLower(*inner);
      const std::int64_t rows = tripCount(rLo, evalUpper(*outer), outer->step);
      const std::int64_t cols = tripCount(cLo, evalUpper(*inner), inner->step);
      ++counter;
      if (rows <= 0 || cols <= 0) return true;
      obs::Span span(obs::Tracer::global(), "exec.pipeline", "exec");
      span.attr("outer", outer->iter);
      span.attr("inner", inner->iter);
      span.attr("rows", rows);
      span.attr("cols", cols);
      const ir::NodePtr body = inner->body;
      std::vector<TidState> states = makeTidStates(privatized);
      runtime::pipeline2D(
          pool_, rows, cols, [&](std::int64_t r, std::int64_t c) {
            SubtreeRunner& run =
                *states[runtime::ThreadPool::currentTid()].runner;
            run.bind(outer->iter, rLo + r * outer->step);
            run.bind(inner->iter, cLo + c * inner->step);
            run.run(body);
          });
      mergePrivatized(states, privatized);
      return true;
    }

    // ---- pipelineDynamic2D: triangular/trapezoidal inner bounds ---------
    const std::int64_t rLo = evalLower(*outer);
    const std::int64_t rows = tripCount(rLo, evalUpper(*outer), outer->step);
    const std::int64_t s = inner->step;
    if (rows <= 0) {
      ++counter;
      ++report_.pipelineDynamicLoops;
      return true;
    }
    // Per-row column ranges from the inner bounds at each outer value.
    std::vector<std::int64_t> rowLo(static_cast<std::size_t>(rows));
    std::vector<std::int64_t> rowCols(static_cast<std::size_t>(rows));
    {
      const bool shadowed = env_.count(outer->iter) != 0;
      const std::int64_t saved = shadowed ? env_[outer->iter] : 0;
      for (std::int64_t r = 0; r < rows; ++r) {
        env_[outer->iter] = rLo + r * outer->step;
        const std::int64_t lo = evalLower(*inner);
        const std::int64_t hi = evalUpper(*inner);
        rowLo[static_cast<std::size_t>(r)] = lo;
        rowCols[static_cast<std::size_t>(r)] =
            lo < hi ? (hi - lo + s - 1) / s : 0;
      }
      if (shadowed)
        env_[outer->iter] = saved;
      else
        env_.erase(outer->iter);
    }
    // Transitive coverage (a dependence skipping rows is still ordered by
    // the chained row-to-row awaits) needs a value j0 <= j1 <= j2 in every
    // intermediate row — guaranteed when all rows sample one stride-s
    // lattice (convexity of the affine bounds gives the interval; shared
    // phase gives the lattice point). Mixed phases fall back.
    {
      std::int64_t firstRow = -1;
      for (std::int64_t r = 0; r < rows; ++r)
        if (rowCols[static_cast<std::size_t>(r)] > 0) {
          if (firstRow < 0) firstRow = r;
          const std::int64_t delta = rowLo[static_cast<std::size_t>(r)] -
                                     rowLo[static_cast<std::size_t>(firstRow)];
          if (((delta % s) + s) % s != 0) return false;
        }
    }
    ++counter;
    ++report_.pipelineDynamicLoops;
    obs::Span span(obs::Tracer::global(), "exec.pipeline_dynamic", "exec");
    span.attr("outer", outer->iter);
    span.attr("inner", inner->iter);
    span.attr("rows", rows);
    const ir::NodePtr body = inner->body;
    std::vector<TidState> states = makeTidStates(privatized);
    runtime::pipelineDynamic2D(
        pool_, rowCols,
        [&](std::int64_t r, std::int64_t c) {
          // Cell (r, c) holds inner value j = rowLo[r] + c*s; it must
          // await every previous-row cell with value <= j (componentwise
          // non-negative distances in *value* space). The phase check
          // above makes the division exact; the runtime clamps to the
          // previous row's length.
          return (rowLo[static_cast<std::size_t>(r)] + c * s -
                  rowLo[static_cast<std::size_t>(r - 1)]) /
                     s +
                 1;
        },
        [&](std::int64_t r, std::int64_t c) {
          SubtreeRunner& run =
              *states[runtime::ThreadPool::currentTid()].runner;
          run.bind(outer->iter, rLo + r * outer->step);
          run.bind(inner->iter, rowLo[static_cast<std::size_t>(r)] + c * s);
          run.run(body);
        });
    mergePrivatized(states, privatized);
    return true;
  }

  void fallback(const std::shared_ptr<ir::Loop>& l, const std::string& why) {
    ++report_.sequentialFallbacks;
    report_.notes.push_back("loop " + l->iter + " (" +
                            ir::parallelKindName(l->parallel) + "): " + why);
    runSubtree(prog_, ctx_, l, env_);
  }

  const ir::Program& prog_;
  Context& ctx_;
  runtime::ThreadPool& pool_;
  std::map<std::string, std::int64_t> env_;
  /// Marked loop -> attribution construct id; empty when hooks inactive.
  std::map<const ir::Loop*, std::int64_t> constructIds_;
  ParallelRunReport report_;
};

}  // namespace

std::string ParallelRunReport::summary() const {
  std::ostringstream os;
  os << "parallel execution [" << backend << "]: " << doallLoops
     << " doall (" << guidedLoops << " guided), " << reductionLoops
     << " reduction, " << pipelineLoops << " pipeline ("
     << pipelineDynamicLoops << " dynamic, " << pipeline3dLoops << " 3d), "
     << reductionPipelineLoops << " reduction-pipeline, "
     << sequentialFallbacks << " sequential fallback(s)";
  if (nativeCompiles + nativeCacheHits + nativeFallbacks > 0)
    os << "; native: " << nativeCompiles << " compile(s), "
       << nativeCacheHits << " cache hit(s), " << nativeFallbacks
       << " backend fallback(s)";
  for (const auto& n : notes) os << "\n  - " << n;
  return os.str();
}

void recordRunMetrics(const ParallelRunReport& report) {
  auto& m = obs::Registry::global();
  m.counter("exec.par.doall_loops").add(report.doallLoops);
  m.counter("exec.par.guided_loops").add(report.guidedLoops);
  m.counter("exec.par.reduction_loops").add(report.reductionLoops);
  m.counter("exec.par.pipeline_loops").add(report.pipelineLoops);
  m.counter("exec.par.pipeline_dynamic_loops")
      .add(report.pipelineDynamicLoops);
  m.counter("exec.par.pipeline3d_loops").add(report.pipeline3dLoops);
  m.counter("exec.par.reduction_pipeline_loops")
      .add(report.reductionPipelineLoops);
  m.counter("exec.par.sequential_fallbacks").add(report.sequentialFallbacks);
  if (report.nativeCompiles > 0)
    m.counter("exec.native.compiles").add(report.nativeCompiles);
  if (report.nativeCacheHits > 0)
    m.counter("exec.native.cache_hits").add(report.nativeCacheHits);
  if (report.nativeFallbacks > 0)
    m.counter("exec.native.fallbacks").add(report.nativeFallbacks);
  m.note("exec.backend", report.backend);
}

ParallelRunReport runParallel(const ir::Program& program, Context& ctx,
                              runtime::ThreadPool& pool,
                              obs::PerfAggregate* perf) {
  obs::Span span(obs::Tracer::global(), "exec.parallel", "exec");
  span.attr("program", program.name);
  span.attr("threads",
            static_cast<std::int64_t>(pool.threadCount()));
  span.attr("backend", "interp");
  if (perf) pool.runOnAll([&](unsigned) { perf->beginThread(); });
  // Per-construct attribution, bracketed tightly around the walk (the
  // native backend brackets its own kernel entry the same way, so this
  // also covers its degraded-to-interpreter path with the right backend).
  obs::ConstructProfiler* cprof = obs::ConstructProfiler::current();
  if (cprof) cprof->beginRun("interp");
  ParallelRunReport report = Walker(program, ctx, pool).run();
  if (cprof) cprof->endRun();
  if (perf) pool.runOnAll([&](unsigned) { perf->endThread(); });
  recordRunMetrics(report);
  return report;
}

}  // namespace polyast::exec
