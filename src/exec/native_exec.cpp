#include "exec/native_exec.hpp"

#include <dlfcn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "ir/cemit.hpp"
#include "obs/attrib.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/capi.hpp"
#include "support/error.hpp"

// The emitter and the shim must agree on the kernel ABI; bump both
// constants together (see runtime/capi.hpp).
static_assert(polyast::ir::kNativeKernelAbi == POLYAST_CAPI_ABI_VERSION,
              "ir/cemit.hpp and runtime/capi.hpp ABI versions diverged");

namespace polyast::exec {

namespace {

namespace fs = std::filesystem;

using KernelEntry = void (*)(const polyast_kernel_args*);

std::string envOr(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? v : fallback;
}

/// POSIX shell single-quoting: safe for any byte sequence including
/// spaces, quotes and metacharacters (a ' becomes '\'' ).
std::string shellQuote(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

/// std::system with the wait status decoded: the raw return value is a
/// wait(2) status, not an exit code — comparing it to 0 happens to work
/// but misreads signal deaths. Returns the exit code, or -1 when the
/// shell could not run or the child died on a signal.
int runShell(const std::string& cmd) {
  const int rc = std::system(cmd.c_str());
  if (rc == -1) return -1;
  if (WIFEXITED(rc)) return WEXITSTATUS(rc);
  return -1;
}

/// First usable C compiler: $POLYAST_JIT_CC, $CC, then the first of
/// cc/gcc/clang on PATH. Empty when none exists. The env lookups stay
/// fresh per call (tests repoint $POLYAST_JIT_CC between backends); the
/// PATH scan is cached per process — it spawns a shell, which is
/// measurable in suites constructing hundreds of backends.
std::string findCompiler() {
  std::string fromEnv = envOr("POLYAST_JIT_CC", envOr("CC", ""));
  if (!fromEnv.empty()) return fromEnv;
  static const std::string scanned = []() -> std::string {
    for (const char* cand : {"cc", "gcc", "clang"})
      if (runShell(std::string("command -v ") + cand +
                   " >/dev/null 2>&1") == 0)
        return cand;
    return "";
  }();
  return scanned;
}

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (char c : s)
    h = (h ^ static_cast<std::uint64_t>(static_cast<unsigned char>(c))) *
        1099511628211ULL;
  return h;
}

/// Cache key: the TU text, the exact compile command shape, the compiler
/// identity/version probe, and the capi ABI version — any of them changing
/// must miss the cache. The version component is what keeps a cache
/// shared across toolchain upgrades honest: the same `cc` name pointing
/// at a different compiler must not serve stale objects.
std::string contentKey(const std::string& tu, const std::string& spec,
                       const std::string& compilerVersion) {
  std::uint64_t h = 1469598103934665603ULL;
  h = fnv1a(h, tu);
  h = fnv1a(h, "\x1f");
  h = fnv1a(h, spec);
  h = fnv1a(h, "\x1f");
  h = fnv1a(h, compilerVersion);
  h = fnv1a(h, "\x1f");
  h = fnv1a(h, std::to_string(POLYAST_CAPI_ABI_VERSION));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string readFileTail(const std::string& path, std::size_t maxBytes) {
  std::ifstream in(path);
  if (!in) return "";
  std::stringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
    text.pop_back();
  if (text.size() > maxBytes)
    text = "..." + text.substr(text.size() - maxBytes);
  for (char& c : text)
    if (c == '\n') c = ' ';
  return text;
}

struct LoadedKernel {
  void* handle = nullptr;
  KernelEntry entry = nullptr;
  std::string error;  ///< why this program cannot run natively
  /// Stable category of `error` for metrics ("disabled", "no-compiler",
  /// "cache-io", "compile-error", "simd-compile-error", "dlopen-error",
  /// "dlsym-error", "abi-mismatch"); empty when the kernel loaded.
  std::string errorKind;
  /// Informational note attached to every run of this kernel (set on the
  /// scalar retry kernel when the toolchain rejected the SIMD TU).
  std::string note;
  /// Consumed by the next run()'s report, so bench loops that reuse a
  /// prepared kernel do not re-report the one-time compile every
  /// iteration.
  std::int64_t pendingCompiles = 0;
  std::int64_t pendingCacheHits = 0;
};

}  // namespace

struct NativeBackend::Impl {
  NativeBackendOptions opts;
  bool disabled = false;
  std::string disabledReason;
  std::string compiler;
  std::map<std::string, LoadedKernel> kernels;  // by content key
  std::string lastReason;  ///< degradedReason() of the latest prepare
  bool lastUsedSimd = false;  ///< latest prepared kernel is the SIMD TU

  /// Compiler identity probe (`cc --version`), folded into every cache
  /// key. Cached per backend instance — not per process — so tests (and
  /// long-lived hosts) that swap the toolchain behind an unchanged name
  /// observe fresh keys from a fresh backend.
  bool versionProbed = false;
  std::string compilerVersion;

  /// Lazy `-march=native` acceptance probe for SIMD TUs (rejected by e.g.
  /// aarch64 gcc, where the spelling is -mcpu). Probed at most once.
  bool marchProbed = false;
  std::string marchFlag;

  ~Impl() {
    for (auto& [key, k] : kernels)
      if (k.handle) dlclose(k.handle);
  }

  const std::string& compilerVersionId() {
    if (versionProbed || compiler.empty()) return compilerVersion;
    versionProbed = true;
    // The compiler string may legitimately carry flags ($CC="gcc -m32"),
    // so it is interpolated unquoted, like the compile command itself.
    FILE* p = popen((compiler + " --version 2>&1").c_str(), "r");
    if (p) {
      char buf[256];
      while (std::fgets(buf, sizeof(buf), p)) compilerVersion += buf;
      pclose(p);
    }
    return compilerVersion;
  }

  const std::string& nativeArchFlag() {
    if (marchProbed || compiler.empty()) return marchFlag;
    marchProbed = true;
    const fs::path dir = jitCacheDir(opts);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) return marchFlag;
    const std::string stem = "march-probe-" + std::to_string(getpid());
    const fs::path src = dir / (stem + ".c");
    const fs::path out = dir / (stem + ".so");
    {
      std::ofstream o(src);
      o << "int polyast_march_probe;\n";
      if (!o) return marchFlag;
    }
    const std::string cmd = compiler +
                            " -std=c11 -O2 -fPIC -shared -march=native -o " +
                            shellQuote(out.string()) + " " +
                            shellQuote(src.string()) + " >/dev/null 2>&1";
    if (runShell(cmd) == 0) marchFlag = " -march=native";
    fs::remove(src, ec);
    fs::remove(out, ec);
    return marchFlag;
  }

  std::string compileSpec(bool simdTu) {
    std::string spec =
        compiler + " -std=c11 -O2 -fPIC -shared -ffp-contract=off -Wall";
    if (simdTu) spec += " -fopenmp-simd" + nativeArchFlag();
    for (const auto& f : opts.extraFlags) spec += " " + f;
    return spec;
  }

  /// Emit the right TU shape for the program and load it, retrying a
  /// toolchain-rejected SIMD TU with the scalar TU (still a native run —
  /// the interpreter fallback is only for kernels that cannot load at
  /// all).
  LoadedKernel& prepareProgram(const ir::Program& program) {
    if (ir::programHasMicroKernels(program)) {
      LoadedKernel& k = prepareTu(ir::emitNativeKernelTU(program), true);
      if (k.entry || k.errorKind != "simd-compile-error") {
        lastUsedSimd = k.entry != nullptr;
        return k;
      }
      ir::NativeTUOptions scalarOpt;
      scalarOpt.simd = false;
      LoadedKernel& s =
          prepareTu(ir::emitNativeKernelTU(program, scalarOpt), false);
      if (s.note.empty())
        s.note = "native simd TU rejected by toolchain"
                 " [simd-compile-error]; running scalar native: " +
                 k.error;
      lastUsedSimd = false;
      return s;
    }
    lastUsedSimd = false;
    return prepareTu(ir::emitNativeKernelTU(program), false);
  }

  LoadedKernel& prepareTu(const std::string& tu, bool simdTu) {
    const std::string key =
        contentKey(tu, disabled ? "off" : compileSpec(simdTu),
                   disabled ? "" : compilerVersionId());
    auto [it, fresh] = kernels.try_emplace(key);
    LoadedKernel& k = *&it->second;
    if (!fresh) {
      lastReason = k.error;
      return k;
    }
    if (disabled) {
      k.error = disabledReason;
      k.errorKind = "disabled";
      lastReason = k.error;
      return k;
    }
    if (compiler.empty()) {
      k.error =
          "no C compiler found (tried $POLYAST_JIT_CC, $CC, cc, gcc, clang)";
      k.errorKind = "no-compiler";
      lastReason = k.error;
      return k;
    }

    const fs::path dir = jitCacheDir(opts);
    const fs::path so = dir / (key + ".so");
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
      k.error = "cannot create JIT cache dir " + dir.string() + ": " +
                ec.message();
      k.errorKind = "cache-io";
      lastReason = k.error;
      return k;
    }

    if (fs::exists(so, ec)) {
      k.pendingCacheHits = 1;
    } else {
      const fs::path src = dir / (key + ".c");
      const fs::path log = dir / (key + ".log");
      const fs::path tmp =
          dir / (key + ".so.tmp." + std::to_string(getpid()));
      {
        std::ofstream out(src);
        out << tu;
        if (!out) {
          k.error = "cannot write " + src.string();
          k.errorKind = "cache-io";
          lastReason = k.error;
          return k;
        }
      }
      // Compile to a private temp name, then rename: concurrent processes
      // racing on one cache entry each publish a complete object.
      const std::string cmd = compileSpec(simdTu) + " -o " +
                              shellQuote(tmp.string()) + " " +
                              shellQuote(src.string()) + " -lm 2>" +
                              shellQuote(log.string());
      if (runShell(cmd) != 0) {
        k.error = "compile failed (" + compiler +
                  "): " + readFileTail(log.string(), 400);
        k.errorKind = simdTu ? "simd-compile-error" : "compile-error";
        if (simdTu) {
          auto& m = obs::Registry::global();
          m.counter("exec.native.fallback.simd-compile-error").add(1);
          m.note("exec.native.simd_degraded", k.error);
        }
        lastReason = k.error;
        return k;
      }
      fs::rename(tmp, so, ec);
      if (ec) {
        k.error = "cannot publish " + so.string() + ": " + ec.message();
        k.errorKind = "cache-io";
        lastReason = k.error;
        return k;
      }
      k.pendingCompiles = 1;
    }

    k.handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!k.handle) {
      const char* err = dlerror();
      k.error = std::string("dlopen failed: ") + (err ? err : "(unknown)");
      k.errorKind = "dlopen-error";
      lastReason = k.error;
      return k;
    }
    auto abi = reinterpret_cast<std::int64_t (*)(void)>(
        dlsym(k.handle, "polyast_kernel_abi"));
    auto entry =
        reinterpret_cast<KernelEntry>(dlsym(k.handle, "polyast_kernel_run"));
    if (!abi || !entry) {
      k.error = "dlsym failed: kernel entry points missing";
      k.errorKind = "dlsym-error";
    } else if (abi() != POLYAST_CAPI_ABI_VERSION) {
      k.error = "kernel ABI v" + std::to_string(abi()) +
                " does not match runtime ABI v" +
                std::to_string(POLYAST_CAPI_ABI_VERSION);
      k.errorKind = "abi-mismatch";
    } else {
      k.entry = entry;
    }
    if (!k.error.empty()) {
      dlclose(k.handle);
      k.handle = nullptr;
      // A published object that loads but exports the wrong (or no) kernel
      // ABI can only be a stale artifact (e.g. written by an older build
      // whose cache key hashed the same inputs differently) — evict it so
      // the next backend instance recompiles instead of re-degrading on
      // every run forever.
      std::error_code evictEc;
      if (fs::remove(so, evictEc))
        k.error += " (evicted stale " + so.filename().string() + ")";
    }
    lastReason = k.error;
    return k;
  }
};

NativeBackend::NativeBackend(NativeBackendOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->opts = std::move(options);
  if (impl_->opts.forceOff) {
    impl_->disabled = true;
    impl_->disabledReason = "native JIT forced off";
  } else if (jitDisabledByEnv()) {
    impl_->disabled = true;
    impl_->disabledReason = "native JIT disabled by POLYAST_JIT";
  } else {
    impl_->compiler = findCompiler();
  }
}

NativeBackend::~NativeBackend() = default;

void NativeBackend::prepare(const ir::Program& program) {
  impl_->prepareProgram(program);
}

std::string NativeBackend::degradedReason() const {
  return impl_->lastReason;
}

bool NativeBackend::usedSimd() const { return impl_->lastUsedSimd; }

ParallelRunReport NativeBackend::run(const ir::Program& program,
                                     Context& ctx,
                                     runtime::ThreadPool& pool,
                                     obs::PerfAggregate* perf) {
  LoadedKernel& k = impl_->prepareProgram(program);
  if (!k.entry) {
    // Degrade to the interpreter (which records its own run metrics), and
    // make the degradation itself observable.
    ParallelRunReport report = runParallel(program, ctx, pool, perf);
    report.nativeFallbacks = 1;
    report.notes.push_back("native backend degraded to interpreter [" +
                           k.errorKind + "]: " + k.error);
    auto& m = obs::Registry::global();
    m.counter("exec.native.fallbacks").add(1);
    m.note("exec.native.degraded", k.error);
    // The stable category ("no-compiler", "compile-error", "dlopen-error",
    // "abi-mismatch", ...) as its own named note, so --obs-summary readers
    // and dashboards can key on *why* without parsing the prose.
    m.note("exec.native.degraded_reason", k.errorKind);
    m.counter("exec.native.fallback." + k.errorKind).add(1);
    return report;
  }

  obs::Span span(obs::Tracer::global(), "exec.parallel", "exec");
  span.attr("program", program.name);
  span.attr("threads", static_cast<std::int64_t>(pool.threadCount()));
  span.attr("backend", "native");

  std::vector<std::int64_t> params;
  params.reserve(program.params.size());
  for (const auto& name : program.params) params.push_back(ctx.param(name));
  std::vector<double*> buffers;
  buffers.reserve(program.arrays.size());
  for (const auto& a : program.arrays)
    buffers.push_back(ctx.buffer(a.name).data());

  polyast_kernel_args args;
  args.params = params.data();
  args.buffers = buffers.data();
  args.pool = &pool;
  args.rt = polyast_runtime_api_get();

  runtime::capi::resetRunCounters();
  if (perf) pool.runOnAll([&](unsigned) { perf->beginThread(); });
  // Per-construct attribution: the kernel reports construct boundaries
  // back through args.rt->construct_enter/exit on this (driving) thread.
  obs::ConstructProfiler* cprof = obs::ConstructProfiler::current();
  if (cprof) cprof->beginRun("native");
  k.entry(&args);
  if (cprof) cprof->endRun();
  if (perf) pool.runOnAll([&](unsigned) { perf->endThread(); });
  const runtime::capi::RunCounters counters =
      runtime::capi::takeRunCounters();

  ParallelRunReport report;
  report.backend = "native";
  report.doallLoops = counters.doallLoops;
  report.guidedLoops = counters.guidedLoops;
  report.reductionLoops = counters.reductionLoops;
  report.pipelineLoops = counters.pipelineLoops;
  report.pipelineDynamicLoops = counters.pipelineDynamicLoops;
  report.pipeline3dLoops = counters.pipeline3dLoops;
  report.reductionPipelineLoops = counters.reductionPipelineLoops;
  report.sequentialFallbacks = counters.sequentialFallbacks;
  report.notes = counters.notes;
  if (!k.note.empty()) report.notes.push_back(k.note);
  report.nativeCompiles = k.pendingCompiles;
  report.nativeCacheHits = k.pendingCacheHits;
  k.pendingCompiles = 0;
  k.pendingCacheHits = 0;
  recordRunMetrics(report);
  return report;
}

std::string jitCacheDir(const NativeBackendOptions& options) {
  if (!options.cacheDir.empty()) return options.cacheDir;
  std::string fromEnv = envOr("POLYAST_JIT_CACHE", "");
  if (!fromEnv.empty()) return fromEnv;
  return "/tmp/polyast-jit-" + std::to_string(getuid());
}

bool jitDisabledByEnv() {
  const char* v = std::getenv("POLYAST_JIT");
  if (!v) return false;
  const std::string s = v;
  return s == "off" || s == "0" || s == "false";
}

}  // namespace polyast::exec
