// Parallel execution harness: runs a transformed Program on the
// shared-memory runtime (src/runtime) by honoring the parallelism marks
// the flow placed on loops.
//
// This is deliberately an *interpreted* executor — each runtime thread
// executes its chunk/cell through a persistent exec::SubtreeRunner — so it
// is meant for test-scale validation and for producing realistic
// per-thread runtime traces (doall chunks, pipeline waits) from
// `polyastc --execute`, not for peak performance. Mapping rules:
//
//   * Doall loops run their trip space through runtime::parallelForBlocked;
//     loops whose inner bounds reference the doall iterator (imbalanced
//     trip spaces) use the guided schedule instead of static chunks.
//   * Reduction loops run through runtime::parallelReduce: every array
//     that is only ever accumulated (+= / -=) under the loop — and never
//     read or plainly assigned there — is privatized per thread and merged
//     after the chunks drain; all other arrays stay shared, which a valid
//     Reduction mark guarantees is race-free.
//   * Pipeline-marked loops map, in order of preference, onto
//     runtime::pipeline3D (mark depth >= 3 and a rectangular 3-deep chain),
//     runtime::pipeline2D (rectangular single chained inner loop), or
//     runtime::pipelineDynamic2D (chained inner loop whose bounds
//     reference the outer iterator — triangular/trapezoidal spaces — when
//     every row samples one stride lattice of the inner step).
//   * ReductionPipeline marks run the same pipeline mapping with the
//     reduction accumulators privatized per worker thread and merged after
//     the pipeline drains.
//   * Anything that fits none of the shapes falls back to sequential
//     interpretation; each fallback is counted and recorded as a note plus
//     the `exec.par.sequential_fallbacks` metric, so callers can see
//     exactly what did not parallelize.
//
// The harness is validated differentially: polyastc --execute compares the
// buffers it produces against a plain sequential interpretation (exact for
// doall/pipeline; reduction privatization reassociates sums, so reduction
// kernels compare within a small tolerance).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/interp.hpp"
#include "obs/perf.hpp"
#include "runtime/parallel.hpp"

namespace polyast::exec {

/// What the executing backend did with the program's parallelism marks.
/// Emitted by both execution backends (exec/backend.hpp): the interpreter
/// fills it while walking, the native backend from the runtime shim's
/// spawn-site counters — same counting semantics (per dynamic encounter,
/// counted even when the trip space turns out empty).
struct ParallelRunReport {
  std::string backend = "interp";   ///< which backend produced this report
  std::int64_t doallLoops = 0;      ///< loops executed via parallelForBlocked
  std::int64_t guidedLoops = 0;     ///< doall loops on the guided schedule
  std::int64_t reductionLoops = 0;  ///< loops executed via parallelReduce
  std::int64_t pipelineLoops = 0;   ///< loop pairs executed via pipeline2D
  std::int64_t pipelineDynamicLoops = 0;  ///< pairs via pipelineDynamic2D
  std::int64_t pipeline3dLoops = 0;       ///< triples via pipeline3D
  std::int64_t reductionPipelineLoops = 0;  ///< pipelines with privatization
  std::int64_t sequentialFallbacks = 0;  ///< marked loops run sequentially
  std::int64_t nativeCompiles = 0;   ///< native backend: TUs compiled
  std::int64_t nativeCacheHits = 0;  ///< native backend: cached .so reused
  std::int64_t nativeFallbacks = 0;  ///< native backend: degraded to interp
  std::vector<std::string> notes;   ///< one line per fallback, with reason

  std::string summary() const;
};

/// Executes `program` over `ctx` on `pool`, exploiting the parallelism
/// marks as described above. Sequential program regions are interpreted on
/// the calling thread.
///
/// When `perf` is non-null, every pool thread (including the caller)
/// opens a hardware-counter session for the duration of the run via
/// PerfAggregate::beginThread/endThread — this is how `polyastc --execute
/// --perf` attributes counters to the measured program rather than to
/// setup/teardown. Degraded sessions still capture wall/TSC time.
ParallelRunReport runParallel(const ir::Program& program, Context& ctx,
                              runtime::ThreadPool& pool,
                              obs::PerfAggregate* perf = nullptr);

/// Records a finished run's counters into the global metrics registry:
/// `exec.par.*` for the mark counters, `exec.native.*` for the native
/// backend's compile/cache/fallback counters (only when nonzero), and the
/// `exec.backend` note naming the backend that executed. Every backend
/// calls this exactly once per run (runParallel does it internally).
void recordRunMetrics(const ParallelRunReport& report);

}  // namespace polyast::exec
