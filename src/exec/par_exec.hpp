// Parallel execution harness: runs a transformed Program on the
// shared-memory runtime (src/runtime) by honoring the parallelism marks
// the flow placed on loops.
//
// This is deliberately an *interpreted* executor — each runtime thread
// executes its chunk/cell by calling exec::runSubtree — so it is meant for
// test-scale validation and for producing realistic per-thread runtime
// traces (doall chunks, pipeline waits) from `polyastc --execute`, not for
// peak performance. Mapping rules:
//
//   * Doall loops run their trip space through runtime::parallelForBlocked.
//   * Pipeline-marked loops whose single chained inner loop has bounds
//     independent of the outer iterator run through runtime::pipeline2D
//     (cell (r, c) awaits (r-1, c) and (r, c-1)).
//   * Reduction / ReductionPipeline marks and non-rectangular pipelines
//     fall back to sequential interpretation; each fallback is counted and
//     recorded as a note plus the `exec.par.sequential_fallbacks` metric,
//     so callers can see exactly what did not parallelize.
//
// The harness is validated differentially: polyastc --execute compares the
// buffers it produces against a plain sequential interpretation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/interp.hpp"
#include "runtime/parallel.hpp"

namespace polyast::exec {

/// What the harness did with the program's parallelism marks.
struct ParallelRunReport {
  std::int64_t doallLoops = 0;      ///< loops executed via parallelForBlocked
  std::int64_t pipelineLoops = 0;   ///< loop pairs executed via pipeline2D
  std::int64_t sequentialFallbacks = 0;  ///< marked loops run sequentially
  std::vector<std::string> notes;   ///< one line per fallback, with reason

  std::string summary() const;
};

/// Executes `program` over `ctx` on `pool`, exploiting Doall and Pipeline
/// marks as described above. Sequential program regions are interpreted on
/// the calling thread.
ParallelRunReport runParallel(const ir::Program& program, Context& ctx,
                              runtime::ThreadPool& pool);

}  // namespace polyast::exec
