#include "exec/backend.hpp"

#include "exec/native_exec.hpp"
#include "support/error.hpp"

namespace polyast::exec {

void Backend::prepare(const ir::Program&) {}

double Backend::toleranceFor(const ParallelRunReport& report) {
  const bool reassociates =
      report.reductionLoops + report.reductionPipelineLoops > 0;
  return reassociates ? 1e-9 : 0.0;
}

VerifyResult Backend::verify(const ir::Program& program, Context& ctx,
                             Context& oracle, runtime::ThreadPool& pool,
                             ParallelRunReport* reportOut,
                             obs::PerfAggregate* perf) {
  polyast::exec::run(program, oracle);  // the sequential interpreter
  ParallelRunReport report = this->run(program, ctx, pool, perf);
  VerifyResult result;
  result.maxAbsDiff = ctx.maxAbsDiff(oracle);
  result.tolerance = toleranceFor(report);
  if (reportOut) *reportOut = std::move(report);
  return result;
}

ParallelRunReport InterpBackend::run(const ir::Program& program,
                                     Context& ctx,
                                     runtime::ThreadPool& pool,
                                     obs::PerfAggregate* perf) {
  return runParallel(program, ctx, pool, perf);
}

std::vector<std::string> backendNames() { return {"interp", "native"}; }

bool hasBackend(const std::string& name) {
  for (const auto& n : backendNames())
    if (n == name) return true;
  return false;
}

std::unique_ptr<Backend> makeBackend(const std::string& name) {
  if (name == "interp") return std::make_unique<InterpBackend>();
  if (name == "native") return std::make_unique<NativeBackend>();
  POLYAST_CHECK(false, "unknown execution backend '" + name + "'");
}

}  // namespace polyast::exec
