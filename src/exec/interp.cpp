#include "exec/interp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "support/error.hpp"

namespace polyast::exec {

using ir::AffExpr;
using ir::Expr;

Context::Context(const ir::Program& program,
                 std::map<std::string, std::int64_t> paramOverrides) {
  params_ = program.paramDefaults;
  for (const auto& [k, v] : paramOverrides) {
    POLYAST_CHECK(params_.count(k), "override for unknown parameter: " + k);
    params_[k] = v;
  }
  for (const auto& a : program.arrays) {
    std::vector<std::int64_t> d;
    std::int64_t total = 1;
    for (const auto& dim : a.dims) {
      std::int64_t v = dim.evaluate(params_);
      POLYAST_CHECK(v > 0, "non-positive array dimension for " + a.name);
      d.push_back(v);
      total *= v;
    }
    dims_[a.name] = std::move(d);
    buffers_[a.name].assign(static_cast<std::size_t>(total), 0.0);
  }
}

std::int64_t Context::param(const std::string& name) const {
  auto it = params_.find(name);
  POLYAST_CHECK(it != params_.end(), "unknown parameter: " + name);
  return it->second;
}

std::vector<double>& Context::buffer(const std::string& array) {
  auto it = buffers_.find(array);
  POLYAST_CHECK(it != buffers_.end(), "unknown array: " + array);
  return it->second;
}

const std::vector<double>& Context::buffer(const std::string& array) const {
  auto it = buffers_.find(array);
  POLYAST_CHECK(it != buffers_.end(), "unknown array: " + array);
  return it->second;
}

const std::vector<std::int64_t>& Context::dims(const std::string& array) const {
  auto it = dims_.find(array);
  POLYAST_CHECK(it != dims_.end(), "unknown array: " + array);
  return it->second;
}

double& Context::at(const std::string& array,
                    const std::vector<std::int64_t>& indices) {
  const auto& d = dims(array);
  POLYAST_CHECK(indices.size() == d.size(),
                "rank mismatch accessing " + array);
  std::int64_t flat = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    POLYAST_CHECK(indices[i] >= 0 && indices[i] < d[i],
                  "index out of bounds accessing " + array + " dim " +
                      std::to_string(i) + " = " + std::to_string(indices[i]));
    flat = flat * d[i] + indices[i];
  }
  return buffer(array)[static_cast<std::size_t>(flat)];
}

void Context::seedAll() {
  for (auto& [name, buf] : buffers_) {
    std::uint64_t h = 1469598103934665603ull;
    for (char c : name) h = (h ^ static_cast<std::uint64_t>(c)) * 1099511628211ull;
    for (std::size_t i = 0; i < buf.size(); ++i) {
      std::uint64_t x = h ^ (i * 0x9e3779b97f4a7c15ull);
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      // Values in [0.5, 1.5): well conditioned for products and sums.
      buf[i] = 0.5 + static_cast<double>(x % 1000003ull) / 1000003.0;
    }
  }
}

double Context::maxAbsDiff(const Context& other) const {
  double worst = 0.0;
  for (const auto& [name, buf] : buffers_) {
    auto it = other.buffers_.find(name);
    if (it == other.buffers_.end()) continue;
    POLYAST_CHECK(it->second.size() == buf.size(),
                  "buffer size mismatch for " + name);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      double x = buf[i], y = it->second[i];
      // Identical non-finite values (both NaN, or equal infinities) are
      // ties — legal reorderings keep per-cell operation sequences
      // identical, so overflow patterns must match exactly. A non-finite
      // value on one side only is a real divergence.
      if (std::isnan(x) || std::isnan(y)) {
        if (std::isnan(x) != std::isnan(y))
          return std::numeric_limits<double>::infinity();
        continue;
      }
      if (std::isinf(x) || std::isinf(y)) {
        if (x != y) return std::numeric_limits<double>::infinity();
        continue;
      }
      worst = std::max(worst, std::fabs(x - y));
    }
  }
  return worst;
}

namespace detail {

class Machine {
 public:
  Machine(const ir::Program& program, Context& ctx, bool countOnly,
          const BufferOverrides* overrides = nullptr)
      : prog_(program), ctx_(ctx), countOnly_(countOnly),
        overrides_(overrides) {
    for (const auto& [k, v] : ctx.params()) env_[k] = v;
  }

  void bind(const std::string& name, std::int64_t value) {
    env_[name] = value;
  }

  std::int64_t execute() {
    walk(prog_.root);
    return instances_;
  }

  std::int64_t executeNode(const ir::NodePtr& node,
                           const std::map<std::string, std::int64_t>&
                               bindings) {
    for (const auto& [k, v] : bindings) env_[k] = v;
    walk(node);
    return instances_;
  }

 private:
  void walk(const ir::NodePtr& node) {
    switch (node->kind) {
      case ir::Node::Kind::Block: {
        for (const auto& c :
             std::static_pointer_cast<ir::Block>(node)->children)
          walk(c);
        break;
      }
      case ir::Node::Kind::Loop: {
        auto l = std::static_pointer_cast<ir::Loop>(node);
        // An empty bound list has no finite extreme: iterating from the
        // INT64 sentinel is undefined behaviour, so reject it outright.
        POLYAST_CHECK(!l->lower.parts.empty() && !l->upper.parts.empty(),
                      "loop '" + l->iter + "' has an empty bound list");
        std::int64_t lo = std::numeric_limits<std::int64_t>::min();
        for (const auto& part : l->lower.parts)
          lo = std::max(lo, part.evaluate(env_));
        std::int64_t hi = std::numeric_limits<std::int64_t>::max();
        for (const auto& part : l->upper.parts)
          hi = std::min(hi, part.evaluate(env_));
        POLYAST_CHECK(l->step >= 1, "non-positive loop step");
        // Restore any shadowed binding so a persistent environment (the
        // SubtreeRunner reuse path) survives repeated subtree runs.
        const bool shadowed = env_.count(l->iter) != 0;
        const std::int64_t saved = shadowed ? env_[l->iter] : 0;
        for (std::int64_t v = lo; v < hi; v += l->step) {
          env_[l->iter] = v;
          walk(l->body);
        }
        if (shadowed)
          env_[l->iter] = saved;
        else
          env_.erase(l->iter);
        break;
      }
      case ir::Node::Kind::Stmt: {
        auto s = std::static_pointer_cast<ir::Stmt>(node);
        bool live = true;
        for (const auto& g : s->guards)
          if (g.evaluate(env_) < 0) {
            live = false;
            break;
          }
        if (!live) break;
        ++instances_;
        if (countOnly_) break;
        std::vector<std::int64_t> idx;
        idx.reserve(s->lhsSubs.size());
        for (const auto& sub : s->lhsSubs) idx.push_back(sub.evaluate(env_));
        double value = eval(s->rhs);
        double& cell = cellRef(s->lhsArray, idx);
        switch (s->op) {
          case ir::AssignOp::Set: cell = value; break;
          case ir::AssignOp::AddAssign: cell += value; break;
          case ir::AssignOp::SubAssign: cell -= value; break;
          case ir::AssignOp::MulAssign: cell *= value; break;
          case ir::AssignOp::DivAssign: cell /= value; break;
        }
        break;
      }
    }
  }

  double eval(const ir::ExprPtr& e) {
    switch (e->kind) {
      case Expr::Kind::IntLit:
        return static_cast<double>(e->intValue);
      case Expr::Kind::FloatLit:
        return e->floatValue;
      case Expr::Kind::IterRef:
      case Expr::Kind::ParamRef: {
        auto it = env_.find(e->name);
        POLYAST_CHECK(it != env_.end(), "unbound name: " + e->name);
        return static_cast<double>(it->second);
      }
      case Expr::Kind::ArrayRef: {
        std::vector<std::int64_t> idx;
        idx.reserve(e->subs.size());
        for (const auto& sub : e->subs) idx.push_back(sub.evaluate(env_));
        return cellRef(e->name, idx);
      }
      case Expr::Kind::Binary: {
        double a = eval(e->lhs);
        double b = eval(e->rhs);
        switch (e->binOp) {
          case ir::BinOp::Add: return a + b;
          case ir::BinOp::Sub: return a - b;
          case ir::BinOp::Mul: return a * b;
          case ir::BinOp::Div: return a / b;
          case ir::BinOp::Min: return std::min(a, b);
          case ir::BinOp::Max: return std::max(a, b);
          case ir::BinOp::Lt: return a < b ? 1.0 : 0.0;
          case ir::BinOp::Le: return a <= b ? 1.0 : 0.0;
          case ir::BinOp::Gt: return a > b ? 1.0 : 0.0;
          case ir::BinOp::Ge: return a >= b ? 1.0 : 0.0;
          case ir::BinOp::Eq: return a == b ? 1.0 : 0.0;
        }
        break;
      }
      case Expr::Kind::Unary: {
        double a = eval(e->lhs);
        switch (e->unOp) {
          case ir::UnOp::Neg: return -a;
          case ir::UnOp::Sqrt: return std::sqrt(a);
          case ir::UnOp::Exp: return std::exp(a);
          case ir::UnOp::Abs: return std::fabs(a);
        }
        break;
      }
      case Expr::Kind::Select:
        return eval(e->cond) != 0.0 ? eval(e->lhs) : eval(e->rhs);
    }
    POLYAST_CHECK(false, "unreachable expression kind");
  }

  /// Storage cell for one array element, honoring buffer overrides (same
  /// bounds checks and row-major layout as Context::at).
  double& cellRef(const std::string& array,
                  const std::vector<std::int64_t>& idx) {
    if (overrides_) {
      auto it = overrides_->find(array);
      if (it != overrides_->end()) {
        const auto& d = ctx_.dims(array);
        POLYAST_CHECK(idx.size() == d.size(),
                      "rank mismatch accessing " + array);
        std::int64_t flat = 0;
        for (std::size_t i = 0; i < d.size(); ++i) {
          POLYAST_CHECK(idx[i] >= 0 && idx[i] < d[i],
                        "index out of bounds accessing " + array + " dim " +
                            std::to_string(i) + " = " +
                            std::to_string(idx[i]));
          flat = flat * d[i] + idx[i];
        }
        return it->second[static_cast<std::size_t>(flat)];
      }
    }
    return ctx_.at(array, idx);
  }

  const ir::Program& prog_;
  Context& ctx_;
  bool countOnly_;
  const BufferOverrides* overrides_;
  std::map<std::string, std::int64_t> env_;
  std::int64_t instances_ = 0;
};

}  // namespace detail

SubtreeRunner::SubtreeRunner(const ir::Program& program, Context& ctx,
                             const BufferOverrides* overrides)
    : m_(std::make_unique<detail::Machine>(program, ctx, /*countOnly=*/false,
                                           overrides)) {}

SubtreeRunner::~SubtreeRunner() = default;
SubtreeRunner::SubtreeRunner(SubtreeRunner&&) noexcept = default;
SubtreeRunner& SubtreeRunner::operator=(SubtreeRunner&&) noexcept = default;

void SubtreeRunner::bind(const std::string& name, std::int64_t value) {
  m_->bind(name, value);
}

void SubtreeRunner::run(const ir::NodePtr& node) { m_->executeNode(node, {}); }

void run(const ir::Program& program, Context& ctx) {
  detail::Machine(program, ctx, /*countOnly=*/false).execute();
}

void runSubtree(const ir::Program& program, Context& ctx,
                const ir::NodePtr& node,
                const std::map<std::string, std::int64_t>& bindings) {
  detail::Machine(program, ctx, /*countOnly=*/false)
      .executeNode(node, bindings);
}

std::int64_t countInstances(const ir::Program& program, Context& ctx) {
  return detail::Machine(program, ctx, /*countOnly=*/true).execute();
}

}  // namespace polyast::exec
