// Native execution backend: JIT-compiles a transformed Program into a
// shared object and runs the machine-code kernel on the shared-memory
// runtime.
//
// Pipeline per program: ir::emitNativeKernelTU emits a self-contained C
// TU (parallelism marks lowered to outlined bodies driven through the
// runtime/capi.hpp function-pointer table); the TU is compiled with the
// system C toolchain (`$POLYAST_JIT_CC`, `$CC`, or the first of cc/gcc/
// clang on PATH) into a shared object cached on disk under a
// content-hash key (source text + compile command + capi ABI version);
// the object is dlopen'd, its polyast_kernel_abi() stamp checked, and
// polyast_kernel_run driven with the Context's parameters and buffers on
// the caller's ThreadPool.
//
// Degradation is graceful and observable: with no usable compiler, a
// failed compile, a dlopen/dlsym error, or POLYAST_JIT=off, run() falls
// back to the interpreted executor — the report carries a note naming
// the reason, nativeFallbacks is set, and the exec.native.fallbacks
// metric is bumped. A fallback never silently changes results: both
// paths are differentially verified against the same oracle.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/backend.hpp"

namespace polyast::exec {

struct NativeBackendOptions {
  /// Shared-object cache directory. Empty → $POLYAST_JIT_CACHE →
  /// /tmp/polyast-jit-<uid>.
  std::string cacheDir;
  /// Extra flags appended to the compile command (tests use
  /// -Wextra -Werror to prove the emitted TU is warning-clean).
  std::vector<std::string> extraFlags;
  /// Behave as if POLYAST_JIT=off: never compile, always degrade.
  bool forceOff = false;
};

class NativeBackend : public Backend {
 public:
  explicit NativeBackend(NativeBackendOptions options = {});
  ~NativeBackend() override;

  std::string name() const override { return "native"; }

  /// Emit + compile + load (or reuse the cached object). Idempotent per
  /// program content; never throws — failure is recorded and the next
  /// run() degrades to the interpreter.
  void prepare(const ir::Program& program) override;

  ParallelRunReport run(const ir::Program& program, Context& ctx,
                        runtime::ThreadPool& pool,
                        obs::PerfAggregate* perf = nullptr) override;

  /// Why the most recently prepared program cannot run natively (empty
  /// when it can).
  std::string degradedReason() const;

  /// True when the most recently prepared program loaded the packed-SIMD
  /// TU (microkernel tags present and the toolchain accepted the vector
  /// extensions); false for scalar TUs, scalar retries and degradations.
  bool usedSimd() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Resolves the cache directory the options imply (creates nothing).
std::string jitCacheDir(const NativeBackendOptions& options);

/// True when $POLYAST_JIT is "off", "0" or "false".
bool jitDisabledByEnv();

}  // namespace polyast::exec
