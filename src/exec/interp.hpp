// IR interpreter: executes a Program over concrete buffers.
//
// This is the semantics oracle of the repository: every transformation is
// validated by running original and transformed programs on identical
// inputs (test-scale parameter bindings) and comparing all output buffers.
// Legal reorderings of statement *instances* keep each instance's arithmetic
// identical, so results match bit-for-bit except for reductions reassociated
// across instances — which our restricted transformations never do.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/ast.hpp"

namespace polyast::exec {

/// Named storage for one program execution.
class Context {
 public:
  /// Allocates all program arrays (zero-filled) using the given parameter
  /// bindings; missing bindings fall back to Program::paramDefaults.
  Context(const ir::Program& program,
          std::map<std::string, std::int64_t> paramOverrides = {});

  std::int64_t param(const std::string& name) const;
  const std::map<std::string, std::int64_t>& params() const { return params_; }

  std::vector<double>& buffer(const std::string& array);
  const std::vector<double>& buffer(const std::string& array) const;
  /// Linearized (row-major) element access.
  double& at(const std::string& array,
             const std::vector<std::int64_t>& indices);

  const std::vector<std::int64_t>& dims(const std::string& array) const;

  /// Deterministic pseudo-random fill of every buffer (for differential
  /// testing): value depends on array name and flat index only.
  void seedAll();

  /// Max absolute difference over all buffers shared with `other`.
  double maxAbsDiff(const Context& other) const;

 private:
  std::map<std::string, std::int64_t> params_;
  std::map<std::string, std::vector<double>> buffers_;
  std::map<std::string, std::vector<std::int64_t>> dims_;
};

/// Runs the program sequentially, honoring the textual order of the AST.
/// Throws polyast::Error on out-of-bounds accesses or unbound names.
void run(const ir::Program& program, Context& ctx);

/// Executes one subtree of `program` with extra iterator bindings on top
/// of the parameter environment. This is the building block of the
/// parallel harness (exec/par_exec.hpp): each runtime thread executes its
/// chunk/cell of a parallel loop by interpreting the loop body under its
/// own bindings. Each call uses an independent evaluation environment, so
/// concurrent calls over one Context are safe whenever the executed
/// instances write disjoint cells (which legal doall/pipeline marks
/// guarantee).
void runSubtree(const ir::Program& program, Context& ctx,
                const ir::NodePtr& node,
                const std::map<std::string, std::int64_t>& bindings);

/// Per-array raw storage that replaces the Context's buffer for both
/// reads and writes (same row-major layout and bounds). The parallel
/// harness points reduction accumulators at per-thread private buffers
/// with this.
using BufferOverrides = std::map<std::string, double*>;

namespace detail {
class Machine;
}

/// A reusable interpreter bound to one (program, context) pair: the worker
/// thread constructs it once and re-runs subtrees under updated iterator
/// bindings, so per-cell execution does not re-copy the parameter
/// environment (the harness's former per-cell std::map deep copies). Loop
/// execution restores iterator bindings on exit, so the persistent
/// environment stays consistent across cells.
class SubtreeRunner {
 public:
  SubtreeRunner(const ir::Program& program, Context& ctx,
                const BufferOverrides* overrides = nullptr);
  ~SubtreeRunner();
  SubtreeRunner(SubtreeRunner&&) noexcept;
  SubtreeRunner& operator=(SubtreeRunner&&) noexcept;

  /// Sets/overwrites one binding in the persistent environment.
  void bind(const std::string& name, std::int64_t value);
  /// Interprets `node` under the current environment.
  void run(const ir::NodePtr& node);

 private:
  std::unique_ptr<detail::Machine> m_;
};

/// Counts executed statement instances (used by tests to check that a
/// transformation preserves the instance count).
std::int64_t countInstances(const ir::Program& program, Context& ctx);

}  // namespace polyast::exec
