// Execution-backend abstraction: one interface over the two ways a
// transformed Program can run on the shared-memory runtime.
//
//   * InterpBackend — the interpreted executor (exec/par_exec): each
//     runtime thread interprets its chunk/cell through a SubtreeRunner.
//     Always available; test-scale validation and trace production.
//   * NativeBackend (exec/native_exec.hpp) — emits the program as a C
//     kernel TU, compiles it with the system toolchain into a shared
//     object (content-hash cached on disk), dlopens it, and runs the
//     machine-code kernel on the same ThreadPool through the
//     runtime/capi.hpp shim. Degrades to the interpreter when no
//     toolchain is available.
//
// Both backends fill the same ParallelRunReport with the same counting
// semantics, record the same exec.* metrics, and are differentially
// verified against the sequential interpreter oracle through
// Backend::verify — which is what `polyastc --execute --backend=NAME`
// runs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/par_exec.hpp"

namespace polyast::exec {

/// Outcome of one differential run against the sequential oracle.
struct VerifyResult {
  double maxAbsDiff = 0.0;  ///< over all buffers, backend vs oracle
  double tolerance = 0.0;   ///< 0 exact; 1e-9 when reductions reassociate
  bool passed() const { return maxAbsDiff <= tolerance; }
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Stable identifier ("interp", "native"); appears in reports, spans and
  /// the exec.backend metric note.
  virtual std::string name() const = 0;

  /// One-time per-program setup (native: emit + compile + load the shared
  /// object). Idempotent; never throws — preparation failures surface as
  /// degraded runs. The interpreter needs none.
  virtual void prepare(const ir::Program& program);

  /// Executes `program` over `ctx` on `pool`. With `perf`, every pool
  /// thread opens a hardware-counter session for the duration of the run.
  virtual ParallelRunReport run(const ir::Program& program, Context& ctx,
                                runtime::ThreadPool& pool,
                                obs::PerfAggregate* perf = nullptr) = 0;

  /// Runs `program` twice — sequentially interpreted over `oracle`, then
  /// through this backend over `ctx` — and compares all buffers.
  /// `reportOut` (optional) receives the backend's run report.
  VerifyResult verify(const ir::Program& program, Context& ctx,
                      Context& oracle, runtime::ThreadPool& pool,
                      ParallelRunReport* reportOut = nullptr,
                      obs::PerfAggregate* perf = nullptr);

  /// Comparison tolerance implied by what a run did: doall/pipeline
  /// execution reorders whole statement instances (bit-identical cells),
  /// reduction privatization reassociates the accumulated sums.
  static double toleranceFor(const ParallelRunReport& report);
};

/// The interpreted executor behind the Backend interface (wraps
/// runParallel).
class InterpBackend : public Backend {
 public:
  std::string name() const override { return "interp"; }
  ParallelRunReport run(const ir::Program& program, Context& ctx,
                        runtime::ThreadPool& pool,
                        obs::PerfAggregate* perf = nullptr) override;
};

/// Registered backend names, in presentation order.
std::vector<std::string> backendNames();

bool hasBackend(const std::string& name);

/// Constructs a backend by name; POLYAST_CHECKs that the name is known.
std::unique_ptr<Backend> makeBackend(const std::string& name);

}  // namespace polyast::exec
