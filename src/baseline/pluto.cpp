#include "baseline/pluto.hpp"

#include <algorithm>
#include <functional>
#include <set>

#include "dl/dl_model.hpp"
#include "poly/codegen.hpp"
#include "support/error.hpp"

namespace polyast::baseline {

using ir::AffExpr;
using ir::Block;
using ir::Loop;
using ir::Node;
using ir::NodePtr;
using ir::ParallelKind;

namespace {

using LoopPtr = std::shared_ptr<Loop>;

void forEachLoop(const NodePtr& node,
                 const std::function<void(const LoopPtr&)>& fn) {
  switch (node->kind) {
    case Node::Kind::Block:
      for (const auto& c : std::static_pointer_cast<Block>(node)->children)
        forEachLoop(c, fn);
      break;
    case Node::Kind::Loop: {
      auto l = std::static_pointer_cast<Loop>(node);
      fn(l);
      forEachLoop(l->body, fn);
      break;
    }
    case Node::Kind::Stmt:
      break;
  }
}

LoopPtr chainedChild(const LoopPtr& l) {
  if (l->body->children.size() == 1 &&
      l->body->children.front()->kind == Node::Kind::Loop)
    return std::static_pointer_cast<Loop>(l->body->children.front());
  return nullptr;
}

void addGuardToStmts(const NodePtr& node, const AffExpr& guard) {
  switch (node->kind) {
    case Node::Kind::Block:
      for (const auto& c : std::static_pointer_cast<Block>(node)->children)
        addGuardToStmts(c, guard);
      break;
    case Node::Kind::Loop:
      addGuardToStmts(std::static_pointer_cast<Loop>(node)->body, guard);
      break;
    case Node::Kind::Stmt:
      std::static_pointer_cast<ir::Stmt>(node)->guards.push_back(guard);
      break;
  }
}

std::int64_t gcdStep(std::int64_t a, std::int64_t b) {
  while (b) {
    std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Collects the statements under a node (for the SIMD permutation's
/// contiguity ranking).
void collectStmts(const NodePtr& node,
                  std::vector<std::shared_ptr<const ir::Stmt>>& out) {
  switch (node->kind) {
    case Node::Kind::Block:
      for (const auto& c : std::static_pointer_cast<Block>(node)->children)
        collectStmts(c, out);
      break;
    case Node::Kind::Loop:
      collectStmts(std::static_pointer_cast<Loop>(node)->body, out);
      break;
    case Node::Kind::Stmt:
      out.push_back(std::static_pointer_cast<ir::Stmt>(node));
      break;
  }
}

}  // namespace

bool wavefrontTiles(ir::Program& program, const LoopPtr& t1,
                    const LoopPtr& t2) {
  if (!t1->lower.isSingle() || !t1->upper.isSingle() ||
      !t2->lower.isSingle() || !t2->upper.isSingle())
    return false;
  auto wave = std::make_shared<Loop>();
  wave->iter = "w_" + t1->iter;
  wave->lower = ir::Bound(t1->lower.single() + t2->lower.single());
  wave->upper = ir::Bound(t1->upper.single() + t2->upper.single() -
                          AffExpr(1));
  wave->step = gcdStep(t1->step, t2->step);
  wave->parallel = ParallelKind::None;
  wave->isTileLoop = true;

  // Each statement under t2 executes only on its own diagonal:
  // t1 + t2 == wave.
  AffExpr diag = AffExpr::term(t1->iter) + AffExpr::term(t2->iter) -
                 AffExpr::term(wave->iter);
  addGuardToStmts(t2->body, diag);
  addGuardToStmts(t2->body, diag * -1);

  // Splice the wave loop where t1 was.
  std::function<bool(const NodePtr&)> splice = [&](const NodePtr& n) {
    if (n->kind == Node::Kind::Block) {
      auto b = std::static_pointer_cast<Block>(n);
      for (auto& c : b->children) {
        if (c == t1) {
          c = wave;
          return true;
        }
        if (splice(c)) return true;
      }
      return false;
    }
    if (n->kind == Node::Kind::Loop)
      return splice(std::static_pointer_cast<Loop>(n)->body);
    return false;
  };
  if (!splice(program.root)) return false;
  wave->body->children.push_back(t1);
  t1->parallel = ParallelKind::Doall;
  t2->parallel = ParallelKind::None;
  return true;
}

ir::Program plutoOptimize(const ir::Program& program,
                          const PlutoOptions& options, PlutoReport* report) {
  PlutoReport local;
  PlutoReport& r = report ? *report : local;

  transform::AffineOptions aopt;
  aopt.preferOriginalOrder = true;
  switch (options.fuse) {
    case PlutoOptions::Fuse::Max:
      aopt.fusion = transform::FusionHeuristic::MaxLegal;
      break;
    case PlutoOptions::Fuse::Smart:
      aopt.fusion = transform::FusionHeuristic::SmartShared;
      break;
    case PlutoOptions::Fuse::None:
      aopt.fusion = transform::FusionHeuristic::NoFusion;
      break;
  }

  poly::ScopOptions sopt;
  sopt.paramMin = options.ast.paramMin;
  poly::Scop scop = poly::extractScop(program, sopt);
  poly::ScheduleMap schedules;
  try {
    schedules = transform::computeAffineTransform(scop, aopt);
  } catch (const Error&) {
    schedules = poly::identitySchedules(scop);
  }
  ir::Program out;
  try {
    out = poly::applySchedules(scop, schedules);
  } catch (const Error&) {
    schedules = poly::identitySchedules(scop);
    out = poly::applySchedules(scop, schedules);
  }
  out.name = program.name + "_pocc";

  transform::skewForTilability(out, options.ast);
  transform::AstOptions dopt = options.ast;
  dopt.recognizeReductions = false;  // doall-only baseline
  dopt.allowPipeline = true;         // detected, then wavefronted
  transform::detectParallelism(out, dopt);
  r.bandsTiled = transform::tileForLocality(out, options.ast);

  // Convert pipeline tile loops into wavefront doall.
  std::vector<std::pair<LoopPtr, LoopPtr>> pipelinePairs;
  forEachLoop(out.root, [&](const LoopPtr& l) {
    if (!l->isTileLoop) return;
    if (l->parallel != ParallelKind::Pipeline &&
        l->parallel != ParallelKind::ReductionPipeline)
      return;
    LoopPtr child = chainedChild(l);
    if (child && child->isTileLoop) pipelinePairs.push_back({l, child});
  });
  for (auto& [t1, t2] : pipelinePairs)
    if (wavefrontTiles(out, t1, t2)) ++r.wavefronts;
  // Any leftover pipeline marks degrade to sequential (doall-only model).
  forEachLoop(out.root, [&](const LoopPtr& l) {
    if (l->parallel == ParallelKind::Pipeline ||
        l->parallel == ParallelKind::ReductionPipeline ||
        l->parallel == ParallelKind::Reduction)
      l->parallel = ParallelKind::None;
  });

  if (options.vectorizeIntraTile) {
    // Rotate the most SIMD-contiguous point loop to the innermost position
    // of every rectangular point-loop chain.
    std::set<const Loop*> seen;
    forEachLoop(out.root, [&](const LoopPtr& l) {
      if (l->isTileLoop || seen.count(l.get())) return;
      std::vector<LoopPtr> chain{l};
      LoopPtr cur = l;
      while (LoopPtr c = chainedChild(cur)) {
        if (c->isTileLoop) break;
        chain.push_back(c);
        cur = c;
      }
      for (const auto& cl : chain) seen.insert(cl.get());
      if (chain.size() < 2) return;
      // Rectangularity within the chain.
      for (const auto& cl : chain)
        for (const auto& parts : {cl->lower.parts, cl->upper.parts})
          for (const auto& p : parts)
            for (const auto& other : chain)
              if (other != cl && p.coeff(other->iter) != 0) return;
      dl::LoopNestModel nest;
      for (const auto& cl : chain) nest.iters.push_back(cl->iter);
      collectStmts(chain.front()->body, nest.stmts);
      // Pick the loop with the highest contiguity count.
      std::size_t best = chain.size() - 1;
      int bestCount = dl::contiguityCount(nest, chain[best]->iter);
      for (std::size_t i = 0; i < chain.size(); ++i) {
        int c = dl::contiguityCount(nest, chain[i]->iter);
        if (c > bestCount) {
          best = i;
          bestCount = c;
        }
      }
      if (best == chain.size() - 1) return;
      // Rotate headers so chain[best] becomes innermost. NOTE: this is a
      // heuristic permutation; it is applied only when the chain sits
      // inside a tiled band (where loops are permutable by construction).
      bool insideTile = false;
      forEachLoop(out.root, [&](const LoopPtr& t) {
        if (t->isTileLoop) {
          std::vector<std::shared_ptr<const ir::Stmt>> sub;
          collectStmts(t->body, sub);
          for (const auto& s : nest.stmts)
            if (!sub.empty() && std::find(sub.begin(), sub.end(), s) !=
                                    sub.end())
              insideTile = true;
        }
      });
      if (!insideTile) return;
      auto header = [](Loop& a, Loop& b) {
        std::swap(a.iter, b.iter);
        std::swap(a.lower, b.lower);
        std::swap(a.upper, b.upper);
        std::swap(a.step, b.step);
        std::swap(a.parallel, b.parallel);
      };
      for (std::size_t i = best; i + 1 < chain.size(); ++i)
        header(*chain[i], *chain[i + 1]);
      ++r.intraTilePermutations;
    });
  }

  if (options.registerTiling) transform::registerTile(out, options.ast);
  return out;
}

}  // namespace polyast::baseline
