#include "baseline/pluto.hpp"

#include <functional>

#include "support/error.hpp"

// plutoOptimize itself lives in src/flow/compat.cpp: the baseline is a
// pipeline preset ("pocc") over the shared pass infrastructure. This file
// keeps the wavefront primitive used by the WavefrontPass, tests, and the
// Fig. 6 machinery.

namespace polyast::baseline {

using ir::AffExpr;
using ir::Block;
using ir::Loop;
using ir::Node;
using ir::NodePtr;
using ir::ParallelKind;

namespace {

using LoopPtr = std::shared_ptr<Loop>;

void addGuardToStmts(const NodePtr& node, const AffExpr& guard) {
  switch (node->kind) {
    case Node::Kind::Block:
      for (const auto& c : std::static_pointer_cast<Block>(node)->children)
        addGuardToStmts(c, guard);
      break;
    case Node::Kind::Loop:
      addGuardToStmts(std::static_pointer_cast<Loop>(node)->body, guard);
      break;
    case Node::Kind::Stmt:
      std::static_pointer_cast<ir::Stmt>(node)->guards.push_back(guard);
      break;
  }
}

std::int64_t gcdStep(std::int64_t a, std::int64_t b) {
  while (b) {
    std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

bool wavefrontTiles(ir::Program& program, const LoopPtr& t1,
                    const LoopPtr& t2) {
  if (!t1->lower.isSingle() || !t1->upper.isSingle() ||
      !t2->lower.isSingle() || !t2->upper.isSingle())
    return false;
  auto wave = std::make_shared<Loop>();
  wave->iter = "w_" + t1->iter;
  wave->lower = ir::Bound(t1->lower.single() + t2->lower.single());
  wave->upper = ir::Bound(t1->upper.single() + t2->upper.single() -
                          AffExpr(1));
  wave->step = gcdStep(t1->step, t2->step);
  wave->parallel = ParallelKind::None;
  wave->isTileLoop = true;

  // Each statement under t2 executes only on its own diagonal:
  // t1 + t2 == wave.
  AffExpr diag = AffExpr::term(t1->iter) + AffExpr::term(t2->iter) -
                 AffExpr::term(wave->iter);
  addGuardToStmts(t2->body, diag);
  addGuardToStmts(t2->body, diag * -1);

  // Splice the wave loop where t1 was.
  std::function<bool(const NodePtr&)> splice = [&](const NodePtr& n) {
    if (n->kind == Node::Kind::Block) {
      auto b = std::static_pointer_cast<Block>(n);
      for (auto& c : b->children) {
        if (c == t1) {
          c = wave;
          return true;
        }
        if (splice(c)) return true;
      }
      return false;
    }
    if (n->kind == Node::Kind::Loop)
      return splice(std::static_pointer_cast<Loop>(n)->body);
    return false;
  };
  if (!splice(program.root)) return false;
  wave->body->children.push_back(t1);
  t1->parallel = ParallelKind::Doall;
  t1->pipelineDepth = 0;
  t2->parallel = ParallelKind::None;
  t2->pipelineDepth = 0;
  return true;
}

}  // namespace polyast::baseline
