// Pluto/PoCC-like integrated polyhedral optimizer — the comparator of
// Sec. V (variants `pocc` and `pocc vect`).
//
// The baseline mirrors the paper's description of the PoCC configuration:
//   * Pluto-style fusion: maxfuse or smartfuse, fusing whenever legal
//     (maxfuse) or whenever the groups share an array (smartfuse), with
//     reuse-distance-minimizing retiming — no DL profitability gate,
//   * original loop order (reuse-distance minimization keeps the input
//     order in our restricted schedule class),
//   * skewing + rectangular tiling of every permutable band,
//   * doall-only coarse-grain parallelization of the tile loops — loops
//     with forward dependences become a *wavefront* doall (skewed tile
//     schedule) instead of point-to-point pipelines, and reductions are
//     treated as serializing dependences,
//   * optionally (`vectorizeIntraTile`, the `pocc vect` variant) an
//     additional intra-tile loop permutation placing the most contiguous
//     iterator innermost.
#pragma once

#include "ir/ast.hpp"
#include "transform/affine.hpp"
#include "transform/ast_stage.hpp"

namespace polyast::baseline {

struct PlutoOptions {
  enum class Fuse { Max, Smart, None };
  Fuse fuse = Fuse::Smart;
  transform::AstOptions ast;
  /// pocc_vect: permute intra-tile point loops for SIMD contiguity.
  bool vectorizeIntraTile = false;
  bool registerTiling = true;
};

struct PlutoReport {
  int wavefronts = 0;
  int bandsTiled = 0;
  int intraTilePermutations = 0;
};

/// Runs the baseline optimizer; output is annotated with Doall marks only
/// (pipeline loops appear as wavefronted tile loops). Equivalent to
/// running the "pocc" pipeline preset (src/flow/presets.hpp), which is
/// how it is implemented since the pass-manager refactor.
ir::Program plutoOptimize(const ir::Program& program,
                          const PlutoOptions& options = {},
                          PlutoReport* report = nullptr);

/// Converts a loop pair (outer sequential tile loop + chained inner tile
/// loop with forward dependences) into a wavefront: a sequential wave loop
/// scans diagonals and the original outer loop becomes doall, with the
/// inner tile fixed as wave - outer (kept exact through per-statement
/// guards). Returns true if applied. Exposed for tests and Fig. 6.
bool wavefrontTiles(ir::Program& program, const std::shared_ptr<ir::Loop>& t1,
                    const std::shared_ptr<ir::Loop>& t2);

}  // namespace polyast::baseline
