#include "ir/ast.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace polyast::ir {

std::string parallelKindName(ParallelKind k) {
  switch (k) {
    case ParallelKind::None: return "seq";
    case ParallelKind::Doall: return "doall";
    case ParallelKind::Reduction: return "reduction";
    case ParallelKind::Pipeline: return "pipeline";
    case ParallelKind::ReductionPipeline: return "reduction+pipeline";
  }
  return "?";
}

NodePtr Block::clone() const {
  auto b = std::make_shared<Block>();
  b->children.reserve(children.size());
  for (const auto& c : children) b->children.push_back(c->clone());
  return b;
}

const AffExpr& Bound::single() const {
  POLYAST_CHECK(parts.size() == 1, "bound is not a single affine part");
  return parts.front();
}

void Bound::substitute(const std::string& name, const AffExpr& repl) {
  for (auto& p : parts) p = p.substituted(name, repl);
}

std::string Bound::str(bool isLower) const {
  POLYAST_CHECK(!parts.empty(), "empty bound");
  if (parts.size() == 1) return parts.front().str();
  std::ostringstream os;
  os << (isLower ? "max(" : "min(");
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) os << ", ";
    os << parts[i].str();
  }
  os << ")";
  return os.str();
}

NodePtr Loop::clone() const {
  auto l = std::make_shared<Loop>();
  l->iter = iter;
  l->lower = lower;
  l->upper = upper;
  l->step = step;
  l->body = std::static_pointer_cast<Block>(body->clone());
  l->parallel = parallel;
  l->pipelineDepth = pipelineDepth;
  l->isTileLoop = isTileLoop;
  l->isPointLoop = isPointLoop;
  l->unroll = unroll;
  l->simdSafe = simdSafe;
  l->reductionCarried = reductionCarried;
  l->microKernel = microKernel;  // immutable tag, safely shared
  return l;
}

NodePtr Stmt::clone() const {
  auto s = std::make_shared<Stmt>();
  s->id = id;
  s->label = label;
  s->op = op;
  s->lhsArray = lhsArray;
  s->lhsSubs = lhsSubs;
  s->rhs = rhs;  // Expr trees are immutable and safely shared.
  s->isReductionUpdate = isReductionUpdate;
  s->guards = guards;
  s->origin = origin;
  return s;
}

std::string Stmt::str() const {
  std::ostringstream os;
  os << lhsArray;
  for (const auto& s : lhsSubs) os << "[" << s.str() << "]";
  switch (op) {
    case AssignOp::Set: os << " = "; break;
    case AssignOp::AddAssign: os << " += "; break;
    case AssignOp::SubAssign: os << " -= "; break;
    case AssignOp::MulAssign: os << " *= "; break;
    case AssignOp::DivAssign: os << " /= "; break;
  }
  os << rhs->str() << ";";
  return os.str();
}

Program Program::deepCopy() const {
  Program p;
  p.name = name;
  p.params = params;
  p.paramDefaults = paramDefaults;
  p.arrays = arrays;
  p.root = std::static_pointer_cast<Block>(root->clone());
  return p;
}

const ArrayDecl& Program::array(const std::string& arrayName) const {
  for (const auto& a : arrays)
    if (a.name == arrayName) return a;
  POLYAST_CHECK(false, "unknown array: " + arrayName);
}

bool Program::isParam(const std::string& n) const {
  return std::find(params.begin(), params.end(), n) != params.end();
}

void Program::forEachStmt(
    const std::function<void(const std::shared_ptr<Stmt>&,
                             const std::vector<std::shared_ptr<Loop>>&)>& fn)
    const {
  std::vector<std::shared_ptr<Loop>> loops;
  std::function<void(const NodePtr&)> walk = [&](const NodePtr& n) {
    switch (n->kind) {
      case Node::Kind::Block:
        for (const auto& c : std::static_pointer_cast<Block>(n)->children)
          walk(c);
        break;
      case Node::Kind::Loop: {
        auto l = std::static_pointer_cast<Loop>(n);
        loops.push_back(l);
        walk(l->body);
        loops.pop_back();
        break;
      }
      case Node::Kind::Stmt:
        fn(std::static_pointer_cast<Stmt>(n), loops);
        break;
    }
  };
  walk(root);
}

std::vector<std::shared_ptr<Stmt>> Program::statements() const {
  std::vector<std::shared_ptr<Stmt>> out;
  forEachStmt([&](const std::shared_ptr<Stmt>& s,
                  const std::vector<std::shared_ptr<Loop>>&) {
    out.push_back(s);
  });
  return out;
}

std::map<int, std::vector<std::shared_ptr<Loop>>> Program::enclosingLoops()
    const {
  std::map<int, std::vector<std::shared_ptr<Loop>>> out;
  forEachStmt([&](const std::shared_ptr<Stmt>& s,
                  const std::vector<std::shared_ptr<Loop>>& loops) {
    out[s->id] = loops;
  });
  return out;
}

void substituteIterInTree(const NodePtr& node, const std::string& name,
                          const AffExpr& repl) {
  switch (node->kind) {
    case Node::Kind::Block:
      for (const auto& c : std::static_pointer_cast<Block>(node)->children)
        substituteIterInTree(c, name, repl);
      break;
    case Node::Kind::Loop: {
      auto l = std::static_pointer_cast<Loop>(node);
      POLYAST_CHECK(l->iter != name,
                    "substituting an iterator shadowed by an inner loop");
      l->lower.substitute(name, repl);
      l->upper.substitute(name, repl);
      substituteIterInTree(l->body, name, repl);
      break;
    }
    case Node::Kind::Stmt: {
      auto s = std::static_pointer_cast<Stmt>(node);
      for (auto& sub : s->lhsSubs) sub = sub.substituted(name, repl);
      for (auto& g : s->guards) g = g.substituted(name, repl);
      for (auto& o : s->origin) o = o.substituted(name, repl);
      s->rhs = substituteIter(s->rhs, name, repl);
      break;
    }
  }
}

void renameIterInTree(const NodePtr& node, std::string from,
                      const std::string& to) {
  switch (node->kind) {
    case Node::Kind::Block:
      for (const auto& c : std::static_pointer_cast<Block>(node)->children)
        renameIterInTree(c, from, to);
      break;
    case Node::Kind::Loop: {
      auto l = std::static_pointer_cast<Loop>(node);
      if (l->iter == from) l->iter = to;
      l->lower.substitute(from, AffExpr::term(to));
      l->upper.substitute(from, AffExpr::term(to));
      renameIterInTree(l->body, from, to);
      break;
    }
    case Node::Kind::Stmt: {
      auto s = std::static_pointer_cast<Stmt>(node);
      AffExpr repl = AffExpr::term(to);
      for (auto& sub : s->lhsSubs) sub = sub.substituted(from, repl);
      for (auto& g : s->guards) g = g.substituted(from, repl);
      for (auto& o : s->origin) o = o.substituted(from, repl);
      s->rhs = substituteIter(s->rhs, from, repl);
      break;
    }
  }
}

namespace {
void printRec(const NodePtr& node, int indent, std::ostringstream& os) {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  switch (node->kind) {
    case Node::Kind::Block:
      for (const auto& c : std::static_pointer_cast<Block>(node)->children)
        printRec(c, indent, os);
      break;
    case Node::Kind::Loop: {
      auto l = std::static_pointer_cast<Loop>(node);
      if (l->parallel != ParallelKind::None) {
        os << pad << "#pragma polyast " << parallelKindName(l->parallel);
        // Depth is part of the mark's proof obligation; printing it keeps
        // the rendered text a faithful key for change detection.
        if (l->pipelineDepth > 0) os << " depth=" << l->pipelineDepth;
        os << "\n";
      }
      os << pad << "for (" << l->iter << " = " << l->lower.str(true) << "; "
         << l->iter << " < " << l->upper.str(false) << "; " << l->iter;
      if (l->step == 1) os << "++";
      else os << " += " << l->step;
      os << ") {";
      if (l->isTileLoop) os << "  // tile";
      if (l->microKernel)
        os << "  // simd microkernel (lane=" << l->microKernel->laneIter
           << ", stream=" << l->microKernel->streamIter << ")";
      os << "\n";
      printRec(l->body, indent + 1, os);
      os << pad << "}\n";
      break;
    }
    case Node::Kind::Stmt: {
      auto s = std::static_pointer_cast<Stmt>(node);
      os << pad;
      if (!s->guards.empty()) {
        os << "if (";
        for (std::size_t i = 0; i < s->guards.size(); ++i) {
          if (i) os << " && ";
          os << s->guards[i].str() << " >= 0";
        }
        os << ") ";
      }
      if (!s->label.empty()) os << s->label << ": ";
      os << s->str() << "\n";
      break;
    }
  }
}
}  // namespace

std::string printNode(const NodePtr& node, int indent) {
  std::ostringstream os;
  printRec(node, indent, os);
  return os.str();
}

std::string printProgram(const Program& p) {
  std::ostringstream os;
  os << "// " << p.name << "(";
  for (std::size_t i = 0; i < p.params.size(); ++i) {
    if (i) os << ", ";
    os << p.params[i];
  }
  os << ")\n";
  os << printNode(p.root);
  return os.str();
}

std::shared_ptr<Loop> soleLoopChild(const NodePtr& body) {
  NodePtr cur = body;
  while (cur->kind == Node::Kind::Block) {
    const auto& kids = std::static_pointer_cast<Block>(cur)->children;
    if (kids.size() != 1) return nullptr;
    cur = kids.front();
  }
  if (cur->kind != Node::Kind::Loop) return nullptr;
  return std::static_pointer_cast<Loop>(cur);
}

bool boundsIndependentOf(const Loop& loop, const std::string& iter) {
  for (const auto& p : loop.lower.parts)
    if (p.coeff(iter) != 0) return false;
  for (const auto& p : loop.upper.parts)
    if (p.coeff(iter) != 0) return false;
  return true;
}

bool innerBoundsReference(const NodePtr& node, const std::string& iter) {
  switch (node->kind) {
    case Node::Kind::Block: {
      for (const auto& c : std::static_pointer_cast<Block>(node)->children)
        if (innerBoundsReference(c, iter)) return true;
      return false;
    }
    case Node::Kind::Loop: {
      auto l = std::static_pointer_cast<Loop>(node);
      if (!boundsIndependentOf(*l, iter)) return true;
      return innerBoundsReference(l->body, iter);
    }
    case Node::Kind::Stmt:
      return false;
  }
  return false;
}

std::vector<std::string> privatizableArrays(const NodePtr& node) {
  struct Use {
    bool read = false;
    bool setWrite = false;    // Set / *= / /= — not additively mergeable
    bool accumWrite = false;  // += / -=
  };
  std::map<std::string, Use> uses;
  std::function<void(const NodePtr&)> collect = [&](const NodePtr& n) {
    switch (n->kind) {
      case Node::Kind::Block:
        for (const auto& c : std::static_pointer_cast<Block>(n)->children)
          collect(c);
        break;
      case Node::Kind::Loop:
        collect(std::static_pointer_cast<Loop>(n)->body);
        break;
      case Node::Kind::Stmt: {
        auto s = std::static_pointer_cast<Stmt>(n);
        if (s->op == AssignOp::AddAssign || s->op == AssignOp::SubAssign)
          uses[s->lhsArray].accumWrite = true;
        else
          uses[s->lhsArray].setWrite = true;
        std::vector<ArrayUse> reads;
        collectArrayUses(s->rhs, reads);
        for (const auto& r : reads) uses[r.array].read = true;
        break;
      }
    }
  };
  collect(node);
  std::vector<std::string> out;
  for (const auto& [name, u] : uses)
    if (u.accumWrite && !u.read && !u.setWrite) out.push_back(name);
  return out;
}

std::vector<ParallelConstruct> collectParallelConstructs(const Program& p) {
  std::vector<ParallelConstruct> out;
  std::vector<std::string> chain;
  std::function<void(const NodePtr&)> walk = [&](const NodePtr& n) {
    switch (n->kind) {
      case Node::Kind::Block:
        for (const auto& c : std::static_pointer_cast<Block>(n)->children)
          walk(c);
        break;
      case Node::Kind::Loop: {
        auto l = std::static_pointer_cast<Loop>(n);
        if (l->parallel != ParallelKind::None) {
          ParallelConstruct c;
          c.id = static_cast<std::int64_t>(out.size());
          c.loop = l;
          c.chain = chain;
          c.chain.push_back(l->iter);
          out.push_back(std::move(c));
          return;  // inner marks run sequentially — not constructs
        }
        chain.push_back(l->iter);
        walk(l->body);
        chain.pop_back();
        break;
      }
      case Node::Kind::Stmt:
        break;
    }
  };
  walk(p.root);
  return out;
}

bool programHasMicroKernels(const Program& p) {
  bool found = false;
  std::function<void(const NodePtr&)> walk = [&](const NodePtr& n) {
    if (found) return;
    switch (n->kind) {
      case Node::Kind::Block:
        for (const auto& c : std::static_pointer_cast<Block>(n)->children)
          walk(c);
        break;
      case Node::Kind::Loop: {
        auto l = std::static_pointer_cast<Loop>(n);
        if (l->microKernel) found = true;
        else walk(l->body);
        break;
      }
      case Node::Kind::Stmt:
        break;
    }
  };
  walk(p.root);
  return found;
}

}  // namespace polyast::ir
