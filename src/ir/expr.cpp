#include "ir/expr.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/rational.hpp"

namespace polyast::ir {

AffExpr AffExpr::term(const std::string& name, std::int64_t coeff) {
  AffExpr e;
  if (coeff != 0) e.coeffs_[name] = coeff;
  return e;
}

std::int64_t AffExpr::coeff(const std::string& name) const {
  auto it = coeffs_.find(name);
  return it == coeffs_.end() ? 0 : it->second;
}

void AffExpr::dropZeros() {
  for (auto it = coeffs_.begin(); it != coeffs_.end();)
    it = it->second == 0 ? coeffs_.erase(it) : std::next(it);
}

AffExpr AffExpr::operator+(const AffExpr& o) const {
  AffExpr e = *this;
  for (const auto& [n, c] : o.coeffs_)
    e.coeffs_[n] = checkedAdd(e.coeff(n), c);
  e.constant_ = checkedAdd(e.constant_, o.constant_);
  e.dropZeros();
  return e;
}

AffExpr AffExpr::operator-(const AffExpr& o) const {
  return *this + o * -1;
}

AffExpr AffExpr::operator*(std::int64_t k) const {
  AffExpr e;
  if (k == 0) return e;
  for (const auto& [n, c] : coeffs_) e.coeffs_[n] = checkedMul(c, k);
  e.constant_ = checkedMul(constant_, k);
  return e;
}

AffExpr AffExpr::substituted(const std::string& name,
                             const AffExpr& repl) const {
  std::int64_t c = coeff(name);
  if (c == 0) return *this;
  AffExpr e = *this;
  e.coeffs_.erase(name);
  return e + repl * c;
}

AffExpr AffExpr::renamed(const std::string& from, const std::string& to) const {
  return substituted(from, AffExpr::term(to));
}

std::int64_t AffExpr::evaluate(
    const std::map<std::string, std::int64_t>& env) const {
  std::int64_t v = constant_;
  for (const auto& [n, c] : coeffs_) {
    auto it = env.find(n);
    POLYAST_CHECK(it != env.end(), "unbound variable in AffExpr: " + n);
    v = checkedAdd(v, checkedMul(c, it->second));
  }
  return v;
}

std::string AffExpr::str() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [n, c] : coeffs_) {
    if (c > 0 && !first) os << "+";
    if (c == -1) os << "-";
    else if (c != 1) os << c << "*";
    os << n;
    first = false;
  }
  if (constant_ != 0 || first) {
    if (constant_ >= 0 && !first) os << "+";
    os << constant_;
  }
  return os.str();
}

namespace {
ExprPtr make(Expr e) { return std::make_shared<const Expr>(std::move(e)); }
}  // namespace

ExprPtr intLit(std::int64_t v) {
  Expr e;
  e.kind = Expr::Kind::IntLit;
  e.intValue = v;
  return make(std::move(e));
}

ExprPtr floatLit(double v) {
  Expr e;
  e.kind = Expr::Kind::FloatLit;
  e.floatValue = v;
  return make(std::move(e));
}

ExprPtr iterRef(const std::string& name) {
  Expr e;
  e.kind = Expr::Kind::IterRef;
  e.name = name;
  return make(std::move(e));
}

ExprPtr paramRef(const std::string& name) {
  Expr e;
  e.kind = Expr::Kind::ParamRef;
  e.name = name;
  return make(std::move(e));
}

ExprPtr arrayRef(const std::string& name, std::vector<AffExpr> subs) {
  Expr e;
  e.kind = Expr::Kind::ArrayRef;
  e.name = name;
  e.subs = std::move(subs);
  return make(std::move(e));
}

ExprPtr binary(BinOp op, ExprPtr a, ExprPtr b) {
  Expr e;
  e.kind = Expr::Kind::Binary;
  e.binOp = op;
  e.lhs = std::move(a);
  e.rhs = std::move(b);
  return make(std::move(e));
}

ExprPtr unary(UnOp op, ExprPtr a) {
  Expr e;
  e.kind = Expr::Kind::Unary;
  e.unOp = op;
  e.lhs = std::move(a);
  return make(std::move(e));
}

ExprPtr select(ExprPtr cond, ExprPtr a, ExprPtr b) {
  Expr e;
  e.kind = Expr::Kind::Select;
  e.cond = std::move(cond);
  e.lhs = std::move(a);
  e.rhs = std::move(b);
  return make(std::move(e));
}

ExprPtr operator+(ExprPtr a, ExprPtr b) {
  return binary(BinOp::Add, std::move(a), std::move(b));
}
ExprPtr operator-(ExprPtr a, ExprPtr b) {
  return binary(BinOp::Sub, std::move(a), std::move(b));
}
ExprPtr operator*(ExprPtr a, ExprPtr b) {
  return binary(BinOp::Mul, std::move(a), std::move(b));
}
ExprPtr operator/(ExprPtr a, ExprPtr b) {
  return binary(BinOp::Div, std::move(a), std::move(b));
}

namespace {
/// Builds an integer expression tree equivalent to an affine expression.
ExprPtr affToExpr(const AffExpr& a) {
  ExprPtr acc;
  auto addTerm = [&acc](ExprPtr t) {
    acc = acc ? binary(BinOp::Add, acc, std::move(t)) : std::move(t);
  };
  for (const auto& [n, c] : a.coeffs()) {
    ExprPtr v = iterRef(n);
    if (c != 1) v = binary(BinOp::Mul, intLit(c), std::move(v));
    addTerm(std::move(v));
  }
  if (a.constant() != 0 || !acc) addTerm(intLit(a.constant()));
  return acc;
}
}  // namespace

ExprPtr substituteIter(const ExprPtr& e, const std::string& name,
                       const AffExpr& repl) {
  if (!e) return e;
  switch (e->kind) {
    case Expr::Kind::IntLit:
    case Expr::Kind::FloatLit:
    case Expr::Kind::ParamRef:
      return e;
    case Expr::Kind::IterRef: {
      if (e->name != name) return e;
      if (repl.coeffs().size() == 1 && repl.constant() == 0 &&
          repl.coeffs().begin()->second == 1)
        return iterRef(repl.coeffs().begin()->first);
      return affToExpr(repl);
    }
    case Expr::Kind::ArrayRef: {
      bool changed = false;
      std::vector<AffExpr> subs;
      subs.reserve(e->subs.size());
      for (const auto& s : e->subs) {
        AffExpr t = s.substituted(name, repl);
        changed = changed || !(t == s);
        subs.push_back(std::move(t));
      }
      if (!changed) return e;
      return arrayRef(e->name, std::move(subs));
    }
    case Expr::Kind::Binary: {
      ExprPtr l = substituteIter(e->lhs, name, repl);
      ExprPtr r = substituteIter(e->rhs, name, repl);
      if (l == e->lhs && r == e->rhs) return e;
      return binary(e->binOp, std::move(l), std::move(r));
    }
    case Expr::Kind::Unary: {
      ExprPtr l = substituteIter(e->lhs, name, repl);
      if (l == e->lhs) return e;
      return unary(e->unOp, std::move(l));
    }
    case Expr::Kind::Select: {
      ExprPtr c = substituteIter(e->cond, name, repl);
      ExprPtr l = substituteIter(e->lhs, name, repl);
      ExprPtr r = substituteIter(e->rhs, name, repl);
      if (c == e->cond && l == e->lhs && r == e->rhs) return e;
      return select(std::move(c), std::move(l), std::move(r));
    }
  }
  POLYAST_CHECK(false, "unreachable expression kind");
}

void collectArrayUses(const ExprPtr& e, std::vector<ArrayUse>& out) {
  if (!e) return;
  if (e->kind == Expr::Kind::ArrayRef) out.push_back({e->name, e->subs});
  collectArrayUses(e->cond, out);
  collectArrayUses(e->lhs, out);
  collectArrayUses(e->rhs, out);
}

std::string Expr::str() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::IntLit:
      os << intValue;
      break;
    case Kind::FloatLit: {
      std::ostringstream fs;
      fs << floatValue;
      os << fs.str();
      if (fs.str().find('.') == std::string::npos &&
          fs.str().find('e') == std::string::npos)
        os << ".0";
      break;
    }
    case Kind::IterRef:
    case Kind::ParamRef:
      os << name;
      break;
    case Kind::ArrayRef:
      os << name;
      for (const auto& s : subs) os << "[" << s.str() << "]";
      break;
    case Kind::Binary: {
      const char* op = "?";
      switch (binOp) {
        case BinOp::Add: op = " + "; break;
        case BinOp::Sub: op = " - "; break;
        case BinOp::Mul: op = " * "; break;
        case BinOp::Div: op = " / "; break;
        case BinOp::Min: op = ", "; break;
        case BinOp::Max: op = ", "; break;
        case BinOp::Lt: op = " < "; break;
        case BinOp::Le: op = " <= "; break;
        case BinOp::Gt: op = " > "; break;
        case BinOp::Ge: op = " >= "; break;
        case BinOp::Eq: op = " == "; break;
      }
      if (binOp == BinOp::Min) os << "min(";
      if (binOp == BinOp::Max) os << "max(";
      if (binOp != BinOp::Min && binOp != BinOp::Max) os << "(";
      os << lhs->str() << op << rhs->str() << ")";
      break;
    }
    case Kind::Unary:
      switch (unOp) {
        case UnOp::Neg: os << "(-" << lhs->str() << ")"; break;
        case UnOp::Sqrt: os << "sqrt(" << lhs->str() << ")"; break;
        case UnOp::Exp: os << "exp(" << lhs->str() << ")"; break;
        case UnOp::Abs: os << "fabs(" << lhs->str() << ")"; break;
      }
      break;
    case Kind::Select:
      os << "(" << cond->str() << " ? " << lhs->str() << " : " << rhs->str()
         << ")";
      break;
  }
  return os.str();
}

}  // namespace polyast::ir
