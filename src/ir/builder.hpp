// Fluent builder for constructing Programs (the public kernel-definition
// API used by src/kernels, the examples, and the tests).
//
//   ProgramBuilder b("gemm");
//   b.param("NI", 512).param("NJ", 512).param("NK", 512);
//   b.array("C", {b.p("NI"), b.p("NJ")});
//   b.beginLoop("i", 0, b.p("NI"));
//   ...
//   Program prog = b.build();
#pragma once

#include <string>
#include <vector>

#include "ir/ast.hpp"
#include "support/error.hpp"

namespace polyast::ir {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name) {
    prog_.name = std::move(name);
    open_.push_back(prog_.root);
  }

  ProgramBuilder& param(const std::string& name, std::int64_t defaultValue) {
    prog_.params.push_back(name);
    prog_.paramDefaults[name] = defaultValue;
    return *this;
  }

  ProgramBuilder& array(const std::string& name, std::vector<AffExpr> dims) {
    prog_.arrays.push_back({name, std::move(dims)});
    return *this;
  }

  /// Affine term for a parameter or iterator name.
  AffExpr p(const std::string& name) const { return AffExpr::term(name); }

  /// Opens `for (iter = lower; iter < upper; iter++)`.
  ProgramBuilder& beginLoop(const std::string& iter, Bound lower,
                            Bound upper) {
    auto l = std::make_shared<Loop>();
    l->iter = iter;
    l->lower = std::move(lower);
    l->upper = std::move(upper);
    open_.back()->children.push_back(l);
    open_.push_back(l->body);
    return *this;
  }

  ProgramBuilder& endLoop() {
    POLYAST_CHECK(open_.size() > 1, "endLoop without matching beginLoop");
    open_.pop_back();
    return *this;
  }

  /// Adds a statement `lhs[subs] op rhs;`. Statement ids are assigned in
  /// textual order.
  ProgramBuilder& stmt(const std::string& label, const std::string& lhsArray,
                       std::vector<AffExpr> lhsSubs, AssignOp op,
                       ExprPtr rhs) {
    auto s = std::make_shared<Stmt>();
    s->id = nextId_++;
    s->label = label;
    s->lhsArray = lhsArray;
    s->lhsSubs = std::move(lhsSubs);
    s->op = op;
    s->rhs = std::move(rhs);
    s->isReductionUpdate = detectReduction(*s);
    open_.back()->children.push_back(s);
    return *this;
  }

  Program build() {
    POLYAST_CHECK(open_.size() == 1, "build with unclosed loops");
    return std::move(prog_);
  }

 private:
  /// A += / -= whose rhs never re-reads the lhs cell is a candidate
  /// reduction update (commutative & associative accumulation).
  static bool detectReduction(const Stmt& s) {
    if (s.op != AssignOp::AddAssign && s.op != AssignOp::SubAssign)
      return false;
    std::vector<ArrayUse> uses;
    collectArrayUses(s.rhs, uses);
    for (const auto& u : uses)
      if (u.array == s.lhsArray) return false;
    return true;
  }

  Program prog_;
  std::vector<std::shared_ptr<Block>> open_;
  int nextId_ = 0;
};

}  // namespace polyast::ir
