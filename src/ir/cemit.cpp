#include "ir/cemit.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "support/error.hpp"

namespace polyast::ir {

namespace {

/// Arrays whose names collide with C library identifiers at file scope
/// (math.h Bessel functions etc.) get an _arr suffix in the emitted code.
std::string cname(const std::string& name) {
  static const std::set<std::string> reserved = {
      "y0", "y1", "yn", "j0", "j1", "jn", "gamma", "div",  "exp",
      "log", "pow", "sin", "cos", "tan", "time",  "clock", "main",
      "kernel", "remainder", "index"};
  return reserved.count(name) ? name + "_arr" : name;
}

std::string cAff(const AffExpr& e) { return "(" + e.str() + ")"; }

std::string cBound(const Bound& b, bool isLower) {
  POLYAST_CHECK(!b.parts.empty(), "empty bound in C emission");
  std::string out = cAff(b.parts.back());
  for (std::size_t i = b.parts.size() - 1; i-- > 0;)
    out = std::string(isLower ? "POLYAST_MAX(" : "POLYAST_MIN(") +
          cAff(b.parts[i]) + ", " + out + ")";
  return out;
}

/// Shortest decimal literal that round-trips to exactly `v` — the
/// interpreter computes on the double the builder stored, so the native
/// backend must compile the identical value (plain operator<< truncates to
/// 6 significant digits, which breaks bit-exact differential runs).
std::string cFloat(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  std::string s = buf;
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find('n') == std::string::npos)  // inf/nan never appear in kernels
    s += ".0";
  return s;
}

std::string totalElems(const ArrayDecl& a) {
  std::string total = cAff(a.dims[0]);
  for (std::size_t d = 1; d < a.dims.size(); ++d)
    total += " * " + cAff(a.dims[d]);
  return total;
}

/// Whether any statement value expression uses Min / Max (they need the
/// std::min/std::max-equivalent helper functions in the TU preamble).
void scanMinMax(const ExprPtr& e, bool& usesMin, bool& usesMax) {
  if (!e) return;
  if (e->kind == Expr::Kind::Binary) {
    if (e->binOp == BinOp::Min) usesMin = true;
    if (e->binOp == BinOp::Max) usesMax = true;
  }
  scanMinMax(e->lhs, usesMin, usesMax);
  scanMinMax(e->rhs, usesMin, usesMax);
  scanMinMax(e->cond, usesMin, usesMax);
}

void programMinMax(const Program& p, bool& usesMin, bool& usesMax) {
  for (const auto& s : p.statements()) scanMinMax(s->rhs, usesMin, usesMax);
}

/// Emits the polyast_min/polyast_max helpers when the program needs them.
/// They replicate std::min/std::max (which the interpreter calls) exactly,
/// including NaN propagation — fmin/fmax would differ there.
std::string minMaxHelpers(const Program& p) {
  bool usesMin = false, usesMax = false;
  programMinMax(p, usesMin, usesMax);
  std::string out;
  if (usesMin)
    out +=
        "static double polyast_min(double a, double b) {"
        " return b < a ? b : a; }\n";
  if (usesMax)
    out +=
        "static double polyast_max(double a, double b) {"
        " return a < b ? b : a; }\n";
  if (!out.empty()) out += "\n";
  return out;
}

// ---- free-iterator analysis (what an outlined body must capture) --------

void affFreeNames(const Program& p, const AffExpr& e,
                  const std::set<std::string>& bound,
                  std::set<std::string>& out) {
  for (const auto& [n, c] : e.coeffs())
    if (c != 0 && !p.isParam(n) && !bound.count(n)) out.insert(n);
}

void exprFreeNames(const Program& p, const ExprPtr& e,
                   const std::set<std::string>& bound,
                   std::set<std::string>& out) {
  if (!e) return;
  if (e->kind == Expr::Kind::IterRef) {
    if (!p.isParam(e->name) && !bound.count(e->name)) out.insert(e->name);
  } else if (e->kind == Expr::Kind::ArrayRef) {
    for (const auto& s : e->subs) affFreeNames(p, s, bound, out);
  }
  exprFreeNames(p, e->lhs, bound, out);
  exprFreeNames(p, e->rhs, bound, out);
  exprFreeNames(p, e->cond, bound, out);
}

void nodeFreeIters(const Program& p, const NodePtr& node,
                   std::set<std::string>& bound,
                   std::set<std::string>& out) {
  switch (node->kind) {
    case Node::Kind::Block:
      for (const auto& c : std::static_pointer_cast<Block>(node)->children)
        nodeFreeIters(p, c, bound, out);
      break;
    case Node::Kind::Loop: {
      auto l = std::static_pointer_cast<Loop>(node);
      for (const auto& part : l->lower.parts)
        affFreeNames(p, part, bound, out);
      for (const auto& part : l->upper.parts)
        affFreeNames(p, part, bound, out);
      const bool fresh = bound.insert(l->iter).second;
      nodeFreeIters(p, l->body, bound, out);
      if (fresh) bound.erase(l->iter);
      break;
    }
    case Node::Kind::Stmt: {
      auto s = std::static_pointer_cast<Stmt>(node);
      for (const auto& sub : s->lhsSubs) affFreeNames(p, sub, bound, out);
      for (const auto& g : s->guards) affFreeNames(p, g, bound, out);
      exprFreeNames(p, s->rhs, bound, out);
      break;
    }
  }
}

/// Enclosing iterators a subtree references (scoped: loops inside the
/// subtree bind their own iterator). These are exactly the values a spawn
/// site must pass to its outlined chunk/cell bodies through the env
/// struct.
std::vector<std::string> freeIters(const Program& p, const NodePtr& node) {
  std::set<std::string> bound, out;
  nodeFreeIters(p, node, bound, out);
  return {out.begin(), out.end()};
}

// ---- kernel emission core ----------------------------------------------

class KernelEmitter {
 public:
  KernelEmitter(const Program& p, const KernelFunctionOptions& opt)
      : p_(p), opt_(opt) {
    // Construct ids for the attribution hooks: the same pre-order
    // enumeration the interp walker uses, so both backends report
    // identical (id, kind, iter) rows for a program.
    for (const auto& c : collectParallelConstructs(p))
      constructIds_[c.loop.get()] = c.id;
  }

  std::string emit() {
    std::ostringstream body;
    emitNode(body, p_.root, 1, /*inParallel=*/false);
    std::ostringstream out;
    out << aux_.str();
    out << (opt_.external ? "void " : "static void ") << opt_.name
        << "(void) {\n"
        << body.str() << "}\n";
    return out.str();
  }

 private:
  /// One member of an outlined body's environment struct.
  struct EnvField {
    std::string type;  ///< C type of the struct member (and local copy)
    std::string name;  ///< member name (== local name inside the body)
    std::string init;  ///< expression assigned at the spawn site
  };

  std::string linearIndex(const std::string& array,
                          const std::vector<AffExpr>& subs) {
    const ArrayDecl& decl = p_.array(array);
    POLYAST_CHECK(subs.size() == decl.dims.size(),
                  "rank mismatch emitting " + array);
    std::string idx = cAff(subs[0]);
    for (std::size_t d = 1; d < subs.size(); ++d)
      idx = "(" + idx + ") * " + cAff(decl.dims[d]) + " + " + cAff(subs[d]);
    return cname(array) + "[" + idx + "]";
  }

  std::string cExpr(const ExprPtr& e) {
    switch (e->kind) {
      case Expr::Kind::IntLit:
        // The interpreter evaluates every value expression in double, so
        // integer literals become double literals (an int literal under /
        // would truncate).
        return std::to_string(e->intValue) + ".0";
      case Expr::Kind::FloatLit:
        return cFloat(e->floatValue);
      case Expr::Kind::IterRef:
        // Iterators are int64 in C; the interpreter reads them as doubles.
        return "(double)" + e->name;
      case Expr::Kind::ParamRef:
        return "(double)" + e->name;
      case Expr::Kind::ArrayRef:
        return linearIndex(e->name, e->subs);
      case Expr::Kind::Binary: {
        std::string a = cExpr(e->lhs), b = cExpr(e->rhs);
        switch (e->binOp) {
          case BinOp::Add: return "(" + a + " + " + b + ")";
          case BinOp::Sub: return "(" + a + " - " + b + ")";
          case BinOp::Mul: return "(" + a + " * " + b + ")";
          case BinOp::Div: return "(" + a + " / " + b + ")";
          case BinOp::Min: return "polyast_min(" + a + ", " + b + ")";
          case BinOp::Max: return "polyast_max(" + a + ", " + b + ")";
          case BinOp::Lt: return "(" + a + " < " + b + " ? 1.0 : 0.0)";
          case BinOp::Le: return "(" + a + " <= " + b + " ? 1.0 : 0.0)";
          case BinOp::Gt: return "(" + a + " > " + b + " ? 1.0 : 0.0)";
          case BinOp::Ge: return "(" + a + " >= " + b + " ? 1.0 : 0.0)";
          case BinOp::Eq: return "(" + a + " == " + b + " ? 1.0 : 0.0)";
        }
        break;
      }
      case Expr::Kind::Unary: {
        std::string a = cExpr(e->lhs);
        switch (e->unOp) {
          case UnOp::Neg: return "(-" + a + ")";
          case UnOp::Sqrt: return "sqrt(" + a + ")";
          case UnOp::Exp: return "exp(" + a + ")";
          case UnOp::Abs: return "fabs(" + a + ")";
        }
        break;
      }
      case Expr::Kind::Select:
        return "(" + cExpr(e->cond) + " != 0.0 ? " + cExpr(e->lhs) + " : " +
               cExpr(e->rhs) + ")";
    }
    POLYAST_CHECK(false, "unreachable expression kind in C emission");
  }

  void emitStmt(std::ostream& os, const std::shared_ptr<Stmt>& s,
                const std::string& pad) {
    os << pad;
    if (!s->guards.empty()) {
      os << "if (";
      for (std::size_t i = 0; i < s->guards.size(); ++i) {
        if (i) os << " && ";
        os << cAff(s->guards[i]) << " >= 0";
      }
      os << ") ";
    }
    os << linearIndex(s->lhsArray, s->lhsSubs);
    switch (s->op) {
      case AssignOp::Set: os << " = "; break;
      case AssignOp::AddAssign: os << " += "; break;
      case AssignOp::SubAssign: os << " -= "; break;
      case AssignOp::MulAssign: os << " *= "; break;
      case AssignOp::DivAssign: os << " /= "; break;
    }
    os << cExpr(s->rhs) << ";\n";
  }

  /// `inParallel` = already inside an outlined parallel body: nested marks
  /// run sequentially there (exactly what the interpreted executor does —
  /// a chunk/cell interprets its whole subtree, marks ignored).
  void emitNode(std::ostream& os, const NodePtr& node, int depth,
                bool inParallel) {
    std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    switch (node->kind) {
      case Node::Kind::Block:
        for (const auto& c : std::static_pointer_cast<Block>(node)->children)
          emitNode(os, c, depth, inParallel);
        break;
      case Node::Kind::Loop: {
        auto l = std::static_pointer_cast<Loop>(node);
        if (opt_.simd && l->microKernel) {
          emitMicroKernel(os, l, depth, inParallel);
          break;
        }
        if (opt_.parallel == ParallelLowering::Runtime && !inParallel &&
            l->parallel != ParallelKind::None) {
          // Attribution bracket: one enter/exit pair per dynamic
          // encounter, fired even when the trip space is empty and around
          // sequential fallbacks — the exact counting semantics of the
          // interpreted walker's construct hooks.
          auto cid = constructIds_.find(l.get());
          POLYAST_CHECK(cid != constructIds_.end(),
                        "marked loop missing from the construct index");
          os << pad << "polyast_rt->construct_enter(" << cid->second << ", \""
             << parallelKindName(l->parallel) << "\", \"" << l->iter
             << "\");\n";
          emitParallel(os, l, depth);
          os << pad << "polyast_rt->construct_exit(" << cid->second
             << ");\n";
          break;
        }
        if (opt_.parallel != ParallelLowering::Runtime) {
          if (l->parallel == ParallelKind::Doall) {
            if (opt_.parallel == ParallelLowering::OpenMP)
              os << pad << "#pragma omp parallel for\n";
            else
              os << pad << "/* polyast: doall */\n";
          } else if (l->parallel != ParallelKind::None) {
            // Reduction / pipeline need the runtime's constructs (array
            // reductions, point-to-point awaits); mark them for a
            // downstream pass or manual conversion.
            os << pad << "/* polyast: " << parallelKindName(l->parallel);
            if (l->pipelineDepth > 0) os << " depth=" << l->pipelineDepth;
            os << " */\n";
          }
        }
        os << pad << "for (int64_t " << l->iter << " = "
           << cBound(l->lower, true) << "; " << l->iter << " < "
           << cBound(l->upper, false) << "; " << l->iter << " += "
           << l->step << ") {\n";
        emitNode(os, l->body, depth + 1, inParallel);
        os << pad << "}\n";
        break;
      }
      case Node::Kind::Stmt:
        emitStmt(os, std::static_pointer_cast<Stmt>(node), pad);
        break;
    }
  }

  // ---- packed SIMD microkernel lowering --------------------------------

  static bool exprUsesIterName(const ExprPtr& e, const std::string& iter) {
    if (!e) return false;
    if (e->kind == Expr::Kind::IterRef && e->name == iter) return true;
    if (e->kind == Expr::Kind::ArrayRef)
      for (const auto& s : e->subs)
        if (s.coeff(iter) != 0) return true;
    return exprUsesIterName(e->lhs, iter) || exprUsesIterName(e->rhs, iter) ||
           exprUsesIterName(e->cond, iter);
  }

  /// The plain rolled emission of a loop, ignoring any microkernel tag —
  /// the in-place scalar fallback branch of emitMicroKernel.
  void emitScalarNest(std::ostream& os, const std::shared_ptr<Loop>& l,
                      int depth, bool inParallel) {
    std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    os << pad << "for (int64_t " << l->iter << " = "
       << cBound(l->lower, true) << "; " << l->iter << " < "
       << cBound(l->upper, false) << "; " << l->iter << " += " << l->step
       << ") {\n";
    emitNode(os, l->body, depth + 1, inParallel);
    os << pad << "}\n";
  }

  /// Packed SIMD lowering of a tagged contraction nest (legality contract
  /// in ir::MicroKernelTag). The two point loops are replaced wholesale
  /// and the lane dimension runs in vector blocks (32 lanes / eight
  /// polyast_v4d accumulators, then 8 lanes / two) held across the whole
  /// stream loop. When the lane-strided factor is contiguous in the lane
  /// (unit lane coefficient in its minor subscript — gemm, 2mm) the
  /// vectors load straight from the source array; otherwise (syrk's
  /// transposed factor) both factors are first packed into fixed-size
  /// aligned panels. Bit-exactness with the rolled nest: per output cell
  /// the stream-order of the adds is unchanged, the values combined are
  /// the very expressions the scalar code evaluates (IEEE multiply is
  /// commutative bit-for-bit), and partial blocks run scalar lanes so no
  /// padded lane ever touches the output. Panel-path windows larger than
  /// the panels — impossible for tiles this pipeline produces, but cheap
  /// to guard — take the original rolled nest.
  void emitMicroKernel(std::ostream& os, const std::shared_ptr<Loop>& l,
                       int depth, bool inParallel) {
    const MicroKernelTag& tag = *l->microKernel;
    auto inner = soleLoopChild(l->body);
    POLYAST_CHECK(inner && inner->body->children.size() == 1 &&
                      inner->body->children.front()->kind == Node::Kind::Stmt,
                  "microkernel tag on a non-contraction nest");
    auto stmt = std::static_pointer_cast<Stmt>(inner->body->children.front());
    const Loop& lane = l->iter == tag.laneIter ? *l : *inner;
    const Loop& stream = l->iter == tag.streamIter ? *l : *inner;
    POLYAST_CHECK(lane.iter == tag.laneIter && stream.iter == tag.streamIter,
                  "microkernel tag does not match the nest iterators");
    POLYAST_CHECK(stmt->guards.empty() && stmt->op == AssignOp::AddAssign &&
                      stmt->rhs && stmt->rhs->kind == Expr::Kind::Binary &&
                      stmt->rhs->binOp == BinOp::Mul,
                  "microkernel statement is not a multiply-accumulate");
    ExprPtr laneRef, invariant;
    for (const auto& [cand, other] :
         {std::pair(stmt->rhs->lhs, stmt->rhs->rhs),
          std::pair(stmt->rhs->rhs, stmt->rhs->lhs)}) {
      if (cand->kind == Expr::Kind::ArrayRef &&
          exprUsesIterName(cand, lane.iter) &&
          !exprUsesIterName(other, lane.iter)) {
        laneRef = cand;
        invariant = other;
        break;
      }
    }
    POLYAST_CHECK(laneRef, "microkernel rhs has no lane-strided factor");

    // Direct-load eligibility: the lane appears only in the minor
    // subscript of the streamed factor, with coefficient 1, so lane
    // neighbours are adjacent in memory and the vectors can load straight
    // from the source array — no panel, no per-visit packing cost.
    bool direct = !laneRef->subs.empty() &&
                  laneRef->subs.back().coeff(lane.iter) == 1;
    for (std::size_t i = 0; direct && i + 1 < laneRef->subs.size(); ++i)
      if (laneRef->subs[i].coeff(lane.iter) != 0) direct = false;

    const std::string KT = std::to_string(tag.maxStream);
    const std::string JT = std::to_string(tag.maxLane);
    std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    std::string p2 = pad + "  ", p3 = p2 + "  ", p4 = p3 + "  ",
                p5 = p4 + "  ", p6 = p5 + "  ";
    os << pad << "{ /* " << (direct ? "direct" : "packed")
       << " simd microkernel: lane=" << tag.laneIter
       << " stream=" << tag.streamIter << " */\n";
    os << p2 << "const int64_t polyast_mk_klo = " << cBound(stream.lower, true)
       << ";\n";
    os << p2 << "const int64_t polyast_mk_khi = "
       << cBound(stream.upper, false) << ";\n";
    os << p2 << "const int64_t polyast_mk_jlo = " << cBound(lane.lower, true)
       << ";\n";
    os << p2 << "const int64_t polyast_mk_jhi = " << cBound(lane.upper, false)
       << ";\n";
    os << p2 << "const int64_t polyast_mk_kn = polyast_mk_khi -"
       << " polyast_mk_klo;\n";
    os << p2 << "const int64_t polyast_mk_jn = polyast_mk_jhi -"
       << " polyast_mk_jlo;\n";
    if (direct)
      os << p2 << "if (polyast_mk_kn > 0 && polyast_mk_jn > 0) {\n";
    else
      os << p2 << "if (polyast_mk_kn > 0 && polyast_mk_jn > 0 &&"
         << " polyast_mk_kn <= " << KT << " && polyast_mk_jn <= " << JT
         << ") {\n";
    if (!direct) {
      os << p3 << "double polyast_mk_a[" << KT
         << "] __attribute__((aligned(32)));\n";
      os << p3 << "double polyast_mk_b[" << KT << " * " << JT
         << "] __attribute__((aligned(32)));\n";
      os << p3 << "for (int64_t polyast_mk_p = 0;"
         << " polyast_mk_p < polyast_mk_kn; ++polyast_mk_p) {\n";
      os << p4 << "const int64_t " << stream.iter
         << " = polyast_mk_klo + polyast_mk_p; (void)" << stream.iter << ";\n";
      os << p4 << "polyast_mk_a[polyast_mk_p] = " << cExpr(invariant) << ";\n";
      os << p4 << "#pragma omp simd\n";
      os << p4 << "for (int64_t polyast_mk_q = 0;"
         << " polyast_mk_q < polyast_mk_jn; ++polyast_mk_q) {\n";
      os << p5 << "const int64_t " << lane.iter
         << " = polyast_mk_jlo + polyast_mk_q;\n";
      os << p5 << "polyast_mk_b[polyast_mk_p * " << JT
         << " + polyast_mk_q] = " << cExpr(laneRef) << ";\n";
      os << p4 << "}\n";
      os << p3 << "}\n";
    }
    // Output-row base pointer at lane == jlo; the lane coefficient in the
    // store is 1, so lane lanes are contiguous from here.
    os << p3 << "double *restrict polyast_mk_c;\n";
    os << p3 << "{\n";
    os << p4 << "const int64_t " << lane.iter << " = polyast_mk_jlo;\n";
    os << p4 << "polyast_mk_c = &"
       << linearIndex(stmt->lhsArray, stmt->lhsSubs) << ";\n";
    os << p3 << "}\n";
    // Vector blocks in two tiers: 32-lane blocks carry eight independent
    // accumulator chains (the per-cell add chain is serial by the
    // bit-exactness contract, so across-lane chains are the only
    // instruction-level parallelism available — eight chains hide the
    // vector-add latency completely), then 8-lane blocks mop up.
    os << p3 << "int64_t polyast_mk_q = 0;\n";
    for (int lanes : {32, 8}) {
      const int accs = lanes / 4;
      os << p3 << "for (; polyast_mk_q + " << lanes
         << " <= polyast_mk_jn; polyast_mk_q += " << lanes << ") {\n";
      for (int a = 0; a < accs; ++a)
        os << p4 << "polyast_v4d polyast_mk_acc" << a
           << " = *(const polyast_v4d *)(polyast_mk_c + polyast_mk_q + "
           << 4 * a << ");\n";
      os << p4 << "for (int64_t polyast_mk_p = 0;"
         << " polyast_mk_p < polyast_mk_kn; ++polyast_mk_p) {\n";
      if (direct) {
        os << p5 << "const int64_t " << stream.iter
           << " = polyast_mk_klo + polyast_mk_p; (void)" << stream.iter
           << ";\n";
        os << p5 << "const double polyast_mk_sc = " << cExpr(invariant)
           << ";\n";
        os << p5 << "const polyast_v4d polyast_mk_s = {polyast_mk_sc,"
           << " polyast_mk_sc, polyast_mk_sc, polyast_mk_sc};\n";
        os << p5 << "const double *polyast_mk_brow;\n";
        os << p5 << "{\n";
        os << p6 << "const int64_t " << lane.iter
           << " = polyast_mk_jlo + polyast_mk_q;\n";
        os << p6 << "polyast_mk_brow = &"
           << linearIndex(laneRef->name, laneRef->subs) << ";\n";
        os << p5 << "}\n";
      } else {
        os << p5 << "const double polyast_mk_sc ="
           << " polyast_mk_a[polyast_mk_p];\n";
        os << p5 << "const polyast_v4d polyast_mk_s = {polyast_mk_sc,"
           << " polyast_mk_sc, polyast_mk_sc, polyast_mk_sc};\n";
        os << p5 << "const double *polyast_mk_brow = polyast_mk_b +"
           << " polyast_mk_p * " << JT << " + polyast_mk_q;\n";
      }
      for (int a = 0; a < accs; ++a)
        os << p5 << "polyast_mk_acc" << a << " += polyast_mk_s *"
           << " *(const polyast_v4d *)(polyast_mk_brow + " << 4 * a
           << ");\n";
      os << p4 << "}\n";
      for (int a = 0; a < accs; ++a)
        os << p4 << "*(polyast_v4d *)(polyast_mk_c + polyast_mk_q + "
           << 4 * a << ") = polyast_mk_acc" << a << ";\n";
      os << p3 << "}\n";
    }
    os << p3 << "for (; polyast_mk_q < polyast_mk_jn; ++polyast_mk_q) {\n";
    os << p4 << "double polyast_mk_acc = polyast_mk_c[polyast_mk_q];\n";
    if (direct) {
      os << p4 << "const int64_t " << lane.iter
         << " = polyast_mk_jlo + polyast_mk_q;\n";
      os << p4 << "for (int64_t polyast_mk_p = 0;"
         << " polyast_mk_p < polyast_mk_kn; ++polyast_mk_p) {\n";
      os << p5 << "const int64_t " << stream.iter
         << " = polyast_mk_klo + polyast_mk_p; (void)" << stream.iter << ";\n";
      os << p5 << "polyast_mk_acc += " << cExpr(stmt->rhs) << ";\n";
      os << p4 << "}\n";
    } else {
      os << p4 << "for (int64_t polyast_mk_p = 0;"
         << " polyast_mk_p < polyast_mk_kn; ++polyast_mk_p)\n";
      os << p5 << "polyast_mk_acc += polyast_mk_a[polyast_mk_p] *"
         << " polyast_mk_b[polyast_mk_p * " << JT << " + polyast_mk_q];\n";
    }
    os << p4 << "polyast_mk_c[polyast_mk_q] = polyast_mk_acc;\n";
    os << p3 << "}\n";
    if (direct) {
      os << p2 << "}\n";
    } else {
      os << p2 << "} else if (polyast_mk_kn > 0 && polyast_mk_jn > 0) {\n";
      emitScalarNest(os, l, depth + 1, inParallel);
      os << p2 << "}\n";
    }
    os << pad << "}\n";
  }

  // ---- runtime lowering of parallelism marks ---------------------------
  //
  // Every spawn site mirrors exec/par_exec's walker decisions exactly
  // (shared ir/ast.hpp shape queries, same counting points, same
  // trip-count arithmetic), so a native run reports the identical
  // ParallelRunReport and computes the identical floating-point results.

  void emitParallel(std::ostream& os, const std::shared_ptr<Loop>& l,
                    int depth) {
    POLYAST_CHECK(l->step >= 1, "non-positive loop step");
    switch (l->parallel) {
      case ParallelKind::Doall:
        emitDoallLike(os, l, depth, /*asReduction=*/false);
        return;
      case ParallelKind::Reduction:
        emitReduction(os, l, depth);
        return;
      case ParallelKind::Pipeline:
        emitPipeline(os, l, depth, /*withReduction=*/false);
        return;
      case ParallelKind::ReductionPipeline:
        emitPipeline(os, l, depth, /*withReduction=*/true);
        return;
      case ParallelKind::None:
        break;
    }
  }

  std::vector<EnvField> capturedFields(const NodePtr& subtree) {
    std::vector<EnvField> fields;
    for (const auto& n : freeIters(p_, subtree))
      fields.push_back({"int64_t", n, n});
    return fields;
  }

  void emitEnvStruct(int id, const std::vector<EnvField>& fields) {
    if (fields.empty()) return;
    aux_ << "typedef struct {\n";
    for (const auto& f : fields)
      aux_ << "  " << f.type << (f.type.back() == '*' ? "" : " ") << f.name
           << ";\n";
    aux_ << "} polyast_env_" << id << "_t;\n";
  }

  void emitEnvUnpack(std::ostream& os, int id,
                     const std::vector<EnvField>& fields,
                     const std::string& pad) {
    if (fields.empty()) return;
    os << pad << "const polyast_env_" << id << "_t *polyast_env = "
       << "(const polyast_env_" << id << "_t *)polyast_envp;\n";
    for (const auto& f : fields)
      os << pad << f.type << (f.type.back() == '*' ? "" : " ") << f.name
         << " = polyast_env->" << f.name << "; (void)" << f.name << ";\n";
  }

  void emitEnvSetup(std::ostream& os, int id,
                    const std::vector<EnvField>& fields,
                    const std::string& pad) {
    if (fields.empty()) return;
    os << pad << "polyast_env_" << id << "_t polyast_env;\n";
    for (const auto& f : fields)
      os << pad << "polyast_env." << f.name << " = " << f.init << ";\n";
  }

  static std::string envArg(const std::vector<EnvField>& fields) {
    return fields.empty() ? "0" : "&polyast_env";
  }

  void emitTripCount(std::ostream& os, const Loop& l,
                     const std::string& pad) {
    os << pad << "const int64_t polyast_lo = " << cBound(l.lower, true)
       << ";\n";
    os << pad << "const int64_t polyast_hi = " << cBound(l.upper, false)
       << ";\n";
    os << pad << "const int64_t polyast_trips = polyast_lo < polyast_hi ? "
       << "(polyast_hi - polyast_lo + " << l.step << " - 1) / " << l.step
       << " : 0;\n";
  }

  /// Doall spawn site; also the lowering of a Reduction mark with no
  /// privatizable accumulator (a valid such mark has no carried dependence
  /// at all, so a plain static-schedule doall is equivalent — same as the
  /// interpreted executor).
  void emitDoallLike(std::ostream& os, const std::shared_ptr<Loop>& l,
                     int depth, bool asReduction) {
    const int id = id_++;
    const std::vector<EnvField> fields = capturedFields(l);
    const bool guided =
        !asReduction && innerBoundsReference(l->body, l->iter);
    emitEnvStruct(id, fields);
    aux_ << "static void polyast_body_" << id
         << "(void *polyast_envp, unsigned polyast_tid,"
            " int64_t polyast_begin, int64_t polyast_end) {\n"
            "  (void)polyast_envp; (void)polyast_tid;\n";
    emitEnvUnpack(aux_, id, fields, "  ");
    aux_ << "  const int64_t polyast_lo = " << cBound(l->lower, true)
         << ";\n"
            "  for (int64_t polyast_t = polyast_begin;"
            " polyast_t < polyast_end; ++polyast_t) {\n"
         << "    const int64_t " << l->iter << " = polyast_lo + polyast_t * "
         << l->step << ";\n";
    emitNode(aux_, l->body, 2, /*inParallel=*/true);
    aux_ << "  }\n}\n\n";

    std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    os << pad << "{\n";
    os << pad << "  polyast_rt->count("
       << (asReduction ? "POLYAST_COUNT_REDUCTION" : "POLYAST_COUNT_DOALL")
       << ");\n";
    if (guided) os << pad << "  polyast_rt->count(POLYAST_COUNT_GUIDED);\n";
    emitTripCount(os, *l, pad + "  ");
    os << pad << "  if (polyast_trips > 0) {\n";
    emitEnvSetup(os, id, fields, pad + "    ");
    os << pad << "    polyast_rt->parallel_for_blocked(polyast_pool,"
       << " polyast_trips, "
       << (guided ? "POLYAST_SCHEDULE_GUIDED" : "POLYAST_SCHEDULE_STATIC")
       << ", 1, polyast_body_" << id << ", " << envArg(fields) << ");\n";
    os << pad << "  }\n" << pad << "}\n";
  }

  void emitReduction(std::ostream& os, const std::shared_ptr<Loop>& l,
                     int depth) {
    const std::vector<std::string> priv = privatizableArrays(l);
    if (priv.empty()) {
      emitDoallLike(os, l, depth, /*asReduction=*/true);
      return;
    }
    const int id = id_++;
    const std::vector<EnvField> fields = capturedFields(l);
    emitEnvStruct(id, fields);
    aux_ << "static void polyast_body_" << id
         << "(void *polyast_envp, unsigned polyast_tid,"
            " double *const *polyast_priv,"
            " int64_t polyast_begin, int64_t polyast_end) {\n"
            "  (void)polyast_envp; (void)polyast_tid;\n";
    emitEnvUnpack(aux_, id, fields, "  ");
    // Route every access to a privatized accumulator into the thread's
    // zero-initialized private buffer (shadows the file-scope array); the
    // runtime merges the partial sums after the chunks drain.
    for (std::size_t k = 0; k < priv.size(); ++k)
      aux_ << "  double *const " << cname(priv[k]) << " = polyast_priv["
           << k << "];\n";
    aux_ << "  const int64_t polyast_lo = " << cBound(l->lower, true)
         << ";\n"
            "  for (int64_t polyast_t = polyast_begin;"
            " polyast_t < polyast_end; ++polyast_t) {\n"
         << "    const int64_t " << l->iter << " = polyast_lo + polyast_t * "
         << l->step << ";\n";
    emitNode(aux_, l->body, 2, /*inParallel=*/true);
    aux_ << "  }\n}\n\n";

    std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    os << pad << "{\n";
    os << pad << "  polyast_rt->count(POLYAST_COUNT_REDUCTION);\n";
    emitTripCount(os, *l, pad + "  ");
    os << pad << "  if (polyast_trips > 0) {\n";
    os << pad << "    polyast_reduce_target polyast_targets[" << priv.size()
       << "] = {\n";
    for (const auto& name : priv)
      os << pad << "      { " << cname(name) << ", (uint64_t)("
         << totalElems(p_.array(name)) << ") },\n";
    os << pad << "    };\n";
    emitEnvSetup(os, id, fields, pad + "    ");
    os << pad << "    polyast_rt->parallel_reduce(polyast_pool,"
       << " polyast_trips, polyast_targets, " << priv.size()
       << ", polyast_body_" << id << ", " << envArg(fields) << ");\n";
    os << pad << "  }\n" << pad << "}\n";
  }

  /// Per-thread private accumulator fields/alloc/merge for a
  /// ReductionPipeline (the pipeline constructs have no built-in
  /// privatization, so the TU allocates nthreads * len scratch per
  /// accumulator, cells index it by worker id, and the spawn site sums
  /// the slices into the shared array after the pipeline drains — the
  /// same scheme the interpreted executor's TidStates implement).
  void privFields(const std::vector<std::string>& priv,
                  std::vector<EnvField>& fields) {
    for (std::size_t k = 0; k < priv.size(); ++k) {
      std::string n = "polyast_priv" + std::to_string(k);
      fields.push_back({"double *", n, n});
    }
  }

  void emitPrivAlloc(std::ostream& os, const std::vector<std::string>& priv,
                     const std::string& pad) {
    if (priv.empty()) return;
    os << pad << "const uint64_t polyast_nt = "
       << "(uint64_t)polyast_rt->thread_count(polyast_pool);\n";
    for (std::size_t k = 0; k < priv.size(); ++k)
      os << pad << "double *polyast_priv" << k
         << " = (double *)calloc(polyast_nt * (uint64_t)("
         << totalElems(p_.array(priv[k])) << "), sizeof(double));\n";
  }

  void emitPrivShadows(std::ostream& os,
                       const std::vector<std::string>& priv,
                       const std::string& pad) {
    for (std::size_t k = 0; k < priv.size(); ++k)
      os << pad << "double *const " << cname(priv[k]) << " = polyast_priv"
         << k << " + (uint64_t)polyast_rt->current_tid() * (uint64_t)("
         << totalElems(p_.array(priv[k])) << ");\n";
  }

  void emitPrivMerge(std::ostream& os, const std::vector<std::string>& priv,
                     const std::string& pad) {
    for (std::size_t k = 0; k < priv.size(); ++k) {
      const std::string len = "(uint64_t)(" + totalElems(p_.array(priv[k])) +
                              ")";
      os << pad << "for (uint64_t polyast_i = 0; polyast_i < " << len
         << "; ++polyast_i) {\n"
         << pad << "  double polyast_sum = 0.0;\n"
         << pad << "  for (uint64_t polyast_w = 0; polyast_w < polyast_nt;"
         << " ++polyast_w)\n"
         << pad << "    polyast_sum += polyast_priv" << k
         << "[polyast_w * " << len << " + polyast_i];\n"
         << pad << "  " << cname(priv[k]) << "[polyast_i] += polyast_sum;\n"
         << pad << "}\n"
         << pad << "free(polyast_priv" << k << ");\n";
    }
  }

  void emitFallbackNest(std::ostream& os, const std::shared_ptr<Loop>& l,
                        int depth, const std::string& note) {
    std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    os << pad << "polyast_rt->count_fallback(\"" << note << "\");\n";
    emitNode(os, l, depth, /*inParallel=*/true);
  }

  /// Pipeline / ReductionPipeline lowering; shape selection mirrors the
  /// walker: pipeline3D (depth >= 3, rectangular 3-deep chain), then
  /// pipeline2D (rectangular chained pair), then pipelineDynamic2D
  /// (inner bounds reference the outer iterator), else sequential
  /// fallback.
  void emitPipeline(std::ostream& os, const std::shared_ptr<Loop>& l,
                    int depth, bool withReduction) {
    const std::string note =
        "loop " + l->iter + " (" + parallelKindName(l->parallel) + "): " +
        (withReduction ? "reduction pipeline body is not a chained loop nest"
                       : "pipeline body is not a chained loop nest");
    auto inner = soleLoopChild(l->body);
    if (!inner) {
      emitFallbackNest(os, l, depth, note);
      return;
    }
    POLYAST_CHECK(inner->step >= 1, "non-positive loop step");
    const std::int64_t syncDepth =
        l->pipelineDepth > 0 ? l->pipelineDepth : 2;
    const std::vector<std::string> priv =
        withReduction ? privatizableArrays(l) : std::vector<std::string>();
    const char* kindCount = withReduction
                                ? "POLYAST_COUNT_REDUCTION_PIPELINE"
                                : "POLYAST_COUNT_PIPELINE";
    auto third = syncDepth >= 3 ? soleLoopChild(inner->body) : nullptr;
    if (third && boundsIndependentOf(*inner, l->iter) &&
        boundsIndependentOf(*third, l->iter) &&
        boundsIndependentOf(*third, inner->iter)) {
      POLYAST_CHECK(third->step >= 1, "non-positive loop step");
      emitPipelineGrid(os, l, inner, third, depth, kindCount, priv);
      return;
    }
    if (boundsIndependentOf(*inner, l->iter)) {
      emitPipelineGrid(os, l, inner, nullptr, depth, kindCount, priv);
      return;
    }
    emitPipelineDynamic(os, l, inner, depth, kindCount, priv, note);
  }

  /// Rectangular 2D (third == null) or 3D pipeline: all cell coordinates
  /// map back to iterator values by recomputing the chain loops' lower
  /// bounds (independent of the chain iterators by construction; any
  /// enclosing sequential iterators arrive via the env).
  void emitPipelineGrid(std::ostream& os, const std::shared_ptr<Loop>& outer,
                        const std::shared_ptr<Loop>& inner,
                        const std::shared_ptr<Loop>& third, int depth,
                        const char* kindCount,
                        const std::vector<std::string>& priv) {
    const int id = id_++;
    const bool is3d = third != nullptr;
    std::vector<EnvField> fields = capturedFields(outer);
    privFields(priv, fields);
    emitEnvStruct(id, fields);
    aux_ << "static void polyast_cell_" << id << "(void *polyast_envp, ";
    aux_ << (is3d ? "int64_t polyast_p, int64_t polyast_r, int64_t polyast_c"
                  : "int64_t polyast_r, int64_t polyast_c")
         << ") {\n  (void)polyast_envp;\n";
    emitEnvUnpack(aux_, id, fields, "  ");
    if (is3d) {
      aux_ << "  const int64_t " << outer->iter << " = "
           << cBound(outer->lower, true) << " + polyast_p * " << outer->step
           << ";\n";
      aux_ << "  const int64_t " << inner->iter << " = "
           << cBound(inner->lower, true) << " + polyast_r * " << inner->step
           << ";\n";
      aux_ << "  const int64_t " << third->iter << " = "
           << cBound(third->lower, true) << " + polyast_c * " << third->step
           << ";\n";
    } else {
      aux_ << "  const int64_t " << outer->iter << " = "
           << cBound(outer->lower, true) << " + polyast_r * " << outer->step
           << ";\n";
      aux_ << "  const int64_t " << inner->iter << " = "
           << cBound(inner->lower, true) << " + polyast_c * " << inner->step
           << ";\n";
    }
    emitPrivShadows(aux_, priv, "  ");
    emitNode(aux_, is3d ? third->body : inner->body, 1, /*inParallel=*/true);
    aux_ << "}\n\n";

    std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    std::string p2 = pad + "  ";
    os << pad << "{\n";
    os << p2 << "polyast_rt->count(" << kindCount << ");\n";
    if (is3d) os << p2 << "polyast_rt->count(POLYAST_COUNT_PIPELINE_3D);\n";
    auto dim = [&](const char* n, const std::shared_ptr<Loop>& lp) {
      os << p2 << "const int64_t polyast_" << n << "_lo = "
         << cBound(lp->lower, true) << ";\n";
      os << p2 << "const int64_t polyast_" << n << "_hi = "
         << cBound(lp->upper, false) << ";\n";
      os << p2 << "const int64_t polyast_" << n << "_n = polyast_" << n
         << "_lo < polyast_" << n << "_hi ? (polyast_" << n
         << "_hi - polyast_" << n << "_lo + " << lp->step << " - 1) / "
         << lp->step << " : 0;\n";
    };
    dim("d0", outer);
    dim("d1", inner);
    if (is3d) dim("d2", third);
    os << p2 << "if (polyast_d0_n > 0 && polyast_d1_n > 0"
       << (is3d ? " && polyast_d2_n > 0" : "") << ") {\n";
    std::string p3 = p2 + "  ";
    emitPrivAlloc(os, priv, p3);
    emitEnvSetup(os, id, fields, p3);
    if (is3d)
      os << p3 << "polyast_rt->pipeline_3d(polyast_pool, polyast_d0_n,"
         << " polyast_d1_n, polyast_d2_n, polyast_cell_" << id << ", "
         << envArg(fields) << ");\n";
    else
      os << p3 << "polyast_rt->pipeline_2d(polyast_pool, polyast_d0_n,"
         << " polyast_d1_n, polyast_cell_" << id << ", " << envArg(fields)
         << ");\n";
    emitPrivMerge(os, priv, p3);
    os << p2 << "}\n" << pad << "}\n";
  }

  /// Triangular/trapezoidal chained pair: per-row column ranges are
  /// computed at run time from the inner bounds, the shared stride-phase
  /// lattice is verified, and on mismatch the nest runs sequentially
  /// (counted as a fallback) — all exactly as the interpreted walker does.
  void emitPipelineDynamic(std::ostream& os,
                           const std::shared_ptr<Loop>& outer,
                           const std::shared_ptr<Loop>& inner, int depth,
                           const char* kindCount,
                           const std::vector<std::string>& priv,
                           const std::string& note) {
    const int id = id_++;
    const std::int64_t s = inner->step;
    std::vector<EnvField> fields = capturedFields(outer);
    fields.push_back({"const int64_t *", "polyast_rowlo", "polyast_rowlo"});
    privFields(priv, fields);
    emitEnvStruct(id, fields);

    aux_ << "static int64_t polyast_need_" << id
         << "(void *polyast_envp, int64_t polyast_r, int64_t polyast_c) {\n";
    emitEnvUnpack(aux_, id, fields, "  ");
    // Cell (r, c) holds inner value j = rowlo[r] + c*s; it awaits every
    // previous-row cell with value <= j. The spawn site's phase check
    // makes the division exact; the runtime clamps to the row length.
    aux_ << "  return (polyast_rowlo[polyast_r] + polyast_c * " << s
         << " - polyast_rowlo[polyast_r - 1]) / " << s << " + 1;\n}\n\n";

    aux_ << "static void polyast_cell_" << id
         << "(void *polyast_envp, int64_t polyast_r, int64_t polyast_c) {\n";
    emitEnvUnpack(aux_, id, fields, "  ");
    aux_ << "  const int64_t " << outer->iter << " = "
         << cBound(outer->lower, true) << " + polyast_r * " << outer->step
         << ";\n";
    aux_ << "  const int64_t " << inner->iter
         << " = polyast_rowlo[polyast_r] + polyast_c * " << s << ";\n";
    emitPrivShadows(aux_, priv, "  ");
    emitNode(aux_, inner->body, 1, /*inParallel=*/true);
    aux_ << "}\n\n";

    std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    std::string p2 = pad + "  ";
    std::string p3 = p2 + "  ";
    std::string p4 = p3 + "  ";
    os << pad << "{\n";
    os << p2 << "const int64_t polyast_rlo = " << cBound(outer->lower, true)
       << ";\n";
    os << p2 << "const int64_t polyast_rhi = "
       << cBound(outer->upper, false) << ";\n";
    os << p2 << "const int64_t polyast_rows = polyast_rlo < polyast_rhi ? "
       << "(polyast_rhi - polyast_rlo + " << outer->step << " - 1) / "
       << outer->step << " : 0;\n";
    os << p2 << "if (polyast_rows <= 0) {\n";
    os << p3 << "polyast_rt->count(" << kindCount << ");\n";
    os << p3 << "polyast_rt->count(POLYAST_COUNT_PIPELINE_DYNAMIC);\n";
    os << p2 << "} else {\n";
    os << p3 << "int64_t *polyast_rowlo = (int64_t *)malloc("
       << "sizeof(int64_t) * (uint64_t)polyast_rows);\n";
    os << p3 << "int64_t *polyast_rowcols = (int64_t *)malloc("
       << "sizeof(int64_t) * (uint64_t)polyast_rows);\n";
    os << p3 << "for (int64_t polyast_r = 0; polyast_r < polyast_rows;"
       << " ++polyast_r) {\n";
    os << p4 << "const int64_t " << outer->iter
       << " = polyast_rlo + polyast_r * " << outer->step << ";\n";
    os << p4 << "const int64_t polyast_ilo = " << cBound(inner->lower, true)
       << ";\n";
    os << p4 << "const int64_t polyast_ihi = "
       << cBound(inner->upper, false) << ";\n";
    os << p4 << "polyast_rowlo[polyast_r] = polyast_ilo;\n";
    os << p4 << "polyast_rowcols[polyast_r] = polyast_ilo < polyast_ihi ? "
       << "(polyast_ihi - polyast_ilo + " << s << " - 1) / " << s
       << " : 0;\n";
    os << p3 << "}\n";
    // Transitive coverage needs every non-empty row on one stride-s
    // lattice (see the walker's phase check).
    os << p3 << "int polyast_ok = 1;\n";
    os << p3 << "int64_t polyast_first = -1;\n";
    os << p3 << "for (int64_t polyast_r = 0; polyast_r < polyast_rows;"
       << " ++polyast_r) {\n";
    os << p4 << "if (polyast_rowcols[polyast_r] <= 0) continue;\n";
    os << p4 << "if (polyast_first < 0) polyast_first = polyast_r;\n";
    os << p4 << "const int64_t polyast_delta = polyast_rowlo[polyast_r] - "
       << "polyast_rowlo[polyast_first];\n";
    os << p4 << "if (((polyast_delta % " << s << ") + " << s << ") % " << s
       << " != 0) { polyast_ok = 0; break; }\n";
    os << p3 << "}\n";
    os << p3 << "if (polyast_ok) {\n";
    os << p4 << "polyast_rt->count(" << kindCount << ");\n";
    os << p4 << "polyast_rt->count(POLYAST_COUNT_PIPELINE_DYNAMIC);\n";
    emitPrivAlloc(os, priv, p4);
    emitEnvSetup(os, id, fields, p4);
    os << p4 << "polyast_rt->pipeline_dynamic_2d(polyast_pool,"
       << " polyast_rowcols, polyast_rows, polyast_need_" << id
       << ", polyast_cell_" << id << ", " << envArg(fields) << ");\n";
    emitPrivMerge(os, priv, p4);
    os << p3 << "} else {\n";
    emitFallbackNest(os, outer, depth + 3, note);
    os << p3 << "}\n";
    os << p3 << "free(polyast_rowlo);\n";
    os << p3 << "free(polyast_rowcols);\n";
    os << p2 << "}\n" << pad << "}\n";
  }

  const Program& p_;
  KernelFunctionOptions opt_;
  std::ostringstream aux_;
  std::map<const Loop*, std::int64_t> constructIds_;
  int id_ = 0;
};

// ---- TU assembly --------------------------------------------------------

std::string arrayDeclarations(const Program& p) {
  std::string out;
  for (const auto& a : p.arrays)
    out += "static double *" + cname(a.name) + "; /* " + totalElems(a) +
           " elements */\n";
  out += "\n";
  return out;
}

const char* kSeederHelpers =
    // Mirrors exec::Context::seedAll so checksums are comparable.
    "static void polyast_seed(double *buf, const char *name, "
    "int64_t n) {\n"
    "  uint64_t h = 1469598103934665603ULL;\n"
    "  for (const char *c = name; *c; ++c)\n"
    "    h = (h ^ (uint64_t)*c) * 1099511628211ULL;\n"
    "  for (int64_t i = 0; i < n; ++i) {\n"
    "    uint64_t x = h ^ ((uint64_t)i * 0x9e3779b97f4a7c15ULL);\n"
    "    x ^= x >> 30; x *= 0xbf58476d1ce4e5b9ULL; x ^= x >> 27;\n"
    "    buf[i] = 0.5 + (double)(x % 1000003ULL) / 1000003.0;\n"
    "  }\n"
    "}\n\n"
    "static double polyast_checksum(const double *buf, int64_t n) {\n"
    "  double s = 0.0, w = 1.0;\n"
    "  for (int64_t i = 0; i < n; ++i) {\n"
    "    s += w * buf[i];\n"
    "    w = (w >= 4.0) ? 1.0 : w + 1e-4;\n"
    "  }\n"
    "  return s;\n"
    "}\n\n";

std::string emitMain(const Program& p) {
  std::ostringstream os;
  os << "int main(void) {\n";
  for (const auto& a : p.arrays) {
    const std::string total = totalElems(a);
    os << "  " << cname(a.name)
       << " = (double *)malloc(sizeof(double) * (" << total << "));\n";
    os << "  polyast_seed(" << cname(a.name) << ", \"" << a.name << "\", "
       << total << ");\n";
  }
  os << "  struct timespec t0, t1;\n"
        "  clock_gettime(CLOCK_MONOTONIC, &t0);\n"
        "  kernel();\n"
        "  clock_gettime(CLOCK_MONOTONIC, &t1);\n"
        "  double secs = (double)(t1.tv_sec - t0.tv_sec) +\n"
        "                1e-9 * (double)(t1.tv_nsec - t0.tv_nsec);\n";
  os << "  double total = 0.0;\n";
  for (const auto& a : p.arrays) {
    os << "  { double polyast_c = polyast_checksum(" << cname(a.name)
       << ", " << totalElems(a) << "); total += polyast_c;\n    printf(\""
       << a.name << ": %.17g\\n\", polyast_c); }\n";
  }
  os << "  printf(\"total: %.17g\\n\", total);\n"
        "  printf(\"seconds: %.6f\\n\", secs);\n"
        "  return 0;\n}\n";
  return os.str();
}

/// The capi structs as seen from the JIT TU: a textual mirror of
/// runtime/capi.hpp (same field order and types — that is the ABI, guarded
/// by the version stamp).
std::string nativeCapiDecls() {
  std::ostringstream os;
  os << "#define POLYAST_COUNT_DOALL 0\n"
        "#define POLYAST_COUNT_GUIDED 1\n"
        "#define POLYAST_COUNT_REDUCTION 2\n"
        "#define POLYAST_COUNT_PIPELINE 3\n"
        "#define POLYAST_COUNT_PIPELINE_DYNAMIC 4\n"
        "#define POLYAST_COUNT_PIPELINE_3D 5\n"
        "#define POLYAST_COUNT_REDUCTION_PIPELINE 6\n"
        "#define POLYAST_SCHEDULE_STATIC 0\n"
        "#define POLYAST_SCHEDULE_GUIDED 1\n"
        "\n"
        "typedef struct polyast_reduce_target {\n"
        "  double *data;\n"
        "  uint64_t size;\n"
        "} polyast_reduce_target;\n"
        "\n"
        "typedef struct polyast_runtime_api {\n"
        "  int64_t abi_version;\n"
        "  void (*parallel_for_blocked)(void *pool, int64_t trips,"
        " int schedule, int64_t min_block,\n"
        "      void (*chunk)(void *env, unsigned tid, int64_t begin,"
        " int64_t end), void *env);\n"
        "  void (*parallel_reduce)(void *pool, int64_t trips,"
        " const polyast_reduce_target *targets, int64_t n_targets,\n"
        "      void (*chunk)(void *env, unsigned tid, double *const *priv,"
        " int64_t begin, int64_t end), void *env);\n"
        "  void (*pipeline_2d)(void *pool, int64_t rows, int64_t cols,\n"
        "      void (*cell)(void *env, int64_t r, int64_t c), void *env);\n"
        "  void (*pipeline_3d)(void *pool, int64_t planes, int64_t rows,"
        " int64_t cols,\n"
        "      void (*cell)(void *env, int64_t p, int64_t r, int64_t c),"
        " void *env);\n"
        "  void (*pipeline_dynamic_2d)(void *pool, const int64_t *row_cols,"
        " int64_t rows,\n"
        "      int64_t (*need)(void *env, int64_t r, int64_t c),\n"
        "      void (*cell)(void *env, int64_t r, int64_t c), void *env);\n"
        "  unsigned (*thread_count)(void *pool);\n"
        "  unsigned (*current_tid)(void);\n"
        "  void (*count)(int what);\n"
        "  void (*count_fallback)(const char *note);\n"
        "  void (*construct_enter)(int64_t id, const char *kind,"
        " const char *iter);\n"
        "  void (*construct_exit)(int64_t id);\n"
        "} polyast_runtime_api;\n"
        "\n"
        "typedef struct polyast_kernel_args {\n"
        "  const int64_t *params;\n"
        "  double *const *buffers;\n"
        "  void *pool;\n"
        "  const polyast_runtime_api *rt;\n"
        "} polyast_kernel_args;\n\n";
  return os.str();
}

}  // namespace

std::string emitKernelFunction(const Program& program,
                               const KernelFunctionOptions& options) {
  return KernelEmitter(program, options).emit();
}

std::string emitC(const Program& program, const CEmitOptions& options) {
  std::ostringstream os;
  os << "/* Generated by PolyAST from program '" << program.name
     << "'. */\n";
  if (options.withMain)
    os << "#include <math.h>\n#include <stdio.h>\n#include <stdlib.h>\n"
          "#include <stdint.h>\n#include <time.h>\n\n";
  else
    os << "#include <math.h>\n#include <stdint.h>\n\n";
  os << "#define POLYAST_MAX(a, b) ((a) > (b) ? (a) : (b))\n";
  os << "#define POLYAST_MIN(a, b) ((a) < (b) ? (a) : (b))\n\n";
  for (const auto& name : program.params) {
    os << "#ifndef " << name << "\n#define " << name << " "
       << program.paramDefaults.at(name) << "\n#endif\n";
  }
  os << "\n";
  os << arrayDeclarations(program);
  os << minMaxHelpers(program);
  if (options.withMain) os << kSeederHelpers;
  KernelFunctionOptions ko;
  ko.parallel = options.openmp ? ParallelLowering::OpenMP
                               : ParallelLowering::Comments;
  ko.external = !options.withMain;  // kernel-only TUs export the kernel
  os << emitKernelFunction(program, ko) << "\n";
  if (options.withMain) os << emitMain(program);
  return os.str();
}

std::string emitNativeKernelTU(const Program& program,
                               const NativeTUOptions& options) {
  const bool simd = options.simd && programHasMicroKernels(program);
  std::ostringstream os;
  os << "/* Generated by PolyAST (native backend) from program '"
     << program.name << "'.\n"
     << " * Self-contained JIT TU: compiled into a shared object and driven"
        " through\n"
     << " * polyast_kernel_run (see runtime/capi.hpp, ABI v"
     << kNativeKernelAbi << "). */\n";
  os << "#include <math.h>\n#include <stdint.h>\n#include <stdlib.h>\n\n";
  os << "#define POLYAST_MAX(a, b) ((a) > (b) ? (a) : (b))\n";
  os << "#define POLYAST_MIN(a, b) ((a) < (b) ? (a) : (b))\n\n";
  if (simd)
    os << "/* Packed microkernels use portable GCC/Clang vector extensions"
          " (no\n"
          " * intrinsics); aligned(8) permits unaligned loads/stores. */\n"
          "typedef double polyast_v4d\n"
          "    __attribute__((vector_size(32), aligned(8), may_alias));\n\n";
  os << nativeCapiDecls();
  os << "static const polyast_runtime_api *polyast_rt;\n"
        "static void *polyast_pool;\n\n";
  for (const auto& name : program.params)
    os << "static int64_t " << name << ";\n";
  os << "\n" << arrayDeclarations(program);
  os << minMaxHelpers(program);
  KernelFunctionOptions ko;
  ko.parallel = ParallelLowering::Runtime;
  ko.name = "polyast_kernel";
  ko.simd = simd;
  os << emitKernelFunction(program, ko) << "\n";
  os << "int64_t polyast_kernel_abi(void) { return " << kNativeKernelAbi
     << "; }\n\n";
  os << "void polyast_kernel_run(const polyast_kernel_args *polyast_args)"
        " {\n";
  for (std::size_t i = 0; i < program.params.size(); ++i)
    os << "  " << program.params[i] << " = polyast_args->params[" << i
       << "]; (void)" << program.params[i] << ";\n";
  for (std::size_t i = 0; i < program.arrays.size(); ++i)
    os << "  " << cname(program.arrays[i].name) << " = polyast_args->buffers["
       << i << "]; (void)" << cname(program.arrays[i].name) << ";\n";
  os << "  polyast_pool = polyast_args->pool; (void)polyast_pool;\n"
        "  polyast_rt = polyast_args->rt; (void)polyast_rt;\n"
        "  polyast_kernel();\n"
        "}\n";
  return os.str();
}

}  // namespace polyast::ir
