// Loop AST nodes and the Program container.
//
// A Program is a tree of Block / Loop / Stmt nodes. Statements are the
// polyhedral statements of the paper: single (compound-)assignments whose
// subscripts are affine. Loops carry affine bounds (max-of lower parts,
// min-of upper parts, exclusive upper bound as in C) and the parallelism
// annotations produced by the AST-based stage (Sec. IV-A).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/expr.hpp"

namespace polyast::ir {

/// Parallelism kinds detected by the AST stage (Sec. IV-A of the paper).
enum class ParallelKind {
  None,
  Doall,
  Reduction,
  Pipeline,
  ReductionPipeline,
};

std::string parallelKindName(ParallelKind k);

/// Compound-assignment operators appearing in statement bodies.
enum class AssignOp { Set, AddAssign, SubAssign, MulAssign, DivAssign };

struct Node;
using NodePtr = std::shared_ptr<Node>;

struct Node {
  enum class Kind { Block, Loop, Stmt };
  explicit Node(Kind k) : kind(k) {}
  virtual ~Node() = default;
  virtual NodePtr clone() const = 0;

  const Kind kind;
};

struct Block final : Node {
  Block() : Node(Kind::Block) {}
  NodePtr clone() const override;

  std::vector<NodePtr> children;
};

/// A loop bound: the max (for lower) or min (for upper) of affine parts.
struct Bound {
  std::vector<AffExpr> parts;

  Bound() = default;
  Bound(AffExpr e) : parts{std::move(e)} {}  // NOLINT
  Bound(std::int64_t c) : parts{AffExpr(c)} {}  // NOLINT

  bool isSingle() const { return parts.size() == 1; }
  const AffExpr& single() const;
  void substitute(const std::string& name, const AffExpr& repl);
  std::string str(bool isLower) const;
};

/// A contraction nest proven fit for packed SIMD lowering (Sec. IV-C
/// carried to machine code): a two-deep point-loop pair around a single
/// accumulation `C[..lane..] += X * L[..lane..]` where the lane loop
/// carries no dependence (vector lanes are independent iterations) and the
/// stream loop carries only relaxable reduction edges (the PR-8
/// `ReductionClass` proof that it is pure accumulation). The tag is pure
/// metadata: the nest itself stays rolled scalar IR, the interpreter runs
/// it as-is, and only the native emitter consumes the tag — so packed and
/// scalar runs evaluate the identical per-cell operation sequence
/// (stream-ascending accumulation) and stay bit-exact under
/// -ffp-contract=off.
struct MicroKernelTag {
  std::string laneIter;    ///< vectorized iterator (unit stride in the store)
  std::string streamIter;  ///< contraction (reduction-carried) iterator
  /// Compile-time panel bounds: the tile windows bounding the point loops
  /// guarantee extents never exceed these, so the packed panels are
  /// fixed-size stack buffers (a runtime guard falls back to the scalar
  /// nest if a window is somehow larger).
  std::int64_t maxLane = 0;
  std::int64_t maxStream = 0;
};

struct Loop final : Node {
  Loop() : Node(Kind::Loop) {}
  NodePtr clone() const override;

  std::string iter;
  Bound lower;       ///< inclusive: iter >= max(lower.parts)
  Bound upper;       ///< exclusive: iter <  min(upper.parts)
  std::int64_t step = 1;
  std::shared_ptr<Block> body = std::make_shared<Block>();

  ParallelKind parallel = ParallelKind::None;
  /// For Pipeline / ReductionPipeline marks: how many consecutive levels of
  /// the single-loop chain rooted here the point-to-point sync must order
  /// (every carried non-reduction dependence has componentwise non-negative
  /// distance on all of them). 0 means "unset" and is treated as the legacy
  /// two-level pattern by the executor and the race checker. The detector
  /// caps this at 3 — the deepest doacross the runtime provides.
  std::int64_t pipelineDepth = 0;
  bool isTileLoop = false;   ///< inter-tile loop created by tiling
  bool isPointLoop = false;  ///< intra-tile loop of a tiled (permutable) band
  std::int64_t unroll = 1;   ///< register-tiling unroll factor applied
  /// SIMD legality facts from the dependence analysis (set alongside
  /// Loop::parallel, transferred through tiling/permutation like
  /// pipelineDepth): `simdSafe` — no dependence is carried at this level,
  /// so lanes along this iterator may be evaluated in any order without
  /// changing any per-cell operation sequence; `reductionCarried` — every
  /// dependence carried here is a relaxable reduction edge (pure
  /// accumulation; streaming this loop sequentially per cell is exact).
  bool simdSafe = false;
  bool reductionCarried = false;
  /// Set by register tiling when this loop roots a recognized contraction
  /// nest (see MicroKernelTag); null for every other loop.
  std::shared_ptr<const MicroKernelTag> microKernel;
};

struct Stmt final : Node {
  Stmt() : Node(Kind::Stmt) {}
  NodePtr clone() const override;

  int id = -1;          ///< stable identity across transformations
  std::string label;    ///< e.g. "S"
  AssignOp op = AssignOp::Set;
  std::string lhsArray;
  std::vector<AffExpr> lhsSubs;
  ExprPtr rhs;
  /// Reduction-recognition flag: `op` is += / -= and the lhs does not
  /// otherwise appear on the rhs — set during IR construction and used by
  /// the parallelism detector (Sec. IV-A).
  bool isReductionUpdate = false;
  /// Execution guards: the statement runs only when every expression is
  /// >= 0. Produced by code generation when statements with different
  /// domains are fused into one loop.
  std::vector<AffExpr> guards;
  /// Provenance map for the static legality analysis (src/analysis):
  /// entry k expresses the statement's k-th *original* iterator as an
  /// affine function of the *current* enclosing iterators and parameters.
  /// The analysis session stamps the identity map before the pipeline
  /// mutates the program; every iterator substitution a pass performs
  /// (skewing, schedule codegen, unrolling) keeps it current through the
  /// shared substitution helpers. Empty = provenance not tracked.
  std::vector<AffExpr> origin;

  std::string str() const;
};

/// Array declaration; dimension sizes are affine in the program parameters.
struct ArrayDecl {
  std::string name;
  std::vector<AffExpr> dims;
};

class Program {
 public:
  std::string name;
  std::vector<std::string> params;
  std::map<std::string, std::int64_t> paramDefaults;
  std::vector<ArrayDecl> arrays;
  std::shared_ptr<Block> root = std::make_shared<Block>();

  Program deepCopy() const;

  const ArrayDecl& array(const std::string& arrayName) const;
  bool isParam(const std::string& n) const;

  /// All statements in execution (textual) order.
  std::vector<std::shared_ptr<Stmt>> statements() const;
  /// Loops enclosing each statement, outermost first (keyed by Stmt::id).
  std::map<int, std::vector<std::shared_ptr<Loop>>> enclosingLoops() const;

  /// Visits every (stmt, enclosing loops) pair in textual order.
  void forEachStmt(const std::function<void(
      const std::shared_ptr<Stmt>&,
      const std::vector<std::shared_ptr<Loop>>&)>& fn) const;
};

/// Substitutes an iterator by an affine expression everywhere below `node`
/// (bounds, subscripts, value expressions). Used by skewing and shifting.
/// Refuses to cross a loop that (re)defines `name`.
void substituteIterInTree(const NodePtr& node, const std::string& name,
                          const AffExpr& repl);

/// Renames an iterator, including the defining loop header(s), everywhere
/// below `node`. Used by strip-mining and unrolling. `from` is taken by
/// value on purpose: callers often pass `loop->iter`, which the walk
/// itself reassigns.
void renameIterInTree(const NodePtr& node, std::string from,
                      const std::string& to);

/// Renders the subtree as C-like source (used by tests, examples, docs).
std::string printNode(const NodePtr& node, int indent = 0);
std::string printProgram(const Program& p);

// Structural queries shared by the parallel executor (exec/par_exec) and
// the native kernel emitter (ir/cemit): both must map parallelism marks
// onto the same runtime construct for a program, so the shape decisions
// live here, once.

/// The single loop child of `body`, descending through nested one-child
/// blocks; null when the body is not exactly one loop.
std::shared_ptr<Loop> soleLoopChild(const NodePtr& body);

/// True when neither bound of `loop` references the iterator `iter`.
bool boundsIndependentOf(const Loop& loop, const std::string& iter);

/// True if any loop strictly inside `node` has a bound referencing `iter`
/// — the trip space under a marked loop is then imbalanced across its
/// iterations (triangular/trapezoidal), which the guided doall schedule
/// exists for.
bool innerBoundsReference(const NodePtr& node, const std::string& iter);

/// Arrays that may be privatized per thread under a Reduction /
/// ReductionPipeline mark rooted at `node`: every access to them inside is
/// an associative accumulation (+= / -=) — never a read, never a plain
/// assignment. Privatizing such an array into a zero-initialized private
/// buffer and summing the buffers into the target afterwards preserves
/// semantics up to reassociation of the accumulated sums.
std::vector<std::string> privatizableArrays(const NodePtr& node);

/// One runtime parallel construct of a program: a marked loop that the
/// executor/emitter will dispatch to the runtime (marks nested inside
/// another mark run sequentially in both backends and are not constructs).
/// `id` is the construct's position in pre-order — stable across both
/// backends for the same program, so it keys construct-level attribution.
/// `chain` is the enclosing sequential iterators outermost-first, ending
/// with the construct's own iterator (a prefix of every statement's
/// iterator chain inside the construct — how DL per-nest predictions are
/// matched to constructs).
struct ParallelConstruct {
  std::int64_t id = 0;
  std::shared_ptr<Loop> loop;
  std::vector<std::string> chain;
};

/// Enumerates the parallel constructs of `p` in pre-order. The walk does
/// not descend into a marked loop (inner marks are sequentialized by both
/// backends) and accumulates the iterator chain through ParallelKind::None
/// loops, mirroring the dispatch structure of exec/par_exec and ir/cemit.
std::vector<ParallelConstruct> collectParallelConstructs(const Program& p);

/// True when any loop of `p` carries a MicroKernelTag — the native emitter
/// will produce packed SIMD code for it (used to pick SIMD compile flags
/// and to report the lowering in diagnostics).
bool programHasMicroKernels(const Program& p);

}  // namespace polyast::ir
