// Expression trees for statement bodies, and affine expressions for loop
// bounds / array subscripts.
//
// The IR separates two expression languages, mirroring the paper's split:
//   * AffExpr — affine expressions over loop iterators and global
//     parameters. Loop bounds and (analyzable) array subscripts are affine;
//     the polyhedral layer only ever sees these.
//   * Expr — general value expressions (the computation inside a statement).
//     The AST-based stage and the interpreter handle these; they may contain
//     sqrt / select / division, which the polyhedral layer treats as opaque.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace polyast::ir {

/// Affine expression: sum(coeff[name] * name) + constant, over iterator and
/// parameter names.
class AffExpr {
 public:
  AffExpr() = default;
  explicit AffExpr(std::int64_t constant) : constant_(constant) {}
  static AffExpr term(const std::string& name, std::int64_t coeff = 1);

  std::int64_t constant() const { return constant_; }
  const std::map<std::string, std::int64_t>& coeffs() const { return coeffs_; }
  std::int64_t coeff(const std::string& name) const;
  bool isConstant() const { return coeffs_.empty(); }

  AffExpr operator+(const AffExpr& o) const;
  AffExpr operator-(const AffExpr& o) const;
  AffExpr operator*(std::int64_t k) const;
  AffExpr& operator+=(const AffExpr& o) { return *this = *this + o; }
  bool operator==(const AffExpr& o) const = default;

  /// Replaces a name by an affine expression (used by skewing/shifting).
  AffExpr substituted(const std::string& name, const AffExpr& repl) const;
  /// Renames a variable (used by strip-mining / unrolling).
  AffExpr renamed(const std::string& from, const std::string& to) const;

  std::int64_t evaluate(
      const std::map<std::string, std::int64_t>& env) const;

  std::string str() const;

 private:
  void dropZeros();

  std::map<std::string, std::int64_t> coeffs_;
  std::int64_t constant_ = 0;
};

enum class BinOp { Add, Sub, Mul, Div, Min, Max, Lt, Le, Gt, Ge, Eq };
enum class UnOp { Neg, Sqrt, Exp, Abs };

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// General value expression node (immutable; shared between trees).
struct Expr {
  enum class Kind {
    IntLit,    ///< integer literal
    FloatLit,  ///< floating-point literal
    IterRef,   ///< loop iterator (integer-valued)
    ParamRef,  ///< global parameter (integer-valued)
    ArrayRef,  ///< array element load: name[subs...]
    Binary,
    Unary,
    Select,  ///< cond ? a : b
  };

  Kind kind;
  std::int64_t intValue = 0;   // IntLit
  double floatValue = 0.0;     // FloatLit
  std::string name;            // IterRef / ParamRef / ArrayRef
  std::vector<AffExpr> subs;   // ArrayRef subscripts (affine)
  BinOp binOp = BinOp::Add;
  UnOp unOp = UnOp::Neg;
  ExprPtr lhs, rhs, cond;

  std::string str() const;
};

ExprPtr intLit(std::int64_t v);
ExprPtr floatLit(double v);
ExprPtr iterRef(const std::string& name);
ExprPtr paramRef(const std::string& name);
ExprPtr arrayRef(const std::string& name, std::vector<AffExpr> subs);
ExprPtr binary(BinOp op, ExprPtr a, ExprPtr b);
ExprPtr unary(UnOp op, ExprPtr a);
ExprPtr select(ExprPtr cond, ExprPtr a, ExprPtr b);

ExprPtr operator+(ExprPtr a, ExprPtr b);
ExprPtr operator-(ExprPtr a, ExprPtr b);
ExprPtr operator*(ExprPtr a, ExprPtr b);
ExprPtr operator/(ExprPtr a, ExprPtr b);

/// Applies an affine substitution to every iterator occurrence in the
/// expression: each IterRef and each affine subscript has `name` replaced by
/// `repl`. IterRefs whose substitution is non-trivial become equivalent
/// integer expression trees.
ExprPtr substituteIter(const ExprPtr& e, const std::string& name,
                       const AffExpr& repl);

/// Collects the array references (name + subscripts) appearing in `e`.
struct ArrayUse {
  std::string array;
  std::vector<AffExpr> subs;
};
void collectArrayUses(const ExprPtr& e, std::vector<ArrayUse>& out);

}  // namespace polyast::ir
