// C source emission: turns a Program (original or transformed) into C
// source — the source-to-source output of the compiler (the paper's
// methodology: the polyhedral/AST flow emits C, ICC/XLC does the backend
// work).
//
// Two translation-unit shapes are produced on top of one shared kernel
// emission core (emitKernelFunction):
//
//   * emitC — the standalone benchmark TU: POLYAST_MAX/MIN helpers,
//     parameter macros (overridable with -DNAME=value), heap-allocated
//     arrays with the library's deterministic seeding (so the binary's
//     checksum is directly comparable with the interpreter's), the kernel
//     function (parallel loops carry OpenMP pragmas or `/* polyast: ... */`
//     markers), and a main() that times the kernel and prints a checksum.
//     With withMain=false the TU is kernel-only: declarations + the kernel
//     function, no seeding/checksum/main helpers — it compiles clean under
//     -Wall -Werror as a library TU.
//
//   * emitNativeKernelTU — the JIT TU of the native execution backend
//     (exec/native_exec): fully self-contained C with parallelism marks
//     lowered to outlined bodies driven through the runtime/capi.hpp
//     function-pointer table (doall chunks, privatized reductions, 2D/3D/
//     dynamic pipelines — the same construct the interpreted executor
//     would pick, decided by the shared ir/ast.hpp shape queries), plus an
//     extern "C" entry point `polyast_kernel_run(polyast_kernel_args)`
//     and the ABI stamp `polyast_kernel_abi()`.
#pragma once

#include <cstdint>
#include <string>

#include "ir/ast.hpp"

namespace polyast::ir {

struct CEmitOptions {
  /// Emit OpenMP pragmas on doall loops (otherwise plain comments).
  bool openmp = true;
  /// Emit the benchmark main() plus the seeding/checksum helpers it needs
  /// (otherwise a self-contained kernel-only TU).
  bool withMain = true;
};

/// Emits a complete C file for the program.
std::string emitC(const Program& program, const CEmitOptions& options = {});

/// How emitKernelFunction lowers parallelism marks.
enum class ParallelLowering {
  OpenMP,    ///< `#pragma omp parallel for` on doalls, comments otherwise
  Comments,  ///< `/* polyast: ... */` comments only
  Runtime,   ///< outlined bodies calling the runtime/capi.hpp shim table
};

struct KernelFunctionOptions {
  ParallelLowering parallel = ParallelLowering::OpenMP;
  /// Name of the emitted `void <name>(void)` kernel function.
  std::string name = "kernel";
  /// Give the kernel function external linkage. A kernel-only TU
  /// (CEmitOptions::withMain == false) needs this: a static kernel nobody
  /// calls is an -Werror=unused-function in a standalone compile, and the
  /// point of that TU is to be linked against a harness.
  bool external = false;
  /// Lower ir::MicroKernelTag nests to packed SIMD microkernels. Requires
  /// the TU preamble to define the polyast_v4d vector type (the native TU
  /// does, emitC does not — the source-to-source output stays portable
  /// scalar C). Off emits tagged nests as the plain rolled loops.
  bool simd = false;
};

/// The reusable kernel-emission core: returns the kernel function
/// definition, preceded (under ParallelLowering::Runtime) by the outlined
/// env structs and chunk/cell bodies its spawn sites reference. The caller
/// provides the TU around it: parameter/array definitions, the
/// POLYAST_MAX/MIN macros, and — for Runtime lowering — the capi table
/// declarations (`polyast_rt`, `polyast_pool` statics).
std::string emitKernelFunction(const Program& program,
                               const KernelFunctionOptions& options = {});

struct NativeTUOptions {
  /// Lower ir::MicroKernelTag nests to packed SIMD microkernels (portable
  /// GCC/Clang vector extensions + `#pragma omp simd`, no intrinsics). Off
  /// emits the plain rolled point loops — the scalar retry TU the backend
  /// falls back to when a toolchain rejects the vector TU.
  bool simd = true;
};

/// Emits the self-contained JIT TU for the native execution backend.
std::string emitNativeKernelTU(const Program& program,
                               const NativeTUOptions& options = {});

/// ABI version stamped into native TUs via polyast_kernel_abi(). Mirrors
/// POLYAST_CAPI_ABI_VERSION in runtime/capi.hpp (bump both together; the
/// native backend static_asserts their equality).
constexpr std::int64_t kNativeKernelAbi = 2;

}  // namespace polyast::ir
