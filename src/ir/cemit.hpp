// C source emission: turns a Program (original or transformed) into a
// complete, self-contained C translation unit — the source-to-source
// output of the compiler, suitable for compilation by any native C
// compiler (the paper's methodology: the polyhedral/AST flow emits C,
// ICC/XLC does the backend work).
//
// The generated file contains:
//   * POLYAST_MAX/MIN helpers for multi-part loop bounds,
//   * parameter macros (overridable with -DNAME=value),
//   * heap-allocated arrays with the library's deterministic seeding (so a
//     binary's checksum is directly comparable with the interpreter's),
//   * the kernel function with the transformed loop nest; parallel loops
//     carry OpenMP pragmas (`parallel for`, `parallel for reduction`) when
//     expressible, and `/* polyast: pipeline */` markers otherwise,
//   * a main() that times the kernel and prints a checksum.
#pragma once

#include <string>

#include "ir/ast.hpp"

namespace polyast::ir {

struct CEmitOptions {
  /// Emit OpenMP pragmas on doall loops (otherwise plain comments).
  bool openmp = true;
  /// Emit the benchmark main() (otherwise just the kernel function).
  bool withMain = true;
};

/// Emits a complete C file for the program.
std::string emitC(const Program& program, const CEmitOptions& options = {});

}  // namespace polyast::ir
