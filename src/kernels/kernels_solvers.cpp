// Solver kernels of PolyBench/C 3.2: cholesky, trisolv, adi.
#include "kernels/detail.hpp"

namespace polyast::kernels::detail {

namespace {

ir::Program buildTrisolv() {
  ProgramBuilder b("trisolv");
  b.param("N", 32);
  b.array("A", {v("N"), v("N")});
  b.array("x", {v("N")});
  b.array("c", {v("N")});
  b.beginLoop("i", 0, v("N"));
  b.stmt("S1", "x", {v("i")}, AssignOp::Set, ref("c", {v("i")}));
  b.beginLoop("j", 0, v("i"));
  b.stmt("S2", "x", {v("i")}, AssignOp::SubAssign,
         ref("A", {v("i"), v("j")}) * ref("x", {v("j")}));
  b.endLoop();
  b.stmt("S3", "x", {v("i")}, AssignOp::DivAssign,
         ref("A", {v("i"), v("i")}));
  b.endLoop();
  return b.build();
}

ir::Program buildCholesky() {
  // The scalar accumulator `x` of the reference code is a one-element
  // array "acc"; p holds the reciprocal square roots.
  ProgramBuilder b("cholesky");
  b.param("N", 24);
  b.array("A", {v("N"), v("N")});
  b.array("p", {v("N")});
  b.array("acc", {n(1)});
  b.beginLoop("i", 0, v("N"));
  b.stmt("S1", "acc", {n(0)}, AssignOp::Set, ref("A", {v("i"), v("i")}));
  b.beginLoop("j", 0, v("i"));
  b.stmt("S2", "acc", {n(0)}, AssignOp::SubAssign,
         ref("A", {v("i"), v("j")}) * ref("A", {v("i"), v("j")}));
  b.endLoop();
  b.stmt("S3", "p", {v("i")}, AssignOp::Set,
         lit(1.0) / ir::unary(ir::UnOp::Sqrt, ref("acc", {n(0)})));
  b.beginLoop("j", v("i") + n(1), v("N"));
  b.stmt("S4", "acc", {n(0)}, AssignOp::Set, ref("A", {v("i"), v("j")}));
  b.beginLoop("k", 0, v("i"));
  b.stmt("S5", "acc", {n(0)}, AssignOp::SubAssign,
         ref("A", {v("j"), v("k")}) * ref("A", {v("i"), v("k")}));
  b.endLoop();
  b.stmt("S6", "A", {v("j"), v("i")}, AssignOp::Set,
         ref("acc", {n(0)}) * ref("p", {v("i")}));
  b.endLoop();
  b.endLoop();
  return b.build();
}

ir::Program buildAdi() {
  ProgramBuilder b("adi");
  b.param("TSTEPS", 2).param("N", 16);
  b.array("X", {v("N"), v("N")});
  b.array("A", {v("N"), v("N")});
  b.array("B", {v("N"), v("N")});
  b.beginLoop("t", 0, v("TSTEPS"));
  // Row sweep (forward substitution along columns).
  b.beginLoop("i1", 0, v("N"));
  b.beginLoop("i2", 1, v("N"));
  b.stmt("S1", "X", {v("i1"), v("i2")}, AssignOp::SubAssign,
         ref("X", {v("i1"), v("i2") - n(1)}) * ref("A", {v("i1"), v("i2")}) /
             ref("B", {v("i1"), v("i2") - n(1)}));
  b.stmt("S2", "B", {v("i1"), v("i2")}, AssignOp::SubAssign,
         ref("A", {v("i1"), v("i2")}) * ref("A", {v("i1"), v("i2")}) /
             ref("B", {v("i1"), v("i2") - n(1)}));
  b.endLoop();
  b.endLoop();
  b.beginLoop("i1", 0, v("N"));
  b.stmt("S3", "X", {v("i1"), v("N") - n(1)}, AssignOp::DivAssign,
         ref("B", {v("i1"), v("N") - n(1)}));
  b.endLoop();
  // Row back-substitution.
  b.beginLoop("i1", 0, v("N"));
  b.beginLoop("i2", 0, v("N") - n(2));
  b.stmt("S4", "X", {v("i1"), v("N") - v("i2") - n(2)}, AssignOp::Set,
         (ref("X", {v("i1"), v("N") - n(2) - v("i2")}) -
          ref("X", {v("i1"), v("N") - v("i2") - n(3)}) *
              ref("A", {v("i1"), v("N") - v("i2") - n(3)})) /
             ref("B", {v("i1"), v("N") - n(3) - v("i2")}));
  b.endLoop();
  b.endLoop();
  // Column sweep.
  b.beginLoop("i1", 1, v("N"));
  b.beginLoop("i2", 0, v("N"));
  b.stmt("S5", "X", {v("i1"), v("i2")}, AssignOp::SubAssign,
         ref("X", {v("i1") - n(1), v("i2")}) * ref("A", {v("i1"), v("i2")}) /
             ref("B", {v("i1") - n(1), v("i2")}));
  b.stmt("S6", "B", {v("i1"), v("i2")}, AssignOp::SubAssign,
         ref("A", {v("i1"), v("i2")}) * ref("A", {v("i1"), v("i2")}) /
             ref("B", {v("i1") - n(1), v("i2")}));
  b.endLoop();
  b.endLoop();
  b.beginLoop("i2", 0, v("N"));
  b.stmt("S7", "X", {v("N") - n(1), v("i2")}, AssignOp::DivAssign,
         ref("B", {v("N") - n(1), v("i2")}));
  b.endLoop();
  // Column back-substitution.
  b.beginLoop("i1", 0, v("N") - n(2));
  b.beginLoop("i2", 0, v("N"));
  b.stmt("S8", "X", {v("N") - v("i1") - n(2), v("i2")}, AssignOp::Set,
         (ref("X", {v("N") - n(2) - v("i1"), v("i2")}) -
          ref("X", {v("N") - v("i1") - n(3), v("i2")}) *
              ref("A", {v("N") - n(3) - v("i1"), v("i2")})) /
             ref("B", {v("N") - n(2) - v("i1"), v("i2")}));
  b.endLoop();
  b.endLoop();
  b.endLoop();
  return b.build();
}

}  // namespace

void registerSolvers(std::vector<KernelInfo>& out) {
  using Group = KernelInfo::Group;
  out.push_back({"adi", "alternating direction implicit solver",
                 Group::Pipeline, buildAdi,
                 [](const auto& p) {
                   return 30.0 * P(p, "TSTEPS") * P(p, "N") * P(p, "N");
                 },
                 // Damp the off-diagonal coefficients so the repeated
                 // X -= X*A/B sweeps stay bounded (the PolyBench inputs are
                 // similarly well-conditioned).
                 [](exec::Context& ctx) {
                   for (double& x : ctx.buffer("A")) x *= 0.1;
                 }});
  out.push_back({"cholesky", "Cholesky decomposition", Group::Reduction,
                 buildCholesky,
                 [](const auto& p) {
                   double N = P(p, "N");
                   return N * N * N / 3.0 + 2.0 * N * N;
                 },
                 // Make A symmetric positive definite: 0.1*(M+M^T) + 2N*I.
                 [](exec::Context& ctx) {
                   auto& A = ctx.buffer("A");
                   std::int64_t N = ctx.dims("A")[0];
                   std::vector<double> spd(A.size());
                   for (std::int64_t i = 0; i < N; ++i)
                     for (std::int64_t j = 0; j < N; ++j)
                       spd[i * N + j] =
                           0.1 * (A[i * N + j] + A[j * N + i]) +
                           (i == j ? 2.0 * static_cast<double>(N) : 0.0);
                   A = spd;
                 }});
  out.push_back({"trisolv", "triangular solver", Group::Reduction,
                 buildTrisolv,
                 [](const auto& p) {
                   double N = P(p, "N");
                   return N * N + 2.0 * N;
                 },
                 /*prepare=*/{}});
}

}  // namespace polyast::kernels::detail
