// PolyBench/C 3.2 kernel suite as IR specifications (Table II of the paper).
//
// Every one of the 22 evaluated benchmarks is reconstructed from its
// PolyBench/C 3.2 definition as a Program built through the public builder
// API. Default parameter values are scaled so interpreter-based validation
// stays fast; the benchmark harness overrides them per experiment.
//
// Scalars in the original C sources (e.g. `acc` in symm, `x` in cholesky)
// are modeled as one-element arrays, which preserves their serializing
// dependences.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "exec/interp.hpp"
#include "ir/ast.hpp"

namespace polyast::kernels {

struct KernelInfo {
  std::string name;
  std::string description;
  /// Dominant parallelism per the paper's grouping of Figures 7-9.
  enum class Group { Doall, Reduction, Pipeline } group;
  std::function<ir::Program()> build;
  /// Floating-point operations for a parameter binding (GF/s reporting).
  std::function<double(const std::map<std::string, std::int64_t>&)> flops;
  /// Optional input conditioning applied after Context::seedAll (e.g.
  /// cholesky needs a symmetric positive-definite matrix, adi needs a
  /// damped coefficient array to stay numerically stable).
  std::function<void(exec::Context&)> prepare;
};

/// All 22 kernels of Table II, in the paper's order.
const std::vector<KernelInfo>& allKernels();

const KernelInfo& kernel(const std::string& name);
ir::Program buildKernel(const std::string& name);

/// Seeded and conditioned execution context for differential testing.
exec::Context makeContext(const ir::Program& program,
                          std::map<std::string, std::int64_t> params = {});

}  // namespace polyast::kernels
