// Stencil kernels of PolyBench/C 3.2: jacobi-1d/2d, seidel-2d, fdtd-2d,
// fdtd-apml.
#include "kernels/detail.hpp"

namespace polyast::kernels::detail {

namespace {

ir::Program buildJacobi1d() {
  ProgramBuilder b("jacobi-1d-imper");
  b.param("TSTEPS", 4).param("N", 64);
  b.array("A", {v("N")});
  b.array("B", {v("N")});
  b.beginLoop("t", 0, v("TSTEPS"));
  b.beginLoop("i", 1, v("N") - n(1));
  b.stmt("S1", "B", {v("i")}, AssignOp::Set,
         lit(0.33333) * (ref("A", {v("i") - n(1)}) + ref("A", {v("i")}) +
                         ref("A", {v("i") + n(1)})));
  b.endLoop();
  b.beginLoop("j", 1, v("N") - n(1));
  b.stmt("S2", "A", {v("j")}, AssignOp::Set, ref("B", {v("j")}));
  b.endLoop();
  b.endLoop();
  return b.build();
}

ir::Program buildJacobi2d() {
  ProgramBuilder b("jacobi-2d-imper");
  b.param("TSTEPS", 3).param("N", 20);
  b.array("A", {v("N"), v("N")});
  b.array("B", {v("N"), v("N")});
  b.beginLoop("t", 0, v("TSTEPS"));
  b.beginLoop("i", 1, v("N") - n(1));
  b.beginLoop("j", 1, v("N") - n(1));
  b.stmt("S1", "B", {v("i"), v("j")}, AssignOp::Set,
         lit(0.2) * (ref("A", {v("i"), v("j")}) +
                     ref("A", {v("i"), v("j") - n(1)}) +
                     ref("A", {v("i"), v("j") + n(1)}) +
                     ref("A", {v("i") + n(1), v("j")}) +
                     ref("A", {v("i") - n(1), v("j")})));
  b.endLoop();
  b.endLoop();
  b.beginLoop("i", 1, v("N") - n(1));
  b.beginLoop("j", 1, v("N") - n(1));
  b.stmt("S2", "A", {v("i"), v("j")}, AssignOp::Set,
         ref("B", {v("i"), v("j")}));
  b.endLoop();
  b.endLoop();
  b.endLoop();
  return b.build();
}

ir::Program buildSeidel2d() {
  ProgramBuilder b("seidel-2d");
  b.param("TSTEPS", 3).param("N", 20);
  b.array("A", {v("N"), v("N")});
  b.beginLoop("t", 0, v("TSTEPS"));
  b.beginLoop("i", 1, v("N") - n(1));
  b.beginLoop("j", 1, v("N") - n(1));
  b.stmt("S1", "A", {v("i"), v("j")}, AssignOp::Set,
         (ref("A", {v("i") - n(1), v("j") - n(1)}) +
          ref("A", {v("i") - n(1), v("j")}) +
          ref("A", {v("i") - n(1), v("j") + n(1)}) +
          ref("A", {v("i"), v("j") - n(1)}) + ref("A", {v("i"), v("j")}) +
          ref("A", {v("i"), v("j") + n(1)}) +
          ref("A", {v("i") + n(1), v("j") - n(1)}) +
          ref("A", {v("i") + n(1), v("j")}) +
          ref("A", {v("i") + n(1), v("j") + n(1)})) /
             lit(9.0));
  b.endLoop();
  b.endLoop();
  b.endLoop();
  return b.build();
}

ir::Program buildFdtd2d() {
  ProgramBuilder b("fdtd-2d");
  b.param("TSTEPS", 3).param("NX", 20).param("NY", 20);
  b.array("ex", {v("NX"), v("NY")});
  b.array("ey", {v("NX"), v("NY")});
  b.array("hz", {v("NX"), v("NY")});
  b.array("fict", {v("TSTEPS")});
  b.beginLoop("t", 0, v("TSTEPS"));
  b.beginLoop("j", 0, v("NY"));
  b.stmt("S1", "ey", {n(0), v("j")}, AssignOp::Set, ref("fict", {v("t")}));
  b.endLoop();
  b.beginLoop("i", 1, v("NX"));
  b.beginLoop("j", 0, v("NY"));
  b.stmt("S2", "ey", {v("i"), v("j")}, AssignOp::SubAssign,
         lit(0.5) * (ref("hz", {v("i"), v("j")}) -
                     ref("hz", {v("i") - n(1), v("j")})));
  b.endLoop();
  b.endLoop();
  b.beginLoop("i", 0, v("NX"));
  b.beginLoop("j", 1, v("NY"));
  b.stmt("S3", "ex", {v("i"), v("j")}, AssignOp::SubAssign,
         lit(0.5) * (ref("hz", {v("i"), v("j")}) -
                     ref("hz", {v("i"), v("j") - n(1)})));
  b.endLoop();
  b.endLoop();
  b.beginLoop("i", 0, v("NX") - n(1));
  b.beginLoop("j", 0, v("NY") - n(1));
  b.stmt("S4", "hz", {v("i"), v("j")}, AssignOp::SubAssign,
         lit(0.7) * (ref("ex", {v("i"), v("j") + n(1)}) -
                     ref("ex", {v("i"), v("j")}) +
                     ref("ey", {v("i") + n(1), v("j")}) -
                     ref("ey", {v("i"), v("j")})));
  b.endLoop();
  b.endLoop();
  b.endLoop();
  return b.build();
}

ir::Program buildFdtdApml() {
  // FDTD with anisotropic perfectly matched layer (interior update plus the
  // ix = Cxm and iy = Cym boundary updates, as in PolyBench/C 3.2; the
  // scalar temporaries clf/tmp are modeled per (iz,iy) as in the original).
  ProgramBuilder b("fdtd-apml");
  b.param("CZ", 12).param("CYM", 12).param("CXM", 12);
  b.array("Ex", {v("CZ"), v("CYM") + n(1), v("CXM") + n(1)});
  b.array("Ey", {v("CZ"), v("CYM") + n(1), v("CXM") + n(1)});
  b.array("Hz", {v("CZ"), v("CYM") + n(1), v("CXM") + n(1)});
  b.array("Bza", {v("CZ"), v("CYM") + n(1), v("CXM") + n(1)});
  b.array("Ry", {v("CZ"), v("CYM") + n(1)});
  b.array("Ax", {v("CZ"), v("CXM") + n(1)});
  b.array("clf", {v("CZ"), v("CYM") + n(1)});
  b.array("tmp", {v("CZ"), v("CYM") + n(1)});
  b.array("cymh", {v("CYM") + n(1)});
  b.array("cyph", {v("CYM") + n(1)});
  b.array("cxmh", {v("CXM") + n(1)});
  b.array("cxph", {v("CXM") + n(1)});
  b.array("czm", {v("CZ")});
  b.array("czp", {v("CZ")});
  const double ch = 0.85;
  const double mui = 0.65;
  auto izy = [&](const char* a) { return ref(a, {v("iz"), v("iy")}); };
  b.beginLoop("iz", 0, v("CZ"));
  b.beginLoop("iy", 0, v("CYM"));
  // Interior sweep over ix.
  b.beginLoop("ix", 0, v("CXM"));
  b.stmt("S1", "clf", {v("iz"), v("iy")}, AssignOp::Set,
         ref("Ex", {v("iz"), v("iy"), v("ix")}) -
             ref("Ex", {v("iz"), v("iy") + n(1), v("ix")}) +
             ref("Ey", {v("iz"), v("iy"), v("ix") + n(1)}) -
             ref("Ey", {v("iz"), v("iy"), v("ix")}));
  b.stmt("S2", "tmp", {v("iz"), v("iy")}, AssignOp::Set,
         (ref("cymh", {v("iy")}) / ref("cyph", {v("iy")})) *
                 ref("Bza", {v("iz"), v("iy"), v("ix")}) -
             (lit(ch) / ref("cyph", {v("iy")})) * izy("clf"));
  b.stmt("S3", "Hz", {v("iz"), v("iy"), v("ix")}, AssignOp::Set,
         (ref("cxmh", {v("ix")}) / ref("cxph", {v("ix")})) *
                 ref("Hz", {v("iz"), v("iy"), v("ix")}) +
             (lit(mui) * ref("czp", {v("iz")}) / ref("cxph", {v("ix")})) *
                 izy("tmp") -
             (lit(mui) * ref("czm", {v("iz")}) / ref("cxph", {v("ix")})) *
                 ref("Bza", {v("iz"), v("iy"), v("ix")}));
  b.stmt("S4", "Bza", {v("iz"), v("iy"), v("ix")}, AssignOp::Set,
         izy("tmp"));
  b.endLoop();
  // ix = CXM boundary.
  b.stmt("S5", "clf", {v("iz"), v("iy")}, AssignOp::Set,
         ref("Ex", {v("iz"), v("iy"), v("CXM")}) -
             ref("Ex", {v("iz"), v("iy") + n(1), v("CXM")}) +
             ref("Ry", {v("iz"), v("iy")}) -
             ref("Ey", {v("iz"), v("iy"), v("CXM")}));
  b.stmt("S6", "tmp", {v("iz"), v("iy")}, AssignOp::Set,
         (ref("cymh", {v("iy")}) / ref("cyph", {v("iy")})) *
                 ref("Bza", {v("iz"), v("iy"), v("CXM")}) -
             (lit(ch) / ref("cyph", {v("iy")})) * izy("clf"));
  b.stmt("S7", "Hz", {v("iz"), v("iy"), v("CXM")}, AssignOp::Set,
         (ref("cxmh", {v("CXM")}) / ref("cxph", {v("CXM")})) *
                 ref("Hz", {v("iz"), v("iy"), v("CXM")}) +
             (lit(mui) * ref("czp", {v("iz")}) / ref("cxph", {v("CXM")})) *
                 izy("tmp") -
             (lit(mui) * ref("czm", {v("iz")}) / ref("cxph", {v("CXM")})) *
                 ref("Bza", {v("iz"), v("iy"), v("CXM")}));
  b.stmt("S8", "Bza", {v("iz"), v("iy"), v("CXM")}, AssignOp::Set,
         izy("tmp"));
  // iy = CYM boundary sweep over ix.
  b.beginLoop("ix", 0, v("CXM"));
  b.stmt("S9", "clf", {v("iz"), v("iy")}, AssignOp::Set,
         ref("Ex", {v("iz"), v("CYM"), v("ix")}) -
             ref("Ax", {v("iz"), v("ix")}) +
             ref("Ey", {v("iz"), v("CYM"), v("ix") + n(1)}) -
             ref("Ey", {v("iz"), v("CYM"), v("ix")}));
  b.stmt("S10", "tmp", {v("iz"), v("iy")}, AssignOp::Set,
         (ref("cymh", {v("CYM")}) / ref("cyph", {v("iy")})) *
                 ref("Bza", {v("iz"), v("iy"), v("ix")}) -
             (lit(ch) / ref("cyph", {v("iy")})) * izy("clf"));
  b.stmt("S11", "Hz", {v("iz"), v("CYM"), v("ix")}, AssignOp::Set,
         (ref("cxmh", {v("ix")}) / ref("cxph", {v("ix")})) *
                 ref("Hz", {v("iz"), v("CYM"), v("ix")}) +
             (lit(mui) * ref("czp", {v("iz")}) / ref("cxph", {v("ix")})) *
                 izy("tmp") -
             (lit(mui) * ref("czm", {v("iz")}) / ref("cxph", {v("ix")})) *
                 ref("Bza", {v("iz"), v("CYM"), v("ix")}));
  b.stmt("S12", "Bza", {v("iz"), v("CYM"), v("ix")}, AssignOp::Set,
         izy("tmp"));
  b.endLoop();
  // (ix, iy) = (CXM, CYM) corner.
  b.stmt("S13", "clf", {v("iz"), v("iy")}, AssignOp::Set,
         ref("Ex", {v("iz"), v("CYM"), v("CXM")}) -
             ref("Ax", {v("iz"), v("CXM")}) +
             ref("Ry", {v("iz"), v("CYM")}) -
             ref("Ey", {v("iz"), v("CYM"), v("CXM")}));
  b.stmt("S14", "tmp", {v("iz"), v("iy")}, AssignOp::Set,
         (ref("cymh", {v("CYM")}) / ref("cyph", {v("CYM")})) *
                 ref("Bza", {v("iz"), v("iy"), v("CXM")}) -
             (lit(ch) / ref("cyph", {v("CYM")})) * izy("clf"));
  b.stmt("S15", "Hz", {v("iz"), v("CYM"), v("CXM")}, AssignOp::Set,
         (ref("cxmh", {v("CXM")}) / ref("cxph", {v("CXM")})) *
                 ref("Hz", {v("iz"), v("CYM"), v("CXM")}) +
             (lit(mui) * ref("czp", {v("iz")}) / ref("cxph", {v("CXM")})) *
                 izy("tmp") -
             (lit(mui) * ref("czm", {v("iz")}) / ref("cxph", {v("CXM")})) *
                 ref("Bza", {v("iz"), v("CYM"), v("CXM")}));
  b.stmt("S16", "Bza", {v("iz"), v("CYM"), v("CXM")}, AssignOp::Set,
         izy("tmp"));
  b.endLoop();
  b.endLoop();
  return b.build();
}

}  // namespace

void registerStencils(std::vector<KernelInfo>& out) {
  using Group = KernelInfo::Group;
  out.push_back({"fdtd-2d", "2-D finite different time domain kernel",
                 Group::Pipeline, buildFdtd2d,
                 [](const auto& p) {
                   return 11.0 * P(p, "TSTEPS") * P(p, "NX") * P(p, "NY");
                 },
                 /*prepare=*/{}});
  out.push_back({"fdtd-apml",
                 "FDTD using anisotropic perfectly matched layer",
                 Group::Doall, buildFdtdApml,
                 [](const auto& p) {
                   return 25.0 * P(p, "CZ") * P(p, "CYM") * P(p, "CXM");
                 },
                 /*prepare=*/{}});
  out.push_back({"jacobi-1d-imper", "1-D Jacobi stencil computation",
                 Group::Pipeline, buildJacobi1d,
                 [](const auto& p) {
                   return 4.0 * P(p, "TSTEPS") * P(p, "N");
                 },
                 /*prepare=*/{}});
  out.push_back({"jacobi-2d-imper", "2-D Jacobi stencil computation",
                 Group::Pipeline, buildJacobi2d,
                 [](const auto& p) {
                   return 5.0 * P(p, "TSTEPS") * P(p, "N") * P(p, "N");
                 },
                 /*prepare=*/{}});
  out.push_back({"seidel-2d", "2-D Seidel stencil computation",
                 Group::Pipeline, buildSeidel2d,
                 [](const auto& p) {
                   return 9.0 * P(p, "TSTEPS") * P(p, "N") * P(p, "N");
                 },
                 /*prepare=*/{}});
}

}  // namespace polyast::kernels::detail
