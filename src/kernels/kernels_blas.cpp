// Linear-algebra kernels of PolyBench/C 3.2 (Table II).
#include "kernels/detail.hpp"

namespace polyast::kernels::detail {

namespace {

ir::Program build2mm() {
  ProgramBuilder b("2mm");
  b.param("NI", 24).param("NJ", 24).param("NK", 24).param("NL", 24);
  b.array("tmp", {v("NI"), v("NJ")});
  b.array("A", {v("NI"), v("NK")});
  b.array("B", {v("NK"), v("NJ")});
  b.array("C", {v("NJ"), v("NL")});
  b.array("D", {v("NI"), v("NL")});
  b.array("alpha", {n(1)});
  b.array("beta", {n(1)});
  // tmp = alpha * A . B
  b.beginLoop("i", 0, v("NI"));
  b.beginLoop("j", 0, v("NJ"));
  b.stmt("R", "tmp", {v("i"), v("j")}, AssignOp::Set, lit(0.0));
  b.beginLoop("k", 0, v("NK"));
  b.stmt("S", "tmp", {v("i"), v("j")}, AssignOp::AddAssign,
         ref("alpha", {n(0)}) * ref("A", {v("i"), v("k")}) *
             ref("B", {v("k"), v("j")}));
  b.endLoop();
  b.endLoop();
  b.endLoop();
  // D = beta * D + tmp . C
  b.beginLoop("i", 0, v("NI"));
  b.beginLoop("j", 0, v("NL"));
  b.stmt("T", "D", {v("i"), v("j")}, AssignOp::MulAssign,
         ref("beta", {n(0)}));
  b.beginLoop("k", 0, v("NJ"));
  b.stmt("U", "D", {v("i"), v("j")}, AssignOp::AddAssign,
         ref("tmp", {v("i"), v("k")}) * ref("C", {v("k"), v("j")}));
  b.endLoop();
  b.endLoop();
  b.endLoop();
  return b.build();
}

ir::Program build3mm() {
  ProgramBuilder b("3mm");
  b.param("NI", 20).param("NJ", 20).param("NK", 20).param("NL", 20)
      .param("NM", 20);
  b.array("E", {v("NI"), v("NJ")});
  b.array("A", {v("NI"), v("NK")});
  b.array("B", {v("NK"), v("NJ")});
  b.array("F", {v("NJ"), v("NL")});
  b.array("C", {v("NJ"), v("NM")});
  b.array("D", {v("NM"), v("NL")});
  b.array("G", {v("NI"), v("NL")});
  // E := A.B
  b.beginLoop("i", 0, v("NI"));
  b.beginLoop("j", 0, v("NJ"));
  b.stmt("S1", "E", {v("i"), v("j")}, AssignOp::Set, lit(0.0));
  b.beginLoop("k", 0, v("NK"));
  b.stmt("S2", "E", {v("i"), v("j")}, AssignOp::AddAssign,
         ref("A", {v("i"), v("k")}) * ref("B", {v("k"), v("j")}));
  b.endLoop();
  b.endLoop();
  b.endLoop();
  // F := C.D
  b.beginLoop("i", 0, v("NJ"));
  b.beginLoop("j", 0, v("NL"));
  b.stmt("S3", "F", {v("i"), v("j")}, AssignOp::Set, lit(0.0));
  b.beginLoop("k", 0, v("NM"));
  b.stmt("S4", "F", {v("i"), v("j")}, AssignOp::AddAssign,
         ref("C", {v("i"), v("k")}) * ref("D", {v("k"), v("j")}));
  b.endLoop();
  b.endLoop();
  b.endLoop();
  // G := E.F
  b.beginLoop("i", 0, v("NI"));
  b.beginLoop("j", 0, v("NL"));
  b.stmt("S5", "G", {v("i"), v("j")}, AssignOp::Set, lit(0.0));
  b.beginLoop("k", 0, v("NJ"));
  b.stmt("S6", "G", {v("i"), v("j")}, AssignOp::AddAssign,
         ref("E", {v("i"), v("k")}) * ref("F", {v("k"), v("j")}));
  b.endLoop();
  b.endLoop();
  b.endLoop();
  return b.build();
}

ir::Program buildGemm() {
  ProgramBuilder b("gemm");
  b.param("NI", 24).param("NJ", 24).param("NK", 24);
  b.array("C", {v("NI"), v("NJ")});
  b.array("A", {v("NI"), v("NK")});
  b.array("B", {v("NK"), v("NJ")});
  b.array("alpha", {n(1)});
  b.array("beta", {n(1)});
  b.beginLoop("i", 0, v("NI"));
  b.beginLoop("j", 0, v("NJ"));
  b.stmt("S1", "C", {v("i"), v("j")}, AssignOp::MulAssign,
         ref("beta", {n(0)}));
  b.beginLoop("k", 0, v("NK"));
  b.stmt("S2", "C", {v("i"), v("j")}, AssignOp::AddAssign,
         ref("alpha", {n(0)}) * ref("A", {v("i"), v("k")}) *
             ref("B", {v("k"), v("j")}));
  b.endLoop();
  b.endLoop();
  b.endLoop();
  return b.build();
}

ir::Program buildSyrk() {
  ProgramBuilder b("syrk");
  b.param("NI", 24).param("NJ", 24);
  b.array("C", {v("NI"), v("NI")});
  b.array("A", {v("NI"), v("NJ")});
  b.array("alpha", {n(1)});
  b.array("beta", {n(1)});
  b.beginLoop("i", 0, v("NI"));
  b.beginLoop("j", 0, v("NI"));
  b.stmt("S1", "C", {v("i"), v("j")}, AssignOp::MulAssign,
         ref("beta", {n(0)}));
  b.endLoop();
  b.endLoop();
  b.beginLoop("i", 0, v("NI"));
  b.beginLoop("j", 0, v("NI"));
  b.beginLoop("k", 0, v("NJ"));
  b.stmt("S2", "C", {v("i"), v("j")}, AssignOp::AddAssign,
         ref("alpha", {n(0)}) * ref("A", {v("i"), v("k")}) *
             ref("A", {v("j"), v("k")}));
  b.endLoop();
  b.endLoop();
  b.endLoop();
  return b.build();
}

ir::Program buildSyr2k() {
  ProgramBuilder b("syr2k");
  b.param("NI", 24).param("NJ", 24);
  b.array("C", {v("NI"), v("NI")});
  b.array("A", {v("NI"), v("NJ")});
  b.array("B", {v("NI"), v("NJ")});
  b.array("alpha", {n(1)});
  b.array("beta", {n(1)});
  b.beginLoop("i", 0, v("NI"));
  b.beginLoop("j", 0, v("NI"));
  b.stmt("S1", "C", {v("i"), v("j")}, AssignOp::MulAssign,
         ref("beta", {n(0)}));
  b.endLoop();
  b.endLoop();
  b.beginLoop("i", 0, v("NI"));
  b.beginLoop("j", 0, v("NI"));
  b.beginLoop("k", 0, v("NJ"));
  b.stmt("S2", "C", {v("i"), v("j")}, AssignOp::AddAssign,
         ref("alpha", {n(0)}) * ref("A", {v("i"), v("k")}) *
                 ref("B", {v("j"), v("k")}) +
             ref("alpha", {n(0)}) * ref("B", {v("i"), v("k")}) *
                 ref("A", {v("j"), v("k")}));
  b.endLoop();
  b.endLoop();
  b.endLoop();
  return b.build();
}

ir::Program buildSymm() {
  // PolyBench 3.2 symm; the scalar accumulator is a one-element array.
  ProgramBuilder b("symm");
  b.param("NI", 20).param("NJ", 20);
  b.array("C", {v("NJ"), v("NJ")});
  b.array("A", {v("NJ"), v("NI")});
  b.array("B", {v("NI"), v("NJ")});
  b.array("acc", {n(1)});
  b.array("alpha", {n(1)});
  b.array("beta", {n(1)});
  b.beginLoop("i", 0, v("NI"));
  b.beginLoop("j", 0, v("NJ"));
  b.stmt("S1", "acc", {n(0)}, AssignOp::Set, lit(0.0));
  b.beginLoop("k", 0, v("j"));
  b.stmt("S2", "C", {v("k"), v("j")}, AssignOp::AddAssign,
         ref("alpha", {n(0)}) * ref("A", {v("k"), v("i")}) *
             ref("B", {v("i"), v("j")}));
  b.stmt("S3", "acc", {n(0)}, AssignOp::AddAssign,
         ref("B", {v("k"), v("j")}) * ref("A", {v("k"), v("i")}));
  b.endLoop();
  b.stmt("S4", "C", {v("i"), v("j")}, AssignOp::Set,
         ref("beta", {n(0)}) * ref("C", {v("i"), v("j")}) +
             ref("alpha", {n(0)}) * ref("A", {v("i"), v("i")}) *
                 ref("B", {v("i"), v("j")}) +
             ref("alpha", {n(0)}) * ref("acc", {n(0)}));
  b.endLoop();
  b.endLoop();
  return b.build();
}

ir::Program buildDoitgen() {
  ProgramBuilder b("doitgen");
  b.param("NR", 12).param("NQ", 12).param("NP", 12);
  b.array("A", {v("NR"), v("NQ"), v("NP")});
  b.array("sum", {v("NR"), v("NQ"), v("NP")});
  b.array("C4", {v("NP"), v("NP")});
  b.beginLoop("r", 0, v("NR"));
  b.beginLoop("q", 0, v("NQ"));
  b.beginLoop("p", 0, v("NP"));
  b.stmt("S1", "sum", {v("r"), v("q"), v("p")}, AssignOp::Set, lit(0.0));
  b.beginLoop("s", 0, v("NP"));
  b.stmt("S2", "sum", {v("r"), v("q"), v("p")}, AssignOp::AddAssign,
         ref("A", {v("r"), v("q"), v("s")}) * ref("C4", {v("s"), v("p")}));
  b.endLoop();
  b.endLoop();
  b.beginLoop("p", 0, v("NP"));
  b.stmt("S3", "A", {v("r"), v("q"), v("p")}, AssignOp::Set,
         ref("sum", {v("r"), v("q"), v("p")}));
  b.endLoop();
  b.endLoop();
  b.endLoop();
  return b.build();
}

ir::Program buildGesummv() {
  ProgramBuilder b("gesummv");
  b.param("N", 32);
  b.array("A", {v("N"), v("N")});
  b.array("B", {v("N"), v("N")});
  b.array("x", {v("N")});
  b.array("y", {v("N")});
  b.array("tmp", {v("N")});
  b.array("alpha", {n(1)});
  b.array("beta", {n(1)});
  b.beginLoop("i", 0, v("N"));
  b.stmt("S1", "tmp", {v("i")}, AssignOp::Set, lit(0.0));
  b.stmt("S2", "y", {v("i")}, AssignOp::Set, lit(0.0));
  b.beginLoop("j", 0, v("N"));
  b.stmt("S3", "tmp", {v("i")}, AssignOp::AddAssign,
         ref("A", {v("i"), v("j")}) * ref("x", {v("j")}));
  b.stmt("S4", "y", {v("i")}, AssignOp::AddAssign,
         ref("B", {v("i"), v("j")}) * ref("x", {v("j")}));
  b.endLoop();
  b.stmt("S5", "y", {v("i")}, AssignOp::Set,
         ref("alpha", {n(0)}) * ref("tmp", {v("i")}) +
             ref("beta", {n(0)}) * ref("y", {v("i")}));
  b.endLoop();
  return b.build();
}

ir::Program buildGemver() {
  ProgramBuilder b("gemver");
  b.param("N", 32);
  b.array("A", {v("N"), v("N")});
  b.array("u1", {v("N")});
  b.array("v1", {v("N")});
  b.array("u2", {v("N")});
  b.array("v2", {v("N")});
  b.array("x", {v("N")});
  b.array("y", {v("N")});
  b.array("z", {v("N")});
  b.array("w", {v("N")});
  b.array("alpha", {n(1)});
  b.array("beta", {n(1)});
  b.beginLoop("i", 0, v("N"));
  b.beginLoop("j", 0, v("N"));
  b.stmt("S1", "A", {v("i"), v("j")}, AssignOp::Set,
         ref("A", {v("i"), v("j")}) + ref("u1", {v("i")}) *
                 ref("v1", {v("j")}) +
             ref("u2", {v("i")}) * ref("v2", {v("j")}));
  b.endLoop();
  b.endLoop();
  b.beginLoop("i", 0, v("N"));
  b.beginLoop("j", 0, v("N"));
  b.stmt("S2", "x", {v("i")}, AssignOp::AddAssign,
         ref("beta", {n(0)}) * ref("A", {v("j"), v("i")}) *
             ref("y", {v("j")}));
  b.endLoop();
  b.endLoop();
  b.beginLoop("i", 0, v("N"));
  b.stmt("S3", "x", {v("i")}, AssignOp::AddAssign, ref("z", {v("i")}));
  b.endLoop();
  b.beginLoop("i", 0, v("N"));
  b.beginLoop("j", 0, v("N"));
  b.stmt("S4", "w", {v("i")}, AssignOp::AddAssign,
         ref("alpha", {n(0)}) * ref("A", {v("i"), v("j")}) *
             ref("x", {v("j")}));
  b.endLoop();
  b.endLoop();
  return b.build();
}

ir::Program buildMvt() {
  ProgramBuilder b("mvt");
  b.param("N", 32);
  b.array("A", {v("N"), v("N")});
  b.array("x1", {v("N")});
  b.array("x2", {v("N")});
  b.array("y1", {v("N")});
  b.array("y2", {v("N")});
  b.beginLoop("i", 0, v("N"));
  b.beginLoop("j", 0, v("N"));
  b.stmt("S1", "x1", {v("i")}, AssignOp::AddAssign,
         ref("A", {v("i"), v("j")}) * ref("y1", {v("j")}));
  b.endLoop();
  b.endLoop();
  b.beginLoop("i", 0, v("N"));
  b.beginLoop("j", 0, v("N"));
  b.stmt("S2", "x2", {v("i")}, AssignOp::AddAssign,
         ref("A", {v("j"), v("i")}) * ref("y2", {v("j")}));
  b.endLoop();
  b.endLoop();
  return b.build();
}

ir::Program buildAtax() {
  ProgramBuilder b("atax");
  b.param("NX", 32).param("NY", 32);
  b.array("A", {v("NX"), v("NY")});
  b.array("x", {v("NY")});
  b.array("y", {v("NY")});
  b.array("tmp", {v("NX")});
  b.beginLoop("i", 0, v("NY"));
  b.stmt("S1", "y", {v("i")}, AssignOp::Set, lit(0.0));
  b.endLoop();
  b.beginLoop("i", 0, v("NX"));
  b.stmt("S2", "tmp", {v("i")}, AssignOp::Set, lit(0.0));
  b.beginLoop("j", 0, v("NY"));
  b.stmt("S3", "tmp", {v("i")}, AssignOp::AddAssign,
         ref("A", {v("i"), v("j")}) * ref("x", {v("j")}));
  b.endLoop();
  b.beginLoop("j", 0, v("NY"));
  b.stmt("S4", "y", {v("j")}, AssignOp::AddAssign,
         ref("A", {v("i"), v("j")}) * ref("tmp", {v("i")}));
  b.endLoop();
  b.endLoop();
  return b.build();
}

ir::Program buildBicg() {
  ProgramBuilder b("bicg");
  b.param("NX", 32).param("NY", 32);
  b.array("A", {v("NX"), v("NY")});
  b.array("s", {v("NY")});
  b.array("q", {v("NX")});
  b.array("p", {v("NY")});
  b.array("r", {v("NX")});
  b.beginLoop("i", 0, v("NY"));
  b.stmt("S1", "s", {v("i")}, AssignOp::Set, lit(0.0));
  b.endLoop();
  b.beginLoop("i", 0, v("NX"));
  b.stmt("S2", "q", {v("i")}, AssignOp::Set, lit(0.0));
  b.beginLoop("j", 0, v("NY"));
  b.stmt("S3", "s", {v("j")}, AssignOp::AddAssign,
         ref("r", {v("i")}) * ref("A", {v("i"), v("j")}));
  b.stmt("S4", "q", {v("i")}, AssignOp::AddAssign,
         ref("A", {v("i"), v("j")}) * ref("p", {v("j")}));
  b.endLoop();
  b.endLoop();
  return b.build();
}

}  // namespace

void registerBlas(std::vector<KernelInfo>& out) {
  using Group = KernelInfo::Group;
  out.push_back({"2mm", "2 matrix multiplications (D = A.B; E = D.C)",
                 Group::Doall, build2mm,
                 [](const auto& p) {
                   return 2.0 * P(p, "NI") * P(p, "NJ") * P(p, "NK") +
                          P(p, "NI") * P(p, "NJ") +
                          2.0 * P(p, "NI") * P(p, "NL") * P(p, "NJ") +
                          P(p, "NI") * P(p, "NL");
                 },
                 /*prepare=*/{}});
  out.push_back({"3mm", "3 matrix multiplications (E=A.B; F=C.D; G=E.F)",
                 Group::Doall, build3mm,
                 [](const auto& p) {
                   return 2.0 * P(p, "NI") * P(p, "NJ") * P(p, "NK") +
                          2.0 * P(p, "NJ") * P(p, "NL") * P(p, "NM") +
                          2.0 * P(p, "NI") * P(p, "NL") * P(p, "NJ");
                 },
                 /*prepare=*/{}});
  out.push_back({"atax", "matrix transpose and vector multiplication",
                 Group::Reduction, buildAtax,
                 [](const auto& p) {
                   return 4.0 * P(p, "NX") * P(p, "NY");
                 },
                 /*prepare=*/{}});
  out.push_back({"bicg", "BiCG sub-kernel of BiCGStab linear solver",
                 Group::Reduction, buildBicg,
                 [](const auto& p) {
                   return 4.0 * P(p, "NX") * P(p, "NY");
                 },
                 /*prepare=*/{}});
  out.push_back({"doitgen", "multiresolution analysis kernel (MADNESS)",
                 Group::Doall, buildDoitgen,
                 [](const auto& p) {
                   return 2.0 * P(p, "NR") * P(p, "NQ") * P(p, "NP") *
                          P(p, "NP");
                 },
                 /*prepare=*/{}});
  out.push_back({"gemm", "matrix multiply C = alpha.A.B + beta.C",
                 Group::Doall, buildGemm,
                 [](const auto& p) {
                   return 2.0 * P(p, "NI") * P(p, "NJ") * P(p, "NK") +
                          P(p, "NI") * P(p, "NJ");
                 },
                 /*prepare=*/{}});
  out.push_back({"gemver", "vector multiplication and matrix addition",
                 Group::Reduction, buildGemver,
                 [](const auto& p) {
                   return 10.0 * P(p, "N") * P(p, "N");
                 },
                 /*prepare=*/{}});
  out.push_back({"gesummv", "scalar, vector and matrix multiplication",
                 Group::Doall, buildGesummv,
                 [](const auto& p) {
                   return 4.0 * P(p, "N") * P(p, "N") + 3.0 * P(p, "N");
                 },
                 /*prepare=*/{}});
  out.push_back({"mvt", "matrix-vector product and transpose",
                 Group::Reduction, buildMvt,
                 [](const auto& p) {
                   return 4.0 * P(p, "N") * P(p, "N");
                 },
                 /*prepare=*/{}});
  out.push_back({"symm", "symmetric matrix multiply", Group::Reduction,
                 buildSymm,
                 [](const auto& p) {
                   return 4.0 * P(p, "NI") * P(p, "NJ") * P(p, "NJ") / 2.0;
                 },
                 /*prepare=*/{}});
  out.push_back({"syr2k", "symmetric rank-2k operations", Group::Doall,
                 buildSyr2k,
                 [](const auto& p) {
                   return 6.0 * P(p, "NI") * P(p, "NI") * P(p, "NJ") +
                          P(p, "NI") * P(p, "NI");
                 },
                 /*prepare=*/{}});
  out.push_back({"syrk", "symmetric rank-k operations", Group::Doall,
                 buildSyrk,
                 [](const auto& p) {
                   return 3.0 * P(p, "NI") * P(p, "NI") * P(p, "NJ") +
                          P(p, "NI") * P(p, "NI");
                 },
                 /*prepare=*/{}});
}

}  // namespace polyast::kernels::detail
