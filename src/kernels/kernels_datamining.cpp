// Data-mining kernels of PolyBench/C 3.2: correlation, covariance.
#include "kernels/detail.hpp"

namespace polyast::kernels::detail {

namespace {

ir::Program buildCorrelation() {
  ProgramBuilder b("correlation");
  b.param("N", 24).param("M", 24);
  b.array("data", {v("N"), v("M")});
  b.array("mean", {v("M")});
  b.array("stddev", {v("M")});
  b.array("symmat", {v("M"), v("M")});
  const double eps = 0.1;
  // Means.
  b.beginLoop("j", 0, v("M"));
  b.stmt("S1", "mean", {v("j")}, AssignOp::Set, lit(0.0));
  b.beginLoop("i", 0, v("N"));
  b.stmt("S2", "mean", {v("j")}, AssignOp::AddAssign,
         ref("data", {v("i"), v("j")}));
  b.endLoop();
  b.stmt("S3", "mean", {v("j")}, AssignOp::DivAssign, ir::paramRef("N"));
  b.endLoop();
  // Standard deviations (guarded against near-zero via select).
  b.beginLoop("j", 0, v("M"));
  b.stmt("S4", "stddev", {v("j")}, AssignOp::Set, lit(0.0));
  b.beginLoop("i", 0, v("N"));
  b.stmt("S5", "stddev", {v("j")}, AssignOp::AddAssign,
         (ref("data", {v("i"), v("j")}) - ref("mean", {v("j")})) *
             (ref("data", {v("i"), v("j")}) - ref("mean", {v("j")})));
  b.endLoop();
  b.stmt("S6", "stddev", {v("j")}, AssignOp::DivAssign, ir::paramRef("N"));
  b.stmt("S7", "stddev", {v("j")}, AssignOp::Set,
         ir::unary(ir::UnOp::Sqrt, ref("stddev", {v("j")})));
  b.stmt("S8", "stddev", {v("j")}, AssignOp::Set,
         ir::select(ir::binary(ir::BinOp::Le, ref("stddev", {v("j")}),
                               lit(eps)),
                    lit(1.0), ref("stddev", {v("j")})));
  b.endLoop();
  // Center and reduce the column vectors.
  b.beginLoop("i", 0, v("N"));
  b.beginLoop("j", 0, v("M"));
  b.stmt("S9", "data", {v("i"), v("j")}, AssignOp::SubAssign,
         ref("mean", {v("j")}));
  b.stmt("S10", "data", {v("i"), v("j")}, AssignOp::DivAssign,
         ir::unary(ir::UnOp::Sqrt, ir::paramRef("N")) *
             ref("stddev", {v("j")}));
  b.endLoop();
  b.endLoop();
  // Correlation matrix (strict upper triangle + unit diagonal).
  b.beginLoop("j1", 0, v("M") - n(1));
  b.stmt("S11", "symmat", {v("j1"), v("j1")}, AssignOp::Set, lit(1.0));
  b.beginLoop("j2", v("j1") + n(1), v("M"));
  b.stmt("S12", "symmat", {v("j1"), v("j2")}, AssignOp::Set, lit(0.0));
  b.beginLoop("i", 0, v("N"));
  b.stmt("S13", "symmat", {v("j1"), v("j2")}, AssignOp::AddAssign,
         ref("data", {v("i"), v("j1")}) * ref("data", {v("i"), v("j2")}));
  b.endLoop();
  b.stmt("S14", "symmat", {v("j2"), v("j1")}, AssignOp::Set,
         ref("symmat", {v("j1"), v("j2")}));
  b.endLoop();
  b.endLoop();
  b.stmt("S15", "symmat", {v("M") - n(1), v("M") - n(1)}, AssignOp::Set,
         lit(1.0));
  return b.build();
}

ir::Program buildCovariance() {
  ProgramBuilder b("covariance");
  b.param("N", 24).param("M", 24);
  b.array("data", {v("N"), v("M")});
  b.array("mean", {v("M")});
  b.array("symmat", {v("M"), v("M")});
  b.beginLoop("j", 0, v("M"));
  b.stmt("S1", "mean", {v("j")}, AssignOp::Set, lit(0.0));
  b.beginLoop("i", 0, v("N"));
  b.stmt("S2", "mean", {v("j")}, AssignOp::AddAssign,
         ref("data", {v("i"), v("j")}));
  b.endLoop();
  b.stmt("S3", "mean", {v("j")}, AssignOp::DivAssign, ir::paramRef("N"));
  b.endLoop();
  b.beginLoop("i", 0, v("N"));
  b.beginLoop("j", 0, v("M"));
  b.stmt("S4", "data", {v("i"), v("j")}, AssignOp::SubAssign,
         ref("mean", {v("j")}));
  b.endLoop();
  b.endLoop();
  b.beginLoop("j1", 0, v("M"));
  b.beginLoop("j2", v("j1"), v("M"));
  b.stmt("S5", "symmat", {v("j1"), v("j2")}, AssignOp::Set, lit(0.0));
  b.beginLoop("i", 0, v("N"));
  b.stmt("S6", "symmat", {v("j1"), v("j2")}, AssignOp::AddAssign,
         ref("data", {v("i"), v("j1")}) * ref("data", {v("i"), v("j2")}));
  b.endLoop();
  b.stmt("S7", "symmat", {v("j2"), v("j1")}, AssignOp::Set,
         ref("symmat", {v("j1"), v("j2")}));
  b.endLoop();
  b.endLoop();
  return b.build();
}

}  // namespace

void registerDatamining(std::vector<KernelInfo>& out) {
  using Group = KernelInfo::Group;
  out.push_back({"correlation", "correlation computation", Group::Reduction,
                 buildCorrelation,
                 [](const auto& p) {
                   double N = P(p, "N"), M = P(p, "M");
                   return 2.0 * M * N + 3.0 * M * N + M * M * N;
                 },
                 /*prepare=*/{}});
  out.push_back({"covariance", "covariance computation", Group::Reduction,
                 buildCovariance,
                 [](const auto& p) {
                   double N = P(p, "N"), M = P(p, "M");
                   return 2.0 * M * N + M * N + M * M * N;
                 },
                 /*prepare=*/{}});
}

}  // namespace polyast::kernels::detail
