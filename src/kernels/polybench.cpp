#include "kernels/polybench.hpp"

#include <algorithm>

#include "kernels/detail.hpp"
#include "support/error.hpp"

namespace polyast::kernels {

const std::vector<KernelInfo>& allKernels() {
  static const std::vector<KernelInfo> registry = [] {
    std::vector<KernelInfo> out;
    detail::registerBlas(out);
    detail::registerSolvers(out);
    detail::registerStencils(out);
    detail::registerDatamining(out);
    // Table II lists the benchmarks alphabetically.
    std::sort(out.begin(), out.end(),
              [](const KernelInfo& a, const KernelInfo& b) {
                return a.name < b.name;
              });
    return out;
  }();
  return registry;
}

const KernelInfo& kernel(const std::string& name) {
  for (const auto& k : allKernels())
    if (k.name == name) return k;
  POLYAST_CHECK(false, "unknown kernel: " + name);
}

ir::Program buildKernel(const std::string& name) { return kernel(name).build(); }

exec::Context makeContext(const ir::Program& program,
                          std::map<std::string, std::int64_t> params) {
  exec::Context ctx(program, std::move(params));
  ctx.seedAll();
  for (const auto& k : allKernels()) {
    if (program.name.rfind(k.name, 0) == 0) {  // name or name_scheduled etc.
      if (k.prepare) k.prepare(ctx);
      return ctx;
    }
  }
  return ctx;
}

}  // namespace polyast::kernels
