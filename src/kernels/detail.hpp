// Shared shorthand for kernel definitions (internal to src/kernels).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/builder.hpp"
#include "kernels/polybench.hpp"

namespace polyast::kernels::detail {

using ir::AffExpr;
using ir::AssignOp;
using ir::ExprPtr;
using ir::ProgramBuilder;

/// Affine term for an iterator or parameter.
inline AffExpr v(const std::string& name) { return AffExpr::term(name); }
/// Affine constant.
inline AffExpr n(std::int64_t c) { return AffExpr(c); }

inline ExprPtr ref(const std::string& array, std::vector<AffExpr> subs) {
  return ir::arrayRef(array, std::move(subs));
}
inline ExprPtr lit(double x) { return ir::floatLit(x); }

/// Parameter lookup with kernel-default fallback, for flops lambdas.
inline double P(const std::map<std::string, std::int64_t>& params,
                const std::string& name) {
  auto it = params.find(name);
  return it == params.end() ? 0.0 : static_cast<double>(it->second);
}

void registerBlas(std::vector<KernelInfo>& out);
void registerSolvers(std::vector<KernelInfo>& out);
void registerStencils(std::vector<KernelInfo>& out);
void registerDatamining(std::vector<KernelInfo>& out);

}  // namespace polyast::kernels::detail
