// Static analysis framework over the IR + polyhedral view.
//
// An AnalysisSession owns a DiagnosticEngine and is invoked — typically
// via flow::AnalyzePass — on the program at successive pipeline points.
// The first analyze() call captures the *baseline*: it stamps every
// statement's provenance map (ir::Stmt::origin, the identity at that
// point) and snapshots the program, its SCoP, and its dependence graph.
// Later calls check the by-then transformed program against that
// baseline:
//
//   * legality  — every baseline dependence, rewritten into the current
//                 iteration space through the statements' origin maps,
//                 must still be ordered source-before-sink by the current
//                 program's syntactic schedule (legality.cpp),
//   * races     — every parallel mark (Doall / Reduction / Pipeline /
//                 ReductionPipeline) is re-proven from the current
//                 dependence graph; an uncovered loop-carried dependence
//                 is a race (races.cpp),
//   * bounds    — affine subscripts are checked against declared array
//                 extents under the parameter domain, plus IR
//                 well-formedness lints (bounds.cpp).
//
// Soundness: emptiness tests use the rational relaxation, so a finding
// can be spurious only in the "possible" direction — findings are
// reported as errors only when a concrete integer witness exists at the
// session's test parameters and the involved statements' stride modeling
// is exact; everything else is a warning.
//
// Adding an analysis: write a `void runX(const AnalysisInput&,
// DiagnosticEngine&)` translation unit that reports Diagnostics under a
// new stable analysis id, and call it from AnalysisSession::analyze()
// behind an AnalysisOptions toggle. See docs/ANALYSIS.md.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "ir/ast.hpp"
#include "poly/dependence.hpp"
#include "poly/scop.hpp"

namespace polyast::analysis {

struct AnalysisOptions {
  bool legality = true;
  bool races = true;
  bool bounds = true;
  /// Reduction soundness re-verification: every reduction-classified self
  /// edge of the current dependence graph must either execute sequentially
  /// inside one cell of every enclosing parallel construct or land in a
  /// construct the executor privatizes (reductions.cpp).
  bool reductions = true;
  /// The pipeline ran with --reductions=relaxed: the affine scheduler was
  /// allowed to drop proven-pure accumulation edges, so a violated
  /// *relaxable* baseline dependence is the expected reassociation, not a
  /// bug — legality downgrades it to a remark and the reductions pass
  /// carries the proof obligation instead.
  bool relaxedReductions = false;
  /// Parameter lower bound assumed by every polyhedral question (matches
  /// ScopOptions::paramMin).
  std::int64_t paramMin = 4;
  /// Parameter bindings used when confirming a rational finding with a
  /// concrete integer witness. Parameters not listed default to the
  /// test-scale values the interpreter oracle uses (max(paramMin, 3) for
  /// TSTEPS-like parameters, max(paramMin, 7) otherwise).
  std::map<std::string, std::int64_t> witnessParams;
};

/// Everything one analysis run sees. Baseline fields are null until the
/// session has captured a usable baseline (legality needs them; races and
/// bounds only look at the current program).
struct AnalysisInput {
  const ir::Program* program = nullptr;
  const poly::Scop* scop = nullptr;          ///< current program
  const poly::PoDG* podg = nullptr;          ///< current deps (no input deps)
  const poly::Scop* baselineScop = nullptr;  ///< pipeline-input view
  const poly::PoDG* baselinePodg = nullptr;
  std::string afterPass;
  const AnalysisOptions* options = nullptr;
};

// Analysis entry points, one translation unit each.
void runLegality(const AnalysisInput& in, DiagnosticEngine& engine);
void runRaces(const AnalysisInput& in, DiagnosticEngine& engine);
void runBounds(const AnalysisInput& in, DiagnosticEngine& engine);
void runReductions(const AnalysisInput& in, DiagnosticEngine& engine);

/// The reduction pass's vouching contract, shared with the race analysis:
/// a reduction-classified dependence carried by a Reduction /
/// ReductionPipeline mark is benign only when the executor will actually
/// privatize its accumulator inside that construct. Computed from the same
/// ir::privatizableArrays helper the interpreter walker and the native
/// kernel emitter consume, so the static proof and the runtime discharge
/// can never disagree about the obligation (reductions.cpp).
bool reductionEdgeVouched(const poly::Dependence& d,
                          const std::shared_ptr<ir::Loop>& mark);

/// One analysis session: baseline capture + repeated analyze() calls over
/// the (mutating) program, accumulating diagnostics across the pipeline.
class AnalysisSession {
 public:
  explicit AnalysisSession(
      AnalysisOptions options = {},
      obs::Registry* metrics = &obs::Registry::global());

  /// Runs every enabled analysis on `program`, attributing findings to
  /// the pipeline point `afterPass` ("<input>" by convention before any
  /// pass). The first call stamps ir::Stmt::origin identity maps on the
  /// live program and snapshots it as the legality baseline. Re-analyzing
  /// a textually identical program is skipped (same text, same verdicts).
  void analyze(ir::Program& program, const std::string& afterPass);

  DiagnosticEngine& engine() { return engine_; }
  const DiagnosticEngine& engine() const { return engine_; }
  const AnalysisOptions& options() const { return options_; }
  bool hasBaseline() const { return baseline_ != nullptr; }

 private:
  void captureBaseline(ir::Program& program);

  AnalysisOptions options_;
  obs::Registry* metrics_;
  DiagnosticEngine engine_;
  /// Snapshot of the pipeline input; unique_ptr keeps its address stable
  /// (baselineScop_ points into it).
  std::unique_ptr<ir::Program> baseline_;
  std::optional<poly::Scop> baselineScop_;
  std::optional<poly::PoDG> baselinePodg_;
  bool baselineUsable_ = false;
  std::string lastAnalyzedText_;
  /// Rename-invariant canonicalization of the last program the legality
  /// analysis actually proved (see legalityKey in analysis.cpp); a later
  /// pipeline point with an equal key reuses those verdicts.
  std::string lastLegalityKey_;
};

// Shared helpers used by the analyses.

/// "loop:t/loop:i/stmt:S1" location path of a statement.
std::string locationOf(const poly::PolyStmt& ps);

/// Witness value for one parameter (AnalysisOptions::witnessParams or the
/// test-scale default, never below paramMin).
std::int64_t witnessParamValue(const AnalysisOptions& options,
                               const std::string& param);

/// Fixes the parameter columns [paramBase, paramBase + params.size()) of
/// `set` to their witness values and searches for an integer point.
/// nullopt = empty under the witness parameters (or enumeration failed on
/// an unbounded direction) — i.e. no concrete counterexample.
std::optional<std::vector<std::int64_t>> findIntegerWitness(
    const IntSet& set, std::size_t paramBase,
    const std::vector<std::string>& params, const AnalysisOptions& options);

/// "i@s=1 j@s=2 ..." rendering of an enumerated point.
std::string formatWitness(const std::vector<std::string>& names,
                          const std::vector<std::int64_t>& point);

}  // namespace polyast::analysis
