#include "analysis/diagnostic.hpp"

#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace polyast::analysis {

std::string severityName(Severity s) {
  switch (s) {
    case Severity::Remark: return "remark";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

std::string Diagnostic::str() const {
  std::string out = severityName(severity) + "[" + analysis + "/" + code + "]";
  if (!location.empty()) out += " at " + location;
  if (!afterPass.empty()) out += " (after " + afterPass + ")";
  out += ": " + message;
  return out;
}

DiagnosticEngine::DiagnosticEngine(obs::Registry* metrics)
    : metrics_(metrics) {}

void DiagnosticEngine::report(Diagnostic d) {
  ++counts_[static_cast<int>(d.severity)];
  metrics_->counter("analysis.diagnostics").add();
  metrics_->counter("analysis." + d.analysis + "." +
                    severityName(d.severity) + "s")
      .add();
  diags_.push_back(std::move(d));
}

std::size_t DiagnosticEngine::count(Severity s) const {
  return counts_[static_cast<int>(s)];
}

std::string DiagnosticEngine::summary() const {
  std::ostringstream out;
  for (const auto& d : diags_) out << d.str() << "\n";
  out << diags_.size() << " diagnostic(s): " << errors() << " error(s), "
      << warnings() << " warning(s), " << remarks() << " remark(s)\n";
  return out.str();
}

void writeDiagnosticsJson(std::ostream& out, const DiagnosticEngine& engine,
                          const std::string& program,
                          const std::string& pipeline) {
  obs::JsonWriter w(out);
  w.beginObject();
  w.key("schema").value("polyast-diagnostics-v1");
  w.key("program").value(program);
  w.key("pipeline").value(pipeline);
  w.key("summary").beginObject();
  w.key("errors").value(static_cast<std::int64_t>(engine.errors()));
  w.key("warnings").value(static_cast<std::int64_t>(engine.warnings()));
  w.key("remarks").value(static_cast<std::int64_t>(engine.remarks()));
  w.endObject();
  w.key("diagnostics").beginArray();
  for (const auto& d : engine.diagnostics()) {
    w.beginObject();
    w.key("severity").value(severityName(d.severity));
    w.key("analysis").value(d.analysis);
    w.key("code").value(d.code);
    w.key("message").value(d.message);
    w.key("location").value(d.location);
    w.key("after_pass").value(d.afterPass);
    w.key("detail").beginObject();
    for (const auto& [k, v] : d.detail) w.key(k).value(v);
    w.endObject();
    w.endObject();
  }
  w.endArray();
  w.endObject();
  out << "\n";
}

bool writeDiagnosticsFile(const std::string& path,
                          const DiagnosticEngine& engine,
                          const std::string& program,
                          const std::string& pipeline) {
  std::ofstream out(path);
  if (!out) return false;
  writeDiagnosticsJson(out, engine, program, pipeline);
  return out.good();
}

}  // namespace polyast::analysis
