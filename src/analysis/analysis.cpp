#include "analysis/analysis.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "obs/trace.hpp"
#include "support/error.hpp"

namespace polyast::analysis {

namespace {

/// Canonical change-detection key for the legality verdicts: the program
/// text with every loop iterator renamed to its pre-order position, plus
/// each statement's provenance (origin) map. That captures everything the
/// legality proof depends on — domains, access functions, textual order,
/// schedule provenance — and nothing it does not (iterator spellings).
/// Legality compares the current program against the immutable baseline,
/// so two pipeline points with equal keys get identical verdicts; a pass
/// that only renames iterators need not re-prove every baseline edge.
std::string legalityKey(const ir::Program& program) {
  ir::Program copy = program.deepCopy();
  std::vector<std::shared_ptr<ir::Loop>> loops;
  std::function<void(const ir::NodePtr&)> collect =
      [&](const ir::NodePtr& n) {
        switch (n->kind) {
          case ir::Node::Kind::Block:
            for (const auto& c :
                 std::static_pointer_cast<ir::Block>(n)->children)
              collect(c);
            break;
          case ir::Node::Kind::Loop: {
            auto l = std::static_pointer_cast<ir::Loop>(n);
            loops.push_back(l);
            collect(l->body);
            break;
          }
          case ir::Node::Kind::Stmt:
            break;
        }
      };
  collect(copy.root);
  // Pre-order (outermost first), so shadowing renames resolve innermost
  // last — "@" cannot appear in a source iterator, so no collisions.
  for (std::size_t k = 0; k < loops.size(); ++k)
    ir::renameIterInTree(loops[k], loops[k]->iter, "@" + std::to_string(k));
  std::string key = ir::printProgram(copy);
  copy.forEachStmt([&](const std::shared_ptr<ir::Stmt>& s,
                       const std::vector<std::shared_ptr<ir::Loop>>&) {
    key += "\n#origin " + std::to_string(s->id) + ":";
    for (const auto& o : s->origin) key += " [" + o.str() + "]";
  });
  return key;
}

}  // namespace

AnalysisSession::AnalysisSession(AnalysisOptions options,
                                 obs::Registry* metrics)
    : options_(std::move(options)), metrics_(metrics), engine_(metrics) {}

void AnalysisSession::captureBaseline(ir::Program& program) {
  // Stamp the identity provenance map: from here on every iterator
  // substitution a pass performs keeps Stmt::origin expressing the
  // original iterators in terms of the current ones.
  program.forEachStmt([](const std::shared_ptr<ir::Stmt>& stmt,
                         const std::vector<std::shared_ptr<ir::Loop>>& loops) {
    stmt->origin.clear();
    stmt->origin.reserve(loops.size());
    for (const auto& l : loops)
      stmt->origin.push_back(ir::AffExpr::term(l->iter));
  });
  baseline_ = std::make_unique<ir::Program>(program.deepCopy());

  std::string unusable;
  try {
    poly::ScopOptions sopt;
    sopt.paramMin = options_.paramMin;
    baselineScop_ = poly::extractScop(*baseline_, sopt);
    baselinePodg_ = poly::computeDependences(*baselineScop_);
    std::set<int> ids;
    for (const auto& ps : baselineScop_->stmts) {
      if (!ids.insert(ps.stmt->id).second)
        unusable = "duplicate statement ids in the input";
      if (ps.numExists > 0 || !ps.exactStrides)
        unusable = "stepped loops in the input";
    }
  } catch (const Error& e) {
    unusable = std::string("baseline extraction failed: ") + e.what();
    baselineScop_.reset();
    baselinePodg_.reset();
  }
  baselineUsable_ = unusable.empty();
  if (!baselineUsable_) {
    Diagnostic d;
    d.severity = Severity::Remark;
    d.analysis = "legality";
    d.code = "baseline-unusable";
    d.message = "legality analysis disabled: " + unusable;
    d.afterPass = "<input>";
    engine_.report(d);
  }
}

void AnalysisSession::analyze(ir::Program& program,
                              const std::string& afterPass) {
  obs::Span span("analysis.run", "analysis");
  span.attr("after", afterPass);
  metrics_->counter("analysis.runs").add();

  // A pass that did not change the program cannot change any verdict: the
  // printed text is a faithful rendering of everything the analyses see.
  std::string text = ir::printProgram(program);
  if (text == lastAnalyzedText_) {
    metrics_->counter("analysis.skipped_unchanged").add();
    return;
  }

  if (!baseline_) captureBaseline(program);

  // The race and reduction analyses are the only consumers of the
  // re-extracted dependence graph, and recomputing dependences on a fully
  // transformed (tiled, unrolled) program is the single most expensive
  // step here. Nothing can race — and no relaxed accumulation can
  // interleave — before the first parallel mark appears, so skip it
  // outright.
  bool hasMarks = false;
  program.forEachStmt([&](const std::shared_ptr<ir::Stmt>&,
                          const std::vector<std::shared_ptr<ir::Loop>>& loops) {
    for (const auto& l : loops)
      if (l->parallel != ir::ParallelKind::None) hasMarks = true;
  });

  std::optional<poly::Scop> scop;
  std::optional<poly::PoDG> podg;
  try {
    poly::ScopOptions sopt;
    sopt.paramMin = options_.paramMin;
    scop = poly::extractScop(program, sopt);
    // Dependence re-extraction can also trip over a non-affine escape
    // (extraction itself never maps access subscripts).
    if ((options_.races || options_.reductions) && hasMarks)
      podg = poly::computeDependences(*scop);
  } catch (const Error& e) {
    // Non-affine escape (or malformed loop): the program left the class
    // the analyses can reason about — itself a well-formedness finding.
    scop.reset();
    Diagnostic d;
    d.severity = Severity::Error;
    d.analysis = "bounds";
    d.code = "extract-error";
    d.message = std::string("SCoP extraction failed: ") + e.what();
    d.afterPass = afterPass;
    engine_.report(d);
  }

  if (scop) {
    AnalysisInput in;
    in.program = &program;
    in.scop = &*scop;
    in.podg = podg ? &*podg : nullptr;
    in.baselineScop = baselineScop_ ? &*baselineScop_ : nullptr;
    in.baselinePodg = baselinePodg_ ? &*baselinePodg_ : nullptr;
    in.afterPass = afterPass;
    in.options = &options_;

    if (options_.legality && baselineUsable_) {
      std::string key = legalityKey(program);
      if (key == lastLegalityKey_) {
        // Same canonical schedule + domain as the last proved point (the
        // pass only respelled iterators): the verdicts — already reported
        // there — carry over verbatim.
        metrics_->counter("analysis.legality.reused_unchanged").add();
      } else {
        obs::Span s("analysis.legality", "analysis");
        runLegality(in, engine_);
        lastLegalityKey_ = std::move(key);
      }
    }
    if (options_.races) {
      obs::Span s("analysis.races", "analysis");
      runRaces(in, engine_);
    }
    if (options_.reductions) {
      obs::Span s("analysis.reductions", "analysis");
      runReductions(in, engine_);
    }
    if (options_.bounds) {
      obs::Span s("analysis.bounds", "analysis");
      runBounds(in, engine_);
    }
  }
  lastAnalyzedText_ = std::move(text);
}

std::string locationOf(const poly::PolyStmt& ps) {
  std::string out;
  for (const auto& l : ps.loops) out += "loop:" + l->iter + "/";
  out += "stmt:" +
         (ps.stmt->label.empty() ? std::to_string(ps.stmt->id)
                                 : ps.stmt->label);
  return out;
}

std::int64_t witnessParamValue(const AnalysisOptions& options,
                               const std::string& param) {
  auto it = options.witnessParams.find(param);
  if (it != options.witnessParams.end())
    return std::max(it->second, options.paramMin);
  std::int64_t def = param.find("TSTEPS") != std::string::npos ? 3 : 7;
  return std::max(def, options.paramMin);
}

std::optional<std::vector<std::int64_t>> findIntegerWitness(
    const IntSet& set, std::size_t paramBase,
    const std::vector<std::string>& params, const AnalysisOptions& options) {
  IntSet s = set;
  for (std::size_t p = 0; p < params.size(); ++p) {
    std::vector<std::int64_t> row(s.numVars(), 0);
    row[paramBase + p] = 1;
    s.addEquality(std::move(row), -witnessParamValue(options, params[p]));
  }
  if (s.isEmpty()) return std::nullopt;
  std::optional<std::vector<std::int64_t>> out;
  try {
    s.enumerate([&](const std::vector<std::int64_t>& pt) {
      out = pt;
      return false;
    });
  } catch (const Error&) {
    return std::nullopt;  // some direction unbounded — no finite witness
  }
  return out;
}

std::string formatWitness(const std::vector<std::string>& names,
                          const std::vector<std::int64_t>& point) {
  std::string out;
  for (std::size_t i = 0; i < point.size() && i < names.size(); ++i) {
    if (!out.empty()) out += " ";
    out += names[i] + "=" + std::to_string(point[i]);
  }
  return out;
}

}  // namespace polyast::analysis
