#include "analysis/mutations.hpp"

#include <algorithm>
#include <ostream>

#include "analysis/analysis.hpp"
#include "support/error.hpp"

namespace polyast::analysis {

namespace {

using ir::AffExpr;
using ir::Loop;
using ir::Node;
using ir::NodePtr;

std::shared_ptr<Loop> findLoop(const NodePtr& n, const std::string& iter) {
  switch (n->kind) {
    case Node::Kind::Block:
      for (const auto& c : std::static_pointer_cast<ir::Block>(n)->children)
        if (auto l = findLoop(c, iter)) return l;
      return nullptr;
    case Node::Kind::Loop: {
      auto l = std::static_pointer_cast<Loop>(n);
      if (l->iter == iter) return l;
      return findLoop(l->body, iter);
    }
    case Node::Kind::Stmt:
      return nullptr;
  }
  return nullptr;
}

std::shared_ptr<Loop> requireLoop(ir::Program& p, const std::string& iter) {
  auto l = findLoop(p.root, iter);
  POLYAST_CHECK(l != nullptr, "mutation: no loop '" + iter + "'");
  return l;
}

}  // namespace

const std::vector<Mutation>& mutationCorpus() {
  static const std::vector<Mutation> corpus = {
      {"interchange-illegal", "seidel-2d", "legality", "violated-dependence",
       "swap the i/j loop headers of seidel-2d; the (0,1,-1) stencil "
       "dependence flips",
       [](ir::Program& p) {
         auto i = requireLoop(p, "i");
         auto j = requireLoop(p, "j");
         std::swap(i->iter, j->iter);
         std::swap(i->lower, j->lower);
         std::swap(i->upper, j->upper);
         std::swap(i->step, j->step);
       }},
      {"reversal-illegal", "gemm", "legality", "violated-dependence",
       "reverse the gemm k loop by substituting k -> NK-1-k in its body; "
       "the accumulation order flips",
       [](ir::Program& p) {
         auto k = requireLoop(p, "k");
         POLYAST_CHECK(k->upper.isSingle(), "mutation: multi-part upper");
         ir::substituteIterInTree(
             k->body, "k",
             k->upper.single() - AffExpr(1) - AffExpr::term("k"));
       }},
      {"overfuse-illegal", "jacobi-1d-imper", "legality",
       "violated-dependence",
       "fuse the two inner loops of jacobi-1d-imper into one; the "
       "loop-independent anti dependence S2 -> S1 flips at the fused level",
       [](ir::Program& p) {
         auto t = requireLoop(p, "t");
         POLYAST_CHECK(t->body->children.size() == 2,
                       "mutation: expected two loops under t");
         auto a = std::static_pointer_cast<Loop>(t->body->children[0]);
         auto b = std::static_pointer_cast<Loop>(t->body->children[1]);
         ir::renameIterInTree(b, b->iter, a->iter);
         for (const auto& c : b->body->children)
           a->body->children.push_back(c);
         t->body->children.pop_back();
       }},
      {"doall-race", "seidel-2d", "races", "doall-race",
       "mark the seidel-2d i loop Doall; it carries the stencil "
       "dependences",
       [](ir::Program& p) {
         requireLoop(p, "i")->parallel = ir::ParallelKind::Doall;
       }},
      {"false-reduction", "seidel-2d", "races", "reduction-race",
       "mark the seidel-2d t loop Reduction; its carried dependences are "
       "not accumulator updates",
       [](ir::Program& p) {
         requireLoop(p, "t")->parallel = ir::ParallelKind::Reduction;
       }},
      {"dropped-sync", "seidel-2d", "races", "pipeline-race",
       "mark the seidel-2d t loop Pipeline; the (1,-1,0) dependence is "
       "not covered by the point-to-point sync pattern",
       [](ir::Program& p) {
         requireLoop(p, "t")->parallel = ir::ParallelKind::Pipeline;
       }},
      {"subscript-overflow", "gemm", "bounds", "out-of-bounds",
       "widen the gemm update's lhs column subscript to C[i][j+1]; the "
       "last column runs past the extent",
       [](ir::Program& p) {
         auto stmts = p.statements();
         POLYAST_CHECK(stmts.size() == 2, "mutation: expected two stmts");
         stmts[1]->lhsSubs[1] += AffExpr(1);
       }},
      {"nonassoc-relaxation", "gemm", "reductions", "unproven-relaxation",
       "turn the gemm update into C[i][j] *= ... while keeping it flagged "
       "a reduction and marking the k loop Reduction; the operator left "
       "the associative whitelist, so the edge has no purity proof",
       [](ir::Program& p) {
         auto stmts = p.statements();
         POLYAST_CHECK(stmts.size() == 2, "mutation: expected two stmts");
         stmts[1]->op = ir::AssignOp::MulAssign;
         stmts[1]->isReductionUpdate = true;  // the flag is never trusted
         requireLoop(p, "k")->parallel = ir::ParallelKind::Reduction;
       }},
      {"escaped-relaxation", "gemm", "reductions", "escaped-relaxation",
       "mark the gemm k loop Doall; the proven-pure accumulation edge on "
       "C is interleaved by a construct that will not privatize it",
       [](ir::Program& p) {
         requireLoop(p, "k")->parallel = ir::ParallelKind::Doall;
       }},
      {"aliased-accumulation", "gemm", "reductions", "unproven-relaxation",
       "insert a plain store C[i][0] = 0.0 into the gemm k loop marked "
       "Reduction; the may-alias write between accumulations voids the "
       "purity proof (and makes C unprivatizable)",
       [](ir::Program& p) {
         auto k = requireLoop(p, "k");
         k->parallel = ir::ParallelKind::Reduction;
         auto stmts = p.statements();
         int maxId = 0;
         for (const auto& s : stmts) maxId = std::max(maxId, s->id);
         auto store = std::make_shared<ir::Stmt>();
         store->id = maxId + 1;
         store->label = "Sz";
         store->op = ir::AssignOp::Set;
         store->lhsArray = "C";
         store->lhsSubs = {AffExpr::term("i"), AffExpr(0)};
         store->rhs = ir::floatLit(0.0);
         k->body->children.insert(k->body->children.begin(), store);
       }},
  };
  return corpus;
}

std::vector<MutationOutcome> runMutationCorpus(
    const std::function<ir::Program(const std::string&)>& buildKernel,
    std::ostream* log) {
  std::vector<MutationOutcome> out;
  for (const auto& m : mutationCorpus()) {
    MutationOutcome oc;
    oc.mutation = &m;
    ir::Program prog = buildKernel(m.kernel);
    AnalysisSession session;
    session.analyze(prog, "<input>");
    oc.cleanBefore = session.engine().errors() == 0;
    m.apply(prog);
    session.analyze(prog, "mutant:" + m.name);
    for (const auto& d : session.engine().diagnostics()) {
      if (d.severity != Severity::Error) continue;
      if (d.analysis == m.expectAnalysis && d.code == m.expectCode) {
        oc.caught = true;
        oc.note = d.str();
        break;
      }
    }
    if (!oc.caught)
      oc.note = session.engine().diagnostics().empty()
                    ? "no diagnostics"
                    : session.engine().diagnostics().back().str();
    if (log)
      *log << "[mutation] " << m.name << ": "
           << (oc.cleanBefore && oc.caught ? "caught" : "MISSED") << " — "
           << oc.note << "\n";
    out.push_back(std::move(oc));
  }
  return out;
}

bool allMutationsCaught(const std::vector<MutationOutcome>& outcomes) {
  for (const auto& oc : outcomes)
    if (!oc.cleanBefore || !oc.caught) return false;
  return !outcomes.empty();
}

}  // namespace polyast::analysis
