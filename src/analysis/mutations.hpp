// Mutation corpus for the analysis self-check.
//
// Each mutation seeds one known-illegal transformation (a flipped
// permutation, a dropped sync, an over-fused loop, ...) into a pristine
// kernel and records which analysis must flag it with which code. The
// corpus is the negative half of the analyses' test contract — the
// positive half being that every untouched kernel analyzes clean.
// Consumed by `polyastc --analysis-selfcheck` and tests/analysis_test.cpp.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "ir/ast.hpp"

namespace polyast::analysis {

struct Mutation {
  std::string name;            ///< e.g. "interchange-illegal"
  std::string kernel;          ///< kernel the mutation applies to
  std::string expectAnalysis;  ///< analysis id that must flag the mutant
  std::string expectCode;      ///< diagnostic code that must appear
  std::string description;
  /// Applies the illegal transformation in place. The program has already
  /// been baseline-stamped by the session, so origin maps flow through.
  std::function<void(ir::Program&)> apply;
};

/// The built-in corpus (stable order).
const std::vector<Mutation>& mutationCorpus();

struct MutationOutcome {
  const Mutation* mutation = nullptr;
  /// The pristine kernel analyzed with zero error diagnostics.
  bool cleanBefore = false;
  /// The mutant produced >= 1 error diagnostic with the expected
  /// analysis id and code.
  bool caught = false;
  std::string note;  ///< what was actually reported
};

/// Runs the whole corpus: for each mutation, builds the kernel via
/// `buildKernel`, analyzes it clean, applies the mutation, re-analyzes,
/// and checks the expected error appeared. Optionally logs one line per
/// mutation to `log`.
std::vector<MutationOutcome> runMutationCorpus(
    const std::function<ir::Program(const std::string&)>& buildKernel,
    std::ostream* log = nullptr);

/// True when every outcome is cleanBefore && caught.
bool allMutationsCaught(const std::vector<MutationOutcome>& outcomes);

}  // namespace polyast::analysis
