// Static race detector for parallel marks.
//
// Every loop the AST stage marked parallel carries a proof obligation
// this analysis re-establishes from the *current* dependence graph (the
// marks may have been moved, copied, or invalidated by later passes, or
// planted by a buggy/malicious transform):
//
//   * Doall      — no loop-carried dependence at the loop's level among
//                  the instance pairs not already ordered by outer loops.
//   * Reduction  — every carried dependence is the marked reduction
//                  self-update (accumulator cell, associative +=/-=).
//   * Pipeline   — the runtime's point-to-point sync pattern covers a
//                  dependence iff its distance is componentwise
//                  non-negative on *every* synchronized level (the marked
//                  loop plus chained descendants up to the mark's claimed
//                  sync depth, two when unclaimed); an uncovered edge is a
//                  race. Edges with zero distance at the marked level are
//                  checked too — at three levels, transitive ordering of
//                  the chained levels can no longer be assumed.
//   * ReductionPipeline — each carried edge must be reduction-covered or
//                  pipeline-covered.
//
// The dependence math mirrors transform::detectParallelism (Sec. IV-A);
// the point of the duplication is independence: this is the checker, not
// the detector.
#include <optional>
#include <set>
#include <tuple>

#include "analysis/analysis.hpp"

namespace polyast::analysis {
namespace {

using ir::Loop;
using ir::ParallelKind;
using poly::DepKind;
using poly::Dependence;
using poly::PolyStmt;
using poly::Scop;

/// Index of `loop` in a dependence's common-loop prefix, or nullopt when
/// the loop does not enclose both endpoints.
std::optional<std::size_t> commonLevelOf(const Scop& scop,
                                         const Dependence& d,
                                         const Loop* loop) {
  const auto& src = scop.byId(d.srcId);
  const auto& dst = scop.byId(d.dstId);
  std::size_t cl = scop.commonLoops(src, dst);
  for (std::size_t k = 0; k < cl; ++k)
    if (src.loops[k].get() == loop) return k;
  return std::nullopt;
}

/// Distance expression e_k = dst_k - src_k over the dep's joint space.
LinExpr distExpr(const Dependence& d, std::size_t k) {
  std::size_t n = d.poly.numVars();
  LinExpr e = LinExpr::constantExpr(0, n);
  e.coeffs[d.srcDim + k] += 1;
  e.coeffs[k] -= 1;
  return e;
}

/// The dep polyhedron restricted to pairs not ordered by the loops above
/// level `k` (distance 0 at levels 0..k-1).
IntSet restrictedPoly(const Dependence& d, std::size_t k) {
  IntSet s = d.poly;
  for (std::size_t l = 0; l < k; ++l) {
    LinExpr e = distExpr(d, l);
    s.addEquality(e.coeffs, e.constant);
  }
  return s;
}

std::string stmtName(const PolyStmt& ps) {
  return ps.stmt->label.empty() ? ("#" + std::to_string(ps.stmt->id))
                                : ps.stmt->label;
}

std::string boundStr(const std::optional<std::int64_t>& b) {
  return b ? std::to_string(*b) : "unbounded";
}

void checkMark(const AnalysisInput& in,
               const std::shared_ptr<Loop>& loopPtr, const PolyStmt& rep,
               std::size_t level,
               const std::map<const Loop*, std::int64_t>& constructIds,
               DiagnosticEngine& engine) {
  const Scop& scop = *in.scop;
  const Loop* loop = loopPtr.get();
  ParallelKind kind = loop->parallel;

  std::string loc;
  for (std::size_t k = 0; k <= level; ++k)
    loc += (k ? "/" : "") + ("loop:" + rep.loops[k]->iter);

  auto soleLoopChild = [](const Loop* l) -> const Loop* {
    if (l->body->children.size() != 1 ||
        l->body->children.front()->kind != ir::Node::Kind::Loop)
      return nullptr;
    return std::static_pointer_cast<Loop>(l->body->children.front()).get();
  };
  const Loop* child = soleLoopChild(loop);

  bool needsChild = kind == ParallelKind::Pipeline ||
                    kind == ParallelKind::ReductionPipeline;
  if (needsChild && !child) {
    Diagnostic d;
    d.severity = Severity::Error;
    d.analysis = "races";
    d.code = "pipeline-structure";
    d.message = ir::parallelKindName(kind) + " mark on loop '" +
                loop->iter +
                "' has no single nested loop to synchronize against";
    d.location = loc;
    d.afterPass = in.afterPass;
    engine.report(std::move(d));
    return;
  }

  // The loops the point-to-point sync grid orders cell-by-cell: the marked
  // loop plus chained descendants up to the claimed sync depth (marks
  // without a depth claim get the legacy two-level pattern). Anything
  // deeper runs sequentially inside a cell. The executor may map the mark
  // onto a *shallower* grid than claimed (structural fallback), which is
  // always sound: a prefix of componentwise non-negative levels stays
  // ordered when the remaining levels execute sequentially in the cell.
  std::vector<const Loop*> syncChain;
  if (needsChild) {
    std::int64_t claimed =
        std::min<std::int64_t>(loop->pipelineDepth > 0 ? loop->pipelineDepth
                                                       : 2,
                               3);
    syncChain.push_back(loop);
    while (static_cast<std::int64_t>(syncChain.size()) < claimed) {
      const Loop* c = soleLoopChild(syncChain.back());
      if (!c) break;
      syncChain.push_back(c);
    }
  }

  // One diagnostic per distinct edge shape; the PoDG has one polyhedron
  // per dependence *level*, which would otherwise repeat the finding.
  std::set<std::tuple<std::string, int, int, std::string>> reported;

  for (const auto& d : in.podg->deps) {
    if (d.kind == DepKind::Input) continue;
    auto lk = commonLevelOf(scop, d, loop);
    if (!lk) continue;
    IntSet restricted = restrictedPoly(d, *lk);
    if (restricted.isEmpty()) continue;  // ordered by outer loops
    auto mn = restricted.minOf(distExpr(d, *lk));
    auto mx = restricted.maxOf(distExpr(d, *lk));
    bool zero = mn && *mn == 0 && mx && *mx == 0;
    // A zero-distance edge is not carried by this loop, so the
    // point-parallel kinds may ignore it — but it still constrains a
    // pipeline grid: distance (0, 1, -1) is lexicographically positive yet
    // reordered by a three-level grid, so the old "chained levels are
    // ordered transitively" assumption only held at two levels.
    if (zero && !needsChild) continue;

    // Level index (within the dep's common prefix) where coverage fails,
    // for the racing-pair witness search.
    std::size_t violLevel = *lk;
    bool covered = false;
    std::string code;
    std::string why;
    switch (kind) {
      case ParallelKind::Doall:
        code = "doall-race";
        why = "carries a " + poly::depKindName(d.kind) + " dependence on '" +
              d.array + "'";
        break;
      case ParallelKind::Reduction:
      case ParallelKind::ReductionPipeline:
        if (reductionEdgeVouched(d, loopPtr)) {
          // The reduction analysis vouches for the edge: it is a
          // reduction-classified accumulator update AND the executor will
          // privatize its target inside this construct — a reduction flag
          // alone is no longer uniformly benign (the accumulator could be
          // read or set-written inside the construct, or the purity proof
          // could have failed; reductions.cpp reports those precisely).
          covered = true;
          break;
        }
        if (kind == ParallelKind::Reduction) {
          code = "reduction-race";
          why = d.fromReduction()
                    ? "carries a reduction-classified dependence on '" +
                          d.array +
                          "' whose accumulator the construct does not "
                          "privatize"
                    : "carries a " + poly::depKindName(d.kind) +
                          " dependence on '" + d.array +
                          "' that is not the reduction accumulator update";
          break;
        }
        [[fallthrough]];
      case ParallelKind::Pipeline: {
        // Covered iff the distance is componentwise non-negative on every
        // synchronized level (then the grid's awaits order the endpoints;
        // all-zero means same cell, ordered by in-cell sequential order).
        covered = true;
        for (const Loop* lvl : syncChain) {
          auto lkN = commonLevelOf(scop, d, lvl);
          auto mnN = lkN ? restricted.minOf(distExpr(d, *lkN))
                         : std::nullopt;
          if (!lkN || !mnN || *mnN < 0) {
            covered = false;
            if (lkN) violLevel = *lkN;
            break;
          }
        }
        if (!covered) {
          code = "pipeline-race";
          why = "carries a " + poly::depKindName(d.kind) + " dependence on '" +
                d.array +
                "' not covered by the point-to-point sync pattern";
        }
        break;
      }
      case ParallelKind::None:
        covered = true;
        break;
    }
    if (covered) continue;

    if (!reported.emplace(code, d.srcId, d.dstId, d.array).second) continue;

    const PolyStmt& src = scop.byId(d.srcId);
    const PolyStmt& dst = scop.byId(d.dstId);
    Diagnostic diag;
    diag.analysis = "races";
    diag.code = code;
    diag.message = ir::parallelKindName(kind) + " mark on loop '" +
                   loop->iter + "' " + why + " (" + stmtName(src) + " -> " +
                   stmtName(dst) + ")";
    diag.location = loc;
    diag.afterPass = in.afterPass;
    diag.detail["parallel"] = ir::parallelKindName(kind);
    diag.detail["kind"] = poly::depKindName(d.kind);
    diag.detail["array"] = d.array;
    diag.detail["src"] = stmtName(src);
    diag.detail["dst"] = stmtName(dst);
    diag.detail["level"] = std::to_string(*lk);
    diag.detail["distance"] = "[" + boundStr(mn) + "," + boundStr(mx) + "]";
    // Covering-construct provenance: the runtime construct this mark maps
    // onto (-1 when the mark is nested under another mark and therefore
    // runs sequentially in-cell).
    auto cid = constructIds.find(loop);
    diag.detail["construct_id"] =
        std::to_string(cid != constructIds.end() ? cid->second : -1);
    if (d.fromReduction()) {
      // Reduction-edge provenance: which classification the edge carries
      // and why, so a flagged reduction edge is attributable without
      // re-running the classifier.
      diag.detail["reduction_class"] = poly::reductionClassName(d.reduction);
      if (!d.reductionWhy.empty())
        diag.detail["reduction_why"] = d.reductionWhy;
    }
    if (!syncChain.empty()) {
      diag.detail["sync_depth"] = std::to_string(syncChain.size());
      diag.detail["violating_level"] = std::to_string(violLevel);
    }

    // Error needs a concrete racing iteration pair: an integer point with
    // nonzero distance (at the level where coverage failed) under the
    // witness parameters, and exact strides.
    bool inexact = !src.exactStrides || !dst.exactStrides;
    std::size_t paramBase = restricted.numVars() - scop.params.size();
    std::optional<std::vector<std::int64_t>> witness;
    for (int sign : {+1, -1}) {
      IntSet carried = restricted;
      LinExpr e = distExpr(d, violLevel);
      std::vector<std::int64_t> row(e.coeffs);
      for (auto& v : row) v *= sign;
      carried.addInequality(std::move(row), sign * e.constant - 1);
      witness = findIntegerWitness(carried, paramBase, scop.params,
                                   *in.options);
      if (witness) {
        diag.detail["witness"] =
            formatWitness(carried.varNames(), *witness);
        break;
      }
    }
    if (inexact) diag.detail["stride_overapprox"] = "true";
    diag.severity =
        (witness && !inexact) ? Severity::Error : Severity::Warning;
    engine.report(std::move(diag));
  }
}

}  // namespace

void runRaces(const AnalysisInput& in, DiagnosticEngine& engine) {
  if (!in.podg) return;
  const Scop& scop = *in.scop;

  std::map<const Loop*, std::int64_t> constructIds;
  if (in.program)
    for (const auto& c : ir::collectParallelConstructs(*in.program))
      constructIds[c.loop.get()] = c.id;

  std::int64_t marks = 0;
  std::set<const Loop*> seen;
  for (const auto& ps : scop.stmts) {
    for (std::size_t k = 0; k < ps.loops.size(); ++k) {
      const auto& l = ps.loops[k];
      if (l->parallel == ParallelKind::None) continue;
      if (!seen.insert(l.get()).second) continue;
      ++marks;
      checkMark(in, l, ps, k, constructIds, engine);
    }
  }
  engine.metrics().counter("analysis.races.marks_checked").add(marks);
}

}  // namespace polyast::analysis
