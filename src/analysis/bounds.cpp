// Bounds & domain lint.
//
// Affine access checking: for every access and every dimension, the
// subscript must satisfy 0 <= sub < extent over the statement's whole
// iteration domain under the parameter assumptions. A non-empty
// intersection with (sub >= extent) or (sub <= -1) is an out-of-bounds
// finding (error when an integer witness exists at the test parameters
// and the stride modeling is exact; warning otherwise). Every finding
// carries the exact parameter condition under which it fires (the
// violation set projected onto the parameters) in detail["condition"].
// Rank mismatches and unknown arrays are always errors.
//
// IR well-formedness lints:
//   * empty-domain   — a statement whose domain has no points under the
//                      parameter assumptions never executes (warning),
//   * dead-iterator  — a loop whose iterator is used by nothing beneath
//                      it and whose body cannot observe the repetition
//                      (no array both read and written under the loop)
//                      only multiplies work (remark).
//
// Non-affine escapes cannot be represented in this IR; they surface as
// the session's "extract-error" diagnostic when extraction fails.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "analysis/analysis.hpp"

namespace polyast::analysis {
namespace {

using ir::AffExpr;
using ir::Loop;
using poly::PolyStmt;
using poly::Scop;

/// Maps an AffExpr over a statement's [iters, params] into a row over the
/// statement's domain space [iters, params, exists].
void toStmtRow(const AffExpr& e, const PolyStmt& ps, const Scop& scop,
               std::vector<std::int64_t>& row, std::int64_t& c) {
  row.assign(ps.domain.numVars(), 0);
  for (const auto& [name, coeff] : e.coeffs()) {
    auto it = std::find(ps.iters.begin(), ps.iters.end(), name);
    if (it != ps.iters.end()) {
      row[static_cast<std::size_t>(it - ps.iters.begin())] = coeff;
      continue;
    }
    auto pt = std::find(scop.params.begin(), scop.params.end(), name);
    if (pt != scop.params.end())
      row[ps.iters.size() +
          static_cast<std::size_t>(pt - scop.params.begin())] = coeff;
    // Anything else would have failed extraction already.
  }
  c = e.constant();
}

/// Renders one projected constraint over the parameters as a comparison
/// with every negative term moved to the right-hand side, e.g.
/// {NI: 1, NJ: -1, const: -1} >= 0  ->  "NI >= NJ + 1".
std::string formatParamConstraint(const Constraint& c,
                                  const std::vector<std::string>& names) {
  std::string lhs, rhs;
  auto addTerm = [](std::string& side, std::int64_t coeff,
                    const std::string& name) {
    if (!side.empty()) side += " + ";
    if (coeff != 1) side += std::to_string(coeff) + "*";
    side += name;
  };
  for (std::size_t i = 0; i < c.coeffs.size() && i < names.size(); ++i) {
    if (c.coeffs[i] > 0) addTerm(lhs, c.coeffs[i], names[i]);
    if (c.coeffs[i] < 0) addTerm(rhs, -c.coeffs[i], names[i]);
  }
  if (c.constant > 0 || lhs.empty()) {
    if (!lhs.empty()) lhs += " + ";
    lhs += std::to_string(std::max<std::int64_t>(c.constant, 0));
  }
  if (c.constant < 0 || rhs.empty()) {
    if (!rhs.empty()) rhs += " + ";
    rhs += std::to_string(c.constant < 0 ? -c.constant : 0);
  }
  return lhs + (c.isEquality ? " == " : " >= ") + rhs;
}

/// Exact condition on the parameters under which the violation set has
/// (rational) points: the set projected onto the parameter columns.
/// "true" when the violation is possible for every parameter assignment.
std::string formatParamCondition(const IntSet& s, std::size_t paramBase,
                                 std::size_t numParams) {
  std::vector<std::size_t> keep;
  for (std::size_t p = 0; p < numParams; ++p) keep.push_back(paramBase + p);
  IntSet proj = s.project(keep);
  std::string out;
  for (const auto& c : proj.constraints()) {
    bool trivial = c.constant >= 0 && !c.isEquality;
    for (auto coeff : c.coeffs) trivial = trivial && coeff == 0;
    if (trivial) continue;  // holds for every parameter value
    if (!out.empty()) out += " and ";
    out += formatParamConstraint(c, proj.varNames());
  }
  return out.empty() ? "true" : out;
}

void checkSide(const AnalysisInput& in, const PolyStmt& ps,
               const poly::Access& acc, std::size_t accIdx, std::size_t dim,
               const AffExpr& violation, const std::string& what,
               const std::string& extentStr, DiagnosticEngine& engine) {
  std::vector<std::int64_t> row;
  std::int64_t c = 0;
  toStmtRow(violation, ps, *in.scop, row, c);
  IntSet s = ps.domain;
  s.addInequality(std::move(row), c);
  if (s.isEmpty()) return;  // in bounds (rational relaxation)

  Diagnostic d;
  d.analysis = "bounds";
  d.code = "out-of-bounds";
  d.location = locationOf(ps);
  d.afterPass = in.afterPass;
  std::string sub = acc.subs[dim].str();
  d.message = std::string(acc.isWrite ? "write" : "read") + " access " +
              acc.array + "[...]" + " may " + what + " in dimension " +
              std::to_string(dim) + " (subscript " + sub + ", extent " +
              extentStr + ")";
  d.detail["array"] = acc.array;
  d.detail["access"] = std::to_string(accIdx);
  d.detail["dim"] = std::to_string(dim);
  d.detail["subscript"] = sub;
  d.detail["extent"] = extentStr;
  d.detail["write"] = acc.isWrite ? "true" : "false";

  bool inexact = !ps.exactStrides;
  std::size_t paramBase = ps.iters.size();
  // The exact parameter condition under which the violation has points:
  // project the (domain ∧ violation) set onto the parameter columns. For
  // symm-style conditional overflows this names the regime, e.g.
  // "NI >= NJ + 1".
  std::string condition =
      formatParamCondition(s, paramBase, in.scop->params.size());
  d.detail["condition"] = condition;
  if (condition != "true") d.message += " when " + condition;
  auto witness =
      findIntegerWitness(s, paramBase, in.scop->params, *in.options);
  if (witness) d.detail["witness"] = formatWitness(s.varNames(), *witness);
  if (inexact) d.detail["stride_overapprox"] = "true";
  d.severity = (witness && !inexact) ? Severity::Error : Severity::Warning;
  engine.report(std::move(d));
}

bool affUsesName(const AffExpr& e, const std::string& name) {
  return e.coeff(name) != 0;
}

bool exprUsesIter(const ir::ExprPtr& e, const std::string& name) {
  if (!e) return false;
  if (e->kind == ir::Expr::Kind::IterRef && e->name == name) return true;
  for (const auto& s : e->subs)
    if (affUsesName(s, name)) return true;
  return exprUsesIter(e->lhs, name) || exprUsesIter(e->rhs, name) ||
         exprUsesIter(e->cond, name);
}

/// True when anything beneath loop level `k` of `ps` mentions the
/// iterator: subscripts, guards, the value expression, or a deeper loop
/// bound.
bool stmtUsesIter(const PolyStmt& ps, std::size_t k,
                  const std::string& name) {
  for (const auto& acc : ps.accesses)
    for (const auto& s : acc.subs)
      if (affUsesName(s, name)) return true;
  for (const auto& g : ps.stmt->guards)
    if (affUsesName(g, name)) return true;
  if (exprUsesIter(ps.stmt->rhs, name)) return true;
  for (std::size_t l = k + 1; l < ps.loops.size(); ++l) {
    for (const auto& part : ps.loops[l]->lower.parts)
      if (affUsesName(part, name)) return true;
    for (const auto& part : ps.loops[l]->upper.parts)
      if (affUsesName(part, name)) return true;
  }
  return false;
}

void lintDeadIterators(const AnalysisInput& in, DiagnosticEngine& engine) {
  struct LoopUse {
    const PolyStmt* rep = nullptr;
    std::size_t level = 0;
    bool used = false;
    std::set<std::string> reads, writes;
  };
  std::map<const Loop*, LoopUse> loops;
  for (const auto& ps : in.scop->stmts) {
    for (std::size_t k = 0; k < ps.loops.size(); ++k) {
      LoopUse& u = loops[ps.loops[k].get()];
      if (!u.rep) {
        u.rep = &ps;
        u.level = k;
      }
      if (stmtUsesIter(ps, k, ps.loops[k]->iter)) u.used = true;
      for (const auto& acc : ps.accesses)
        (acc.isWrite ? u.writes : u.reads).insert(acc.array);
    }
  }
  for (const auto& [loop, u] : loops) {
    if (u.used) continue;
    // Repetition is observable when some array is both read and written
    // beneath the loop (in-place time iteration); only a loop where it is
    // not can be called dead.
    bool observable = false;
    for (const auto& w : u.writes)
      if (u.reads.count(w)) observable = true;
    if (observable) continue;
    Diagnostic d;
    d.severity = Severity::Remark;
    d.analysis = "bounds";
    d.code = "dead-iterator";
    d.message = "loop '" + loop->iter +
                "' iterator is never used beneath it and its body cannot "
                "observe the repetition — the loop only multiplies work";
    std::string loc;
    for (std::size_t k = 0; k <= u.level; ++k)
      loc += (k ? "/" : "") + ("loop:" + u.rep->loops[k]->iter);
    d.location = loc;
    d.afterPass = in.afterPass;
    engine.report(std::move(d));
  }
}

}  // namespace

void runBounds(const AnalysisInput& in, DiagnosticEngine& engine) {
  const Scop& scop = *in.scop;
  const ir::Program& prog = *in.program;
  std::int64_t checked = 0;

  for (const auto& ps : scop.stmts) {
    if (ps.domain.isEmpty()) {
      Diagnostic d;
      d.severity = Severity::Warning;
      d.analysis = "bounds";
      d.code = "empty-domain";
      d.message = "statement domain is empty under the parameter "
                  "assumptions — it never executes";
      d.location = locationOf(ps);
      d.afterPass = in.afterPass;
      engine.report(std::move(d));
      continue;
    }
    for (std::size_t ai = 0; ai < ps.accesses.size(); ++ai) {
      const auto& acc = ps.accesses[ai];
      const ir::ArrayDecl* decl = nullptr;
      for (const auto& a : prog.arrays)
        if (a.name == acc.array) decl = &a;
      if (!decl) {
        Diagnostic d;
        d.severity = Severity::Error;
        d.analysis = "bounds";
        d.code = "unknown-array";
        d.message = "access to undeclared array '" + acc.array + "'";
        d.location = locationOf(ps);
        d.afterPass = in.afterPass;
        engine.report(std::move(d));
        continue;
      }
      if (acc.subs.size() != decl->dims.size()) {
        Diagnostic d;
        d.severity = Severity::Error;
        d.analysis = "bounds";
        d.code = "rank-mismatch";
        d.message = "access to '" + acc.array + "' has " +
                    std::to_string(acc.subs.size()) +
                    " subscript(s) but the array is declared with " +
                    std::to_string(decl->dims.size()) + " dimension(s)";
        d.location = locationOf(ps);
        d.afterPass = in.afterPass;
        engine.report(std::move(d));
        continue;
      }
      for (std::size_t dim = 0; dim < acc.subs.size(); ++dim) {
        ++checked;
        // Overflow: sub - extent >= 0 somewhere in the domain?
        checkSide(in, ps, acc, ai, dim, acc.subs[dim] - decl->dims[dim],
                  "run past the extent", decl->dims[dim].str(), engine);
        // Underflow: -sub - 1 >= 0 somewhere in the domain?
        checkSide(in, ps, acc, ai, dim, AffExpr(-1) - acc.subs[dim],
                  "underrun the array", decl->dims[dim].str(), engine);
      }
    }
  }
  engine.metrics().counter("analysis.bounds.accesses_checked").add(checked);

  lintDeadIterators(in, engine);
}

}  // namespace polyast::analysis
