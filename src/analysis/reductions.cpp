// Reduction soundness re-verification.
//
// Under --reductions=relaxed the affine scheduler drops proven-pure
// self-accumulation dependences from every legality decision, so the
// resulting schedule is free to reorder, interchange, or fuse across the
// accumulation order. That is only correct when each dropped edge is
// re-discharged at execution time, and this pass re-proves exactly that —
// from the *post-transform* dependence graph, with no trust in what the
// scheduler claims it did:
//
//   * An edge whose endpoints never interleave across threads (no
//     enclosing parallel construct, or distance exactly zero at every
//     concurrently executed construct level) runs sequentially inside one
//     cell: reordering it is a pure reassociation of a single
//     accumulation chain, discharged with a "relaxed-edge" remark.
//   * An edge a construct does interleave must land in a privatizing
//     construct: kind Reduction or ReductionPipeline AND its accumulator
//     in ir::privatizableArrays(construct) — the one helper the
//     interpreter walker and the native kernel emitter consume to pick
//     their privatize+merge buffers, so the obligation recorded here is
//     the obligation the executor actually discharges. Discharged edges
//     get a "relaxed-edge" remark naming the edge, the covering construct,
//     and the privatization obligation.
//   * A purity proof that fails on the current program (operator left the
//     whitelist, an extra accumulator read appeared, a may-alias write
//     moved inside the carrying loop) under a construct that interleaves
//     the edge is an "unproven-relaxation" finding.
//   * A proven-pure edge interleaved by a construct that will not
//     privatize it (a Doall, an uncovered Pipeline, or a reduction
//     construct whose accumulator is read or set-written inside) is an
//     "escaped-relaxation" finding.
//
// Severity is witness-gated like the other analyses: errors require a
// concrete interleaved iteration pair at the session's test parameters
// and exact stride modeling; otherwise the finding is a warning.
//
// The dependence-geometry helpers mirror races.cpp; the duplication is
// deliberate — this is an independent checker, not a shared library with
// the detector.
#include <algorithm>
#include <optional>
#include <set>
#include <tuple>

#include "analysis/analysis.hpp"

namespace polyast::analysis {
namespace {

using ir::Loop;
using ir::ParallelKind;
using poly::DepKind;
using poly::Dependence;
using poly::PolyStmt;
using poly::ReductionClass;
using poly::Scop;

/// Index of `loop` in a dependence's common-loop prefix, or nullopt when
/// the loop does not enclose both endpoints.
std::optional<std::size_t> commonLevelOf(const Scop& scop,
                                         const Dependence& d,
                                         const Loop* loop) {
  const auto& src = scop.byId(d.srcId);
  const auto& dst = scop.byId(d.dstId);
  std::size_t cl = scop.commonLoops(src, dst);
  for (std::size_t k = 0; k < cl; ++k)
    if (src.loops[k].get() == loop) return k;
  return std::nullopt;
}

/// Distance expression e_k = dst_k - src_k over the dep's joint space.
LinExpr distExpr(const Dependence& d, std::size_t k) {
  std::size_t n = d.poly.numVars();
  LinExpr e = LinExpr::constantExpr(0, n);
  e.coeffs[d.srcDim + k] += 1;
  e.coeffs[k] -= 1;
  return e;
}

/// The dep polyhedron restricted to pairs not ordered by the loops above
/// level `k` (distance 0 at levels 0..k-1).
IntSet restrictedPoly(const Dependence& d, std::size_t k) {
  IntSet s = d.poly;
  for (std::size_t l = 0; l < k; ++l) {
    LinExpr e = distExpr(d, l);
    s.addEquality(e.coeffs, e.constant);
  }
  return s;
}

std::string stmtName(const PolyStmt& ps) {
  return ps.stmt->label.empty() ? ("#" + std::to_string(ps.stmt->id))
                                : ps.stmt->label;
}

std::string boundStr(const std::optional<std::int64_t>& b) {
  return b ? std::to_string(*b) : "unbounded";
}

/// The concurrently executed levels of a construct: the marked loop, plus
/// the chained descendants a pipeline grid synchronizes cell-by-cell.
std::vector<const Loop*> concurrentLevels(const std::shared_ptr<Loop>& mark) {
  std::vector<const Loop*> out{mark.get()};
  if (mark->parallel != ParallelKind::Pipeline &&
      mark->parallel != ParallelKind::ReductionPipeline)
    return out;
  std::int64_t claimed = std::min<std::int64_t>(
      mark->pipelineDepth > 0 ? mark->pipelineDepth : 2, 3);
  const Loop* cur = mark.get();
  while (static_cast<std::int64_t>(out.size()) < claimed) {
    const auto* sole = ir::soleLoopChild(cur->body).get();
    if (!sole) break;
    out.push_back(sole);
    cur = sole;
  }
  return out;
}

}  // namespace

bool reductionEdgeVouched(const Dependence& d,
                          const std::shared_ptr<Loop>& mark) {
  if (!d.fromReduction()) return false;
  if (mark->parallel != ParallelKind::Reduction &&
      mark->parallel != ParallelKind::ReductionPipeline)
    return false;
  const std::vector<std::string> priv = ir::privatizableArrays(mark);
  return std::find(priv.begin(), priv.end(), d.array) != priv.end();
}

void runReductions(const AnalysisInput& in, DiagnosticEngine& engine) {
  if (!in.podg || !in.program) return;
  const Scop& scop = *in.scop;

  // Construct ids match the executor's attribution and dispatch order.
  std::map<const Loop*, std::int64_t> constructIds;
  std::map<const Loop*, std::shared_ptr<Loop>> constructLoops;
  for (const auto& c : ir::collectParallelConstructs(*in.program)) {
    constructIds[c.loop.get()] = c.id;
    constructLoops[c.loop.get()] = c.loop;
  }

  std::int64_t checked = 0;
  std::int64_t discharged = 0;
  // One diagnostic per distinct (code, edge, construct) — the PoDG holds
  // one polyhedron per dependence level, which would repeat the finding.
  std::set<std::tuple<std::string, int, int, std::string, std::int64_t>>
      reported;

  for (const auto& d : in.podg->deps) {
    if (d.kind == DepKind::Input || !d.fromReduction()) continue;
    ++checked;
    const PolyStmt& src = scop.byId(d.srcId);
    const PolyStmt& dst = scop.byId(d.dstId);

    // The runtime construct covering the edge is the outermost marked
    // common ancestor (inner marks execute sequentially inside a cell).
    std::shared_ptr<Loop> mark;
    std::size_t markLevel = 0;
    std::size_t cl = scop.commonLoops(src, dst);
    for (std::size_t k = 0; k < cl; ++k) {
      if (src.loops[k]->parallel == ParallelKind::None) continue;
      mark = src.loops[k];
      markLevel = k;
      break;
    }
    if (!mark) {
      ++discharged;  // sequential execution: pure reassociation
      continue;
    }
    auto idIt = constructIds.find(mark.get());
    std::int64_t constructId = idIt != constructIds.end() ? idIt->second : -1;

    // Pairs not already ordered by the sequential loops above the mark.
    IntSet restricted = restrictedPoly(d, markLevel);
    if (restricted.isEmpty()) {
      ++discharged;
      continue;
    }

    // Interleaved iff some concurrently executed level separates the
    // endpoints. For pipeline kinds a componentwise non-negative distance
    // over every synchronized level is ordered by the grid's awaits, which
    // discharges the edge without privatization.
    bool sameCell = true;
    bool orderedBySync = true;
    std::size_t violLevel = markLevel;
    for (const Loop* lvl : concurrentLevels(mark)) {
      auto lk = commonLevelOf(scop, d, lvl);
      auto mn = lk ? restricted.minOf(distExpr(d, *lk)) : std::nullopt;
      auto mx = lk ? restricted.maxOf(distExpr(d, *lk)) : std::nullopt;
      bool zero = mn && *mn == 0 && mx && *mx == 0;
      if (!zero) {
        if (sameCell && lk) violLevel = *lk;
        sameCell = false;
      }
      if (!lk || !mn || *mn < 0) orderedBySync = false;
    }
    if (sameCell) {
      ++discharged;  // one cell owns the whole accumulation chain
      continue;
    }

    const ParallelKind kind = mark->parallel;
    const bool privatizing = kind == ParallelKind::Reduction ||
                             kind == ParallelKind::ReductionPipeline;
    const bool pipelined = kind == ParallelKind::Pipeline ||
                           kind == ParallelKind::ReductionPipeline;
    const std::vector<std::string> priv = ir::privatizableArrays(mark);
    const bool privatized =
        privatizing &&
        std::find(priv.begin(), priv.end(), d.array) != priv.end();

    std::string code;
    std::string why;
    if (privatized && d.reduction == ReductionClass::Relaxable) {
      code = "relaxed-edge";  // discharged: remark below
    } else if (pipelined && orderedBySync &&
               d.reduction == ReductionClass::Relaxable) {
      code = "relaxed-edge";  // ordered by the sync grid's awaits
    } else if (d.reduction != ReductionClass::Relaxable) {
      code = "unproven-relaxation";
      why = d.reductionWhy;
    } else {
      code = "escaped-relaxation";
      why = privatizing
                ? "accumulator '" + d.array +
                      "' is not privatizable inside the construct (read or "
                      "set-written by another statement)"
                : ir::parallelKindName(kind) +
                      " construct interleaves the accumulation without "
                      "privatizing '" + d.array + "'";
    }

    if (!reported
             .emplace(code, d.srcId, d.dstId, d.array, constructId)
             .second)
      continue;

    std::string loc;
    for (std::size_t k = 0; k <= markLevel; ++k)
      loc += (k ? "/" : "") + ("loop:" + src.loops[k]->iter);

    Diagnostic diag;
    diag.analysis = "reductions";
    diag.code = code;
    diag.location = loc;
    diag.afterPass = in.afterPass;
    diag.detail["array"] = d.array;
    diag.detail["src"] = stmtName(src);
    diag.detail["dst"] = stmtName(dst);
    diag.detail["level"] = std::to_string(d.level);
    diag.detail["class"] = poly::reductionClassName(d.reduction);
    if (!d.reductionOp.empty()) diag.detail["op"] = d.reductionOp;
    diag.detail["construct"] = mark->iter;
    diag.detail["construct_id"] = std::to_string(constructId);
    diag.detail["construct_kind"] = ir::parallelKindName(kind);
    if (privatized) diag.detail["privatize"] = d.array;

    if (code == "relaxed-edge") {
      ++discharged;
      diag.severity = Severity::Remark;
      diag.message =
          "relaxed accumulation edge " + stmtName(src) + " -> " +
          stmtName(dst) + " on '" + d.array + "' discharged by " +
          (privatized
               ? ir::parallelKindName(kind) + " construct '" + mark->iter +
                     "' (privatize+merge of '" + d.array + "')"
               : "the pipeline sync grid of construct '" + mark->iter + "'");
      diag.detail["proof"] = d.reductionWhy;
      engine.report(std::move(diag));
      continue;
    }

    diag.message =
        (code == "unproven-relaxation"
             ? "reduction edge " + stmtName(src) + " -> " + stmtName(dst) +
                   " on '" + d.array + "' interleaved by " +
                   ir::parallelKindName(kind) + " construct '" + mark->iter +
                   "' has no purity proof: " + why
             : "relaxed accumulation edge " + stmtName(src) + " -> " +
                   stmtName(dst) + " on '" + d.array +
                   "' escapes privatization: " + why);

    // Error needs a concrete interleaved iteration pair: an integer point
    // with nonzero distance at the first concurrent level that separates
    // the endpoints, under the witness parameters, with exact strides.
    auto mn = restricted.minOf(distExpr(d, violLevel));
    auto mx = restricted.maxOf(distExpr(d, violLevel));
    diag.detail["distance"] = "[" + boundStr(mn) + "," + boundStr(mx) + "]";
    bool inexact = !src.exactStrides || !dst.exactStrides;
    std::size_t paramBase = restricted.numVars() - scop.params.size();
    std::optional<std::vector<std::int64_t>> witness;
    for (int sign : {+1, -1}) {
      IntSet carried = restricted;
      LinExpr e = distExpr(d, violLevel);
      std::vector<std::int64_t> row(e.coeffs);
      for (auto& v : row) v *= sign;
      carried.addInequality(std::move(row), sign * e.constant - 1);
      witness =
          findIntegerWitness(carried, paramBase, scop.params, *in.options);
      if (witness) {
        diag.detail["witness"] = formatWitness(carried.varNames(), *witness);
        break;
      }
    }
    if (inexact) diag.detail["stride_overapprox"] = "true";
    diag.severity =
        (witness && !inexact) ? Severity::Error : Severity::Warning;
    engine.report(std::move(diag));
  }
  engine.metrics().counter("analysis.reductions.edges_checked").add(checked);
  engine.metrics()
      .counter("analysis.reductions.edges_discharged")
      .add(discharged);
}

}  // namespace polyast::analysis
