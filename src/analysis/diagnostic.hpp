// Structured diagnostics for the static analyses (src/analysis).
//
// Every analysis reports its findings as Diagnostic records through a
// shared DiagnosticEngine: a severity, the stable analysis id ("legality",
// "races", "bounds"), a machine-readable code ("violated-dependence",
// "doall-race", ...), a human-readable message, an IR location path, the
// pipeline point the finding was made at, and free-form structured detail
// (witness points, dependence endpoints, distances). The engine mirrors
// the per-analysis totals into `analysis.<id>.errors|warnings|remarks`
// metrics counters and serializes to the "polyast-diagnostics-v1" JSON
// document consumed by tools/obs_validate and CI.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace polyast::analysis {

/// Finding severity. `Error` means the program (or its annotation) is
/// provably wrong at the analysis' test parameters; `Warning` means the
/// rational relaxation or a stride over-approximation says "possibly
/// wrong" but no integer witness exists; `Remark` is informational.
enum class Severity { Remark, Warning, Error };

std::string severityName(Severity s);

struct Diagnostic {
  Severity severity = Severity::Warning;
  std::string analysis;   ///< stable analysis id, e.g. "legality"
  std::string code;       ///< stable finding code, e.g. "violated-dependence"
  std::string message;    ///< human-readable one-liner
  std::string location;   ///< IR path, e.g. "loop:t/loop:i/stmt:S1"
  std::string afterPass;  ///< pipeline point; "<input>" before any pass
  /// Structured extras (dependence endpoints, witness point, distances).
  std::map<std::string, std::string> detail;

  /// "error[legality/violated-dependence] at loop:i/stmt:S1: ..." line.
  std::string str() const;
};

/// Shared sink for every analysis of a session. Collects diagnostics in
/// report order and keeps the `analysis.*` metrics counters current.
class DiagnosticEngine {
 public:
  explicit DiagnosticEngine(
      obs::Registry* metrics = &obs::Registry::global());

  void report(Diagnostic d);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  std::size_t count(Severity s) const;
  std::size_t errors() const { return count(Severity::Error); }
  std::size_t warnings() const { return count(Severity::Warning); }
  std::size_t remarks() const { return count(Severity::Remark); }

  obs::Registry& metrics() const { return *metrics_; }

  /// One line per diagnostic plus a totals line (CLI output).
  std::string summary() const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t counts_[3] = {0, 0, 0};
  obs::Registry* metrics_;
};

/// Writes the "polyast-diagnostics-v1" JSON document:
///   { "schema": "polyast-diagnostics-v1", "program": ..., "pipeline": ...,
///     "summary": {"errors": n, "warnings": n, "remarks": n},
///     "diagnostics": [ { "severity", "analysis", "code", "message",
///                        "location", "after_pass", "detail": {...} } ] }
void writeDiagnosticsJson(std::ostream& out, const DiagnosticEngine& engine,
                          const std::string& program,
                          const std::string& pipeline);

/// writeDiagnosticsJson to a file; returns false when the file cannot be
/// opened.
bool writeDiagnosticsFile(const std::string& path,
                          const DiagnosticEngine& engine,
                          const std::string& program,
                          const std::string& pipeline);

}  // namespace polyast::analysis
