// Violated-dependence analysis.
//
// For every dependence edge of the *baseline* program (the pipeline
// input) and every pair of current-program statement copies carrying the
// endpoints' ids, this analysis asks: does the current program still
// execute the dependence source before its sink?
//
// The question is answered exactly, with no assumption about *which*
// transformations ran in between, by using the provenance maps
// (ir::Stmt::origin) the session stamped before the pipeline started:
//
//   1. Build the joint space of the two current statement copies
//      [src iters, dst iters, src exists, dst exists, params] with both
//      current domains imposed.
//   2. Re-impose the baseline dependence polyhedron's constraints, with
//      each baseline iterator column rewritten through the corresponding
//      origin expression — an affine function of current iterators. The
//      result is the set of current instance pairs that realize a
//      baseline dependence.
//   3. Walk the current program's syntactic schedule rows (the 2d+1
//      timestamp: block position, iterator, block position, ...). At
//      each block row the positions are compile-time constants; at each
//      iterator row k, if (dst_k - src_k <= -1) intersects the still
//      unordered pairs, the sink runs before the source — a violated
//      dependence at that depth. Otherwise restrict to dst_k == src_k
//      and continue (pairs with dst_k > src_k are correctly ordered and
//      drop out).
//
// Severity: an error needs a concrete integer witness at the session's
// test parameters AND exact stride modeling on both endpoints; otherwise
// the finding is a (possibly spurious) warning.
#include <algorithm>
#include <map>
#include <vector>

#include "analysis/analysis.hpp"
#include "support/error.hpp"

namespace polyast::analysis {
namespace {

using ir::AffExpr;
using poly::Dependence;
using poly::PolyStmt;
using poly::Scop;

/// Adds `mult * e` — an AffExpr over one current statement's iterators
/// and the parameters — into a joint-space row. False when `e` mentions a
/// name that is neither (possible only if a pass corrupted the origins).
bool accumulate(const AffExpr& e, std::int64_t mult, const PolyStmt& ps,
                std::size_t offset, const Scop& scop, std::size_t paramBase,
                std::vector<std::int64_t>& row, std::int64_t& constant) {
  for (const auto& [name, coeff] : e.coeffs()) {
    auto it = std::find(ps.iters.begin(), ps.iters.end(), name);
    if (it != ps.iters.end()) {
      row[offset + static_cast<std::size_t>(it - ps.iters.begin())] +=
          mult * coeff;
      continue;
    }
    auto pt = std::find(scop.params.begin(), scop.params.end(), name);
    if (pt == scop.params.end()) return false;
    row[paramBase + static_cast<std::size_t>(pt - scop.params.begin())] +=
        mult * coeff;
  }
  constant += mult * e.constant();
  return true;
}

std::string stmtName(const PolyStmt& ps) {
  return ps.stmt->label.empty() ? ("#" + std::to_string(ps.stmt->id))
                                : ps.stmt->label;
}

void reportViolation(const AnalysisInput& in, const Dependence& dep,
                     const PolyStmt& srcCur, const PolyStmt& dstCur,
                     std::size_t depth, const std::string& row,
                     const IntSet& bad, DiagnosticEngine& engine) {
  // Under --reductions=relaxed the scheduler was licensed to reorder
  // proven-pure accumulation edges: a violated *relaxable* baseline edge
  // is the expected reassociation, recorded as a remark; the reductions
  // analysis carries the runtime proof obligation for it instead.
  const bool relaxed =
      in.options->relaxedReductions && dep.relaxable();
  Diagnostic d;
  d.analysis = "legality";
  d.code = relaxed ? "relaxed-dependence" : "violated-dependence";
  d.afterPass = in.afterPass;
  d.location = locationOf(dstCur);
  d.message = poly::depKindName(dep.kind) + " dependence " +
              stmtName(srcCur) + " -> " + stmtName(dstCur) + " on '" +
              dep.array + "' is " +
              (relaxed ? "reassociated (relaxed reduction)"
                       : "violated") +
              " at depth " + std::to_string(depth);
  d.detail["kind"] = poly::depKindName(dep.kind);
  d.detail["array"] = dep.array;
  d.detail["src"] = stmtName(srcCur);
  d.detail["dst"] = stmtName(dstCur);
  d.detail["src_id"] = std::to_string(dep.srcId);
  d.detail["dst_id"] = std::to_string(dep.dstId);
  d.detail["src_access"] = std::to_string(dep.srcAcc);
  d.detail["dst_access"] = std::to_string(dep.dstAcc);
  d.detail["baseline_level"] = std::to_string(dep.level);
  d.detail["depth"] = std::to_string(depth);
  d.detail["row"] = row;

  bool inexact = !srcCur.exactStrides || !dstCur.exactStrides;
  std::size_t paramBase = bad.numVars() - in.scop->params.size();
  auto witness =
      findIntegerWitness(bad, paramBase, in.scop->params, *in.options);
  if (witness) d.detail["witness"] = formatWitness(bad.varNames(), *witness);
  if (inexact) d.detail["stride_overapprox"] = "true";
  if (relaxed) {
    d.detail["reduction_class"] = poly::reductionClassName(dep.reduction);
    d.severity = Severity::Remark;
  } else {
    d.severity =
        (witness && !inexact) ? Severity::Error : Severity::Warning;
  }
  engine.report(std::move(d));
}

/// Checks one baseline dependence against one pair of current statement
/// copies; reports at most one diagnostic. Returns false when the pair
/// had to be skipped because an origin expression escapes the current
/// iteration space.
bool checkPair(const AnalysisInput& in, const Dependence& dep,
               const PolyStmt& srcCur, const PolyStmt& dstCur,
               DiagnosticEngine& engine) {
  const Scop& cur = *in.scop;
  IntSet set = poly::jointPairSpace(cur, srcCur, dstCur);
  std::size_t srcOff = 0;
  std::size_t dstOff = srcCur.iters.size();
  std::size_t paramBase = set.numVars() - cur.params.size();

  // Baseline dependence constraints live over [src iters (srcDim),
  // dst iters (dstDim), params] — the baseline has no existential
  // columns (the session rejects stepped inputs). Rewrite each iterator
  // column through the endpoint's origin map.
  const auto& srcOrigin = srcCur.stmt->origin;
  const auto& dstOrigin = dstCur.stmt->origin;
  for (const auto& c : dep.poly.constraints()) {
    std::vector<std::int64_t> row(set.numVars(), 0);
    std::int64_t constant = c.constant;
    bool ok = true;
    for (std::size_t j = 0; j < dep.srcDim && ok; ++j)
      if (c.coeffs[j] != 0)
        ok = accumulate(srcOrigin[j], c.coeffs[j], srcCur, srcOff, cur,
                        paramBase, row, constant);
    for (std::size_t j = 0; j < dep.dstDim && ok; ++j)
      if (c.coeffs[dep.srcDim + j] != 0)
        ok = accumulate(dstOrigin[j], c.coeffs[dep.srcDim + j], dstCur,
                        dstOff, cur, paramBase, row, constant);
    if (!ok) return false;
    for (std::size_t p = 0; p < cur.params.size(); ++p)
      row[paramBase + p] += c.coeffs[dep.srcDim + dep.dstDim + p];
    Constraint out;
    out.coeffs = std::move(row);
    out.constant = constant;
    out.isEquality = c.isEquality;
    set.addConstraint(std::move(out));
  }
  if (set.isEmpty()) return true;  // these copies never realize the edge

  std::size_t depth = std::max(srcCur.iters.size(), dstCur.iters.size());
  for (std::size_t k = 0;; ++k) {
    // Block-position row k: compile-time constants, no solving needed.
    std::int64_t bs = k < srcCur.path.size() ? srcCur.path[k] : 0;
    std::int64_t bd = k < dstCur.path.size() ? dstCur.path[k] : 0;
    if (bd < bs) {
      reportViolation(in, dep, srcCur, dstCur, k, "block", set, engine);
      return true;
    }
    if (bd > bs) return true;  // textually ordered at this block level
    if (k >= depth) break;

    // Iterator row k: diff = dst_k - src_k (missing dimensions are 0 in
    // the timestamp, matching the schedule convention).
    bool hasS = k < srcCur.iters.size();
    bool hasD = k < dstCur.iters.size();
    std::vector<std::int64_t> diff(set.numVars(), 0);
    if (hasD) diff[dstOff + k] += 1;
    if (hasS) diff[srcOff + k] -= 1;
    IntSet bad = set;
    std::vector<std::int64_t> neg(diff.size());
    for (std::size_t i = 0; i < diff.size(); ++i) neg[i] = -diff[i];
    bad.addInequality(std::move(neg), -1);  // dst_k - src_k <= -1
    if (!bad.isEmpty()) {
      reportViolation(in, dep, srcCur, dstCur, k + 1, "loop", bad, engine);
      return true;
    }
    set.addEquality(std::move(diff), 0);
    if (set.isEmpty()) return true;  // carried here for all remaining pairs
  }
  // Every timestamp row is equal on a non-empty set: two distinct
  // baseline instances collapse onto one current time — also a violation.
  reportViolation(in, dep, srcCur, dstCur, depth, "coincident", set, engine);
  return true;
}

}  // namespace

void runLegality(const AnalysisInput& in, DiagnosticEngine& engine) {
  if (!in.baselinePodg || !in.baselineScop) return;
  const Scop& cur = *in.scop;

  std::map<int, std::vector<const PolyStmt*>> byId;
  for (const auto& ps : cur.stmts) byId[ps.stmt->id].push_back(&ps);

  std::int64_t pairs = 0;
  bool originBroken = false;
  for (const auto& dep : in.baselinePodg->deps) {
    if (dep.kind == poly::DepKind::Input) continue;
    auto si = byId.find(dep.srcId);
    auto di = byId.find(dep.dstId);
    // An endpoint with no surviving copy has no instances left to order.
    if (si == byId.end() || di == byId.end()) continue;
    for (const PolyStmt* srcCur : si->second) {
      for (const PolyStmt* dstCur : di->second) {
        if (srcCur->stmt->origin.size() != dep.srcDim ||
            dstCur->stmt->origin.size() != dep.dstDim) {
          originBroken = true;
          continue;
        }
        ++pairs;
        if (!checkPair(in, dep, *srcCur, *dstCur, engine))
          originBroken = true;
      }
    }
  }
  engine.metrics().counter("analysis.legality.pairs_checked").add(pairs);
  if (originBroken) {
    Diagnostic d;
    d.severity = Severity::Warning;
    d.analysis = "legality";
    d.code = "origin-mismatch";
    d.message =
        "some statement provenance maps do not match the baseline "
        "iteration spaces; the affected pairs were not checked";
    d.afterPass = in.afterPass;
    engine.report(d);
  }
}

}  // namespace polyast::analysis
