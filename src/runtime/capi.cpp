#include "runtime/capi.hpp"

#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/attrib.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"

namespace {

using polyast::runtime::capi::RunCounters;

// Spawn-site counters of the currently executing native kernel. Counts are
// issued from the thread driving the kernel entry (spawn sites live in the
// kernel function, never inside outlined chunk/cell bodies), but the shim
// locks anyway so a future emitter that spawns from workers stays correct.
RunCounters g_counters;  // NOLINT(cert-err58-cpp)
std::mutex g_countersMutex;

polyast::runtime::ThreadPool &pool(void *p) {
  return *static_cast<polyast::runtime::ThreadPool *>(p);
}

}  // namespace

extern "C" {

static void capiParallelForBlocked(void *p, int64_t trips, int schedule,
                                   int64_t minBlock,
                                   void (*chunk)(void *, unsigned, int64_t,
                                                 int64_t),
                                   void *env) {
  using polyast::runtime::ForOptions;
  using polyast::runtime::Schedule;
  ForOptions opts;
  if (schedule == POLYAST_SCHEDULE_GUIDED) {
    opts.schedule = Schedule::Guided;
    opts.minBlock = minBlock;
  }
  polyast::obs::Span span(polyast::obs::Tracer::global(), "exec.doall",
                          "exec");
  span.attr("backend", "native");
  span.attr("trips", trips);
  span.attr("schedule",
            opts.schedule == Schedule::Guided ? "guided" : "static");
  polyast::runtime::parallelForBlocked(
      pool(p), 0, trips,
      [&](unsigned tid, std::int64_t begin, std::int64_t end) {
        chunk(env, tid, begin, end);
      },
      opts);
}

static void capiParallelReduce(void *p, int64_t trips,
                               const polyast_reduce_target *targets,
                               int64_t nTargets,
                               void (*chunk)(void *, unsigned,
                                             double *const *, int64_t,
                                             int64_t),
                               void *env) {
  std::vector<polyast::runtime::ReduceTarget> ts;
  ts.reserve(static_cast<std::size_t>(nTargets));
  for (int64_t i = 0; i < nTargets; ++i)
    ts.push_back({targets[i].data, static_cast<std::size_t>(targets[i].size)});
  polyast::obs::Span span(polyast::obs::Tracer::global(), "exec.reduction",
                          "exec");
  span.attr("backend", "native");
  span.attr("trips", trips);
  span.attr("privatized", nTargets);
  polyast::runtime::parallelReduce(
      pool(p), 0, trips, ts,
      [&](unsigned tid, const std::vector<double *> &priv,
          std::int64_t begin, std::int64_t end) {
        chunk(env, tid, priv.data(), begin, end);
      });
}

static void capiPipeline2D(void *p, int64_t rows, int64_t cols,
                           void (*cell)(void *, int64_t, int64_t),
                           void *env) {
  polyast::obs::Span span(polyast::obs::Tracer::global(), "exec.pipeline",
                          "exec");
  span.attr("backend", "native");
  span.attr("rows", rows);
  span.attr("cols", cols);
  polyast::runtime::pipeline2D(
      pool(p), rows, cols,
      [&](std::int64_t r, std::int64_t c) { cell(env, r, c); });
}

static void capiPipeline3D(void *p, int64_t planes, int64_t rows,
                           int64_t cols,
                           void (*cell)(void *, int64_t, int64_t, int64_t),
                           void *env) {
  polyast::obs::Span span(polyast::obs::Tracer::global(), "exec.pipeline3d",
                          "exec");
  span.attr("backend", "native");
  span.attr("planes", planes);
  span.attr("rows", rows);
  span.attr("cols", cols);
  polyast::runtime::pipeline3D(
      pool(p), planes, rows, cols,
      [&](std::int64_t pp, std::int64_t r, std::int64_t c) {
        cell(env, pp, r, c);
      });
}

static void capiPipelineDynamic2D(void *p, const int64_t *rowCols,
                                  int64_t rows,
                                  int64_t (*need)(void *, int64_t, int64_t),
                                  void (*cell)(void *, int64_t, int64_t),
                                  void *env) {
  std::vector<std::int64_t> cols(rowCols, rowCols + rows);
  polyast::obs::Span span(polyast::obs::Tracer::global(),
                          "exec.pipeline_dynamic", "exec");
  span.attr("backend", "native");
  span.attr("rows", rows);
  polyast::runtime::pipelineDynamic2D(
      pool(p), cols,
      [&](std::int64_t r, std::int64_t c) { return need(env, r, c); },
      [&](std::int64_t r, std::int64_t c) { cell(env, r, c); });
}

static unsigned capiThreadCount(void *p) { return pool(p).threadCount(); }

static unsigned capiCurrentTid(void) {
  return polyast::runtime::ThreadPool::currentTid();
}

static void capiCount(int what) {
  std::lock_guard<std::mutex> lock(g_countersMutex);
  switch (what) {
    case POLYAST_COUNT_DOALL: ++g_counters.doallLoops; break;
    case POLYAST_COUNT_GUIDED: ++g_counters.guidedLoops; break;
    case POLYAST_COUNT_REDUCTION: ++g_counters.reductionLoops; break;
    case POLYAST_COUNT_PIPELINE: ++g_counters.pipelineLoops; break;
    case POLYAST_COUNT_PIPELINE_DYNAMIC:
      ++g_counters.pipelineDynamicLoops;
      break;
    case POLYAST_COUNT_PIPELINE_3D: ++g_counters.pipeline3dLoops; break;
    case POLYAST_COUNT_REDUCTION_PIPELINE:
      ++g_counters.reductionPipelineLoops;
      break;
    default: break;
  }
}

static void capiCountFallback(const char *note) {
  std::lock_guard<std::mutex> lock(g_countersMutex);
  ++g_counters.sequentialFallbacks;
  g_counters.notes.emplace_back(note ? note : "(unnamed fallback)");
}

static void capiConstructEnter(int64_t id, const char *kind,
                               const char *iter) {
  polyast::obs::constructEnter(id, kind, iter);
}

static void capiConstructExit(int64_t id) { polyast::obs::constructExit(id); }

/* The no-op table entries: when no tracer or profiler is active, kernels
   get these instead — the disabled-attribution cost is one indirect call
   per construct encounter, with no predicate behind it. */
static void capiConstructEnterNoop(int64_t id, const char *kind,
                                   const char *iter) {
  (void)id;
  (void)kind;
  (void)iter;
}

static void capiConstructExitNoop(int64_t id) { (void)id; }

const polyast_runtime_api *polyast_runtime_api_get(void) {
  static const polyast_runtime_api kApi = {
      POLYAST_CAPI_ABI_VERSION,
      &capiParallelForBlocked,
      &capiParallelReduce,
      &capiPipeline2D,
      &capiPipeline3D,
      &capiPipelineDynamic2D,
      &capiThreadCount,
      &capiCurrentTid,
      &capiCount,
      &capiCountFallback,
      &capiConstructEnter,
      &capiConstructExit,
  };
  static const polyast_runtime_api kApiNoHooks = {
      POLYAST_CAPI_ABI_VERSION,
      &capiParallelForBlocked,
      &capiParallelReduce,
      &capiPipeline2D,
      &capiPipeline3D,
      &capiPipelineDynamic2D,
      &capiThreadCount,
      &capiCurrentTid,
      &capiCount,
      &capiCountFallback,
      &capiConstructEnterNoop,
      &capiConstructExitNoop,
  };
  /* Selected per run: the native backend fetches the table immediately
     before each kernel entry, so toggling tracing/profiling between runs
     picks the right variant without re-JITting anything. */
  return polyast::obs::constructHooksActive() ? &kApi : &kApiNoHooks;
}

} /* extern "C" */

namespace polyast::runtime::capi {

void resetRunCounters() {
  std::lock_guard<std::mutex> lock(g_countersMutex);
  g_counters = RunCounters{};
}

RunCounters takeRunCounters() {
  std::lock_guard<std::mutex> lock(g_countersMutex);
  return g_counters;
}

}  // namespace polyast::runtime::capi
