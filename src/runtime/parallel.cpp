#include "runtime/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace polyast::runtime {

namespace {

/// Sink for the executors' synchronization counters: every SyncStats the
/// runtime returns is also absorbed into the metrics registry, so traces
/// and metrics files carry the same numbers the benches print.
void absorbSyncStats(const SyncStats& stats) {
  obs::Registry& reg = obs::Registry::global();
  static obs::Counter& waits = reg.counter("runtime.sync.p2p_waits");
  static obs::Counter& barriers = reg.counter("runtime.sync.barriers");
  static obs::Counter& spins = reg.counter("runtime.sync.spin_iterations");
  if (stats.pointToPointWaits)
    waits.add(static_cast<std::int64_t>(stats.pointToPointWaits));
  if (stats.barriers) barriers.add(static_cast<std::int64_t>(stats.barriers));
  if (stats.spinIterations)
    spins.add(static_cast<std::int64_t>(stats.spinIterations));
}

/// Per-worker wait-latency histogram (`runtime.pipeline.wait_ns.t<tid>`),
/// resolved once per worker invocation; nullptr when detailed timing is
/// off so wait loops pay no clock reads.
obs::Histogram* waitHistogram(unsigned tid) {
  if (!obs::Registry::global().timingEnabled()) return nullptr;
  return &obs::Registry::global().histogram(
      "runtime.pipeline.wait_ns.t" + std::to_string(tid),
      obs::waitLatencyBounds());
}

/// Worker id of the thread inside the current runOnAll job (see
/// ThreadPool::currentTid). Pool workers are permanent, so workerLoop sets
/// this once; the caller thread is pinned to 0 for the span of each job.
thread_local unsigned g_currentTid = 0;

}  // namespace

unsigned ThreadPool::currentTid() { return g_currentTid; }

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads_ = threads;
  obs::Tracer::global().nameCurrentThread("main");
  for (unsigned t = 1; t < threads_; ++t)
    workers_.emplace_back([this, t] { workerLoop(t); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::workerLoop(unsigned tid) {
  obs::Tracer::global().nameCurrentThread("worker-" + std::to_string(tid));
  g_currentTid = tid;
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(tid);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) doneCv_.notify_all();
    }
  }
}

void ThreadPool::runOnAll(const std::function<void(unsigned)>& fn) {
  const unsigned savedTid = g_currentTid;
  g_currentTid = 0;
  if (threads_ == 1) {
    fn(0);
    g_currentTid = savedTid;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    remaining_ = threads_ - 1;
    ++generation_;
  }
  cv_.notify_all();
  fn(0);
  std::unique_lock<std::mutex> lock(mutex_);
  doneCv_.wait(lock, [&] { return remaining_ == 0; });
  g_currentTid = savedTid;
}

void parallelForBlocked(
    ThreadPool& pool, std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  std::int64_t n = end - begin;
  if (n <= 0) return;
  static obs::Counter& chunks =
      obs::Registry::global().counter("runtime.doall.chunks");
  std::int64_t threads = static_cast<std::int64_t>(pool.threadCount());
  std::int64_t chunk = (n + threads - 1) / threads;
  pool.runOnAll([&](unsigned tid) {
    std::int64_t lo = begin + static_cast<std::int64_t>(tid) * chunk;
    std::int64_t hi = std::min(end, lo + chunk);
    if (lo < hi) {
      obs::Span span("doall.chunk", "runtime");
      span.attr("tid", static_cast<std::int64_t>(tid));
      span.attr("lo", lo);
      span.attr("hi", hi);
      chunks.add();
      fn(lo, hi);
    }
  });
}

void parallelForBlocked(
    ThreadPool& pool, std::int64_t begin, std::int64_t end,
    const std::function<void(unsigned, std::int64_t, std::int64_t)>& fn,
    const ForOptions& opts) {
  std::int64_t n = end - begin;
  if (n <= 0) return;
  static obs::Counter& chunks =
      obs::Registry::global().counter("runtime.doall.chunks");
  std::int64_t threads = static_cast<std::int64_t>(pool.threadCount());
  if (opts.schedule == Schedule::Static) {
    std::int64_t chunk = (n + threads - 1) / threads;
    pool.runOnAll([&](unsigned tid) {
      std::int64_t lo = begin + static_cast<std::int64_t>(tid) * chunk;
      std::int64_t hi = std::min(end, lo + chunk);
      if (lo < hi) {
        obs::Span span("doall.chunk", "runtime");
        span.attr("tid", static_cast<std::int64_t>(tid));
        span.attr("lo", lo);
        span.attr("hi", hi);
        chunks.add();
        fn(tid, lo, hi);
      }
    });
    return;
  }
  static obs::Counter& guidedBlocks =
      obs::Registry::global().counter("runtime.doall.guided_blocks");
  const std::int64_t minBlock = std::max<std::int64_t>(1, opts.minBlock);
  std::atomic<std::int64_t> next{begin};
  pool.runOnAll([&](unsigned tid) {
    obs::Span span("doall.guided", "runtime");
    span.attr("tid", static_cast<std::int64_t>(tid));
    std::int64_t blocks = 0;
    for (;;) {
      std::int64_t lo = next.load(std::memory_order_relaxed);
      std::int64_t hi = lo;
      bool claimed = false;
      while (lo < end) {
        // Guided: half the fair share of what remains, never below the
        // floor — big blocks while there is slack, small ones to balance
        // the tail.
        const std::int64_t remaining = end - lo;
        const std::int64_t block = std::min(
            remaining, std::max(minBlock, remaining / (2 * threads)));
        hi = lo + block;
        if (next.compare_exchange_weak(lo, hi, std::memory_order_relaxed)) {
          claimed = true;
          break;
        }
      }
      if (!claimed) break;
      chunks.add();
      guidedBlocks.add();
      fn(tid, lo, hi);
      ++blocks;
    }
    span.attr("blocks", blocks);
  });
}

void parallelFor(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                 const std::function<void(std::int64_t)>& fn) {
  parallelForBlocked(pool, begin, end,
                     [&](std::int64_t lo, std::int64_t hi) {
                       for (std::int64_t i = lo; i < hi; ++i) fn(i);
                     });
}

void parallelReduce(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                    double* target, std::size_t size,
                    const std::function<void(double*, std::int64_t,
                                             std::int64_t)>& body) {
  POLYAST_CHECK(target != nullptr, "parallelReduce without a target");
  parallelReduce(pool, begin, end, std::vector<ReduceTarget>{{target, size}},
                 [&](unsigned, const std::vector<double*>& priv,
                     std::int64_t lo, std::int64_t hi) {
                   body(priv.front(), lo, hi);
                 });
}

void parallelReduce(
    ThreadPool& pool, std::int64_t begin, std::int64_t end,
    const std::vector<ReduceTarget>& targets,
    const std::function<void(unsigned, const std::vector<double*>&,
                             std::int64_t, std::int64_t)>& body) {
  POLYAST_CHECK(!targets.empty(), "parallelReduce without targets");
  for (const auto& t : targets)
    POLYAST_CHECK(t.data != nullptr, "parallelReduce with a null target");
  std::int64_t n = end - begin;
  if (n <= 0) return;
  static obs::Counter& reductions =
      obs::Registry::global().counter("runtime.reduce.calls");
  reductions.add();
  unsigned threads = pool.threadCount();
  // Privatized accumulation buffers, one per target per thread.
  std::vector<std::vector<std::vector<double>>> priv(threads);
  std::vector<std::vector<double*>> ptrs(threads);
  for (unsigned t = 0; t < threads; ++t) {
    priv[t].resize(targets.size());
    ptrs[t].reserve(targets.size());
    for (std::size_t k = 0; k < targets.size(); ++k) {
      priv[t][k].assign(targets[k].size, 0.0);
      ptrs[t].push_back(priv[t][k].data());
    }
  }
  std::int64_t chunk =
      (n + static_cast<std::int64_t>(threads) - 1) /
      static_cast<std::int64_t>(threads);
  pool.runOnAll([&](unsigned tid) {
    std::int64_t lo = begin + static_cast<std::int64_t>(tid) * chunk;
    std::int64_t hi = std::min(end, lo + chunk);
    if (lo < hi) {
      obs::Span span("reduce.accumulate", "runtime");
      span.attr("tid", static_cast<std::int64_t>(tid));
      span.attr("lo", lo);
      span.attr("hi", hi);
      body(tid, ptrs[tid], lo, hi);
    }
  });
  // Merge phase (parallel over each array when large).
  for (std::size_t k = 0; k < targets.size(); ++k) {
    obs::Span combine("reduce.combine", "runtime");
    combine.attr("size", static_cast<std::int64_t>(targets[k].size));
    double* target = targets[k].data;
    parallelForBlocked(pool, 0, static_cast<std::int64_t>(targets[k].size),
                       [&](std::int64_t lo, std::int64_t hi) {
                         for (std::int64_t i = lo; i < hi; ++i) {
                           double sum = 0.0;
                           for (unsigned t = 0; t < threads; ++t)
                             sum += priv[t][k][static_cast<std::size_t>(i)];
                           target[i] += sum;
                         }
                       });
  }
}

SyncStats pipeline2D(ThreadPool& pool, std::int64_t rows, std::int64_t cols,
                     const std::function<void(std::int64_t, std::int64_t)>&
                         cell) {
  SyncStats stats;
  if (rows <= 0 || cols <= 0) return stats;
  // progress[r] = number of completed cells in row r.
  std::vector<std::atomic<std::int64_t>> progress(
      static_cast<std::size_t>(rows));
  for (auto& p : progress) p.store(0, std::memory_order_relaxed);
  std::atomic<std::int64_t> nextRow{0};
  std::atomic<std::uint64_t> waits{0};
  std::atomic<std::uint64_t> spinIters{0};

  pool.runOnAll([&](unsigned tid) {
    obs::Span worker("pipeline.worker", "runtime");
    worker.attr("tid", static_cast<std::int64_t>(tid));
    obs::Histogram* waitHist = waitHistogram(tid);
    std::int64_t rowsDone = 0;
    SpinBackoff backoff;
    for (;;) {
      std::int64_t r = nextRow.fetch_add(1, std::memory_order_relaxed);
      if (r >= rows) break;
      ++rowsDone;
      for (std::int64_t c = 0; c < cols; ++c) {
        if (r > 0) {
          // await source(r-1, c): the previous row must have completed at
          // least c+1 cells.
          auto& prev = progress[static_cast<std::size_t>(r - 1)];
          if (prev.load(std::memory_order_acquire) < c + 1) {
            waits.fetch_add(1, std::memory_order_relaxed);
            backoff.reset();
            auto waitStart = waitHist ? std::chrono::steady_clock::now()
                                      : std::chrono::steady_clock::
                                            time_point();
            while (prev.load(std::memory_order_acquire) < c + 1)
              backoff.pause();
            if (waitHist)
              waitHist->observe(static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - waitStart)
                      .count()));
          }
        }
        // await source(r, c-1) is implicit: the same thread runs the row
        // left to right.
        cell(r, c);
        progress[static_cast<std::size_t>(r)].store(
            c + 1, std::memory_order_release);
      }
    }
    worker.attr("rows", rowsDone);
    spinIters.fetch_add(backoff.iterations(), std::memory_order_relaxed);
  });
  stats.pointToPointWaits = waits.load();
  stats.spinIterations = spinIters.load();
  absorbSyncStats(stats);
  return stats;
}

SyncStats pipelineDynamic2D(
    ThreadPool& pool, const std::vector<std::int64_t>& rowCols,
    const std::function<std::int64_t(std::int64_t, std::int64_t)>& need,
    const std::function<void(std::int64_t, std::int64_t)>& cell) {
  SyncStats stats;
  const std::int64_t rows = static_cast<std::int64_t>(rowCols.size());
  if (rows <= 0) return stats;
  // progress[r] = number of completed cells in row r (row-relative).
  std::vector<std::atomic<std::int64_t>> progress(
      static_cast<std::size_t>(rows));
  for (auto& p : progress) p.store(0, std::memory_order_relaxed);
  std::atomic<std::int64_t> nextRow{0};
  std::atomic<std::uint64_t> waits{0};
  std::atomic<std::uint64_t> spinIters{0};

  pool.runOnAll([&](unsigned tid) {
    obs::Span worker("pipeline.worker", "runtime");
    worker.attr("tid", static_cast<std::int64_t>(tid));
    worker.attr("shape", "dynamic");
    obs::Histogram* waitHist = waitHistogram(tid);
    std::int64_t rowsDone = 0;
    SpinBackoff backoff;
    for (;;) {
      std::int64_t r = nextRow.fetch_add(1, std::memory_order_relaxed);
      if (r >= rows) break;
      const std::int64_t cols = rowCols[static_cast<std::size_t>(r)];
      if (cols <= 0) continue;  // empty rows only at the range ends
      ++rowsDone;
      const std::int64_t prevCols =
          r > 0 ? rowCols[static_cast<std::size_t>(r - 1)] : 0;
      for (std::int64_t c = 0; c < cols; ++c) {
        if (prevCols > 0) {
          // await: the previous row must have completed the first
          // need(r, c) of its cells (clamped defensively — an empty or
          // short predecessor row cannot owe more than it has).
          const std::int64_t wantRaw = need(r, c);
          const std::int64_t want =
              std::min(prevCols, std::max<std::int64_t>(0, wantRaw));
          auto& prev = progress[static_cast<std::size_t>(r - 1)];
          if (want > 0 && prev.load(std::memory_order_acquire) < want) {
            waits.fetch_add(1, std::memory_order_relaxed);
            backoff.reset();
            auto waitStart = waitHist ? std::chrono::steady_clock::now()
                                      : std::chrono::steady_clock::
                                            time_point();
            while (prev.load(std::memory_order_acquire) < want)
              backoff.pause();
            if (waitHist)
              waitHist->observe(static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - waitStart)
                      .count()));
          }
        }
        // await (r, c-1) is implicit: the same thread runs the row left
        // to right.
        cell(r, c);
        progress[static_cast<std::size_t>(r)].store(
            c + 1, std::memory_order_release);
      }
    }
    worker.attr("rows", rowsDone);
    spinIters.fetch_add(backoff.iterations(), std::memory_order_relaxed);
  });
  stats.pointToPointWaits = waits.load();
  stats.spinIterations = spinIters.load();
  absorbSyncStats(stats);
  return stats;
}

SyncStats wavefront2D(ThreadPool& pool, std::int64_t rows, std::int64_t cols,
                      const std::function<void(std::int64_t, std::int64_t)>&
                          cell) {
  SyncStats stats;
  if (rows <= 0 || cols <= 0) return stats;
  obs::Span span("wavefront2d", "runtime");
  span.attr("rows", rows);
  span.attr("cols", cols);
  for (std::int64_t d = 0; d <= rows + cols - 2; ++d) {
    std::int64_t rLo = std::max<std::int64_t>(0, d - cols + 1);
    std::int64_t rHi = std::min(rows - 1, d);
    // Doall over the diagonal, implicit all-to-all barrier at the end of
    // each parallelFor (runOnAll joins every thread).
    parallelFor(pool, rLo, rHi + 1,
                [&](std::int64_t r) { cell(r, d - r); });
    stats.barriers += 1;
  }
  absorbSyncStats(stats);
  return stats;
}

SyncStats pipeline3D(
    ThreadPool& pool, std::int64_t planes, std::int64_t rows,
    std::int64_t cols,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>&
        cell) {
  SyncStats stats;
  if (planes <= 0 || rows <= 0 || cols <= 0) return stats;
  std::int64_t total = planes * rows * cols;
  auto id = [&](std::int64_t p, std::int64_t r, std::int64_t c) {
    return (p * rows + r) * cols + c;
  };
  // Remaining-predecessor counters per cell.
  std::vector<std::atomic<int>> pending(static_cast<std::size_t>(total));
  for (std::int64_t p = 0; p < planes; ++p)
    for (std::int64_t r = 0; r < rows; ++r)
      for (std::int64_t c = 0; c < cols; ++c)
        pending[static_cast<std::size_t>(id(p, r, c))].store(
            (p > 0) + (r > 0) + (c > 0), std::memory_order_relaxed);

  // Ready stack (mutex-protected; cells are coarse blocks, contention is
  // negligible next to the work).
  std::mutex mu;
  std::vector<std::int64_t> ready{id(0, 0, 0)};
  std::atomic<std::int64_t> done{0};
  std::atomic<std::uint64_t> waits{0};
  std::atomic<std::uint64_t> spinIters{0};

  pool.runOnAll([&](unsigned tid) {
    obs::Span worker("pipeline3d.worker", "runtime");
    worker.attr("tid", static_cast<std::int64_t>(tid));
    obs::Histogram* waitHist = waitHistogram(tid);
    std::int64_t cellsDone = 0;
    SpinBackoff backoff;
    // One wait *episode* spans every idle iteration between two successful
    // pops; it is counted and timed once, matching pipeline2D's full-wait
    // semantics so `runtime.pipeline.wait_ns.t<tid>` is comparable across
    // executors.
    bool waiting = false;
    auto waitStart = std::chrono::steady_clock::time_point();
    for (;;) {
      std::int64_t next = -1;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (!ready.empty()) {
          next = ready.back();
          ready.pop_back();
        }
      }
      if (next < 0) {
        if (done.load(std::memory_order_acquire) >= total) {
          spinIters.fetch_add(backoff.iterations(),
                              std::memory_order_relaxed);
          worker.attr("cells", cellsDone);
          return;
        }
        if (!waiting) {
          waiting = true;
          waits.fetch_add(1, std::memory_order_relaxed);
          backoff.reset();
          if (waitHist) waitStart = std::chrono::steady_clock::now();
        }
        backoff.pause();
        continue;
      }
      if (waiting) {
        waiting = false;
        if (waitHist)
          waitHist->observe(static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - waitStart)
                  .count()));
      }
      ++cellsDone;
      backoff.reset();
      std::int64_t c = next % cols;
      std::int64_t r = (next / cols) % rows;
      std::int64_t p = next / (cols * rows);
      cell(p, r, c);
      done.fetch_add(1, std::memory_order_release);
      const std::int64_t succ[3][3] = {
          {p + 1, r, c}, {p, r + 1, c}, {p, r, c + 1}};
      for (const auto& s : succ) {
        if (s[0] >= planes || s[1] >= rows || s[2] >= cols) continue;
        std::int64_t sid = id(s[0], s[1], s[2]);
        if (pending[static_cast<std::size_t>(sid)].fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lock(mu);
          ready.push_back(sid);
        }
      }
    }
  });
  stats.pointToPointWaits = waits.load();
  stats.spinIterations = spinIters.load();
  absorbSyncStats(stats);
  return stats;
}

}  // namespace polyast::runtime
