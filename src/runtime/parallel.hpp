// Shared-memory parallel runtime — the substrate for Sec. IV-A/IV-D.
//
// The paper's generated code relies on OpenMP plus two extensions: array
// reductions in C [31] and point-to-point synchronization for pipeline
// parallelism [19]. This runtime provides the same constructs on plain
// std::thread:
//
//   * ThreadPool — persistent worker threads,
//   * parallelFor — doall loops (static chunking),
//   * parallelReduce — privatized array reductions with a merge phase,
//   * Pipeline2D — the `await source(i-1,j) source(i,j-1)` construct of
//     Fig. 6 (left): each cell of a 2-D grid runs when its north and west
//     neighbours completed, synchronized by per-cell atomic flags — no
//     all-to-all barriers,
//   * wavefront2D — the comparator of Fig. 6 (right): diagonal sweeps with
//     a barrier between diagonals (the classic skewed doall).
//
// Instrumentation counters (synchronization operations, barrier count) are
// exposed so tests and the Fig. 6 benchmark can compare the two schemes
// analytically as well as by wall clock. Every SyncStats is also absorbed
// into the obs metrics registry (`runtime.sync.*`), the executors emit
// per-thread spans (doall chunks, reduction accumulate/combine, pipeline
// workers) when the global tracer is enabled, and pipeline wait latencies
// feed per-thread `runtime.pipeline.wait_ns.t<tid>` histograms when
// Registry timing is on — see docs/OBSERVABILITY.md. All of it is a single
// relaxed atomic load per construct when observability is off.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace polyast::runtime {

/// Persistent pool of worker threads. Thread 0 is the caller.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threadCount() const { return threads_; }

  /// Runs fn(tid) on every thread (0..threads-1) and waits for all.
  void runOnAll(const std::function<void(unsigned)>& fn);

  /// Worker id of the calling thread *inside* a runOnAll job (0 for the
  /// caller thread, 1.. for pool workers). Lets cell callbacks of the
  /// pipeline executors recover their worker identity — e.g. to index
  /// per-thread scratch state — without widening every cell signature.
  /// Returns 0 outside any pool job.
  static unsigned currentTid();

 private:
  void workerLoop(unsigned tid);

  unsigned threads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable doneCv_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned remaining_ = 0;
  bool shutdown_ = false;
};

/// Doall loop: fn(i) for i in [begin, end), statically chunked.
void parallelFor(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                 const std::function<void(std::int64_t)>& fn);

/// Chunking policy for blocked doall loops.
enum class Schedule {
  Static,  ///< one contiguous chunk per thread (ceil(n/threads))
  Guided,  ///< atomic work counter; shrinking blocks with a size floor
};

struct ForOptions {
  Schedule schedule = Schedule::Static;
  /// Guided schedule never hands out a block smaller than this (bounds
  /// the counter contention when the tail drains).
  std::int64_t minBlock = 1;
};

/// Blocked doall: fn(chunkBegin, chunkEnd) per contiguous chunk.
void parallelForBlocked(
    ThreadPool& pool, std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn);

/// Blocked doall with an explicit schedule. fn(tid, chunkBegin, chunkEnd)
/// runs once per block; under Schedule::Guided threads claim blocks of
/// max(minBlock, remaining / (2 * threads)) iterations off a shared atomic
/// counter, so imbalanced trip spaces (triangular loops, guarded bodies)
/// do not leave threads idle behind one overloaded static chunk.
void parallelForBlocked(
    ThreadPool& pool, std::int64_t begin, std::int64_t end,
    const std::function<void(unsigned, std::int64_t, std::int64_t)>& fn,
    const ForOptions& opts);

/// Array reduction (the OpenMP-C array-reduction extension [31]): each
/// thread accumulates into a private zero-initialized buffer of `size`
/// doubles via body(tid, priv, begin, end); the private buffers are then
/// summed into `target`.
void parallelReduce(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                    double* target, std::size_t size,
                    const std::function<void(double*, std::int64_t,
                                             std::int64_t)>& body);

/// One accumulator array of a multi-target reduction.
struct ReduceTarget {
  double* data = nullptr;
  std::size_t size = 0;
};

/// Multi-target array reduction: one privatized zero-initialized buffer
/// *per target per thread*. body(tid, priv, begin, end) receives the
/// thread's private buffers in target order; after all chunks drain, each
/// private buffer is summed into its target (merge parallel over the
/// array). This is what a loop accumulating into several arrays at once
/// (e.g. mvt's x1/x2 after fusion) lowers to.
void parallelReduce(
    ThreadPool& pool, std::int64_t begin, std::int64_t end,
    const std::vector<ReduceTarget>& targets,
    const std::function<void(unsigned, const std::vector<double*>&,
                             std::int64_t, std::int64_t)>& body);

/// Counters for comparing synchronization schemes (Fig. 6).
struct SyncStats {
  std::uint64_t pointToPointWaits = 0;  ///< cell-level await operations
  std::uint64_t barriers = 0;           ///< all-to-all barriers executed
  std::uint64_t spinIterations = 0;     ///< backoff iterations while waiting
};

/// Bounded spin-then-yield backoff shared by the pipeline executors'
/// wait loops: the first `spinLimit` iterations issue a CPU relax hint
/// (cheap polling that keeps the waited-on cache line hot); every
/// iteration past the bound yields to the scheduler so oversubscribed
/// waiters do not starve the producers they wait on. Iterations are
/// counted so benches report spin traffic alongside sync-op counts.
class SpinBackoff {
 public:
  explicit SpinBackoff(std::uint32_t spinLimit = 64)
      : spinLimit_(spinLimit) {}

  /// One backoff step: relax while under the spin bound, yield after.
  void pause() {
    ++iterations_;
    if (spins_ < spinLimit_) {
      ++spins_;
      cpuRelax();
    } else {
      std::this_thread::yield();
    }
  }

  /// Re-arms the spin phase after observed progress.
  void reset() { spins_ = 0; }

  std::uint64_t iterations() const { return iterations_; }

  static void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::this_thread::yield();
#endif
  }

 private:
  std::uint32_t spinLimit_;
  std::uint32_t spins_ = 0;
  std::uint64_t iterations_ = 0;
};

/// Point-to-point pipeline over a 2-D cell grid (rows x cols): cell (r, c)
/// runs after (r-1, c) and (r, c-1). Rows are distributed over threads;
/// progress is tracked by per-row atomic column counters, giving the
/// doacross behaviour of the proposed OpenMP `await` extension without
/// any barrier.
SyncStats pipeline2D(ThreadPool& pool, std::int64_t rows, std::int64_t cols,
                     const std::function<void(std::int64_t, std::int64_t)>&
                         cell);

/// Point-to-point pipeline over a *ragged* 2-D grid: row r has rowCols[r]
/// cells (row lengths may differ — triangular/trapezoidal iteration
/// spaces). Cell (r, c) runs after cells (r-1, 0..need(r,c)-1) of the
/// previous row and (r, c-1) of its own row; need(r, c) returns the number
/// of previous-row cells cell (r, c) depends on, in *row-relative* column
/// counts (clamped to [0, rowCols[r-1]] by the caller). Rows are claimed
/// dynamically like pipeline2D; progress is per-row completed-cell
/// counters.
///
/// Precondition (holds for unit-step affine loop nests, whose row
/// intervals are convex): rows with zero cells appear only as a prefix
/// and/or suffix of the row range, never between non-empty rows — a row
/// in the middle would break the chain of per-row counters the sync
/// relies on.
SyncStats pipelineDynamic2D(
    ThreadPool& pool, const std::vector<std::int64_t>& rowCols,
    const std::function<std::int64_t(std::int64_t, std::int64_t)>& need,
    const std::function<void(std::int64_t, std::int64_t)>& cell);

/// Wavefront doall over the same grid: diagonals d = r + c executed in
/// order with an all-to-all barrier between diagonals (the skewed-doall
/// scheme the paper argues against; start-up/draining phases underutilize
/// the threads).
SyncStats wavefront2D(ThreadPool& pool, std::int64_t rows, std::int64_t cols,
                      const std::function<void(std::int64_t, std::int64_t)>&
                          cell);

/// Three-dimensional doacross: cell (p, r, c) runs after (p-1, r, c),
/// (p, r-1, c) and (p, r, c-1) — the construct needed for *time-tiled*
/// stencil pipelines, where the first dimension is the time step within a
/// tile and the other two are skewed space blocks. Implemented as a
/// ready-queue over per-cell dependency counters (no barriers).
SyncStats pipeline3D(
    ThreadPool& pool, std::int64_t planes, std::int64_t rows,
    std::int64_t cols,
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>&
        cell);

}  // namespace polyast::runtime
