// C ABI shim between JIT-compiled kernel TUs and the C++ parallel runtime.
//
// The native execution backend (exec/native_exec) compiles emitted C
// kernels into shared objects. Those TUs cannot include C++ headers, so
// every parallel construct is reached through a table of C function
// pointers (polyast_runtime_api) handed to the kernel entry point inside
// polyast_kernel_args — no dynamic-symbol resolution against the host
// process is needed, which keeps the objects loadable without -rdynamic.
// The emitted TU textually re-declares these structs (ir/cemit's native
// emitter); POLYAST_CAPI_ABI_VERSION guards the two copies against drift:
// the backend refuses to run a kernel whose exported polyast_kernel_abi()
// disagrees, and the version participates in the on-disk cache key so a
// stale object from an older build is never loaded.
//
// Spawn sites report what they ran through the count / count_fallback
// hooks, which feed a process-global RunCounters snapshot — that is how a
// native run produces the same ParallelRunReport the interpreter fills
// while walking (same counting semantics: one count per dynamic encounter,
// counted even when the trip space turns out empty).
#pragma once

#include <stdint.h>

#define POLYAST_CAPI_ABI_VERSION 2

/* Spawn-site event kinds for polyast_runtime_api::count (mirror the
   counters of exec::ParallelRunReport). */
#define POLYAST_COUNT_DOALL 0
#define POLYAST_COUNT_GUIDED 1
#define POLYAST_COUNT_REDUCTION 2
#define POLYAST_COUNT_PIPELINE 3
#define POLYAST_COUNT_PIPELINE_DYNAMIC 4
#define POLYAST_COUNT_PIPELINE_3D 5
#define POLYAST_COUNT_REDUCTION_PIPELINE 6

/* Schedules for polyast_runtime_api::parallel_for_blocked. */
#define POLYAST_SCHEDULE_STATIC 0
#define POLYAST_SCHEDULE_GUIDED 1

#ifdef __cplusplus
extern "C" {
#endif

/* One accumulator array of a multi-target reduction
   (runtime::ReduceTarget). */
typedef struct polyast_reduce_target {
  double *data;
  uint64_t size;
} polyast_reduce_target;

/* Function-pointer table into the C++ runtime. Field order and types are
   part of the ABI — bump POLYAST_CAPI_ABI_VERSION on any change and keep
   the copy emitted by ir/cemit's native emitter in sync. */
typedef struct polyast_runtime_api {
  int64_t abi_version;

  /* runtime::parallelForBlocked over [0, trips): chunk(env, tid, begin,
     end) per contiguous block, schedule POLYAST_SCHEDULE_*. */
  void (*parallel_for_blocked)(void *pool, int64_t trips, int schedule,
                               int64_t min_block,
                               void (*chunk)(void *env, unsigned tid,
                                             int64_t begin, int64_t end),
                               void *env);

  /* runtime::parallelReduce: chunk receives one zero-initialized private
     buffer per target (in target order); the runtime merges them into the
     targets after the chunks drain. */
  void (*parallel_reduce)(void *pool, int64_t trips,
                          const polyast_reduce_target *targets,
                          int64_t n_targets,
                          void (*chunk)(void *env, unsigned tid,
                                        double *const *priv, int64_t begin,
                                        int64_t end),
                          void *env);

  /* runtime::pipeline2D over rows x cols. */
  void (*pipeline_2d)(void *pool, int64_t rows, int64_t cols,
                      void (*cell)(void *env, int64_t r, int64_t c),
                      void *env);

  /* runtime::pipeline3D over planes x rows x cols. */
  void (*pipeline_3d)(void *pool, int64_t planes, int64_t rows, int64_t cols,
                      void (*cell)(void *env, int64_t p, int64_t r,
                                   int64_t c),
                      void *env);

  /* runtime::pipelineDynamic2D over a ragged grid: row r has row_cols[r]
     cells; need(env, r, c) is the row-relative await count into row r-1. */
  void (*pipeline_dynamic_2d)(void *pool, const int64_t *row_cols,
                              int64_t rows,
                              int64_t (*need)(void *env, int64_t r,
                                              int64_t c),
                              void (*cell)(void *env, int64_t r, int64_t c),
                              void *env);

  /* ThreadPool::threadCount / ThreadPool::currentTid. */
  unsigned (*thread_count)(void *pool);
  unsigned (*current_tid)(void);

  /* Spawn-site accounting: count(POLYAST_COUNT_*) per construct entered,
     count_fallback(note) per marked loop emitted as a sequential nest. */
  void (*count)(int what);
  void (*count_fallback)(const char *note);

  /* ABI v2: construct-level attribution hooks. The emitter brackets every
     runtime construct dispatch (one pair per dynamic encounter, fired even
     when the trip space is empty — same semantics as count). `id` is the
     construct's pre-order index (ir::collectParallelConstructs), `kind` is
     ir::parallelKindName text, `iter` the marked loop's iterator. When no
     tracer or profiler is active, polyast_runtime_api_get() returns a
     table whose hook entries are no-op functions — the kernel-side cost of
     disabled attribution is one indirect call per construct encounter. */
  void (*construct_enter)(int64_t id, const char *kind, const char *iter);
  void (*construct_exit)(int64_t id);
} polyast_runtime_api;

/* What the backend passes to the kernel entry point
   (polyast_kernel_run). params follow Program::params order, buffers
   Program::arrays order. */
typedef struct polyast_kernel_args {
  const int64_t *params;
  double *const *buffers;
  void *pool; /* runtime::ThreadPool* */
  const polyast_runtime_api *rt;
} polyast_kernel_args;

/* The process-wide runtime table (function pointers into src/runtime). */
const polyast_runtime_api *polyast_runtime_api_get(void);

#ifdef __cplusplus
} /* extern "C" */

#include <string>
#include <vector>

namespace polyast::runtime::capi {

/// Snapshot of the spawn-site counters one kernel invocation produced.
/// Field names mirror exec::ParallelRunReport.
struct RunCounters {
  std::int64_t doallLoops = 0;
  std::int64_t guidedLoops = 0;
  std::int64_t reductionLoops = 0;
  std::int64_t pipelineLoops = 0;
  std::int64_t pipelineDynamicLoops = 0;
  std::int64_t pipeline3dLoops = 0;
  std::int64_t reductionPipelineLoops = 0;
  std::int64_t sequentialFallbacks = 0;
  std::vector<std::string> notes;  ///< one per count_fallback call
};

/// Zeroes the process-global counters (call before the kernel entry).
/// The counters are process-global like the obs registry: one native
/// kernel invocation at a time.
void resetRunCounters();

/// Returns the counters accumulated since the last reset.
RunCounters takeRunCounters();

}  // namespace polyast::runtime::capi

#endif /* __cplusplus */
