// SCoP extraction: builds the polyhedral view (Sec. III-A) of a Program.
//
// For every statement we compute its iteration domain as an IntSet over
// [iterators..., parameters...], and its list of array accesses with affine
// subscript functions. The extraction requires static control: every loop
// bound part must be affine in outer iterators and parameters (which the IR
// guarantees by construction).
//
// Parameters are treated as unknowns with a configurable lower bound
// (`paramMin`), matching the usual "parameters are large enough" assumption
// of polyhedral optimizers: legality decisions are made for all parameter
// values >= paramMin.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "intset/intset.hpp"
#include "ir/ast.hpp"

namespace polyast::poly {

struct Access {
  std::string array;
  bool isWrite = false;
  std::vector<ir::AffExpr> subs;
};

/// One statement of the SCoP with its polyhedral context.
struct PolyStmt {
  std::shared_ptr<ir::Stmt> stmt;
  /// Enclosing loop iterators, outermost first.
  std::vector<std::string> iters;
  /// The enclosing ir::Loop nodes (used to find common loops syntactically).
  std::vector<std::shared_ptr<ir::Loop>> loops;
  /// Iteration domain over [iters..., params..., exists...]. The trailing
  /// existential variables model loop strides: a loop with step s > 1 and
  /// a single-part lower bound L contributes `iter - L == s*q`.
  IntSet domain;
  /// Number of trailing existential (stride) variables in `domain`.
  std::size_t numExists = 0;
  /// False when some stepped enclosing loop has a multi-part lower bound
  /// (e.g. unrolled point loops): the stride cannot be pinned affinely and
  /// `domain` over-approximates the instance set (extra phantom points,
  /// never missing ones). Analyses demote error diagnostics on such
  /// statements to warnings.
  bool exactStrides = true;
  /// Write access (the lhs) followed by all read accesses.
  std::vector<Access> accesses;
  /// Position path in the AST: interleaved (sequence position, loop, ...)
  /// used to decide original textual order; entry 2k is the position among
  /// the children of the k-th enclosing block.
  std::vector<int> path;
};

struct ScopOptions {
  /// Every program parameter is assumed >= paramMin.
  std::int64_t paramMin = 4;
};

struct Scop {
  const ir::Program* program = nullptr;
  std::vector<std::string> params;
  ScopOptions options;
  std::vector<PolyStmt> stmts;

  const PolyStmt& byId(int stmtId) const;
  /// Number of syntactically common enclosing loops of two statements.
  std::size_t commonLoops(const PolyStmt& a, const PolyStmt& b) const;
  /// True iff statement a is textually before statement b in the AST.
  bool textuallyBefore(const PolyStmt& a, const PolyStmt& b) const;
};

/// Extracts the polyhedral view. Throws if a loop bound is not affine.
/// Loops with non-unit steps are modeled with existential stride
/// variables (see PolyStmt::numExists); a stepped loop whose lower bound
/// is not a single affine part is over-approximated and clears
/// PolyStmt::exactStrides.
Scop extractScop(const ir::Program& program, ScopOptions options = {});

}  // namespace polyast::poly
