#include "poly/schedule.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace polyast::poly {

using ir::AffExpr;

Schedule Schedule::identity(std::size_t d) {
  Schedule s;
  s.beta.assign(d + 1, 0);
  s.alpha = IntMatrix::identity(d);
  s.shift.assign(d, AffExpr(0));
  return s;
}

std::size_t Schedule::sourceIter(std::size_t level) const {
  POLYAST_CHECK(level < depth(), "schedule level out of range");
  for (std::size_t j = 0; j < depth(); ++j)
    if (alpha.at(level, j) != 0) return j;
  POLYAST_CHECK(false, "zero alpha row in schedule");
}

std::int64_t Schedule::sign(std::size_t level) const {
  return alpha.at(level, sourceIter(level));
}

std::string Schedule::str() const {
  std::ostringstream os;
  os << "beta=[";
  for (std::size_t i = 0; i < beta.size(); ++i) {
    if (i) os << " ";
    os << beta[i];
  }
  os << "] alpha=\n" << alpha.str() << "shift=[";
  for (std::size_t i = 0; i < shift.size(); ++i) {
    if (i) os << " ";
    os << shift[i].str();
  }
  os << "]";
  return os.str();
}

ScheduleMap identitySchedules(const Scop& scop) {
  ScheduleMap m;
  // Reproduce the original AST order: beta values follow the statements'
  // block positions at each depth.
  for (const auto& ps : scop.stmts) {
    Schedule s = Schedule::identity(ps.iters.size());
    // path interleaves block positions; entry k of path is the child index
    // inside the k-th enclosing block (one block per loop level + the root).
    for (std::size_t k = 0; k < s.beta.size() && k < ps.path.size(); ++k)
      s.beta[k] = ps.path[k];
    m[ps.stmt->id] = std::move(s);
  }
  return m;
}

std::size_t normalizedRows(const Scop& scop) {
  std::size_t dmax = 0;
  for (const auto& ps : scop.stmts) dmax = std::max(dmax, ps.iters.size());
  // +2 covers one trailing beta row (statements fused through their whole
  // depth and ordered by an extra interleaving coefficient).
  return 2 * dmax + 3;
}

namespace {

/// Timestamp row `row` of a statement as a linear expression over the joint
/// dependence space [src iters (srcDim), dst iters (dstDim), params].
/// `offset` selects which block of iterator columns belongs to the
/// statement. Rows beyond the statement's own 2d+1 rows are constant 0.
LinExpr timestampRow(const Scop& scop, const Schedule& sched,
                     std::size_t row, std::size_t offset,
                     std::size_t jointSize) {
  LinExpr e = LinExpr::constantExpr(0, jointSize);
  std::size_t d = sched.depth();
  if (row % 2 == 0) {
    std::size_t k = row / 2;
    if (k < sched.beta.size()) e.constant = sched.beta[k];
    return e;
  }
  std::size_t k = row / 2;  // alpha row index
  if (k >= d) return e;
  for (std::size_t j = 0; j < d; ++j)
    e.coeffs[offset + j] = sched.alpha.at(k, j);
  const AffExpr& c = sched.shift[k];
  e.constant += c.constant();
  std::size_t paramBase = jointSize - scop.params.size();
  for (const auto& [name, coeff] : c.coeffs()) {
    auto pt = std::find(scop.params.begin(), scop.params.end(), name);
    POLYAST_CHECK(pt != scop.params.end(),
                  "schedule shift must be affine in the parameters: " + name);
    e.coeffs[paramBase + static_cast<std::size_t>(pt - scop.params.begin())] +=
        coeff;
  }
  return e;
}

}  // namespace

DepStatus checkDependence(const Scop& scop, const Dependence& dep,
                          const ScheduleMap& schedules, std::size_t numRows) {
  auto sIt = schedules.find(dep.srcId);
  auto dIt = schedules.find(dep.dstId);
  POLYAST_CHECK(sIt != schedules.end() && dIt != schedules.end(),
                "missing schedule for dependence endpoint");
  const Schedule& ss = sIt->second;
  const Schedule& ds = dIt->second;
  std::size_t n = dep.poly.numVars();

  // Accumulate equality constraints "rows < l are equal" while scanning.
  IntSet prefixEq = dep.poly;
  for (std::size_t row = 0; row < numRows; ++row) {
    LinExpr src = timestampRow(scop, ss, row, 0, n);
    LinExpr dst = timestampRow(scop, ds, row, dep.srcDim, n);
    LinExpr diff = dst - src;  // want >= 0, strict somewhere

    // Violation at this row: prefix equal and diff <= -1.
    IntSet bad = prefixEq;
    {
      std::vector<std::int64_t> coeffs = diff.coeffs;
      for (auto& c : coeffs) c = -c;
      bad.addInequality(std::move(coeffs), -diff.constant - 1);
    }
    if (!bad.isEmpty()) return DepStatus::Violated;

    // Continue with pairs still tied at this row.
    prefixEq.addEquality(diff.coeffs, diff.constant);
    if (prefixEq.isEmpty()) return DepStatus::Carried;
  }
  return DepStatus::Respected;
}

std::string reductionModeName(ReductionMode m) {
  return m == ReductionMode::Relaxed ? "relaxed" : "strict";
}

bool scheduleIsLegal(const Scop& scop, const PoDG& podg,
                     const ScheduleMap& schedules, ReductionMode mode) {
  std::size_t rows = normalizedRows(scop);
  for (const auto& dep : podg.deps) {
    if (dep.kind == DepKind::Input) continue;
    if (mode == ReductionMode::Relaxed && dep.relaxable()) continue;
    if (checkDependence(scop, dep, schedules, rows) != DepStatus::Carried)
      return false;
  }
  return true;
}

}  // namespace polyast::poly
