// Affine schedules in the paper's restricted 2d+1 form (Sec. III-A) and
// dependence-based legality checking.
//
// A statement with d enclosing loops gets a (2d+1)-row timestamp:
//   row 2k   (k = 0..d):  beta_k  — multidimensional statement interleaving
//                         (fusion / distribution / code motion)
//   row 2k+1 (k = 0..d-1): alpha_k · x + c_k — alpha is one signed unit row
//                         of a signed permutation matrix (permutation +
//                         reversal), c_k an affine shift in the parameters
//                         (multidimensional retiming).
// Invertibility is by construction: alpha is a signed permutation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/expr.hpp"
#include "poly/dependence.hpp"
#include "poly/scop.hpp"
#include "support/int_matrix.hpp"

namespace polyast::poly {

struct Schedule {
  std::vector<std::int64_t> beta;  ///< size d+1
  IntMatrix alpha;                 ///< d x d signed permutation
  std::vector<ir::AffExpr> shift;  ///< size d; affine in params only

  static Schedule identity(std::size_t d);
  std::size_t depth() const { return shift.size(); }

  /// Original iterator index placed at transformed level k, and its sign.
  std::size_t sourceIter(std::size_t level) const;
  std::int64_t sign(std::size_t level) const;

  std::string str() const;
};

/// Schedules keyed by statement id.
using ScheduleMap = std::map<int, Schedule>;

/// Identity schedules reproducing the original AST order.
ScheduleMap identitySchedules(const Scop& scop);

/// Outcome of checking one dependence against a prefix of timestamp rows.
enum class DepStatus {
  Violated,   ///< some instance pair is executed in the wrong order
  Respected,  ///< no violation, but some pairs still tie (resolved deeper)
  Carried,    ///< every pair strictly ordered within the prefix
};

/// Checks the dependence against the first `numRows` rows of the
/// normalized (padded to the program's maximal depth) timestamps.
/// Pass `normalizedRows(scop)` to check the complete schedules.
DepStatus checkDependence(const Scop& scop, const Dependence& dep,
                          const ScheduleMap& schedules, std::size_t numRows);

/// Reduction handling of the legality oracle (ROADMAP item 4). `Strict`
/// treats accumulation dependences as ordinary carried edges; `Relaxed`
/// drops edges whose static purity proof succeeded
/// (`Dependence::relaxable()`) from legality decisions — every schedule
/// chosen this way must afterwards be re-proven safe by the `reductions`
/// analysis pass (each dropped edge must land inside a construct the
/// executor privatizes).
enum class ReductionMode { Strict, Relaxed };

std::string reductionModeName(ReductionMode m);

/// Number of rows of the normalized timestamp space: 2*Dmax + 1.
std::size_t normalizedRows(const Scop& scop);

/// Full legality: every dependence is carried by the complete schedules.
/// Under `ReductionMode::Relaxed`, proven-relaxable accumulation edges are
/// exempt (the caller owes their safety to the reductions analysis pass).
bool scheduleIsLegal(const Scop& scop, const PoDG& podg,
                     const ScheduleMap& schedules,
                     ReductionMode mode = ReductionMode::Strict);

}  // namespace polyast::poly
