#include "poly/codegen.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/error.hpp"

namespace polyast::poly {

using ir::AffExpr;

namespace {

/// Per-statement transformed view.
struct TStmt {
  const PolyStmt* ps = nullptr;
  const Schedule* sched = nullptr;
  /// Transformed domain over [c_1..c_d, params...].
  IntSet domain;
  /// Bounds of level k (0-based) as affine expressions over outer new
  /// iterators and params; lower inclusive, upper exclusive.
  std::vector<std::vector<AffExpr>> lowers, uppers;
  std::shared_ptr<ir::Stmt> newStmt;
};

std::string levelName(const CodegenOptions& opt, std::size_t level) {
  return opt.iterPrefix + std::to_string(level + 1);
}

/// Converts a constraint row over [c_1..c_k-1 outer, params] (c_k removed)
/// into an AffExpr using the level names.
AffExpr rowToAff(const std::vector<std::int64_t>& coeffs,
                 std::int64_t constant, std::size_t numOuter,
                 const std::vector<std::string>& params,
                 const CodegenOptions& opt) {
  AffExpr e(constant);
  for (std::size_t i = 0; i < numOuter; ++i)
    if (coeffs[i] != 0) e += AffExpr::term(levelName(opt, i), coeffs[i]);
  for (std::size_t p = 0; p < params.size(); ++p)
    if (coeffs[numOuter + p] != 0)
      e += AffExpr::term(params[p], coeffs[numOuter + p]);
  return e;
}

/// Removes redundant parts from a lower/upper part list: part i is redundant
/// if the set restricted by all the *other* parts cannot violate it.
std::vector<AffExpr> pruneParts(const IntSet& projected, std::size_t varIdx,
                                std::vector<AffExpr> parts, bool isLower,
                                std::size_t numOuter,
                                const std::vector<std::string>& params,
                                const CodegenOptions& opt) {
  // Dedupe first.
  std::vector<AffExpr> uniq;
  for (const auto& p : parts)
    if (std::find(uniq.begin(), uniq.end(), p) == uniq.end())
      uniq.push_back(p);
  parts = std::move(uniq);
  if (parts.size() <= 1) return parts;

  auto affToRow = [&](const AffExpr& a) {
    std::vector<std::int64_t> row(projected.numVars(), 0);
    std::int64_t c = a.constant();
    for (const auto& [name, coeff] : a.coeffs()) {
      bool found = false;
      for (std::size_t i = 0; i < numOuter; ++i)
        if (name == levelName(opt, i)) {
          row[i] = coeff;
          found = true;
          break;
        }
      if (found) continue;
      for (std::size_t p = 0; p < params.size(); ++p)
        if (name == params[p]) {
          row[numOuter + 1 + p] = coeff;
          found = true;
          break;
        }
      POLYAST_CHECK(found, "unknown name in bound part: " + name);
    }
    return std::make_pair(row, c);
  };

  std::vector<AffExpr> kept;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    // Test whether part i can be violated while all other parts (and the
    // projected set's own constraints) hold.
    IntSet test = projected;
    for (std::size_t j = 0; j < parts.size(); ++j) {
      auto [row, c] = affToRow(parts[j]);
      if (j == i) {
        if (isLower) {
          // violation: var <= part - 1  =>  part - var - 1 >= 0
          row[varIdx] -= 1;
          test.addInequality(std::move(row), c - 1);
        } else {
          // violation: var >= part  =>  var - part >= 0
          for (auto& v : row) v = -v;
          row[varIdx] += 1;
          test.addInequality(std::move(row), -c);
        }
      } else {
        if (isLower) {
          // var >= part  =>  var - part >= 0
          for (auto& v : row) v = -v;
          row[varIdx] += 1;
          test.addInequality(std::move(row), -c);
        } else {
          // var < part  =>  part - var - 1 >= 0
          row[varIdx] -= 1;
          test.addInequality(std::move(row), c - 1);
        }
      }
    }
    if (!test.isEmpty()) kept.push_back(parts[i]);
  }
  if (kept.empty()) kept.push_back(parts.front());
  return kept;
}

/// Extracts per-level bounds of the transformed domain.
void computeBounds(TStmt& t, const Scop& scop, const CodegenOptions& opt) {
  std::size_t d = t.sched->depth();
  std::size_t np = scop.params.size();
  t.lowers.resize(d);
  t.uppers.resize(d);
  for (std::size_t k = 0; k < d; ++k) {
    // Keep [c_1..c_k, params]; variable of interest is index k.
    std::vector<std::size_t> keep;
    for (std::size_t i = 0; i <= k; ++i) keep.push_back(i);
    for (std::size_t p = 0; p < np; ++p) keep.push_back(d + p);
    IntSet proj = t.domain.project(keep);
    POLYAST_CHECK(!proj.isEmpty(), "empty transformed domain");
    for (const auto& c : proj.constraints()) {
      std::int64_t a = c.coeffs[k];
      if (a == 0) continue;
      POLYAST_CHECK(a == 1 || a == -1 || c.isEquality,
                    "non-unit bound coefficient outside restricted class");
      // Build `rest` with the c_k column removed, keeping outer + params.
      std::vector<std::int64_t> rest;
      rest.reserve(c.coeffs.size() - 1);
      for (std::size_t i = 0; i < c.coeffs.size(); ++i)
        if (i != k) rest.push_back(c.coeffs[i]);
      if (c.isEquality) {
        POLYAST_CHECK(a == 1 || a == -1,
                      "non-unit equality coefficient in bounds");
        // a*ck + rest + const == 0  =>  ck == -(rest+const)/a
        std::vector<std::int64_t> r = rest;
        std::int64_t cc = c.constant;
        if (a == 1)
          for (auto& v : r) v = -v;
        std::int64_t k0 = a == 1 ? -cc : cc;
        AffExpr val = rowToAff(r, k0, k, scop.params, opt);
        t.lowers[k].push_back(val);
        t.uppers[k].push_back(val + AffExpr(1));
      } else if (a == 1) {
        // ck + rest + const >= 0  =>  ck >= -(rest + const)
        std::vector<std::int64_t> r = rest;
        for (auto& v : r) v = -v;
        t.lowers[k].push_back(rowToAff(r, -c.constant, k, scop.params, opt));
      } else {
        // -ck + rest + const >= 0  =>  ck <= rest + const  (upper exclusive)
        t.uppers[k].push_back(
            rowToAff(rest, c.constant + 1, k, scop.params, opt));
      }
    }
    POLYAST_CHECK(!t.lowers[k].empty() && !t.uppers[k].empty(),
                  "unbounded loop level in transformed domain");
    t.lowers[k] = pruneParts(t.domain.project(keep), k, std::move(t.lowers[k]),
                             /*isLower=*/true, k, scop.params, opt);
    t.uppers[k] = pruneParts(t.domain.project(keep), k, std::move(t.uppers[k]),
                             /*isLower=*/false, k, scop.params, opt);
  }
}

/// Builds the transformed statement (subscripts/rhs rewritten into the new
/// iterators).
void buildNewStmt(TStmt& t, const CodegenOptions& opt) {
  auto s = std::static_pointer_cast<ir::Stmt>(t.ps->stmt->clone());
  std::size_t d = t.sched->depth();
  // Simultaneous substitution old_j -> sign_k * c_k - sign_k * shift_k is
  // safe sequentially because the new names are fresh.
  for (std::size_t k = 0; k < d; ++k) {
    std::size_t j = t.sched->sourceIter(k);
    std::int64_t sg = t.sched->sign(k);
    AffExpr repl = AffExpr::term(levelName(opt, k), sg) +
                   t.sched->shift[k] * -sg;
    const std::string& oldName = t.ps->iters[j];
    for (auto& sub : s->lhsSubs) sub = sub.substituted(oldName, repl);
    for (auto& g : s->guards) g = g.substituted(oldName, repl);
    for (auto& o : s->origin) o = o.substituted(oldName, repl);
    s->rhs = ir::substituteIter(s->rhs, oldName, repl);
  }
  t.newStmt = std::move(s);
}

/// Computes the transformed domain over [c_1..c_d, params].
IntSet transformDomain(const PolyStmt& ps, const Schedule& sched,
                       const Scop& scop, const CodegenOptions& opt) {
  std::size_t d = sched.depth();
  std::size_t np = scop.params.size();
  std::vector<std::string> names;
  for (std::size_t k = 0; k < d; ++k) names.push_back(levelName(opt, k));
  names.insert(names.end(), scop.params.begin(), scop.params.end());
  IntSet out(names);
  // Old iterator j at level k(j): old_j = sign * c_k - sign * shift_k.
  std::vector<std::size_t> levelOf(d);
  for (std::size_t k = 0; k < d; ++k) levelOf[sched.sourceIter(k)] = k;
  for (const auto& c : ps.domain.constraints()) {
    std::vector<std::int64_t> row(d + np, 0);
    std::int64_t constant = c.constant;
    for (std::size_t j = 0; j < d; ++j) {
      std::int64_t coeff = c.coeffs[j];
      if (coeff == 0) continue;
      std::size_t k = levelOf[j];
      std::int64_t sg = sched.sign(k);
      row[k] += coeff * sg;
      // -coeff * sign * shift_k contributes to params/constant.
      const AffExpr& sh = sched.shift[k];
      constant -= coeff * sg * sh.constant();
      for (const auto& [name, pc] : sh.coeffs()) {
        auto pt = std::find(scop.params.begin(), scop.params.end(), name);
        POLYAST_CHECK(pt != scop.params.end(),
                      "shift must be affine in params: " + name);
        row[d + static_cast<std::size_t>(pt - scop.params.begin())] -=
            coeff * sg * pc;
      }
    }
    for (std::size_t p = 0; p < np; ++p) row[d + p] += c.coeffs[d + p];
    Constraint nc;
    nc.coeffs = std::move(row);
    nc.constant = constant;
    nc.isEquality = c.isEquality;
    out.addConstraint(std::move(nc));
  }
  return out;
}

/// Merges the bound part lists of the statements fused at one level. All
/// statements must agree up to the constant term of single-part bounds;
/// statements that do not span the full merged range get guards.
struct MergedBound {
  std::vector<AffExpr> parts;
};

/// True iff `a <= b` (isLower) or `a >= b` (!isLower) for every value of
/// the free variables, under the parameter-minimum assumption. Outer loop
/// iterators are left unconstrained, which makes the test conservative.
bool dominates(const AffExpr& a, const AffExpr& b, bool isLower,
               const Scop& scop) {
  std::vector<std::string> names;
  auto collect = [&names](const AffExpr& e) {
    for (const auto& [n2, c] : e.coeffs()) {
      (void)c;
      if (std::find(names.begin(), names.end(), n2) == names.end())
        names.push_back(n2);
    }
  };
  collect(a);
  collect(b);
  IntSet set(names);
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (std::find(scop.params.begin(), scop.params.end(), names[i]) !=
        scop.params.end()) {
      std::vector<std::int64_t> row(names.size(), 0);
      row[i] = 1;
      set.addInequality(std::move(row), -scop.options.paramMin);
    }
  }
  // Violation: a - b >= 1 (isLower) or b - a >= 1 (!isLower).
  AffExpr diff = isLower ? a - b : b - a;
  std::vector<std::int64_t> row(names.size(), 0);
  for (std::size_t i = 0; i < names.size(); ++i) row[i] = diff.coeff(names[i]);
  set.addInequality(std::move(row), diff.constant() - 1);
  return set.isEmpty();
}

MergedBound mergeBounds(const Scop& scop,
                        const std::vector<const TStmt*>& group, std::size_t k,
                        bool isLower) {
  const auto& first =
      isLower ? group.front()->lowers[k] : group.front()->uppers[k];
  bool allSame = true;
  for (const TStmt* t : group) {
    const auto& parts = isLower ? t->lowers[k] : t->uppers[k];
    if (!(parts == first)) allSame = false;
  }
  if (allSame) return {first};
  // Differing bounds: each statement must have a single part; the merged
  // loop bound is a part that covers (dominates) every other — smallest
  // lower bound / largest upper bound for all variable values.
  std::vector<AffExpr> candidates;
  for (const TStmt* t : group) {
    const auto& parts = isLower ? t->lowers[k] : t->uppers[k];
    POLYAST_CHECK(parts.size() == 1,
                  "cannot fuse statements with multi-part differing bounds");
    candidates.push_back(parts.front());
  }
  for (const AffExpr& cand : candidates) {
    bool coversAll = true;
    for (const AffExpr& other : candidates) {
      if (cand == other) continue;
      if (!dominates(cand, other, isLower, scop)) {
        coversAll = false;
        break;
      }
    }
    if (coversAll) return {{cand}};
  }
  POLYAST_CHECK(false,
                "cannot fuse statements: no bound dominates the others");
}

/// Emits guards on a statement when its own bounds are tighter than the
/// fused loop's bounds.
void addGuards(const TStmt& t, std::size_t k, const MergedBound& lo,
               const MergedBound& hi, const CodegenOptions& opt,
               ir::Stmt& s) {
  AffExpr ck = AffExpr::term(levelName(opt, k));
  for (const auto& part : t.lowers[k]) {
    if (std::find(lo.parts.begin(), lo.parts.end(), part) != lo.parts.end())
      continue;
    s.guards.push_back(ck - part);  // ck - lower >= 0
  }
  for (const auto& part : t.uppers[k]) {
    if (std::find(hi.parts.begin(), hi.parts.end(), part) != hi.parts.end())
      continue;
    s.guards.push_back(part - ck - AffExpr(1));  // upper - 1 - ck >= 0
  }
}

void buildTree(const Scop& scop, std::vector<TStmt*> stmts, std::size_t k,
               const std::shared_ptr<ir::Block>& parent,
               const CodegenOptions& opt) {
  // Group by beta_k, emit groups in increasing beta order.
  std::map<std::int64_t, std::vector<TStmt*>> groups;
  for (TStmt* t : stmts) {
    POLYAST_CHECK(k < t->sched->beta.size(), "beta vector too short");
    groups[t->sched->beta[k]].push_back(t);
  }
  for (auto& [beta, group] : groups) {
    (void)beta;
    bool anyLeaf = false, anyLoop = false;
    for (TStmt* t : group)
      (t->sched->depth() == k ? anyLeaf : anyLoop) = true;
    POLYAST_CHECK(!(anyLeaf && anyLoop),
                  "beta group mixes leaf statements and loops");
    if (anyLeaf) {
      // Leaf statements tied at this beta are ordered by the trailing beta
      // row, when present (schedules fused through their whole depth).
      std::stable_sort(group.begin(), group.end(),
                       [k](const TStmt* a, const TStmt* b) {
                         auto trailing = [k](const TStmt* t) {
                           return k + 1 < t->sched->beta.size()
                                      ? t->sched->beta[k + 1]
                                      : 0;
                         };
                         return trailing(a) < trailing(b);
                       });
      for (TStmt* t : group) parent->children.push_back(t->newStmt);
      continue;
    }
    std::vector<const TStmt*> cgroup(group.begin(), group.end());
    MergedBound lo = mergeBounds(scop, cgroup, k, /*isLower=*/true);
    MergedBound hi = mergeBounds(scop, cgroup, k, /*isLower=*/false);
    auto loop = std::make_shared<ir::Loop>();
    loop->iter = levelName(opt, k);
    loop->lower.parts = lo.parts;
    loop->upper.parts = hi.parts;
    for (TStmt* t : group) addGuards(*t, k, lo, hi, opt, *t->newStmt);
    parent->children.push_back(loop);
    buildTree(scop, std::move(group), k + 1, loop->body, opt);
  }
}

}  // namespace

ir::Program applySchedules(const Scop& scop, const ScheduleMap& schedules,
                           const CodegenOptions& options) {
  POLYAST_CHECK(scop.program != nullptr, "scop without program");
  ir::Program out;
  out.name = scop.program->name + "_scheduled";
  out.params = scop.program->params;
  out.paramDefaults = scop.program->paramDefaults;
  out.arrays = scop.program->arrays;

  std::vector<TStmt> tstmts(scop.stmts.size());
  for (std::size_t i = 0; i < scop.stmts.size(); ++i) {
    const PolyStmt& ps = scop.stmts[i];
    auto it = schedules.find(ps.stmt->id);
    POLYAST_CHECK(it != schedules.end(),
                  "missing schedule for statement " + ps.stmt->label);
    const Schedule& sched = it->second;
    POLYAST_CHECK(ps.numExists == 0,
                  "codegen does not support stride (existential) domains");
    POLYAST_CHECK(sched.depth() == ps.iters.size(),
                  "schedule depth mismatch for " + ps.stmt->label);
    POLYAST_CHECK(sched.alpha.isSignedPermutation(),
                  "alpha must be a signed permutation");
    TStmt& t = tstmts[i];
    t.ps = &ps;
    t.sched = &sched;
    t.domain = transformDomain(ps, sched, scop, options);
    computeBounds(t, scop, options);
    buildNewStmt(t, options);
  }
  std::vector<TStmt*> all;
  all.reserve(tstmts.size());
  for (auto& t : tstmts) all.push_back(&t);
  buildTree(scop, std::move(all), 0, out.root, options);
  return out;
}

}  // namespace polyast::poly
