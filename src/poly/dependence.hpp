// Data-dependence analysis (Sec. III-A): dependence polyhedra, the
// polyhedral dependence graph (PoDG), SCC computation, and the
// dependence-vector summarization consumed by the AST-based stage (Sec. IV).
//
// This replaces the Candl tool used by the paper's implementation. For every
// pair of accesses to the same array with at least one write, and for every
// dependence level (loop-carried at each common depth, plus loop-independent),
// we build the dependence polyhedron over [src iters, dst iters, params] and
// keep it if non-empty. Emptiness uses the rational relaxation, which can
// only over-approximate (report spurious dependences), never miss one.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "intset/intset.hpp"
#include "poly/scop.hpp"

namespace polyast::poly {

enum class DepKind { Flow, Anti, Output, Input };

std::string depKindName(DepKind k);

/// Classification of accumulation (reduction) dependences, following the
/// mark -> relax -> re-prove scheme of "Polly's Polyhedral Scheduling in
/// the Presence of Reductions". Only `Relaxable` edges may be dropped by
/// the relaxed affine-selection mode; the proof is purely static and the
/// `reductions` analysis pass re-establishes it post-transform.
enum class ReductionClass {
  None,       ///< not an accumulation dependence
  Unproven,   ///< syntactic reduction update, but the purity proof failed
  Relaxable,  ///< proven pure associative/commutative self-accumulation
};

std::string reductionClassName(ReductionClass c);

struct Dependence {
  int srcId = -1;
  int dstId = -1;
  DepKind kind = DepKind::Flow;
  std::string array;
  /// 0 = loop-independent; k >= 1 = carried by the k-th common loop.
  std::size_t level = 0;
  std::size_t srcDim = 0;  ///< #iterators of the source statement
  std::size_t dstDim = 0;  ///< #iterators of the target statement
  /// Indices into the endpoints' PolyStmt::accesses of the conflicting
  /// access pair (used by diagnostics to name the exact edge).
  std::size_t srcAcc = 0;
  std::size_t dstAcc = 0;
  /// Polyhedron over [src iters..., dst iters..., src exists...,
  /// dst exists..., params...]. The existential stride columns are only
  /// present when an endpoint has stepped loops; parameters are always
  /// the trailing columns.
  IntSet poly;
  /// Both endpoints are the same reduction-update statement and the
  /// dependence flows through the accumulated cell; `Relaxable` only after
  /// the static purity proof succeeded (operator whitelist, single
  /// read-modify-write of one cell, no intervening may-alias write inside
  /// the carrying loop).
  ReductionClass reduction = ReductionClass::None;
  /// Provenance of the classification: accumulation operator token
  /// ("+=" / "-=") and the proof (or the reason the proof failed).
  std::string reductionOp;
  std::string reductionWhy;

  bool fromReduction() const { return reduction != ReductionClass::None; }
  bool relaxable() const { return reduction == ReductionClass::Relaxable; }
};

/// The polyhedral dependence (multi-)graph: one edge per dependence
/// polyhedron.
struct PoDG {
  std::vector<Dependence> deps;
  /// Indices into `deps` of edges between the given statements.
  std::vector<std::size_t> edgesBetween(int srcId, int dstId) const;
};

/// Builds the joint pair space [src iters, dst iters, src exists,
/// dst exists, params] with both statements' domain constraints added —
/// the common prefix of every dependence-polyhedron construction, also
/// used by the legality analysis (src/analysis) to re-order baseline
/// dependences under a transformed program.
IntSet jointPairSpace(const Scop& scop, const PolyStmt& src,
                      const PolyStmt& dst);

/// Computes all flow/anti/output (and optionally input) dependences.
PoDG computeDependences(const Scop& scop, bool includeInput = false);

/// The static purity proof behind `Dependence::reduction`: classifies the
/// self-accumulation dependence of `ps` carried at `level` (>= 1). Returns
/// `Relaxable` iff the statement is a whitelisted associative/commutative
/// update (`+=` / `-=`), every access it makes to the accumulator array
/// names the same cell (single read-modify-write), and no other statement
/// nested inside the carrying loop writes (may-alias) the accumulator
/// array. `op` receives the operator token, `why` the proof summary or the
/// rejection reason. Exposed so the post-transform `reductions` analysis
/// pass re-proves exactly the predicate the scheduler relied on.
ReductionClass classifySelfAccumulation(const Scop& scop, const PolyStmt& ps,
                                        std::size_t level, std::string* op,
                                        std::string* why);

/// Strongly connected components of the statement graph induced by the
/// dependences selected by `edgeFilter` (input deps are normally excluded).
/// Components are returned in a topological order of the condensation
/// (sources first).
std::vector<std::vector<int>> stronglyConnectedComponents(
    const std::vector<int>& stmtIds, const PoDG& podg,
    const std::vector<bool>& edgeEnabled);

/// One element of a dependence distance vector at some loop level.
struct DepVectorElem {
  std::optional<std::int64_t> min;  ///< nullopt = unbounded below
  std::optional<std::int64_t> max;  ///< nullopt = unbounded above
  bool isExact() const { return min && max && *min == *max; }
  bool isZero() const { return isExact() && *min == 0; }
  bool isNonNegative() const { return min && *min >= 0; }
  bool isPositive() const { return min && *min >= 1; }
  bool isNegativePossible() const { return !min || *min < 0; }
  std::string str() const;
};

/// Distance summary of one dependence over the common loops of its
/// endpoints (Sec. IV-A: "dependence vectors ... offer sufficient accuracy
/// for our parallelism detector").
struct DepVector {
  int srcId = -1;
  int dstId = -1;
  DepKind kind = DepKind::Flow;
  ReductionClass reduction = ReductionClass::None;
  std::vector<DepVectorElem> elems;  ///< one per common loop, outer first

  bool fromReduction() const { return reduction != ReductionClass::None; }
  bool relaxable() const { return reduction == ReductionClass::Relaxable; }
};

/// Summarizes every dependence of the PoDG into distance vectors.
std::vector<DepVector> dependenceVectors(const Scop& scop, const PoDG& podg);

}  // namespace polyast::poly
