// Polyhedral code generation for restricted 2d+1 schedules.
//
// This is the (deliberately small) replacement for CLooG: because the
// schedules are limited to fusion/distribution/code-motion (beta), signed
// permutation (alpha) and parameter-affine retiming (c), the generated code
// is a direct reordering of the original loops:
//   * the transformed tree is built by recursively grouping statements on
//     their beta prefix,
//   * per-statement loop bounds at each level are obtained by projecting the
//     transformed iteration domain (Fourier–Motzkin) onto the outer levels,
//   * statements fused into one loop whose domains differ get the loop's
//     union bounds plus affine guards.
// The result is an ordinary ir::Program, executable by the interpreter and
// transformable by the AST-based stage — matching the paper's observation
// that simpler generated loop structure is a feature, not a limitation.
#pragma once

#include "ir/ast.hpp"
#include "poly/schedule.hpp"
#include "poly/scop.hpp"

namespace polyast::poly {

struct CodegenOptions {
  /// Prefix for the generated loop iterator names ("c" gives c1, c2, ...).
  std::string iterPrefix = "c";
};

/// Builds the transformed program implementing `schedules` on `scop`.
/// Throws polyast::Error if the schedule requires bound structures outside
/// the restricted class (see DESIGN.md), or if a schedule is missing.
ir::Program applySchedules(const Scop& scop, const ScheduleMap& schedules,
                           const CodegenOptions& options = {});

}  // namespace polyast::poly
