#include "poly/scop.hpp"

#include <algorithm>
#include <functional>

#include "support/error.hpp"

namespace polyast::poly {

using ir::AffExpr;

namespace {

/// Converts an affine expression into a coefficient row over
/// [iters..., params...]; throws if it references anything else.
std::vector<std::int64_t> toRow(const AffExpr& e,
                                const std::vector<std::string>& iters,
                                const std::vector<std::string>& params,
                                std::int64_t* constant) {
  std::vector<std::int64_t> row(iters.size() + params.size(), 0);
  for (const auto& [name, coeff] : e.coeffs()) {
    auto it = std::find(iters.begin(), iters.end(), name);
    if (it != iters.end()) {
      row[static_cast<std::size_t>(it - iters.begin())] = coeff;
      continue;
    }
    auto pt = std::find(params.begin(), params.end(), name);
    POLYAST_CHECK(pt != params.end(),
                  "non-affine reference in SCoP expression: " + name);
    row[iters.size() + static_cast<std::size_t>(pt - params.begin())] = coeff;
  }
  *constant = e.constant();
  return row;
}

}  // namespace

const PolyStmt& Scop::byId(int stmtId) const {
  for (const auto& s : stmts)
    if (s.stmt->id == stmtId) return s;
  POLYAST_CHECK(false, "unknown statement id " + std::to_string(stmtId));
}

std::size_t Scop::commonLoops(const PolyStmt& a, const PolyStmt& b) const {
  std::size_t n = std::min(a.loops.size(), b.loops.size());
  std::size_t k = 0;
  while (k < n && a.loops[k] == b.loops[k]) ++k;
  return k;
}

bool Scop::textuallyBefore(const PolyStmt& a, const PolyStmt& b) const {
  return std::lexicographical_compare(a.path.begin(), a.path.end(),
                                      b.path.begin(), b.path.end());
}

Scop extractScop(const ir::Program& program, ScopOptions options) {
  Scop scop;
  scop.program = &program;
  scop.params = program.params;
  scop.options = options;

  std::vector<std::shared_ptr<ir::Loop>> loopStack;
  std::vector<int> path;

  std::function<void(const ir::NodePtr&)> walk = [&](const ir::NodePtr& n) {
    switch (n->kind) {
      case ir::Node::Kind::Block: {
        auto b = std::static_pointer_cast<ir::Block>(n);
        for (std::size_t i = 0; i < b->children.size(); ++i) {
          path.push_back(static_cast<int>(i));
          walk(b->children[i]);
          path.pop_back();
        }
        break;
      }
      case ir::Node::Kind::Loop: {
        auto l = std::static_pointer_cast<ir::Loop>(n);
        POLYAST_CHECK(l->step >= 1,
                      "SCoP extraction requires positive-step loops (loop " +
                          l->iter + ")");
        loopStack.push_back(l);
        walk(l->body);
        loopStack.pop_back();
        break;
      }
      case ir::Node::Kind::Stmt: {
        auto st = std::static_pointer_cast<ir::Stmt>(n);
        PolyStmt ps;
        ps.stmt = st;
        ps.loops = loopStack;
        for (const auto& l : loopStack) ps.iters.push_back(l->iter);
        ps.path = path;

        std::size_t nIterPar = ps.iters.size() + scop.params.size();
        auto addBoundsAndGuards = [&](IntSet& set, std::size_t total) {
          auto padded = [&](std::vector<std::int64_t> row) {
            row.resize(total, 0);
            return row;
          };
          for (const auto& l : loopStack) {
            for (const auto& part : l->lower.parts) {
              // iter - part >= 0
              std::int64_t c = 0;
              auto row = toRow(AffExpr::term(l->iter) - part, ps.iters,
                               scop.params, &c);
              set.addInequality(padded(std::move(row)), c);
            }
            for (const auto& part : l->upper.parts) {
              // part - iter - 1 >= 0
              std::int64_t c = 0;
              auto row = toRow(part - AffExpr::term(l->iter), ps.iters,
                               scop.params, &c);
              set.addInequality(padded(std::move(row)), c - 1);
            }
          }
          // Guard constraints (present on already-transformed programs).
          for (const auto& g : st->guards) {
            std::int64_t c = 0;
            auto row = toRow(g, ps.iters, scop.params, &c);
            set.addInequality(padded(std::move(row)), c);
          }
          // Parameter minimums.
          for (std::size_t p = 0; p < scop.params.size(); ++p) {
            std::vector<std::int64_t> row(total, 0);
            row[ps.iters.size() + p] = 1;
            set.addInequality(std::move(row), -options.paramMin);
          }
        };

        // Bound/guard context without stride existentials, used to pick a
        // stride anchor for stepped loops.
        std::vector<std::string> ctxNames = ps.iters;
        ctxNames.insert(ctxNames.end(), scop.params.begin(),
                        scop.params.end());
        IntSet ctx(ctxNames);
        addBoundsAndGuards(ctx, nIterPar);

        // Stepped loops get an existential stride variable anchored at the
        // lower bound (iter - lower == step * q). A max(...) lower bound can
        // still be anchored when one part provably dominates the others over
        // the bound context (e.g. max(0, c2t) under c2t >= 0); otherwise the
        // stride cannot be pinned affinely, the domain over-approximates, and
        // the statement is flagged inexact.
        auto anchorOf = [&](const ir::Loop& l) -> const AffExpr* {
          if (l.lower.isSingle()) return &l.lower.parts.front();
          for (const auto& p : l.lower.parts) {
            bool dominates = true;
            for (const auto& q : l.lower.parts) {
              if (&q == &p) continue;
              std::int64_t c = 0;
              auto row = toRow(q - p, ps.iters, scop.params, &c);
              IntSet test = ctx;
              // q - p - 1 >= 0: some point puts q strictly above p.
              test.addInequality(std::move(row), c - 1);
              if (!test.isEmpty()) {
                dominates = false;
                break;
              }
            }
            if (dominates) return &p;
          }
          return nullptr;
        };

        std::vector<std::string> existNames;
        std::vector<std::size_t> existOfLoop(loopStack.size(),
                                             static_cast<std::size_t>(-1));
        std::vector<const AffExpr*> anchorOfLoop(loopStack.size(), nullptr);
        for (std::size_t k = 0; k < loopStack.size(); ++k) {
          if (loopStack[k]->step == 1) continue;
          anchorOfLoop[k] = anchorOf(*loopStack[k]);
          if (anchorOfLoop[k] == nullptr) {
            ps.exactStrides = false;
            continue;
          }
          existOfLoop[k] = existNames.size();
          existNames.push_back(loopStack[k]->iter + "@q");
        }
        ps.numExists = existNames.size();

        std::vector<std::string> names = ps.iters;
        names.insert(names.end(), scop.params.begin(), scop.params.end());
        names.insert(names.end(), existNames.begin(), existNames.end());
        std::size_t total = names.size();
        ps.domain = IntSet(names);
        addBoundsAndGuards(ps.domain, total);
        for (std::size_t k = 0; k < loopStack.size(); ++k) {
          if (existOfLoop[k] == static_cast<std::size_t>(-1)) continue;
          // iter - anchor - step * q == 0
          std::int64_t c = 0;
          auto row = toRow(
              AffExpr::term(loopStack[k]->iter) - *anchorOfLoop[k], ps.iters,
              scop.params, &c);
          row.resize(total, 0);
          row[nIterPar + existOfLoop[k]] = -loopStack[k]->step;
          ps.domain.addEquality(std::move(row), c);
        }
        // Accesses: write (lhs) first, then reads.
        ps.accesses.push_back({st->lhsArray, /*isWrite=*/true, st->lhsSubs});
        // Compound assignments also read the lhs cell.
        if (st->op != ir::AssignOp::Set)
          ps.accesses.push_back(
              {st->lhsArray, /*isWrite=*/false, st->lhsSubs});
        std::vector<ir::ArrayUse> uses;
        ir::collectArrayUses(st->rhs, uses);
        for (auto& u : uses)
          ps.accesses.push_back(
              {std::move(u.array), /*isWrite=*/false, std::move(u.subs)});
        scop.stmts.push_back(std::move(ps));
        break;
      }
    }
  };
  walk(program.root);
  return scop;
}

}  // namespace polyast::poly
