#include "poly/dependence.hpp"

#include <algorithm>
#include <functional>
#include <map>

#include "obs/metrics.hpp"
#include "obs/selfprof.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace polyast::poly {

namespace selfprof = obs::selfprof;

using ir::AffExpr;

std::string depKindName(DepKind k) {
  switch (k) {
    case DepKind::Flow: return "flow";
    case DepKind::Anti: return "anti";
    case DepKind::Output: return "output";
    case DepKind::Input: return "input";
  }
  return "?";
}

std::string reductionClassName(ReductionClass c) {
  switch (c) {
    case ReductionClass::None: return "none";
    case ReductionClass::Unproven: return "unproven";
    case ReductionClass::Relaxable: return "relaxable";
  }
  return "?";
}

std::vector<std::size_t> PoDG::edgesBetween(int srcId, int dstId) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < deps.size(); ++i)
    if (deps[i].srcId == srcId && deps[i].dstId == dstId) out.push_back(i);
  return out;
}

namespace {

/// Builds the joint space names [src iters, dst iters, src exists,
/// dst exists, params]; source iterators are primed when both statements
/// share names. Parameters stay last so every consumer's
/// `paramBase = jointSize - params.size()` convention holds.
std::vector<std::string> jointNames(const Scop& scop, const PolyStmt& src,
                                    const PolyStmt& dst) {
  std::vector<std::string> names;
  for (const auto& it : src.iters) names.push_back(it + "@s");
  for (const auto& it : dst.iters) names.push_back(it + "@d");
  const auto& srcNames = src.domain.varNames();
  const auto& dstNames = dst.domain.varNames();
  for (std::size_t e = 0; e < src.numExists; ++e)
    names.push_back(srcNames[srcNames.size() - src.numExists + e] + "@s");
  for (std::size_t e = 0; e < dst.numExists; ++e)
    names.push_back(dstNames[dstNames.size() - dst.numExists + e] + "@d");
  for (const auto& p : scop.params) names.push_back(p);
  return names;
}

/// Maps an AffExpr over one statement's [iters, params] to a joint-space
/// constraint row; `offset` positions the statement's iterators.
std::vector<std::int64_t> toJointRow(const AffExpr& e,
                                     const std::vector<std::string>& iters,
                                     std::size_t offset,
                                     const Scop& scop,
                                     std::size_t jointSize,
                                     std::int64_t* constant) {
  std::vector<std::int64_t> row(jointSize, 0);
  std::size_t paramBase = jointSize - scop.params.size();
  for (const auto& [name, coeff] : e.coeffs()) {
    auto it = std::find(iters.begin(), iters.end(), name);
    if (it != iters.end()) {
      row[offset + static_cast<std::size_t>(it - iters.begin())] = coeff;
      continue;
    }
    auto pt = std::find(scop.params.begin(), scop.params.end(), name);
    POLYAST_CHECK(pt != scop.params.end(),
                  "non-affine name in access/domain: " + name);
    row[paramBase + static_cast<std::size_t>(pt - scop.params.begin())] =
        coeff;
  }
  *constant = e.constant();
  return row;
}

/// Copies a statement's domain constraints (over [iters, params, exists])
/// into the joint space; `offset` positions the iterators and `existOffset`
/// the statement's existential stride columns.
void addDomain(IntSet& set, const PolyStmt& ps, std::size_t offset,
               std::size_t existOffset, const Scop& scop) {
  std::size_t n = set.numVars();
  std::size_t paramBase = n - scop.params.size();
  for (const auto& c : ps.domain.constraints()) {
    std::vector<std::int64_t> row(n, 0);
    for (std::size_t i = 0; i < ps.iters.size(); ++i)
      row[offset + i] = c.coeffs[i];
    for (std::size_t p = 0; p < scop.params.size(); ++p)
      row[paramBase + p] = c.coeffs[ps.iters.size() + p];
    for (std::size_t e = 0; e < ps.numExists; ++e)
      row[existOffset + e] =
          c.coeffs[ps.iters.size() + scop.params.size() + e];
    Constraint out;
    out.coeffs = std::move(row);
    out.constant = c.constant;
    out.isEquality = c.isEquality;
    set.addConstraint(std::move(out));
  }
}

DepKind classify(bool srcWrite, bool dstWrite) {
  if (srcWrite && dstWrite) return DepKind::Output;
  if (srcWrite) return DepKind::Flow;
  if (dstWrite) return DepKind::Anti;
  return DepKind::Input;
}

std::string assignOpToken(ir::AssignOp op) {
  switch (op) {
    case ir::AssignOp::Set: return "=";
    case ir::AssignOp::AddAssign: return "+=";
    case ir::AssignOp::SubAssign: return "-=";
    case ir::AssignOp::MulAssign: return "*=";
    case ir::AssignOp::DivAssign: return "/=";
  }
  return "?";
}

}  // namespace

ReductionClass classifySelfAccumulation(const Scop& scop, const PolyStmt& ps,
                                        std::size_t level, std::string* op,
                                        std::string* why) {
  const ir::Stmt& s = *ps.stmt;
  *op = assignOpToken(s.op);
  // (1) Operator whitelist: only += / -= are associative and commutative
  // over the accumulator (a -= x is a += (-x)). The syntactic flag alone is
  // not trusted -- a mutated/corrupted flag must not unlock relaxation.
  if (s.op != ir::AssignOp::AddAssign && s.op != ir::AssignOp::SubAssign) {
    *why = "operator '" + *op + "' is not in the associative/commutative " +
           "whitelist (+=, -=)";
    return ReductionClass::Unproven;
  }
  // (2) Single read-modify-write of one cell: the statement's only
  // accesses to the accumulator array are the lhs write plus the one
  // implicit read-modify-write read of the same cell. An extra rhs read —
  // even of the same cell, as in `a += a*x` — makes the contribution
  // depend on the running value, so reordering is no longer a pure
  // reassociation.
  std::size_t accWrites = 0;
  std::size_t accReads = 0;
  for (const auto& acc : ps.accesses) {
    if (acc.array != s.lhsArray) continue;
    acc.isWrite ? ++accWrites : ++accReads;
    if (acc.subs != s.lhsSubs) {
      *why = "statement touches more than one cell of '" + s.lhsArray + "'";
      return ReductionClass::Unproven;
    }
  }
  if (accWrites != 1 || accReads != 1) {
    *why = "statement is not a single read-modify-write of '" + s.lhsArray +
           "' (" + std::to_string(accWrites) + " write(s), " +
           std::to_string(accReads) + " read(s))";
    return ReductionClass::Unproven;
  }
  // (3) No intervening may-alias write: no other statement nested inside
  // the carrying loop writes the accumulator array — otherwise reordering
  // the accumulation instances could move them across that write.
  // Exception: another pure additive accumulation (+= / -=) into the same
  // array is jointly reassociable with this one (contributions commute and
  // every cross edge between the two statements is retained), so unrolled
  // copies of the update keep their proof on the transformed program.
  // Subscript disambiguation is deliberately not attempted here
  // (may-alias).
  if (level >= 1 && level <= ps.loops.size()) {
    const ir::Loop* carrier = ps.loops[level - 1].get();
    for (const auto& other : scop.stmts) {
      if (other.stmt->id == s.id) continue;
      if (other.stmt->op == ir::AssignOp::AddAssign ||
          other.stmt->op == ir::AssignOp::SubAssign)
        continue;
      bool inside = false;
      for (const auto& l : other.loops)
        if (l.get() == carrier) inside = true;
      if (!inside) continue;
      for (const auto& acc : other.accesses) {
        if (acc.isWrite && acc.array == s.lhsArray) {
          *why = "intervening may-alias write of '" + s.lhsArray + "' by " +
                 other.stmt->label + std::to_string(other.stmt->id) +
                 " inside the carrying loop " + carrier->iter;
          return ReductionClass::Unproven;
        }
      }
    }
  }
  *why = "pure self-accumulation '" + s.lhsArray + " " + *op +
         " ...': single-cell read-modify-write, no intervening writes " +
         "inside carrying loop" +
         (level >= 1 && level <= ps.loops.size()
              ? " " + ps.loops[level - 1]->iter
              : "");
  return ReductionClass::Relaxable;
}

IntSet jointPairSpace(const Scop& scop, const PolyStmt& src,
                      const PolyStmt& dst) {
  IntSet set(jointNames(scop, src, dst));
  std::size_t srcOff = 0;
  std::size_t dstOff = src.iters.size();
  std::size_t srcExOff = src.iters.size() + dst.iters.size();
  std::size_t dstExOff = srcExOff + src.numExists;
  addDomain(set, src, srcOff, srcExOff, scop);
  addDomain(set, dst, dstOff, dstExOff, scop);
  return set;
}

PoDG computeDependences(const Scop& scop, bool includeInput) {
  // Dependence-test outcome counters: every candidate polyhedron is an
  // emptiness test; "proven" edges survive, "disproven" candidates are
  // discarded. The rational relaxation can only over-approximate, so
  // proven counts bound the real dependences from above.
  obs::Registry& reg = obs::Registry::global();
  static obs::Counter& tested = reg.counter("poly.dep.tested");
  static obs::Counter& proven = reg.counter("poly.dep.proven");
  static obs::Counter& disproven = reg.counter("poly.dep.disproven");
  static obs::Counter& reductions = reg.counter("poly.dep.reduction_edges");
  static obs::Counter& relaxableEdges =
      reg.counter("poly.dep.relaxable_edges");
  obs::Span span("poly.dependences", "poly");
  std::int64_t testedHere = 0, provenHere = 0;
  PoDG podg;
  for (const auto& src : scop.stmts) {
    for (const auto& dst : scop.stmts) {
      std::size_t cl = scop.commonLoops(src, dst);
      bool sameStmt = src.stmt->id == dst.stmt->id;
      // Textual order decides whether a loop-independent edge src->dst can
      // exist; for carried levels any pair qualifies.
      bool srcBefore = !sameStmt && scop.textuallyBefore(src, dst);
      for (std::size_t ai = 0; ai < src.accesses.size(); ++ai) {
        const auto& a = src.accesses[ai];
        for (std::size_t bi = 0; bi < dst.accesses.size(); ++bi) {
          const auto& b = dst.accesses[bi];
          if (a.array != b.array) continue;
          if (!a.isWrite && !b.isWrite && !includeInput) continue;
          if (a.subs.size() != b.subs.size()) continue;  // scalar vs array
          DepKind kind = classify(a.isWrite, b.isWrite);

          // Levels: 1..cl carried, plus 0 (loop-independent) when src is
          // textually before dst.
          for (std::size_t level = srcBefore ? 0u : 1u; level <= cl;
               ++level) {
            IntSet set = jointPairSpace(scop, src, dst);
            std::size_t srcOff = 0;
            std::size_t dstOff = src.iters.size();
            // Subscript equalities f_src(x_s) = f_dst(x_d).
            for (std::size_t s = 0; s < a.subs.size(); ++s) {
              std::int64_t c1 = 0, c2 = 0;
              auto r1 = toJointRow(a.subs[s], src.iters, srcOff, scop,
                                   set.numVars(), &c1);
              auto r2 = toJointRow(b.subs[s], dst.iters, dstOff, scop,
                                   set.numVars(), &c2);
              for (std::size_t i = 0; i < r1.size(); ++i) r1[i] -= r2[i];
              set.addEquality(std::move(r1), c1 - c2);
            }
            // Ordering constraints for this level.
            std::size_t eqPrefix = level == 0 ? cl : level - 1;
            for (std::size_t k = 0; k < eqPrefix; ++k) {
              std::vector<std::int64_t> row(set.numVars(), 0);
              row[srcOff + k] = 1;
              row[dstOff + k] = -1;
              set.addEquality(std::move(row), 0);
            }
            if (level >= 1) {
              // x_d[level-1] - x_s[level-1] >= 1
              std::vector<std::int64_t> row(set.numVars(), 0);
              row[srcOff + level - 1] = -1;
              row[dstOff + level - 1] = 1;
              set.addInequality(std::move(row), -1);
            }
            ++testedHere;
            tested.add();
            // Self-profiling extends the poly.dep.* outcome counters with
            // cost: every kSampleEvery-th emptiness test is wall-timed so
            // average per-test cost is recoverable from the profile
            // artifact without two clock reads per test.
            selfprof::count(selfprof::Op::DepTests);
            bool empty;
            if (selfprof::sampleTick()) {
              std::int64_t t0 = selfprof::nowNs();
              empty = set.isEmpty();
              selfprof::count(selfprof::Op::DepSampledNs,
                              selfprof::nowNs() - t0);
              selfprof::count(selfprof::Op::DepSampledTests);
            } else {
              empty = set.isEmpty();
            }
            if (empty) {
              disproven.add();
              selfprof::count(selfprof::Op::DepDisproven);
              continue;
            }
            proven.add();
            selfprof::count(selfprof::Op::DepProven);
            ++provenHere;

            Dependence dep;
            dep.srcId = src.stmt->id;
            dep.dstId = dst.stmt->id;
            dep.kind = kind;
            dep.array = a.array;
            dep.level = level;
            dep.srcDim = src.iters.size();
            dep.dstDim = dst.iters.size();
            dep.srcAcc = ai;
            dep.dstAcc = bi;
            dep.poly = std::move(set);
            // Accumulation edges get the checked classification: the
            // syntactic flag only nominates the edge, the static purity
            // proof decides whether relaxation may ever drop it.
            if (sameStmt && src.stmt->isReductionUpdate &&
                a.array == src.stmt->lhsArray &&
                b.array == src.stmt->lhsArray) {
              dep.reduction = classifySelfAccumulation(
                  scop, src, level, &dep.reductionOp, &dep.reductionWhy);
              reductions.add();
              if (dep.reduction == ReductionClass::Relaxable)
                relaxableEdges.add();
            }
            podg.deps.push_back(std::move(dep));
          }
        }
      }
    }
  }
  span.attr("tested", testedHere);
  span.attr("proven", provenHere);
  span.attr("stmts", static_cast<std::int64_t>(scop.stmts.size()));
  return podg;
}

std::vector<std::vector<int>> stronglyConnectedComponents(
    const std::vector<int>& stmtIds, const PoDG& podg,
    const std::vector<bool>& edgeEnabled) {
  POLYAST_CHECK(edgeEnabled.size() == podg.deps.size(),
                "edgeEnabled size mismatch");
  std::map<int, std::vector<int>> adj;
  for (int id : stmtIds) adj[id];  // ensure vertex exists
  for (std::size_t i = 0; i < podg.deps.size(); ++i) {
    if (!edgeEnabled[i]) continue;
    const auto& d = podg.deps[i];
    if (!adj.count(d.srcId) || !adj.count(d.dstId)) continue;
    if (d.srcId != d.dstId) adj[d.srcId].push_back(d.dstId);
  }
  // Tarjan's algorithm (iterative enough at our sizes to use recursion).
  std::map<int, int> index, low;
  std::map<int, bool> onStack;
  std::vector<int> stack;
  int counter = 0;
  std::vector<std::vector<int>> sccs;
  std::function<void(int)> strongConnect = [&](int v) {
    index[v] = low[v] = counter++;
    stack.push_back(v);
    onStack[v] = true;
    for (int w : adj[v]) {
      if (!index.count(w)) {
        strongConnect(w);
        low[v] = std::min(low[v], low[w]);
      } else if (onStack[w]) {
        low[v] = std::min(low[v], index[w]);
      }
    }
    if (low[v] == index[v]) {
      std::vector<int> comp;
      int w;
      do {
        w = stack.back();
        stack.pop_back();
        onStack[w] = false;
        comp.push_back(w);
      } while (w != v);
      std::sort(comp.begin(), comp.end());
      sccs.push_back(std::move(comp));
    }
  };
  for (int id : stmtIds)
    if (!index.count(id)) strongConnect(id);
  // Tarjan emits components in reverse topological order; flip so sources
  // come first.
  std::reverse(sccs.begin(), sccs.end());
  return sccs;
}

std::string DepVectorElem::str() const {
  if (isExact()) return std::to_string(*min);
  std::string lo = min ? std::to_string(*min) : "-inf";
  std::string hi = max ? std::to_string(*max) : "+inf";
  return "[" + lo + "," + hi + "]";
}

std::vector<DepVector> dependenceVectors(const Scop& scop, const PoDG& podg) {
  // Summarization fallbacks: elements the polyhedron cannot bound become
  // [-inf,+inf]-style entries, forcing the AST stage to assume the worst.
  static obs::Counter& vectors =
      obs::Registry::global().counter("poly.depvec.vectors");
  static obs::Counter& unbounded =
      obs::Registry::global().counter("poly.depvec.unbounded_elems");
  std::vector<DepVector> out;
  for (const auto& dep : podg.deps) {
    const auto& src = scop.byId(dep.srcId);
    const auto& dst = scop.byId(dep.dstId);
    std::size_t cl = scop.commonLoops(src, dst);
    DepVector v;
    v.srcId = dep.srcId;
    v.dstId = dep.dstId;
    v.kind = dep.kind;
    v.reduction = dep.reduction;
    std::size_t n = dep.poly.numVars();
    for (std::size_t k = 0; k < cl; ++k) {
      LinExpr diff = LinExpr::var(dep.srcDim + k, n) - LinExpr::var(k, n);
      DepVectorElem e;
      e.min = dep.poly.minOf(diff);
      e.max = dep.poly.maxOf(diff);
      if (!e.min || !e.max) unbounded.add();
      v.elems.push_back(e);
    }
    vectors.add();
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace polyast::poly
