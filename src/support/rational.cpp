#include "support/rational.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace polyast {

std::int64_t checkedAdd(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  POLYAST_CHECK(!__builtin_add_overflow(a, b, &r), "int64 add overflow");
  return r;
}

std::int64_t checkedMul(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  POLYAST_CHECK(!__builtin_mul_overflow(a, b, &r), "int64 mul overflow");
  return r;
}

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::int64_t lcm64(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return 0;
  std::int64_t g = gcd64(a, b);
  return checkedMul(std::llabs(a) / g, std::llabs(b));
}

std::int64_t floorDiv(std::int64_t a, std::int64_t b) {
  POLYAST_CHECK(b != 0, "floorDiv by zero");
  std::int64_t q = a / b;
  std::int64_t r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}

std::int64_t ceilDiv(std::int64_t a, std::int64_t b) {
  POLYAST_CHECK(b != 0, "ceilDiv by zero");
  std::int64_t q = a / b;
  std::int64_t r = a % b;
  if (r != 0 && ((r < 0) == (b < 0))) ++q;
  return q;
}

Rational::Rational(std::int64_t value) : num_(value), den_(1) {}

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  POLYAST_CHECK(den != 0, "rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_ == 0) {
    den_ = 1;
    return;
  }
  std::int64_t g = gcd64(num_, den_);
  num_ /= g;
  den_ /= g;
}

std::int64_t Rational::asInteger() const {
  POLYAST_CHECK(den_ == 1, "rational is not an integer: " + str());
  return num_;
}

double Rational::toDouble() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = -num_;
  r.den_ = den_;
  return r;
}

Rational Rational::operator+(const Rational& o) const {
  // Reduce before multiplying to delay overflow.
  std::int64_t g = gcd64(den_, o.den_);
  std::int64_t lhs = checkedMul(num_, o.den_ / g);
  std::int64_t rhs = checkedMul(o.num_, den_ / g);
  return Rational(checkedAdd(lhs, rhs), checkedMul(den_ / g, o.den_));
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  std::int64_t g1 = gcd64(num_, o.den_);
  std::int64_t g2 = gcd64(o.num_, den_);
  return Rational(checkedMul(num_ / g1, o.num_ / g2),
                  checkedMul(den_ / g2, o.den_ / g1));
}

Rational Rational::operator/(const Rational& o) const {
  POLYAST_CHECK(!o.isZero(), "rational division by zero");
  return *this * Rational(o.den_, o.num_);
}

bool Rational::operator<(const Rational& o) const {
  // num_/den_ < o.num_/o.den_  with positive denominators.
  return checkedMul(num_, o.den_) < checkedMul(o.num_, den_);
}

std::int64_t Rational::floor() const { return floorDiv(num_, den_); }

std::int64_t Rational::ceil() const { return ceilDiv(num_, den_); }

std::string Rational::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  os << r.num();
  if (!r.isInteger()) os << "/" << r.den();
  return os;
}

}  // namespace polyast
