// Exact rational arithmetic on 64-bit integers.
//
// Used by the DL cost model (per-iteration memory costs are fractions of
// cache lines) and by exact Gaussian elimination in the integer-set layer.
// Values are kept normalized (gcd-reduced, positive denominator). Overflow
// of the underlying 64-bit arithmetic is checked.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace polyast {

class Rational {
 public:
  constexpr Rational() = default;
  Rational(std::int64_t value);  // NOLINT(google-explicit-constructor)
  Rational(std::int64_t num, std::int64_t den);

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  bool isZero() const { return num_ == 0; }
  bool isInteger() const { return den_ == 1; }
  /// Integer value; requires isInteger().
  std::int64_t asInteger() const;
  /// Nearest double approximation (for reporting only).
  double toDouble() const;

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;
  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const { return *this < o || *this == o; }
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return o <= *this; }

  /// Largest integer <= value.
  std::int64_t floor() const;
  /// Smallest integer >= value.
  std::int64_t ceil() const;

  std::string str() const;

 private:
  void normalize();

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// Checked 64-bit helpers (throw polyast::Error on overflow).
std::int64_t checkedAdd(std::int64_t a, std::int64_t b);
std::int64_t checkedMul(std::int64_t a, std::int64_t b);
/// gcd(|a|,|b|); gcd(0,0) == 0.
std::int64_t gcd64(std::int64_t a, std::int64_t b);
/// lcm(|a|,|b|); checked.
std::int64_t lcm64(std::int64_t a, std::int64_t b);
/// Floor division a/b with b != 0 (rounds toward negative infinity).
std::int64_t floorDiv(std::int64_t a, std::int64_t b);
/// Ceil division a/b with b != 0 (rounds toward positive infinity).
std::int64_t ceilDiv(std::int64_t a, std::int64_t b);

}  // namespace polyast
