// Dense matrices over 64-bit integers.
//
// Scheduling matrices in the restricted 2d+1 form (Sec. III-A of the paper)
// are integer matrices whose even rows form a signed permutation. This class
// provides the linear algebra that layer needs: products, inverses of
// unimodular matrices, determinants, and signed-permutation checks.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace polyast {

class IntMatrix {
 public:
  IntMatrix() = default;
  IntMatrix(std::size_t rows, std::size_t cols);
  IntMatrix(std::initializer_list<std::initializer_list<std::int64_t>> rows);

  static IntMatrix identity(std::size_t n);
  /// Permutation matrix P with P[r][perm[r]] = 1: applying P to an iteration
  /// vector places original iterator perm[r] at position r.
  static IntMatrix permutation(const std::vector<std::size_t>& perm);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  std::int64_t& at(std::size_t r, std::size_t c);
  std::int64_t at(std::size_t r, std::size_t c) const;

  IntMatrix operator*(const IntMatrix& o) const;
  std::vector<std::int64_t> apply(const std::vector<std::int64_t>& v) const;
  IntMatrix transposed() const;

  bool operator==(const IntMatrix& o) const = default;

  /// Determinant via fraction-free Bareiss elimination (square only).
  std::int64_t determinant() const;
  bool isUnimodular() const;
  /// Inverse of a unimodular matrix (integer entries by definition).
  IntMatrix inverseUnimodular() const;
  /// True iff every row and every column contains exactly one nonzero entry
  /// and that entry is +1 or -1 (loop permutation + reversal).
  bool isSignedPermutation() const;

  std::string str() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::int64_t> data_;
};

}  // namespace polyast
