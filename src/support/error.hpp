// Error handling for the PolyAST library.
//
// All invariant violations throw polyast::Error; POLYAST_CHECK is used for
// preconditions on public API entry points and for internal invariants that
// are cheap to test. Benchmark-critical inner loops use plain asserts.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace polyast {

/// Exception type thrown on any contract or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throwError(const char* cond, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace polyast

/// Precondition / invariant check; throws polyast::Error with location info.
#define POLYAST_CHECK(cond, msg)                                      \
  do {                                                                \
    if (!(cond))                                                      \
      ::polyast::detail::throwError(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
