#include "support/int_matrix.hpp"

#include <cstdlib>
#include <sstream>

#include "support/error.hpp"
#include "support/rational.hpp"

namespace polyast {

IntMatrix::IntMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

IntMatrix::IntMatrix(
    std::initializer_list<std::initializer_list<std::int64_t>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    POLYAST_CHECK(row.size() == cols_, "ragged initializer for IntMatrix");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

IntMatrix IntMatrix::identity(std::size_t n) {
  IntMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

IntMatrix IntMatrix::permutation(const std::vector<std::size_t>& perm) {
  IntMatrix m(perm.size(), perm.size());
  std::vector<bool> seen(perm.size(), false);
  for (std::size_t r = 0; r < perm.size(); ++r) {
    POLYAST_CHECK(perm[r] < perm.size() && !seen[perm[r]],
                  "invalid permutation vector");
    seen[perm[r]] = true;
    m.at(r, perm[r]) = 1;
  }
  return m;
}

std::int64_t& IntMatrix::at(std::size_t r, std::size_t c) {
  POLYAST_CHECK(r < rows_ && c < cols_, "IntMatrix index out of range");
  return data_[r * cols_ + c];
}

std::int64_t IntMatrix::at(std::size_t r, std::size_t c) const {
  POLYAST_CHECK(r < rows_ && c < cols_, "IntMatrix index out of range");
  return data_[r * cols_ + c];
}

IntMatrix IntMatrix::operator*(const IntMatrix& o) const {
  POLYAST_CHECK(cols_ == o.rows_, "IntMatrix product dimension mismatch");
  IntMatrix out(rows_, o.cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = 0; k < cols_; ++k) {
      std::int64_t a = at(i, k);
      if (a == 0) continue;
      for (std::size_t j = 0; j < o.cols_; ++j)
        out.at(i, j) =
            checkedAdd(out.at(i, j), checkedMul(a, o.at(k, j)));
    }
  return out;
}

std::vector<std::int64_t> IntMatrix::apply(
    const std::vector<std::int64_t>& v) const {
  POLYAST_CHECK(v.size() == cols_, "IntMatrix apply dimension mismatch");
  std::vector<std::int64_t> out(rows_, 0);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      out[i] = checkedAdd(out[i], checkedMul(at(i, j), v[j]));
  return out;
}

IntMatrix IntMatrix::transposed() const {
  IntMatrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out.at(j, i) = at(i, j);
  return out;
}

std::int64_t IntMatrix::determinant() const {
  POLYAST_CHECK(rows_ == cols_, "determinant of non-square matrix");
  std::size_t n = rows_;
  if (n == 0) return 1;
  // Fraction-free Bareiss elimination: all intermediate values stay integer.
  IntMatrix m = *this;
  std::int64_t sign = 1;
  std::int64_t prev = 1;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    if (m.at(k, k) == 0) {
      std::size_t swap = k + 1;
      while (swap < n && m.at(swap, k) == 0) ++swap;
      if (swap == n) return 0;
      for (std::size_t j = 0; j < n; ++j)
        std::swap(m.at(k, j), m.at(swap, j));
      sign = -sign;
    }
    for (std::size_t i = k + 1; i < n; ++i)
      for (std::size_t j = k + 1; j < n; ++j) {
        std::int64_t num =
            checkedMul(m.at(i, j), m.at(k, k)) -
            checkedMul(m.at(i, k), m.at(k, j));
        m.at(i, j) = num / prev;  // exact by Bareiss invariant
      }
    prev = m.at(k, k);
  }
  return sign * m.at(n - 1, n - 1);
}

bool IntMatrix::isUnimodular() const {
  if (rows_ != cols_) return false;
  std::int64_t d = determinant();
  return d == 1 || d == -1;
}

IntMatrix IntMatrix::inverseUnimodular() const {
  POLYAST_CHECK(isUnimodular(), "inverse of non-unimodular matrix");
  std::size_t n = rows_;
  // Exact Gauss-Jordan over rationals; result entries are integers because
  // the matrix is unimodular.
  std::vector<std::vector<Rational>> aug(n, std::vector<Rational>(2 * n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) aug[i][j] = Rational(at(i, j));
    aug[i][n + i] = Rational(1);
  }
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    while (pivot < n && aug[pivot][col].isZero()) ++pivot;
    POLYAST_CHECK(pivot < n, "singular matrix in inverseUnimodular");
    std::swap(aug[col], aug[pivot]);
    Rational inv = Rational(1) / aug[col][col];
    for (std::size_t j = 0; j < 2 * n; ++j) aug[col][j] *= inv;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == col || aug[i][col].isZero()) continue;
      Rational f = aug[i][col];
      for (std::size_t j = 0; j < 2 * n; ++j)
        aug[i][j] -= f * aug[col][j];
    }
  }
  IntMatrix out(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      out.at(i, j) = aug[i][n + j].asInteger();
  return out;
}

bool IntMatrix::isSignedPermutation() const {
  if (rows_ != cols_) return false;
  std::vector<int> colCount(cols_, 0);
  for (std::size_t i = 0; i < rows_; ++i) {
    int rowCount = 0;
    for (std::size_t j = 0; j < cols_; ++j) {
      std::int64_t v = at(i, j);
      if (v == 0) continue;
      if (v != 1 && v != -1) return false;
      ++rowCount;
      ++colCount[j];
    }
    if (rowCount != 1) return false;
  }
  for (int c : colCount)
    if (c != 1) return false;
  return true;
}

std::string IntMatrix::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < rows_; ++i) {
    os << "[";
    for (std::size_t j = 0; j < cols_; ++j) {
      if (j) os << " ";
      os << at(i, j);
    }
    os << "]\n";
  }
  return os.str();
}

}  // namespace polyast
