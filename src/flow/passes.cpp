#include "flow/passes.hpp"

#include <algorithm>
#include <functional>
#include <set>

#include "dl/dl_model.hpp"
#include "poly/codegen.hpp"
#include "support/error.hpp"

namespace polyast::flow {

using ir::Block;
using ir::Loop;
using ir::Node;
using ir::NodePtr;
using ir::ParallelKind;

namespace {

using LoopPtr = std::shared_ptr<Loop>;

void forEachLoop(const NodePtr& node,
                 const std::function<void(const LoopPtr&)>& fn) {
  switch (node->kind) {
    case Node::Kind::Block:
      for (const auto& c : std::static_pointer_cast<Block>(node)->children)
        forEachLoop(c, fn);
      break;
    case Node::Kind::Loop: {
      auto l = std::static_pointer_cast<Loop>(node);
      fn(l);
      forEachLoop(l->body, fn);
      break;
    }
    case Node::Kind::Stmt:
      break;
  }
}

LoopPtr chainedChild(const LoopPtr& l) {
  if (l->body->children.size() == 1 &&
      l->body->children.front()->kind == Node::Kind::Loop)
    return std::static_pointer_cast<Loop>(l->body->children.front());
  return nullptr;
}

/// Collects the statements under a node (for the SIMD permutation's
/// contiguity ranking).
void collectStmts(const NodePtr& node,
                  std::vector<std::shared_ptr<const ir::Stmt>>& out) {
  switch (node->kind) {
    case Node::Kind::Block:
      for (const auto& c : std::static_pointer_cast<Block>(node)->children)
        collectStmts(c, out);
      break;
    case Node::Kind::Loop:
      collectStmts(std::static_pointer_cast<Loop>(node)->body, out);
      break;
    case Node::Kind::Stmt:
      out.push_back(std::static_pointer_cast<ir::Stmt>(node));
      break;
  }
}

}  // namespace

PassResult AffineTransformPass::run(ir::Program& program, PassContext&) {
  PassResult result;
  poly::ScopOptions sopt;
  sopt.paramMin = paramMin_;
  poly::Scop scop = poly::extractScop(program, sopt);
  poly::ScheduleMap schedules;
  try {
    schedules = transform::computeAffineTransform(scop, affine_);
  } catch (const Error& e) {
    if (!fallbackToIdentity_) throw;
    schedules = poly::identitySchedules(scop);
    result.succeeded = false;
    result.note = e.what();
  }
  ir::Program out;
  try {
    out = poly::applySchedules(scop, schedules);
  } catch (const Error& e) {
    // The scheduler guards against codegen-incompatible fusions, but keep
    // the flow total: fall back to the original order.
    if (!fallbackToIdentity_) throw;
    schedules = poly::identitySchedules(scop);
    out = poly::applySchedules(scop, schedules);
    result.succeeded = false;
    result.note = e.what();
  }
  out.name = program.name;
  program = std::move(out);
  return result;
}

PassResult SkewPass::run(ir::Program& program, PassContext&) {
  PassResult result;
  result.counters["skews"] = transform::skewForTilability(program, options_);
  return result;
}

PassResult ParallelismPass::run(ir::Program& program, PassContext&) {
  PassResult result;
  transform::ParallelismStats stats =
      transform::detectParallelism(program, options_, outermostOnly_);
  result.counters["doall"] = stats.doall;
  result.counters["reduction"] = stats.reduction;
  result.counters["pipeline"] = stats.pipeline;
  result.counters["reduction_pipeline"] = stats.reductionPipeline;
  result.counters["pipeline_depth3"] = stats.pipelineDepth3;
  return result;
}

PassResult TilePass::run(ir::Program& program, PassContext&) {
  PassResult result;
  result.counters["bands_tiled"] =
      transform::tileForLocality(program, options_);
  return result;
}

PassResult RegisterTilePass::run(ir::Program& program, PassContext&) {
  PassResult result;
  result.counters["loops_unrolled"] =
      transform::registerTile(program, options_);
  return result;
}

PassResult WavefrontPass::run(ir::Program& program, PassContext&) {
  PassResult result;
  std::int64_t wavefronts = 0;
  // Convert pipeline tile loops into wavefront doall.
  std::vector<std::pair<LoopPtr, LoopPtr>> pipelinePairs;
  forEachLoop(program.root, [&](const LoopPtr& l) {
    if (!l->isTileLoop) return;
    if (l->parallel != ParallelKind::Pipeline &&
        l->parallel != ParallelKind::ReductionPipeline)
      return;
    LoopPtr child = chainedChild(l);
    if (child && child->isTileLoop) pipelinePairs.push_back({l, child});
  });
  for (auto& [t1, t2] : pipelinePairs)
    if (baseline::wavefrontTiles(program, t1, t2)) ++wavefronts;
  // Any leftover pipeline marks degrade to sequential (doall-only model).
  forEachLoop(program.root, [&](const LoopPtr& l) {
    if (l->parallel == ParallelKind::Pipeline ||
        l->parallel == ParallelKind::ReductionPipeline ||
        l->parallel == ParallelKind::Reduction) {
      l->parallel = ParallelKind::None;
      l->pipelineDepth = 0;
    }
  });
  result.counters["wavefronts"] = wavefronts;
  return result;
}

PassResult IntraTileVectorizePass::run(ir::Program& program, PassContext&) {
  PassResult result;
  std::int64_t permutations = 0;
  // Rotate the most SIMD-contiguous point loop to the innermost position
  // of every rectangular point-loop chain.
  std::set<const Loop*> seen;
  forEachLoop(program.root, [&](const LoopPtr& l) {
    if (l->isTileLoop || seen.count(l.get())) return;
    std::vector<LoopPtr> chain{l};
    LoopPtr cur = l;
    while (LoopPtr c = chainedChild(cur)) {
      if (c->isTileLoop) break;
      chain.push_back(c);
      cur = c;
    }
    for (const auto& cl : chain) seen.insert(cl.get());
    if (chain.size() < 2) return;
    // Rectangularity within the chain.
    for (const auto& cl : chain)
      for (const auto& parts : {cl->lower.parts, cl->upper.parts})
        for (const auto& p : parts)
          for (const auto& other : chain)
            if (other != cl && p.coeff(other->iter) != 0) return;
    dl::LoopNestModel nest;
    for (const auto& cl : chain) nest.iters.push_back(cl->iter);
    collectStmts(chain.front()->body, nest.stmts);
    // Pick the loop with the highest contiguity count.
    std::size_t best = chain.size() - 1;
    int bestCount = dl::contiguityCount(nest, chain[best]->iter);
    for (std::size_t i = 0; i < chain.size(); ++i) {
      int c = dl::contiguityCount(nest, chain[i]->iter);
      if (c > bestCount) {
        best = i;
        bestCount = c;
      }
    }
    if (best == chain.size() - 1) return;
    // Rotate headers so chain[best] becomes innermost. NOTE: this is a
    // heuristic permutation; it is applied only when the chain sits
    // inside a tiled band (where loops are permutable by construction).
    bool insideTile = false;
    forEachLoop(program.root, [&](const LoopPtr& t) {
      if (t->isTileLoop) {
        std::vector<std::shared_ptr<const ir::Stmt>> sub;
        collectStmts(t->body, sub);
        for (const auto& s : nest.stmts)
          if (!sub.empty() &&
              std::find(sub.begin(), sub.end(), s) != sub.end())
            insideTile = true;
      }
    });
    if (!insideTile) return;
    auto header = [](Loop& a, Loop& b) {
      std::swap(a.iter, b.iter);
      std::swap(a.lower, b.lower);
      std::swap(a.upper, b.upper);
      std::swap(a.step, b.step);
      std::swap(a.parallel, b.parallel);
      std::swap(a.pipelineDepth, b.pipelineDepth);
      // The SIMD legality facts belong to the dimension being moved, like
      // the mark itself (register tiling reads them after this pass).
      std::swap(a.simdSafe, b.simdSafe);
      std::swap(a.reductionCarried, b.reductionCarried);
    };
    for (std::size_t i = best; i + 1 < chain.size(); ++i)
      header(*chain[i], *chain[i + 1]);
    ++permutations;
  });
  result.counters["intra_tile_permutations"] = permutations;
  return result;
}

}  // namespace polyast::flow
