#include "flow/presets.hpp"

#include <algorithm>
#include <functional>
#include <map>

#include "support/error.hpp"

namespace polyast::flow {

namespace {

/// The paper's Algorithm 1 over the pass infrastructure. The stage
/// toggles reproduce the historical FlowOptions ablation switches.
PassPipeline polyastPipeline(std::string name, PipelineOptions o) {
  PassPipeline pipe(std::move(name));
  pipe.nameSuffix = "_polyast";
  pipe.add(std::make_shared<AffineTransformPass>(o.affine, o.ast.paramMin,
                                                 o.fallbackToIdentity));
  if (o.enableSkewing) pipe.add(std::make_shared<SkewPass>(o.ast));
  if (o.enableParallelization)
    pipe.add(std::make_shared<ParallelismPass>(o.ast));
  if (o.enableTiling) pipe.add(std::make_shared<TilePass>(o.ast));
  if (o.enableRegisterTiling)
    pipe.add(std::make_shared<RegisterTilePass>(o.ast));
  return pipe;
}

/// The Pluto/PoCC-like baseline over the same passes: original loop
/// order, Pluto fusion, doall-only parallelization (reductions treated as
/// serializing, pipelines wavefronted after tiling).
PassPipeline poccPipeline(std::string name, PipelineOptions o) {
  PassPipeline pipe(std::move(name));
  pipe.nameSuffix = "_pocc";
  transform::AffineOptions aopt = o.affine;
  aopt.preferOriginalOrder = true;
  aopt.fusion = o.plutoFusion;
  // The doall-only baseline never privatizes accumulators, so relaxed
  // schedules could never discharge their proof obligations here.
  aopt.reductions = poly::ReductionMode::Strict;
  // Pluto's flow is total: always fall back to the identity schedule.
  pipe.add(std::make_shared<AffineTransformPass>(aopt, o.ast.paramMin,
                                                 /*fallbackToIdentity=*/true));
  pipe.add(std::make_shared<SkewPass>(o.ast));
  transform::AstOptions dopt = o.ast;
  dopt.recognizeReductions = false;  // doall-only baseline
  dopt.allowPipeline = true;         // detected, then wavefronted
  pipe.add(std::make_shared<ParallelismPass>(dopt));
  pipe.add(std::make_shared<TilePass>(o.ast));
  pipe.add(std::make_shared<WavefrontPass>());
  if (o.vectorizeIntraTile)
    pipe.add(std::make_shared<IntraTileVectorizePass>());
  if (o.enableRegisterTiling)
    pipe.add(std::make_shared<RegisterTilePass>(o.ast));
  return pipe;
}

using Factory =
    std::function<PassPipeline(std::string, PipelineOptions)>;

const std::map<std::string, Factory>& registry() {
  static const std::map<std::string, Factory> presets = {
      {"polyast", polyastPipeline},
      {"polyast-nofuse",
       [](std::string n, PipelineOptions o) {
         o.affine.fusion = transform::FusionHeuristic::NoFusion;
         return polyastPipeline(std::move(n), o);
       }},
      {"polyast-noskew",
       [](std::string n, PipelineOptions o) {
         o.enableSkewing = false;
         return polyastPipeline(std::move(n), o);
       }},
      {"polyast-nopar",
       [](std::string n, PipelineOptions o) {
         o.enableParallelization = false;
         return polyastPipeline(std::move(n), o);
       }},
      {"polyast-notile",
       [](std::string n, PipelineOptions o) {
         o.enableTiling = false;
         o.enableRegisterTiling = false;
         return polyastPipeline(std::move(n), o);
       }},
      {"polyast-noregtile",
       [](std::string n, PipelineOptions o) {
         o.enableRegisterTiling = false;
         return polyastPipeline(std::move(n), o);
       }},
      {"pocc", poccPipeline},
      {"pluto", poccPipeline},
      {"pocc-maxfuse",
       [](std::string n, PipelineOptions o) {
         o.plutoFusion = transform::FusionHeuristic::MaxLegal;
         return poccPipeline(std::move(n), o);
       }},
      {"pocc-nofuse",
       [](std::string n, PipelineOptions o) {
         o.plutoFusion = transform::FusionHeuristic::NoFusion;
         return poccPipeline(std::move(n), o);
       }},
      {"pocc-vect",
       [](std::string n, PipelineOptions o) {
         o.vectorizeIntraTile = true;
         return poccPipeline(std::move(n), o);
       }},
      {"identity",
       [](std::string n, PipelineOptions) { return PassPipeline(std::move(n)); }},
      {"none",
       [](std::string n, PipelineOptions) { return PassPipeline(std::move(n)); }},
  };
  return presets;
}

}  // namespace

PassPipeline makePipeline(const std::string& preset,
                          const PipelineOptions& options) {
  auto it = registry().find(preset);
  POLYAST_CHECK(it != registry().end(),
                "unknown pipeline preset '" + preset + "'");
  return it->second(preset, options);
}

std::vector<std::string> pipelinePresets() {
  std::vector<std::string> names;
  for (const auto& [name, factory] : registry()) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

bool hasPipelinePreset(const std::string& preset) {
  return registry().count(preset) != 0;
}

}  // namespace polyast::flow
