#include "flow/analyze.hpp"

#include <utility>

namespace polyast::flow {

AnalyzePass::AnalyzePass(std::shared_ptr<analysis::AnalysisSession> session,
                         std::string point)
    : session_(std::move(session)), point_(std::move(point)) {}

PassResult AnalyzePass::run(ir::Program& program, PassContext& ctx) {
  (void)ctx;
  const auto& engine = session_->engine();
  std::size_t errors0 = engine.errors();
  std::size_t warnings0 = engine.warnings();
  session_->analyze(program, point_);

  PassResult r;
  r.counters["diag_errors"] =
      static_cast<std::int64_t>(engine.errors() - errors0);
  r.counters["diag_warnings"] =
      static_cast<std::int64_t>(engine.warnings() - warnings0);
  if (engine.errors() > errors0) {
    // Surface the first new error in the pass report; the full list stays
    // on the engine.
    for (std::size_t i = engine.diagnostics().size(); i-- > 0;) {
      const auto& d = engine.diagnostics()[i];
      if (d.severity == analysis::Severity::Error && d.afterPass == point_) {
        r.note = d.str();
        break;
      }
    }
  }
  return r;
}

PassPipeline withAnalysis(
    const PassPipeline& pipe,
    std::shared_ptr<analysis::AnalysisSession> session) {
  PassPipeline out(pipe.name());
  out.nameSuffix = pipe.nameSuffix;
  out.add(std::make_shared<AnalyzePass>(session, "<input>"));
  for (const auto& p : pipe.passes()) {
    out.add(p);
    out.add(std::make_shared<AnalyzePass>(session, p->name()));
  }
  return out;
}

}  // namespace polyast::flow
