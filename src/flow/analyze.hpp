// AnalyzePass: runs the static analyses (src/analysis) as an ordinary
// pipeline pass, so any point of a pass sequence can be checked by
// inserting one — `withAnalysis` interleaves them everywhere.
#pragma once

#include <memory>
#include <string>

#include "analysis/analysis.hpp"
#include "flow/pipeline.hpp"

namespace polyast::flow {

/// Runs the shared AnalysisSession on the current program. The pass never
/// mutates the program and always succeeds; findings accumulate on the
/// session's DiagnosticEngine (the caller decides what severity is fatal),
/// and the per-point error/warning deltas surface as pass counters.
class AnalyzePass final : public Pass {
 public:
  /// `point` labels the findings' afterPass field — the name of the pass
  /// this instance follows, or "<input>" for the pipeline input.
  AnalyzePass(std::shared_ptr<analysis::AnalysisSession> session,
              std::string point);

  const std::string& name() const override { return name_; }
  const std::string& point() const { return point_; }
  PassResult run(ir::Program& program, PassContext& ctx) override;

 private:
  std::string name_ = "analyze";
  std::shared_ptr<analysis::AnalysisSession> session_;
  std::string point_;
};

/// Copies `pipe` with an AnalyzePass at the input and after every pass,
/// all sharing `session` (whose baseline is the pipeline input).
PassPipeline withAnalysis(
    const PassPipeline& pipe,
    std::shared_ptr<analysis::AnalysisSession> session);

}  // namespace polyast::flow
