// Concrete passes wrapping the transformation stages of Algorithm 1 and
// the Pluto-like baseline's extra steps.
//
// Algorithm 1 line → pass:
//   1  fusion and permutation with DL(P.Poly)  → AffineTransformPass
//   2  skewing for tilability(P.AST)           → SkewPass
//   3  coarse grain parallelization(P.AST)     → ParallelismPass
//   4  tiling for locality(P.AST)              → TilePass
//   5  intra tile optimizations(P.AST)         → RegisterTilePass
//
// Baseline-only passes (Sec. V comparator): WavefrontPass converts
// pipeline-parallel tile loops into wavefront doall (the skewed-tile
// schedule Pluto emits) and degrades the remaining non-doall marks;
// IntraTileVectorizePass is the `pocc vect` intra-tile permutation.
#pragma once

#include "baseline/pluto.hpp"
#include "flow/pass.hpp"
#include "transform/affine.hpp"
#include "transform/ast_stage.hpp"

namespace polyast::flow {

/// Stage 1: cache-aware affine transformation (Sec. III). Extracts the
/// SCoP, runs Algorithms 2-5, and regenerates the program from the chosen
/// schedules. With `fallbackToIdentity`, scheduler or codegen failures
/// fall back to the original order — the pass then reports
/// succeeded = false and surfaces the error message in the note (the old
/// flow silently discarded it).
class AffineTransformPass final : public Pass {
 public:
  AffineTransformPass(transform::AffineOptions affine, std::int64_t paramMin,
                      bool fallbackToIdentity)
      : affine_(affine),
        paramMin_(paramMin),
        fallbackToIdentity_(fallbackToIdentity) {}
  const std::string& name() const override { return name_; }
  PassResult run(ir::Program& program, PassContext& ctx) override;

 private:
  inline static const std::string name_ = "affine";
  transform::AffineOptions affine_;
  std::int64_t paramMin_;
  bool fallbackToIdentity_;
};

/// Stage 2: loop skewing for tilability (Sec. IV-B). Counter: "skews".
class SkewPass final : public Pass {
 public:
  explicit SkewPass(transform::AstOptions options) : options_(options) {}
  const std::string& name() const override { return name_; }
  PassResult run(ir::Program& program, PassContext& ctx) override;

 private:
  inline static const std::string name_ = "skew";
  transform::AstOptions options_;
};

/// Stage 3: coarse-grain parallelism detection (Sec. IV-A). Counters:
/// "doall", "reduction", "pipeline", "reduction_pipeline" — the loop
/// marks surviving the outermost-only filter.
class ParallelismPass final : public Pass {
 public:
  explicit ParallelismPass(transform::AstOptions options,
                           bool outermostOnly = true)
      : options_(options), outermostOnly_(outermostOnly) {}
  const std::string& name() const override { return name_; }
  PassResult run(ir::Program& program, PassContext& ctx) override;

 private:
  inline static const std::string name_ = "parallelism";
  transform::AstOptions options_;
  bool outermostOnly_;
};

/// Stage 4: syntactic rectangular tiling (Sec. IV-B). Counter:
/// "bands_tiled".
class TilePass final : public Pass {
 public:
  explicit TilePass(transform::AstOptions options) : options_(options) {}
  const std::string& name() const override { return name_; }
  PassResult run(ir::Program& program, PassContext& ctx) override;

 private:
  inline static const std::string name_ = "tile";
  transform::AstOptions options_;
};

/// Stage 5: register tiling / unroll-and-jam (Sec. IV-C). Counter:
/// "loops_unrolled".
class RegisterTilePass final : public Pass {
 public:
  explicit RegisterTilePass(transform::AstOptions options)
      : options_(options) {}
  const std::string& name() const override { return name_; }
  PassResult run(ir::Program& program, PassContext& ctx) override;

 private:
  inline static const std::string name_ = "register-tile";
  transform::AstOptions options_;
};

/// Baseline: converts chained pipeline-parallel tile-loop pairs into
/// wavefront doall (baseline::wavefrontTiles) and degrades every leftover
/// pipeline/reduction mark to sequential — the doall-only model of the
/// Pluto comparator. Counter: "wavefronts".
class WavefrontPass final : public Pass {
 public:
  const std::string& name() const override { return name_; }
  PassResult run(ir::Program& program, PassContext& ctx) override;

 private:
  inline static const std::string name_ = "wavefront";
};

/// Baseline `pocc vect`: rotates the most SIMD-contiguous point loop to
/// the innermost position of every rectangular point-loop chain inside a
/// tiled band. Counter: "intra_tile_permutations".
class IntraTileVectorizePass final : public Pass {
 public:
  const std::string& name() const override { return name_; }
  PassResult run(ir::Program& program, PassContext& ctx) override;

 private:
  inline static const std::string name_ = "intra-tile-vect";
};

}  // namespace polyast::flow
