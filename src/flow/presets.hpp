// Named pipeline presets: the paper's flow, the Pluto-like baseline, the
// identity pipeline, and the ablation variants — all expressed over the
// same pass infrastructure.
#pragma once

#include <string>
#include <vector>

#include "flow/pipeline.hpp"
#include "flow/passes.hpp"

namespace polyast::flow {

/// Unified options for every preset. The polyast presets consume `affine`
/// as given; the pocc presets force the baseline's scheduler configuration
/// (original loop order, `plutoFusion`) and are additionally shaped by
/// `vectorizeIntraTile`.
struct PipelineOptions {
  transform::AffineOptions affine;
  transform::AstOptions ast;
  /// Fall back to the original schedule when the affine stage fails (the
  /// pocc presets always fall back, as Pluto's flow is total).
  bool fallbackToIdentity = true;
  /// Stage toggles — the ablation presets flip these; they are also
  /// honored by the base presets so callers can compose ablations
  /// directly.
  bool enableSkewing = true;
  bool enableParallelization = true;
  bool enableTiling = true;
  bool enableRegisterTiling = true;
  /// pocc presets: fusion heuristic (Pluto smartfuse by default) and the
  /// `pocc vect` intra-tile permutation.
  transform::FusionHeuristic plutoFusion =
      transform::FusionHeuristic::SmartShared;
  bool vectorizeIntraTile = false;
};

/// Builds the named preset. Registered names (see pipelinePresets()):
///   polyast            — the paper's Algorithm 1 flow
///   polyast-nofuse     — ablation: no fusion in the affine stage
///   polyast-noskew     — ablation: skip skewing
///   polyast-nopar      — ablation: skip parallelism detection
///   polyast-notile     — ablation: skip tiling and register tiling
///   polyast-noregtile  — ablation: skip register tiling only
///   pocc (alias pluto) — Pluto-like baseline, smartfuse
///   pocc-maxfuse       — baseline with maximal fusion
///   pocc-nofuse        — baseline without fusion
///   pocc-vect          — baseline + intra-tile SIMD permutation
///   identity (alias none) — no transformation
/// Throws polyast::Error for unknown names.
PassPipeline makePipeline(const std::string& preset,
                          const PipelineOptions& options = {});

/// All registered preset names, sorted (aliases included).
std::vector<std::string> pipelinePresets();

/// True when `preset` names a registered pipeline (or alias).
bool hasPipelinePreset(const std::string& preset);

}  // namespace polyast::flow
