#include "flow/pass.hpp"

#include <iomanip>
#include <sstream>

namespace polyast::flow {

std::int64_t PipelineReport::counter(const std::string& name) const {
  std::int64_t total = 0;
  for (const auto& p : passes) {
    auto it = p.counters.find(name);
    if (it != p.counters.end()) total += it->second;
  }
  return total;
}

int PipelineReport::brokenPasses() const {
  int n = 0;
  for (const auto& p : passes)
    if (p.semanticsBroken) ++n;
  return n;
}

const PassReport* PipelineReport::find(const std::string& pass) const {
  for (const auto& p : passes)
    if (p.pass == pass) return &p;
  return nullptr;
}

std::string PipelineReport::summary() const {
  std::ostringstream os;
  for (const auto& p : passes) {
    os << "  " << std::left << std::setw(16) << p.pass << std::right
       << std::fixed << std::setprecision(3) << std::setw(9) << p.millis
       << "ms  " << (p.succeeded ? "ok      " : "fallback");
    for (const auto& [name, value] : p.counters)
      os << "  " << name << "=" << value;
    if (p.verified) {
      if (p.semanticsBroken)
        os << "  BROKE SEMANTICS (" << p.verifyNote << ")";
      else
        os << "  verified(|diff|=" << p.oracleMaxAbsDiff << ")";
    }
    if (!p.note.empty()) os << "  [" << p.note << "]";
    os << "\n";
  }
  os << "  total " << std::fixed << std::setprecision(3) << totalMillis
     << "ms\n";
  return os.str();
}

exec::Context PassContext::makeOracleContext(
    const ir::Program& program) const {
  if (verify.makeContext) return verify.makeContext(program);
  std::map<std::string, std::int64_t> params = verify.params;
  for (const auto& name : program.params)
    if (!params.count(name)) params[name] = name == "TSTEPS" ? 3 : 7;
  exec::Context ctx(program, std::move(params));
  ctx.seedAll();
  return ctx;
}

}  // namespace polyast::flow
