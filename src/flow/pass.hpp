// Pass-manager core: the Pass interface, per-pass results, and the
// instrumented PassContext shared by every pipeline execution.
//
// The paper's Algorithm 1 is a *sequence of cooperating stages*; this
// subsystem makes that sequence explicit. Each stage is a Pass that
// mutates an ir::Program in place and returns a PassResult (counters +
// fallback notes). A PassPipeline (pipeline.hpp) executes an ordered list
// of passes and fills the PassContext with per-pass instrumentation:
//   * wall-clock timing per pass,
//   * named stage counters (skews applied, bands tiled, parallel loops
//     found by kind, ...), generalizing the old transform::FlowReport,
//   * optional IR / C dumps after selected passes,
//   * an inter-pass semantic verification mode that runs the src/exec
//     interpreter oracle on test-scale parameters after every pass and
//     pinpoints *which* pass broke semantics (previously only end-to-end
//     comparison existed).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "exec/interp.hpp"
#include "ir/ast.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace polyast::flow {

/// Outcome of one pass execution. `succeeded` means the pass did its job
/// without degrading (a pass that falls back — e.g. the affine stage
/// reverting to identity schedules — still returns normally but reports
/// succeeded = false and the reason in `note`).
struct PassResult {
  bool succeeded = true;
  std::map<std::string, std::int64_t> counters;
  std::string note;
};

class PassContext;

/// A single transformation stage. Passes mutate the program in place and
/// must preserve semantics (the pipeline's verification mode enforces
/// this with the interpreter oracle).
class Pass {
 public:
  virtual ~Pass() = default;
  virtual const std::string& name() const = 0;
  virtual PassResult run(ir::Program& program, PassContext& ctx) = 0;
};

/// Instrumentation record for one executed pass.
struct PassReport {
  std::string pass;
  double millis = 0.0;
  /// Process peak RSS (VmHWM, KiB) observed right after the pass ran; 0
  /// when procfs is unavailable. Monotone across passes — a jump over the
  /// previous pass's value attributes an allocation high-water to this
  /// pass (also exported as gauge `flow.<pass>.rss_hwm_kb`).
  std::int64_t rssHwmKb = 0;
  bool succeeded = true;
  std::map<std::string, std::int64_t> counters;
  std::string note;
  /// Oracle fields (filled only when verification is enabled).
  bool verified = false;
  double oracleMaxAbsDiff = 0.0;
  /// The oracle caught this pass changing semantics. Set only when
  /// VerifyOptions::continueAfterFailure is on (otherwise the pipeline
  /// throws VerificationError at the first break); `verifyNote` carries
  /// the diagnostic.
  bool semanticsBroken = false;
  std::string verifyNote;
};

/// Instrumentation for a whole pipeline execution.
struct PipelineReport {
  std::vector<PassReport> passes;
  double totalMillis = 0.0;

  /// Sum of a named counter over all passes (0 when absent).
  std::int64_t counter(const std::string& name) const;
  /// Number of passes the oracle flagged (continue-after-failure mode).
  int brokenPasses() const;
  /// Report of the named pass, or nullptr when it did not run.
  const PassReport* find(const std::string& pass) const;
  /// Human-readable per-pass table (one line per pass) for CLI/debugging.
  std::string summary() const;
};

/// Inter-pass oracle configuration. When enabled, the pipeline executes
/// the *input* program once as the reference and re-executes the working
/// program after every pass on identical seeded buffers; any divergence
/// (buffer contents or executed-instance count) throws VerificationError
/// naming the offending pass.
struct VerifyOptions {
  bool enabled = false;
  /// Keep executing after an oracle failure instead of throwing at the
  /// first break: every breaking pass is recorded (PassReport::
  /// semanticsBroken, metric `flow.verify.breaks`, a "semantics-break"
  /// trace event) and the reference re-bases onto the broken output so
  /// each *subsequent* pass is still judged on the breakage it adds
  /// itself. `polyastc --verify-each-pass` uses this and exits with the
  /// break count.
  bool continueAfterFailure = false;
  /// Parameter bindings for the oracle runs. Parameters not listed get a
  /// small test-scale default (7; 3 for time-step-like "TSTEPS").
  std::map<std::string, std::int64_t> params;
  /// Context factory; when set it overrides `params` entirely. Use this
  /// to inject kernels::makeContext for kernels that need conditioned
  /// inputs (the flow library itself does not depend on the kernel
  /// suite).
  std::function<exec::Context(const ir::Program&)> makeContext;
  /// Max |diff| tolerated between reference and transformed buffers. Our
  /// restricted transformation class never reassociates a statement
  /// instance's arithmetic, so the default is exact.
  double tolerance = 0.0;
};

/// IR dump configuration (the `--dump-after=` CLI mode).
struct DumpOptions {
  /// Stream to write dumps to; nullptr disables dumping.
  std::ostream* stream = nullptr;
  /// Pass names after which to dump; the single entry "all" selects every
  /// pass.
  std::set<std::string> after;
  /// Emit a full C translation unit (ir::emitC) instead of the IR printer.
  bool asC = false;

  bool wants(const std::string& pass) const {
    return stream && (after.count("all") || after.count(pass));
  }
};

/// Shared state threaded through a pipeline execution.
class PassContext {
 public:
  VerifyOptions verify;
  DumpOptions dump;
  PipelineReport report;
  /// Metrics sink for pipeline execution: per-pass stage counters
  /// (`flow.<counter>`), per-pass run/fallback counts
  /// (`flow.<pass>.runs` / `flow.<pass>.fallbacks` plus the
  /// `flow.<pass>.fallback_reason` note), and oracle outcomes
  /// (`flow.verify.breaks`). Defaults to the process-wide registry;
  /// point it at a local Registry to observe one run in isolation
  /// (transform::optimize does this to build FlowReport). Never null.
  obs::Registry* metrics = &obs::Registry::global();

  /// Builds an oracle context for `program` per `verify` (factory or
  /// test-scale parameter defaults, seeded deterministically).
  exec::Context makeOracleContext(const ir::Program& program) const;
};

/// Thrown by the pipeline when the interpreter oracle detects that a pass
/// changed program semantics; `pass()` names the offender.
class VerificationError : public Error {
 public:
  VerificationError(const std::string& pass, const std::string& what)
      : Error("pass '" + pass + "' broke semantics: " + what), pass_(pass) {}
  const std::string& pass() const { return pass_; }

 private:
  std::string pass_;
};

}  // namespace polyast::flow
