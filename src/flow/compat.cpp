// Classic entry points re-expressed over the pass pipeline: the poly+AST
// flow (transform::optimize, preset "polyast") and the Pluto-like baseline
// (baseline::plutoOptimize, preset "pocc"). Both produce programs
// identical to the historical hand-rolled sequences; the pipeline adds
// per-pass instrumentation and surfaces fallback reasons that the old
// code discarded.
#include "baseline/pluto.hpp"
#include "flow/presets.hpp"
#include "transform/flow.hpp"

namespace polyast::transform {

ir::Program optimize(const ir::Program& program, const FlowOptions& options,
                     FlowReport* report) {
  flow::PipelineOptions popt;
  popt.affine = options.affine;
  popt.ast = options.ast;
  popt.fallbackToIdentity = options.fallbackToIdentity;
  popt.enableSkewing = options.enableSkewing;
  popt.enableParallelization = options.enableParallelization;
  popt.enableTiling = options.enableTiling;
  popt.enableRegisterTiling = options.enableRegisterTiling;
  flow::PassPipeline pipe = flow::makePipeline("polyast", popt);
  flow::PassContext ctx;
  ir::Program out = pipe.run(program, ctx);
  if (report) {
    *report = FlowReport{};
    if (const flow::PassReport* affine = ctx.report.find("affine")) {
      report->affineStageSucceeded = affine->succeeded;
      report->affineFailureReason = affine->note;
    }
    report->skewsApplied = static_cast<int>(ctx.report.counter("skews"));
    report->parallelism.doall = static_cast<int>(ctx.report.counter("doall"));
    report->parallelism.reduction =
        static_cast<int>(ctx.report.counter("reduction"));
    report->parallelism.pipeline =
        static_cast<int>(ctx.report.counter("pipeline"));
    report->parallelism.reductionPipeline =
        static_cast<int>(ctx.report.counter("reduction_pipeline"));
    report->bandsTiled = static_cast<int>(ctx.report.counter("bands_tiled"));
    report->loopsUnrolled =
        static_cast<int>(ctx.report.counter("loops_unrolled"));
  }
  return out;
}

}  // namespace polyast::transform

namespace polyast::baseline {

ir::Program plutoOptimize(const ir::Program& program,
                          const PlutoOptions& options, PlutoReport* report) {
  flow::PipelineOptions popt;
  popt.ast = options.ast;
  popt.enableRegisterTiling = options.registerTiling;
  popt.vectorizeIntraTile = options.vectorizeIntraTile;
  switch (options.fuse) {
    case PlutoOptions::Fuse::Max:
      popt.plutoFusion = transform::FusionHeuristic::MaxLegal;
      break;
    case PlutoOptions::Fuse::Smart:
      popt.plutoFusion = transform::FusionHeuristic::SmartShared;
      break;
    case PlutoOptions::Fuse::None:
      popt.plutoFusion = transform::FusionHeuristic::NoFusion;
      break;
  }
  flow::PassPipeline pipe = flow::makePipeline("pocc", popt);
  flow::PassContext ctx;
  ir::Program out = pipe.run(program, ctx);
  if (report) {
    *report = PlutoReport{};
    report->wavefronts = static_cast<int>(ctx.report.counter("wavefronts"));
    report->bandsTiled = static_cast<int>(ctx.report.counter("bands_tiled"));
    report->intraTilePermutations =
        static_cast<int>(ctx.report.counter("intra_tile_permutations"));
  }
  return out;
}

}  // namespace polyast::baseline
