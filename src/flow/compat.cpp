// Classic entry points re-expressed over the pass pipeline: the poly+AST
// flow (transform::optimize, preset "polyast") and the Pluto-like baseline
// (baseline::plutoOptimize, preset "pocc"). Both produce programs
// identical to the historical hand-rolled sequences; the pipeline adds
// per-pass instrumentation and surfaces fallback reasons that the old
// code discarded.
#include "baseline/pluto.hpp"
#include "flow/presets.hpp"
#include "transform/flow.hpp"

namespace polyast::transform {

ir::Program optimize(const ir::Program& program, const FlowOptions& options,
                     FlowReport* report) {
  flow::PipelineOptions popt;
  popt.affine = options.affine;
  popt.ast = options.ast;
  popt.fallbackToIdentity = options.fallbackToIdentity;
  popt.enableSkewing = options.enableSkewing;
  popt.enableParallelization = options.enableParallelization;
  popt.enableTiling = options.enableTiling;
  popt.enableRegisterTiling = options.enableRegisterTiling;
  flow::PassPipeline pipe = flow::makePipeline("polyast", popt);
  flow::PassContext ctx;
  // FlowReport is a *view over the metrics registry*: the pipeline records
  // stage counters and fallback reasons into ctx.metrics (the single write
  // site, see flow/pipeline.cpp), and the report below is read back from
  // that registry — the two reporting paths share one source of truth. A
  // local registry isolates this run; the process-wide registry still
  // receives the dl/poly counters the passes record internally.
  obs::Registry local;
  ctx.metrics = &local;
  ir::Program out = pipe.run(program, ctx);
  if (report) {
    *report = FlowReport{};
    obs::MetricsSnapshot m = local.snapshot();
    report->affineStageSucceeded =
        m.counter("flow.affine.runs") > 0 &&
        m.counter("flow.affine.fallbacks") == 0;
    if (auto it = m.notes.find("flow.affine.fallback_reason");
        it != m.notes.end())
      report->affineFailureReason = it->second;
    report->skewsApplied = static_cast<int>(m.counter("flow.skews"));
    report->parallelism.doall = static_cast<int>(m.counter("flow.doall"));
    report->parallelism.reduction =
        static_cast<int>(m.counter("flow.reduction"));
    report->parallelism.pipeline =
        static_cast<int>(m.counter("flow.pipeline"));
    report->parallelism.reductionPipeline =
        static_cast<int>(m.counter("flow.reduction_pipeline"));
    report->bandsTiled = static_cast<int>(m.counter("flow.bands_tiled"));
    report->loopsUnrolled =
        static_cast<int>(m.counter("flow.loops_unrolled"));
  }
  return out;
}

}  // namespace polyast::transform

namespace polyast::baseline {

ir::Program plutoOptimize(const ir::Program& program,
                          const PlutoOptions& options, PlutoReport* report) {
  flow::PipelineOptions popt;
  popt.ast = options.ast;
  popt.enableRegisterTiling = options.registerTiling;
  popt.vectorizeIntraTile = options.vectorizeIntraTile;
  switch (options.fuse) {
    case PlutoOptions::Fuse::Max:
      popt.plutoFusion = transform::FusionHeuristic::MaxLegal;
      break;
    case PlutoOptions::Fuse::Smart:
      popt.plutoFusion = transform::FusionHeuristic::SmartShared;
      break;
    case PlutoOptions::Fuse::None:
      popt.plutoFusion = transform::FusionHeuristic::NoFusion;
      break;
  }
  flow::PassPipeline pipe = flow::makePipeline("pocc", popt);
  flow::PassContext ctx;
  ir::Program out = pipe.run(program, ctx);
  if (report) {
    *report = PlutoReport{};
    report->wavefronts = static_cast<int>(ctx.report.counter("wavefronts"));
    report->bandsTiled = static_cast<int>(ctx.report.counter("bands_tiled"));
    report->intraTilePermutations =
        static_cast<int>(ctx.report.counter("intra_tile_permutations"));
  }
  return out;
}

}  // namespace polyast::baseline
