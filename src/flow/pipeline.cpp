#include "flow/pipeline.hpp"

#include <chrono>
#include <optional>
#include <ostream>
#include <sstream>

#include "ir/cemit.hpp"

namespace polyast::flow {

namespace {

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

PassPipeline& PassPipeline::add(std::shared_ptr<Pass> pass) {
  POLYAST_CHECK(pass != nullptr, "null pass added to pipeline");
  passes_.push_back(std::move(pass));
  return *this;
}

std::vector<std::string> PassPipeline::passNames() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& p : passes_) names.push_back(p->name());
  return names;
}

ir::Program PassPipeline::run(const ir::Program& input) const {
  PassContext ctx;
  return run(input, ctx);
}

ir::Program PassPipeline::run(const ir::Program& input,
                              PassContext& ctx) const {
  auto pipelineStart = std::chrono::steady_clock::now();
  ir::Program out = input.deepCopy();

  // Reference execution for the inter-pass oracle: run the *input* once;
  // every pass output must reproduce these buffers exactly.
  std::optional<exec::Context> reference;
  std::int64_t referenceInstances = 0;
  if (ctx.verify.enabled) {
    reference.emplace(ctx.makeOracleContext(input));
    referenceInstances = exec::countInstances(input, *reference);
    exec::run(input, *reference);
  }

  for (const auto& pass : passes_) {
    PassReport record;
    record.pass = pass->name();
    auto t0 = std::chrono::steady_clock::now();
    PassResult result = pass->run(out, ctx);
    record.millis = msSince(t0);
    record.succeeded = result.succeeded;
    record.counters = std::move(result.counters);
    record.note = std::move(result.note);

    if (ctx.dump.wants(record.pass)) {
      *ctx.dump.stream << "// ---- after pass '" << record.pass << "' ----\n"
                       << (ctx.dump.asC ? ir::emitC(out)
                                        : ir::printProgram(out));
    }

    if (ctx.verify.enabled) {
      exec::Context current = ctx.makeOracleContext(out);
      std::int64_t instances = exec::countInstances(out, current);
      exec::run(out, current);
      double diff = reference->maxAbsDiff(current);
      record.verified = true;
      record.oracleMaxAbsDiff = diff;
      if (instances != referenceInstances || diff > ctx.verify.tolerance) {
        ctx.report.passes.push_back(std::move(record));
        ctx.report.totalMillis = msSince(pipelineStart);
        std::ostringstream os;
        if (instances != referenceInstances)
          os << "executed " << instances << " statement instances, expected "
             << referenceInstances;
        else
          os << "max |diff| " << diff << " exceeds tolerance "
             << ctx.verify.tolerance;
        throw VerificationError(pass->name(), os.str());
      }
    }
    ctx.report.passes.push_back(std::move(record));
  }

  out.name = input.name + nameSuffix;
  ctx.report.totalMillis = msSince(pipelineStart);
  return out;
}

}  // namespace polyast::flow
