#include "flow/pipeline.hpp"

#include <chrono>
#include <optional>
#include <ostream>
#include <sstream>

#include "dl/dl_predict.hpp"
#include "ir/cemit.hpp"
#include "obs/selfprof.hpp"
#include "obs/trace.hpp"

namespace polyast::flow {

namespace {

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Mirrors one executed pass into the metrics registry — the single write
/// site both PipelineReport and every registry consumer (FlowReport,
/// `--metrics-out`, the bench artifacts) observe, so the two reporting
/// paths cannot drift.
void recordPassMetrics(obs::Registry& metrics, const PassReport& record) {
  metrics.counter("flow." + record.pass + ".runs").add();
  if (record.rssHwmKb > 0)
    metrics.gauge("flow." + record.pass + ".rss_hwm_kb")
        .set(static_cast<double>(record.rssHwmKb));
  for (const auto& [name, value] : record.counters)
    metrics.counter("flow." + name).add(value);
  if (!record.succeeded) {
    metrics.counter("flow." + record.pass + ".fallbacks").add();
    metrics.note("flow." + record.pass + ".fallback_reason", record.note);
  }
  if (record.semanticsBroken) {
    metrics.counter("flow.verify.breaks").add();
    metrics.note("flow.verify.break." + record.pass, record.verifyNote);
  }
}

}  // namespace

PassPipeline& PassPipeline::add(std::shared_ptr<Pass> pass) {
  POLYAST_CHECK(pass != nullptr, "null pass added to pipeline");
  passes_.push_back(std::move(pass));
  return *this;
}

std::vector<std::string> PassPipeline::passNames() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& p : passes_) names.push_back(p->name());
  return names;
}

ir::Program PassPipeline::run(const ir::Program& input) const {
  PassContext ctx;
  return run(input, ctx);
}

ir::Program PassPipeline::run(const ir::Program& input,
                              PassContext& ctx) const {
  auto pipelineStart = std::chrono::steady_clock::now();
  obs::Tracer& tracer = obs::Tracer::global();
  // Lazy name: the concatenation runs only when tracing is enabled, so a
  // disabled compile pays one relaxed load here, not a string build.
  obs::Span pipelineSpan(
      tracer, [this] { return "pipeline:" + name_; }, "flow");
  pipelineSpan.attr("program", input.name);
  pipelineSpan.attr("passes",
                    static_cast<std::int64_t>(passes_.size()));
  ir::Program out = input.deepCopy();

  // Reference execution for the inter-pass oracle: run the *input* once;
  // every pass output must reproduce these buffers exactly.
  std::optional<exec::Context> reference;
  std::int64_t referenceInstances = 0;
  if (ctx.verify.enabled) {
    reference.emplace(ctx.makeOracleContext(input));
    referenceInstances = exec::countInstances(input, *reference);
    exec::run(input, *reference);
  }

  for (const auto& pass : passes_) {
    PassReport record;
    record.pass = pass->name();
    obs::Span span(tracer, pass->name(), "pass");
    auto t0 = std::chrono::steady_clock::now();
    PassResult result = pass->run(out, ctx);
    record.millis = msSince(t0);
    record.rssHwmKb = obs::selfprof::peakRssKb();
    record.succeeded = result.succeeded;
    record.counters = std::move(result.counters);
    record.note = std::move(result.note);
    span.attr("succeeded", record.succeeded);
    if (record.rssHwmKb > 0) span.attr("rss_hwm_kb", record.rssHwmKb);
    for (const auto& [name, value] : record.counters)
      span.attr(name, value);
    if (!record.note.empty()) span.attr("note", record.note);

    if (ctx.dump.wants(record.pass)) {
      *ctx.dump.stream << "// ---- after pass '" << record.pass << "' ----\n"
                       << (ctx.dump.asC ? ir::emitC(out)
                                        : ir::printProgram(out));
    }

    if (ctx.verify.enabled) {
      exec::Context current = ctx.makeOracleContext(out);
      std::int64_t instances = exec::countInstances(out, current);
      exec::run(out, current);
      double diff = reference->maxAbsDiff(current);
      record.verified = true;
      record.oracleMaxAbsDiff = diff;
      span.attr("verified", true);
      span.attr("oracle_max_abs_diff", diff);
      if (instances != referenceInstances || diff > ctx.verify.tolerance) {
        std::ostringstream os;
        if (instances != referenceInstances)
          os << "executed " << instances << " statement instances, expected "
             << referenceInstances;
        else
          os << "max |diff| " << diff << " exceeds tolerance "
             << ctx.verify.tolerance;
        if (!ctx.verify.continueAfterFailure) {
          recordPassMetrics(*ctx.metrics, record);
          ctx.report.passes.push_back(std::move(record));
          ctx.report.totalMillis = msSince(pipelineStart);
          throw VerificationError(pass->name(), os.str());
        }
        // Record the break and re-base the oracle reference onto the
        // broken output, so the next pass is judged only on divergence it
        // introduces itself.
        record.semanticsBroken = true;
        record.verifyNote = os.str();
        span.attr("semantics_broken", true);
        // The attr vector is built before instant() can check enabled();
        // guard here so a disabled run never pays for it.
        if (tracer.enabled())
          tracer.instant("semantics-break", "verify",
                         {{"pass", obs::AttrValue(pass->name())}});
        reference = std::move(current);
        referenceInstances = instances;
      }
    }
    recordPassMetrics(*ctx.metrics, record);
    ctx.report.passes.push_back(std::move(record));
  }

  out.name = input.name + nameSuffix;
  ctx.report.totalMillis = msSince(pipelineStart);
  ctx.metrics->gauge("flow.total_millis").set(ctx.report.totalMillis);

  // Schedule selection is final here: record what the DL model predicts
  // for the loop structure the pipeline just committed to (dl.predict.*),
  // so `--perf` runs can put measured counters next to it (dlcheck).
  dl::recordPrediction(
      dl::predictProgram(out, ctx.verify.params), *ctx.metrics);
  return out;
}

}  // namespace polyast::flow
