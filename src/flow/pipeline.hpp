// PassPipeline: an ordered, instrumented sequence of passes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "flow/pass.hpp"

namespace polyast::flow {

/// An ordered list of passes executed left to right over a copy of the
/// input program. Execution fills PassContext::report with per-pass
/// timing, counters, and oracle verdicts; see pass.hpp.
class PassPipeline {
 public:
  PassPipeline() = default;
  explicit PassPipeline(std::string name) : name_(std::move(name)) {}

  /// Appends a pass; returns *this for chaining.
  PassPipeline& add(std::shared_ptr<Pass> pass);

  const std::string& name() const { return name_; }
  const std::vector<std::shared_ptr<Pass>>& passes() const { return passes_; }
  /// Pass names in execution order (for tests and CLI listings).
  std::vector<std::string> passNames() const;

  /// Suffix appended to the output program's name ("_polyast", "_pocc");
  /// empty for the identity pipeline.
  std::string nameSuffix;

  /// Runs every pass over a deep copy of `input` and returns the result.
  /// Throws VerificationError when ctx.verify is enabled and a pass
  /// breaks semantics; rethrows pass errors otherwise.
  ir::Program run(const ir::Program& input, PassContext& ctx) const;
  /// Convenience overload with a throwaway context.
  ir::Program run(const ir::Program& input) const;

 private:
  std::string name_;
  std::vector<std::shared_ptr<Pass>> passes_;
};

}  // namespace polyast::flow
