#include "intset/intset.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>

#include "obs/selfprof.hpp"
#include "support/error.hpp"
#include "support/rational.hpp"

namespace polyast {

namespace selfprof = obs::selfprof;

namespace {

/// Sentinel for "this system is infeasible": 0 >= -1 is fine, 0 >= 1 is not.
bool isTriviallyFalse(const Constraint& c) {
  for (std::int64_t v : c.coeffs)
    if (v != 0) return false;
  return c.isEquality ? c.constant != 0 : c.constant < 0;
}

bool isTriviallyTrue(const Constraint& c) {
  for (std::int64_t v : c.coeffs)
    if (v != 0) return false;
  return c.isEquality ? c.constant == 0 : c.constant >= 0;
}

/// Fourier–Motzkin can square the system per eliminated variable; past
/// this size callers bail out in their conservative direction ("maybe
/// nonempty" / "no finite bound").
constexpr std::size_t kFmConstraintCap = 2048;

/// Picks the next elimination variable among columns [0, numCols). First
/// choice: a variable carried by a unit-coefficient equality — Gaussian
/// substitution on it is integer-exact, so gcd infeasibilities in the
/// remaining equalities (e.g. stride parities) stay detectable. Otherwise
/// greedily minimizes the FM blowup |lowers| * |uppers| (the scaled
/// substitution used for non-unit equalities is linear, so those count as
/// the system size). Returns false when the system is already over the
/// cap or even the cheapest choice would blow past it.
bool chooseFmVar(const std::vector<Constraint>& cs, std::size_t numCols,
                 std::size_t* var) {
  if (cs.size() > kFmConstraintCap) return false;
  for (const auto& c : cs) {
    if (!c.isEquality) continue;
    for (std::size_t v = 0; v < numCols; ++v) {
      if (c.coeffs[v] == 1 || c.coeffs[v] == -1) {
        *var = v;
        return true;
      }
    }
  }
  std::size_t bestCost = std::numeric_limits<std::size_t>::max();
  *var = 0;
  for (std::size_t v = 0; v < numCols; ++v) {
    std::size_t lowers = 0, uppers = 0;
    bool hasEq = false;
    for (const auto& c : cs) {
      if (c.coeffs[v] == 0) continue;
      if (c.isEquality) hasEq = true;
      else if (c.coeffs[v] > 0) ++lowers;
      else ++uppers;
    }
    std::size_t cost = hasEq ? cs.size() : lowers * uppers;
    if (cost < bestCost) {
      bestCost = cost;
      *var = v;
    }
  }
  return bestCost <= kFmConstraintCap * 16;
}

}  // namespace

std::string Constraint::str(const std::vector<std::string>& names) const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    if (coeffs[i] == 0) continue;
    std::int64_t c = coeffs[i];
    if (!first) os << (c > 0 ? " + " : " - ");
    else if (c < 0) os << "-";
    first = false;
    std::int64_t a = c < 0 ? -c : c;
    if (a != 1) os << a << "*";
    os << (i < names.size() ? names[i] : "x" + std::to_string(i));
  }
  if (first) os << "0";
  if (constant > 0) os << " + " << constant;
  if (constant < 0) os << " - " << -constant;
  os << (isEquality ? " == 0" : " >= 0");
  return os.str();
}

LinExpr LinExpr::var(std::size_t index, std::size_t numVars) {
  LinExpr e;
  e.coeffs.assign(numVars, 0);
  POLYAST_CHECK(index < numVars, "LinExpr::var index out of range");
  e.coeffs[index] = 1;
  return e;
}

LinExpr LinExpr::constantExpr(std::int64_t c, std::size_t numVars) {
  LinExpr e;
  e.coeffs.assign(numVars, 0);
  e.constant = c;
  return e;
}

LinExpr LinExpr::operator-(const LinExpr& o) const {
  POLYAST_CHECK(coeffs.size() == o.coeffs.size(), "LinExpr space mismatch");
  LinExpr e = *this;
  for (std::size_t i = 0; i < coeffs.size(); ++i) e.coeffs[i] -= o.coeffs[i];
  e.constant -= o.constant;
  return e;
}

LinExpr LinExpr::operator+(const LinExpr& o) const {
  POLYAST_CHECK(coeffs.size() == o.coeffs.size(), "LinExpr space mismatch");
  LinExpr e = *this;
  for (std::size_t i = 0; i < coeffs.size(); ++i) e.coeffs[i] += o.coeffs[i];
  e.constant += o.constant;
  return e;
}

IntSet::IntSet(std::vector<std::string> varNames)
    : names_(std::move(varNames)) {}

void IntSet::addInequality(std::vector<std::int64_t> coeffs,
                           std::int64_t constant) {
  POLYAST_CHECK(coeffs.size() == numVars(), "constraint dimension mismatch");
  addConstraint({std::move(coeffs), constant, /*isEquality=*/false});
}

void IntSet::addEquality(std::vector<std::int64_t> coeffs,
                         std::int64_t constant) {
  POLYAST_CHECK(coeffs.size() == numVars(), "constraint dimension mismatch");
  addConstraint({std::move(coeffs), constant, /*isEquality=*/true});
}

void IntSet::addBounds(std::size_t var, std::int64_t lo, std::int64_t hi) {
  POLYAST_CHECK(var < numVars(), "addBounds var out of range");
  std::vector<std::int64_t> c(numVars(), 0);
  c[var] = 1;
  addInequality(c, -lo);  // x - lo >= 0
  c[var] = -1;
  addInequality(std::move(c), hi);  // hi - x >= 0
}

void IntSet::addConstraint(Constraint c) {
  POLYAST_CHECK(c.coeffs.size() == numVars(), "constraint dimension mismatch");
  normalize(c);
  cs_.push_back(std::move(c));
}

void IntSet::normalize(Constraint& c) {
  std::int64_t g = 0;
  for (std::int64_t v : c.coeffs) g = gcd64(g, v);
  if (g == 0) return;  // pure constant constraint; leave as-is
  if (c.isEquality) {
    if (c.constant % g != 0) {
      // No integer (indeed no rational scaled) solution: mark infeasible.
      for (auto& v : c.coeffs) v = 0;
      c.constant = 1;  // 1 == 0 is false
      return;
    }
    c.constant /= g;
  } else {
    // Integer tightening: sum(c/g)x >= ceil(-constant/g)  i.e. constant' =
    // floor(constant/g).
    c.constant = floorDiv(c.constant, g);
  }
  for (auto& v : c.coeffs) v /= g;
}

std::vector<Constraint> IntSet::prune(std::vector<Constraint> cs) {
  std::vector<Constraint> out;
  for (auto& c : cs) {
    if (isTriviallyTrue(c)) continue;
    if (isTriviallyFalse(c)) return {c};  // whole system infeasible
    out.push_back(std::move(c));
  }
  // Syntactic dedup, and keep only the tightest constant per coefficient
  // vector (for inequalities, larger constant is looser: a.x + c >= 0 with
  // smaller c implies the one with larger c).
  std::map<std::pair<std::vector<std::int64_t>, bool>, std::int64_t> best;
  cs = std::move(out);
  out.clear();
  for (const auto& c : cs) {
    auto key = std::make_pair(c.coeffs, c.isEquality);
    auto it = best.find(key);
    if (it == best.end()) {
      best.emplace(key, c.constant);
    } else if (!c.isEquality) {
      it->second = std::min(it->second, c.constant);
    } else if (it->second != c.constant) {
      // Two equalities a.x + c1 == 0 and a.x + c2 == 0 with c1 != c2.
      Constraint f;
      f.coeffs.assign(c.coeffs.size(), 0);
      f.constant = 1;
      f.isEquality = true;
      return {f};
    }
  }
  for (auto& [key, constant] : best) {
    Constraint c;
    c.coeffs = key.first;
    c.isEquality = key.second;
    c.constant = constant;
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<Constraint> IntSet::eliminate(std::vector<Constraint> cs,
                                          std::size_t var) {
  // Self-profiling: one elimination, cs.size() rows in; the matching
  // constraints_out is counted at each exit below (post-prune).
  selfprof::count(selfprof::Op::FmEliminations);
  selfprof::count(selfprof::Op::FmConstraintsIn,
                  static_cast<std::int64_t>(cs.size()));
  // Prefer Gaussian substitution when an equality involves `var`.
  std::size_t eqIdx = cs.size();
  std::int64_t bestAbs = 0;
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (!cs[i].isEquality || cs[i].coeffs[var] == 0) continue;
    std::int64_t a = std::abs(cs[i].coeffs[var]);
    if (eqIdx == cs.size() || a < bestAbs) {
      eqIdx = i;
      bestAbs = a;
    }
  }
  std::vector<Constraint> out;
  auto dropColumn = [var](Constraint& c) {
    c.coeffs.erase(c.coeffs.begin() + static_cast<std::ptrdiff_t>(var));
  };
  if (eqIdx != cs.size()) {
    Constraint eq = cs[eqIdx];
    std::int64_t a = eq.coeffs[var];
    for (std::size_t i = 0; i < cs.size(); ++i) {
      if (i == eqIdx) continue;
      Constraint c = cs[i];
      std::int64_t d = c.coeffs[var];
      if (d != 0) {
        // Scale c by |a| (positive, preserves direction) and cancel var
        // with a multiple of the equality.
        std::int64_t scale = std::abs(a);
        std::int64_t mult = (a > 0) ? -d : d;
        for (std::size_t j = 0; j < c.coeffs.size(); ++j)
          c.coeffs[j] = checkedAdd(checkedMul(c.coeffs[j], scale),
                                   checkedMul(eq.coeffs[j], mult));
        c.constant = checkedAdd(checkedMul(c.constant, scale),
                                checkedMul(eq.constant, mult));
      }
      normalize(c);
      dropColumn(c);
      out.push_back(std::move(c));
    }
    out = prune(out);
    selfprof::count(selfprof::Op::FmConstraintsOut,
                    static_cast<std::int64_t>(out.size()));
    return out;
  }
  // Classic Fourier–Motzkin on inequalities.
  std::vector<Constraint> lowers, uppers;
  for (auto& c : cs) {
    std::int64_t d = c.coeffs[var];
    if (d == 0) {
      dropColumn(c);
      out.push_back(std::move(c));
    } else if (d > 0) {
      lowers.push_back(std::move(c));  // d*var >= -(rest)
    } else {
      uppers.push_back(std::move(c));  // (-d)*var <= rest
    }
  }
  for (const auto& lo : lowers)
    for (const auto& up : uppers) {
      std::int64_t a = lo.coeffs[var];    // > 0
      std::int64_t b = -up.coeffs[var];   // > 0
      Constraint c;
      c.coeffs.resize(lo.coeffs.size());
      for (std::size_t j = 0; j < lo.coeffs.size(); ++j)
        c.coeffs[j] = checkedAdd(checkedMul(b, lo.coeffs[j]),
                                 checkedMul(a, up.coeffs[j]));
      c.constant = checkedAdd(checkedMul(b, lo.constant),
                              checkedMul(a, up.constant));
      c.isEquality = false;
      normalize(c);
      dropColumn(c);
      out.push_back(std::move(c));
    }
  out = prune(out);
  selfprof::count(selfprof::Op::FmConstraintsOut,
                  static_cast<std::int64_t>(out.size()));
  return out;
}

bool IntSet::isEmpty() const {
  selfprof::count(selfprof::Op::IntsetEmptyTests);
  std::vector<Constraint> cs = prune(cs_);
  for (std::size_t remaining = numVars(); remaining > 0; --remaining) {
    for (const auto& c : cs)
      if (isTriviallyFalse(c)) return true;
    // Cap hit: "maybe nonempty" is the conservative direction for every
    // caller (dependences are kept, analyses report at reduced severity).
    std::size_t var = 0;
    if (!chooseFmVar(cs, remaining, &var)) {
      selfprof::count(selfprof::Op::FmCapHits);
      return false;
    }
    cs = eliminate(std::move(cs), var);
  }
  for (const auto& c : cs)
    if (isTriviallyFalse(c)) return true;
  return false;
}

bool IntSet::contains(const std::vector<std::int64_t>& point) const {
  POLYAST_CHECK(point.size() == numVars(), "contains dimension mismatch");
  for (const auto& c : cs_) {
    std::int64_t v = c.constant;
    for (std::size_t i = 0; i < point.size(); ++i)
      v = checkedAdd(v, checkedMul(c.coeffs[i], point[i]));
    if (c.isEquality ? v != 0 : v < 0) return false;
  }
  return true;
}

IntSet IntSet::project(const std::vector<std::size_t>& keep) const {
  selfprof::count(selfprof::Op::IntsetProjects);
  std::vector<bool> keepMask(numVars(), false);
  for (std::size_t k : keep) {
    POLYAST_CHECK(k < numVars(), "project index out of range");
    keepMask[k] = true;
  }
  std::vector<Constraint> cs = prune(cs_);
  std::vector<std::string> names = names_;
  // Eliminate from the highest index down so earlier indices stay valid.
  for (std::size_t i = numVars(); i-- > 0;) {
    if (keepMask[i]) continue;
    cs = eliminate(std::move(cs), i);
    names.erase(names.begin() + static_cast<std::ptrdiff_t>(i));
  }
  // Restore the caller's requested order of kept variables.
  std::vector<std::size_t> keptSorted;
  for (std::size_t i = 0; i < numVars(); ++i)
    if (keepMask[i]) keptSorted.push_back(i);
  std::vector<std::size_t> order(keep.size());
  for (std::size_t j = 0; j < keep.size(); ++j) {
    auto it = std::find(keptSorted.begin(), keptSorted.end(), keep[j]);
    order[j] = static_cast<std::size_t>(it - keptSorted.begin());
  }
  IntSet out;
  out.names_.resize(keep.size());
  for (std::size_t j = 0; j < keep.size(); ++j)
    out.names_[j] = names[order[j]];
  for (auto& c : cs) {
    Constraint r;
    r.coeffs.resize(keep.size());
    for (std::size_t j = 0; j < keep.size(); ++j)
      r.coeffs[j] = c.coeffs[order[j]];
    r.constant = c.constant;
    r.isEquality = c.isEquality;
    out.cs_.push_back(std::move(r));
  }
  return out;
}

std::optional<std::int64_t> IntSet::minOf(const LinExpr& e) const {
  selfprof::count(selfprof::Op::IntsetBoundQueries);
  POLYAST_CHECK(e.coeffs.size() == numVars(), "minOf dimension mismatch");
  // Append t = e, eliminate every original variable, read bounds on t.
  std::vector<Constraint> cs;
  cs.reserve(cs_.size() + 1);
  for (const auto& c : cs_) {
    Constraint r = c;
    r.coeffs.push_back(0);
    cs.push_back(std::move(r));
  }
  Constraint def;
  def.coeffs.resize(numVars() + 1);
  for (std::size_t i = 0; i < numVars(); ++i) def.coeffs[i] = -e.coeffs[i];
  def.coeffs[numVars()] = 1;
  def.constant = -e.constant;
  def.isEquality = true;
  cs.push_back(std::move(def));
  for (std::size_t i = 0; i < numVars(); ++i) {
    for (const auto& c : cs)
      if (isTriviallyFalse(c)) return std::nullopt;  // empty set
    // The t column stays last throughout; eliminate among the others.
    // Cap hit: "no finite bound" is the conservative direction (callers
    // decline to conclude anything from an unbounded distance).
    std::size_t cols = numVars() - i;
    std::size_t var = 0;
    if (!chooseFmVar(cs, cols, &var)) {
      selfprof::count(selfprof::Op::FmCapHits);
      return std::nullopt;
    }
    cs = eliminate(std::move(cs), var);
  }
  std::optional<std::int64_t> lo, hi;
  for (const auto& c : cs) {
    if (isTriviallyFalse(c)) return std::nullopt;
    POLYAST_CHECK(c.coeffs.size() == 1, "unexpected residual space");
    std::int64_t a = c.coeffs[0];
    if (a == 0) continue;
    // a*t + const >= 0: lower bound for a > 0, upper bound for a < 0;
    // equalities contribute both.
    if (a > 0 || c.isEquality) {
      std::int64_t sa = a > 0 ? a : -a;
      std::int64_t num = a > 0 ? -c.constant : c.constant;
      std::int64_t bound = ceilDiv(num, sa);
      if (!lo || bound > *lo) lo = bound;
    }
    if (a < 0 || c.isEquality) {
      std::int64_t sa = a > 0 ? a : -a;
      std::int64_t num = a > 0 ? -c.constant : c.constant;
      std::int64_t bound = floorDiv(num, sa);
      if (!hi || bound < *hi) hi = bound;
    }
  }
  // Contradictory residual bounds mean the set was empty all along.
  if (lo && hi && *lo > *hi) return std::nullopt;
  return lo;
}

std::optional<std::int64_t> IntSet::maxOf(const LinExpr& e) const {
  LinExpr neg;
  neg.coeffs.resize(e.coeffs.size());
  for (std::size_t i = 0; i < e.coeffs.size(); ++i) neg.coeffs[i] = -e.coeffs[i];
  neg.constant = -e.constant;
  auto r = minOf(neg);
  if (!r) return std::nullopt;
  return -*r;
}

bool IntSet::enumerate(
    const std::function<bool(const std::vector<std::int64_t>&)>& fn) const {
  if (isEmpty()) return true;
  std::size_t n = numVars();
  std::vector<std::int64_t> lo(n), hi(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto mn = minOf(LinExpr::var(i, n));
    auto mx = maxOf(LinExpr::var(i, n));
    POLYAST_CHECK(mn && mx, "enumerate requires a bounded set");
    lo[i] = *mn;
    hi[i] = *mx;
  }
  // Constraints checkable once the first k variables are fixed.
  std::vector<std::vector<const Constraint*>> byDepth(n + 1);
  for (const auto& c : cs_) {
    std::size_t last = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (c.coeffs[i] != 0) last = i + 1;
    byDepth[last].push_back(&c);
  }
  std::vector<std::int64_t> point(n, 0);
  std::function<bool(std::size_t)> rec = [&](std::size_t depth) -> bool {
    if (depth == n) return fn(point);
    for (std::int64_t v = lo[depth]; v <= hi[depth]; ++v) {
      point[depth] = v;
      bool ok = true;
      for (const Constraint* c : byDepth[depth + 1]) {
        std::int64_t s = c->constant;
        for (std::size_t i = 0; i <= depth; ++i)
          s += c->coeffs[i] * point[i];
        if (c->isEquality ? s != 0 : s < 0) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      if (!rec(depth + 1)) return false;
    }
    return true;
  };
  return rec(0);
}

std::int64_t IntSet::countPoints() const {
  std::int64_t count = 0;
  enumerate([&](const std::vector<std::int64_t>&) {
    ++count;
    return true;
  });
  return count;
}

std::string IntSet::str() const {
  std::ostringstream os;
  os << "{ [";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (i) os << ", ";
    os << names_[i];
  }
  os << "] : ";
  for (std::size_t i = 0; i < cs_.size(); ++i) {
    if (i) os << " and ";
    os << cs_[i].str(names_);
  }
  if (cs_.empty()) os << "true";
  os << " }";
  return os.str();
}

}  // namespace polyast
