// Integer-set substrate: conjunctions of affine constraints over named
// integer variables, with Fourier–Motzkin elimination.
//
// This is the from-scratch replacement for the ISL/PipLib machinery the
// paper's implementation relies on. It supports exactly the operations the
// dependence analysis (Sec. III-A) and legality tests (Sec. III-C) need:
//
//   * emptiness testing (rational relaxation — conservative in the safe
//     direction: a set reported non-empty may still be integer-empty, so a
//     dependence is never missed),
//   * projection onto a subset of the variables,
//   * min/max bounds of an affine expression over the set,
//   * exhaustive integer-point enumeration for bounded sets (the oracle
//     used by the property tests).
//
// Sets are small here (tens of variables at most), so the classic FM
// algorithm with gcd normalization and syntactic redundancy pruning is
// entirely adequate.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace polyast {

/// One affine constraint: sum_i coeffs[i]*x_i + constant (>= or ==) 0.
struct Constraint {
  std::vector<std::int64_t> coeffs;
  std::int64_t constant = 0;
  bool isEquality = false;

  std::string str(const std::vector<std::string>& names) const;
};

/// An affine expression sum_i coeffs[i]*x_i + constant over a set's space.
struct LinExpr {
  std::vector<std::int64_t> coeffs;
  std::int64_t constant = 0;

  static LinExpr var(std::size_t index, std::size_t numVars);
  static LinExpr constantExpr(std::int64_t c, std::size_t numVars);
  LinExpr operator-(const LinExpr& o) const;
  LinExpr operator+(const LinExpr& o) const;
};

class IntSet {
 public:
  IntSet() = default;
  explicit IntSet(std::vector<std::string> varNames);

  std::size_t numVars() const { return names_.size(); }
  const std::vector<std::string>& varNames() const { return names_; }
  const std::vector<Constraint>& constraints() const { return cs_; }

  /// Adds sum coeffs[i]*x_i + constant >= 0.
  void addInequality(std::vector<std::int64_t> coeffs, std::int64_t constant);
  /// Adds sum coeffs[i]*x_i + constant == 0.
  void addEquality(std::vector<std::int64_t> coeffs, std::int64_t constant);
  /// Adds lo <= x_var <= hi.
  void addBounds(std::size_t var, std::int64_t lo, std::int64_t hi);
  void addConstraint(Constraint c);

  /// True if the set has no rational point (hence no integer point).
  /// This is the conservative emptiness test used for dependence existence.
  bool isEmpty() const;

  /// True if the given point satisfies every constraint.
  bool contains(const std::vector<std::int64_t>& point) const;

  /// Existentially projects away every variable NOT in `keep`, preserving
  /// the order of the kept variables. Rational projection (sound
  /// over-approximation of the integer projection).
  IntSet project(const std::vector<std::size_t>& keep) const;

  /// Minimum / maximum of an affine expression over the set, if the set is
  /// non-empty and the expression is bounded in that direction. Bounds are
  /// rational-relaxation bounds rounded toward the feasible region (ceil for
  /// min, floor for max), which is exact whenever the optimum is attained at
  /// integer points (true for all the loop-bound systems we build).
  std::optional<std::int64_t> minOf(const LinExpr& e) const;
  std::optional<std::int64_t> maxOf(const LinExpr& e) const;

  /// Enumerates all integer points (requires every variable bounded).
  /// Callback may return false to stop early; enumerate returns false in
  /// that case. Intended for tests / small oracle computations only.
  bool enumerate(
      const std::function<bool(const std::vector<std::int64_t>&)>& fn) const;

  /// Number of integer points (requires bounded set; test-scale sizes).
  std::int64_t countPoints() const;

  std::string str() const;

 private:
  /// FM-eliminates variable `var`, returning the projected constraint list
  /// over the remaining variables (same indices, column removed).
  static std::vector<Constraint> eliminate(std::vector<Constraint> cs,
                                           std::size_t var);
  static void normalize(Constraint& c);
  static std::vector<Constraint> prune(std::vector<Constraint> cs);

  std::vector<std::string> names_;
  std::vector<Constraint> cs_;
};

}  // namespace polyast
