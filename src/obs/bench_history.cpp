#include "obs/bench_history.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "obs/json.hpp"
#include "support/error.hpp"

namespace polyast::obs {

const BenchKernelSample* BenchEntry::find(const std::string& kernel) const {
  for (const auto& k : kernels)
    if (k.kernel == kernel) return &k;
  return nullptr;
}

BenchHistory parseBenchHistory(const std::string& text) {
  JsonValue root = parseJson(text);
  POLYAST_CHECK(root.isObject(), "bench history: not a JSON object");
  const JsonValue* schema = root.find("schema");
  POLYAST_CHECK(schema && schema->isString() &&
                    schema->text == "polyast-bench-history-v1",
                "bench history: missing/wrong schema tag");
  BenchHistory out;
  if (const JsonValue* host = root.find("host"); host && host->isString())
    out.host = host->text;
  const JsonValue* entries = root.find("entries");
  POLYAST_CHECK(entries && entries->isArray(),
                "bench history: missing entries array");
  for (const JsonValue& e : entries->items) {
    POLYAST_CHECK(e.isObject(), "bench history: entry is not an object");
    BenchEntry entry;
    if (const JsonValue* v = e.find("timestamp"); v && v->isString())
      entry.timestamp = v->text;
    if (const JsonValue* v = e.find("label"); v && v->isString())
      entry.label = v->text;
    const JsonValue* kernels = e.find("kernels");
    POLYAST_CHECK(kernels && kernels->isArray(),
                  "bench history: entry without kernels array");
    for (const JsonValue& k : kernels->items) {
      POLYAST_CHECK(k.isObject(), "bench history: kernel is not an object");
      BenchKernelSample sample;
      const JsonValue* name = k.find("kernel");
      POLYAST_CHECK(name && name->isString(),
                    "bench history: kernel without name");
      sample.kernel = name->text;
      const JsonValue* wall = k.find("wall_ns");
      POLYAST_CHECK(wall && wall->isNumber(),
                    "bench history: kernel without wall_ns");
      sample.wallNs = wall->number;
      if (const JsonValue* c = k.find("counters"); c && c->isObject())
        for (const auto& [cname, cv] : c->members)
          if (cv.isNumber()) sample.counters[cname] = cv.number;
      entry.kernels.push_back(std::move(sample));
    }
    out.entries.push_back(std::move(entry));
  }
  return out;
}

BenchHistory loadBenchHistory(const std::string& path,
                              const std::string& host) {
  std::ifstream in(path);
  if (!in.good()) {
    BenchHistory fresh;
    fresh.host = host;
    return fresh;  // first run: no history yet
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parseBenchHistory(buf.str());
}

void saveBenchHistory(const std::string& path, const BenchHistory& history,
                      std::size_t maxEntries) {
  std::ofstream out(path);
  POLYAST_CHECK(out.good(), "cannot write " + path);
  std::size_t first = 0;
  if (maxEntries > 0 && history.entries.size() > maxEntries)
    first = history.entries.size() - maxEntries;
  JsonWriter w(out);
  w.beginObject();
  w.key("schema").value("polyast-bench-history-v1");
  w.key("host").value(history.host);
  w.key("entries").beginArray();
  for (std::size_t i = first; i < history.entries.size(); ++i) {
    const BenchEntry& e = history.entries[i];
    w.beginObject();
    w.key("timestamp").value(e.timestamp);
    w.key("label").value(e.label);
    w.key("kernels").beginArray();
    for (const auto& k : e.kernels) {
      w.beginObject();
      w.key("kernel").value(k.kernel);
      w.key("wall_ns").value(k.wallNs);
      w.key("counters").beginObject();
      for (const auto& [name, v] : k.counters) w.key(name).value(v);
      w.endObject();
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
  w.endArray();
  w.endObject();
  out << "\n";
  POLYAST_CHECK(out.good(), "error writing " + path);
}

BenchCompareResult compareAgainstLatest(
    const BenchHistory& history, const BenchEntry& head, double thresholdPct,
    const std::map<std::string, double>* perKernelThresholds) {
  BenchCompareResult out;
  if (history.entries.empty()) {
    out.firstRun = true;
    return out;
  }
  const BenchEntry& base = history.entries.back();
  std::set<std::string> baseSeen;
  for (const auto& k : head.kernels) {
    const BenchKernelSample* b = base.find(k.kernel);
    if (!b) {
      out.added.push_back(k.kernel);
      continue;
    }
    baseSeen.insert(k.kernel);
    BenchDelta d;
    d.kernel = k.kernel;
    d.baseNs = b->wallNs;
    d.headNs = k.wallNs;
    d.deltaPct =
        b->wallNs > 0.0 ? (k.wallNs / b->wallNs - 1.0) * 100.0 : 0.0;
    d.thresholdPct = thresholdPct;
    if (perKernelThresholds)
      if (auto it = perKernelThresholds->find(k.kernel);
          it != perKernelThresholds->end())
        d.thresholdPct = it->second;
    d.regression = d.deltaPct > d.thresholdPct;
    if (d.regression) ++out.regressions;
    out.deltas.push_back(std::move(d));
  }
  for (const auto& k : base.kernels)
    if (!baseSeen.count(k.kernel)) out.removed.push_back(k.kernel);
  return out;
}

std::map<std::string, double> characterizeNoiseFloor(
    const BenchHistory& history, const BenchEntry& head) {
  std::map<std::string, double> floor;
  auto absorb = [&](const BenchEntry& e) {
    for (const auto& k : e.kernels) {
      double spread = 0.0;
      if (auto it = k.counters.find("wall_spread_pct");
          it != k.counters.end() && it->second > 0.0)
        spread = it->second;
      auto [slot, inserted] = floor.emplace(k.kernel, spread);
      if (!inserted && spread > slot->second) slot->second = spread;
    }
  };
  for (const auto& e : history.entries) absorb(e);
  absorb(head);

  // Fallback for series that never carry a within-run spread (single-shot
  // measurements such as compile@<family> rows): characterize from the
  // run-to-run variation of the recorded wall times instead. Only the
  // trailing window of history entries counts (old machines/configs would
  // poison the floor) and the head run is excluded — a head regression
  // must not widen its own threshold.
  constexpr std::size_t kCrossEntryWindow = 8;
  std::size_t first = history.entries.size() > kCrossEntryWindow
                          ? history.entries.size() - kCrossEntryWindow
                          : 0;
  for (auto& [kernel, spread] : floor) {
    if (spread > 0.0) continue;
    std::vector<double> walls;
    for (std::size_t i = first; i < history.entries.size(); ++i)
      if (const BenchKernelSample* s = history.entries[i].find(kernel))
        if (s->wallNs > 0.0) walls.push_back(s->wallNs);
    if (walls.size() < 2) continue;  // nothing to characterize from yet
    std::sort(walls.begin(), walls.end());
    double median = walls[walls.size() / 2];
    if (median <= 0.0) continue;
    spread = (walls.back() - walls.front()) / median * 100.0;
  }
  return floor;
}

}  // namespace polyast::obs
