#include "obs/export.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"
#include "support/error.hpp"

namespace polyast::obs {

namespace {

void writeAttrValue(JsonWriter& w, const AttrValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) w.value(*i);
  else if (const auto* d = std::get_if<double>(&v)) w.value(*d);
  else if (const auto* b = std::get_if<bool>(&v)) w.value(*b);
  else w.value(std::get<std::string>(v));
}

}  // namespace

void writeChromeTrace(std::ostream& out, const Tracer& tracer) {
  JsonWriter w(out);
  w.beginObject();
  w.key("traceEvents").beginArray();
  for (const auto& [tid, name] : tracer.threadNames()) {
    w.beginObject();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(1);
    w.key("tid").value(static_cast<std::int64_t>(tid));
    w.key("args").beginObject().key("name").value(name).endObject();
    w.endObject();
  }
  for (const auto& span : tracer.spans()) {
    w.beginObject();
    w.key("name").value(span.name);
    if (!span.category.empty()) w.key("cat").value(span.category);
    w.key("ph").value(span.instant ? "i" : "X");
    w.key("ts").value(static_cast<double>(span.startNs) / 1000.0);
    if (!span.instant)
      w.key("dur").value(static_cast<double>(span.durNs) / 1000.0);
    else
      w.key("s").value("t");  // instant scope: thread
    w.key("pid").value(1);
    w.key("tid").value(static_cast<std::int64_t>(span.threadId));
    w.key("args").beginObject();
    w.key("span_id").value(span.id);
    if (span.parentId != 0) w.key("parent_id").value(span.parentId);
    for (const auto& [key, value] : span.attrs) {
      w.key(key);
      writeAttrValue(w, value);
    }
    w.endObject();
    w.endObject();
  }
  w.endArray();
  w.key("displayTimeUnit").value("ms");
  w.endObject();
  out << "\n";
}

void writeMetricsJson(std::ostream& out, const MetricsSnapshot& snapshot) {
  JsonWriter w(out);
  w.beginObject();
  w.key("schema").value("polyast-metrics-v1");
  w.key("counters").beginObject();
  for (const auto& [name, v] : snapshot.counters) w.key(name).value(v);
  w.endObject();
  w.key("gauges").beginObject();
  for (const auto& [name, v] : snapshot.gauges) w.key(name).value(v);
  w.endObject();
  w.key("histograms").beginObject();
  for (const auto& [name, h] : snapshot.histograms) {
    w.key(name).beginObject();
    w.key("bounds").beginArray();
    for (double b : h.bounds) w.value(b);
    w.endArray();
    w.key("bucket_counts").beginArray();
    for (std::uint64_t c : h.bucketCounts) w.value(c);
    w.endArray();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.key("min").value(h.min);
    w.key("max").value(h.max);
    w.endObject();
  }
  w.endObject();
  w.key("notes").beginObject();
  for (const auto& [name, text] : snapshot.notes) w.key(name).value(text);
  w.endObject();
  w.endObject();
  out << "\n";
}

void writeMetricsCsv(std::ostream& out, const MetricsSnapshot& snapshot) {
  auto csvEscape = [](const std::string& s) {
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += "\"\"";
      else q += c;
    }
    return q + "\"";
  };
  out << "kind,name,key,value\n";
  for (const auto& [name, v] : snapshot.counters)
    out << "counter," << csvEscape(name) << ",value," << v << "\n";
  for (const auto& [name, v] : snapshot.gauges)
    out << "gauge," << csvEscape(name) << ",value," << formatJsonNumber(v)
        << "\n";
  for (const auto& [name, h] : snapshot.histograms) {
    // Bucket edges render via the same shortest-round-trip formatter as
    // the JSON exporter, so `le_<bound>` keys match the JSON `bounds`
    // array textually (previously they were truncated to ostream's
    // default 6 significant digits — "le_2.09715e+06").
    for (std::size_t i = 0; i < h.bucketCounts.size(); ++i) {
      std::string key = "le_";
      if (i < h.bounds.size()) key += formatJsonNumber(h.bounds[i]);
      else key += "inf";
      out << "histogram," << csvEscape(name) << "," << key << ","
          << h.bucketCounts[i] << "\n";
    }
    out << "histogram," << csvEscape(name) << ",count," << h.count << "\n";
    out << "histogram," << csvEscape(name) << ",sum,"
        << formatJsonNumber(h.sum) << "\n";
    out << "histogram," << csvEscape(name) << ",min,"
        << formatJsonNumber(h.min) << "\n";
    out << "histogram," << csvEscape(name) << ",max,"
        << formatJsonNumber(h.max) << "\n";
  }
  for (const auto& [name, text] : snapshot.notes)
    out << "note," << csvEscape(name) << ",text," << csvEscape(text) << "\n";
}

std::string metricsSummary(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  if (!snapshot.counters.empty()) {
    os << "counters:\n";
    for (const auto& [name, v] : snapshot.counters)
      os << "  " << std::left << std::setw(44) << name << std::right << v
         << "\n";
  }
  if (!snapshot.gauges.empty()) {
    os << "gauges:\n";
    for (const auto& [name, v] : snapshot.gauges)
      os << "  " << std::left << std::setw(44) << name << std::right << v
         << "\n";
  }
  if (!snapshot.histograms.empty()) {
    os << "histograms:\n";
    for (const auto& [name, h] : snapshot.histograms) {
      os << "  " << std::left << std::setw(44) << name << std::right
         << "n=" << h.count;
      if (h.count > 0)
        os << "  sum=" << h.sum << "  min=" << h.min << "  max=" << h.max
           << "  mean=" << h.sum / static_cast<double>(h.count);
      os << "\n";
    }
  }
  if (!snapshot.notes.empty()) {
    os << "notes:\n";
    for (const auto& [name, text] : snapshot.notes)
      os << "  " << name << " = " << text << "\n";
  }
  return os.str();
}

namespace {

std::ofstream openOut(const std::string& path) {
  std::ofstream out(path);
  POLYAST_CHECK(out.good(), "cannot write " + path);
  return out;
}

}  // namespace

void writeMetricsFile(const std::string& path,
                      const MetricsSnapshot& snapshot) {
  std::ofstream out = openOut(path);
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0)
    writeMetricsCsv(out, snapshot);
  else
    writeMetricsJson(out, snapshot);
  POLYAST_CHECK(out.good(), "error writing " + path);
}

void writeChromeTraceFile(const std::string& path, const Tracer& tracer) {
  std::ofstream out = openOut(path);
  writeChromeTrace(out, tracer);
  POLYAST_CHECK(out.good(), "error writing " + path);
}

}  // namespace polyast::obs
