// Construct-level attribution: per-parallel-construct tracing spans and
// hardware-counter profiles, shared by both execution backends.
//
// Both backends report construct boundaries through the same two free
// functions: the interpreted walker (exec/par_exec) calls
// constructEnter/constructExit around every marked-loop dispatch, and
// JIT-compiled kernels reach the identical pair through the ABI-v2
// construct_enter/construct_exit entries of the runtime/capi function
// table. The hooks do two independent things:
//
//   * Tracing: when the global Tracer is enabled, each construct
//     encounter becomes a "construct" span (kind:iter, with id/kind/iter
//     attributes) on the driving thread — native runs finally produce the
//     same runtime timeline interp runs always had.
//   * Profiling: when a ConstructProfiler is installed, every boundary
//     takes a cumulative grouped sample of a PerfSession
//     (PerfSession::sample — read without stopping) and charges the delta
//     since the previous boundary to the currently-open construct, or to
//     the residual when none is open. Because the deltas telescope, the
//     per-construct rows plus the residual sum *exactly* to the run
//     total — the invariant `obs_validate --attrib` enforces.
//
// Cost when disabled: constructHooksActive() is false, the capi table
// returned to kernels carries no-op hook entries, and the interp walker
// skips the bracket entirely — one predicate per run, not per encounter.
//
// Sampling semantics: the session lives on the driving thread, which
// participates in every runtime construct as one pool worker, so counter
// deltas are a ~1/threads proportional sample of the construct's total
// work — the right shape for rank correlation against DL per-nest
// predictions, not an absolute whole-machine count. Wall time is measured
// on the driving thread and is absolute.
//
// The polyast-attrib-v1 artifact pairs these rows with the DL model's
// per-nest predictions (plain numbers — obs cannot depend on src/dl) and
// adds per-kernel and pooled Spearman rank correlations.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/perf.hpp"

namespace polyast::obs {

/// One construct's accumulated profile within a single run.
struct ConstructRow {
  std::int64_t id = 0;
  std::string kind;  ///< ir::parallelKindName text ("doall", ...)
  std::string iter;  ///< the marked loop's iterator
  std::int64_t enters = 0;  ///< dynamic encounters
  PerfReading measured;     ///< telescoped deltas charged to this construct
};

/// Collects per-construct counter deltas for one kernel run at a time.
/// install() publishes the profiler to the process-global hook slot (one
/// profiled run at a time, like the capi RunCounters); the executing
/// backend brackets the run with beginRun()/endRun() on its driving
/// thread, and the construct hooks route enter/exit to it.
class ConstructProfiler {
 public:
  explicit ConstructProfiler(PerfOptions opts = {});
  ~ConstructProfiler();
  ConstructProfiler(const ConstructProfiler&) = delete;
  ConstructProfiler& operator=(const ConstructProfiler&) = delete;

  /// The installed profiler, or nullptr. Hooks check this on every call.
  static ConstructProfiler* current();
  /// Publishes this profiler to the hook slot / retracts it.
  void install();
  void uninstall();

  /// Starts a fresh measurement on the calling thread: clears previous
  /// rows, opens and starts a PerfSession here. Called by the backend
  /// that is about to execute (backend = "interp" or "native").
  void beginRun(const std::string& backend);
  /// Takes the final boundary sample and stops the session. After this,
  /// rows() + residual() sum exactly to total().
  void endRun();

  /// Construct boundaries (called via the free hooks below).
  void enter(std::int64_t id, const char* kind, const char* iter);
  void exit(std::int64_t id);

  /// Rows in construct-id order, the unattributed remainder, and the
  /// whole-run reading (valid after endRun()).
  std::vector<ConstructRow> rows() const;
  PerfReading residual() const;
  PerfReading total() const;
  const std::string& backend() const { return backend_; }
  bool degraded() const;
  const std::string& degradedReason() const;

 private:
  void boundary();  ///< sample, charge delta to open construct/residual

  PerfOptions opts_;
  mutable std::mutex mutex_;
  std::unique_ptr<PerfSession> session_;
  bool running_ = false;
  std::string backend_;
  std::map<std::int64_t, ConstructRow> rows_;
  std::vector<std::int64_t> stack_;  ///< open construct ids (driving thread)
  PerfReading lastSample_;
  PerfReading residual_;
  PerfReading total_;
};

/// True when any construct-boundary consumer is live (a profiler is
/// installed or the global tracer is enabled). The capi table selection
/// and the interp walker use this to make disabled runs hook-free.
bool constructHooksActive();

/// The construct boundary hooks both backends call (the native backend
/// through the capi table's construct_enter/construct_exit entries).
/// Safe with hooks inactive (early return). Must be called balanced on
/// the same thread.
void constructEnter(std::int64_t id, const char* kind, const char* iter);
void constructExit(std::int64_t id);

// ---------------------------------------------------------------------
// The polyast-attrib-v1 artifact.

/// One construct row paired with the DL model's predictions for the
/// nests it contains (summed over nests whose iterator chain the
/// construct's chain prefixes; plain numbers — src/dl produces them).
struct AttribConstruct {
  std::int64_t id = 0;
  std::string kind;
  std::string iter;
  std::string nest;  ///< dotted enclosing-iterator chain, e.g. "i.j"
  std::int64_t enters = 0;
  double predictedLines = 0.0;
  double predictedCost = 0.0;
  double predictedIters = 0.0;
  int predictedNests = 0;  ///< DL nests matched to this construct
  PerfReading measured;
};

struct AttribKernel {
  std::string kernel;
  std::string pipeline;
  std::string backend = "interp";
  PerfReading total;     ///< whole-run reading (driving thread)
  PerfReading residual;  ///< total minus all construct rows
  std::vector<AttribConstruct> constructs;
};

struct AttribReport {
  std::vector<AttribKernel> kernels;
  int threads = 1;
};

/// Writes the polyast-attrib-v1 JSON:
/// {"schema":"polyast-attrib-v1","threads":N,"degraded":bool,
///  "kernels":[{"kernel","pipeline","backend",
///    "total":{"degraded","degraded_reason"?,"wall_ns","tsc_cycles",
///             "multiplex_ratio","counters":{...}},
///    "residual":{"wall_ns","tsc_cycles","counters":{...}},
///    "constructs":[{"id","kind","iter","nest","enters",
///      "predicted":{"lines","cost","iters","nests"},
///      "measured":{"wall_ns","tsc_cycles","counters":{...}}}],
///    "summary":{"construct_count",
///      "rank_correlation":{"cost_vs_wall_ns","lines_vs_l1d_misses"}}}],
///  "summary":{"kernel_count","construct_count",
///    "rank_correlation":{"cost_vs_wall_ns","lines_vs_l1d_misses"}}}
/// Invariant: per kernel, residual + sum(constructs[].measured) equals
/// total exactly — wall_ns always, each hardware counter whenever every
/// row carries it. Rank correlations are per-construct (pooled across
/// kernels in the top-level summary), null when undefined.
void writeAttrib(std::ostream& out, const AttribReport& report);
void writeAttribFile(const std::string& path, const AttribReport& report);

}  // namespace polyast::obs
