#include "obs/selfprof.hpp"

#include <cctype>
#include <fstream>
#include <ostream>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace polyast::obs::selfprof {

namespace {

constexpr const char* kOpNames[kOpCount] = {
    "fm.eliminations",  "fm.constraints_in", "fm.constraints_out",
    "fm.cap_hits",      "intset.empty_tests", "intset.projects",
    "intset.bound_queries", "dep.tests",     "dep.proven",
    "dep.disproven",    "dep.sampled_tests", "dep.sampled_ns",
    "sel.candidates",   "sel.cap_hits",      "sel.fallbacks",
};

/// Reads one "Vm...: <n> kB" line from /proc/self/status. Returns 0 when
/// the file or field is unavailable (non-Linux, restricted procfs).
std::int64_t readProcStatusKb(const char* field) {
  std::ifstream status("/proc/self/status");
  if (!status.good()) return 0;
  std::string line;
  const std::string prefix = std::string(field) + ":";
  while (std::getline(status, line)) {
    if (line.compare(0, prefix.size(), prefix) != 0) continue;
    std::size_t i = prefix.size();
    while (i < line.size() && !std::isdigit(static_cast<unsigned char>(line[i])))
      ++i;
    std::int64_t kb = 0;
    bool any = false;
    while (i < line.size() && std::isdigit(static_cast<unsigned char>(line[i]))) {
      kb = kb * 10 + (line[i] - '0');
      any = true;
      ++i;
    }
    return any ? kb : 0;
  }
  return 0;
}

void writeCounterObject(JsonWriter& w,
                        const std::vector<std::pair<std::string, std::int64_t>>&
                            counters) {
  w.beginObject();
  for (const auto& [name, v] : counters) w.key(name).value(v);
  w.endObject();
}

}  // namespace

const char* opName(Op op) { return kOpNames[static_cast<int>(op)]; }

const std::array<Op, kOpCount>& allOps() {
  static const std::array<Op, kOpCount> ops = [] {
    std::array<Op, kOpCount> a{};
    for (int i = 0; i < kOpCount; ++i) a[i] = static_cast<Op>(i);
    return a;
  }();
  return ops;
}

std::int64_t currentRssKb() { return readProcStatusKb("VmRSS"); }
std::int64_t peakRssKb() { return readProcStatusKb("VmHWM"); }

Snapshot snapshot() {
  Snapshot s{};
  for (int i = 0; i < kOpCount; ++i) s[i] = value(static_cast<Op>(i));
  return s;
}

void Collector::beginScop() {
  base_ = snapshot();
  open_ = true;
}

void Collector::endScop(std::string scop, std::int64_t statements,
                        std::int64_t loops, double compileMs) {
  POLYAST_CHECK(open_, "selfprof: endScop without beginScop");
  open_ = false;
  Snapshot now = snapshot();
  ScopRow row;
  row.scop = std::move(scop);
  row.statements = statements;
  row.loops = loops;
  row.compileMs = compileMs;
  row.rssHwmKb = peakRssKb();
  row.counters.reserve(kOpCount);
  for (int i = 0; i < kOpCount; ++i)
    row.counters.emplace_back(kOpNames[i], now[i] - base_[i]);
  rows_.push_back(std::move(row));
}

CompileProfile Collector::finish(std::string pipeline,
                                 std::string generator) const {
  CompileProfile profile;
  profile.pipeline = std::move(pipeline);
  profile.generator = std::move(generator);
  profile.scops = rows_;
  profile.rssHwmKb = peakRssKb();
  Snapshot totals = snapshot();
  Snapshot rowSum{};
  for (const auto& row : rows_)
    for (int i = 0; i < kOpCount; ++i) rowSum[i] += row.counters[i].second;
  profile.totals.reserve(kOpCount);
  profile.residual.reserve(kOpCount);
  for (int i = 0; i < kOpCount; ++i) {
    profile.totals.emplace_back(kOpNames[i], totals[i]);
    profile.residual.emplace_back(kOpNames[i], totals[i] - rowSum[i]);
  }
  return profile;
}

void mirrorToRegistry(Registry& reg) {
  for (Op op : allOps()) {
    Counter& c = reg.counter(std::string("selfprof.") + opName(op));
    std::int64_t delta = value(op) - c.value();
    if (delta > 0) c.add(delta);
  }
}

void writeCompileProfile(std::ostream& out, const CompileProfile& profile) {
  JsonWriter w(out);
  w.beginObject();
  w.key("schema").value("polyast-compile-profile-v1");
  w.key("pipeline").value(profile.pipeline);
  if (!profile.generator.empty()) w.key("generator").value(profile.generator);
  w.key("scops").beginArray();
  for (const auto& row : profile.scops) {
    w.beginObject();
    w.key("scop").value(row.scop);
    w.key("statements").value(row.statements);
    w.key("loops").value(row.loops);
    w.key("compile_ms").value(row.compileMs);
    w.key("rss_hwm_kb").value(row.rssHwmKb);
    w.key("counters");
    writeCounterObject(w, row.counters);
    w.endObject();
  }
  w.endArray();
  w.key("residual").beginObject();
  w.key("counters");
  writeCounterObject(w, profile.residual);
  w.endObject();
  w.key("totals").beginObject();
  w.key("rss_hwm_kb").value(profile.rssHwmKb);
  w.key("counters");
  writeCounterObject(w, profile.totals);
  w.endObject();
  w.endObject();
  out << "\n";
}

void writeCompileProfileFile(const std::string& path,
                             const CompileProfile& profile) {
  std::ofstream out(path);
  POLYAST_CHECK(out.good(), "cannot write " + path);
  writeCompileProfile(out, profile);
  POLYAST_CHECK(out.good(), "error writing " + path);
}

}  // namespace polyast::obs::selfprof
