// Tracing core of the observability layer (src/obs): thread-safe
// Span/Tracer with RAII scoped spans, nested span parents, and typed
// key/value attributes.
//
// Cost model: every Span operation first checks Tracer::enabled() — a
// single relaxed atomic load — and does *nothing else* when tracing is
// off: no clock reads, no string copies, no allocation, no locking. The
// hot paths of the parallel runtime therefore stay unperturbed in a
// disabled run (the guarantee docs/OBSERVABILITY.md documents and the
// Fig. 6 bench checks). When enabled, spans buffer into the tracer under
// a mutex at *end* of span only — one lock per span, never inside the
// traced region.
//
// Span parents are tracked per thread: a span opened while another span
// of the same tracer is open on the same thread becomes its child. This
// matches Chrome trace-event nesting (which infers hierarchy from time
// containment per thread lane) while keeping explicit parent ids in the
// record for tests and non-Chrome consumers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

namespace polyast::obs {

/// Typed attribute value: integer, float, bool, or string.
using AttrValue = std::variant<std::int64_t, double, bool, std::string>;
using Attr = std::pair<std::string, AttrValue>;

/// Small dense id of the calling thread (assigned on first use, stable for
/// the thread's lifetime). Used as the Chrome trace `tid`.
std::uint32_t threadId();

/// One finished span (or instant event when `instant` is true, duration 0).
struct SpanRecord {
  std::string name;
  std::string category;
  std::uint64_t startNs = 0;  ///< relative to the tracer epoch
  std::uint64_t durNs = 0;
  std::uint32_t threadId = 0;
  std::uint64_t id = 0;        ///< unique per tracer, 1-based
  std::uint64_t parentId = 0;  ///< 0 = top-level
  bool instant = false;
  std::vector<Attr> attrs;
};

class Span;

/// Collects spans. Disabled by default; `polyastc --trace-out`, the bench
/// harness (POLYAST_OBS=1), and tests enable it.
class Tracer {
 public:
  Tracer();

  /// The process-wide tracer every instrumented subsystem records into.
  static Tracer& global();

  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records an instant event (no duration) when enabled.
  void instant(const char* name, const char* category,
               std::vector<Attr> attrs = {});

  /// Names the calling thread's lane in exported traces.
  void nameCurrentThread(const std::string& name);

  /// Copies of the finished spans / thread names, in completion order.
  std::vector<SpanRecord> spans() const;
  std::map<std::uint32_t, std::string> threadNames() const;

  /// Drops all recorded spans and resets the time epoch (tests, and
  /// polyastc between unrelated phases).
  void clear();

  /// Nanoseconds since the tracer epoch.
  std::uint64_t nowNs() const;

 private:
  friend class Span;

  std::uint64_t nextId() {
    return nextId_.fetch_add(1, std::memory_order_relaxed);
  }
  void record(SpanRecord&& rec);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> nextId_{1};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::map<std::uint32_t, std::string> threadNames_;
};

/// RAII scoped span. Construction opens the span (parenting it under the
/// innermost open span of the same tracer on this thread); destruction
/// stamps the duration and hands the record to the tracer. Inactive (and
/// costless beyond one atomic load) when the tracer is disabled.
class Span {
 public:
  Span(Tracer& tracer, const char* name, const char* category);
  /// Span on the global tracer.
  Span(const char* name, const char* category)
      : Span(Tracer::global(), name, category) {}
  /// Dynamic name (e.g. a pass name); only materialized when enabled.
  Span(Tracer& tracer, const std::string& name, const char* category);
  /// Lazily-built dynamic name: `build` runs only when the tracer is
  /// enabled, so a disabled run pays the one relaxed atomic load and
  /// nothing else — no string concatenation at the call site. Use for
  /// names assembled from parts ("pipeline:" + name).
  template <typename Fn,
            std::enable_if_t<std::is_invocable_r_v<std::string, Fn&>, int> = 0>
  Span(Tracer& tracer, Fn&& build, const char* category) {
    if (!tracer.enabled()) return;
    rec_.name = build();
    open(tracer, category);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  bool active() const { return tracer_ != nullptr; }

  /// Typed attributes; no-ops when inactive.
  void attr(const char* key, std::int64_t value);
  void attr(const char* key, double value);
  void attr(const char* key, bool value);
  void attr(const char* key, const std::string& value);
  void attr(const char* key, const char* value);
  /// Dynamic keys (e.g. pass counter names).
  void attr(const std::string& key, std::int64_t value);
  void attr(const std::string& key, const std::string& value);
  /// Lazily-built attribute value: `build` runs only when the span is
  /// active, so inactive spans never pay for value construction (the
  /// disabled-cost guarantee; pinned by
  /// Trace.LazySpanCostsNothingWhenDisabled). `build()` may return any
  /// type an attr() overload accepts.
  template <typename Fn,
            std::enable_if_t<std::is_invocable_v<Fn&>, int> = 0>
  void attrLazy(const char* key, Fn&& build) {
    if (tracer_) attr(key, build());
  }

  /// Ends the span early (idempotent; the destructor then does nothing).
  void end();

 private:
  void open(Tracer& tracer, const char* category);

  Tracer* tracer_ = nullptr;  ///< nullptr = inactive
  SpanRecord rec_;
};

}  // namespace polyast::obs
