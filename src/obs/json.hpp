// Minimal JSON support for the observability layer: a streaming writer
// (used by every exporter and by the bench/report emitters) and a small
// recursive-descent parser (used by tests to round-trip exporter output and
// by tools/obs_validate to check CI artifacts).
//
// Deliberately tiny: objects/arrays/strings/numbers/bools/null, UTF-8
// passed through verbatim, \uXXXX escapes decoded to UTF-8 on parse.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace polyast::obs {

/// Canonical decimal rendering of a finite double: the shortest string
/// that round-trips to the same value ("128", "0.4", "2097152"). Every
/// exporter (JSON and CSV) renders numbers through this, so the same
/// histogram bucket edge prints identically in every artifact — consumers
/// may join on the text. Non-finite values render as "null".
std::string formatJsonNumber(double v);

/// Streaming JSON writer with automatic comma placement. Usage:
///   JsonWriter w(out);
///   w.beginObject();
///   w.key("name").value("gemm");
///   w.key("passes").beginArray(); ... w.endArray();
///   w.endObject();
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// JSON string escaping (quotes not included).
  static std::string escape(const std::string& s);

 private:
  void separate();

  std::ostream& out_;
  /// One entry per open container: true when at least one element was
  /// already emitted (so the next element needs a leading comma).
  std::vector<bool> hasElement_;
  bool pendingKey_ = false;
};

/// Parsed JSON value (tests and artifact validation only; not a general
/// purpose DOM — numbers are stored as double).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolValue = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> members;

  bool isObject() const { return kind == Kind::Object; }
  bool isArray() const { return kind == Kind::Array; }
  bool isString() const { return kind == Kind::String; }
  bool isNumber() const { return kind == Kind::Number; }
  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& k) const;
};

/// Parses `text`; throws polyast::Error with position info on malformed
/// input (including trailing garbage).
JsonValue parseJson(const std::string& text);

}  // namespace polyast::obs
