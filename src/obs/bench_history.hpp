// Versioned benchmark history (`polyast-bench-history-v1`) and the
// regression comparison behind tools/bench_compare.
//
// A history file (BENCH_<host>.json) is an append-only list of entries;
// each entry holds one suite run: per-kernel wall time plus whatever
// hardware counters perf.hpp delivered. tools/bench_compare appends the
// current run and compares it against the previous entry, failing the
// build on per-kernel slowdowns beyond a threshold — the project's first
// measured perf gate (ROADMAP: "fast as the hardware allows" needs a
// recorded trajectory to regress against).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace polyast::obs {

/// One kernel's numbers inside one entry.
struct BenchKernelSample {
  std::string kernel;
  double wallNs = 0.0;
  /// Hardware counters when available ("cycles", "l1d_misses", ...).
  std::map<std::string, double> counters;
};

/// One recorded suite run.
struct BenchEntry {
  std::string timestamp;  ///< caller-supplied (ISO-8601 in CI); may be ""
  std::string label;      ///< e.g. the git SHA or "local"
  std::vector<BenchKernelSample> kernels;

  const BenchKernelSample* find(const std::string& kernel) const;
};

struct BenchHistory {
  std::string host;  ///< free-form machine tag ("ci", a hostname)
  std::vector<BenchEntry> entries;
};

/// Parses a history file's contents; throws polyast::Error on malformed
/// input or a wrong schema tag.
BenchHistory parseBenchHistory(const std::string& text);

/// Loads `path`; a missing file yields an empty history (first run).
/// Throws on unreadable/malformed contents.
BenchHistory loadBenchHistory(const std::string& path,
                              const std::string& host);

/// Writes the polyast-bench-history-v1 JSON, keeping at most `maxEntries`
/// most-recent entries (0 = unlimited).
void saveBenchHistory(const std::string& path, const BenchHistory& history,
                      std::size_t maxEntries = 0);

/// One kernel's delta between the previous entry and the head run.
struct BenchDelta {
  std::string kernel;
  double baseNs = 0.0;
  double headNs = 0.0;
  /// headNs / baseNs - 1 as a percentage (+20 = 20% slower).
  double deltaPct = 0.0;
  /// The threshold this kernel was judged against (the global one, or its
  /// characterized per-series value under --auto-threshold).
  double thresholdPct = 0.0;
  bool regression = false;  ///< deltaPct > thresholdPct
};

struct BenchCompareResult {
  /// No previous entry to compare against (empty history): recorded only.
  bool firstRun = false;
  std::vector<BenchDelta> deltas;  ///< kernels present in both entries
  /// Kernels only in the head run (new) or only in the base (removed) —
  /// reported, never failed on.
  std::vector<std::string> added;
  std::vector<std::string> removed;
  int regressions = 0;
};

/// Compares `head` against the last entry of `history` (which must not yet
/// contain `head`). A kernel regresses when its wall time grows more than
/// its threshold: `perKernelThresholds[kernel]` when the map is given and
/// has the kernel, else `thresholdPct`.
BenchCompareResult compareAgainstLatest(
    const BenchHistory& history, const BenchEntry& head, double thresholdPct,
    const std::map<std::string, double>* perKernelThresholds = nullptr);

/// Per-kernel noise floor, in percent, characterized from repeat spread.
///
/// collapseRepeats (bench_compare) records each kernel's within-run spread
/// as the `wall_spread_pct` counter ((max-min)/median over repeats). The
/// noise floor of a series is the worst spread ever observed for it —
/// the max of `wall_spread_pct` across every history entry and the head
/// run. Series with no recorded spread anywhere (single-shot series such
/// as compile@<family> rows, and gauge-backed series) fall back to the
/// run-to-run spread of their wall times over the trailing 8 history
/// entries — (max-min)/median, head excluded so a head regression cannot
/// widen its own threshold. Series still without data get 0 (the
/// caller's floor clamp takes over). This is what --auto-threshold
/// scales into a per-series regression threshold: a kernel whose repeats
/// routinely disagree by 8% must not gate at 5%.
std::map<std::string, double> characterizeNoiseFloor(
    const BenchHistory& history, const BenchEntry& head);

}  // namespace polyast::obs
