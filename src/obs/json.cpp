#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace polyast::obs {

void JsonWriter::separate() {
  if (pendingKey_) {
    pendingKey_ = false;
    return;  // value follows "key":
  }
  if (!hasElement_.empty()) {
    if (hasElement_.back()) out_ << ",";
    hasElement_.back() = true;
  }
}

JsonWriter& JsonWriter::beginObject() {
  separate();
  out_ << "{";
  hasElement_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  POLYAST_CHECK(!hasElement_.empty(), "endObject without beginObject");
  hasElement_.pop_back();
  out_ << "}";
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  separate();
  out_ << "[";
  hasElement_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  POLYAST_CHECK(!hasElement_.empty(), "endArray without beginArray");
  hasElement_.pop_back();
  out_ << "]";
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  separate();
  out_ << "\"" << escape(k) << "\":";
  pendingKey_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  separate();
  out_ << "\"" << escape(v) << "\"";
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

std::string formatJsonNumber(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[64];
  // Shortest round-trip-exact rendering: grow precision until strtod
  // gives the value back. 17 significant digits always round-trip.
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

JsonWriter& JsonWriter::value(double v) {
  separate();
  out_ << formatJsonNumber(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  out_ << "null";
  return *this;
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::find(const std::string& k) const {
  if (kind != Kind::Object) return nullptr;
  auto it = members.find(k);
  return it == members.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parseValue();
    skipWs();
    POLYAST_CHECK(pos_ == text_.size(),
                  "trailing characters after JSON value at offset " +
                      std::to_string(pos_));
    return v;
  }

 private:
  void fail(const std::string& what) {
    POLYAST_CHECK(false,
                  "malformed JSON at offset " + std::to_string(pos_) + ": " +
                      what);
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parseValue() {
    skipWs();
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.text = parseString();
        return v;
      }
      case 't': return parseKeyword("true", [] {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.boolValue = true;
        return v;
      }());
      case 'f': return parseKeyword("false", [] {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.boolValue = false;
        return v;
      }());
      case 'n': return parseKeyword("null", JsonValue{});
      default: return parseNumber();
    }
  }

  JsonValue parseKeyword(const char* word, JsonValue result) {
    for (const char* p = word; *p; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad keyword");
      ++pos_;
    }
    return result;
  }

  JsonValue parseNumber() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number '" + text_.substr(start, pos_ - start) + "'");
    }
    return v;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // UTF-8 encode (BMP only; surrogate pairs are out of scope for
          // our own exporters' output).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parseObject() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skipWs();
      std::string k = parseString();
      skipWs();
      expect(':');
      v.members[k] = parseValue();
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parseArray() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parseJson(const std::string& text) { return Parser(text).parse(); }

}  // namespace polyast::obs
