#include "obs/attrib.hpp"

#include <atomic>
#include <cmath>
#include <fstream>
#include <ostream>
#include <utility>

#include "obs/dlcheck.hpp"  // spearman
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace polyast::obs {

namespace {

std::atomic<ConstructProfiler*> g_profiler{nullptr};

/// Per-thread stack of open construct spans. Hooks fire on the driving
/// thread of the run; the stack keeps enter/exit pairs balanced even if
/// the tracer is toggled between them (exit only pops what enter pushed).
std::vector<std::unique_ptr<Span>>& spanStack() {
  thread_local std::vector<std::unique_ptr<Span>> stack;
  return stack;
}

/// Counter-wise difference of two cumulative samples from one session
/// (cur was read after last, so every series is monotone non-decreasing).
PerfReading diffReading(const PerfReading& cur, const PerfReading& last) {
  PerfReading d;
  d.degraded = cur.degraded;
  d.degradedReason = cur.degradedReason;
  d.multiplexRatio = cur.multiplexRatio;
  d.wallNs = cur.wallNs - last.wallNs;
  d.tscCycles = cur.tscCycles >= last.tscCycles
                    ? cur.tscCycles - last.tscCycles
                    : 0;
  for (const auto& [name, v] : cur.counters) {
    auto it = last.counters.find(name);
    std::int64_t prev = it == last.counters.end() ? 0 : it->second;
    d.counters[name] = v >= prev ? v - prev : 0;
  }
  return d;
}

/// Accumulates a telescoped delta into a row/residual reading without
/// PerfReading::operator+='s degraded-vote semantics (a zero-delta
/// contribution must not flip the degraded flag).
void charge(PerfReading& into, const PerfReading& delta) {
  into.degraded = delta.degraded;
  into.degradedReason = delta.degradedReason;
  into.multiplexRatio = delta.multiplexRatio;
  into.wallNs += delta.wallNs;
  into.tscCycles += delta.tscCycles;
  for (const auto& [name, v] : delta.counters) into.counters[name] += v;
}

}  // namespace

ConstructProfiler::ConstructProfiler(PerfOptions opts)
    : opts_(std::move(opts)) {}

ConstructProfiler::~ConstructProfiler() {
  ConstructProfiler* self = this;
  g_profiler.compare_exchange_strong(self, nullptr);
}

ConstructProfiler* ConstructProfiler::current() {
  return g_profiler.load(std::memory_order_acquire);
}

void ConstructProfiler::install() {
  g_profiler.store(this, std::memory_order_release);
}

void ConstructProfiler::uninstall() {
  ConstructProfiler* self = this;
  g_profiler.compare_exchange_strong(self, nullptr);
}

void ConstructProfiler::beginRun(const std::string& backend) {
  std::lock_guard<std::mutex> lock(mutex_);
  backend_ = backend;
  rows_.clear();
  stack_.clear();
  lastSample_ = PerfReading{};
  lastSample_.wallNs = 0;
  residual_ = PerfReading{};
  residual_.degraded = false;
  total_ = PerfReading{};
  // A fresh session per run: it is bound to the calling (driving) thread,
  // which may differ between runs.
  session_ = std::make_unique<PerfSession>(opts_);
  session_->start();
  running_ = true;
}

void ConstructProfiler::endRun() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!running_) return;
  boundary();  // charge the tail since the last construct boundary
  total_ = lastSample_;
  session_->stop();
  session_.reset();
  running_ = false;
  stack_.clear();
}

void ConstructProfiler::boundary() {
  PerfReading cur = session_->sample();
  PerfReading delta = diffReading(cur, lastSample_);
  if (stack_.empty()) {
    charge(residual_, delta);
  } else {
    charge(rows_[stack_.back()].measured, delta);
  }
  lastSample_ = std::move(cur);
}

void ConstructProfiler::enter(std::int64_t id, const char* kind,
                              const char* iter) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!running_) return;
  boundary();
  ConstructRow& row = rows_[id];
  if (row.enters == 0) {
    row.id = id;
    row.kind = kind;
    row.iter = iter;
  }
  ++row.enters;
  stack_.push_back(id);
}

void ConstructProfiler::exit(std::int64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!running_) return;
  boundary();
  if (!stack_.empty() && stack_.back() == id) stack_.pop_back();
}

std::vector<ConstructRow> ConstructProfiler::rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ConstructRow> out;
  out.reserve(rows_.size());
  for (const auto& [id, row] : rows_) out.push_back(row);
  return out;
}

PerfReading ConstructProfiler::residual() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return residual_;
}

PerfReading ConstructProfiler::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

bool ConstructProfiler::degraded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_.degraded;
}

const std::string& ConstructProfiler::degradedReason() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_.degradedReason;
}

bool constructHooksActive() {
  return ConstructProfiler::current() != nullptr ||
         Tracer::global().enabled();
}

void constructEnter(std::int64_t id, const char* kind, const char* iter) {
  Tracer& tracer = Tracer::global();
  if (tracer.enabled()) {
    auto span = std::make_unique<Span>(
        tracer, std::string(kind) + ":" + iter, "construct");
    span->attr("construct", id);
    span->attr("kind", kind);
    span->attr("iter", iter);
    spanStack().push_back(std::move(span));
  }
  if (ConstructProfiler* p = ConstructProfiler::current())
    p->enter(id, kind, iter);
}

void constructExit(std::int64_t id) {
  if (ConstructProfiler* p = ConstructProfiler::current()) p->exit(id);
  // Pop only spans this thread pushed: a tracer enabled mid-run leaves
  // the stack empty here, and the exit is then span-free.
  if (!spanStack().empty()) spanStack().pop_back();
}

namespace {

void writeReading(JsonWriter& w, const PerfReading& r, bool withDegraded) {
  w.beginObject();
  if (withDegraded) {
    w.key("degraded").value(r.degraded);
    if (!r.degradedReason.empty())
      w.key("degraded_reason").value(r.degradedReason);
    w.key("multiplex_ratio").value(r.multiplexRatio);
  }
  w.key("wall_ns").value(r.wallNs);
  w.key("tsc_cycles").value(r.tscCycles);
  w.key("counters").beginObject();
  for (const auto& [name, v] : r.counters) w.key(name).value(v);
  w.endObject();
  w.endObject();
}

/// Spearman of predicted-vs-measured over a construct set; NaN-safe.
struct AttribCorrelation {
  std::vector<double> cost, wall, lines, l1d;

  void add(const AttribConstruct& c) {
    cost.push_back(c.predictedCost);
    wall.push_back(static_cast<double>(c.measured.wallNs));
    std::int64_t misses = c.measured.counter("l1d_misses");
    if (misses >= 0) {
      lines.push_back(c.predictedLines);
      l1d.push_back(static_cast<double>(misses));
    }
  }

  void write(JsonWriter& w) const {
    w.key("rank_correlation").beginObject();
    auto emit = [&](const char* name, double r) {
      w.key(name);
      if (std::isnan(r)) w.null();
      else w.value(r);
    };
    emit("cost_vs_wall_ns", spearman(cost, wall));
    emit("lines_vs_l1d_misses", spearman(lines, l1d));
    w.endObject();
  }
};

}  // namespace

void writeAttrib(std::ostream& out, const AttribReport& report) {
  bool anyDegraded = false;
  std::size_t constructCount = 0;
  for (const auto& k : report.kernels) {
    if (k.total.degraded) anyDegraded = true;
    constructCount += k.constructs.size();
  }

  JsonWriter w(out);
  AttribCorrelation pooled;
  w.beginObject();
  w.key("schema").value("polyast-attrib-v1");
  w.key("threads").value(report.threads);
  w.key("degraded").value(anyDegraded);
  w.key("kernels").beginArray();
  for (const auto& k : report.kernels) {
    AttribCorrelation local;
    w.beginObject();
    w.key("kernel").value(k.kernel);
    w.key("pipeline").value(k.pipeline);
    w.key("backend").value(k.backend);
    w.key("total");
    writeReading(w, k.total, /*withDegraded=*/true);
    w.key("residual");
    writeReading(w, k.residual, /*withDegraded=*/false);
    w.key("constructs").beginArray();
    for (const auto& c : k.constructs) {
      local.add(c);
      pooled.add(c);
      w.beginObject();
      w.key("id").value(c.id);
      w.key("kind").value(c.kind);
      w.key("iter").value(c.iter);
      w.key("nest").value(c.nest);
      w.key("enters").value(c.enters);
      w.key("predicted").beginObject();
      w.key("lines").value(c.predictedLines);
      w.key("cost").value(c.predictedCost);
      w.key("iters").value(c.predictedIters);
      w.key("nests").value(c.predictedNests);
      w.endObject();
      w.key("measured");
      writeReading(w, c.measured, /*withDegraded=*/false);
      w.endObject();
    }
    w.endArray();
    w.key("summary").beginObject();
    w.key("construct_count")
        .value(static_cast<std::int64_t>(k.constructs.size()));
    local.write(w);
    w.endObject();
    w.endObject();
  }
  w.endArray();
  w.key("summary").beginObject();
  w.key("kernel_count").value(static_cast<std::int64_t>(report.kernels.size()));
  w.key("construct_count").value(static_cast<std::int64_t>(constructCount));
  pooled.write(w);
  w.endObject();
  w.endObject();
  out << "\n";
}

void writeAttribFile(const std::string& path, const AttribReport& report) {
  std::ofstream out(path);
  POLYAST_CHECK(out.good(), "cannot write " + path);
  writeAttrib(out, report);
  POLYAST_CHECK(out.good(), "error writing " + path);
}

}  // namespace polyast::obs
