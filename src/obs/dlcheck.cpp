#include "obs/dlcheck.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <numeric>
#include <ostream>

#include "obs/json.hpp"
#include "support/error.hpp"

namespace polyast::obs {

namespace {

/// Average ranks (1-based; ties share the mean of their positions).
std::vector<double> ranks(const std::vector<double>& v) {
  std::vector<std::size_t> idx(v.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> r(v.size(), 0.0);
  std::size_t i = 0;
  while (i < idx.size()) {
    std::size_t j = i;
    while (j + 1 < idx.size() && v[idx[j + 1]] == v[idx[i]]) ++j;
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[idx[k]] = avg;
    i = j + 1;
  }
  return r;
}

}  // namespace

double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  if (a.size() != b.size() || a.size() < 2) return nan;
  std::vector<double> ra = ranks(a), rb = ranks(b);
  double n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ma += ra[i];
    mb += rb[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    double da = ra[i] - ma, db = rb[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return nan;
  return cov / std::sqrt(va * vb);
}

void writeDlCheck(std::ostream& out, const DlCheckReport& report) {
  bool anyDegraded = false;
  for (const auto& k : report.kernels)
    if (k.threadsDegraded > 0 || k.measured.degraded) anyDegraded = true;

  JsonWriter w(out);
  w.beginObject();
  w.key("schema").value("polyast-dlcheck-v1");
  w.key("threads").value(report.threads);
  w.key("degraded").value(anyDegraded);
  w.key("kernels").beginArray();
  for (const auto& k : report.kernels) {
    w.beginObject();
    w.key("kernel").value(k.kernel);
    w.key("pipeline").value(k.pipeline);
    w.key("backend").value(k.backend);
    w.key("reductions").value(k.reductions);
    w.key("simd").value(k.simd);
    w.key("predicted").beginObject();
    w.key("lines").value(k.predictedLines);
    w.key("cost").value(k.predictedCost);
    w.key("nests").value(k.nests);
    w.endObject();
    w.key("measured").beginObject();
    w.key("degraded").value(k.measured.degraded);
    if (!k.measured.degradedReason.empty())
      w.key("degraded_reason").value(k.measured.degradedReason);
    w.key("wall_ns").value(k.measured.wallNs);
    w.key("tsc_cycles").value(k.measured.tscCycles);
    w.key("multiplex_ratio").value(k.measured.multiplexRatio);
    w.key("threads").value(k.threadsMeasured);
    w.key("threads_degraded").value(k.threadsDegraded);
    w.key("counters").beginObject();
    for (const auto& [name, v] : k.measured.counters) w.key(name).value(v);
    w.endObject();
    w.endObject();
    w.endObject();
  }
  w.endArray();

  // Suite summary: rank-correlate predicted lines against each measured
  // series over the kernels that have it.
  auto correlate = [&](const std::string& series) {
    std::vector<double> pred, meas;
    for (const auto& k : report.kernels) {
      double v;
      if (series == "wall_ns") {
        v = static_cast<double>(k.measured.wallNs);
      } else {
        std::int64_t c = k.measured.counter(series);
        if (c < 0) continue;  // degraded / not opened on this kernel
        v = static_cast<double>(c);
      }
      pred.push_back(k.predictedLines);
      meas.push_back(v);
    }
    return spearman(pred, meas);
  };
  w.key("summary").beginObject();
  w.key("kernel_count")
      .value(static_cast<std::int64_t>(report.kernels.size()));
  w.key("rank_correlation").beginObject();
  for (const char* series :
       {"l1d_misses", "llc_misses", "cycles", "wall_ns"}) {
    double r = correlate(series);
    w.key(series);
    if (std::isnan(r)) w.null();
    else w.value(r);
  }
  w.endObject();
  w.endObject();
  w.endObject();
  out << "\n";
}

void writeDlCheckFile(const std::string& path, const DlCheckReport& report) {
  std::ofstream out(path);
  POLYAST_CHECK(out.good(), "cannot write " + path);
  writeDlCheck(out, report);
  POLYAST_CHECK(out.good(), "error writing " + path);
}

}  // namespace polyast::obs
