// Metrics registry of the observability layer (src/obs): named counters,
// gauges, and fixed-bucket histograms with atomic hot-path updates.
//
// Instrument creation (Registry::counter/gauge/histogram) takes a mutex
// and should happen once per site — call sites resolve the instrument
// reference up front and then update it lock-free:
//
//   static obs::Counter& evals =
//       obs::Registry::global().counter("dl.distinct_lines_evals");
//   evals.add();                       // one relaxed fetch_add
//
// Instruments live as long as their registry; references never dangle
// (Registry::reset() zeroes values but keeps the instruments).
//
// `timingEnabled()` gates *derived* instrumentation whose cost is the
// clock read rather than the atomic update (per-wait latencies in the
// runtime, DL query latencies): off by default so a plain run pays only
// counter increments on already-instrumented paths and nothing on traced
// ones.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace polyast::obs {

/// Monotonic counter.
class Counter {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-value gauge.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations x <= bounds[i]
/// (first matching bucket); observations above every bound land in the
/// implicit overflow bucket. Also tracks count/sum/min/max.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::uint64_t> bucketCounts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Min/max of observed values; 0 when empty.
  double min() const;
  double max() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Exponential bucket bounds {start, start*factor, ...} (count entries) —
/// the default shape for latency histograms in nanoseconds.
std::vector<double> expBounds(double start, double factor, int count);

/// The documented, stable bucket edges for runtime wait-latency histograms
/// (`runtime.pipeline.wait_ns.*`): 14 integer-valued nanosecond bounds
/// 128 * 4^k, k = 0..13 (128 ns .. ~8.6 s), plus the implicit overflow
/// bucket. Exporters render these edges identically in JSON and CSV (see
/// obs::formatJsonNumber); consumers may key on the rendered text.
const std::vector<double>& waitLatencyBounds();

/// Plain-value view of one histogram (see Registry::snapshot()).
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucketCounts;  ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Point-in-time copy of a registry, consumed by the exporters.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
  std::map<std::string, std::string> notes;

  std::int64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
};

/// Named instrument registry. Thread-safe; instruments are created on
/// first use and shared by name afterwards.
class Registry {
 public:
  /// The process-wide registry every instrumented subsystem records into.
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is consulted on first creation only; later callers share the
  /// existing instrument regardless of the bounds they pass.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Free-text annotation (e.g. the affine stage's fallback reason); the
  /// last write per name wins.
  void note(const std::string& name, const std::string& text);

  /// Enables clock-read-heavy instrumentation (per-wait latencies etc.);
  /// see the header comment.
  void setTimingEnabled(bool on) {
    timing_.store(on, std::memory_order_relaxed);
  }
  bool timingEnabled() const {
    return timing_.load(std::memory_order_relaxed);
  }

  MetricsSnapshot snapshot() const;

  /// Zeroes every instrument (references stay valid) and drops notes.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> notes_;
  std::atomic<bool> timing_{false};
};

}  // namespace polyast::obs
