// Exporters for the observability layer: Chrome trace-event JSON (open in
// chrome://tracing or https://ui.perfetto.dev) and flat metrics JSON/CSV.
// Schemas are documented in docs/OBSERVABILITY.md and validated in CI by
// tools/obs_validate.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace polyast::obs {

/// Chrome trace-event file: {"traceEvents": [...], "displayTimeUnit":"ms"}.
/// One "X" (complete) event per span, one "i" (instant) event per instant,
/// "M" thread_name metadata per named thread; timestamps in microseconds.
/// Span attributes land in "args" (plus "parent_id" for cross-referencing
/// since the Chrome format has no explicit parent field).
void writeChromeTrace(std::ostream& out, const Tracer& tracer);

/// Metrics JSON: {"schema":"polyast-metrics-v1","counters":{..},
/// "gauges":{..},"histograms":{name:{bounds,bucket_counts,count,sum,min,
/// max}},"notes":{..}}.
void writeMetricsJson(std::ostream& out, const MetricsSnapshot& snapshot);

/// Flat CSV (kind,name,key,value) for spreadsheet-style consumption.
void writeMetricsCsv(std::ostream& out, const MetricsSnapshot& snapshot);

/// Human-readable metrics table (the `polyastc --obs-summary` output).
std::string metricsSummary(const MetricsSnapshot& snapshot);

/// Writes the file per the path's extension (".csv" selects CSV, anything
/// else JSON). Throws polyast::Error when the file cannot be written.
void writeMetricsFile(const std::string& path, const MetricsSnapshot& snapshot);
void writeChromeTraceFile(const std::string& path, const Tracer& tracer);

}  // namespace polyast::obs
