// Hardware performance-counter sessions for the observability layer.
//
// A PerfSession opens one perf_event_open(2) *group* on the calling
// thread — cycles (leader), instructions, L1D-read misses, LLC misses,
// dTLB-read misses — and reads all members atomically with one grouped
// read (PERF_FORMAT_GROUP), scaled by time_enabled/time_running when the
// kernel multiplexed the group. Sessions measure the calling thread only
// (pid=0, cpu=-1, exclude_kernel), which keeps them usable at
// perf_event_paranoid <= 2.
//
// Degradation is a feature, not an error: when the syscall is unavailable
// (ENOSYS), forbidden (EACCES/EPERM — containers, hardened kernels), or
// the PMU lacks a counter, the session still measures wall time
// (steady_clock) and raw TSC cycles (rdtsc on x86) and reports
// degraded()/degradedReason(), which callers record as the
// `obs.perf.degraded` note so exported artifacts say *why* hardware
// counters are absent instead of silently omitting them. Individual
// non-leader counters that fail to open are dropped from the set (partial
// degradation) without losing the rest of the group. POLYAST_PERF=off (or
// 0) forces fully degraded mode — the CI fallback-path tests use this.
//
// PerfAggregate is the multi-thread form: each runtime::ThreadPool worker
// (and the calling thread) opens its own session via beginThread() /
// endThread() around a measured region — `exec::runParallel` does this
// when handed an aggregate — and totals() sums the per-thread readings.
//
// Everything compiles on non-Linux hosts; sessions are then always
// degraded with reason "unsupported-platform".
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace polyast::obs {

/// The fixed counter set a session asks for (subsets may survive opening).
enum class PerfCounter {
  Cycles,
  Instructions,
  L1DMisses,
  LLCMisses,
  DTLBMisses,
};

/// Stable artifact/metric name of a counter ("cycles", "l1d_misses", ...).
const char* perfCounterName(PerfCounter c);

/// cycles, instructions, l1d_misses, llc_misses, dtlb_misses.
const std::vector<PerfCounter>& defaultPerfCounters();

struct PerfOptions {
  std::vector<PerfCounter> counters = defaultPerfCounters();
  /// Skip perf_event_open entirely (rdtsc + steady_clock only). The
  /// POLYAST_PERF=off environment variable forces this process-wide.
  bool forceDegraded = false;
};

/// True when POLYAST_PERF is set to "off" or "0" in the environment.
bool perfDisabledByEnv();

/// One measurement: hardware counter deltas (only the counters that
/// actually opened) plus the always-available wall/TSC clocks.
struct PerfReading {
  /// No hardware counter opened; `counters` is empty and only the clock
  /// fields below are meaningful.
  bool degraded = true;
  /// Why (errno name or "forced"/"unsupported-platform"); empty when
  /// hardware counters are live.
  std::string degradedReason;
  /// Counter name (perfCounterName) -> multiplex-scaled delta.
  std::map<std::string, std::int64_t> counters;
  std::uint64_t wallNs = 0;
  /// Raw time-stamp-counter delta (x86 rdtsc); 0 when unavailable.
  std::uint64_t tscCycles = 0;
  /// time_running / time_enabled of the group (1.0 = never multiplexed).
  double multiplexRatio = 1.0;

  /// Accumulates counter-wise (used by PerfAggregate); degraded only when
  /// every contribution was.
  PerfReading& operator+=(const PerfReading& o);

  /// Counter value or -1 when absent (degraded / not opened).
  std::int64_t counter(const std::string& name) const;
};

/// A perf-event group bound to the thread that constructs it. start() and
/// stop() must run on that same thread.
class PerfSession {
 public:
  explicit PerfSession(const PerfOptions& opts = {});
  ~PerfSession();
  PerfSession(PerfSession&&) noexcept;
  PerfSession& operator=(PerfSession&&) noexcept;
  PerfSession(const PerfSession&) = delete;
  PerfSession& operator=(const PerfSession&) = delete;

  bool degraded() const;
  const std::string& degradedReason() const;
  /// Counters that actually opened, in group order.
  std::vector<PerfCounter> activeCounters() const;

  /// Resets and enables the group; stamps the wall/TSC baselines.
  void start();
  /// Disables the group and returns the deltas since start().
  PerfReading stop();
  /// Reads the group without disabling or resetting it: the cumulative
  /// deltas since start(). Consecutive samples are monotone, so their
  /// differences attribute disjoint intervals exactly (obs/attrib uses
  /// this at construct boundaries). Must run on the session's thread.
  PerfReading sample();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Thread-safe accumulator of per-thread sessions: each participating
/// thread brackets the measured region with beginThread()/endThread();
/// totals() sums every finished reading. This is what attaches counter
/// sessions to runtime::ThreadPool workers (via ThreadPool::runOnAll)
/// without the pool knowing about perf at all.
class PerfAggregate {
 public:
  explicit PerfAggregate(PerfOptions opts = {});
  ~PerfAggregate();
  PerfAggregate(const PerfAggregate&) = delete;
  PerfAggregate& operator=(const PerfAggregate&) = delete;

  /// Opens and starts a session for the calling thread. Re-entrant per
  /// thread: a second begin before endThread() restarts the measurement.
  void beginThread();
  /// Stops the calling thread's session and folds its reading into the
  /// totals. No-op when beginThread() was never called on this thread.
  void endThread();

  PerfReading totals() const;
  int threadsMeasured() const;
  /// Threads whose session had no hardware counters.
  int threadsDegraded() const;

  /// Records totals into `reg`: one `<prefix>.<counter>` counter per
  /// hardware value, `<prefix>.wall_ns` / `<prefix>.tsc_cycles` counters,
  /// the `<prefix>.threads` gauge, and — when any thread degraded — the
  /// `obs.perf.degraded` note carrying the reason.
  void recordTo(Registry& reg, const std::string& prefix = "perf") const;

 private:
  PerfOptions opts_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::unique_ptr<PerfSession>> live_;  ///< by thread
  PerfReading totals_;
  int threadsMeasured_ = 0;
  int threadsDegraded_ = 0;
  std::string firstDegradedReason_;
};

}  // namespace polyast::obs
