#include "obs/perf.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/trace.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace polyast::obs {

namespace {

std::uint64_t wallNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t tscNow() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return 0;
#endif
}

}  // namespace

const char* perfCounterName(PerfCounter c) {
  switch (c) {
    case PerfCounter::Cycles: return "cycles";
    case PerfCounter::Instructions: return "instructions";
    case PerfCounter::L1DMisses: return "l1d_misses";
    case PerfCounter::LLCMisses: return "llc_misses";
    case PerfCounter::DTLBMisses: return "dtlb_misses";
  }
  return "unknown";
}

const std::vector<PerfCounter>& defaultPerfCounters() {
  static const std::vector<PerfCounter> set = {
      PerfCounter::Cycles, PerfCounter::Instructions, PerfCounter::L1DMisses,
      PerfCounter::LLCMisses, PerfCounter::DTLBMisses};
  return set;
}

bool perfDisabledByEnv() {
  const char* v = std::getenv("POLYAST_PERF");
  if (!v) return false;
  return std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0;
}

PerfReading& PerfReading::operator+=(const PerfReading& o) {
  for (const auto& [name, v] : o.counters) counters[name] += v;
  wallNs += o.wallNs;
  tscCycles += o.tscCycles;
  // Keep the worst (smallest) multiplex ratio of any contribution: the
  // totals are at most as trustworthy as their most-multiplexed part.
  if (o.multiplexRatio < multiplexRatio) multiplexRatio = o.multiplexRatio;
  if (!o.degraded) degraded = false;
  else if (degradedReason.empty()) degradedReason = o.degradedReason;
  return *this;
}

std::int64_t PerfReading::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? -1 : it->second;
}

// ---------------------------------------------------------------------------
// PerfSession

struct PerfSession::Impl {
  PerfOptions opts;
  bool degraded = true;
  std::string reason;
  std::vector<PerfCounter> active;  ///< counters that opened, group order
#if defined(__linux__)
  std::vector<int> fds;  ///< fds[0] is the group leader
#endif
  std::uint64_t wallStart = 0;
  std::uint64_t tscStart = 0;
  bool running = false;
};

#if defined(__linux__)

namespace {

long perfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int groupFd,
                   unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, groupFd, flags);
}

/// type/config pair for one PerfCounter.
bool counterConfig(PerfCounter c, std::uint32_t& type, std::uint64_t& config) {
  auto hwCache = [](std::uint64_t cache, std::uint64_t op,
                    std::uint64_t result) {
    return cache | (op << 8) | (result << 16);
  };
  switch (c) {
    case PerfCounter::Cycles:
      type = PERF_TYPE_HARDWARE;
      config = PERF_COUNT_HW_CPU_CYCLES;
      return true;
    case PerfCounter::Instructions:
      type = PERF_TYPE_HARDWARE;
      config = PERF_COUNT_HW_INSTRUCTIONS;
      return true;
    case PerfCounter::L1DMisses:
      type = PERF_TYPE_HW_CACHE;
      config = hwCache(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                       PERF_COUNT_HW_CACHE_RESULT_MISS);
      return true;
    case PerfCounter::LLCMisses:
      type = PERF_TYPE_HARDWARE;
      config = PERF_COUNT_HW_CACHE_MISSES;
      return true;
    case PerfCounter::DTLBMisses:
      type = PERF_TYPE_HW_CACHE;
      config = hwCache(PERF_COUNT_HW_CACHE_DTLB, PERF_COUNT_HW_CACHE_OP_READ,
                       PERF_COUNT_HW_CACHE_RESULT_MISS);
      return true;
  }
  return false;
}

const char* errnoName(int e) {
  switch (e) {
    case EACCES: return "EACCES";
    case EPERM: return "EPERM";
    case ENOSYS: return "ENOSYS";
    case ENOENT: return "ENOENT";
    case ENODEV: return "ENODEV";
    case EOPNOTSUPP: return "EOPNOTSUPP";
    case EINVAL: return "EINVAL";
    case EMFILE: return "EMFILE";
    default: return "errno";
  }
}

}  // namespace

#endif  // __linux__

PerfSession::PerfSession(const PerfOptions& opts)
    : impl_(std::make_unique<Impl>()) {
  impl_->opts = opts;
  if (opts.forceDegraded || perfDisabledByEnv()) {
    impl_->reason = "forced";
    return;
  }
#if defined(__linux__)
  for (PerfCounter c : opts.counters) {
    std::uint32_t type = 0;
    std::uint64_t config = 0;
    if (!counterConfig(c, type, config)) continue;
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = type;
    attr.config = config;
    attr.disabled = impl_->fds.empty() ? 1 : 0;  // group starts disabled
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    int groupFd = impl_->fds.empty() ? -1 : impl_->fds.front();
    long fd = perfEventOpen(&attr, 0, -1, groupFd, PERF_FLAG_FD_CLOEXEC);
    if (fd < 0) {
      if (impl_->fds.empty()) {
        // Leader failed: the whole session degrades and remembers why.
        impl_->reason = errnoName(errno);
        return;
      }
      continue;  // drop this member, keep the rest of the group
    }
    impl_->fds.push_back(static_cast<int>(fd));
    impl_->active.push_back(c);
  }
  if (!impl_->fds.empty()) {
    impl_->degraded = false;
    impl_->reason.clear();
  } else {
    impl_->reason = "no-counters";
  }
#else
  impl_->reason = "unsupported-platform";
#endif
}

PerfSession::~PerfSession() {
#if defined(__linux__)
  if (impl_)
    for (int fd : impl_->fds) close(fd);
#endif
}

PerfSession::PerfSession(PerfSession&&) noexcept = default;
PerfSession& PerfSession::operator=(PerfSession&&) noexcept = default;

bool PerfSession::degraded() const { return impl_->degraded; }
const std::string& PerfSession::degradedReason() const {
  return impl_->reason;
}
std::vector<PerfCounter> PerfSession::activeCounters() const {
  return impl_->active;
}

void PerfSession::start() {
#if defined(__linux__)
  if (!impl_->degraded) {
    ioctl(impl_->fds.front(), PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(impl_->fds.front(), PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  }
#endif
  impl_->wallStart = wallNowNs();
  impl_->tscStart = tscNow();
  impl_->running = true;
}

PerfReading PerfSession::stop() {
  PerfReading out;
  if (!impl_->running) return out;
  impl_->running = false;
  out.wallNs = wallNowNs() - impl_->wallStart;
  std::uint64_t tsc = tscNow();
  out.tscCycles = tsc >= impl_->tscStart ? tsc - impl_->tscStart : 0;
  out.degraded = impl_->degraded;
  out.degradedReason = impl_->reason;
#if defined(__linux__)
  if (!impl_->degraded) {
    ioctl(impl_->fds.front(), PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
    // Grouped read: { nr, time_enabled, time_running, values[nr] }.
    std::vector<std::uint64_t> buf(3 + impl_->fds.size() + 1, 0);
    ssize_t n = read(impl_->fds.front(), buf.data(),
                     buf.size() * sizeof(std::uint64_t));
    if (n >= static_cast<ssize_t>(3 * sizeof(std::uint64_t)) &&
        buf[0] == impl_->fds.size()) {
      double scale = 1.0;
      if (buf[2] > 0 && buf[1] > buf[2]) {
        scale = static_cast<double>(buf[1]) / static_cast<double>(buf[2]);
        out.multiplexRatio =
            static_cast<double>(buf[2]) / static_cast<double>(buf[1]);
      }
      for (std::size_t i = 0; i < impl_->active.size(); ++i) {
        double v = static_cast<double>(buf[3 + i]) * scale;
        out.counters[perfCounterName(impl_->active[i])] =
            static_cast<std::int64_t>(v);
      }
    } else {
      out.degraded = true;
      out.degradedReason = "group-read-failed";
      out.counters.clear();
    }
  }
#endif
  return out;
}

PerfReading PerfSession::sample() {
  PerfReading out;
  if (!impl_->running) return out;
  out.wallNs = wallNowNs() - impl_->wallStart;
  std::uint64_t tsc = tscNow();
  out.tscCycles = tsc >= impl_->tscStart ? tsc - impl_->tscStart : 0;
  out.degraded = impl_->degraded;
  out.degradedReason = impl_->reason;
#if defined(__linux__)
  if (!impl_->degraded) {
    // Same grouped read as stop(), but the group stays enabled and is not
    // reset: the reading is cumulative since start(), so consecutive
    // samples are monotone and their differences telescope exactly.
    std::vector<std::uint64_t> buf(3 + impl_->fds.size() + 1, 0);
    ssize_t n = read(impl_->fds.front(), buf.data(),
                     buf.size() * sizeof(std::uint64_t));
    if (n >= static_cast<ssize_t>(3 * sizeof(std::uint64_t)) &&
        buf[0] == impl_->fds.size()) {
      double scale = 1.0;
      if (buf[2] > 0 && buf[1] > buf[2]) {
        scale = static_cast<double>(buf[1]) / static_cast<double>(buf[2]);
        out.multiplexRatio =
            static_cast<double>(buf[2]) / static_cast<double>(buf[1]);
      }
      for (std::size_t i = 0; i < impl_->active.size(); ++i) {
        double v = static_cast<double>(buf[3 + i]) * scale;
        out.counters[perfCounterName(impl_->active[i])] =
            static_cast<std::int64_t>(v);
      }
    } else {
      out.degraded = true;
      out.degradedReason = "group-read-failed";
      out.counters.clear();
    }
  }
#endif
  return out;
}

// ---------------------------------------------------------------------------
// PerfAggregate

namespace {

/// Dense per-thread key; reuses the tracer's thread-id assignment so perf
/// sessions and trace lanes agree on thread identity.
std::uint64_t threadKey() { return threadId(); }

}  // namespace

PerfAggregate::PerfAggregate(PerfOptions opts) : opts_(std::move(opts)) {}
PerfAggregate::~PerfAggregate() = default;

void PerfAggregate::beginThread() {
  auto session = std::make_unique<PerfSession>(opts_);
  session->start();
  std::lock_guard<std::mutex> lock(mutex_);
  live_[threadKey()] = std::move(session);
}

void PerfAggregate::endThread() {
  std::unique_ptr<PerfSession> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = live_.find(threadKey());
    if (it == live_.end()) return;
    session = std::move(it->second);
    live_.erase(it);
  }
  PerfReading r = session->stop();
  std::lock_guard<std::mutex> lock(mutex_);
  ++threadsMeasured_;
  if (r.degraded) {
    ++threadsDegraded_;
    if (firstDegradedReason_.empty()) firstDegradedReason_ = r.degradedReason;
  }
  totals_ += r;
}

PerfReading PerfAggregate::totals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return totals_;
}

int PerfAggregate::threadsMeasured() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return threadsMeasured_;
}

int PerfAggregate::threadsDegraded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return threadsDegraded_;
}

void PerfAggregate::recordTo(Registry& reg, const std::string& prefix) const {
  PerfReading t;
  int measured = 0, degraded = 0;
  std::string reason;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    t = totals_;
    measured = threadsMeasured_;
    degraded = threadsDegraded_;
    reason = firstDegradedReason_;
  }
  for (const auto& [name, v] : t.counters)
    reg.counter(prefix + "." + name).add(v);
  reg.counter(prefix + ".wall_ns").add(static_cast<std::int64_t>(t.wallNs));
  reg.counter(prefix + ".tsc_cycles")
      .add(static_cast<std::int64_t>(t.tscCycles));
  reg.gauge(prefix + ".threads").set(static_cast<double>(measured));
  if (degraded > 0)
    reg.note("obs.perf.degraded",
             reason.empty() ? "unknown" : reason + " (" +
                 std::to_string(degraded) + "/" + std::to_string(measured) +
                 " threads)");
}

}  // namespace polyast::obs
