// Compile-time self-profiling (src/obs): cheap always-on operation
// counters and sampled timing for the compiler's *own* hot paths — the
// Fourier–Motzkin core, IntSet emptiness/projection/bound queries,
// dependence tests by outcome, and the affine selection search — plus
// process-RSS gauges, aggregated per SCoP and exported as the
// schema-versioned `polyast-compile-profile-v1` artifact
// (`polyastc --compile-profile-out`, `bench_compile_scale --out`).
//
// Cost model: the counters are a fixed enum-indexed array of relaxed
// atomics bumped inline at the call site — no registry lookup, no lock,
// no branch on a mode flag. That keeps them cheap enough to leave on
// unconditionally (the FM inner loop is combinatorial; one relaxed
// fetch_add per *elimination*, not per row operation). Timing is
// sampled: every `kSampleEvery`-th dependence emptiness test reads the
// steady clock so average per-test cost is recoverable without paying
// two clock reads on every test.
//
// Aggregation model: counters are process-global and monotone. A
// `Collector` snapshots them at `beginScop()` and stores the delta at
// `endScop()`, one row per SCoP; `finish()` reads the final totals and
// computes `residual = totals - sum(rows)` (work outside any SCoP
// bracket: pipeline setup, validation reruns, tests). Compilation is
// single-threaded and scopes are disjoint in time, so
// `residual + sum(rows) == totals` holds *exactly* per counter — the
// telescoping invariant `obs_validate --compile-profile` enforces,
// mirroring the attrib artifact's per-construct discipline.
//
// Layering: like the rest of src/obs this depends only on src/support,
// so the innermost layers (src/intset) can link it without cycles.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace polyast::obs {
class Registry;
}  // namespace polyast::obs

namespace polyast::obs::selfprof {

/// The instrumented operations. Stable artifact names in opName();
/// docs/OBSERVABILITY.md carries the glossary. Append only — consumers
/// key on names, but tests iterate allOps().
enum class Op : int {
  FmEliminations,      ///< fm.eliminations — variables eliminated (FM or Gaussian)
  FmConstraintsIn,     ///< fm.constraints_in — constraint rows entering an elimination
  FmConstraintsOut,    ///< fm.constraints_out — rows surviving (post-prune)
  FmCapHits,           ///< fm.cap_hits — conservative bails at kFmConstraintCap
  IntsetEmptyTests,    ///< intset.empty_tests — IntSet::isEmpty() calls
  IntsetProjects,      ///< intset.projects — IntSet::project() calls
  IntsetBoundQueries,  ///< intset.bound_queries — minOf/maxOf queries
  DepTests,            ///< dep.tests — per-level dependence candidate tests
  DepProven,           ///< dep.proven — tests whose candidate set was non-empty
  DepDisproven,        ///< dep.disproven — tests proven empty
  DepSampledTests,     ///< dep.sampled_tests — dependence tests that were timed
  DepSampledNs,        ///< dep.sampled_ns — wall ns summed over the timed tests
  SelCandidates,       ///< sel.candidates — permutations enumerated by selection
  SelCapHits,          ///< sel.cap_hits — selection searches stopped at maxCombos
  SelFallbacks,        ///< sel.fallbacks — groups falling back to original order
};

inline constexpr int kOpCount = 15;

/// Artifact/glossary name of an op (e.g. "fm.eliminations").
const char* opName(Op op);

/// All ops in enum order, for iteration.
const std::array<Op, kOpCount>& allOps();

namespace detail {
struct OpCounters {
  std::atomic<std::int64_t> v[kOpCount] = {};
};
inline OpCounters gOps;  // one instance across TUs (C++17 inline variable)
}  // namespace detail

/// Hot path: bump an operation counter. Inline relaxed fetch_add on a
/// global array — safe from any thread, never allocates or locks.
inline void count(Op op, std::int64_t n = 1) {
  detail::gOps.v[static_cast<int>(op)].fetch_add(n,
                                                 std::memory_order_relaxed);
}

/// Current process-lifetime value of one counter.
inline std::int64_t value(Op op) {
  return detail::gOps.v[static_cast<int>(op)].load(std::memory_order_relaxed);
}

/// Sampling period for timed hot-path operations (power of two).
inline constexpr std::uint64_t kSampleEvery = 8;

/// True on every kSampleEvery-th call, process-wide. Callers bracket the
/// operation with nowNs() only when this fires, recording into
/// DepSampledTests / DepSampledNs (or future sampled pairs).
inline bool sampleTick() {
  static std::atomic<std::uint64_t> ticks{0};
  return (ticks.fetch_add(1, std::memory_order_relaxed) &
          (kSampleEvery - 1)) == 0;
}

/// Steady-clock nanoseconds, for sampled sections.
inline std::int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Current / peak resident-set size in KiB from /proc/self/status
/// (VmRSS / VmHWM). Returns 0 where procfs is unavailable — consumers
/// treat 0 as "not measured", the obs graceful-degradation idiom.
std::int64_t currentRssKb();
std::int64_t peakRssKb();

/// Point-in-time copy of all counters, for delta computation.
using Snapshot = std::array<std::int64_t, kOpCount>;
Snapshot snapshot();

/// One per-SCoP row of the compile profile: counter deltas over the
/// scope bracket plus the SCoP's shape and cost gauges.
struct ScopRow {
  std::string scop;
  std::int64_t statements = 0;
  std::int64_t loops = 0;
  double compileMs = 0.0;
  std::int64_t rssHwmKb = 0;
  std::vector<std::pair<std::string, std::int64_t>> counters;  // op order
};

/// The full artifact payload (see writeCompileProfile for the schema).
struct CompileProfile {
  std::string pipeline;
  std::string generator;  ///< optional provenance note (e.g. scop_gen seed)
  std::vector<ScopRow> scops;
  std::vector<std::pair<std::string, std::int64_t>> residual;
  std::vector<std::pair<std::string, std::int64_t>> totals;
  std::int64_t rssHwmKb = 0;
};

/// Brackets per-SCoP compilation: beginScop() snapshots the global
/// counters, endScop() appends the delta row, finish() computes totals
/// and residual. Single-threaded use (the compile driver's loop).
class Collector {
 public:
  void beginScop();
  void endScop(std::string scop, std::int64_t statements, std::int64_t loops,
               double compileMs);
  /// Aborts an open bracket without emitting a row (failed compile).
  void abandonScop() { open_ = false; }

  CompileProfile finish(std::string pipeline,
                        std::string generator = std::string()) const;

 private:
  Snapshot base_{};
  bool open_ = false;
  std::vector<ScopRow> rows_;
};

/// Mirrors the current process totals into `reg` as counters named
/// `selfprof.<op>`, so a `--metrics-out` artifact carries them alongside
/// flow.* pass metrics. Adds the *delta* since the last mirror into the
/// same registry, so repeated calls stay consistent.
void mirrorToRegistry(Registry& reg);

/// Writes the `polyast-compile-profile-v1` artifact:
/// {"schema", "pipeline", "generator"?, "scops":[{"scop","statements",
///  "loops","compile_ms","rss_hwm_kb","counters":{...}}],
///  "residual":{"counters":{...}},
///  "totals":{"rss_hwm_kb","counters":{...}}}
void writeCompileProfile(std::ostream& out, const CompileProfile& profile);
void writeCompileProfileFile(const std::string& path,
                             const CompileProfile& profile);

}  // namespace polyast::obs::selfprof
