#include "obs/metrics.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace polyast::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  POLYAST_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must be sorted ascending");
}

void Histogram::observe(double x) {
  std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
  // CAS loops for min/max (rare retries: observations mostly arrive above
  // the current min / below the current max).
  double cur = min_.load(std::memory_order_relaxed);
  while (x < cur &&
         !min_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (x > cur &&
         !max_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucketCounts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> expBounds(double start, double factor, int count) {
  POLYAST_CHECK(start > 0.0 && factor > 1.0 && count > 0,
                "bad expBounds parameters");
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

const std::vector<double>& waitLatencyBounds() {
  static const std::vector<double> bounds = expBounds(128.0, 4.0, 14);
  return bounds;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void Registry::note(const std::string& name, const std::string& text) {
  std::lock_guard<std::mutex> lock(mutex_);
  notes_[name] = text;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramData d;
    d.bounds = h->bounds();
    d.bucketCounts = h->bucketCounts();
    d.count = h->count();
    d.sum = h->sum();
    d.min = h->min();
    d.max = h->max();
    snap.histograms[name] = std::move(d);
  }
  snap.notes = notes_;
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  notes_.clear();
}

}  // namespace polyast::obs
