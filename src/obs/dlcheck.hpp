// The `polyast-dlcheck-v1` artifact: DL-model predictions next to measured
// hardware counters, per kernel, plus a suite-level Spearman
// rank-correlation summary.
//
// This is the predicted-vs-measured closing of the loop: the flow pipeline
// chose schedules using DL's distinct-lines estimates; `polyastc --execute
// --perf` measures the same optimized nests with perf.hpp sessions and
// writes both sides here so CI (obs_validate --dlcheck) and humans can see
// whether the model ordered the kernels the way the hardware does.
//
// The obs layer cannot depend on src/dl (dl links obs), so the report
// takes plain numbers; src/dl/dl_predict.hpp produces them.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/perf.hpp"

namespace polyast::obs {

/// One kernel's predicted-vs-measured record.
struct DlCheckKernel {
  std::string kernel;    ///< e.g. "gemm"
  std::string pipeline;  ///< preset that produced the schedule ("polyast")
  std::string backend = "interp";  ///< execution backend measured
  /// Reduction scheduling mode the schedule was selected under
  /// ("strict"/"relaxed") — relaxed runs form separate history series in
  /// bench_compare (`kernel@relaxed`).
  std::string reductions = "strict";
  /// Whether the measured native run executed packed SIMD microkernels
  /// ("on"/"off"). Always "off" for interp runs, scalar TUs, --simd=off
  /// and scalar retries after a rejected vector TU; "on" native runs form
  /// the `kernel@native-simd` history series in bench_compare.
  std::string simd = "off";
  /// DL-model side (dl::predictProgram on the optimized program).
  double predictedLines = 0.0;
  double predictedCost = 0.0;
  int nests = 0;
  /// Hardware side: summed per-thread readings of the measured execution.
  PerfReading measured;
  int threadsMeasured = 0;
  int threadsDegraded = 0;
};

struct DlCheckReport {
  std::vector<DlCheckKernel> kernels;
  int threads = 1;  ///< thread-pool size of the measured runs
};

/// Spearman rank correlation of two equal-length samples (average ranks on
/// ties). Returns NaN when undefined: fewer than two points, length
/// mismatch, or zero variance in either sample.
double spearman(const std::vector<double>& a, const std::vector<double>& b);

/// Writes the polyast-dlcheck-v1 JSON:
/// {"schema":"polyast-dlcheck-v1","threads":N,"degraded":bool,
///  "kernels":[{"kernel","pipeline","backend",
///    "predicted":{"lines","cost","nests"},
///    "measured":{"degraded","degraded_reason"?,"wall_ns","tsc_cycles",
///                "multiplex_ratio","threads","threads_degraded",
///                "counters":{...}}}],
///  "summary":{"kernel_count",
///    "rank_correlation":{"l1d_misses","llc_misses","cycles","wall_ns"}}}
/// Correlations pair predicted lines with the measured series across
/// kernels; entries are null when undefined (degraded counters, < 2
/// kernels, or zero variance). Top-level "degraded" is true when any
/// kernel had a degraded thread.
void writeDlCheck(std::ostream& out, const DlCheckReport& report);
void writeDlCheckFile(const std::string& path, const DlCheckReport& report);

}  // namespace polyast::obs
