#include "obs/trace.hpp"

namespace polyast::obs {

namespace {

std::uint32_t nextThreadId() {
  static std::atomic<std::uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Innermost open span per (tracer, thread): the parent stack. One flat
/// thread-local vector suffices — nesting depth is tiny and multiple
/// tracers only appear in tests.
struct OpenSpan {
  const Tracer* tracer;
  std::uint64_t id;
};
thread_local std::vector<OpenSpan> tOpenSpans;

std::uint64_t currentParent(const Tracer& tracer) {
  for (auto it = tOpenSpans.rbegin(); it != tOpenSpans.rend(); ++it)
    if (it->tracer == &tracer) return it->id;
  return 0;
}

void popOpenSpan(const Tracer& tracer, std::uint64_t id) {
  for (auto it = tOpenSpans.rbegin(); it != tOpenSpans.rend(); ++it) {
    if (it->tracer == &tracer && it->id == id) {
      tOpenSpans.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace

std::uint32_t threadId() {
  thread_local std::uint32_t id = nextThreadId();
  return id;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() {
  static Tracer instance;
  return instance;
}

std::uint64_t Tracer::nowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::instant(const char* name, const char* category,
                     std::vector<Attr> attrs) {
  if (!enabled()) return;
  SpanRecord rec;
  rec.name = name;
  rec.category = category;
  rec.startNs = nowNs();
  rec.threadId = obs::threadId();
  rec.id = nextId();
  rec.parentId = currentParent(*this);
  rec.instant = true;
  rec.attrs = std::move(attrs);
  record(std::move(rec));
}

void Tracer::nameCurrentThread(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  threadNames_[obs::threadId()] = name;
}

std::vector<SpanRecord> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::map<std::uint32_t, std::string> Tracer::threadNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return threadNames_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

void Tracer::record(SpanRecord&& rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(rec));
}

void Span::open(Tracer& tracer, const char* category) {
  tracer_ = &tracer;
  rec_.category = category;
  rec_.startNs = tracer.nowNs();
  rec_.threadId = obs::threadId();
  rec_.id = tracer.nextId();
  rec_.parentId = currentParent(tracer);
  tOpenSpans.push_back({&tracer, rec_.id});
}

Span::Span(Tracer& tracer, const char* name, const char* category) {
  if (!tracer.enabled()) return;
  rec_.name = name;
  open(tracer, category);
}

Span::Span(Tracer& tracer, const std::string& name, const char* category) {
  if (!tracer.enabled()) return;
  rec_.name = name;
  open(tracer, category);
}

Span::~Span() { end(); }

void Span::end() {
  if (!tracer_) return;
  rec_.durNs = tracer_->nowNs() - rec_.startNs;
  popOpenSpan(*tracer_, rec_.id);
  Tracer* t = tracer_;
  tracer_ = nullptr;
  t->record(std::move(rec_));
}

void Span::attr(const char* key, std::int64_t value) {
  if (tracer_) rec_.attrs.emplace_back(key, AttrValue(value));
}
void Span::attr(const char* key, double value) {
  if (tracer_) rec_.attrs.emplace_back(key, AttrValue(value));
}
void Span::attr(const char* key, bool value) {
  if (tracer_) rec_.attrs.emplace_back(key, AttrValue(value));
}
void Span::attr(const char* key, const std::string& value) {
  if (tracer_) rec_.attrs.emplace_back(key, AttrValue(value));
}
void Span::attr(const char* key, const char* value) {
  if (tracer_) rec_.attrs.emplace_back(key, AttrValue(std::string(value)));
}
void Span::attr(const std::string& key, std::int64_t value) {
  if (tracer_) rec_.attrs.emplace_back(key, AttrValue(value));
}
void Span::attr(const std::string& key, const std::string& value) {
  if (tracer_) rec_.attrs.emplace_back(key, AttrValue(value));
}

}  // namespace polyast::obs
