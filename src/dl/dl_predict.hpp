// Whole-program DL predictions for validation telemetry.
//
// dl_model.hpp answers the optimizer's *relative* questions (which
// permutation, is fusion profitable). This module asks the model for an
// *absolute* prediction of the optimized program — per loop nest, how many
// distinct cache lines will be fetched — so `polyastc --execute --perf`
// can put the prediction next to measured hardware counters in the
// `polyast-dlcheck-v1` artifact and the suite-level rank correlation can
// say whether the model that chose the schedule ordered the kernels the
// way the hardware does.
//
// The prediction is an estimate by construction: loop trip counts are
// evaluated at concrete parameter bindings with every outer iterator
// pinned to the midpoint of its own range (triangular nests become
// average-case rectangles), and DL's uniform-group / unit-stride rules
// are the model's, not the machine's. Absolute accuracy is not the goal —
// cross-kernel *ranking* fidelity is, which is what the dlcheck summary
// measures.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dl/dl_model.hpp"
#include "ir/ast.hpp"
#include "obs/metrics.hpp"

namespace polyast::dl {

/// Prediction for one loop nest (a maximal group of statements sharing the
/// same enclosing-loop chain).
struct NestPrediction {
  /// Dotted iterator chain, outermost first ("tt.t.ii.jj.i.j"); "<top>"
  /// for loop-less statements.
  std::string nest;
  std::vector<std::string> iters;  ///< enclosing iterators, outermost first
  int stmts = 0;
  /// Estimated iterations of one intra-tile execution (product of
  /// point/plain-loop trips). 1 for loop-less statements.
  double tileIterations = 1.0;
  /// Estimated number of tile executions (product of inter-tile-loop
  /// trips); 1 when the nest is untiled.
  double tileCount = 1.0;
  double totalIterations = 1.0;  ///< tileIterations * tileCount
  /// DL(t): distinct lines one tile touches.
  double distinctLines = 0.0;
  /// costPerLine * DL(t) / tileIterations.
  double memCostPerIter = 0.0;
  /// distinctLines * tileCount — the nest's predicted line fetches, the
  /// number dlcheck compares against measured cache misses.
  double predictedLines = 0.0;
};

/// Program-level roll-up of every nest prediction.
struct ProgramPrediction {
  std::vector<NestPrediction> nests;
  double predictedLines = 0.0;  ///< sum over nests
  double predictedCost = 0.0;   ///< sum of memCostPerIter * totalIterations
};

/// Predicts the *current* loop structure of `p` (call it on the pipeline
/// output so tiling/permutation are reflected) at the given parameter
/// bindings. Parameters absent from `params` fall back to
/// Program::paramDefaults, then to 0.
ProgramPrediction predictProgram(
    const ir::Program& p, const std::map<std::string, std::int64_t>& params,
    const CacheParams& cache = {});

/// Records a prediction into `reg` at schedule-selection time:
/// `dl.predict.lines` / `dl.predict.cost` / `dl.predict.nests` gauges plus
/// per-nest `dl.predict.nest.<chain>.lines` gauges.
void recordPrediction(const ProgramPrediction& pred, obs::Registry& reg);

}  // namespace polyast::dl
