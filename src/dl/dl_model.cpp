#include "dl/dl_model.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <set>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace polyast::dl {

using ir::AffExpr;

namespace {

/// Times one top-level model query into the `dl.query_us` histogram (how
/// long the optimizer waits on the cost model, Kong/Pouchet-style
/// attribution). Clock reads only when Registry timing is on.
class QueryTimer {
 public:
  QueryTimer() {
    if (obs::Registry::global().timingEnabled())
      start_ = std::chrono::steady_clock::now();
  }
  ~QueryTimer() {
    if (!start_) return;
    static obs::Histogram& latency = obs::Registry::global().histogram(
        "dl.query_us", obs::expBounds(0.1, 4.0, 12));
    latency.observe(std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - *start_)
                        .count());
  }

 private:
  std::optional<std::chrono::steady_clock::time_point> start_;
};

/// One deduplicated array reference.
struct Ref {
  std::string array;
  std::vector<AffExpr> subs;
};

std::vector<Ref> collectRefs(const LoopNestModel& nest) {
  std::vector<Ref> refs;
  std::set<std::string> seen;
  auto add = [&](const std::string& array, const std::vector<AffExpr>& subs) {
    if (nest.privatized.count(array)) return;  // register-resident
    std::ostringstream key;
    key << array;
    for (const auto& s : subs) key << "[" << s.str() << "]";
    if (seen.insert(key.str()).second) refs.push_back({array, subs});
  };
  for (const auto& s : nest.stmts) {
    add(s->lhsArray, s->lhsSubs);
    std::vector<ir::ArrayUse> uses;
    ir::collectArrayUses(s->rhs, uses);
    for (const auto& u : uses) add(u.array, u.subs);
  }
  return refs;
}

/// Span of distinct values a subscript takes over the tile:
/// 1 + sum_i |coeff_i| * (t_i - 1).
double subscriptSpan(const AffExpr& sub,
                     const std::map<std::string, std::int64_t>& tile) {
  double span = 1.0;
  for (const auto& [name, coeff] : sub.coeffs()) {
    auto it = tile.find(name);
    std::int64_t t = it == tile.end() ? 1 : it->second;
    span += static_cast<double>(std::llabs(coeff)) *
            static_cast<double>(t - 1);
  }
  return span;
}

/// Unit stride along the fastest-varying dimension: the last subscript has
/// some iterator with |coeff| == 1.
bool lastDimUnitStride(const Ref& ref) {
  if (ref.subs.empty()) return false;
  for (const auto& [name, coeff] : ref.subs.back().coeffs()) {
    (void)name;
    if (coeff == 1 || coeff == -1) return true;
  }
  return false;
}

double refDistinctLines(const Ref& ref,
                        const std::map<std::string, std::int64_t>& tile,
                        const CacheParams& cache) {
  if (ref.subs.empty()) return 1.0;  // scalar: one line
  double lines = 1.0;
  for (std::size_t d = 0; d + 1 < ref.subs.size(); ++d)
    lines *= subscriptSpan(ref.subs[d], tile);
  double lastSpan = subscriptSpan(ref.subs.back(), tile);
  if (lastDimUnitStride(ref))
    lastSpan = std::max(1.0, lastSpan / static_cast<double>(cache.lineSize));
  return lines * lastSpan;
}

}  // namespace

namespace {

/// Canonical per-dimension shape of a reference under the given tile sizes:
/// per dim, the multiset of (|coeff|, tile size) pairs plus a flag for the
/// constant. Two references to the same array with equal shapes are treated
/// as one uniformly-generated group — they touch (nearly) the same lines
/// when executed under a common tile (e.g. tmp[i][j] written and tmp[i][k]
/// read inside one fused i-loop).
std::string refShape(const Ref& ref,
                     const std::map<std::string, std::int64_t>& tile) {
  std::ostringstream os;
  os << ref.array;
  for (const auto& sub : ref.subs) {
    os << "|";
    std::vector<std::pair<std::int64_t, std::int64_t>> terms;
    for (const auto& [name, coeff] : sub.coeffs()) {
      auto it = tile.find(name);
      terms.push_back({std::llabs(coeff),
                       it == tile.end() ? 1 : it->second});
    }
    std::sort(terms.begin(), terms.end());
    for (const auto& [c, t] : terms) os << c << "x" << t << ",";
  }
  return os.str();
}

}  // namespace

double distinctLines(const LoopNestModel& nest,
                     const std::map<std::string, std::int64_t>& tile,
                     const CacheParams& cache) {
  static obs::Counter& evals =
      obs::Registry::global().counter("dl.distinct_lines_evals");
  evals.add();
  double total = 0.0;
  std::set<std::string> shapes;
  for (const auto& ref : collectRefs(nest)) {
    if (!shapes.insert(refShape(ref, tile)).second) continue;
    total += refDistinctLines(ref, tile, cache);
  }
  return total;
}

double memCostPerIteration(const LoopNestModel& nest,
                           const std::map<std::string, std::int64_t>& tile,
                           const CacheParams& cache) {
  double iters = 1.0;
  for (const auto& it : nest.iters) {
    auto t = tile.find(it);
    iters *= t == tile.end() ? 1.0 : static_cast<double>(t->second);
  }
  POLYAST_CHECK(iters > 0.0, "empty tile in memCostPerIteration");
  return cache.costPerLine * distinctLines(nest, tile, cache) / iters;
}

int contiguityCount(const LoopNestModel& nest, const std::string& iter) {
  int count = 0;
  for (const auto& ref : collectRefs(nest)) {
    if (ref.subs.empty()) continue;
    std::int64_t c = ref.subs.back().coeff(iter);
    if (c == 1 || c == -1) ++count;
  }
  return count;
}

std::vector<std::string> bestPermutationOrder(const LoopNestModel& nest,
                                              const CacheParams& cache) {
  static obs::Counter& queries =
      obs::Registry::global().counter("dl.permutation_queries");
  queries.add();
  QueryTimer timer;
  obs::Span span("dl.best_permutation", "dl");
  span.attr("iters", static_cast<std::int64_t>(nest.iters.size()));
  const std::int64_t nominal = 32;
  std::map<std::string, std::int64_t> tile;
  for (const auto& it : nest.iters) tile[it] = nominal;
  double base = memCostPerIteration(nest, tile, cache);

  struct Entry {
    std::string iter;
    double derivative;
    int contiguity;
    std::size_t depth;
  };
  std::vector<Entry> entries;
  for (std::size_t d = 0; d < nest.iters.size(); ++d) {
    const std::string& it = nest.iters[d];
    std::map<std::string, std::int64_t> bumped = tile;
    bumped[it] = nominal + 1;
    double dcost = memCostPerIteration(nest, bumped, cache) - base;
    entries.push_back({it, dcost, contiguityCount(nest, it), d});
  }
  // Innermost = most negative derivative; ties: higher contiguity, then
  // deeper original position. We sort for the *outer-to-inner* output, so
  // reverse all comparisons.
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     const double eps = 1e-12;
                     if (std::fabs(a.derivative - b.derivative) > eps)
                       return a.derivative > b.derivative;  // flattest outer
                     if (a.contiguity != b.contiguity)
                       return a.contiguity < b.contiguity;
                     return a.depth < b.depth;  // preserve original nesting
                   });
  std::vector<std::string> order;
  order.reserve(entries.size());
  for (const auto& e : entries) order.push_back(e.iter);
  return order;
}

double minMemCost(const LoopNestModel& nest, const CacheParams& cache) {
  static obs::Counter& queries =
      obs::Registry::global().counter("dl.min_cost_queries");
  queries.add();
  QueryTimer timer;
  double best = -1.0;
  for (std::int64_t t : {4, 8, 16, 32, 64, 128, 256}) {
    std::map<std::string, std::int64_t> tile;
    for (const auto& it : nest.iters) tile[it] = t;
    if (distinctLines(nest, tile, cache) >
        static_cast<double>(cache.capacityLines))
      continue;
    double cost = memCostPerIteration(nest, tile, cache);
    if (best < 0.0 || cost < best) best = cost;
  }
  if (best < 0.0) {
    // Even the smallest tile exceeds capacity: use it anyway (the model
    // degrades gracefully; tiling still bounds the working set).
    std::map<std::string, std::int64_t> tile;
    for (const auto& it : nest.iters) tile[it] = 4;
    best = memCostPerIteration(nest, tile, cache);
  }
  return best;
}

bool fusionProfitable(const LoopNestModel& a, const LoopNestModel& b,
                      const LoopNestModel& fused, const CacheParams& cache) {
  static obs::Counter& checks =
      obs::Registry::global().counter("dl.fusion_checks");
  static obs::Counter& profitable =
      obs::Registry::global().counter("dl.fusion_profitable");
  checks.add();
  QueryTimer timer;
  obs::Span span("dl.fusion_check", "dl");
  // Per-iteration costs are comparable because the nests share the fused
  // iteration space: running them separately pays both costs.
  double fusedCost = minMemCost(fused, cache);
  double separateCost = minMemCost(a, cache) + minMemCost(b, cache);
  bool result = fusedCost < separateCost;
  if (result) profitable.add();
  span.attr("fused_cost", fusedCost);
  span.attr("separate_cost", separateCost);
  span.attr("profitable", result);
  return result;
}

}  // namespace polyast::dl
