#include "dl/dl_predict.hpp"

#include <algorithm>
#include <cmath>

namespace polyast::dl {

namespace {

using ir::AffExpr;

/// AffExpr::evaluate that treats unbound names as 0 instead of throwing —
/// prediction must never fail on exotic bounds, only coarsen.
std::int64_t evalSoft(const AffExpr& e,
                      const std::map<std::string, std::int64_t>& env) {
  std::int64_t v = e.constant();
  for (const auto& [n, c] : e.coeffs()) {
    auto it = env.find(n);
    if (it != env.end()) v += c * it->second;
  }
  return v;
}

std::int64_t evalLower(const ir::Bound& b,
                       const std::map<std::string, std::int64_t>& env) {
  std::int64_t v = 0;
  bool first = true;
  for (const auto& part : b.parts) {
    std::int64_t p = evalSoft(part, env);
    v = first ? p : std::max(v, p);
    first = false;
  }
  return v;
}

std::int64_t evalUpper(const ir::Bound& b,
                       const std::map<std::string, std::int64_t>& env) {
  std::int64_t v = 0;
  bool first = true;
  for (const auto& part : b.parts) {
    std::int64_t p = evalSoft(part, env);
    v = first ? p : std::min(v, p);
    first = false;
  }
  return v;
}

/// Estimated trip count of `loop` under `env`, and pins the iterator at
/// its midpoint in `env` so inner bounds that reference it evaluate to the
/// average-case value.
std::int64_t estimateTrip(const ir::Loop& loop,
                          std::map<std::string, std::int64_t>& env) {
  std::int64_t step = loop.step == 0 ? 1 : loop.step;
  std::int64_t lb = evalLower(loop.lower, env);
  std::int64_t ub = evalUpper(loop.upper, env);
  std::int64_t trip =
      ub > lb ? (ub - lb + step - 1) / step : 0;
  env[loop.iter] = trip > 0 ? lb + ((trip - 1) / 2) * step : lb;
  return trip;
}

std::string chainName(const std::vector<std::shared_ptr<ir::Loop>>& loops) {
  if (loops.empty()) return "<top>";
  std::string s;
  for (const auto& l : loops) {
    if (!s.empty()) s += ".";
    s += l->iter;
  }
  return s;
}

}  // namespace

ProgramPrediction predictProgram(
    const ir::Program& p, const std::map<std::string, std::int64_t>& params,
    const CacheParams& cache) {
  std::map<std::string, std::int64_t> base;
  for (const auto& name : p.params) {
    auto it = params.find(name);
    if (it != params.end()) {
      base[name] = it->second;
    } else {
      auto d = p.paramDefaults.find(name);
      base[name] = d == p.paramDefaults.end() ? 0 : d->second;
    }
  }

  // Group statements by their enclosing-loop chain, preserving textual
  // order. Pointer identity of the chain is the grouping key: two
  // statements in the same innermost body share every Loop node.
  struct Group {
    std::vector<std::shared_ptr<ir::Loop>> loops;
    LoopNestModel model;
  };
  std::vector<Group> groups;
  p.forEachStmt([&](const std::shared_ptr<ir::Stmt>& stmt,
                    const std::vector<std::shared_ptr<ir::Loop>>& loops) {
    if (groups.empty() || groups.back().loops != loops) {
      Group g;
      g.loops = loops;
      for (const auto& l : loops) g.model.iters.push_back(l->iter);
      groups.push_back(std::move(g));
    }
    groups.back().model.stmts.push_back(stmt);
  });

  ProgramPrediction out;
  for (const auto& g : groups) {
    NestPrediction n;
    n.nest = chainName(g.loops);
    n.iters = g.model.iters;
    n.stmts = static_cast<int>(g.model.stmts.size());

    // Walk the chain outermost-in: every trip estimate pins its iterator
    // at the midpoint, so inner (possibly tile-origin-relative or
    // triangular) bounds see average-case values.
    std::map<std::string, std::int64_t> env = base;
    std::map<std::string, std::int64_t> tile;
    for (const auto& l : g.loops) {
      std::int64_t trip = std::max<std::int64_t>(estimateTrip(*l, env), 1);
      if (l->isTileLoop) {
        n.tileCount *= static_cast<double>(trip);
      } else {
        n.tileIterations *= static_cast<double>(trip);
        tile[l->iter] = trip;
      }
    }
    n.totalIterations = n.tileIterations * n.tileCount;
    n.distinctLines = distinctLines(g.model, tile, cache);
    n.memCostPerIter = memCostPerIteration(g.model, tile, cache);
    n.predictedLines = n.distinctLines * n.tileCount;

    out.predictedLines += n.predictedLines;
    out.predictedCost += n.memCostPerIter * n.totalIterations;
    out.nests.push_back(std::move(n));
  }
  return out;
}

void recordPrediction(const ProgramPrediction& pred, obs::Registry& reg) {
  reg.gauge("dl.predict.lines").set(pred.predictedLines);
  reg.gauge("dl.predict.cost").set(pred.predictedCost);
  reg.gauge("dl.predict.nests")
      .set(static_cast<double>(pred.nests.size()));
  for (const auto& n : pred.nests)
    reg.gauge("dl.predict.nest." + n.nest + ".lines").set(n.predictedLines);
}

}  // namespace polyast::dl
