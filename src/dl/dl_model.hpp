// The DL (Distinct Lines) memory cost model (Sec. III-B of the paper,
// following Ferrante/Sarkar/Thrash and Sarkar's locality analysis).
//
// DL estimates the number of distinct cache lines (or TLB entries) touched
// by one tile of a loop nest, as a function of the tile sizes. From it we
// derive:
//   * mem_cost(t) = Cost_line * DL(t) / prod(t)   — per-iteration memory
//     cost (Sec. III-B),
//   * the best permutation order: ascending order of d(mem_cost)/d(t_i),
//     most negative innermost (Sec. III-B1), with ties broken by a
//     vectorization-friendliness count (stride-1 contiguity) — this is the
//     paper's "maximize the number of clean inner loops" objective,
//   * loop fusion profitability: fusion is profitable when the minimum
//     mem_cost over capacity-feasible tile sizes decreases (Sec. III-B2).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/ast.hpp"

namespace polyast::dl {

/// Target cache/TLB level parameters (element-granularity line size).
struct CacheParams {
  std::int64_t lineSize = 8;        ///< elements per line (64B / double)
  std::int64_t capacityLines = 4096;  ///< lines in the modeled cache (256KB)
  double costPerLine = 1.0;         ///< miss penalty weight
};

/// A loop nest to model: the ordered iterators and the statements inside.
struct LoopNestModel {
  std::vector<std::string> iters;  ///< outermost first
  std::vector<std::shared_ptr<const ir::Stmt>> stmts;
  /// Arrays scored as privatized: a proven-pure accumulator the executor
  /// keeps in a register (or a per-thread copy) contributes no memory
  /// traffic, so its references are excluded from the footprint. Set by
  /// the affine scheduler under --reductions=relaxed.
  std::set<std::string> privatized;
};

/// Number of distinct lines accessed by one tile, with tile size
/// `tile[it]` per iterator (iterators absent from the map contribute a
/// span of 1). Duplicate references (same array, same subscripts) are
/// counted once — they hit the same lines (group reuse).
double distinctLines(const LoopNestModel& nest,
                     const std::map<std::string, std::int64_t>& tile,
                     const CacheParams& cache);

/// Per-iteration memory cost: costPerLine * DL(tile) / prod(tile).
double memCostPerIteration(const LoopNestModel& nest,
                           const std::map<std::string, std::int64_t>& tile,
                           const CacheParams& cache);

/// Number of references in the nest for which `iter` is the fastest-varying
/// subscript dimension with unit stride (candidate for contiguous SIMD
/// access when placed innermost).
int contiguityCount(const LoopNestModel& nest, const std::string& iter);

/// The most profitable loop order, outermost first. Sorting key: DL cost
/// derivative (most negative innermost), ties broken by contiguityCount
/// (higher innermost), then by original depth (deeper stays inner).
std::vector<std::string> bestPermutationOrder(const LoopNestModel& nest,
                                              const CacheParams& cache);

/// Minimum per-iteration memory cost over capacity-feasible uniform tile
/// sizes (power-of-two grid); the tile size must keep DL within capacity.
double minMemCost(const LoopNestModel& nest, const CacheParams& cache);

/// Fusion profitability (Sec. III-B2): true when fusing `a` and `b` (which
/// share the iteration space of `fused`) reduces the minimum achievable
/// per-iteration memory cost.
bool fusionProfitable(const LoopNestModel& a, const LoopNestModel& b,
                      const LoopNestModel& fused, const CacheParams& cache);

}  // namespace polyast::dl
