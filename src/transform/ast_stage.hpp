// AST-based (syntactic) transformations — Sec. IV of the paper.
//
// After the polyhedral stage has fixed fusion / permutation / reversal /
// retiming, the remaining transformations are performed directly on the
// loop AST:
//   * loop skewing as a pre-processing for tilability (Sec. IV-B),
//   * parallelism detection — doall / reduction / pipeline /
//     reduction+pipeline — from dependence vectors (Sec. IV-A),
//   * syntactic rectangular tiling: strip-mine + interchange (Sec. IV-B),
//   * register tiling: unroll(-and-jam) of intra-tile loops (Sec. IV-C).
//
// All passes mutate the Program in place and preserve semantics; the test
// suite validates each against the interpreter oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/ast.hpp"
#include "poly/scop.hpp"

namespace polyast::transform {

struct AstOptions {
  std::int64_t paramMin = 4;
  std::int64_t tileSize = 32;
  /// Tile size used for the outermost loop of a band whose outer loop
  /// carries dependences (time-tiling of stencils; the paper uses 5).
  std::int64_t timeTileSize = 5;
  std::int64_t maxSkewFactor = 8;
  /// Unroll factors for the innermost and second-innermost intra-tile
  /// loops (register tiling).
  std::int64_t unrollInner = 2;
  std::int64_t unrollOuter = 2;
  /// When false, reduction dependences are treated like ordinary ones
  /// (the doall-only baseline behaviour).
  bool recognizeReductions = true;
  /// When false, the detector never reports pipeline parallelism (the
  /// baseline converts such loops to wavefront doall instead).
  bool allowPipeline = true;
  /// When true, register tiling tags gemm-like contraction nests inside
  /// tiled bands (ir::MicroKernelTag) instead of unrolling them; the
  /// native backend lowers tagged nests to packed SIMD microkernels. Off
  /// reproduces the scalar lowering byte-for-byte.
  bool simd = true;
};

/// Loop skewing to make dependence distances non-negative inside maximal
/// single-chain loop nests, enabling rectangular tiling. Returns the number
/// of skews applied.
int skewForTilability(ir::Program& program, const AstOptions& options = {});

/// Parallelism-detection outcome: loop marks by kind as they stand after
/// detection (post outermost-only clearing when that filter is on).
struct ParallelismStats {
  int doall = 0;
  int reduction = 0;
  int pipeline = 0;
  int reductionPipeline = 0;
  /// Pipeline-kind marks whose sync depth reaches three levels (the
  /// runtime's 3D doacross grid applies).
  int pipelineDepth3 = 0;
  int total() const { return doall + reduction + pipeline + reductionPipeline; }
};

/// Detects and annotates loop parallelism (Loop::parallel). When
/// `outermostOnly`, marks below an already-parallel loop are cleared —
/// the paper always exploits the outermost available parallelism.
/// Returns the counts of annotated loops by parallelism kind.
ParallelismStats detectParallelism(ir::Program& program,
                                   const AstOptions& options = {},
                                   bool outermostOnly = true);

/// Syntactic rectangular tiling of every fully-permutable band of >= 2
/// loops whose bounds do not depend on band-internal iterators. Tile loops
/// are created outside the point loops, inherit parallel annotations, and
/// are marked isTileLoop. Returns the number of bands tiled.
int tileForLocality(ir::Program& program, const AstOptions& options = {});

/// Register tiling (Sec. IV-C): unrolls the innermost (and optionally the
/// second-innermost) non-tile loops by the configured factors, guarding
/// replicated bodies so partial trip counts stay correct. Returns the
/// number of loops unrolled.
int registerTile(ir::Program& program, const AstOptions& options = {});

}  // namespace polyast::transform
