#include "transform/affine.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <functional>
#include <set>

#include "obs/selfprof.hpp"
#include "poly/codegen.hpp"
#include "support/error.hpp"

namespace polyast::transform {

using ir::AffExpr;
using poly::Dependence;
using poly::DepKind;
using poly::PoDG;
using poly::PolyStmt;
using poly::Schedule;
using poly::ScheduleMap;
using poly::Scop;

namespace {

/// The scheduler's mutable state, snapshotable so the perfect-fusion
/// attempt (Algorithm 3) can be rolled back.
class AffineScheduler {
 public:
  AffineScheduler(const Scop& scop, const AffineOptions& opt)
      : scop_(scop), opt_(opt), podg_(poly::computeDependences(scop)) {
    for (const auto& ps : scop.stmts) {
      StmtState s;
      s.ps = &ps;
      std::size_t d = ps.iters.size();
      s.sched.beta.assign(d + 1, 0);
      s.sched.alpha = IntMatrix(d, d);
      s.sched.shift.assign(d, AffExpr(0));
      s.iterScheduled.assign(d, false);
      if (opt.preferOriginalOrder) {
        for (std::size_t j = 0; j < d; ++j) s.dlPref.push_back(j);
      } else {
        // DL preference: best permutation order (outer->inner) of this
        // statement's own nest.
        dl::LoopNestModel nest{ps.iters, {ps.stmt}, {}};
        if (opt.reductions == poly::ReductionMode::Relaxed) {
          // Widened candidate set: a proven-pure accumulator is scored as
          // privatized (register-resident), so the preference is driven by
          // the data operands instead of the accumulation target. Strict
          // mode keeps the accumulator's footprint term, which anchors the
          // preference to the original accumulation-innermost order.
          for (const auto& dep : podg_.deps)
            if (dep.srcId == ps.stmt->id && dep.dstId == ps.stmt->id &&
                dep.relaxable()) {
              nest.privatized.insert(ps.stmt->lhsArray);
              break;
            }
        }
        for (const auto& name : dl::bestPermutationOrder(nest, opt.cache)) {
          auto it = std::find(ps.iters.begin(), ps.iters.end(), name);
          s.dlPref.push_back(
              static_cast<std::size_t>(it - ps.iters.begin()));
        }
      }
      if (getenv("POLYAST_DLPREF")) {
        fprintf(stderr, "dlpref stmt %d:", ps.stmt->id);
        for (std::size_t j : s.dlPref)
          fprintf(stderr, " %s", ps.iters[j].c_str());
        fprintf(stderr, "\n");
      }
      st_[ps.stmt->id] = std::move(s);
    }
    for (std::size_t i = 0; i < podg_.deps.size(); ++i) {
      if (podg_.deps[i].kind == DepKind::Input) continue;
      // Relaxed mode drops proven-pure accumulation edges from every
      // legality decision (SCCs, permutation, retiming, fusion,
      // parallelism preservation); the reductions analysis pass re-proves
      // the resulting schedules safe afterwards.
      if (opt.reductions == poly::ReductionMode::Relaxed &&
          podg_.deps[i].relaxable())
        continue;
      deps_.push_back({i, podg_.deps[i].poly, false});
    }
  }

  ScheduleMap run() {
    std::vector<int> all;
    for (const auto& ps : scop_.stmts) all.push_back(ps.stmt->id);
    POLYAST_CHECK(algorithm2(all, 0),
                  "affine scheduler exhausted its search without finding a "
                  "legal schedule");
    ScheduleMap out;
    for (auto& [id, s] : st_) out[id] = s.sched;
    if (debug_ && !poly::scheduleIsLegal(scop_, podg_, out, opt_.reductions)) {
      std::size_t rows = poly::normalizedRows(scop_);
      for (const auto& d : podg_.deps) {
        if (d.kind == DepKind::Input) continue;
        if (opt_.reductions == poly::ReductionMode::Relaxed && d.relaxable())
          continue;
        auto st2 = poly::checkDependence(scop_, d, out, rows);
        if (st2 != poly::DepStatus::Carried)
          fprintf(stderr, "dep %d->%d (%s, L%zu, %s): %s\n", d.srcId,
                  d.dstId, d.array.c_str(), d.level,
                  poly::depKindName(d.kind).c_str(),
                  st2 == poly::DepStatus::Violated ? "VIOLATED" : "tied");
      }
      for (auto& [id, sc] : out)
        fprintf(stderr, "stmt %d: %s\n", id, sc.str().c_str());
    }
    POLYAST_CHECK(poly::scheduleIsLegal(scop_, podg_, out, opt_.reductions),
                  "affine scheduler produced an illegal schedule");
    return out;
  }

 private:
  struct StmtState {
    const PolyStmt* ps = nullptr;
    Schedule sched;
    std::vector<bool> iterScheduled;
    std::vector<std::size_t> dlPref;  ///< iterator indices, outer-to-inner
    std::size_t assigned = 0;         ///< alpha rows assigned so far

    std::size_t depth() const { return iterScheduled.size(); }
    std::size_t remaining() const {
      std::size_t r = 0;
      for (bool b : iterScheduled)
        if (!b) ++r;
      return r;
    }
    /// Unscheduled iterators ordered by DL preference (outer-first).
    std::vector<std::size_t> candidates() const {
      std::vector<std::size_t> out;
      for (std::size_t j : dlPref)
        if (!iterScheduled[j]) out.push_back(j);
      return out;
    }
  };

  struct ActiveDep {
    std::size_t idx;  ///< into podg_.deps
    IntSet pending;   ///< pairs still tied by the assigned rows
    bool satisfied;
  };

  struct Snapshot {
    std::map<int, StmtState> st;
    std::vector<ActiveDep> deps;
  };
  Snapshot snapshot() const { return {st_, deps_}; }
  void restore(Snapshot s) {
    st_ = std::move(s.st);
    deps_ = std::move(s.deps);
  }

  /// Per-statement choice at one level: source iterator, sign, shift.
  struct LevelChoice {
    std::size_t iter = 0;
    std::int64_t sign = 1;
    std::int64_t shift = 0;
  };
  using GroupChoice = std::map<int, LevelChoice>;

  // ---- dependence bookkeeping -------------------------------------------

  const Dependence& dep(const ActiveDep& a) const { return podg_.deps[a.idx]; }

  bool inSet(int id, const std::vector<int>& set) const {
    return std::find(set.begin(), set.end(), id) != set.end();
  }

  /// Active (unsatisfied) dependences with both endpoints in `group`.
  std::vector<ActiveDep*> activeWithin(const std::vector<int>& group) {
    std::vector<ActiveDep*> out;
    for (auto& a : deps_) {
      if (a.satisfied) continue;
      if (inSet(dep(a).srcId, group) && inSet(dep(a).dstId, group))
        out.push_back(&a);
    }
    return out;
  }

  /// theta_k difference (dst - src) as a LinExpr over the dep's joint space
  /// for a candidate choice.
  LinExpr diffExpr(const ActiveDep& a, const GroupChoice& choice) const {
    const Dependence& d = dep(a);
    const LevelChoice& cs = choice.at(d.srcId);
    const LevelChoice& cd = choice.at(d.dstId);
    std::size_t n = d.poly.numVars();
    LinExpr e = LinExpr::constantExpr(cd.shift - cs.shift, n);
    e.coeffs[d.srcDim + cd.iter] += cd.sign;
    e.coeffs[cs.iter] -= cs.sign;
    return e;
  }

  /// Solves the retiming difference-constraint system for a group with the
  /// given per-statement iterator choices and a group-uniform sign.
  /// Returns per-statement shifts or nullopt.
  std::optional<std::map<int, std::int64_t>> solveShifts(
      const std::vector<int>& group, const std::map<int, std::size_t>& iters,
      std::int64_t sign) {
    // c_dst - c_src >= M where M = max(sign*x_src[j_src] - sign*x_dst[j_dst]).
    struct Edge {
      int src, dst;
      std::int64_t weight;
    };
    std::vector<Edge> edges;
    for (ActiveDep* a : activeWithin(group)) {
      const Dependence& d = dep(*a);
      std::size_t n = d.poly.numVars();
      LinExpr obj = LinExpr::constantExpr(0, n);
      obj.coeffs[iters.at(d.srcId)] += sign;
      obj.coeffs[d.srcDim + iters.at(d.dstId)] -= sign;
      auto m = a->pending.maxOf(obj);
      if (a->pending.isEmpty()) continue;  // nothing left to order
      if (!m) return std::nullopt;         // no constant retiming can help
      if (d.srcId == d.dstId) {
        if (*m > 0) return std::nullopt;  // backward self-dependence
        continue;
      }
      edges.push_back({d.srcId, d.dstId, *m});
    }
    std::map<int, std::int64_t> c;
    for (int id : group) c[id] = 0;
    // Longest-path relaxation; |V| extra rounds detect positive cycles.
    for (std::size_t round = 0; round <= group.size(); ++round) {
      bool changed = false;
      for (const auto& e : edges) {
        if (c[e.dst] < c[e.src] + e.weight) {
          c[e.dst] = c[e.src] + e.weight;
          changed = true;
        }
      }
      if (!changed) break;
      if (round == group.size()) return std::nullopt;  // positive cycle
    }
    for (const auto& [id, v] : c)
      if (std::llabs(v) > opt_.maxShift) return std::nullopt;
    return c;
  }

  /// Tries iterator combinations (Algorithm 4) for `group`, whose members
  /// must all still have unscheduled iterators. Preference order follows
  /// the DL model; the original loop order is the final fallback.
  std::optional<GroupChoice> choosePermutation(const std::vector<int>& group,
                                                int skip = 0) {
    std::vector<std::vector<std::size_t>> cands;
    for (int id : group) {
      auto c = st_.at(id).candidates();
      POLYAST_CHECK(!c.empty(), "statement exhausted inside loop group");
      cands.push_back(std::move(c));
    }
    // Enumerate index vectors in order of increasing total displacement
    // from the DL-preferred choice.
    std::size_t m = group.size();
    std::size_t maxSum = 0;
    for (const auto& c : cands) maxSum += c.size() - 1;
    int tried = 0;
    for (std::size_t target = 0; target <= maxSum; ++target) {
      std::vector<std::size_t> idx(m, 0);
      // Recursive enumeration of vectors with sum == target.
      std::optional<GroupChoice> found;
      std::function<bool(std::size_t, std::size_t)> rec =
          [&](std::size_t pos, std::size_t left) -> bool {
        if (tried >= opt_.maxCombos) return true;  // stop everything
        if (pos == m) {
          if (left != 0) return false;
          ++tried;
          std::map<int, std::size_t> iters;
          for (std::size_t i = 0; i < m; ++i)
            iters[group[i]] = cands[i][idx[i]];
          for (std::int64_t sign : {std::int64_t{1}, std::int64_t{-1}}) {
            auto shifts = solveShifts(group, iters, sign);
            if (!shifts) continue;
            if (skip > 0) {
              --skip;  // a viable combo, but the caller asked for a later one
              break;
            }
            GroupChoice gc;
            for (int id : group)
              gc[id] = {iters.at(id), sign, shifts->at(id)};
            found = std::move(gc);
            return true;
          }
          return false;
        }
        for (std::size_t v = 0; v <= std::min(left, cands[pos].size() - 1);
             ++v) {
          idx[pos] = v;
          if (rec(pos + 1, left - v)) return true;
        }
        return false;
      };
      if (rec(0, target) && found) {
        obs::selfprof::count(obs::selfprof::Op::SelCandidates, tried);
        return found;
      }
      if (tried >= opt_.maxCombos) break;
    }
    obs::selfprof::count(obs::selfprof::Op::SelCandidates, tried);
    if (tried >= opt_.maxCombos)
      obs::selfprof::count(obs::selfprof::Op::SelCapHits);
    // Fallback: original loop order (first unscheduled original index).
    obs::selfprof::count(obs::selfprof::Op::SelFallbacks);
    std::map<int, std::size_t> iters;
    for (int id : group) {
      const auto& s = st_.at(id);
      std::size_t j = 0;
      while (j < s.depth() && s.iterScheduled[j]) ++j;
      POLYAST_CHECK(j < s.depth(), "no unscheduled iterator left");
      iters[id] = j;
    }
    auto shifts = solveShifts(group, iters, 1);
    if (!shifts) return std::nullopt;
    GroupChoice gc;
    for (int id : group) gc[id] = {iters.at(id), 1, shifts->at(id)};
    return gc;
  }

  bool debug_ = getenv("POLYAST_DEBUG") != nullptr;

  /// Applies the beta row at `level` for the listed statements and updates
  /// dependence satisfaction.
  [[nodiscard]] bool applyBeta(const std::map<int, std::int64_t>& betas,
                               std::size_t level) {
    if (debug_) {
      fprintf(stderr, "applyBeta L%zu:", level);
      for (auto& [id, b] : betas) fprintf(stderr, " %d=%lld", id, (long long)b);
      fprintf(stderr, "\n");
    }
    for (const auto& [id, b] : betas) {
      auto& s = st_.at(id);
      // A trailing beta row (beyond 2d+1) orders statements fused through
      // their whole depth; the paper notes such schedules remain
      // convertible to the 2d+1 form.
      if (level >= s.sched.beta.size()) s.sched.beta.resize(level + 1, 0);
      s.sched.beta[level] = b;
    }
    for (auto& a : deps_) {
      if (a.satisfied) continue;
      auto si = betas.find(dep(a).srcId);
      auto di = betas.find(dep(a).dstId);
      if (si == betas.end() || di == betas.end()) continue;
      if (di->second > si->second) {
        a.satisfied = true;
      } else if (di->second < si->second) {
        if (!a.pending.isEmpty()) return false;  // would break the order
        a.satisfied = true;                      // vacuously
      }
    }
    return true;
  }

  /// Applies the alpha/shift row at `level` for a fused group and updates
  /// pending dependence polyhedra.
  [[nodiscard]] bool applyAlpha(const GroupChoice& choice,
                                std::size_t level) {
    if (debug_) {
      fprintf(stderr, "applyAlpha L%zu:", level);
      for (auto& [id, lc] : choice)
        fprintf(stderr, " %d:(it%zu,sg%lld,sh%lld)", id, lc.iter,
                (long long)lc.sign, (long long)lc.shift);
      fprintf(stderr, "\n");
    }
    for (const auto& [id, lc] : choice) {
      auto& s = st_.at(id);
      POLYAST_CHECK(!s.iterScheduled[lc.iter], "iterator scheduled twice");
      s.iterScheduled[lc.iter] = true;
      s.sched.alpha.at(level, lc.iter) = lc.sign;
      s.sched.shift[level] = AffExpr(lc.shift);
      s.assigned++;
    }
    for (auto& a : deps_) {
      if (a.satisfied) continue;
      if (!choice.count(dep(a).srcId) || !choice.count(dep(a).dstId))
        continue;
      LinExpr diff = diffExpr(a, choice);
      // Violation check: pending && diff <= -1 must be empty.
      IntSet bad = a.pending;
      {
        std::vector<std::int64_t> neg = diff.coeffs;
        for (auto& v : neg) v = -v;
        bad.addInequality(std::move(neg), -diff.constant - 1);
      }
      if (!bad.isEmpty()) return false;
      a.pending.addEquality(diff.coeffs, diff.constant);
      if (a.pending.isEmpty()) a.satisfied = true;
    }
    return true;
  }

  // ---- fusion profitability & legality ----------------------------------

  /// Condition (2) of Algorithm 5: some array is accessed by both groups
  /// with identical access structure on the iterators chosen for levels
  /// 1..k (constant reuse distance).
  bool reuseSignatureMatch(const std::vector<int>& ga,
                           const std::vector<int>& gb,
                           const GroupChoice& choice, std::size_t level) {
    auto signatures = [&](const std::vector<int>& g) {
      // array -> set of per-dim coefficient vectors over levels 0..level.
      std::map<std::string, std::set<std::vector<std::int64_t>>> out;
      for (int id : g) {
        const auto& s = st_.at(id);
        const auto& lc = choice.at(id);
        for (const auto& acc : s.ps->accesses) {
          std::vector<std::int64_t> sig;
          for (const auto& sub : acc.subs) {
            // Coefficients of the iterators already placed at levels
            // 0..level-1 plus the current candidate level.
            for (std::size_t lv = 0; lv < s.assigned; ++lv) {
              std::size_t j = s.sched.sourceIter(lv);
              sig.push_back(sub.coeff(s.ps->iters[j]) * s.sched.sign(lv));
            }
            sig.push_back(sub.coeff(s.ps->iters[lc.iter]) * lc.sign);
          }
          (void)level;
          out[acc.array].insert(std::move(sig));
        }
      }
      return out;
    };
    auto sa = signatures(ga);
    auto sb = signatures(gb);
    for (const auto& [array, sigsA] : sa) {
      auto it = sb.find(array);
      if (it == sb.end()) continue;
      for (const auto& sig : sigsA)
        if (it->second.count(sig)) return true;
    }
    return false;
  }

  /// True when the two groups reference at least one common array.
  bool shareArray(const std::vector<int>& ga, const std::vector<int>& gb) {
    std::set<std::string> arraysA;
    for (int id : ga)
      for (const auto& acc : st_.at(id).ps->accesses)
        arraysA.insert(acc.array);
    for (int id : gb)
      for (const auto& acc : st_.at(id).ps->accesses)
        if (arraysA.count(acc.array)) return true;
    return false;
  }

  /// Condition (3): DL-model fusion profitability.
  bool dlProfitable(const std::vector<int>& ga, const std::vector<int>& gb) {
    auto nestOf = [&](const std::vector<int>& g) {
      dl::LoopNestModel nest;
      std::set<std::string> seen;
      for (int id : g) {
        const auto& ps = *st_.at(id).ps;
        for (const auto& it : ps.iters)
          if (seen.insert(it).second) nest.iters.push_back(it);
        nest.stmts.push_back(ps.stmt);
      }
      return nest;
    };
    dl::LoopNestModel a = nestOf(ga), b = nestOf(gb);
    std::vector<int> merged = ga;
    merged.insert(merged.end(), gb.begin(), gb.end());
    return dl::fusionProfitable(a, b, nestOf(merged), opt_.cache);
  }

  /// Condition (5): a group is "parallel at this level" when every active
  /// intra-group dependence has theta_k distance exactly 0.
  bool groupParallel(const std::vector<int>& group, const GroupChoice& choice) {
    for (ActiveDep* a : activeWithin(group)) {
      if (a->pending.isEmpty()) continue;
      LinExpr diff = diffExpr(*a, choice);
      auto mn = a->pending.minOf(diff);
      auto mx = a->pending.maxOf(diff);
      if (!mn || !mx || *mn != 0 || *mx != 0) return false;
    }
    return true;
  }

  /// Group-graph reachability over active dependences, where each SCC/fuse
  /// group is a node. Used to reject fusions that would create a cycle
  /// through an unmerged group.
  bool pathThroughOthers(const std::vector<std::vector<int>>& groups,
                         std::size_t from, std::size_t to) {
    std::size_t n = groups.size();
    std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
    auto groupOf = [&](int id) -> std::size_t {
      for (std::size_t g = 0; g < n; ++g)
        if (inSet(id, groups[g])) return g;
      return n;
    };
    for (auto& a : deps_) {
      if (a.satisfied) continue;
      std::size_t gs = groupOf(dep(a).srcId);
      std::size_t gd = groupOf(dep(a).dstId);
      if (gs < n && gd < n && gs != gd) adj[gs][gd] = true;
    }
    // BFS from `from` to `to` with at least one intermediate hop.
    std::vector<bool> visited(n, false);
    std::vector<std::size_t> queue;
    for (std::size_t g = 0; g < n; ++g)
      if (adj[from][g] && g != to && !visited[g]) {
        visited[g] = true;
        queue.push_back(g);
      }
    while (!queue.empty()) {
      std::size_t g = queue.back();
      queue.pop_back();
      if (adj[g][to]) return true;
      for (std::size_t h = 0; h < n; ++h)
        if (adj[g][h] && !visited[h] && h != to) {
          visited[h] = true;
          queue.push_back(h);
        }
    }
    return false;
  }

  bool hasDirectDeps(const std::vector<int>& ga, const std::vector<int>& gb) {
    for (auto& a : deps_) {
      if (a.satisfied) continue;
      bool sa = inSet(dep(a).srcId, ga), da = inSet(dep(a).dstId, ga);
      bool sb = inSet(dep(a).srcId, gb), db = inSet(dep(a).dstId, gb);
      if ((sa && db) || (sb && da)) return true;
    }
    return false;
  }

  // ---- the recursive algorithms -----------------------------------------

  /// Algorithm 2: SCC-by-SCC permutation, fusion, recursion — wrapped in a
  /// bounded backtracking loop: when a level's choices lead to an
  /// unresolvable state deeper in the tree (e.g. a tie cycle between
  /// fusion groups), the level is retried with the next viable permutation
  /// combination.
  bool algorithm2(const std::vector<int>& stmts, std::size_t level) {
    const int maxAttempts = 6;
    for (int attempt = 0; attempt < maxAttempts; ++attempt) {
      Snapshot snap = snapshot();
      if (tryLevel(stmts, level, attempt)) return true;
      restore(std::move(snap));
    }
    return false;
  }

  bool tryLevel(const std::vector<int>& stmts, std::size_t level,
                int attempt) {
    // Exhausted statements (no iterators left) only need a beta here.
    std::vector<int> loopStmts, leafStmts;
    for (int id : stmts)
      (st_.at(id).remaining() > 0 ? loopStmts : leafStmts).push_back(id);

    // SCCs over the active dependences among ALL statements: a cycle that
    // involves an exhausted statement cannot be broken at this level, so
    // the caller must pick different outer rows.
    std::vector<bool> enabled(podg_.deps.size(), false);
    for (auto& a : deps_)
      if (!a.satisfied && !a.pending.isEmpty()) enabled[a.idx] = true;
    auto sccs = poly::stronglyConnectedComponents(stmts, podg_, enabled);
    std::vector<std::vector<int>> loopSccs, leafGroups;
    for (const auto& scc : sccs) {
      bool hasLeaf = false;
      for (int id : scc)
        if (st_.at(id).remaining() == 0) hasLeaf = true;
      if (hasLeaf) {
        if (scc.size() > 1) return false;  // unresolvable tie cycle
        leafGroups.push_back(scc);
      } else {
        loopSccs.push_back(scc);
      }
    }

    // Algorithm 4 per SCC: permutation + retiming constraints. The attempt
    // index skips earlier viable combinations (backtracking).
    GroupChoice allChoices;
    for (const auto& scc : loopSccs) {
      auto choice = choosePermutation(scc, attempt);
      if (!choice && attempt > 0) choice = choosePermutation(scc, 0);
      if (!choice) return false;
      for (const auto& [id, lc] : *choice) allChoices[id] = lc;
    }

    // Algorithm 5: greedy fusion of SCCs (leaf groups participate in the
    // legality graph but are never merged).
    std::vector<std::vector<int>> groups =
        fuseSccs(loopSccs, leafGroups, allChoices);

    // Re-solve shifts per fused group so cross-SCC dependences inside one
    // group are retimed coherently.
    for (auto& g : groups) {
      if (g.empty() || st_.at(g.front()).remaining() == 0) continue;
      std::map<int, std::size_t> iters;
      std::int64_t sign = allChoices.at(g.front()).sign;
      for (int id : g) iters[id] = allChoices.at(id).iter;
      auto shifts = solveShifts(g, iters, sign);
      if (!shifts && sign != 1) {
        sign = 1;
        shifts = solveShifts(g, iters, sign);
      }
      if (!shifts) return false;
      for (int id : g) {
        allChoices[id].sign = sign;
        allChoices[id].shift = shifts->at(id);
      }
    }
    auto order = topoOrder(groups);
    if (!order) return false;

    std::map<int, std::int64_t> betas;
    for (std::size_t pos = 0; pos < order->size(); ++pos)
      for (int id : groups[(*order)[pos]])
        betas[id] = static_cast<std::int64_t>(pos);
    if (!applyBeta(betas, level)) return false;
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      const auto& g = groups[gi];
      if (g.empty() || st_.at(g.front()).remaining() == 0) continue;
      GroupChoice gc;
      for (int id : g) gc[id] = allChoices.at(id);
      if (!applyAlpha(gc, level)) return false;
    }

    // Recursion (Algorithm 2 lines 12-20).
    for (std::size_t gi : *order) {
      const auto& g = groups[gi];
      bool anyRemaining = false;
      for (int id : g)
        if (st_.at(id).remaining() > 0) anyRemaining = true;
      if (!anyRemaining) {
        if (g.size() > 1) {
          // Fully fused statements: order them with a trailing beta row
          // (Algorithm 2 lines 19-20).
          std::vector<std::vector<int>> singles;
          for (int id : g) singles.push_back({id});
          auto leafOrder = topoOrder(singles);
          if (!leafOrder) return false;
          std::map<int, std::int64_t> leafBetas;
          for (std::size_t pos = 0; pos < leafOrder->size(); ++pos)
            leafBetas[singles[(*leafOrder)[pos]].front()] =
                static_cast<std::int64_t>(pos);
          if (!applyBeta(leafBetas, level + 1)) return false;
        }
        continue;
      }
      bool done = false;
      if (isSingleScc(g, loopSccs)) {
        Snapshot snap = snapshot();
        done = algorithm3(g, level + 1);
        if (!done) restore(std::move(snap));
      }
      if (!done && !algorithm2(g, level + 1)) return false;
    }
    return true;
  }

  /// Algorithm 3: perfect fusion of all statements down to the innermost
  /// level (enables tiling). Returns false (no state change expected by
  /// the caller, which restores a snapshot) when impossible.
  bool algorithm3(const std::vector<int>& stmts, std::size_t level) {
    for (int id : stmts)
      if (st_.at(id).remaining() == 0) return false;
    auto choice = choosePermutation(stmts);
    if (!choice) return false;
    std::map<int, std::int64_t> betas;
    for (int id : stmts) betas[id] = 0;
    if (!applyBeta(betas, level)) return false;
    if (!applyAlpha(*choice, level)) return false;
    bool anyRemaining = false;
    for (int id : stmts)
      if (st_.at(id).remaining() > 0) anyRemaining = true;
    if (anyRemaining) {
      if (!algorithm3(stmts, level + 1)) return false;
    } else if (stmts.size() > 1) {
      // Leaf ordering within the perfectly fused body.
      std::vector<std::vector<int>> groups;
      for (int id : stmts) groups.push_back({id});
      auto order = topoOrder(groups);
      if (!order) return false;
      std::map<int, std::int64_t> leafBetas;
      for (std::size_t pos = 0; pos < order->size(); ++pos)
        leafBetas[groups[(*order)[pos]].front()] =
            static_cast<std::int64_t>(pos);
      if (!applyBeta(leafBetas, level + 1)) return false;
    }
    return true;
  }

  /// Algorithm 5's greedy merge. Leaf groups (exhausted statements) are
  /// part of the legality graph but never merged.
  std::vector<std::vector<int>> fuseSccs(
      const std::vector<std::vector<int>>& sccs,
      const std::vector<std::vector<int>>& leafGroups,
      const GroupChoice& choices) {
    std::vector<std::vector<int>> pool = sccs;
    pool.insert(pool.end(), leafGroups.begin(), leafGroups.end());
    std::vector<std::vector<int>> fused;
    // Pop the SCC of largest dimensionality first.
    auto dimOf = [&](const std::vector<int>& g) {
      std::size_t d = 0;
      for (int id : g) d = std::max(d, st_.at(id).depth());
      return d;
    };
    while (!pool.empty()) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < pool.size(); ++i)
        if (dimOf(pool[i]) > dimOf(pool[best])) best = i;
      std::vector<int> fuse = pool[best];
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best));
      bool changed = true;
      while (changed) {
        changed = false;
        for (std::size_t i = 0; i < pool.size(); ++i) {
          const auto& cand = pool[i];
          if (!canFuse(fuse, cand, choices, pool, fused)) continue;
          fuse.insert(fuse.end(), cand.begin(), cand.end());
          pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
          changed = true;
          break;
        }
      }
      fused.push_back(std::move(fuse));
    }
    return fused;
  }

  /// Codegen compatibility: the restricted code generator can only fuse
  /// statements at one level when their loop bounds are identical (after
  /// applying this level's sign/shift and canonicalizing outer iterators by
  /// their scheduled level), or are single parts totally ordered under the
  /// parameter-minimum assumption. Fusions outside that class are rejected
  /// here rather than failing later in applySchedules.
  bool boundsCompatible(const std::vector<int>& merged,
                        const GroupChoice& choices) {
    struct BoundSet {
      std::vector<AffExpr> lowers, uppers;
    };
    std::vector<BoundSet> sets;
    for (int id : merged) {
      const auto& s = st_.at(id);
      const LevelChoice& lc = choices.at(id);
      const auto& loop = s.ps->loops[lc.iter];
      BoundSet bs;
      auto canon = [&](const AffExpr& part) -> std::optional<AffExpr> {
        AffExpr out(part.constant());
        for (const auto& [name, coeff] : part.coeffs()) {
          if (std::find(scop_.params.begin(), scop_.params.end(), name) !=
              scop_.params.end()) {
            out += AffExpr::term(name, coeff);
            continue;
          }
          // Outer iterator: must already be scheduled; canonicalize to its
          // level (value of iterator = sign*c_L - sign*shift_L).
          auto it = std::find(s.ps->iters.begin(), s.ps->iters.end(), name);
          if (it == s.ps->iters.end()) return std::nullopt;
          std::size_t j = static_cast<std::size_t>(it - s.ps->iters.begin());
          if (!s.iterScheduled[j]) return std::nullopt;
          std::size_t lev = 0;
          bool found = false;
          for (std::size_t L = 0; L < s.assigned; ++L)
            if (s.sched.sourceIter(L) == j) {
              lev = L;
              found = true;
            }
          if (!found) return std::nullopt;
          std::int64_t sg = s.sched.sign(lev);
          out += AffExpr::term("@" + std::to_string(lev), coeff * sg) -
                 s.sched.shift[lev] * (coeff * sg);
        }
        return out;
      };
      for (const auto& p : loop->lower.parts) {
        auto c = canon(p);
        if (!c) return false;
        bs.lowers.push_back(*c + AffExpr(lc.shift));
      }
      for (const auto& p : loop->upper.parts) {
        auto c = canon(p);
        if (!c) return false;
        bs.uppers.push_back(*c + AffExpr(lc.shift));
      }
      if (choices.at(id).sign != 1) std::swap(bs.lowers, bs.uppers);
      sets.push_back(std::move(bs));
    }
    auto compatible = [&](bool isLower) {
      const auto& first = isLower ? sets.front().lowers : sets.front().uppers;
      bool allSame = true;
      for (const auto& bs : sets)
        if (!((isLower ? bs.lowers : bs.uppers) == first)) allSame = false;
      if (allSame) return true;
      std::vector<AffExpr> cands;
      for (const auto& bs : sets) {
        const auto& parts = isLower ? bs.lowers : bs.uppers;
        if (parts.size() != 1) return false;
        cands.push_back(parts.front());
      }
      for (const AffExpr& c : cands) {
        bool covers = true;
        for (const AffExpr& o : cands)
          if (!(c == o) && !boundDominates(c, o, isLower)) covers = false;
        if (covers) return true;
      }
      return false;
    };
    return compatible(true) && compatible(false);
  }

  /// a <= b everywhere (isLower) or a >= b everywhere (!isLower) under the
  /// parameter-minimum assumption; canonical "@level" iterators are free.
  bool boundDominates(const AffExpr& a, const AffExpr& b, bool isLower) {
    std::vector<std::string> names;
    for (const AffExpr* e : {&a, &b})
      for (const auto& [n, c] : e->coeffs()) {
        (void)c;
        if (std::find(names.begin(), names.end(), n) == names.end())
          names.push_back(n);
      }
    IntSet set(names);
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (std::find(scop_.params.begin(), scop_.params.end(), names[i]) !=
          scop_.params.end()) {
        std::vector<std::int64_t> row(names.size(), 0);
        row[i] = 1;
        set.addInequality(std::move(row), -scop_.options.paramMin);
      }
    }
    AffExpr diff = isLower ? a - b : b - a;
    std::vector<std::int64_t> row(names.size(), 0);
    for (std::size_t i = 0; i < names.size(); ++i)
      row[i] = diff.coeff(names[i]);
    set.addInequality(std::move(row), diff.constant() - 1);
    return set.isEmpty();
  }

  bool canFuse(const std::vector<int>& fuse, const std::vector<int>& cand,
               const GroupChoice& choices,
               const std::vector<std::vector<int>>& pool,
               const std::vector<std::vector<int>>& done) {
    if (opt_.fusion == FusionHeuristic::NoFusion) return false;
    // Leaf groups (no loop at this level) cannot be fused.
    for (int id : fuse)
      if (st_.at(id).remaining() == 0) return false;
    for (int id : cand)
      if (st_.at(id).remaining() == 0) return false;
    // Signs must agree (group-uniform reversal).
    if (choices.at(fuse.front()).sign != choices.at(cand.front()).sign)
      return false;
    // (1) legality precondition + no fusion-preventing third-party path.
    {
      std::vector<std::vector<int>> groups;
      groups.push_back(fuse);
      groups.push_back(cand);
      for (const auto& g : pool)
        if (&g != &cand) groups.push_back(g);
      for (const auto& g : done) groups.push_back(g);
      if (pathThroughOthers(groups, 0, 1) || pathThroughOthers(groups, 1, 0))
        return false;
    }
    if (opt_.fusion == FusionHeuristic::DlModel) {
      // (2) constant reuse distance on a shared array.
      if (!reuseSignatureMatch(fuse, cand, choices, 0)) return false;
      // (3) DL fusion profitability.
      if (!dlProfitable(fuse, cand)) return false;
    } else if (opt_.fusion == FusionHeuristic::SmartShared) {
      if (!shareArray(fuse, cand)) return false;
    }
    // (4) a legal retiming for the merged group exists.
    std::vector<int> merged = fuse;
    merged.insert(merged.end(), cand.begin(), cand.end());
    std::map<int, std::size_t> iters;
    for (int id : merged) iters[id] = choices.at(id).iter;
    auto shifts = solveShifts(merged, iters, choices.at(fuse.front()).sign);
    if (!shifts) return false;
    {
      GroupChoice shifted;
      for (int id : merged) {
        shifted[id] = choices.at(id);
        shifted[id].shift = shifts->at(id);
      }
      if (!boundsCompatible(merged, shifted)) return false;
    }
    if (opt_.fusion == FusionHeuristic::DlModel) {
      // (5) fusion must not kill outermost parallelism.
      GroupChoice fc, cc, mc;
      for (int id : fuse) fc[id] = choices.at(id);
      for (int id : cand) cc[id] = choices.at(id);
      for (int id : merged) {
        mc[id] = choices.at(id);
        mc[id].shift = shifts->at(id);
      }
      if (groupParallel(fuse, fc) && groupParallel(cand, cc) &&
          !groupParallel(merged, mc))
        return false;
    }
    return true;
  }

  bool isSingleScc(const std::vector<int>& group,
                   const std::vector<std::vector<int>>& sccs) const {
    for (const auto& scc : sccs) {
      if (scc.size() != group.size()) continue;
      std::vector<int> a = scc, b = group;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      if (a == b) return true;
    }
    return false;
  }

  /// Kahn topological order of the groups under active dependences,
  /// preserving original textual order among unrelated groups.
  std::optional<std::vector<std::size_t>> topoOrder(
      const std::vector<std::vector<int>>& groups) {
    std::size_t n = groups.size();
    std::vector<std::set<std::size_t>> succ(n);
    std::vector<std::size_t> indeg(n, 0);
    auto groupOf = [&](int id) -> std::size_t {
      for (std::size_t g = 0; g < n; ++g)
        if (inSet(id, groups[g])) return g;
      return n;
    };
    for (auto& a : deps_) {
      if (a.satisfied) continue;
      std::size_t gs = groupOf(dep(a).srcId);
      std::size_t gd = groupOf(dep(a).dstId);
      if (gs >= n || gd >= n || gs == gd) continue;
      if (succ[gs].insert(gd).second) indeg[gd]++;
    }
    // Stable Kahn: among ready groups pick the one whose first statement
    // is textually earliest.
    auto textKey = [&](std::size_t g) {
      int best = groups[g].empty() ? 1 << 30 : groups[g].front();
      for (int id : groups[g]) best = std::min(best, id);
      return best;
    };
    std::vector<std::size_t> order;
    std::vector<bool> doneFlag(n, false);
    for (std::size_t step = 0; step < n; ++step) {
      std::size_t pick = n;
      for (std::size_t g = 0; g < n; ++g) {
        if (doneFlag[g] || indeg[g] != 0) continue;
        if (pick == n || textKey(g) < textKey(pick)) pick = g;
      }
      if (pick >= n) return std::nullopt;  // cycle between groups
      doneFlag[pick] = true;
      order.push_back(pick);
      for (std::size_t s2 : succ[pick]) indeg[s2]--;
    }
    return order;
  }

  const Scop& scop_;
  AffineOptions opt_;
  PoDG podg_;
  std::map<int, StmtState> st_;
  std::vector<ActiveDep> deps_;
};

}  // namespace

poly::ScheduleMap computeAffineTransform(const poly::Scop& scop,
                                         const AffineOptions& options) {
  return AffineScheduler(scop, options).run();
}

}  // namespace polyast::transform
