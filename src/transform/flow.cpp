#include "transform/flow.hpp"

#include "poly/codegen.hpp"
#include "support/error.hpp"

namespace polyast::transform {

ir::Program optimize(const ir::Program& program, const FlowOptions& options,
                     FlowReport* report) {
  FlowReport local;
  FlowReport& r = report ? *report : local;

  // Stage 1: cache-aware affine transformation (Sec. III).
  poly::ScopOptions sopt;
  sopt.paramMin = options.ast.paramMin;
  poly::Scop scop = poly::extractScop(program, sopt);
  poly::ScheduleMap schedules;
  try {
    schedules = computeAffineTransform(scop, options.affine);
    r.affineStageSucceeded = true;
  } catch (const Error&) {
    if (!options.fallbackToIdentity) throw;
    schedules = poly::identitySchedules(scop);
    r.affineStageSucceeded = false;
  }
  ir::Program out;
  try {
    out = poly::applySchedules(scop, schedules);
  } catch (const Error&) {
    // The scheduler guards against codegen-incompatible fusions, but keep
    // the flow total: fall back to the original order.
    if (!options.fallbackToIdentity) throw;
    schedules = poly::identitySchedules(scop);
    out = poly::applySchedules(scop, schedules);
    r.affineStageSucceeded = false;
  }
  out.name = program.name + "_polyast";

  // Stage 2: AST-based transformations (Sec. IV).
  if (options.enableSkewing)
    r.skewsApplied = skewForTilability(out, options.ast);
  if (options.enableParallelization) detectParallelism(out, options.ast);
  if (options.enableTiling) r.bandsTiled = tileForLocality(out, options.ast);
  if (options.enableRegisterTiling)
    r.loopsUnrolled = registerTile(out, options.ast);
  return out;
}

}  // namespace polyast::transform
