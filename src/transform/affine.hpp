// Cache-aware affine transformation selection — the paper's Algorithms 2-5
// (Sec. III-C).
//
// Starting from the top loop level, the scheduler:
//   * computes SCCs of the statements on the not-yet-satisfied dependence
//     edges (Algorithm 2),
//   * inside each SCC, chooses the loop permutation closest to the DL
//     model's best order that admits a legal reversal/retiming
//     (Algorithm 4),
//   * greedily fuses SCCs at the current level when legal and profitable
//     (legality precondition, constant-reuse-distance precondition, DL
//     profitability, solvable retiming, parallelism preservation —
//     Algorithm 5),
//   * solves the collected reversal/retiming constraints as a difference
//     constraint system (longest paths), and
//   * recurses into each fusion group, first attempting perfect fusion of
//     single-SCC groups to enable tiling (Algorithm 3).
//
// The result is a ScheduleMap in the restricted 2d+1 form, directly
// consumable by poly::applySchedules.
#pragma once

#include "dl/dl_model.hpp"
#include "poly/schedule.hpp"

namespace polyast::transform {

/// Fusion heuristics. DlModel is the paper's flow (Algorithm 5 conditions
/// 1-5); MaxLegal and SmartShared emulate Pluto's maxfuse / smartfuse for
/// the baseline comparator and the ablation benchmarks.
enum class FusionHeuristic {
  DlModel,      ///< legality + reuse signature + DL + parallelism (paper)
  MaxLegal,     ///< fuse whenever legal (Pluto maxfuse)
  SmartShared,  ///< fuse when legal and the groups share an array
  NoFusion,     ///< never fuse distinct SCCs
};

struct AffineOptions {
  dl::CacheParams cache;
  FusionHeuristic fusion = FusionHeuristic::DlModel;
  /// Use the original loop order as the permutation preference instead of
  /// the DL model's best order (baseline behaviour).
  bool preferOriginalOrder = false;
  /// Cap on permutation combinations tried per SCC per level (Algorithm 4).
  int maxCombos = 128;
  /// Retiming coefficients are bounded to keep generated bounds sane.
  std::int64_t maxShift = 16;
  /// Reduction handling: `Relaxed` lets Algorithms 2-5 ignore
  /// proven-relaxable accumulation edges, widening the candidate set the
  /// DL model scores. Schedules selected under relaxation must be
  /// re-proven safe by the `reductions` analysis pass.
  poly::ReductionMode reductions = poly::ReductionMode::Strict;
};

/// Runs Algorithms 2-5 and returns the selected schedules. The schedules
/// are guaranteed legal (verified against the PoDG before returning).
poly::ScheduleMap computeAffineTransform(const poly::Scop& scop,
                                         const AffineOptions& options = {});

}  // namespace polyast::transform
