#include "transform/ast_stage.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "poly/dependence.hpp"
#include "support/error.hpp"

namespace polyast::transform {

using ir::AffExpr;
using ir::Block;
using ir::Loop;
using ir::Node;
using ir::NodePtr;
using ir::ParallelKind;
using poly::Dependence;
using poly::DepKind;
using poly::PoDG;
using poly::Scop;

namespace {

using LoopPtr = std::shared_ptr<Loop>;

void forEachLoop(const NodePtr& node, std::vector<LoopPtr>& ancestors,
                 const std::function<void(const LoopPtr&,
                                          const std::vector<LoopPtr>&)>& fn) {
  switch (node->kind) {
    case Node::Kind::Block:
      for (const auto& c : std::static_pointer_cast<Block>(node)->children)
        forEachLoop(c, ancestors, fn);
      break;
    case Node::Kind::Loop: {
      auto l = std::static_pointer_cast<Loop>(node);
      fn(l, ancestors);
      ancestors.push_back(l);
      forEachLoop(l->body, ancestors, fn);
      ancestors.pop_back();
      break;
    }
    case Node::Kind::Stmt:
      break;
  }
}

void forEachLoop(const ir::Program& p,
                 const std::function<void(const LoopPtr&,
                                          const std::vector<LoopPtr>&)>& fn) {
  std::vector<LoopPtr> ancestors;
  forEachLoop(p.root, ancestors, fn);
}

/// Maximal single-child loop chains: chain[i+1] is the only child of
/// chain[i]'s body. The innermost chain loop may contain anything.
std::vector<std::vector<LoopPtr>> collectChains(const ir::Program& p) {
  std::vector<std::vector<LoopPtr>> chains;
  std::set<const Loop*> inChain;
  forEachLoop(p, [&](const LoopPtr& l, const std::vector<LoopPtr>&) {
    if (inChain.count(l.get())) return;
    std::vector<LoopPtr> chain{l};
    inChain.insert(l.get());
    LoopPtr cur = l;
    while (cur->body->children.size() == 1 &&
           cur->body->children.front()->kind == Node::Kind::Loop) {
      cur = std::static_pointer_cast<Loop>(cur->body->children.front());
      chain.push_back(cur);
      inChain.insert(cur.get());
    }
    chains.push_back(std::move(chain));
  });
  return chains;
}

/// Index of `loop` in a dependence's common-loop prefix, or nullopt when the
/// loop does not enclose both endpoints.
std::optional<std::size_t> commonLevelOf(const Scop& scop,
                                         const Dependence& d,
                                         const Loop* loop) {
  const auto& src = scop.byId(d.srcId);
  const auto& dst = scop.byId(d.dstId);
  std::size_t cl = scop.commonLoops(src, dst);
  for (std::size_t k = 0; k < cl; ++k)
    if (src.loops[k].get() == loop) return k;
  return std::nullopt;
}

/// Distance expression e_k = dst_k - src_k over the dep's joint space.
LinExpr distExpr(const Dependence& d, std::size_t k) {
  std::size_t n = d.poly.numVars();
  LinExpr e = LinExpr::constantExpr(0, n);
  e.coeffs[d.srcDim + k] += 1;
  e.coeffs[k] -= 1;
  return e;
}

/// The dep polyhedron restricted to pairs not ordered by the loops above
/// level `k` (distance 0 at levels 0..k-1).
IntSet restrictedPoly(const Dependence& d, std::size_t k) {
  IntSet s = d.poly;
  for (std::size_t l = 0; l < k; ++l) {
    LinExpr e = distExpr(d, l);
    s.addEquality(e.coeffs, e.constant);
  }
  return s;
}

/// Applies iter_k += f * iter_l to the loop (skewing).
void applySkew(const LoopPtr& target, const std::string& outerIter,
               std::int64_t f) {
  ir::substituteIterInTree(
      target->body, target->iter,
      AffExpr::term(target->iter) - AffExpr::term(outerIter) * f);
  for (auto& part : target->lower.parts)
    part += AffExpr::term(outerIter) * f;
  for (auto& part : target->upper.parts)
    part += AffExpr::term(outerIter) * f;
}

/// Dependences whose endpoints are both enclosed by every loop in
/// chain[s..e] (equivalently by chain[e], the innermost).
std::vector<const Dependence*> depsUnder(const Scop& scop, const PoDG& podg,
                                         const Loop* innermost) {
  std::vector<const Dependence*> out;
  for (const auto& d : podg.deps) {
    if (d.kind == DepKind::Input) continue;
    if (commonLevelOf(scop, d, innermost)) out.push_back(&d);
  }
  return out;
}

}  // namespace

int skewForTilability(ir::Program& program, const AstOptions& options) {
  int applied = 0;
  for (int iteration = 0; iteration < 16; ++iteration) {
    poly::ScopOptions sopt;
    sopt.paramMin = options.paramMin;
    Scop scop = poly::extractScop(program, sopt);
    PoDG podg = poly::computeDependences(scop);
    bool changed = false;
    for (const auto& chain : collectChains(program)) {
      if (chain.size() < 2) continue;
      auto deps = depsUnder(scop, podg, chain.back().get());
      if (deps.empty()) continue;
      for (std::size_t k = 1; k < chain.size() && !changed; ++k) {
        // Most negative distance at level k over all dependences.
        std::optional<std::int64_t> worst;
        bool unbounded = false;
        for (const Dependence* d : deps) {
          auto lk = commonLevelOf(scop, *d, chain[k].get());
          if (!lk) continue;
          auto mn = d->poly.minOf(distExpr(*d, *lk));
          if (d->poly.isEmpty()) continue;
          if (!mn) {
            unbounded = true;
            break;
          }
          if (!worst || *mn < *worst) worst = mn;
        }
        if (unbounded || !worst || *worst >= 0) continue;
        // Find outer-level factors (f_0..f_{k-1}) with
        // min(e_k + sum f_l * e_l) >= 0 for every dependence. Factor
        // vectors are tried in order of increasing total magnitude, so the
        // mildest sufficient skew wins (stencils like seidel-2d need the
        // combined skew j += t + i).
        std::vector<std::int64_t> factors(k, 0);
        auto feasible = [&](const std::vector<std::int64_t>& f) {
          for (const Dependence* d : deps) {
            auto lk = commonLevelOf(scop, *d, chain[k].get());
            if (!lk) continue;
            LinExpr obj = distExpr(*d, *lk);
            for (std::size_t l = 0; l < k; ++l) {
              if (f[l] == 0) continue;
              auto ll = commonLevelOf(scop, *d, chain[l].get());
              if (!ll) continue;
              LinExpr outer = distExpr(*d, *ll);
              for (std::size_t i = 0; i < obj.coeffs.size(); ++i)
                obj.coeffs[i] += f[l] * outer.coeffs[i];
            }
            auto mn = d->poly.minOf(obj);
            if (d->poly.isEmpty()) continue;
            if (!mn || *mn < 0) return false;
          }
          return true;
        };
        std::function<bool(std::size_t, std::int64_t)> search =
            [&](std::size_t pos, std::int64_t left) -> bool {
          if (pos == k) return left == 0 && feasible(factors);
          for (std::int64_t f = 0; f <= left; ++f) {
            factors[pos] = f;
            if (search(pos + 1, left - f)) return true;
          }
          factors[pos] = 0;
          return false;
        };
        for (std::int64_t total = 1;
             total <= options.maxSkewFactor && !changed; ++total) {
          if (!search(0, total)) continue;
          for (std::size_t l = 0; l < k; ++l)
            if (factors[l] > 0) {
              applySkew(chain[k], chain[l]->iter, factors[l]);
              ++applied;
            }
          changed = true;
        }
      }
      if (changed) break;  // re-extract and continue
    }
    if (!changed) break;
  }
  return applied;
}

ParallelismStats detectParallelism(ir::Program& program,
                                   const AstOptions& options,
                                   bool outermostOnly) {
  poly::ScopOptions sopt;
  sopt.paramMin = options.paramMin;
  Scop scop = poly::extractScop(program, sopt);
  PoDG podg = poly::computeDependences(scop);

  forEachLoop(program, [&](const LoopPtr& loop,
                           const std::vector<LoopPtr>& ancestors) {
    (void)ancestors;
    // The single-loop chain rooted here, up to the three levels the
    // runtime's deepest doacross grid (pipeline3D) can synchronize.
    std::vector<const Loop*> chain{loop.get()};
    while (chain.size() < 3) {
      const Loop* cur = chain.back();
      if (cur->body->children.size() != 1 ||
          cur->body->children.front()->kind != Node::Kind::Loop)
        break;
      chain.push_back(
          std::static_pointer_cast<Loop>(cur->body->children.front()).get());
    }

    bool anyCarried = false;
    bool anyNonReductionCarried = false;
    // SIMD legality facts, kept separate from the mark decision: they are
    // intrinsic to the dependences (relaxability is a property of the
    // edge, not of the recognizeReductions toggle) and survive on the
    // loop through tiling and header permutation.
    bool carriedAny = false;       // any dependence carried at this level
    bool carriedNonRelax = false;  // any non-reduction dependence carried
    // How many leading chain levels have componentwise non-negative
    // distance on *every* ordering-relevant dependence: a depth-d
    // point-to-point sync grid orders exactly those dependences.
    std::int64_t pipeDepth =
        chain.size() >= 2 ? static_cast<std::int64_t>(chain.size()) : 0;
    for (const auto& d : podg.deps) {
      if (d.kind == DepKind::Input) continue;
      auto lk = commonLevelOf(scop, d, loop.get());
      if (!lk) continue;
      IntSet restricted = restrictedPoly(d, *lk);
      if (restricted.isEmpty()) continue;  // ordered by outer loops
      auto mn = restricted.minOf(distExpr(d, *lk));
      auto mx = restricted.maxOf(distExpr(d, *lk));
      if (!mn) {
        carriedAny = carriedNonRelax = true;
      } else if (!((*mn == 0) && mx && (*mx == 0))) {
        carriedAny = true;
        if (!d.relaxable()) carriedNonRelax = true;
      }
      if (!mn) {
        // Unbounded-below distance: no parallelism of any kind.
        anyCarried = anyNonReductionCarried = true;
        pipeDepth = 0;
        continue;
      }
      // Reduction dependences are discharged by accumulator privatization
      // (Reduction / ReductionPipeline execution), never by the sync grid.
      if (options.recognizeReductions && d.relaxable()) {
        bool zeroRed = (*mn == 0) && mx && (*mx == 0);
        if (!zeroRed) anyCarried = true;
        continue;
      }
      bool zero = (*mn == 0) && mx && (*mx == 0);
      if (!zero) {
        anyCarried = true;
        anyNonReductionCarried = true;
      }
      // Every dependence constrains the pipeline depth — including those
      // with zero distance at this level: a distance like (0, 1, -1) is
      // lexicographically positive yet not componentwise non-negative over
      // three levels, so a 3-deep grid would reorder it. (At two levels
      // lexicographic positivity makes (0, negative) impossible, which is
      // why the old two-level check could skip zero-distance dependences.)
      std::int64_t okPrefix = 0;
      for (const Loop* lvl : chain) {
        auto lkN = commonLevelOf(scop, d, lvl);
        if (!lkN) break;
        auto mnN = restricted.minOf(distExpr(d, *lkN));
        if (!mnN || *mnN < 0) break;
        ++okPrefix;
      }
      pipeDepth = std::min(pipeDepth, okPrefix);
    }
    loop->simdSafe = !carriedAny;
    loop->reductionCarried = carriedAny && !carriedNonRelax;
    loop->pipelineDepth = 0;
    if (!anyCarried) {
      loop->parallel = ParallelKind::Doall;
    } else if (!anyNonReductionCarried) {
      loop->parallel = ParallelKind::Reduction;
    } else if (pipeDepth >= 2 && options.allowPipeline) {
      bool reductionsToo = false;
      for (const auto& d : podg.deps)
        if (d.relaxable() && commonLevelOf(scop, d, loop.get()))
          reductionsToo = true;
      loop->parallel = reductionsToo ? ParallelKind::ReductionPipeline
                                     : ParallelKind::Pipeline;
      loop->pipelineDepth = pipeDepth;
    } else {
      loop->parallel = ParallelKind::None;
    }
  });

  if (outermostOnly) {
    std::function<void(const NodePtr&, bool)> clear = [&](const NodePtr& n,
                                                          bool covered) {
      switch (n->kind) {
        case Node::Kind::Block:
          for (const auto& c : std::static_pointer_cast<Block>(n)->children)
            clear(c, covered);
          break;
        case Node::Kind::Loop: {
          auto l = std::static_pointer_cast<Loop>(n);
          if (covered) {
            l->parallel = ParallelKind::None;
            l->pipelineDepth = 0;
          }
          clear(l->body, covered || l->parallel != ParallelKind::None);
          break;
        }
        case Node::Kind::Stmt:
          break;
      }
    };
    clear(program.root, false);
  }

  ParallelismStats stats;
  forEachLoop(program, [&](const LoopPtr& l, const std::vector<LoopPtr>&) {
    switch (l->parallel) {
      case ParallelKind::Doall:
        ++stats.doall;
        break;
      case ParallelKind::Reduction:
        ++stats.reduction;
        break;
      case ParallelKind::Pipeline:
        ++stats.pipeline;
        if (l->pipelineDepth >= 3) ++stats.pipelineDepth3;
        break;
      case ParallelKind::ReductionPipeline:
        ++stats.reductionPipeline;
        if (l->pipelineDepth >= 3) ++stats.pipelineDepth3;
        break;
      case ParallelKind::None:
        break;
    }
  });
  return stats;
}

namespace {

/// Computes bounding-box (relaxed) bounds for the tile loops of a band:
/// references to *outer band iterators* in a bound part are replaced by
/// that iterator's extreme value (its own relaxed bound), so the tile loop
/// covers the union of the point ranges over all outer iterations. Skewed
/// bands (i in [t+1, N+t-1)) rely on this. Point loops keep the exact
/// bounds, so over-approximation only costs empty tiles. Returns false
/// when relaxation is not possible (multi-part dependent bounds).
bool relaxBandBounds(const std::vector<LoopPtr>& band,
                     std::vector<ir::Bound>* lowers,
                     std::vector<ir::Bound>* uppers) {
  std::map<std::string, std::pair<AffExpr, AffExpr>> extremes;  // lo, hi-1
  for (const auto& l : band) {
    auto relaxPart = [&](AffExpr part, bool isLower) -> std::optional<AffExpr> {
      std::vector<std::pair<std::string, std::int64_t>> terms(
          part.coeffs().begin(), part.coeffs().end());
      for (const auto& [name, coeff] : terms) {
        auto it = extremes.find(name);
        if (it == extremes.end()) continue;  // not an outer band iterator
        // Lower bounds relax downward, upper bounds upward.
        bool useMin = (coeff > 0) == isLower;
        part = part.substituted(name,
                                useMin ? it->second.first : it->second.second);
      }
      // The substitution may introduce another band iterator (nested
      // dependence); require the result to be band-free.
      for (const auto& [name, coeff] : part.coeffs()) {
        (void)coeff;
        if (extremes.count(name)) return std::nullopt;
      }
      return part;
    };
    ir::Bound lo, hi;
    for (const auto& p : l->lower.parts) {
      auto r = relaxPart(p, /*isLower=*/true);
      if (!r) return false;
      lo.parts.push_back(*r);
    }
    for (const auto& p : l->upper.parts) {
      auto r = relaxPart(p, /*isLower=*/false);
      if (!r) return false;
      hi.parts.push_back(*r);
    }
    // Record this loop's extremes for deeper band members; requires
    // single-part relaxed bounds to stay affine.
    if (lo.parts.size() != 1 || hi.parts.size() != 1) {
      bool referenced = false;
      for (const auto& deeper : band)
        for (const auto& parts : {deeper->lower.parts, deeper->upper.parts})
          for (const auto& p : parts)
            if (p.coeff(l->iter) != 0) referenced = true;
      if (referenced) return false;
    } else {
      extremes[l->iter] = {lo.parts.front(),
                           hi.parts.front() - AffExpr(1)};
    }
    lowers->push_back(std::move(lo));
    uppers->push_back(std::move(hi));
  }
  return true;
}

}  // namespace

int tileForLocality(ir::Program& program, const AstOptions& options) {
  poly::ScopOptions sopt;
  sopt.paramMin = options.paramMin;
  Scop scop = poly::extractScop(program, sopt);
  PoDG podg = poly::computeDependences(scop);

  int tiled = 0;
  for (const auto& chain : collectChains(program)) {
    if (chain.size() < 2) continue;
    // Find the longest contiguous permutable, rectangular band.
    auto deps = depsUnder(scop, podg, chain.back().get());
    auto levelNonNeg = [&](const LoopPtr& l) {
      for (const Dependence* d : deps) {
        auto lk = commonLevelOf(scop, *d, l.get());
        if (!lk) continue;
        auto mn = d->poly.minOf(distExpr(*d, *lk));
        if (d->poly.isEmpty()) continue;
        if (!mn || *mn < 0) return false;
      }
      return true;
    };
    std::size_t bestStart = 0, bestLen = 0;
    for (std::size_t s = 0; s < chain.size(); ++s) {
      std::size_t e = s;
      while (e < chain.size() && levelNonNeg(chain[e])) ++e;
      if (e - s > bestLen) {
        bestLen = e - s;
        bestStart = s;
      }
      if (e == s) continue;
      s = e;  // skip past this candidate range
    }
    if (bestLen < 2) continue;
    std::vector<LoopPtr> band(chain.begin() + bestStart,
                              chain.begin() + bestStart + bestLen);
    std::vector<ir::Bound> tileLowers, tileUppers;
    if (!relaxBandBounds(band, &tileLowers, &tileUppers)) continue;

    // Build the tile loops, outermost first.
    std::vector<std::shared_ptr<Loop>> tiles;
    for (std::size_t bi = 0; bi < band.size(); ++bi) {
      const auto& l = band[bi];
      auto t = std::make_shared<Loop>();
      t->iter = l->iter + "t";
      t->lower = tileLowers[bi];
      t->upper = tileUppers[bi];
      // Dependence-carrying band dimensions (e.g. the time loop of a
      // skewed stencil) get the smaller time-tile size.
      bool carriesDeps = false;
      for (const Dependence* d : deps) {
        if (d->relaxable()) continue;  // reductions don't shrink the tile
        auto lk = commonLevelOf(scop, *d, l.get());
        if (!lk) continue;
        auto mx = d->poly.maxOf(distExpr(*d, *lk));
        if (d->poly.isEmpty()) continue;
        if (!mx || *mx >= 1) carriesDeps = true;
      }
      t->step = carriesDeps ? options.timeTileSize : options.tileSize;
      t->isTileLoop = true;
      t->parallel = l->parallel;
      t->pipelineDepth = l->pipelineDepth;
      l->parallel = ParallelKind::None;
      l->pipelineDepth = 0;
      tiles.push_back(t);
    }
    // Point loops get tile-bounded ranges and are marked as members of a
    // permutable band (register tiling keys off this).
    for (std::size_t i = 0; i < band.size(); ++i) {
      band[i]->lower.parts.push_back(AffExpr::term(tiles[i]->iter));
      band[i]->upper.parts.push_back(AffExpr::term(tiles[i]->iter) +
                                     AffExpr(tiles[i]->step));
      band[i]->isPointLoop = true;
    }
    // Chain the tile loops and splice them where the band began.
    for (std::size_t i = 0; i + 1 < tiles.size(); ++i)
      tiles[i]->body->children.push_back(tiles[i + 1]);
    tiles.back()->body->children.push_back(band.front());

    // Replace band.front() in its parent with tiles.front().
    std::function<bool(const NodePtr&)> splice = [&](const NodePtr& n) {
      if (n->kind == Node::Kind::Block) {
        auto b = std::static_pointer_cast<Block>(n);
        for (auto& c : b->children) {
          if (c == band.front()) {
            c = tiles.front();
            return true;
          }
          if (splice(c)) return true;
        }
        return false;
      }
      if (n->kind == Node::Kind::Loop) {
        auto l = std::static_pointer_cast<Loop>(n);
        if (l == tiles.front()) return false;  // don't descend into new tree
        return splice(l->body);
      }
      return false;
    };
    bool ok = splice(program.root);
    POLYAST_CHECK(ok, "failed to splice tile loops");
    ++tiled;
  }
  return tiled;
}

namespace {

/// Guarded unrolling, generalized to any positive step: the loop's step is
/// multiplied by `factor`; the body is replicated with iterator offsets
/// o * step for o in 0..factor-1, each replica o >= 1 guarded by the
/// loop's upper bounds so partial final iterations stay correct.
void unrollGuarded(const LoopPtr& loop, std::int64_t factor) {
  POLYAST_CHECK(factor >= 2, "unroll factor must be >= 2");
  POLYAST_CHECK(loop->step >= 1, "unrolling requires a positive loop step");
  const std::int64_t step = loop->step;
  auto newBody = std::make_shared<Block>();
  for (std::int64_t o = 0; o < factor; ++o) {
    auto copy = std::static_pointer_cast<Block>(loop->body->clone());
    if (o > 0) {
      ir::substituteIterInTree(
          copy, loop->iter,
          AffExpr::term(loop->iter) + AffExpr(o * step));
      // Guard every statement in the replica: iter + o*step < upper.
      std::function<void(const NodePtr&)> guard = [&](const NodePtr& n) {
        switch (n->kind) {
          case Node::Kind::Block:
            for (const auto& c :
                 std::static_pointer_cast<Block>(n)->children)
              guard(c);
            break;
          case Node::Kind::Loop:
            guard(std::static_pointer_cast<Loop>(n)->body);
            break;
          case Node::Kind::Stmt: {
            auto s = std::static_pointer_cast<ir::Stmt>(n);
            for (const auto& up : loop->upper.parts)
              s->guards.push_back(up - AffExpr::term(loop->iter) -
                                  AffExpr(o * step) - AffExpr(1));
            break;
          }
        }
      };
      guard(copy);
    }
    for (const auto& c : copy->children) newBody->children.push_back(c);
  }
  loop->body = newBody;
  loop->step = step * factor;
  loop->unroll = factor;
}

/// True when `e` references the iterator `iter` anywhere — as an IterRef
/// or inside an affine array subscript.
bool exprUsesIter(const ir::ExprPtr& e, const std::string& iter) {
  if (!e) return false;
  if (e->kind == ir::Expr::Kind::IterRef && e->name == iter) return true;
  if (e->kind == ir::Expr::Kind::ArrayRef)
    for (const auto& s : e->subs)
      if (s.coeff(iter) != 0) return true;
  return exprUsesIter(e->lhs, iter) || exprUsesIter(e->rhs, iter) ||
         exprUsesIter(e->cond, iter);
}

/// Recognizes the packed-microkernel shape rooted at `outer`: a chained
/// pair of step-1 point loops around a single unguarded accumulation
///     C[..lane..] += X * L[..lane..]
/// where, for some assignment of {lane, stream} to the two iterators:
///   * lane has coefficient exactly 1 in C's last subscript, none in the
///     others (unit-stride vector store), and carries no dependence
///     (Loop::simdSafe — lanes are independent, so vector evaluation
///     preserves every per-cell operation sequence);
///   * stream indexes neither C subscript (same accumulator cell across
///     the stream) and carries only relaxable reduction edges
///     (Loop::reductionCarried — the PR-8 ReductionClass proof that this
///     is a pure contraction);
///   * the rhs is one multiply whose lane side is a single array load
///     (packed into the lane panel; transposed/strided accesses are fine —
///     packing absorbs the layout) and whose other side X is
///     lane-invariant (packed once per stream element; same value, same
///     association (X * L) as the scalar nest).
/// Returns the tag, or null when the nest does not match.
std::shared_ptr<const ir::MicroKernelTag> recognizeMicroKernel(
    const LoopPtr& outer, const AstOptions& options) {
  // Packed panels are fixed-size stack buffers sized by the tile window;
  // keep them stack-safe.
  const std::int64_t cap = std::max(options.tileSize, options.timeTileSize);
  if (cap < 1 || cap > 128) return nullptr;
  if (outer->isTileLoop || !outer->isPointLoop || outer->step != 1)
    return nullptr;
  if (outer->body->children.size() != 1 ||
      outer->body->children.front()->kind != Node::Kind::Loop)
    return nullptr;
  auto inner =
      std::static_pointer_cast<Loop>(outer->body->children.front());
  if (inner->isTileLoop || !inner->isPointLoop || inner->step != 1)
    return nullptr;
  if (inner->body->children.size() != 1 ||
      inner->body->children.front()->kind != Node::Kind::Stmt)
    return nullptr;
  auto stmt =
      std::static_pointer_cast<ir::Stmt>(inner->body->children.front());
  if (stmt->op != ir::AssignOp::AddAssign || !stmt->guards.empty() ||
      !stmt->isReductionUpdate || stmt->lhsSubs.empty())
    return nullptr;
  // Both windows must be computable at the nest root (rectangular pair).
  if (!ir::boundsIndependentOf(*inner, outer->iter)) return nullptr;

  auto tryRoles = [&](const LoopPtr& lane, const LoopPtr& stream)
      -> std::shared_ptr<const ir::MicroKernelTag> {
    if (!lane->simdSafe || !stream->reductionCarried) return nullptr;
    if (stmt->lhsSubs.back().coeff(lane->iter) != 1) return nullptr;
    for (std::size_t i = 0; i + 1 < stmt->lhsSubs.size(); ++i)
      if (stmt->lhsSubs[i].coeff(lane->iter) != 0) return nullptr;
    for (const auto& sub : stmt->lhsSubs)
      if (sub.coeff(stream->iter) != 0) return nullptr;
    const auto& rhs = stmt->rhs;
    if (!rhs || rhs->kind != ir::Expr::Kind::Binary ||
        rhs->binOp != ir::BinOp::Mul)
      return nullptr;
    for (const auto& [laneSide, other] :
         {std::pair(rhs->lhs, rhs->rhs), std::pair(rhs->rhs, rhs->lhs)}) {
      if (!laneSide || laneSide->kind != ir::Expr::Kind::ArrayRef) continue;
      bool usesLane = false;
      for (const auto& s : laneSide->subs)
        if (s.coeff(lane->iter) != 0) usesLane = true;
      if (!usesLane || exprUsesIter(other, lane->iter)) continue;
      auto tag = std::make_shared<ir::MicroKernelTag>();
      tag->laneIter = lane->iter;
      tag->streamIter = stream->iter;
      tag->maxLane = tag->maxStream = cap;
      return tag;
    }
    return nullptr;
  };
  if (auto tag = tryRoles(inner, outer)) return tag;
  return tryRoles(outer, inner);
}

}  // namespace

int registerTile(ir::Program& program, const AstOptions& options) {
  int unrolled = 0;
  // SIMD microkernel tagging first: tagged contraction nests stay rolled —
  // the interpreter runs the rolled nest and the native emitter lowers the
  // tag to packed vector code with the identical per-cell operation order,
  // so the two stay bit-exact. Tagged nests are excluded from
  // unroll-and-jam below.
  if (options.simd) {
    std::vector<std::pair<LoopPtr, std::shared_ptr<const ir::MicroKernelTag>>>
        tags;
    forEachLoop(program, [&](const LoopPtr& l, const std::vector<LoopPtr>&) {
      if (auto tag = recognizeMicroKernel(l, options))
        tags.emplace_back(l, std::move(tag));
    });
    for (auto& [l, tag] : tags) l->microKernel = std::move(tag);
  }
  auto underMicroKernel = [](const LoopPtr& l,
                             const std::vector<LoopPtr>& ancestors) {
    if (l->microKernel) return true;
    for (const auto& a : ancestors)
      if (a->microKernel) return true;
    return false;
  };
  // Innermost loops first (collect, then mutate).
  std::vector<LoopPtr> inner;
  forEachLoop(program, [&](const LoopPtr& l,
                           const std::vector<LoopPtr>& ancestors) {
    if (l->isTileLoop || l->step < 1) return;
    if (underMicroKernel(l, ancestors)) return;
    bool hasLoopChild = false;
    for (const auto& c : l->body->children)
      if (c->kind == Node::Kind::Loop) hasLoopChild = true;
    if (!hasLoopChild) inner.push_back(l);
  });
  if (options.unrollInner >= 2) {
    for (const auto& l : inner) {
      unrollGuarded(l, options.unrollInner);
      ++unrolled;
    }
  }
  if (options.unrollOuter >= 2) {
    // Unroll-and-jam of the second-innermost loops: only when the body is
    // exactly the (already unrolled) inner loop and its bounds do not
    // depend on the outer iterator.
    std::vector<LoopPtr> outers;
    forEachLoop(program, [&](const LoopPtr& l,
                             const std::vector<LoopPtr>& ancestors) {
      if (l->isTileLoop || l->step < 1) return;
      if (underMicroKernel(l, ancestors)) return;
      // Jamming reorders iterations across the inner loop; it is only
      // legal for permutable pairs, which is guaranteed exactly for the
      // point loops of a tiled band (Sec. IV-C: "loops within a tile are
      // unrolled when they are permutable").
      if (!l->isPointLoop) return;
      if (l->body->children.size() != 1 ||
          l->body->children.front()->kind != Node::Kind::Loop)
        return;
      auto innerLoop =
          std::static_pointer_cast<Loop>(l->body->children.front());
      // Both loops must belong to the same tiled (permutable) band —
      // jamming across a non-band inner loop can reorder same-cell
      // accumulations (dep distances like (1, -k)).
      if (!innerLoop->isPointLoop) return;
      bool innerIsLeaf = true;
      for (const auto& c : innerLoop->body->children)
        if (c->kind == Node::Kind::Loop) innerIsLeaf = false;
      if (!innerIsLeaf) return;
      // Rectangularity: inner bounds independent of the outer iterator.
      for (const auto& parts :
           {innerLoop->lower.parts, innerLoop->upper.parts})
        for (const auto& p : parts)
          if (p.coeff(l->iter) != 0) return;
      outers.push_back(l);
    });
    for (const auto& l : outers) {
      auto innerLoop =
          std::static_pointer_cast<Loop>(l->body->children.front());
      // Jam: replicate the inner loop's body with outer-iterator offsets
      // (multiples of the outer step, so strided point loops jam too).
      const std::int64_t ostep = l->step;
      auto jammed = std::make_shared<Block>();
      for (std::int64_t o = 0; o < options.unrollOuter; ++o) {
        auto copy =
            std::static_pointer_cast<Block>(innerLoop->body->clone());
        if (o > 0) {
          ir::substituteIterInTree(
              copy, l->iter,
              AffExpr::term(l->iter) + AffExpr(o * ostep));
          std::function<void(const NodePtr&)> guard = [&](const NodePtr& n) {
            switch (n->kind) {
              case Node::Kind::Block:
                for (const auto& c :
                     std::static_pointer_cast<Block>(n)->children)
                  guard(c);
                break;
              case Node::Kind::Loop:
                guard(std::static_pointer_cast<Loop>(n)->body);
                break;
              case Node::Kind::Stmt: {
                auto s = std::static_pointer_cast<ir::Stmt>(n);
                for (const auto& up : l->upper.parts)
                  s->guards.push_back(up - AffExpr::term(l->iter) -
                                      AffExpr(o * ostep) - AffExpr(1));
                break;
              }
            }
          };
          guard(copy);
        }
        for (const auto& c : copy->children) jammed->children.push_back(c);
      }
      innerLoop->body = jammed;
      l->step = ostep * options.unrollOuter;
      l->unroll = options.unrollOuter;
      ++unrolled;
    }
  }
  return unrolled;
}

}  // namespace polyast::transform
