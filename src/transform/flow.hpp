// End-to-end optimization flow — Algorithm 1 of the paper.
//
//   1  P := fusion and permutation with DL(P.Poly)      (polyhedral stage)
//   2  P := skewing for tilability(P.AST)
//   3  P := coarse grain parallelization(P.AST)
//   4  P := tiling for locality(P.AST)
//   5  P := intra tile optimizations(P.AST)             (register tiling)
#pragma once

#include "ir/ast.hpp"
#include "transform/affine.hpp"
#include "transform/ast_stage.hpp"

namespace polyast::transform {

struct FlowOptions {
  AffineOptions affine;
  AstOptions ast;
  bool enableSkewing = true;
  bool enableParallelization = true;
  bool enableTiling = true;
  bool enableRegisterTiling = true;
  /// Fall back to the original schedule when the affine stage fails (it
  /// should not for SCoPs in the restricted class, but the flow must be
  /// total).
  bool fallbackToIdentity = true;
};

struct FlowReport {
  bool affineStageSucceeded = false;
  int skewsApplied = 0;
  int bandsTiled = 0;
  int loopsUnrolled = 0;
};

/// Runs the full poly+AST flow on a SCoP program and returns the optimized
/// program (annotated with parallelism marks and tile loops).
ir::Program optimize(const ir::Program& program, const FlowOptions& options = {},
                     FlowReport* report = nullptr);

}  // namespace polyast::transform
