// End-to-end optimization flow — Algorithm 1 of the paper.
//
//   1  P := fusion and permutation with DL(P.Poly)      (polyhedral stage)
//   2  P := skewing for tilability(P.AST)
//   3  P := coarse grain parallelization(P.AST)
//   4  P := tiling for locality(P.AST)
//   5  P := intra tile optimizations(P.AST)             (register tiling)
//
// Since the pass-manager refactor, optimize() is a thin wrapper over the
// "polyast" pipeline preset (src/flow/presets.hpp): each line above is a
// Pass executed by a PassPipeline with per-pass timing, counters, optional
// IR dumps, and an inter-pass interpreter-oracle verification mode. Use
// flow::makePipeline directly for pass-level instrumentation; this entry
// point remains for callers that only need the classic one-shot flow.
#pragma once

#include "ir/ast.hpp"
#include "transform/affine.hpp"
#include "transform/ast_stage.hpp"

namespace polyast::transform {

struct FlowOptions {
  AffineOptions affine;
  AstOptions ast;
  bool enableSkewing = true;
  bool enableParallelization = true;
  bool enableTiling = true;
  bool enableRegisterTiling = true;
  /// Fall back to the original schedule when the affine stage fails (it
  /// should not for SCoPs in the restricted class, but the flow must be
  /// total).
  bool fallbackToIdentity = true;
};

struct FlowReport {
  bool affineStageSucceeded = false;
  /// When the affine stage fell back to identity schedules, the error
  /// message that caused it (previously discarded).
  std::string affineFailureReason;
  int skewsApplied = 0;
  /// Outcome of parallelism detection: loop marks by kind surviving the
  /// outermost-only filter (all zero when the stage is disabled).
  ParallelismStats parallelism;
  int bandsTiled = 0;
  int loopsUnrolled = 0;
};

/// Runs the full poly+AST flow on a SCoP program and returns the optimized
/// program (annotated with parallelism marks and tile loops). Equivalent to
/// running the "polyast" pipeline preset.
ir::Program optimize(const ir::Program& program, const FlowOptions& options = {},
                     FlowReport* report = nullptr);

}  // namespace polyast::transform
