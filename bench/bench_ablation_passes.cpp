// Ablation: compile-time cost and outcome of each pass in the pipeline
// presets. Unlike the other ablation benches (which measure the native
// structures the compiler's choices correspond to), this one measures the
// compiler itself: per-pass wall-clock from the pass manager's
// instrumentation, and the stage counters (skews, parallel loop kinds,
// tiled bands, unrolled loops, wavefronts) as benchmark counters — the
// data behind "where does optimization time go" across presets.
#include "common/bench_common.hpp"
#include "flow/presets.hpp"
#include "kernels/polybench.hpp"

namespace polyast::bench {
namespace {

void runPreset(benchmark::State& state, const char* kernel,
               const char* preset) {
  ir::Program program = kernels::buildKernel(kernel);
  flow::PipelineOptions options;
  options.ast.tileSize = 8;
  options.ast.timeTileSize = 3;
  flow::PassPipeline pipe = flow::makePipeline(preset, options);
  flow::PipelineReport last;
  for (auto _ : state) {
    flow::PassContext ctx;
    ir::Program out = pipe.run(program, ctx);
    benchmark::DoNotOptimize(out);
    last = std::move(ctx.report);
  }
  for (const auto& pass : last.passes)
    state.counters["ms_" + pass.pass] = pass.millis;
  for (const char* c : {"skews", "doall", "reduction", "pipeline",
                        "bands_tiled", "loops_unrolled", "wavefronts"})
    if (std::int64_t v = last.counter(c); v != 0)
      state.counters[c] = static_cast<double>(v);
}

void registerAblation(const char* kernel, const char* preset) {
  std::string name = std::string("ablation/passes/") + kernel + "/" + preset;
  benchmark::RegisterBenchmark(
      name.c_str(),
      [kernel, preset](benchmark::State& st) { runPreset(st, kernel, preset); })
      ->Unit(benchmark::kMillisecond);
}

const bool registered = [] {
  // Both flows on the kernels the paper evaluates most, then the ablation
  // presets on 2mm: dropping a pass both changes the result and shifts
  // where compile time goes.
  for (const char* kernel : {"gemm", "2mm", "seidel-2d", "jacobi-2d-imper"})
    for (const char* preset : {"polyast", "pocc"})
      registerAblation(kernel, preset);
  for (const char* preset :
       {"polyast-nofuse", "polyast-noskew", "polyast-nopar", "polyast-notile",
        "polyast-noregtile", "pocc-vect"})
    registerAblation("2mm", preset);
  return true;
}();

}  // namespace
}  // namespace polyast::bench

BENCHMARK_MAIN();
