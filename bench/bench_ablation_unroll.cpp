// Ablation: register-tiling (unroll-and-jam) factors on the poly+AST gemm
// inner tile. The paper reports up to 2x from register tiling with
// empirically chosen factors (Sec. IV-C).
#include "common/bench_common.hpp"

namespace polyast::bench {
namespace {

constexpr std::int64_t N = 320;
constexpr std::int64_t T = 32;

struct P {
  std::vector<double> C, A, B;
  P() : C(N * N), A(N * N), B(N * N) {
    seed(A, "A");
    seed(B, "B");
    reset();
  }
  void reset() { seed(C, "C"); }
};

template <int UK>
void gemmUnrolled(P& p) {
  runtime::parallelFor(pool(), 0, N, [&](std::int64_t i) {
    double* __restrict c = &p.C[i * N];
    for (std::int64_t kt = 0; kt < N; kt += T)
      for (std::int64_t jt = 0; jt < N; jt += T) {
        std::int64_t kHi = std::min(N, kt + T), jHi = std::min(N, jt + T);
        std::int64_t k = kt;
        for (; k + UK <= kHi; k += UK) {
          double a[UK];
          const double* b[UK];
          for (int u = 0; u < UK; ++u) {
            a[u] = p.A[i * N + k + u];
            b[u] = &p.B[(k + u) * N];
          }
          for (std::int64_t j = jt; j < jHi; ++j) {
            double acc = c[j];
            for (int u = 0; u < UK; ++u) acc += a[u] * b[u][j];
            c[j] = acc;
          }
        }
        for (; k < kHi; ++k) {
          double a = p.A[i * N + k];
          const double* __restrict b = &p.B[k * N];
          for (std::int64_t j = jt; j < jHi; ++j) c[j] += a * b[j];
        }
      }
  });
}

template <int UK>
void BM_unroll(benchmark::State& state) {
  static P p;
  for (auto _ : state) {
    state.PauseTiming();
    p.reset();
    state.ResumeTiming();
    gemmUnrolled<UK>(p);
    benchmark::ClobberMemory();
  }
  reportGflops(state, 2.0 * static_cast<double>(N) * N * N);
}

BENCHMARK(BM_unroll<1>)->Name("ablation/gemm_unroll_k/1")->UseRealTime();
BENCHMARK(BM_unroll<2>)->Name("ablation/gemm_unroll_k/2")->UseRealTime();
BENCHMARK(BM_unroll<4>)->Name("ablation/gemm_unroll_k/4")->UseRealTime();
BENCHMARK(BM_unroll<6>)->Name("ablation/gemm_unroll_k/6")->UseRealTime();
BENCHMARK(BM_unroll<8>)->Name("ablation/gemm_unroll_k/8")->UseRealTime();

}  // namespace
}  // namespace polyast::bench

BENCHMARK_MAIN();
