// Ablation: DL-guided loop permutation versus the original order, on the
// kernels where the DL model changes the order (Sec. III-B1) — the core of
// the paper's "cache-aware affine transformation" claim. Measured on the
// native structures the compiler's choices correspond to.
#include "common/bench_common.hpp"

namespace polyast::bench {
namespace {

constexpr std::int64_t N = 700;

struct P {
  std::vector<double> C, A, B;
  P() : C(N * N), A(N * N), B(N * N) {
    seed(A, "A");
    seed(B, "B");
    reset();
  }
  void reset() { seed(C, "C"); }
};

// gemm inner product in the ORIGINAL order (i, j, k): B walked column-wise.
void BM_gemm_orig_order(benchmark::State& state) {
  static P p;
  for (auto _ : state) {
    state.PauseTiming();
    p.reset();
    state.ResumeTiming();
    for (std::int64_t i = 0; i < N; ++i)
      for (std::int64_t j = 0; j < N; ++j) {
        double acc = p.C[i * N + j];
        for (std::int64_t k = 0; k < N; ++k)
          acc += p.A[i * N + k] * p.B[k * N + j];
        p.C[i * N + j] = acc;
      }
    benchmark::ClobberMemory();
  }
  reportGflops(state, 2.0 * static_cast<double>(N) * N * N);
}

// DL order (i, k, j): every access stride-1 in the innermost loop.
void BM_gemm_dl_order(benchmark::State& state) {
  static P p;
  for (auto _ : state) {
    state.PauseTiming();
    p.reset();
    state.ResumeTiming();
    for (std::int64_t i = 0; i < N; ++i)
      for (std::int64_t k = 0; k < N; ++k) {
        double a = p.A[i * N + k];
        const double* __restrict b = &p.B[k * N];
        double* __restrict c = &p.C[i * N];
        for (std::int64_t j = 0; j < N; ++j) c[j] += a * b[j];
      }
    benchmark::ClobberMemory();
  }
  reportGflops(state, 2.0 * static_cast<double>(N) * N * N);
}

// mvt's transposed product: original (i, j) walks A columns; DL picks the
// row-streaming order with an array reduction.
void BM_mvt_orig_order(benchmark::State& state) {
  static P p;
  std::vector<double> x(N), y(N);
  seed(y, "y");
  for (auto _ : state) {
    state.PauseTiming();
    std::fill(x.begin(), x.end(), 0.0);
    state.ResumeTiming();
    for (std::int64_t i = 0; i < N; ++i) {
      double acc = 0.0;
      for (std::int64_t j = 0; j < N; ++j) acc += p.A[j * N + i] * y[j];
      x[i] = acc;
    }
    benchmark::ClobberMemory();
  }
  reportGflops(state, 2.0 * static_cast<double>(N) * N);
}
void BM_mvt_dl_order(benchmark::State& state) {
  static P p;
  std::vector<double> x(N), y(N);
  seed(y, "y");
  for (auto _ : state) {
    state.PauseTiming();
    std::fill(x.begin(), x.end(), 0.0);
    state.ResumeTiming();
    for (std::int64_t j = 0; j < N; ++j) {
      double yj = y[j];
      const double* __restrict a = &p.A[j * N];
      for (std::int64_t i = 0; i < N; ++i) x[i] += a[i] * yj;
    }
    benchmark::ClobberMemory();
  }
  reportGflops(state, 2.0 * static_cast<double>(N) * N);
}

BENCHMARK(BM_gemm_orig_order)->Name("ablation/dl_permutation/gemm_ijk")->UseRealTime();
BENCHMARK(BM_gemm_dl_order)->Name("ablation/dl_permutation/gemm_ikj")->UseRealTime();
BENCHMARK(BM_mvt_orig_order)->Name("ablation/dl_permutation/mvt_colwalk")->UseRealTime();
BENCHMARK(BM_mvt_dl_order)->Name("ablation/dl_permutation/mvt_rowstream")->UseRealTime();

}  // namespace
}  // namespace polyast::bench

BENCHMARK_MAIN();
