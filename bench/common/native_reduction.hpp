// Native variants for the reduction-dominant kernels (Fig. 8 group).
//
// The contrast the paper draws (Fig. 5): the poly+AST flow keeps the
// locality-best loop order and parallelizes the outer loop as a
// *reduction* (privatized array accumulation), while the doall-only
// baseline permutes the loops to expose an outer doall, sacrificing
// per-thread locality and vectorization.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/parallel.hpp"

namespace polyast::bench {

using runtime::ThreadPool;

// ---- atax: y = A^T (A x) -------------------------------------------------
struct AtaxProblem {
  std::int64_t NX, NY;
  std::vector<double> A, x, y, tmp;
  AtaxProblem(std::int64_t nx, std::int64_t ny);
  void reset();
  double flops() const;
  double check() const;
};
void ataxOrig(AtaxProblem& p);
void ataxPocc(AtaxProblem& p, ThreadPool& pool);     // doall via permutation
void ataxPolyast(AtaxProblem& p, ThreadPool& pool);  // outer reduction

// ---- bicg ----------------------------------------------------------------
struct BicgProblem {
  std::int64_t NX, NY;
  std::vector<double> A, s, q, pvec, r;
  BicgProblem(std::int64_t nx, std::int64_t ny);
  void reset();
  double flops() const;
  double check() const;
};
void bicgOrig(BicgProblem& p);
void bicgPocc(BicgProblem& p, ThreadPool& pool);
void bicgPolyast(BicgProblem& p, ThreadPool& pool);

// ---- mvt -----------------------------------------------------------------
struct MvtProblem {
  std::int64_t N;
  std::vector<double> A, x1, x2, y1, y2;
  explicit MvtProblem(std::int64_t n);
  void reset();
  double flops() const;
  double check() const;
};
void mvtOrig(MvtProblem& p);
void mvtPocc(MvtProblem& p, ThreadPool& pool);
void mvtPolyast(MvtProblem& p, ThreadPool& pool);

// ---- gemver ----------------------------------------------------------------
struct GemverProblem {
  std::int64_t N;
  std::vector<double> A, u1, v1, u2, v2, x, y, z, w;
  double alpha = 1.5, beta = 1.2;
  explicit GemverProblem(std::int64_t n);
  void reset();
  double flops() const;
  double check() const;
};
void gemverOrig(GemverProblem& p);
void gemverPocc(GemverProblem& p, ThreadPool& pool);
void gemverPolyast(GemverProblem& p, ThreadPool& pool);

// ---- symm ------------------------------------------------------------------
struct SymmProblem {
  std::int64_t NI, NJ;
  std::vector<double> C, A, B;
  double alpha = 1.5, beta = 1.2;
  SymmProblem(std::int64_t ni, std::int64_t nj);
  void reset();
  double flops() const;
  double check() const;
};
void symmOrig(SymmProblem& p);
void symmPocc(SymmProblem& p, ThreadPool& pool);
void symmPolyast(SymmProblem& p, ThreadPool& pool);
/// symmPolyast with the guided schedule: the triangular k loop makes
/// static chunks of j imbalanced, so threads claim shrinking blocks off a
/// shared counter instead.
void symmPolyastGuided(SymmProblem& p, ThreadPool& pool);

// ---- trisolv ----------------------------------------------------------------
struct TrisolvProblem {
  std::int64_t N;
  std::vector<double> A, x, c;
  explicit TrisolvProblem(std::int64_t n);
  void reset();
  double flops() const;
  double check() const;
};
void trisolvOrig(TrisolvProblem& p);
void trisolvPocc(TrisolvProblem& p, ThreadPool& pool);
void trisolvPolyast(TrisolvProblem& p, ThreadPool& pool);

// ---- cholesky ----------------------------------------------------------------
struct CholeskyProblem {
  std::int64_t N;
  std::vector<double> A, pdiag, base;
  explicit CholeskyProblem(std::int64_t n);
  void reset();
  double flops() const;
  double check() const;
};
void choleskyOrig(CholeskyProblem& p);
void choleskyPocc(CholeskyProblem& p, ThreadPool& pool);
void choleskyPolyast(CholeskyProblem& p, ThreadPool& pool);

// ---- correlation ----------------------------------------------------------------
struct CorrelationProblem {
  std::int64_t N, M;
  std::vector<double> data, dataOrig, mean, stddev, symmat;
  CorrelationProblem(std::int64_t n, std::int64_t m);
  void reset();
  double flops() const;
  double check() const;
};
void correlationOrig(CorrelationProblem& p);
void correlationPocc(CorrelationProblem& p, ThreadPool& pool);
void correlationPolyast(CorrelationProblem& p, ThreadPool& pool);

// ---- covariance ----------------------------------------------------------------
struct CovarianceProblem {
  std::int64_t N, M;
  std::vector<double> data, dataOrig, mean, symmat;
  CovarianceProblem(std::int64_t n, std::int64_t m);
  void reset();
  double flops() const;
  double check() const;
};
void covarianceOrig(CovarianceProblem& p);
void covariancePocc(CovarianceProblem& p, ThreadPool& pool);
void covariancePolyast(CovarianceProblem& p, ThreadPool& pool);

}  // namespace polyast::bench
