#include "common/native_reduction.hpp"

#include <algorithm>
#include <cmath>

#include "common/bench_common.hpp"

namespace polyast::bench {

// ========================= atax ==========================================

AtaxProblem::AtaxProblem(std::int64_t nx, std::int64_t ny)
    : NX(nx), NY(ny),
      A(static_cast<std::size_t>(nx * ny)),
      x(static_cast<std::size_t>(ny)),
      y(static_cast<std::size_t>(ny)),
      tmp(static_cast<std::size_t>(nx)) {
  seed(A, "A");
  seed(x, "x");
  reset();
}
void AtaxProblem::reset() {
  std::fill(y.begin(), y.end(), 0.0);
  std::fill(tmp.begin(), tmp.end(), 0.0);
}
double AtaxProblem::flops() const {
  return 4.0 * static_cast<double>(NX) * static_cast<double>(NY);
}
double AtaxProblem::check() const { return checksum(y); }

void ataxOrig(AtaxProblem& p) {
  for (std::int64_t i = 0; i < p.NX; ++i) {
    double t = 0.0;
    for (std::int64_t j = 0; j < p.NY; ++j) t += p.A[i * p.NY + j] * p.x[j];
    p.tmp[i] = t;
    for (std::int64_t j = 0; j < p.NY; ++j)
      p.y[j] += p.A[i * p.NY + j] * t;
  }
}

void ataxPocc(AtaxProblem& p, ThreadPool& pool) {
  // Doall-only: the y update is parallelized by making j outer, which
  // walks A column-wise (stride NY) — Fig. 5's right column.
  runtime::parallelFor(pool, 0, p.NX, [&](std::int64_t i) {
    double t = 0.0;
    for (std::int64_t j = 0; j < p.NY; ++j) t += p.A[i * p.NY + j] * p.x[j];
    p.tmp[i] = t;
  });
  runtime::parallelFor(pool, 0, p.NY, [&](std::int64_t j) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < p.NX; ++i)
      acc += p.A[i * p.NY + j] * p.tmp[i];
    p.y[j] += acc;
  });
}

void ataxPolyast(AtaxProblem& p, ThreadPool& pool) {
  // Fused i loop (one pass over A) with y as an array reduction.
  runtime::parallelReduce(
      pool, 0, p.NX, p.y.data(), static_cast<std::size_t>(p.NY),
      [&](double* yPriv, std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const double* __restrict a = &p.A[i * p.NY];
          double t = 0.0;
          for (std::int64_t j = 0; j < p.NY; ++j) t += a[j] * p.x[j];
          p.tmp[i] = t;
          for (std::int64_t j = 0; j < p.NY; ++j) yPriv[j] += a[j] * t;
        }
      });
}

// ========================= bicg ==========================================

BicgProblem::BicgProblem(std::int64_t nx, std::int64_t ny)
    : NX(nx), NY(ny),
      A(static_cast<std::size_t>(nx * ny)),
      s(static_cast<std::size_t>(ny)),
      q(static_cast<std::size_t>(nx)),
      pvec(static_cast<std::size_t>(ny)),
      r(static_cast<std::size_t>(nx)) {
  seed(A, "A");
  seed(pvec, "p");
  seed(r, "r");
  reset();
}
void BicgProblem::reset() {
  std::fill(s.begin(), s.end(), 0.0);
  std::fill(q.begin(), q.end(), 0.0);
}
double BicgProblem::flops() const {
  return 4.0 * static_cast<double>(NX) * static_cast<double>(NY);
}
double BicgProblem::check() const { return checksum(s) + checksum(q); }

void bicgOrig(BicgProblem& p) {
  for (std::int64_t i = 0; i < p.NX; ++i) {
    double qq = 0.0;
    for (std::int64_t j = 0; j < p.NY; ++j) {
      p.s[j] += p.r[i] * p.A[i * p.NY + j];
      qq += p.A[i * p.NY + j] * p.pvec[j];
    }
    p.q[i] = qq;
  }
}

void bicgPocc(BicgProblem& p, ThreadPool& pool) {
  // Doall-only: distribute, permute the s update to j-outer (column walk).
  runtime::parallelFor(pool, 0, p.NY, [&](std::int64_t j) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < p.NX; ++i)
      acc += p.r[i] * p.A[i * p.NY + j];
    p.s[j] += acc;
  });
  runtime::parallelFor(pool, 0, p.NX, [&](std::int64_t i) {
    double qq = 0.0;
    for (std::int64_t j = 0; j < p.NY; ++j)
      qq += p.A[i * p.NY + j] * p.pvec[j];
    p.q[i] = qq;
  });
}

void bicgPolyast(BicgProblem& p, ThreadPool& pool) {
  // Fused single pass over A; s accumulated as an array reduction.
  runtime::parallelReduce(
      pool, 0, p.NX, p.s.data(), static_cast<std::size_t>(p.NY),
      [&](double* sPriv, std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const double* __restrict a = &p.A[i * p.NY];
          double ri = p.r[i], qq = 0.0;
          for (std::int64_t j = 0; j < p.NY; ++j) {
            sPriv[j] += ri * a[j];
            qq += a[j] * p.pvec[j];
          }
          p.q[i] = qq;
        }
      });
}

// ========================= mvt ===========================================

MvtProblem::MvtProblem(std::int64_t n)
    : N(n),
      A(static_cast<std::size_t>(n * n)),
      x1(static_cast<std::size_t>(n)),
      x2(static_cast<std::size_t>(n)),
      y1(static_cast<std::size_t>(n)),
      y2(static_cast<std::size_t>(n)) {
  seed(A, "A");
  seed(y1, "y1");
  seed(y2, "y2");
  reset();
}
void MvtProblem::reset() {
  seed(x1, "x1");
  seed(x2, "x2");
}
double MvtProblem::flops() const {
  double n = static_cast<double>(N);
  return 4.0 * n * n;
}
double MvtProblem::check() const { return checksum(x1) + checksum(x2); }

void mvtOrig(MvtProblem& p) {
  for (std::int64_t i = 0; i < p.N; ++i)
    for (std::int64_t j = 0; j < p.N; ++j)
      p.x1[i] += p.A[i * p.N + j] * p.y1[j];
  for (std::int64_t i = 0; i < p.N; ++i)
    for (std::int64_t j = 0; j < p.N; ++j)
      p.x2[i] += p.A[j * p.N + i] * p.y2[j];
}

void mvtPocc(MvtProblem& p, ThreadPool& pool) {
  // Both nests are outer-doall as written; the second walks A columns.
  runtime::parallelFor(pool, 0, p.N, [&](std::int64_t i) {
    double acc = 0.0;
    for (std::int64_t j = 0; j < p.N; ++j)
      acc += p.A[i * p.N + j] * p.y1[j];
    p.x1[i] += acc;
  });
  runtime::parallelFor(pool, 0, p.N, [&](std::int64_t i) {
    double acc = 0.0;
    for (std::int64_t j = 0; j < p.N; ++j)
      acc += p.A[j * p.N + i] * p.y2[j];
    p.x2[i] += acc;
  });
}

void mvtPolyast(MvtProblem& p, ThreadPool& pool) {
  // Fused single pass over A rows: x1 row product + x2 column product via
  // array reduction (the DL permutation makes both accesses stride-1).
  runtime::parallelReduce(
      pool, 0, p.N, p.x2.data(), static_cast<std::size_t>(p.N),
      [&](double* x2Priv, std::int64_t lo, std::int64_t hi) {
        for (std::int64_t j = lo; j < hi; ++j) {  // j indexes A rows here
          const double* __restrict a = &p.A[j * p.N];
          double y2j = p.y2[j], acc = 0.0;
          for (std::int64_t i = 0; i < p.N; ++i) {
            acc += a[i] * p.y1[i];
            x2Priv[i] += a[i] * y2j;
          }
          p.x1[j] += acc;
        }
      });
}

// ========================= gemver ========================================

GemverProblem::GemverProblem(std::int64_t n)
    : N(n), A(static_cast<std::size_t>(n * n)) {
  auto init = [&](std::vector<double>& v, const char* nm) {
    v.resize(static_cast<std::size_t>(n));
    seed(v, nm);
  };
  init(u1, "u1");
  init(v1, "v1");
  init(u2, "u2");
  init(v2, "v2");
  init(y, "y");
  init(z, "z");
  x.assign(static_cast<std::size_t>(n), 0.0);
  w.assign(static_cast<std::size_t>(n), 0.0);
  reset();
}
void GemverProblem::reset() {
  seed(A, "A");
  std::fill(x.begin(), x.end(), 0.0);
  std::fill(w.begin(), w.end(), 0.0);
}
double GemverProblem::flops() const {
  double n = static_cast<double>(N);
  return 10.0 * n * n;
}
double GemverProblem::check() const { return checksum(w); }

void gemverOrig(GemverProblem& p) {
  std::int64_t N = p.N;
  for (std::int64_t i = 0; i < N; ++i)
    for (std::int64_t j = 0; j < N; ++j)
      p.A[i * N + j] += p.u1[i] * p.v1[j] + p.u2[i] * p.v2[j];
  for (std::int64_t i = 0; i < N; ++i)
    for (std::int64_t j = 0; j < N; ++j)
      p.x[i] += p.beta * p.A[j * N + i] * p.y[j];
  for (std::int64_t i = 0; i < N; ++i) p.x[i] += p.z[i];
  for (std::int64_t i = 0; i < N; ++i)
    for (std::int64_t j = 0; j < N; ++j)
      p.w[i] += p.alpha * p.A[i * N + j] * p.x[j];
}

void gemverPocc(GemverProblem& p, ThreadPool& pool) {
  std::int64_t N = p.N;
  runtime::parallelFor(pool, 0, N, [&](std::int64_t i) {
    for (std::int64_t j = 0; j < N; ++j)
      p.A[i * N + j] += p.u1[i] * p.v1[j] + p.u2[i] * p.v2[j];
  });
  // x update parallelized as i-outer doall: column walk over A.
  runtime::parallelFor(pool, 0, N, [&](std::int64_t i) {
    double acc = 0.0;
    for (std::int64_t j = 0; j < N; ++j)
      acc += p.beta * p.A[j * N + i] * p.y[j];
    p.x[i] += acc + p.z[i];
  });
  runtime::parallelFor(pool, 0, N, [&](std::int64_t i) {
    double acc = 0.0;
    for (std::int64_t j = 0; j < N; ++j)
      acc += p.alpha * p.A[i * N + j] * p.x[j];
    p.w[i] += acc;
  });
}

void gemverPolyast(GemverProblem& p, ThreadPool& pool) {
  std::int64_t N = p.N;
  // A update and the x^T A product fused row-wise; x via array reduction.
  runtime::parallelReduce(
      pool, 0, N, p.x.data(), static_cast<std::size_t>(N),
      [&](double* xPriv, std::int64_t lo, std::int64_t hi) {
        for (std::int64_t j = lo; j < hi; ++j) {  // row j of A
          double* __restrict a = &p.A[j * N];
          double uj1 = p.u1[j], uj2 = p.u2[j], yj = p.beta * p.y[j];
          for (std::int64_t i = 0; i < N; ++i) {
            a[i] += uj1 * p.v1[i] + uj2 * p.v2[i];
            xPriv[i] += yj * a[i];
          }
        }
      });
  runtime::parallelFor(pool, 0, N, [&](std::int64_t i) { p.x[i] += p.z[i]; });
  runtime::parallelFor(pool, 0, N, [&](std::int64_t i) {
    const double* __restrict a = &p.A[i * N];
    double acc = 0.0;
    for (std::int64_t j = 0; j < N; ++j) acc += p.alpha * a[j] * p.x[j];
    p.w[i] += acc;
  });
}

// ========================= symm ==========================================

SymmProblem::SymmProblem(std::int64_t ni, std::int64_t nj)
    : NI(ni), NJ(nj),
      C(static_cast<std::size_t>(nj * nj)),
      A(static_cast<std::size_t>(nj * ni)),
      B(static_cast<std::size_t>(ni * nj)) {
  seed(A, "A");
  seed(B, "B");
  reset();
}
void SymmProblem::reset() { seed(C, "C"); }
double SymmProblem::flops() const {
  return 2.0 * static_cast<double>(NI) * static_cast<double>(NJ) *
         static_cast<double>(NJ);
}
double SymmProblem::check() const { return checksum(C); }

void symmOrig(SymmProblem& p) {
  for (std::int64_t i = 0; i < p.NI; ++i)
    for (std::int64_t j = 0; j < p.NJ; ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < j; ++k) {
        p.C[k * p.NJ + j] += p.alpha * p.A[k * p.NI + i] * p.B[i * p.NJ + j];
        acc += p.B[k * p.NJ + j] * p.A[k * p.NI + i];
      }
      p.C[i * p.NJ + j] =
          p.beta * p.C[i * p.NJ + j] +
          p.alpha * p.A[i * p.NI + i] * p.B[i * p.NJ + j] + p.alpha * acc;
    }
}

void symmPocc(SymmProblem& p, ThreadPool& pool) {
  // At fixed i the j iterations are independent (the C[k][j] scatter stays
  // within column j): inner doall, original access order.
  for (std::int64_t i = 0; i < p.NI; ++i) {
    runtime::parallelFor(pool, 0, p.NJ, [&](std::int64_t j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < j; ++k) {
        p.C[k * p.NJ + j] += p.alpha * p.A[k * p.NI + i] * p.B[i * p.NJ + j];
        acc += p.B[k * p.NJ + j] * p.A[k * p.NI + i];
      }
      p.C[i * p.NJ + j] =
          p.beta * p.C[i * p.NJ + j] +
          p.alpha * p.A[i * p.NI + i] * p.B[i * p.NJ + j] + p.alpha * acc;
    });
  }
}

void symmPolyast(SymmProblem& p, ThreadPool& pool) {
  // Same inner doall but blocked over j so each thread walks contiguous
  // C/B columns, with the A column value hoisted.
  for (std::int64_t i = 0; i < p.NI; ++i) {
    const double* __restrict bi = &p.B[i * p.NJ];
    double aii = p.A[i * p.NI + i];
    runtime::parallelForBlocked(pool, 0, p.NJ, [&](std::int64_t lo,
                                                   std::int64_t hi) {
      for (std::int64_t j = lo; j < hi; ++j) {
        double acc = 0.0;
        double bij = bi[j];
        for (std::int64_t k = 0; k < j; ++k) {
          double aki = p.A[k * p.NI + i];
          p.C[k * p.NJ + j] += p.alpha * aki * bij;
          acc += p.B[k * p.NJ + j] * aki;
        }
        p.C[i * p.NJ + j] =
            p.beta * p.C[i * p.NJ + j] + p.alpha * aii * bij + p.alpha * acc;
      }
    });
  }
}

void symmPolyastGuided(SymmProblem& p, ThreadPool& pool) {
  // The k loop runs 0..j, so static contiguous chunks of j give the last
  // thread ~2x the work of the first; the guided schedule drains the
  // triangular trip space off a shared counter instead.
  runtime::ForOptions guided;
  guided.schedule = runtime::Schedule::Guided;
  guided.minBlock = 8;
  for (std::int64_t i = 0; i < p.NI; ++i) {
    const double* __restrict bi = &p.B[i * p.NJ];
    double aii = p.A[i * p.NI + i];
    runtime::parallelForBlocked(
        pool, 0, p.NJ,
        [&](unsigned, std::int64_t lo, std::int64_t hi) {
          for (std::int64_t j = lo; j < hi; ++j) {
            double acc = 0.0;
            double bij = bi[j];
            for (std::int64_t k = 0; k < j; ++k) {
              double aki = p.A[k * p.NI + i];
              p.C[k * p.NJ + j] += p.alpha * aki * bij;
              acc += p.B[k * p.NJ + j] * aki;
            }
            p.C[i * p.NJ + j] = p.beta * p.C[i * p.NJ + j] +
                                p.alpha * aii * bij + p.alpha * acc;
          }
        },
        guided);
  }
}

// ========================= trisolv =======================================

TrisolvProblem::TrisolvProblem(std::int64_t n)
    : N(n),
      A(static_cast<std::size_t>(n * n)),
      x(static_cast<std::size_t>(n)),
      c(static_cast<std::size_t>(n)) {
  seed(A, "A");
  seed(c, "c");
  // Dominant diagonal keeps the solve well conditioned.
  for (std::int64_t i = 0; i < n; ++i)
    A[static_cast<std::size_t>(i * n + i)] += static_cast<double>(n);
  reset();
}
void TrisolvProblem::reset() { std::fill(x.begin(), x.end(), 0.0); }
double TrisolvProblem::flops() const {
  double n = static_cast<double>(N);
  return n * n + 2.0 * n;
}
double TrisolvProblem::check() const { return checksum(x); }

void trisolvOrig(TrisolvProblem& p) {
  for (std::int64_t i = 0; i < p.N; ++i) {
    double acc = p.c[i];
    for (std::int64_t j = 0; j < i; ++j) acc -= p.A[i * p.N + j] * p.x[j];
    p.x[i] = acc / p.A[i * p.N + i];
  }
}

void trisolvPocc(TrisolvProblem& p, ThreadPool& pool) {
  // Sequential dependence chain; the baseline keeps the original order.
  (void)pool;
  trisolvOrig(p);
}

void trisolvPolyast(TrisolvProblem& p, ThreadPool& pool) {
  // Blocked forward substitution: diagonal blocks sequential, the update
  // of the trailing rows after each block is doall.
  std::int64_t B = kTile;
  for (std::int64_t bi = 0; bi < p.N; bi += B) {
    std::int64_t hi = std::min(p.N, bi + B);
    for (std::int64_t i = bi; i < hi; ++i) {
      double acc = p.c[i];
      for (std::int64_t j = bi; j < i; ++j)
        acc -= p.A[i * p.N + j] * p.x[j];
      p.x[i] = (acc - 0.0) / p.A[i * p.N + i];
    }
    // Push the block's contribution into the remaining right-hand sides.
    runtime::parallelFor(pool, hi, p.N, [&](std::int64_t i) {
      double acc = 0.0;
      const double* __restrict a = &p.A[i * p.N];
      for (std::int64_t j = bi; j < hi; ++j) acc += a[j] * p.x[j];
      p.c[i] -= acc;
    });
  }
}

// ========================= cholesky ======================================

CholeskyProblem::CholeskyProblem(std::int64_t n)
    : N(n),
      A(static_cast<std::size_t>(n * n)),
      pdiag(static_cast<std::size_t>(n)),
      base(static_cast<std::size_t>(n * n)) {
  seed(base, "A");
  // Symmetric positive definite base matrix.
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double v = 0.1 * (base[static_cast<std::size_t>(i * n + j)] +
                        base[static_cast<std::size_t>(j * n + i)]);
      if (i == j) v += 2.0 * static_cast<double>(n);
      A[static_cast<std::size_t>(i * n + j)] = v;
    }
  base = A;
  reset();
}
void CholeskyProblem::reset() {
  A = base;
  std::fill(pdiag.begin(), pdiag.end(), 0.0);
}
double CholeskyProblem::flops() const {
  double n = static_cast<double>(N);
  return n * n * n / 3.0;
}
double CholeskyProblem::check() const {
  // Only the lower triangle plus p carries the result.
  double s = 0.0;
  for (std::int64_t i = 0; i < N; ++i)
    for (std::int64_t j = 0; j <= i; ++j)
      s += A[static_cast<std::size_t>(i * N + j)] * (j == i ? 0.0 : 1.0);
  return s + checksum(pdiag);
}

void choleskyOrig(CholeskyProblem& p) {
  for (std::int64_t i = 0; i < p.N; ++i) {
    double x = p.A[i * p.N + i];
    for (std::int64_t j = 0; j < i; ++j) {
      double a = p.A[i * p.N + j];
      x -= a * a;
    }
    p.pdiag[i] = 1.0 / std::sqrt(x);
    for (std::int64_t j = i + 1; j < p.N; ++j) {
      double acc = p.A[i * p.N + j];
      for (std::int64_t k = 0; k < i; ++k)
        acc -= p.A[j * p.N + k] * p.A[i * p.N + k];
      p.A[j * p.N + i] = acc * p.pdiag[i];
    }
  }
}

void choleskyPocc(CholeskyProblem& p, ThreadPool& pool) {
  // The column factorization's j loop is doall at each i.
  for (std::int64_t i = 0; i < p.N; ++i) {
    double x = p.A[i * p.N + i];
    for (std::int64_t j = 0; j < i; ++j) {
      double a = p.A[i * p.N + j];
      x -= a * a;
    }
    p.pdiag[i] = 1.0 / std::sqrt(x);
    runtime::parallelFor(pool, i + 1, p.N, [&](std::int64_t j) {
      double acc = p.A[i * p.N + j];
      for (std::int64_t k = 0; k < i; ++k)
        acc -= p.A[j * p.N + k] * p.A[i * p.N + k];
      p.A[j * p.N + i] = acc * p.pdiag[i];
    });
  }
}

void choleskyPolyast(CholeskyProblem& p, ThreadPool& pool) {
  // Same parallel structure plus blocked, stride-1 inner dot products.
  for (std::int64_t i = 0; i < p.N; ++i) {
    const double* __restrict ai = &p.A[i * p.N];
    double x = ai[i];
    for (std::int64_t j = 0; j < i; ++j) x -= ai[j] * ai[j];
    p.pdiag[i] = 1.0 / std::sqrt(x);
    runtime::parallelForBlocked(pool, i + 1, p.N, [&](std::int64_t lo,
                                                      std::int64_t hi) {
      for (std::int64_t j = lo; j < hi; ++j) {
        const double* __restrict aj = &p.A[j * p.N];
        double acc = ai[j];
        for (std::int64_t k = 0; k < i; ++k) acc -= aj[k] * ai[k];
        p.A[j * p.N + i] = acc * p.pdiag[i];
      }
    });
  }
}

// ========================= correlation ===================================

CorrelationProblem::CorrelationProblem(std::int64_t n, std::int64_t m)
    : N(n), M(m),
      data(static_cast<std::size_t>(n * m)),
      dataOrig(static_cast<std::size_t>(n * m)),
      mean(static_cast<std::size_t>(m)),
      stddev(static_cast<std::size_t>(m)),
      symmat(static_cast<std::size_t>(m * m)) {
  seed(dataOrig, "data");
  reset();
}
void CorrelationProblem::reset() {
  data = dataOrig;
  std::fill(mean.begin(), mean.end(), 0.0);
  std::fill(stddev.begin(), stddev.end(), 0.0);
  std::fill(symmat.begin(), symmat.end(), 0.0);
}
double CorrelationProblem::flops() const {
  double n = static_cast<double>(N), m = static_cast<double>(M);
  return m * m * n + 5.0 * m * n;
}
double CorrelationProblem::check() const { return checksum(symmat); }


void correlationOrig(CorrelationProblem& p) {
  const double eps = 0.1;
  double fn = static_cast<double>(p.N);
  for (std::int64_t j = 0; j < p.M; ++j) {
    double m = 0.0;
    for (std::int64_t i = 0; i < p.N; ++i) m += p.data[i * p.M + j];
    p.mean[j] = m / fn;
  }
  for (std::int64_t j = 0; j < p.M; ++j) {
    double s = 0.0;
    for (std::int64_t i = 0; i < p.N; ++i) {
      double d = p.data[i * p.M + j] - p.mean[j];
      s += d * d;
    }
    s = std::sqrt(s / fn);
    p.stddev[j] = s <= eps ? 1.0 : s;
  }
  double sq = std::sqrt(fn);
  for (std::int64_t i = 0; i < p.N; ++i)
    for (std::int64_t j = 0; j < p.M; ++j)
      p.data[i * p.M + j] =
          (p.data[i * p.M + j] - p.mean[j]) / (sq * p.stddev[j]);
  for (std::int64_t j1 = 0; j1 < p.M - 1; ++j1) {
    p.symmat[j1 * p.M + j1] = 1.0;
    for (std::int64_t j2 = j1 + 1; j2 < p.M; ++j2) {
      double acc = 0.0;
      for (std::int64_t i = 0; i < p.N; ++i)
        acc += p.data[i * p.M + j1] * p.data[i * p.M + j2];
      p.symmat[j1 * p.M + j2] = acc;
      p.symmat[j2 * p.M + j1] = acc;
    }
  }
  p.symmat[(p.M - 1) * p.M + (p.M - 1)] = 1.0;
}

void correlationPocc(CorrelationProblem& p, ThreadPool& pool) {
  // Doall-only: mean/stddev parallel over columns (column-walks of data),
  // symmat rows doall.
  const double eps = 0.1;
  double fn = static_cast<double>(p.N);
  runtime::parallelFor(pool, 0, p.M, [&](std::int64_t j) {
    double m = 0.0;
    for (std::int64_t i = 0; i < p.N; ++i) m += p.data[i * p.M + j];
    p.mean[j] = m / fn;
    double s = 0.0;
    for (std::int64_t i = 0; i < p.N; ++i) {
      double d = p.data[i * p.M + j] - p.mean[j];
      s += d * d;
    }
    s = std::sqrt(s / fn);
    p.stddev[j] = s <= eps ? 1.0 : s;
  });
  double sq = std::sqrt(fn);
  runtime::parallelFor(pool, 0, p.N, [&](std::int64_t i) {
    for (std::int64_t j = 0; j < p.M; ++j)
      p.data[i * p.M + j] =
          (p.data[i * p.M + j] - p.mean[j]) / (sq * p.stddev[j]);
  });
  runtime::parallelFor(pool, 0, p.M - 1, [&](std::int64_t j1) {
    p.symmat[j1 * p.M + j1] = 1.0;
    for (std::int64_t j2 = j1 + 1; j2 < p.M; ++j2) {
      double acc = 0.0;
      for (std::int64_t i = 0; i < p.N; ++i)
        acc += p.data[i * p.M + j1] * p.data[i * p.M + j2];
      p.symmat[j1 * p.M + j2] = acc;
      p.symmat[j2 * p.M + j1] = acc;
    }
  });
  p.symmat[(p.M - 1) * p.M + (p.M - 1)] = 1.0;
}

void correlationPolyast(CorrelationProblem& p, ThreadPool& pool) {
  // Row-wise passes over data (stride-1) with array reductions for the
  // column statistics; the symmat product is tiled (i outer streams rows).
  const double eps = 0.1;
  double fn = static_cast<double>(p.N);
  runtime::parallelReduce(
      pool, 0, p.N, p.mean.data(), static_cast<std::size_t>(p.M),
      [&](double* meanPriv, std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const double* __restrict d = &p.data[i * p.M];
          for (std::int64_t j = 0; j < p.M; ++j) meanPriv[j] += d[j];
        }
      });
  for (std::int64_t j = 0; j < p.M; ++j) p.mean[j] /= fn;
  runtime::parallelReduce(
      pool, 0, p.N, p.stddev.data(), static_cast<std::size_t>(p.M),
      [&](double* sdPriv, std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const double* __restrict d = &p.data[i * p.M];
          for (std::int64_t j = 0; j < p.M; ++j) {
            double dd = d[j] - p.mean[j];
            sdPriv[j] += dd * dd;
          }
        }
      });
  double sq = std::sqrt(fn);
  for (std::int64_t j = 0; j < p.M; ++j) {
    double s = std::sqrt(p.stddev[j] / fn);
    p.stddev[j] = s <= eps ? 1.0 : s;
  }
  runtime::parallelFor(pool, 0, p.N, [&](std::int64_t i) {
    double* __restrict d = &p.data[i * p.M];
    for (std::int64_t j = 0; j < p.M; ++j)
      d[j] = (d[j] - p.mean[j]) / (sq * p.stddev[j]);
  });
  // symmat = data^T data (upper triangle) via row-streaming reduction.
  runtime::parallelReduce(
      pool, 0, p.N, p.symmat.data(), p.symmat.size(),
      [&](double* smPriv, std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const double* __restrict d = &p.data[i * p.M];
          for (std::int64_t j1 = 0; j1 < p.M - 1; ++j1) {
            double dj1 = d[j1];
            for (std::int64_t j2 = j1 + 1; j2 < p.M; ++j2)
              smPriv[j1 * p.M + j2] += dj1 * d[j2];
          }
        }
      });
  for (std::int64_t j1 = 0; j1 < p.M; ++j1) {
    p.symmat[j1 * p.M + j1] = 1.0;
    for (std::int64_t j2 = j1 + 1; j2 < p.M; ++j2)
      p.symmat[j2 * p.M + j1] = p.symmat[j1 * p.M + j2];
  }
}

// ========================= covariance ====================================

CovarianceProblem::CovarianceProblem(std::int64_t n, std::int64_t m)
    : N(n), M(m),
      data(static_cast<std::size_t>(n * m)),
      dataOrig(static_cast<std::size_t>(n * m)),
      mean(static_cast<std::size_t>(m)),
      symmat(static_cast<std::size_t>(m * m)) {
  seed(dataOrig, "data");
  reset();
}
void CovarianceProblem::reset() {
  data = dataOrig;
  std::fill(mean.begin(), mean.end(), 0.0);
  std::fill(symmat.begin(), symmat.end(), 0.0);
}
double CovarianceProblem::flops() const {
  double n = static_cast<double>(N), m = static_cast<double>(M);
  return m * m * n + 3.0 * m * n;
}
double CovarianceProblem::check() const { return checksum(symmat); }

void covarianceOrig(CovarianceProblem& p) {
  double fn = static_cast<double>(p.N);
  for (std::int64_t j = 0; j < p.M; ++j) {
    double m = 0.0;
    for (std::int64_t i = 0; i < p.N; ++i) m += p.data[i * p.M + j];
    p.mean[j] = m / fn;
  }
  for (std::int64_t i = 0; i < p.N; ++i)
    for (std::int64_t j = 0; j < p.M; ++j) p.data[i * p.M + j] -= p.mean[j];
  for (std::int64_t j1 = 0; j1 < p.M; ++j1)
    for (std::int64_t j2 = j1; j2 < p.M; ++j2) {
      double acc = 0.0;
      for (std::int64_t i = 0; i < p.N; ++i)
        acc += p.data[i * p.M + j1] * p.data[i * p.M + j2];
      p.symmat[j1 * p.M + j2] = acc;
      p.symmat[j2 * p.M + j1] = acc;
    }
}

void covariancePocc(CovarianceProblem& p, ThreadPool& pool) {
  double fn = static_cast<double>(p.N);
  runtime::parallelFor(pool, 0, p.M, [&](std::int64_t j) {
    double m = 0.0;
    for (std::int64_t i = 0; i < p.N; ++i) m += p.data[i * p.M + j];
    p.mean[j] = m / fn;
  });
  runtime::parallelFor(pool, 0, p.N, [&](std::int64_t i) {
    for (std::int64_t j = 0; j < p.M; ++j) p.data[i * p.M + j] -= p.mean[j];
  });
  runtime::parallelFor(pool, 0, p.M, [&](std::int64_t j1) {
    for (std::int64_t j2 = j1; j2 < p.M; ++j2) {
      double acc = 0.0;
      for (std::int64_t i = 0; i < p.N; ++i)
        acc += p.data[i * p.M + j1] * p.data[i * p.M + j2];
      p.symmat[j1 * p.M + j2] = acc;
      p.symmat[j2 * p.M + j1] = acc;
    }
  });
}

void covariancePolyast(CovarianceProblem& p, ThreadPool& pool) {
  double fn = static_cast<double>(p.N);
  runtime::parallelReduce(
      pool, 0, p.N, p.mean.data(), static_cast<std::size_t>(p.M),
      [&](double* meanPriv, std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const double* __restrict d = &p.data[i * p.M];
          for (std::int64_t j = 0; j < p.M; ++j) meanPriv[j] += d[j];
        }
      });
  for (std::int64_t j = 0; j < p.M; ++j) p.mean[j] /= fn;
  runtime::parallelFor(pool, 0, p.N, [&](std::int64_t i) {
    double* __restrict d = &p.data[i * p.M];
    for (std::int64_t j = 0; j < p.M; ++j) d[j] -= p.mean[j];
  });
  runtime::parallelReduce(
      pool, 0, p.N, p.symmat.data(), p.symmat.size(),
      [&](double* smPriv, std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const double* __restrict d = &p.data[i * p.M];
          for (std::int64_t j1 = 0; j1 < p.M; ++j1) {
            double dj1 = d[j1];
            for (std::int64_t j2 = j1; j2 < p.M; ++j2)
              smPriv[j1 * p.M + j2] += dj1 * d[j2];
          }
        }
      });
  for (std::int64_t j1 = 0; j1 < p.M; ++j1)
    for (std::int64_t j2 = j1 + 1; j2 < p.M; ++j2)
      p.symmat[j2 * p.M + j1] = p.symmat[j1 * p.M + j2];
}

}  // namespace polyast::bench
