// Deterministic synthetic SCoP generator for compile-time stress
// benchmarking (bench_compile_scale) and tests.
//
// PolyBench tops out at depth-3 nests with a handful of statements; the
// compile-time hot paths (FM elimination over joint dependence spaces,
// the SCC-by-SCC selection search) only show their asymptotic behaviour
// beyond that. Three families scale the two axes independently:
//
//   deep   one chain of `size` nested loops with a statement pair at the
//          bottom — joint dependence spaces of 2*size iterators, the FM
//          core's worst axis.
//   wide   `size` separate 2-deep nests chained producer→consumer — the
//          all-pairs dependence scan and the fusion/selection structure
//          scale as size².
//   dense  `size` statements sharing one 2-deep nest, rotating through 3
//          shared arrays with shifted accesses — a dense dependence
//          graph (most statement pairs connected) driving large SCCs
//          through the selection search.
//
// Generation is a pure function of GenOptions: the same (family, size,
// seed, extent) produces byte-identical IR (ir::printProgram), which the
// determinism test pins. The PRNG (splitmix64) only picks small access
// shifts, so every program stays affine and every dependence is honest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ast.hpp"

namespace polyast::scopgen {

struct GenOptions {
  std::string family = "deep";  ///< deep | wide | dense
  /// Family scale: nest depth (deep) or statement count (wide/dense).
  int size = 6;
  std::uint64_t seed = 42;
  /// Default value of the extent parameter N.
  std::int64_t extent = 20;
};

/// The supported family names, in documentation order.
const std::vector<std::string>& families();

/// Human-readable provenance label, e.g. "deep(size=6,seed=42,extent=20)"
/// — recorded in the compile-profile artifact's "generator" field.
std::string label(const GenOptions& opt);

/// Builds the synthetic program. Throws polyast::Error on an unknown
/// family or a non-positive size.
ir::Program generate(const GenOptions& opt);

}  // namespace polyast::scopgen
