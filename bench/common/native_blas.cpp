#include "common/native_blas.hpp"

#include <algorithm>

#include "common/bench_common.hpp"

namespace polyast::bench {

namespace {
inline std::int64_t mn(std::int64_t a, std::int64_t b) {
  return a < b ? a : b;
}
}  // namespace

// ========================= gemm ==========================================

GemmProblem::GemmProblem(std::int64_t n)
    : NI(n), NJ(n), NK(n),
      C(static_cast<std::size_t>(n * n)),
      A(static_cast<std::size_t>(n * n)),
      B(static_cast<std::size_t>(n * n)) {
  seed(A, "A");
  seed(B, "B");
  reset();
}
void GemmProblem::reset() { seed(C, "C"); }
double GemmProblem::flops() const {
  return 2.0 * static_cast<double>(NI) * static_cast<double>(NJ) *
             static_cast<double>(NK) +
         static_cast<double>(NI) * static_cast<double>(NJ);
}
double GemmProblem::check() const { return checksum(C); }

void gemmOrig(GemmProblem& p) {
  // PolyBench reference: (i, j) with the k reduction innermost.
  for (std::int64_t i = 0; i < p.NI; ++i)
    for (std::int64_t j = 0; j < p.NJ; ++j) {
      double acc = p.C[i * p.NJ + j] * p.beta;
      for (std::int64_t k = 0; k < p.NK; ++k)
        acc += p.alpha * p.A[i * p.NK + k] * p.B[k * p.NJ + j];
      p.C[i * p.NJ + j] = acc;
    }
}

void gemmPocc(GemmProblem& p, ThreadPool& pool) {
  // smartfuse + rectangular tiling, original intra-tile order (i, j, k);
  // outer tile loop doall.
  runtime::parallelFor(pool, 0, (p.NI + kTile - 1) / kTile, [&](std::int64_t
                                                                    it) {
    std::int64_t i0 = it * kTile, i1 = mn(p.NI, i0 + kTile);
    for (std::int64_t i = i0; i < i1; ++i)
      for (std::int64_t j = 0; j < p.NJ; ++j) p.C[i * p.NJ + j] *= p.beta;
    for (std::int64_t jt = 0; jt < p.NJ; jt += kTile)
      for (std::int64_t kt = 0; kt < p.NK; kt += kTile)
        for (std::int64_t i = i0; i < i1; ++i)
          for (std::int64_t j = jt; j < mn(p.NJ, jt + kTile); ++j) {
            double acc = p.C[i * p.NJ + j];
            for (std::int64_t k = kt; k < mn(p.NK, kt + kTile); ++k)
              acc += p.alpha * p.A[i * p.NK + k] * p.B[k * p.NJ + j];
            p.C[i * p.NJ + j] = acc;
          }
  });
}

void gemmPoccVect(GemmProblem& p, ThreadPool& pool) {
  // pocc + intra-tile permutation (i, k, j): stride-1 j innermost.
  runtime::parallelFor(pool, 0, (p.NI + kTile - 1) / kTile, [&](std::int64_t
                                                                    it) {
    std::int64_t i0 = it * kTile, i1 = mn(p.NI, i0 + kTile);
    for (std::int64_t i = i0; i < i1; ++i)
      for (std::int64_t j = 0; j < p.NJ; ++j) p.C[i * p.NJ + j] *= p.beta;
    for (std::int64_t jt = 0; jt < p.NJ; jt += kTile)
      for (std::int64_t kt = 0; kt < p.NK; kt += kTile)
        for (std::int64_t i = i0; i < i1; ++i)
          for (std::int64_t k = kt; k < mn(p.NK, kt + kTile); ++k) {
            double a = p.alpha * p.A[i * p.NK + k];
            const double* __restrict b = &p.B[k * p.NJ];
            double* __restrict c = &p.C[i * p.NJ];
            for (std::int64_t j = jt; j < mn(p.NJ, jt + kTile); ++j)
              c[j] += a * b[j];
          }
  });
}

void gemmPolyast(GemmProblem& p, ThreadPool& pool) {
  // DL order (i, k, j), init distributed, (k, j) band tiled, 2x2 register
  // tile on (k, j), doall over i.
  runtime::parallelFor(pool, 0, p.NI, [&](std::int64_t i) {
    double* __restrict c = &p.C[i * p.NJ];
    for (std::int64_t j = 0; j < p.NJ; ++j) c[j] *= p.beta;
    for (std::int64_t kt = 0; kt < p.NK; kt += kTile)
      for (std::int64_t jt = 0; jt < p.NJ; jt += kTile) {
        std::int64_t kHi = mn(p.NK, kt + kTile), jHi = mn(p.NJ, jt + kTile);
        std::int64_t k = kt;
        for (; k + 1 < kHi; k += 2) {
          double a0 = p.alpha * p.A[i * p.NK + k];
          double a1 = p.alpha * p.A[i * p.NK + k + 1];
          const double* __restrict b0 = &p.B[k * p.NJ];
          const double* __restrict b1 = &p.B[(k + 1) * p.NJ];
          std::int64_t j = jt;
          for (; j + 1 < jHi; j += 2) {
            c[j] += a0 * b0[j] + a1 * b1[j];
            c[j + 1] += a0 * b0[j + 1] + a1 * b1[j + 1];
          }
          for (; j < jHi; ++j) c[j] += a0 * b0[j] + a1 * b1[j];
        }
        for (; k < kHi; ++k) {
          double a0 = p.alpha * p.A[i * p.NK + k];
          const double* __restrict b0 = &p.B[k * p.NJ];
          for (std::int64_t j = jt; j < jHi; ++j) c[j] += a0 * b0[j];
        }
      }
  });
}

// ========================= 2mm ===========================================

Mm2Problem::Mm2Problem(std::int64_t n)
    : N(n),
      tmp(static_cast<std::size_t>(n * n)),
      A(static_cast<std::size_t>(n * n)),
      B(static_cast<std::size_t>(n * n)),
      C(static_cast<std::size_t>(n * n)),
      D(static_cast<std::size_t>(n * n)) {
  seed(A, "A");
  seed(B, "B");
  seed(C, "C");
  reset();
}
void Mm2Problem::reset() {
  seed(D, "D");
  std::fill(tmp.begin(), tmp.end(), 0.0);
}
double Mm2Problem::flops() const {
  double n = static_cast<double>(N);
  return 4.0 * n * n * n + 2.0 * n * n;
}
double Mm2Problem::check() const { return checksum(D); }

void mm2Orig(Mm2Problem& p) {
  std::int64_t N = p.N;
  for (std::int64_t i = 0; i < N; ++i)
    for (std::int64_t j = 0; j < N; ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < N; ++k)
        acc += p.alpha * p.A[i * N + k] * p.B[k * N + j];
      p.tmp[i * N + j] = acc;
    }
  for (std::int64_t i = 0; i < N; ++i)
    for (std::int64_t j = 0; j < N; ++j) {
      double acc = p.D[i * N + j] * p.beta;
      for (std::int64_t k = 0; k < N; ++k)
        acc += p.tmp[i * N + k] * p.C[k * N + j];
      p.D[i * N + j] = acc;
    }
}

void mm2Pocc(Mm2Problem& p, ThreadPool& pool) {
  // smartfuse: the two products stay separate nests (no same-level reuse),
  // each tiled with the original (i, j, k) intra-tile order.
  std::int64_t N = p.N;
  auto matmulOrigOrder = [&](double* __restrict out,
                             const double* __restrict a,
                             const double* __restrict b, double scaleIn,
                             double scaleProd) {
    runtime::parallelFor(pool, 0, (N + kTile - 1) / kTile, [&](std::int64_t
                                                                   it) {
      std::int64_t i0 = it * kTile, i1 = mn(N, i0 + kTile);
      for (std::int64_t i = i0; i < i1; ++i)
        for (std::int64_t j = 0; j < N; ++j) out[i * N + j] *= scaleIn;
      for (std::int64_t jt = 0; jt < N; jt += kTile)
        for (std::int64_t kt = 0; kt < N; kt += kTile)
          for (std::int64_t i = i0; i < i1; ++i)
            for (std::int64_t j = jt; j < mn(N, jt + kTile); ++j) {
              double acc = out[i * N + j];
              for (std::int64_t k = kt; k < mn(N, kt + kTile); ++k)
                acc += scaleProd * a[i * N + k] * b[k * N + j];
              out[i * N + j] = acc;
            }
    });
  };
  std::fill(p.tmp.begin(), p.tmp.end(), 0.0);
  matmulOrigOrder(p.tmp.data(), p.A.data(), p.B.data(), 0.0, p.alpha);
  matmulOrigOrder(p.D.data(), p.tmp.data(), p.C.data(), p.beta, 1.0);
}

void mm2PoccMaxfuse(Mm2Problem& p, ThreadPool& pool) {
  // Fig. 2: maximal fusion interleaves the consumer U along the anti-
  // diagonal c2 = j + k, producing the triangular loop and the complex
  // tmp[c1][c2-c7] access the paper highlights as vectorization-hostile.
  std::int64_t N = p.N;
  runtime::parallelFor(pool, 0, N, [&](std::int64_t c1) {
    for (std::int64_t c2 = 0; c2 < N; ++c2) {
      p.D[c1 * N + c2] *= p.beta;
      double acc = 0.0;
      for (std::int64_t c7 = 0; c7 < N; ++c7)
        acc += p.alpha * p.A[c1 * N + c7] * p.B[c7 * N + c2];
      p.tmp[c1 * N + c2] = acc;
      for (std::int64_t c7 = 0; c7 <= c2; ++c7)
        p.D[c1 * N + c7] += p.tmp[c1 * N + (c2 - c7)] * p.C[(c2 - c7) * N + c7];
    }
    for (std::int64_t c2 = N; c2 <= 2 * N - 2; ++c2)
      for (std::int64_t c7 = c2 - N + 1; c7 < N; ++c7)
        p.D[c1 * N + c7] += p.tmp[c1 * N + (c2 - c7)] * p.C[(c2 - c7) * N + c7];
  });
}

void mm2PoccVect(Mm2Problem& p, ThreadPool& pool) {
  // pocc + intra-tile (i, k, j) permutation in both products.
  std::int64_t N = p.N;
  auto matmulIkj = [&](double* __restrict out, const double* __restrict a,
                       const double* __restrict b, double scaleIn,
                       double scaleProd) {
    runtime::parallelFor(pool, 0, (N + kTile - 1) / kTile, [&](std::int64_t
                                                                   it) {
      std::int64_t i0 = it * kTile, i1 = mn(N, i0 + kTile);
      for (std::int64_t i = i0; i < i1; ++i)
        for (std::int64_t j = 0; j < N; ++j) out[i * N + j] *= scaleIn;
      for (std::int64_t jt = 0; jt < N; jt += kTile)
        for (std::int64_t kt = 0; kt < N; kt += kTile)
          for (std::int64_t i = i0; i < i1; ++i)
            for (std::int64_t k = kt; k < mn(N, kt + kTile); ++k) {
              double s = scaleProd * a[i * N + k];
              for (std::int64_t j = jt; j < mn(N, jt + kTile); ++j)
                out[i * N + j] += s * b[k * N + j];
            }
    });
  };
  std::fill(p.tmp.begin(), p.tmp.end(), 0.0);
  matmulIkj(p.tmp.data(), p.A.data(), p.B.data(), 0.0, p.alpha);
  matmulIkj(p.D.data(), p.tmp.data(), p.C.data(), p.beta, 1.0);
}

void mm2Polyast(Mm2Problem& p, ThreadPool& pool) {
  // Fig. 3: everything fused under the outer i loop; per i-row the tmp row
  // is produced (i, k, j) and immediately consumed — inter-tile locality on
  // tmp — with 2x2 register tiling inside.
  std::int64_t N = p.N;
  runtime::parallelFor(pool, 0, N, [&](std::int64_t i) {
    double* __restrict trow = &p.tmp[i * N];
    double* __restrict drow = &p.D[i * N];
    for (std::int64_t j = 0; j < N; ++j) trow[j] = 0.0;
    for (std::int64_t kt = 0; kt < N; kt += kTile)
      for (std::int64_t jt = 0; jt < N; jt += kTile) {
        std::int64_t kHi = mn(N, kt + kTile), jHi = mn(N, jt + kTile);
        for (std::int64_t k = kt; k < kHi; ++k) {
          double a0 = p.alpha * p.A[i * N + k];
          const double* __restrict b0 = &p.B[k * N];
          for (std::int64_t j = jt; j < jHi; ++j) trow[j] += a0 * b0[j];
        }
      }
    for (std::int64_t j = 0; j < N; ++j) drow[j] *= p.beta;
    for (std::int64_t kt = 0; kt < N; kt += kTile)
      for (std::int64_t jt = 0; jt < N; jt += kTile) {
        std::int64_t kHi = mn(N, kt + kTile), jHi = mn(N, jt + kTile);
        std::int64_t k = kt;
        for (; k + 1 < kHi; k += 2) {
          double t0 = trow[k], t1 = trow[k + 1];
          const double* __restrict c0 = &p.C[k * N];
          const double* __restrict c1 = &p.C[(k + 1) * N];
          std::int64_t j = jt;
          for (; j + 1 < jHi; j += 2) {
            drow[j] += t0 * c0[j] + t1 * c1[j];
            drow[j + 1] += t0 * c0[j + 1] + t1 * c1[j + 1];
          }
          for (; j < jHi; ++j) drow[j] += t0 * c0[j] + t1 * c1[j];
        }
        for (; k < kHi; ++k) {
          double t0 = trow[k];
          const double* __restrict c0 = &p.C[k * N];
          for (std::int64_t j = jt; j < jHi; ++j) drow[j] += t0 * c0[j];
        }
      }
  });
}

// ========================= 3mm ===========================================

Mm3Problem::Mm3Problem(std::int64_t n)
    : N(n),
      E(static_cast<std::size_t>(n * n)),
      A(static_cast<std::size_t>(n * n)),
      B(static_cast<std::size_t>(n * n)),
      F(static_cast<std::size_t>(n * n)),
      C(static_cast<std::size_t>(n * n)),
      D(static_cast<std::size_t>(n * n)),
      G(static_cast<std::size_t>(n * n)) {
  seed(A, "A");
  seed(B, "B");
  seed(C, "C");
  seed(D, "D");
  reset();
}
void Mm3Problem::reset() {
  std::fill(E.begin(), E.end(), 0.0);
  std::fill(F.begin(), F.end(), 0.0);
  std::fill(G.begin(), G.end(), 0.0);
}
double Mm3Problem::flops() const {
  double n = static_cast<double>(N);
  return 6.0 * n * n * n;
}
double Mm3Problem::check() const { return checksum(G); }

namespace {
void mmSetIjk(std::int64_t N, double* out, const double* a, const double* b) {
  for (std::int64_t i = 0; i < N; ++i)
    for (std::int64_t j = 0; j < N; ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < N; ++k) acc += a[i * N + k] * b[k * N + j];
      out[i * N + j] = acc;
    }
}
void mmTiledIjk(std::int64_t N, double* out, const double* a, const double* b,
                ThreadPool& pool) {
  runtime::parallelFor(pool, 0, (N + kTile - 1) / kTile, [&](std::int64_t it) {
    std::int64_t i0 = it * kTile, i1 = mn(N, i0 + kTile);
    for (std::int64_t i = i0; i < i1; ++i)
      for (std::int64_t j = 0; j < N; ++j) out[i * N + j] = 0.0;
    for (std::int64_t jt = 0; jt < N; jt += kTile)
      for (std::int64_t kt = 0; kt < N; kt += kTile)
        for (std::int64_t i = i0; i < i1; ++i)
          for (std::int64_t j = jt; j < mn(N, jt + kTile); ++j) {
            double acc = out[i * N + j];
            for (std::int64_t k = kt; k < mn(N, kt + kTile); ++k)
              acc += a[i * N + k] * b[k * N + j];
            out[i * N + j] = acc;
          }
  });
}
void mmTiledIkj(std::int64_t N, double* out, const double* a, const double* b,
                ThreadPool& pool) {
  runtime::parallelFor(pool, 0, (N + kTile - 1) / kTile, [&](std::int64_t it) {
    std::int64_t i0 = it * kTile, i1 = mn(N, i0 + kTile);
    for (std::int64_t i = i0; i < i1; ++i)
      for (std::int64_t j = 0; j < N; ++j) out[i * N + j] = 0.0;
    for (std::int64_t jt = 0; jt < N; jt += kTile)
      for (std::int64_t kt = 0; kt < N; kt += kTile)
        for (std::int64_t i = i0; i < i1; ++i)
          for (std::int64_t k = kt; k < mn(N, kt + kTile); ++k) {
            double s = a[i * N + k];
            for (std::int64_t j = jt; j < mn(N, jt + kTile); ++j)
              out[i * N + j] += s * b[k * N + j];
          }
  });
}
/// polyast per-row product with 2x2 register tile (out row must be zeroed).
void mmRowPolyast(std::int64_t N, double* __restrict outRow,
                  const double* __restrict aRow, const double* b) {
  for (std::int64_t kt = 0; kt < N; kt += kTile)
    for (std::int64_t jt = 0; jt < N; jt += kTile) {
      std::int64_t kHi = mn(N, kt + kTile), jHi = mn(N, jt + kTile);
      std::int64_t k = kt;
      for (; k + 1 < kHi; k += 2) {
        double a0 = aRow[k], a1 = aRow[k + 1];
        const double* __restrict b0 = &b[k * N];
        const double* __restrict b1 = &b[(k + 1) * N];
        std::int64_t j = jt;
        for (; j + 1 < jHi; j += 2) {
          outRow[j] += a0 * b0[j] + a1 * b1[j];
          outRow[j + 1] += a0 * b0[j + 1] + a1 * b1[j + 1];
        }
        for (; j < jHi; ++j) outRow[j] += a0 * b0[j] + a1 * b1[j];
      }
      for (; k < kHi; ++k) {
        double a0 = aRow[k];
        const double* __restrict b0 = &b[k * N];
        for (std::int64_t j = jt; j < jHi; ++j) outRow[j] += a0 * b0[j];
      }
    }
}
}  // namespace

void mm3Orig(Mm3Problem& p) {
  mmSetIjk(p.N, p.E.data(), p.A.data(), p.B.data());
  mmSetIjk(p.N, p.F.data(), p.C.data(), p.D.data());
  mmSetIjk(p.N, p.G.data(), p.E.data(), p.F.data());
}
void mm3Pocc(Mm3Problem& p, ThreadPool& pool) {
  mmTiledIjk(p.N, p.E.data(), p.A.data(), p.B.data(), pool);
  mmTiledIjk(p.N, p.F.data(), p.C.data(), p.D.data(), pool);
  mmTiledIjk(p.N, p.G.data(), p.E.data(), p.F.data(), pool);
}
void mm3PoccVect(Mm3Problem& p, ThreadPool& pool) {
  mmTiledIkj(p.N, p.E.data(), p.A.data(), p.B.data(), pool);
  mmTiledIkj(p.N, p.F.data(), p.C.data(), p.D.data(), pool);
  mmTiledIkj(p.N, p.G.data(), p.E.data(), p.F.data(), pool);
}
void mm3Polyast(Mm3Problem& p, ThreadPool& pool) {
  // F first (whole), then E and G fused per i-row: G's row i consumes E's
  // row i immediately (the DL flow's inter-statement locality).
  std::int64_t N = p.N;
  mmTiledIkj(N, p.F.data(), p.C.data(), p.D.data(), pool);
  runtime::parallelFor(pool, 0, N, [&](std::int64_t i) {
    double* __restrict e = &p.E[i * N];
    double* __restrict g = &p.G[i * N];
    for (std::int64_t j = 0; j < N; ++j) e[j] = 0.0;
    mmRowPolyast(N, e, &p.A[i * N], p.B.data());
    for (std::int64_t j = 0; j < N; ++j) g[j] = 0.0;
    mmRowPolyast(N, g, e, p.F.data());
  });
}

// ========================= syrk ==========================================

SyrkProblem::SyrkProblem(std::int64_t n, std::int64_t m)
    : N(n), M(m),
      C(static_cast<std::size_t>(n * n)),
      A(static_cast<std::size_t>(n * m)) {
  seed(A, "A");
  reset();
}
void SyrkProblem::reset() { seed(C, "C"); }
double SyrkProblem::flops() const {
  double n = static_cast<double>(N), m = static_cast<double>(M);
  return 3.0 * n * n * m + n * n;
}
double SyrkProblem::check() const { return checksum(C); }

void syrkOrig(SyrkProblem& p) {
  for (std::int64_t i = 0; i < p.N; ++i)
    for (std::int64_t j = 0; j < p.N; ++j) p.C[i * p.N + j] *= p.beta;
  for (std::int64_t i = 0; i < p.N; ++i)
    for (std::int64_t j = 0; j < p.N; ++j)
      for (std::int64_t k = 0; k < p.M; ++k)
        p.C[i * p.N + j] += p.alpha * p.A[i * p.M + k] * p.A[j * p.M + k];
}

void syrkPocc(SyrkProblem& p, ThreadPool& pool) {
  runtime::parallelFor(pool, 0, (p.N + kTile - 1) / kTile, [&](std::int64_t
                                                                   it) {
    std::int64_t i0 = it * kTile, i1 = mn(p.N, i0 + kTile);
    for (std::int64_t i = i0; i < i1; ++i)
      for (std::int64_t j = 0; j < p.N; ++j) p.C[i * p.N + j] *= p.beta;
    for (std::int64_t jt = 0; jt < p.N; jt += kTile)
      for (std::int64_t kt = 0; kt < p.M; kt += kTile)
        for (std::int64_t i = i0; i < i1; ++i)
          for (std::int64_t j = jt; j < mn(p.N, jt + kTile); ++j) {
            double acc = p.C[i * p.N + j];
            for (std::int64_t k = kt; k < mn(p.M, kt + kTile); ++k)
              acc += p.alpha * p.A[i * p.M + k] * p.A[j * p.M + k];
            p.C[i * p.N + j] = acc;
          }
  });
}

void syrkPoccVect(SyrkProblem& p, ThreadPool& pool) {
  // Both A accesses are k-contiguous: the inner dot product stays, and the
  // vect permutation keeps (i, j, k) — equivalent to pocc here.
  syrkPocc(p, pool);
}

void syrkPolyast(SyrkProblem& p, ThreadPool& pool) {
  // (i, j) tiles doall, dot-product kernel with 2x unroll on j so A[j] rows
  // are reused from registers/L1.
  runtime::parallelFor(pool, 0, p.N, [&](std::int64_t i) {
    double* __restrict c = &p.C[i * p.N];
    const double* __restrict ai = &p.A[i * p.M];
    for (std::int64_t j = 0; j < p.N; ++j) c[j] *= p.beta;
    for (std::int64_t jt = 0; jt < p.N; jt += kTile)
      for (std::int64_t kt = 0; kt < p.M; kt += kTile) {
        std::int64_t jHi = mn(p.N, jt + kTile), kHi = mn(p.M, kt + kTile);
        std::int64_t j = jt;
        for (; j + 1 < jHi; j += 2) {
          const double* __restrict aj0 = &p.A[j * p.M];
          const double* __restrict aj1 = &p.A[(j + 1) * p.M];
          double s0 = 0.0, s1 = 0.0;
          for (std::int64_t k = kt; k < kHi; ++k) {
            s0 += ai[k] * aj0[k];
            s1 += ai[k] * aj1[k];
          }
          c[j] += p.alpha * s0;
          c[j + 1] += p.alpha * s1;
        }
        for (; j < jHi; ++j) {
          const double* __restrict aj = &p.A[j * p.M];
          double s = 0.0;
          for (std::int64_t k = kt; k < kHi; ++k) s += ai[k] * aj[k];
          c[j] += p.alpha * s;
        }
      }
  });
}

// ========================= syr2k =========================================

Syr2kProblem::Syr2kProblem(std::int64_t n, std::int64_t m)
    : N(n), M(m),
      C(static_cast<std::size_t>(n * n)),
      A(static_cast<std::size_t>(n * m)),
      B(static_cast<std::size_t>(n * m)) {
  seed(A, "A");
  seed(B, "B");
  reset();
}
void Syr2kProblem::reset() { seed(C, "C"); }
double Syr2kProblem::flops() const {
  double n = static_cast<double>(N), m = static_cast<double>(M);
  return 6.0 * n * n * m + n * n;
}
double Syr2kProblem::check() const { return checksum(C); }

void syr2kOrig(Syr2kProblem& p) {
  for (std::int64_t i = 0; i < p.N; ++i)
    for (std::int64_t j = 0; j < p.N; ++j) p.C[i * p.N + j] *= p.beta;
  for (std::int64_t i = 0; i < p.N; ++i)
    for (std::int64_t j = 0; j < p.N; ++j)
      for (std::int64_t k = 0; k < p.M; ++k)
        p.C[i * p.N + j] += p.alpha * p.A[i * p.M + k] * p.B[j * p.M + k] +
                            p.alpha * p.B[i * p.M + k] * p.A[j * p.M + k];
}

void syr2kPocc(Syr2kProblem& p, ThreadPool& pool) {
  runtime::parallelFor(pool, 0, (p.N + kTile - 1) / kTile, [&](std::int64_t
                                                                   it) {
    std::int64_t i0 = it * kTile, i1 = mn(p.N, i0 + kTile);
    for (std::int64_t i = i0; i < i1; ++i)
      for (std::int64_t j = 0; j < p.N; ++j) p.C[i * p.N + j] *= p.beta;
    for (std::int64_t jt = 0; jt < p.N; jt += kTile)
      for (std::int64_t kt = 0; kt < p.M; kt += kTile)
        for (std::int64_t i = i0; i < i1; ++i)
          for (std::int64_t j = jt; j < mn(p.N, jt + kTile); ++j) {
            double acc = p.C[i * p.N + j];
            for (std::int64_t k = kt; k < mn(p.M, kt + kTile); ++k)
              acc += p.alpha * p.A[i * p.M + k] * p.B[j * p.M + k] +
                     p.alpha * p.B[i * p.M + k] * p.A[j * p.M + k];
            p.C[i * p.N + j] = acc;
          }
  });
}

void syr2kPoccVect(Syr2kProblem& p, ThreadPool& pool) { syr2kPocc(p, pool); }

void syr2kPolyast(Syr2kProblem& p, ThreadPool& pool) {
  runtime::parallelFor(pool, 0, p.N, [&](std::int64_t i) {
    double* __restrict c = &p.C[i * p.N];
    const double* __restrict ai = &p.A[i * p.M];
    const double* __restrict bi = &p.B[i * p.M];
    for (std::int64_t j = 0; j < p.N; ++j) c[j] *= p.beta;
    for (std::int64_t jt = 0; jt < p.N; jt += kTile)
      for (std::int64_t kt = 0; kt < p.M; kt += kTile) {
        std::int64_t jHi = mn(p.N, jt + kTile), kHi = mn(p.M, kt + kTile);
        for (std::int64_t j = jt; j < jHi; ++j) {
          const double* __restrict aj = &p.A[j * p.M];
          const double* __restrict bj = &p.B[j * p.M];
          double s = 0.0;
          for (std::int64_t k = kt; k < kHi; ++k)
            s += ai[k] * bj[k] + bi[k] * aj[k];
          c[j] += p.alpha * s;
        }
      }
  });
}

// ========================= doitgen =======================================

DoitgenProblem::DoitgenProblem(std::int64_t r, std::int64_t q, std::int64_t pp)
    : NR(r), NQ(q), NP(pp),
      A(static_cast<std::size_t>(r * q * pp)),
      sum(static_cast<std::size_t>(pp)),
      C4(static_cast<std::size_t>(pp * pp)) {
  seed(C4, "C4");
  reset();
}
void DoitgenProblem::reset() { seed(A, "A"); }
double DoitgenProblem::flops() const {
  return 2.0 * static_cast<double>(NR) * static_cast<double>(NQ) *
         static_cast<double>(NP) * static_cast<double>(NP);
}
double DoitgenProblem::check() const { return checksum(A); }

void doitgenOrig(DoitgenProblem& p) {
  std::vector<double> sum(static_cast<std::size_t>(p.NP));
  for (std::int64_t r = 0; r < p.NR; ++r)
    for (std::int64_t q = 0; q < p.NQ; ++q) {
      double* arow = &p.A[(r * p.NQ + q) * p.NP];
      for (std::int64_t j = 0; j < p.NP; ++j) {
        double acc = 0.0;
        for (std::int64_t s = 0; s < p.NP; ++s)
          acc += arow[s] * p.C4[s * p.NP + j];
        sum[static_cast<std::size_t>(j)] = acc;
      }
      for (std::int64_t j = 0; j < p.NP; ++j)
        arow[j] = sum[static_cast<std::size_t>(j)];
    }
}

void doitgenPocc(DoitgenProblem& p, ThreadPool& pool) {
  // Doall over r with per-thread sum buffers, original (p, s) order.
  runtime::parallelFor(pool, 0, p.NR, [&](std::int64_t r) {
    std::vector<double> sum(static_cast<std::size_t>(p.NP));
    for (std::int64_t q = 0; q < p.NQ; ++q) {
      double* arow = &p.A[(r * p.NQ + q) * p.NP];
      for (std::int64_t j = 0; j < p.NP; ++j) {
        double acc = 0.0;
        for (std::int64_t s = 0; s < p.NP; ++s)
          acc += arow[s] * p.C4[s * p.NP + j];
        sum[static_cast<std::size_t>(j)] = acc;
      }
      for (std::int64_t j = 0; j < p.NP; ++j)
        arow[j] = sum[static_cast<std::size_t>(j)];
    }
  });
}

void doitgenPolyast(DoitgenProblem& p, ThreadPool& pool) {
  // DL order: (s, j) — C4 rows stream with stride-1 j, sum kept hot.
  runtime::parallelFor(pool, 0, p.NR, [&](std::int64_t r) {
    std::vector<double> sum(static_cast<std::size_t>(p.NP));
    for (std::int64_t q = 0; q < p.NQ; ++q) {
      double* __restrict arow = &p.A[(r * p.NQ + q) * p.NP];
      double* __restrict su = sum.data();
      for (std::int64_t j = 0; j < p.NP; ++j) su[j] = 0.0;
      for (std::int64_t s = 0; s < p.NP; ++s) {
        double a = arow[s];
        const double* __restrict c4 = &p.C4[s * p.NP];
        for (std::int64_t j = 0; j < p.NP; ++j) su[j] += a * c4[j];
      }
      for (std::int64_t j = 0; j < p.NP; ++j) arow[j] = su[j];
    }
  });
}

// ========================= gesummv =======================================

GesummvProblem::GesummvProblem(std::int64_t n)
    : N(n),
      A(static_cast<std::size_t>(n * n)),
      B(static_cast<std::size_t>(n * n)),
      x(static_cast<std::size_t>(n)),
      y(static_cast<std::size_t>(n)),
      tmp(static_cast<std::size_t>(n)) {
  seed(A, "A");
  seed(B, "B");
  seed(x, "x");
  reset();
}
void GesummvProblem::reset() {
  std::fill(y.begin(), y.end(), 0.0);
  std::fill(tmp.begin(), tmp.end(), 0.0);
}
double GesummvProblem::flops() const {
  double n = static_cast<double>(N);
  return 4.0 * n * n + 3.0 * n;
}
double GesummvProblem::check() const { return checksum(y); }

void gesummvOrig(GesummvProblem& p) {
  for (std::int64_t i = 0; i < p.N; ++i) {
    double t = 0.0, yy = 0.0;
    for (std::int64_t j = 0; j < p.N; ++j) {
      t += p.A[i * p.N + j] * p.x[j];
      yy += p.B[i * p.N + j] * p.x[j];
    }
    p.tmp[i] = t;
    p.y[i] = p.alpha * t + p.beta * yy;
  }
}

void gesummvPocc(GesummvProblem& p, ThreadPool& pool) {
  runtime::parallelFor(pool, 0, p.N, [&](std::int64_t i) {
    double t = 0.0, yy = 0.0;
    for (std::int64_t j = 0; j < p.N; ++j) {
      t += p.A[i * p.N + j] * p.x[j];
      yy += p.B[i * p.N + j] * p.x[j];
    }
    p.tmp[i] = t;
    p.y[i] = p.alpha * t + p.beta * yy;
  });
}

void gesummvPolyast(GesummvProblem& p, ThreadPool& pool) {
  // Same structure (gesummv is already fused and stride-1); blocked doall
  // amortizes scheduling.
  runtime::parallelForBlocked(pool, 0, p.N, [&](std::int64_t lo,
                                                std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const double* __restrict a = &p.A[i * p.N];
      const double* __restrict b = &p.B[i * p.N];
      const double* __restrict xv = p.x.data();
      double t = 0.0, yy = 0.0;
      for (std::int64_t j = 0; j < p.N; ++j) {
        t += a[j] * xv[j];
        yy += b[j] * xv[j];
      }
      p.tmp[i] = t;
      p.y[i] = p.alpha * t + p.beta * yy;
    }
  });
}

// ========================= fdtd-apml =====================================

FdtdApmlProblem::FdtdApmlProblem(std::int64_t cz, std::int64_t cym,
                                 std::int64_t cxm)
    : CZ(cz), CYM(cym), CXM(cxm) {
  auto sz = [&](std::int64_t a, std::int64_t b, std::int64_t c) {
    return static_cast<std::size_t>(a * b * c);
  };
  Ex.resize(sz(CZ, CYM + 1, CXM + 1));
  Ey.resize(sz(CZ, CYM + 1, CXM + 1));
  Hz.resize(sz(CZ, CYM + 1, CXM + 1));
  Bza.resize(sz(CZ, CYM + 1, CXM + 1));
  Ry.resize(static_cast<std::size_t>(CZ * (CYM + 1)));
  Ax.resize(static_cast<std::size_t>(CZ * (CXM + 1)));
  clf.resize(static_cast<std::size_t>(CZ * (CYM + 1)));
  tmp.resize(static_cast<std::size_t>(CZ * (CYM + 1)));
  cymh.resize(static_cast<std::size_t>(CYM + 1));
  cyph.resize(static_cast<std::size_t>(CYM + 1));
  cxmh.resize(static_cast<std::size_t>(CXM + 1));
  cxph.resize(static_cast<std::size_t>(CXM + 1));
  czm.resize(static_cast<std::size_t>(CZ));
  czp.resize(static_cast<std::size_t>(CZ));
  seed(Ex, "Ex");
  seed(Ey, "Ey");
  seed(Ry, "Ry");
  seed(Ax, "Ax");
  seed(cymh, "cymh");
  seed(cyph, "cyph");
  seed(cxmh, "cxmh");
  seed(cxph, "cxph");
  seed(czm, "czm");
  seed(czp, "czp");
  reset();
}
void FdtdApmlProblem::reset() {
  seed(Hz, "Hz");
  seed(Bza, "Bza");
}
double FdtdApmlProblem::flops() const {
  return 25.0 * static_cast<double>(CZ) * static_cast<double>(CYM) *
         static_cast<double>(CXM);
}
double FdtdApmlProblem::check() const {
  return checksum(Hz) + checksum(Bza);
}

namespace {
/// One (iz, iy) row of the APML update (interior + boundaries).
void apmlRow(FdtdApmlProblem& p, std::int64_t iz, std::int64_t iy) {
  std::int64_t W = p.CXM + 1;
  std::int64_t rowBase = (iz * (p.CYM + 1) + iy) * W;
  std::int64_t rowUp = (iz * (p.CYM + 1) + iy + 1) * W;
  std::int64_t rowCym = (iz * (p.CYM + 1) + p.CYM) * W;
  double clf, tmp;
  for (std::int64_t ix = 0; ix < p.CXM; ++ix) {
    clf = p.Ex[rowBase + ix] - p.Ex[rowUp + ix] + p.Ey[rowBase + ix + 1] -
          p.Ey[rowBase + ix];
    tmp = (p.cymh[iy] / p.cyph[iy]) * p.Bza[rowBase + ix] -
          (p.ch / p.cyph[iy]) * clf;
    p.Hz[rowBase + ix] =
        (p.cxmh[ix] / p.cxph[ix]) * p.Hz[rowBase + ix] +
        (p.mui * p.czp[iz] / p.cxph[ix]) * tmp -
        (p.mui * p.czm[iz] / p.cxph[ix]) * p.Bza[rowBase + ix];
    p.Bza[rowBase + ix] = tmp;
  }
  clf = p.Ex[rowBase + p.CXM] - p.Ex[rowUp + p.CXM] +
        p.Ry[iz * (p.CYM + 1) + iy] - p.Ey[rowBase + p.CXM];
  tmp = (p.cymh[iy] / p.cyph[iy]) * p.Bza[rowBase + p.CXM] -
        (p.ch / p.cyph[iy]) * clf;
  p.Hz[rowBase + p.CXM] =
      (p.cxmh[p.CXM] / p.cxph[p.CXM]) * p.Hz[rowBase + p.CXM] +
      (p.mui * p.czp[iz] / p.cxph[p.CXM]) * tmp -
      (p.mui * p.czm[iz] / p.cxph[p.CXM]) * p.Bza[rowBase + p.CXM];
  p.Bza[rowBase + p.CXM] = tmp;
  for (std::int64_t ix = 0; ix < p.CXM; ++ix) {
    clf = p.Ex[rowCym + ix] - p.Ax[iz * (p.CXM + 1) + ix] +
          p.Ey[rowCym + ix + 1] - p.Ey[rowCym + ix];
    tmp = (p.cymh[p.CYM] / p.cyph[iy]) * p.Bza[rowBase + ix] -
          (p.ch / p.cyph[iy]) * clf;
    p.Hz[rowCym + ix] = (p.cxmh[ix] / p.cxph[ix]) * p.Hz[rowCym + ix] +
                        (p.mui * p.czp[iz] / p.cxph[ix]) * tmp -
                        (p.mui * p.czm[iz] / p.cxph[ix]) * p.Bza[rowCym + ix];
    p.Bza[rowCym + ix] = tmp;
  }
  clf = p.Ex[rowCym + p.CXM] - p.Ax[iz * (p.CXM + 1) + p.CXM] +
        p.Ry[iz * (p.CYM + 1) + p.CYM] - p.Ey[rowCym + p.CXM];
  tmp = (p.cymh[p.CYM] / p.cyph[p.CYM]) * p.Bza[rowBase + p.CXM] -
        (p.ch / p.cyph[p.CYM]) * clf;
  p.Hz[rowCym + p.CXM] =
      (p.cxmh[p.CXM] / p.cxph[p.CXM]) * p.Hz[rowCym + p.CXM] +
      (p.mui * p.czp[iz] / p.cxph[p.CXM]) * tmp -
      (p.mui * p.czm[iz] / p.cxph[p.CXM]) * p.Bza[rowCym + p.CXM];
  p.Bza[rowCym + p.CXM] = tmp;
}
}  // namespace

void fdtdApmlOrig(FdtdApmlProblem& p) {
  for (std::int64_t iz = 0; iz < p.CZ; ++iz)
    for (std::int64_t iy = 0; iy < p.CYM; ++iy) apmlRow(p, iz, iy);
}

void fdtdApmlPocc(FdtdApmlProblem& p, ThreadPool& pool) {
  // Outer iz is doall (rows of the same iz share Hz[iz][CYM][*] through
  // the boundary statements, so iy stays sequential).
  runtime::parallelFor(pool, 0, p.CZ, [&](std::int64_t iz) {
    for (std::int64_t iy = 0; iy < p.CYM; ++iy) apmlRow(p, iz, iy);
  });
}

void fdtdApmlPolyast(FdtdApmlProblem& p, ThreadPool& pool) {
  // Same doall structure; blocked distribution keeps each thread on
  // contiguous iz slabs (better TLB behaviour per the DL model).
  runtime::parallelForBlocked(pool, 0, p.CZ, [&](std::int64_t lo,
                                                 std::int64_t hi) {
    for (std::int64_t iz = lo; iz < hi; ++iz)
      for (std::int64_t iy = 0; iy < p.CYM; ++iy) apmlRow(p, iz, iy);
  });
}

}  // namespace polyast::bench
