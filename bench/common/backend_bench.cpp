#include "common/backend_bench.hpp"

#include <chrono>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>

#include "common/bench_common.hpp"
#include "exec/backend.hpp"
#include "flow/presets.hpp"
#include "kernels/polybench.hpp"

namespace polyast::bench {
namespace {

/// Bench-scale parameters: the spatial extents cross four full tiles
/// plus an odd remainder (double the verification scale used by
/// polyastc --verify-each-pass), the time extent the time-tile size, so
/// the steady-state tiled code — not the per-run walking and dispatch
/// overhead — dominates what the backend comparison measures.
std::map<std::string, std::int64_t> benchParams(const ir::Program& program) {
  std::map<std::string, std::int64_t> params;
  for (const auto& name : program.params)
    params[name] = name == "TSTEPS" ? kTimeTile + 2 : 4 * kTile + 5;
  return params;
}

const ir::Program& transformed(const std::string& kernel,
                               const std::string& pipeline, bool simd) {
  static std::map<std::string, ir::Program> cache;
  const std::string key =
      kernel + "|" + pipeline + (simd ? "|simd" : "");
  auto it = cache.find(key);
  if (it == cache.end()) {
    ir::Program program = kernels::buildKernel(kernel);
    flow::PipelineOptions popt;
    popt.ast.simd = simd;
    flow::PassContext ctx;
    it = cache
             .emplace(key,
                      flow::makePipeline(pipeline, popt).run(program, ctx))
             .first;
  }
  return it->second;
}

/// `caseName` is one of interp / native / native-simd; the last runs the
/// native backend on the simd-tagged transform (packed microkernels),
/// while plain `native` pins --simd=off so its history series stays the
/// scalar baseline the simd speedup is measured against.
void runBackendCase(benchmark::State& state, const std::string& kernel,
                    const std::string& pipeline,
                    const std::string& caseName) {
  const bool simd = caseName == "native-simd";
  const std::string backendName = simd ? "native" : caseName;
  const ir::Program& program = transformed(kernel, pipeline, simd);
  const auto params = benchParams(program);
  auto backend = exec::makeBackend(backendName);
  backend->prepare(program);  // native: compile outside the timed loop

  double bestNs = std::numeric_limits<double>::infinity();
  for (auto _ : state) {
    state.PauseTiming();
    exec::Context ctx = kernels::makeContext(program, params);
    state.ResumeTiming();
    const auto t0 = std::chrono::steady_clock::now();
    backend->run(program, ctx, pool());
    const auto t1 = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    if (ns < bestNs) bestNs = ns;
    benchmark::ClobberMemory();
  }

  std::string gaugeName = caseName;
  for (char& c : gaugeName)
    if (c == '-') c = '_';
  auto& registry = obs::Registry::global();
  registry.gauge("perf.backend_" + gaugeName + "_wall_ns").set(bestNs);
  state.counters["wall_ns"] = bestNs;
  const double interpNs =
      registry.gauge("perf.backend_interp_wall_ns").value();
  if (caseName == "native" && interpNs > 0.0 && bestNs > 0.0)
    registry.gauge("perf.backend_native_speedup").set(interpNs / bestNs);
  if (simd) {
    // Speedup of the packed microkernels over the scalar native run (the
    // registration order guarantees the scalar case already ran).
    const double scalarNs =
        registry.gauge("perf.backend_native_wall_ns").value();
    if (scalarNs > 0.0 && bestNs > 0.0)
      registry.gauge("perf.backend_native_simd_speedup")
          .set(scalarNs / bestNs);
  }
}

}  // namespace

void registerBackendBenches(const char* prefix, const char* kernel,
                            const char* pipeline) {
  const char* env = std::getenv("POLYAST_BENCH_BACKEND");
  if (!env || !*env) return;
  for (const char* caseName : {"interp", "native", "native-simd"}) {
    const std::string name = std::string(prefix) + "/backend_" + caseName;
    const std::string k = kernel;
    const std::string p = pipeline;
    const std::string b = caseName;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [k, p, b](benchmark::State& state) { runBackendCase(state, k, p, b); })
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace polyast::bench
