#include "common/backend_bench.hpp"

#include <chrono>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>

#include "common/bench_common.hpp"
#include "exec/backend.hpp"
#include "flow/presets.hpp"
#include "kernels/polybench.hpp"

namespace polyast::bench {
namespace {

/// Verification-scale parameters (see polyastc --verify-each-pass): the
/// spatial extents cross two full tiles plus an odd remainder, the time
/// extent the time-tile size, so the steady-state tiled code dominates.
std::map<std::string, std::int64_t> verificationParams(
    const ir::Program& program) {
  std::map<std::string, std::int64_t> params;
  for (const auto& name : program.params)
    params[name] = name == "TSTEPS" ? kTimeTile + 2 : 2 * kTile + 5;
  return params;
}

const ir::Program& transformed(const std::string& kernel,
                               const std::string& pipeline) {
  static std::map<std::string, ir::Program> cache;
  const std::string key = kernel + "|" + pipeline;
  auto it = cache.find(key);
  if (it == cache.end()) {
    ir::Program program = kernels::buildKernel(kernel);
    flow::PassContext ctx;
    it = cache.emplace(key, flow::makePipeline(pipeline).run(program, ctx))
             .first;
  }
  return it->second;
}

void runBackendCase(benchmark::State& state, const std::string& kernel,
                    const std::string& pipeline,
                    const std::string& backendName) {
  const ir::Program& program = transformed(kernel, pipeline);
  const auto params = verificationParams(program);
  auto backend = exec::makeBackend(backendName);
  backend->prepare(program);  // native: compile outside the timed loop

  double bestNs = std::numeric_limits<double>::infinity();
  for (auto _ : state) {
    state.PauseTiming();
    exec::Context ctx = kernels::makeContext(program, params);
    state.ResumeTiming();
    const auto t0 = std::chrono::steady_clock::now();
    backend->run(program, ctx, pool());
    const auto t1 = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    if (ns < bestNs) bestNs = ns;
    benchmark::ClobberMemory();
  }

  auto& registry = obs::Registry::global();
  registry.gauge("perf.backend_" + backendName + "_wall_ns").set(bestNs);
  state.counters["wall_ns"] = bestNs;
  const double interpNs =
      registry.gauge("perf.backend_interp_wall_ns").value();
  if (backendName == "native" && interpNs > 0.0 && bestNs > 0.0)
    registry.gauge("perf.backend_native_speedup").set(interpNs / bestNs);
}

}  // namespace

void registerBackendBenches(const char* prefix, const char* kernel,
                            const char* pipeline) {
  const char* env = std::getenv("POLYAST_BENCH_BACKEND");
  if (!env || !*env) return;
  for (const char* backendName : {"interp", "native"}) {
    const std::string name =
        std::string(prefix) + "/backend_" + backendName;
    const std::string k = kernel;
    const std::string p = pipeline;
    const std::string b = backendName;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [k, p, b](benchmark::State& state) { runBackendCase(state, k, p, b); })
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace polyast::bench
