// Native variant implementations for the linear-algebra kernels.
//
// Each problem struct owns the buffers; each variant function implements
// one compiler's output structure (see bench_common.hpp). All matrices are
// row-major.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/parallel.hpp"

namespace polyast::bench {

using runtime::ThreadPool;

// ---- gemm: C = alpha*A.B + beta*C --------------------------------------
struct GemmProblem {
  std::int64_t NI, NJ, NK;
  std::vector<double> C, A, B;
  double alpha = 1.5, beta = 1.2;
  explicit GemmProblem(std::int64_t n);
  void reset();
  double flops() const;
  double check() const;
};
void gemmOrig(GemmProblem& p);
void gemmPocc(GemmProblem& p, ThreadPool& pool);
void gemmPoccVect(GemmProblem& p, ThreadPool& pool);
void gemmPolyast(GemmProblem& p, ThreadPool& pool);

// ---- 2mm: tmp = alpha*A.B; D = beta*D + tmp.C ---------------------------
struct Mm2Problem {
  std::int64_t N;  // square NI=NJ=NK=NL
  std::vector<double> tmp, A, B, C, D;
  double alpha = 1.5, beta = 1.2;
  explicit Mm2Problem(std::int64_t n);
  void reset();
  double flops() const;
  double check() const;
};
void mm2Orig(Mm2Problem& p);
void mm2Pocc(Mm2Problem& p, ThreadPool& pool);       // smartfuse + tiling
void mm2PoccMaxfuse(Mm2Problem& p, ThreadPool& pool);  // Fig. 2 structure
void mm2PoccVect(Mm2Problem& p, ThreadPool& pool);
void mm2Polyast(Mm2Problem& p, ThreadPool& pool);    // Fig. 3 structure

// ---- 3mm: E=A.B; F=C.D; G=E.F -------------------------------------------
struct Mm3Problem {
  std::int64_t N;
  std::vector<double> E, A, B, F, C, D, G;
  explicit Mm3Problem(std::int64_t n);
  void reset();
  double flops() const;
  double check() const;
};
void mm3Orig(Mm3Problem& p);
void mm3Pocc(Mm3Problem& p, ThreadPool& pool);
void mm3PoccVect(Mm3Problem& p, ThreadPool& pool);
void mm3Polyast(Mm3Problem& p, ThreadPool& pool);

// ---- syrk: C = alpha*A.A^T + beta*C -------------------------------------
struct SyrkProblem {
  std::int64_t N, M;
  std::vector<double> C, A;
  double alpha = 1.5, beta = 1.2;
  SyrkProblem(std::int64_t n, std::int64_t m);
  void reset();
  double flops() const;
  double check() const;
};
void syrkOrig(SyrkProblem& p);
void syrkPocc(SyrkProblem& p, ThreadPool& pool);
void syrkPoccVect(SyrkProblem& p, ThreadPool& pool);
void syrkPolyast(SyrkProblem& p, ThreadPool& pool);

// ---- syr2k ---------------------------------------------------------------
struct Syr2kProblem {
  std::int64_t N, M;
  std::vector<double> C, A, B;
  double alpha = 1.5, beta = 1.2;
  Syr2kProblem(std::int64_t n, std::int64_t m);
  void reset();
  double flops() const;
  double check() const;
};
void syr2kOrig(Syr2kProblem& p);
void syr2kPocc(Syr2kProblem& p, ThreadPool& pool);
void syr2kPoccVect(Syr2kProblem& p, ThreadPool& pool);
void syr2kPolyast(Syr2kProblem& p, ThreadPool& pool);

// ---- doitgen -------------------------------------------------------------
struct DoitgenProblem {
  std::int64_t NR, NQ, NP;
  std::vector<double> A, sum, C4;
  DoitgenProblem(std::int64_t r, std::int64_t q, std::int64_t p);
  void reset();
  double flops() const;
  double check() const;
};
void doitgenOrig(DoitgenProblem& p);
void doitgenPocc(DoitgenProblem& p, ThreadPool& pool);
void doitgenPolyast(DoitgenProblem& p, ThreadPool& pool);

// ---- gesummv -------------------------------------------------------------
struct GesummvProblem {
  std::int64_t N;
  std::vector<double> A, B, x, y, tmp;
  double alpha = 1.5, beta = 1.2;
  explicit GesummvProblem(std::int64_t n);
  void reset();
  double flops() const;
  double check() const;
};
void gesummvOrig(GesummvProblem& p);
void gesummvPocc(GesummvProblem& p, ThreadPool& pool);
void gesummvPolyast(GesummvProblem& p, ThreadPool& pool);

// ---- fdtd-apml (doall-dominant) ------------------------------------------
struct FdtdApmlProblem {
  std::int64_t CZ, CYM, CXM;
  std::vector<double> Ex, Ey, Hz, Bza, Ry, Ax, clf, tmp;
  std::vector<double> cymh, cyph, cxmh, cxph, czm, czp;
  double ch = 0.85, mui = 0.65;
  FdtdApmlProblem(std::int64_t cz, std::int64_t cym, std::int64_t cxm);
  void reset();
  double flops() const;
  double check() const;
};
void fdtdApmlOrig(FdtdApmlProblem& p);
void fdtdApmlPocc(FdtdApmlProblem& p, ThreadPool& pool);
void fdtdApmlPolyast(FdtdApmlProblem& p, ThreadPool& pool);

}  // namespace polyast::bench
