// Execution-backend comparison rider for the figure benches.
//
// registerBackendBenches() is a no-op unless POLYAST_BENCH_BACKEND is set
// (any non-empty value; `native` is the conventional one). When set, it
// registers two extra benchmark cases, "<prefix>/backend_interp" and
// "<prefix>/backend_native", that run the flow-transformed IR kernel at
// verification scale (two full tiles plus a remainder per spatial extent)
// through the execution backends (exec/backend.hpp) on the shared pool.
//
// Besides the google-benchmark timings, the best wall time per backend is
// recorded as `perf.backend_<name>_wall_ns` gauges — plus
// `perf.backend_native_speedup` once both have run — so a
// POLYAST_BENCH_METRICS=FILE artifact carries interp and native side by
// side and `bench_compare --metrics` ingests them into the benchmark
// history.
#pragma once

namespace polyast::bench {

/// Registers the backend comparison cases for one kernel (call from a
/// static initializer, before benchmark::Initialize runs).
void registerBackendBenches(const char* prefix, const char* kernel,
                            const char* pipeline = "polyast");

}  // namespace polyast::bench
