// Execution-backend comparison rider for the figure benches.
//
// registerBackendBenches() is a no-op unless POLYAST_BENCH_BACKEND is set
// (any non-empty value; `native` is the conventional one). When set, it
// registers three extra benchmark cases — "<prefix>/backend_interp",
// "<prefix>/backend_native" (scalar native: the transform runs with
// simd=off, keeping this series the scalar baseline) and
// "<prefix>/backend_native-simd" (packed SIMD microkernels) — that run
// the flow-transformed IR kernel at bench scale (four full tiles plus a
// remainder per spatial extent, so steady-state tiled compute dominates
// the per-run dispatch overhead) through the execution backends
// (exec/backend.hpp) on the shared pool.
//
// Besides the google-benchmark timings, the best wall time per case is
// recorded as `perf.backend_<name>_wall_ns` gauges
// (`perf.backend_native_simd_wall_ns` for the simd case) — plus
// `perf.backend_native_speedup` (native vs interp) and
// `perf.backend_native_simd_speedup` (simd vs scalar native) once the
// respective baselines have run — so a POLYAST_BENCH_METRICS=FILE
// artifact carries all cases side by side and `bench_compare --metrics`
// ingests them into the benchmark history.
#pragma once

namespace polyast::bench {

/// Registers the backend comparison cases for one kernel (call from a
/// static initializer, before benchmark::Initialize runs).
void registerBackendBenches(const char* prefix, const char* kernel,
                            const char* pipeline = "polyast");

}  // namespace polyast::bench
