#include "common/native_pipeline.hpp"

#include <algorithm>

#include "common/bench_common.hpp"

namespace polyast::bench {

namespace {
inline std::int64_t mn(std::int64_t a, std::int64_t b) {
  return a < b ? a : b;
}
inline std::int64_t ceilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}
constexpr std::int64_t kBlock = 64;  ///< stencil cell-block edge
}  // namespace

// ========================= jacobi-1d =====================================

Jacobi1dProblem::Jacobi1dProblem(std::int64_t t, std::int64_t n)
    : T(t), N(n),
      A(static_cast<std::size_t>(n)),
      B(static_cast<std::size_t>(n)) {
  reset();
}
void Jacobi1dProblem::reset() {
  seed(A, "A");
  seed(B, "B");
}
double Jacobi1dProblem::flops() const {
  return 4.0 * static_cast<double>(T) * static_cast<double>(N);
}
double Jacobi1dProblem::check() const { return checksum(A); }

void jacobi1dOrig(Jacobi1dProblem& p) {
  for (std::int64_t t = 0; t < p.T; ++t) {
    for (std::int64_t i = 1; i < p.N - 1; ++i)
      p.B[i] = 0.33333 * (p.A[i - 1] + p.A[i] + p.A[i + 1]);
    for (std::int64_t j = 1; j < p.N - 1; ++j) p.A[j] = p.B[j];
  }
}

void jacobi1dPocc(Jacobi1dProblem& p, ThreadPool& pool) {
  // Doall-only: each sweep parallel, barrier between the two sweeps and
  // between time steps.
  for (std::int64_t t = 0; t < p.T; ++t) {
    runtime::parallelForBlocked(pool, 1, p.N - 1, [&](std::int64_t lo,
                                                      std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i)
        p.B[i] = 0.33333 * (p.A[i - 1] + p.A[i] + p.A[i + 1]);
    });
    runtime::parallelForBlocked(pool, 1, p.N - 1, [&](std::int64_t lo,
                                                      std::int64_t hi) {
      for (std::int64_t j = lo; j < hi; ++j) p.A[j] = p.B[j];
    });
  }
}

void jacobi1dPolyast(Jacobi1dProblem& p, ThreadPool& pool) {
  // Time-tiled pipeline: cells (t-in-tile, w) with block index b = w - 2t;
  // within a cell: B-update of block b, then A-copy of block b-1 (the
  // shifted fusion the affine stage selects). Componentwise non-negative
  // cell dependences by construction (see DESIGN.md).
  std::int64_t NB = ceilDiv(p.N - 2, kBlock);
  for (std::int64_t tt = 0; tt < p.T; tt += kTimeTile) {
    std::int64_t steps = mn(kTimeTile, p.T - tt);
    std::int64_t cols = NB + 1 + 2 * (steps - 1);
    runtime::pipeline2D(pool, steps, cols, [&](std::int64_t tdx,
                                               std::int64_t w) {
      std::int64_t b = w - 2 * tdx;
      if (b < 0 || b > NB) return;
      if (b < NB) {
        std::int64_t lo = 1 + b * kBlock, hi = mn(p.N - 1, lo + kBlock);
        for (std::int64_t i = lo; i < hi; ++i)
          p.B[i] = 0.33333 * (p.A[i - 1] + p.A[i] + p.A[i + 1]);
      }
      if (b >= 1) {
        std::int64_t lo = 1 + (b - 1) * kBlock, hi = mn(p.N - 1, lo + kBlock);
        for (std::int64_t j = lo; j < hi; ++j) p.A[j] = p.B[j];
      }
    });
  }
}

void jacobi1dPolyastDynamic(Jacobi1dProblem& p, ThreadPool& pool) {
  // Compact form of jacobi1dPolyast: rows are whole time steps and the
  // 2-block shift per step lives in need() — cell (t, b) writes B block b
  // and A block b-1, whose prev-step readers/writers sit in cells <= b+2 —
  // so the ragged pipeline runs only the NB+1 real cells per row instead
  // of a rectangle padded with 2*(steps-1) skew guards.
  std::int64_t NB = ceilDiv(p.N - 2, kBlock);
  std::vector<std::int64_t> rowCols(static_cast<std::size_t>(p.T), NB + 1);
  runtime::pipelineDynamic2D(
      pool, rowCols,
      [](std::int64_t, std::int64_t c) { return c + 3; },
      [&](std::int64_t, std::int64_t b) {
        if (b < NB) {
          std::int64_t lo = 1 + b * kBlock, hi = mn(p.N - 1, lo + kBlock);
          for (std::int64_t i = lo; i < hi; ++i)
            p.B[i] = 0.33333 * (p.A[i - 1] + p.A[i] + p.A[i + 1]);
        }
        if (b >= 1) {
          std::int64_t lo = 1 + (b - 1) * kBlock, hi = mn(p.N - 1, lo + kBlock);
          for (std::int64_t j = lo; j < hi; ++j) p.A[j] = p.B[j];
        }
      });
}

// ========================= jacobi-2d =====================================

Jacobi2dProblem::Jacobi2dProblem(std::int64_t t, std::int64_t n)
    : T(t), N(n),
      A(static_cast<std::size_t>(n * n)),
      B(static_cast<std::size_t>(n * n)) {
  reset();
}
void Jacobi2dProblem::reset() {
  seed(A, "A");
  seed(B, "B");
}
double Jacobi2dProblem::flops() const {
  double n = static_cast<double>(N);
  return 5.0 * static_cast<double>(T) * n * n;
}
double Jacobi2dProblem::check() const { return checksum(A); }

namespace {
inline void jacobi2dBRows(Jacobi2dProblem& p, std::int64_t rlo,
                          std::int64_t rhi, std::int64_t clo,
                          std::int64_t chi) {
  std::int64_t N = p.N;
  for (std::int64_t i = rlo; i < rhi; ++i) {
    const double* __restrict an = &p.A[(i - 1) * N];
    const double* __restrict ac = &p.A[i * N];
    const double* __restrict as = &p.A[(i + 1) * N];
    double* __restrict b = &p.B[i * N];
    for (std::int64_t j = clo; j < chi; ++j)
      b[j] = 0.2 * (ac[j] + ac[j - 1] + ac[j + 1] + as[j] + an[j]);
  }
}
inline void jacobi2dCopyRows(Jacobi2dProblem& p, std::int64_t rlo,
                             std::int64_t rhi, std::int64_t clo,
                             std::int64_t chi) {
  std::int64_t N = p.N;
  for (std::int64_t i = rlo; i < rhi; ++i)
    for (std::int64_t j = clo; j < chi; ++j) p.A[i * N + j] = p.B[i * N + j];
}
}  // namespace

void jacobi2dOrig(Jacobi2dProblem& p) {
  for (std::int64_t t = 0; t < p.T; ++t) {
    jacobi2dBRows(p, 1, p.N - 1, 1, p.N - 1);
    jacobi2dCopyRows(p, 1, p.N - 1, 1, p.N - 1);
  }
}

void jacobi2dPocc(Jacobi2dProblem& p, ThreadPool& pool) {
  for (std::int64_t t = 0; t < p.T; ++t) {
    runtime::parallelForBlocked(pool, 1, p.N - 1, [&](std::int64_t lo,
                                                      std::int64_t hi) {
      jacobi2dBRows(p, lo, hi, 1, p.N - 1);
    });
    runtime::parallelForBlocked(pool, 1, p.N - 1, [&](std::int64_t lo,
                                                      std::int64_t hi) {
      jacobi2dCopyRows(p, lo, hi, 1, p.N - 1);
    });
  }
}

void jacobi2dPolyast(Jacobi2dProblem& p, ThreadPool& pool) {
  // Time-tiled fused sweep as a 3-D doacross (the paper's treatment of the
  // 2-D stencils: outer time-tile of kTimeTile steps, skewed space
  // blocks). Cell (tdx, u, v) with block (r, c) = (u - 2*tdx, v - 2*tdx)
  // performs the B-update of block (r, c) and the A-copy of block
  // (r-1, c-1) at time tt + tdx; the 2-per-step skew makes every
  // dependence componentwise non-negative in (tdx, u, v), which
  // pipeline3D's predecessor waits cover transitively.
  std::int64_t NB = ceilDiv(p.N - 2, kBlock);
  auto range = [&](std::int64_t b) {
    std::int64_t lo = 1 + b * kBlock;
    return std::pair<std::int64_t, std::int64_t>{lo, mn(p.N - 1, lo + kBlock)};
  };
  for (std::int64_t tt = 0; tt < p.T; tt += kTimeTile) {
    std::int64_t steps = mn(kTimeTile, p.T - tt);
    std::int64_t span = NB + 1 + 2 * (steps - 1);
    runtime::pipeline3D(pool, steps, span, span, [&](std::int64_t tdx,
                                                     std::int64_t u,
                                                     std::int64_t v) {
      std::int64_t r = u - 2 * tdx, c = v - 2 * tdx;
      if (r < 0 || r > NB || c < 0 || c > NB) return;
      if (r < NB && c < NB) {
        auto [rlo, rhi] = range(r);
        auto [clo, chi] = range(c);
        jacobi2dBRows(p, rlo, rhi, clo, chi);
      }
      if (r >= 1 && c >= 1) {
        auto [rlo, rhi] = range(r - 1);
        auto [clo, chi] = range(c - 1);
        jacobi2dCopyRows(p, rlo, rhi, clo, chi);
      }
    });
  }
}

// ========================= seidel-2d =====================================

Seidel2dProblem::Seidel2dProblem(std::int64_t t, std::int64_t n)
    : T(t), N(n), A(static_cast<std::size_t>(n * n)) {
  reset();
}
void Seidel2dProblem::reset() { seed(A, "A"); }
double Seidel2dProblem::flops() const {
  double n = static_cast<double>(N);
  return 9.0 * static_cast<double>(T) * n * n;
}
double Seidel2dProblem::check() const { return checksum(A); }

namespace {
/// One parallelogram block of the Gauss-Seidel sweep: rows [rlo, rhi),
/// skewed columns w = i + j in [wlo, whi). The point-space dependences
/// (1,-1), (0,1), (1,0), (1,1) all become componentwise non-negative in
/// (i, w), so any block decomposition executed in p2p/wavefront order is
/// legal.
inline void seidelBlock(Seidel2dProblem& p, std::int64_t rlo,
                        std::int64_t rhi, std::int64_t wlo,
                        std::int64_t whi) {
  std::int64_t N = p.N;
  for (std::int64_t i = rlo; i < rhi; ++i) {
    double* __restrict an = &p.A[(i - 1) * N];
    double* __restrict ac = &p.A[i * N];
    double* __restrict as = &p.A[(i + 1) * N];
    std::int64_t jlo = std::max<std::int64_t>(1, wlo - i);
    std::int64_t jhi = mn(N - 1, whi - i);
    for (std::int64_t j = jlo; j < jhi; ++j)
      ac[j] = (an[j - 1] + an[j] + an[j + 1] + ac[j - 1] + ac[j] +
               ac[j + 1] + as[j - 1] + as[j] + as[j + 1]) /
              9.0;
  }
}
}  // namespace

void seidel2dOrig(Seidel2dProblem& p) {
  for (std::int64_t t = 0; t < p.T; ++t)
    seidelBlock(p, 1, p.N - 1, 2, 2 * p.N - 3);
}

namespace {
/// Shared cell geometry: cells (r, u) map to rows block r and skewed
/// column block u.
template <typename Executor>
void seidelSweep(Seidel2dProblem& p, ThreadPool& pool, Executor exec) {
  std::int64_t NB = ceilDiv(p.N - 2, kBlock);
  std::int64_t WB = ceilDiv(2 * p.N - 5, kBlock);
  exec(pool, NB, WB, [&p](std::int64_t r, std::int64_t u) {
    std::int64_t rlo = 1 + r * kBlock, rhi = mn(p.N - 1, rlo + kBlock);
    std::int64_t wlo = 2 + u * kBlock, whi = mn(2 * p.N - 3, wlo + kBlock);
    seidelBlock(p, rlo, rhi, wlo, whi);
  });
}
}  // namespace

void seidel2dPocc(Seidel2dProblem& p, ThreadPool& pool) {
  for (std::int64_t t = 0; t < p.T; ++t)
    seidelSweep(p, pool, [](ThreadPool& pl, std::int64_t r, std::int64_t c,
                            auto cell) {
      return runtime::wavefront2D(pl, r, c, cell);
    });
}

void seidel2dPolyast(Seidel2dProblem& p, ThreadPool& pool) {
  for (std::int64_t t = 0; t < p.T; ++t)
    seidelSweep(p, pool, [](ThreadPool& pl, std::int64_t r, std::int64_t c,
                            auto cell) {
      return runtime::pipeline2D(pl, r, c, cell);
    });
}

// ========================= fdtd-2d =======================================

Fdtd2dProblem::Fdtd2dProblem(std::int64_t t, std::int64_t nx, std::int64_t ny)
    : T(t), NX(nx), NY(ny),
      ex(static_cast<std::size_t>(nx * ny)),
      ey(static_cast<std::size_t>(nx * ny)),
      hz(static_cast<std::size_t>(nx * ny)),
      fict(static_cast<std::size_t>(t)) {
  seed(fict, "fict");
  reset();
}
void Fdtd2dProblem::reset() {
  seed(ex, "ex");
  seed(ey, "ey");
  seed(hz, "hz");
}
double Fdtd2dProblem::flops() const {
  return 11.0 * static_cast<double>(T) * static_cast<double>(NX) *
         static_cast<double>(NY);
}
double Fdtd2dProblem::check() const {
  return checksum(ex) + checksum(ey) + checksum(hz);
}

namespace {
inline void fdtdERows(Fdtd2dProblem& p, std::int64_t t, std::int64_t rlo,
                      std::int64_t rhi, std::int64_t clo, std::int64_t chi) {
  std::int64_t NY = p.NY;
  for (std::int64_t i = rlo; i < rhi; ++i) {
    double* __restrict eyr = &p.ey[i * NY];
    double* __restrict exr = &p.ex[i * NY];
    const double* __restrict hzr = &p.hz[i * NY];
    const double* __restrict hzn = i > 0 ? &p.hz[(i - 1) * NY] : nullptr;
    if (i == 0) {
      for (std::int64_t j = clo; j < chi; ++j) eyr[j] = p.fict[t];
    } else {
      for (std::int64_t j = clo; j < chi; ++j)
        eyr[j] -= 0.5 * (hzr[j] - hzn[j]);
    }
    for (std::int64_t j = std::max<std::int64_t>(1, clo); j < chi; ++j)
      exr[j] -= 0.5 * (hzr[j] - hzr[j - 1]);
  }
}
inline void fdtdHzRows(Fdtd2dProblem& p, std::int64_t rlo, std::int64_t rhi,
                       std::int64_t clo, std::int64_t chi) {
  std::int64_t NY = p.NY;
  rhi = mn(rhi, p.NX - 1);
  chi = mn(chi, p.NY - 1);
  for (std::int64_t i = rlo; i < rhi; ++i) {
    double* __restrict hzr = &p.hz[i * NY];
    const double* __restrict exr = &p.ex[i * NY];
    const double* __restrict eyr = &p.ey[i * NY];
    const double* __restrict eys = &p.ey[(i + 1) * NY];
    for (std::int64_t j = clo; j < chi; ++j)
      hzr[j] -= 0.7 * (exr[j + 1] - exr[j] + eys[j] - eyr[j]);
  }
}
}  // namespace

void fdtd2dOrig(Fdtd2dProblem& p) {
  for (std::int64_t t = 0; t < p.T; ++t) {
    fdtdERows(p, t, 0, p.NX, 0, p.NY);
    fdtdHzRows(p, 0, p.NX, 0, p.NY);
  }
}

void fdtd2dPocc(Fdtd2dProblem& p, ThreadPool& pool) {
  // Doall sweeps with a barrier between the E and H phases.
  for (std::int64_t t = 0; t < p.T; ++t) {
    runtime::parallelForBlocked(pool, 0, p.NX, [&](std::int64_t lo,
                                                   std::int64_t hi) {
      fdtdERows(p, t, lo, hi, 0, p.NY);
    });
    runtime::parallelForBlocked(pool, 0, p.NX, [&](std::int64_t lo,
                                                   std::int64_t hi) {
      fdtdHzRows(p, lo, hi, 0, p.NY);
    });
  }
}

void fdtd2dPolyast(Fdtd2dProblem& p, ThreadPool& pool) {
  // Fused E/H sweep as a skewed p2p pipeline: cell (r, u), c = u - r:
  // E-update of block (r, c), Hz-update of block (r-1, c-1). Hz reads
  // ex[i][j+1] / ey[i+1][j], produced by this cell's E part or earlier
  // cells (componentwise non-negative after the skew).
  std::int64_t RB = ceilDiv(p.NX, kBlock), CB = ceilDiv(p.NY, kBlock);
  auto rangeR = [&](std::int64_t b) {
    std::int64_t lo = b * kBlock;
    return std::pair<std::int64_t, std::int64_t>{lo, mn(p.NX, lo + kBlock)};
  };
  auto rangeC = [&](std::int64_t b) {
    std::int64_t lo = b * kBlock;
    return std::pair<std::int64_t, std::int64_t>{lo, mn(p.NY, lo + kBlock)};
  };
  for (std::int64_t t = 0; t < p.T; ++t) {
    runtime::pipeline2D(pool, RB + 1, RB + 1 + CB, [&](std::int64_t r,
                                                       std::int64_t u) {
      std::int64_t c = u - r;
      if (c < 0 || c > CB) return;
      if (r < RB && c < CB) {
        auto [rlo, rhi] = rangeR(r);
        auto [clo, chi] = rangeC(c);
        fdtdERows(p, t, rlo, rhi, clo, chi);
      }
      if (r >= 1 && c >= 1) {
        auto [rlo, rhi] = rangeR(r - 1);
        auto [clo, chi] = rangeC(c - 1);
        fdtdHzRows(p, rlo, rhi, clo, chi);
      }
    });
  }
}

// ========================= adi ===========================================

AdiProblem::AdiProblem(std::int64_t t, std::int64_t n)
    : T(t), N(n),
      X(static_cast<std::size_t>(n * n)),
      A(static_cast<std::size_t>(n * n)),
      B(static_cast<std::size_t>(n * n)),
      X0(static_cast<std::size_t>(n * n)),
      B0(static_cast<std::size_t>(n * n)) {
  seed(X0, "X");
  seed(A, "A");
  seed(B0, "B");
  for (auto& a : A) a *= 0.1;  // damp the sweeps (see kernels_solvers.cpp)
  reset();
}
void AdiProblem::reset() {
  X = X0;
  B = B0;
}
double AdiProblem::flops() const {
  double n = static_cast<double>(N);
  return 30.0 * static_cast<double>(T) * n * n;
}
double AdiProblem::check() const { return checksum(X) + checksum(B); }

namespace {
/// The three row phases of one ADI step for row i1, fused (forward sweep,
/// normalization, back substitution) — the poly+AST per-row locality win.
inline void adiRowFused(AdiProblem& p, std::int64_t i1) {
  std::int64_t N = p.N;
  double* __restrict x = &p.X[i1 * N];
  double* __restrict b = &p.B[i1 * N];
  const double* __restrict a = &p.A[i1 * N];
  for (std::int64_t i2 = 1; i2 < N; ++i2) {
    x[i2] -= x[i2 - 1] * a[i2] / b[i2 - 1];
    b[i2] -= a[i2] * a[i2] / b[i2 - 1];
  }
  x[N - 1] /= b[N - 1];
  for (std::int64_t i2 = 0; i2 < N - 2; ++i2)
    x[N - i2 - 2] =
        (x[N - 2 - i2] - x[N - i2 - 3] * a[N - i2 - 3]) / b[N - 3 - i2];
}
}  // namespace

void adiOrig(AdiProblem& p) {
  std::int64_t N = p.N;
  for (std::int64_t t = 0; t < p.T; ++t) {
    // Row phases exactly as in the PolyBench source (three separate nests).
    for (std::int64_t i1 = 0; i1 < N; ++i1)
      for (std::int64_t i2 = 1; i2 < N; ++i2) {
        p.X[i1 * N + i2] -=
            p.X[i1 * N + i2 - 1] * p.A[i1 * N + i2] / p.B[i1 * N + i2 - 1];
        p.B[i1 * N + i2] -=
            p.A[i1 * N + i2] * p.A[i1 * N + i2] / p.B[i1 * N + i2 - 1];
      }
    for (std::int64_t i1 = 0; i1 < N; ++i1)
      p.X[i1 * N + N - 1] /= p.B[i1 * N + N - 1];
    for (std::int64_t i1 = 0; i1 < N; ++i1)
      for (std::int64_t i2 = 0; i2 < N - 2; ++i2)
        p.X[i1 * N + N - i2 - 2] =
            (p.X[i1 * N + N - 2 - i2] -
             p.X[i1 * N + N - i2 - 3] * p.A[i1 * N + N - i2 - 3]) /
            p.B[i1 * N + N - 3 - i2];
    // Column phases.
    for (std::int64_t i1 = 1; i1 < N; ++i1)
      for (std::int64_t i2 = 0; i2 < N; ++i2) {
        p.X[i1 * N + i2] -=
            p.X[(i1 - 1) * N + i2] * p.A[i1 * N + i2] / p.B[(i1 - 1) * N + i2];
        p.B[i1 * N + i2] -=
            p.A[i1 * N + i2] * p.A[i1 * N + i2] / p.B[(i1 - 1) * N + i2];
      }
    for (std::int64_t i2 = 0; i2 < N; ++i2)
      p.X[(N - 1) * N + i2] /= p.B[(N - 1) * N + i2];
    for (std::int64_t i1 = 0; i1 < N - 2; ++i1)
      for (std::int64_t i2 = 0; i2 < N; ++i2)
        p.X[(N - i1 - 2) * N + i2] =
            (p.X[(N - 2 - i1) * N + i2] -
             p.X[(N - i1 - 3) * N + i2] * p.A[(N - 3 - i1) * N + i2]) /
            p.B[(N - 2 - i1) * N + i2];
  }
}

void adiPocc(AdiProblem& p, ThreadPool& pool) {
  // Doall-only: each of the six phases parallelized separately. The column
  // phases become i2-outer doall (stride-N walks).
  std::int64_t N = p.N;
  for (std::int64_t t = 0; t < p.T; ++t) {
    runtime::parallelFor(pool, 0, N, [&](std::int64_t i1) {
      for (std::int64_t i2 = 1; i2 < N; ++i2) {
        p.X[i1 * N + i2] -=
            p.X[i1 * N + i2 - 1] * p.A[i1 * N + i2] / p.B[i1 * N + i2 - 1];
        p.B[i1 * N + i2] -=
            p.A[i1 * N + i2] * p.A[i1 * N + i2] / p.B[i1 * N + i2 - 1];
      }
    });
    runtime::parallelFor(pool, 0, N, [&](std::int64_t i1) {
      p.X[i1 * N + N - 1] /= p.B[i1 * N + N - 1];
    });
    runtime::parallelFor(pool, 0, N, [&](std::int64_t i1) {
      for (std::int64_t i2 = 0; i2 < N - 2; ++i2)
        p.X[i1 * N + N - i2 - 2] =
            (p.X[i1 * N + N - 2 - i2] -
             p.X[i1 * N + N - i2 - 3] * p.A[i1 * N + N - i2 - 3]) /
            p.B[i1 * N + N - 3 - i2];
    });
    runtime::parallelFor(pool, 0, N, [&](std::int64_t i2) {
      for (std::int64_t i1 = 1; i1 < N; ++i1) {
        p.X[i1 * N + i2] -= p.X[(i1 - 1) * N + i2] * p.A[i1 * N + i2] /
                            p.B[(i1 - 1) * N + i2];
        p.B[i1 * N + i2] -= p.A[i1 * N + i2] * p.A[i1 * N + i2] /
                            p.B[(i1 - 1) * N + i2];
      }
    });
    runtime::parallelFor(pool, 0, N, [&](std::int64_t i2) {
      p.X[(N - 1) * N + i2] /= p.B[(N - 1) * N + i2];
    });
    runtime::parallelFor(pool, 0, N, [&](std::int64_t i2) {
      for (std::int64_t i1 = 0; i1 < N - 2; ++i1)
        p.X[(N - i1 - 2) * N + i2] =
            (p.X[(N - 2 - i1) * N + i2] -
             p.X[(N - i1 - 3) * N + i2] * p.A[(N - 3 - i1) * N + i2]) /
            p.B[(N - 2 - i1) * N + i2];
    });
  }
}

void adiPolyast(AdiProblem& p, ThreadPool& pool) {
  // Row phases fused per row (one pass over each row instead of three);
  // column phases blocked over i2 so every thread keeps stride-1 rows
  // while walking i1 — single parallel region per phase group.
  std::int64_t N = p.N;
  for (std::int64_t t = 0; t < p.T; ++t) {
    runtime::parallelFor(pool, 0, N, [&](std::int64_t i1) {
      adiRowFused(p, i1);
    });
    runtime::parallelForBlocked(pool, 0, N, [&](std::int64_t lo,
                                                std::int64_t hi) {
      for (std::int64_t i1 = 1; i1 < N; ++i1) {
        double* __restrict x = &p.X[i1 * N];
        double* __restrict b = &p.B[i1 * N];
        const double* __restrict a = &p.A[i1 * N];
        const double* __restrict xp = &p.X[(i1 - 1) * N];
        const double* __restrict bp = &p.B[(i1 - 1) * N];
        for (std::int64_t i2 = lo; i2 < hi; ++i2) {
          x[i2] -= xp[i2] * a[i2] / bp[i2];
          b[i2] -= a[i2] * a[i2] / bp[i2];
        }
      }
      for (std::int64_t i2 = lo; i2 < hi; ++i2)
        p.X[(N - 1) * N + i2] /= p.B[(N - 1) * N + i2];
      for (std::int64_t i1 = 0; i1 < N - 2; ++i1) {
        double* __restrict xw = &p.X[(N - i1 - 2) * N];
        const double* __restrict xr = &p.X[(N - 2 - i1) * N];
        const double* __restrict xd = &p.X[(N - i1 - 3) * N];
        const double* __restrict ad = &p.A[(N - 3 - i1) * N];
        const double* __restrict bd = &p.B[(N - 2 - i1) * N];
        for (std::int64_t i2 = lo; i2 < hi; ++i2)
          xw[i2] = (xr[i2] - xd[i2] * ad[i2]) / bd[i2];
      }
    });
  }
}

}  // namespace polyast::bench
