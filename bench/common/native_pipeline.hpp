// Native variants for the pipeline-dominant kernels (Fig. 9 group).
//
// The poly+AST flow runs stencil sweeps as point-to-point pipelines over
// skewed cell grids (runtime::pipeline2D — the OpenMP `await` extension of
// Fig. 6 left); the PoCC baseline executes the same cell grids as
// wavefront doall with a barrier per diagonal (Fig. 6 right), matching the
// paper's "pipeline parallelism is typically implemented as inefficient
// wavefront schedules".
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/parallel.hpp"

namespace polyast::bench {

using runtime::ThreadPool;

// ---- jacobi-1d-imper -------------------------------------------------------
struct Jacobi1dProblem {
  std::int64_t T, N;
  std::vector<double> A, B;
  Jacobi1dProblem(std::int64_t t, std::int64_t n);
  void reset();
  double flops() const;
  double check() const;
};
void jacobi1dOrig(Jacobi1dProblem& p);
void jacobi1dPocc(Jacobi1dProblem& p, ThreadPool& pool);
void jacobi1dPolyast(Jacobi1dProblem& p, ThreadPool& pool);
/// Same cell grid through runtime::pipelineDynamic2D: the 2-per-step block
/// shift is expressed via need() instead of padding every row with empty
/// skew cells, so no guard cells execute and no time-tiling is required.
void jacobi1dPolyastDynamic(Jacobi1dProblem& p, ThreadPool& pool);

// ---- jacobi-2d-imper -------------------------------------------------------
struct Jacobi2dProblem {
  std::int64_t T, N;
  std::vector<double> A, B;
  Jacobi2dProblem(std::int64_t t, std::int64_t n);
  void reset();
  double flops() const;
  double check() const;
};
void jacobi2dOrig(Jacobi2dProblem& p);
void jacobi2dPocc(Jacobi2dProblem& p, ThreadPool& pool);
void jacobi2dPolyast(Jacobi2dProblem& p, ThreadPool& pool);

// ---- seidel-2d --------------------------------------------------------------
struct Seidel2dProblem {
  std::int64_t T, N;
  std::vector<double> A;
  Seidel2dProblem(std::int64_t t, std::int64_t n);
  void reset();
  double flops() const;
  double check() const;
};
void seidel2dOrig(Seidel2dProblem& p);
void seidel2dPocc(Seidel2dProblem& p, ThreadPool& pool);     // wavefront
void seidel2dPolyast(Seidel2dProblem& p, ThreadPool& pool);  // p2p pipeline

// ---- fdtd-2d ----------------------------------------------------------------
struct Fdtd2dProblem {
  std::int64_t T, NX, NY;
  std::vector<double> ex, ey, hz, fict;
  Fdtd2dProblem(std::int64_t t, std::int64_t nx, std::int64_t ny);
  void reset();
  double flops() const;
  double check() const;
};
void fdtd2dOrig(Fdtd2dProblem& p);
void fdtd2dPocc(Fdtd2dProblem& p, ThreadPool& pool);
void fdtd2dPolyast(Fdtd2dProblem& p, ThreadPool& pool);

// ---- adi --------------------------------------------------------------------
struct AdiProblem {
  std::int64_t T, N;
  std::vector<double> X, A, B, X0, B0;
  AdiProblem(std::int64_t t, std::int64_t n);
  void reset();
  double flops() const;
  double check() const;
};
void adiOrig(AdiProblem& p);
void adiPocc(AdiProblem& p, ThreadPool& pool);
void adiPolyast(AdiProblem& p, ThreadPool& pool);

}  // namespace polyast::bench
