// Shared infrastructure for the figure/table benchmarks.
//
// Each PolyBench kernel is implemented natively in the loop structures the
// three compilers under comparison produce (verified against the IR
// pipeline by the structure tests in tests/):
//   * orig      — the PolyBench reference loops, compiled at -O3
//                 (stand-in for the paper's icc-auto / xlc-auto variants),
//   * pocc      — Pluto smartfuse + rectangular tiling + doall-only
//                 parallelization, wavefront tile schedule for stencils,
//   * pocc_vect — pocc plus the intra-tile SIMD permutation,
//   * polyast   — this paper's flow: DL-driven fusion/permutation,
//                 AST tiling, register tiling, doall/reduction/pipeline
//                 parallelism via the point-to-point runtime.
//
// Variants are validated against `orig` on seeded inputs before timing
// (relative tolerance covers reassociated reductions). GF/s is reported
// through a google-benchmark counter.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/trace.hpp"
#include "runtime/parallel.hpp"
#include "support/error.hpp"

namespace polyast::bench {

/// Environment-gated observability for the benches, producing the same
/// artifacts (and schemas) as `polyastc --trace-out / --metrics-out`:
///   POLYAST_OBS=1              enable tracing and latency timing
///   POLYAST_BENCH_TRACE=FILE   write a Chrome trace at process exit
///   POLYAST_BENCH_METRICS=FILE write metrics JSON (CSV if .csv) at exit
/// Unset means everything stays disabled — the timed loops then pay only
/// the relaxed-load checks documented in runtime/parallel.hpp.
///
/// When metrics are requested the session also opens a hardware-counter
/// group (obs::PerfSession) on the main thread for the whole process, so
/// the exported metrics carry `perf.wall_ns` / `perf.cycles` / ... —
/// exactly what `bench_compare --metrics` ingests into the benchmark
/// history. POLYAST_PERF=off keeps wall/TSC only (degraded mode, noted as
/// `obs.perf.degraded` in the artifact).
class ObsSession {
 public:
  ObsSession() {
    const char* obs = std::getenv("POLYAST_OBS");
    trace_ = valueOf("POLYAST_BENCH_TRACE");
    metrics_ = valueOf("POLYAST_BENCH_METRICS");
    if ((obs && *obs && *obs != '0') || !trace_.empty())
      obs::Tracer::global().setEnabled(true);
    if ((obs && *obs && *obs != '0') || !metrics_.empty())
      obs::Registry::global().setTimingEnabled(true);
    if (!metrics_.empty()) {
      perf_ = std::make_unique<obs::PerfAggregate>();
      perf_->beginThread();
    }
  }
  ~ObsSession() {
    if (perf_) {
      perf_->endThread();  // main-thread counters over the process lifetime
      perf_->recordTo(obs::Registry::global());
    }
    if (!trace_.empty())
      obs::writeChromeTraceFile(trace_, obs::Tracer::global());
    if (!metrics_.empty())
      obs::writeMetricsFile(metrics_, obs::Registry::global().snapshot());
  }

 private:
  static std::string valueOf(const char* name) {
    const char* v = std::getenv(name);
    return v ? v : "";
  }

  std::string trace_;
  std::string metrics_;
  std::unique_ptr<obs::PerfAggregate> perf_;
};

/// Installs the process-wide ObsSession (idempotent); called from pool()
/// so every bench picks it up without touching its main().
inline void initObs() { static ObsSession session; }

/// Deterministic fill matching exec::Context::seedAll (values in [0.5,1.5)).
inline void seed(std::vector<double>& buf, const std::string& name) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : name) h = (h ^ static_cast<std::uint64_t>(c)) * 1099511628211ull;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    std::uint64_t x = h ^ (i * 0x9e3779b97f4a7c15ull);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    buf[i] = 0.5 + static_cast<double>(x % 1000003ull) / 1000003.0;
  }
}

inline double checksum(const std::vector<double>& buf) {
  double s = 0.0, w = 1.0;
  for (double x : buf) {
    s += w * x;
    w = (w >= 4.0) ? 1.0 : w + 1e-4;
  }
  return s;
}

inline void expectClose(double a, double b, const char* what) {
  double denom = std::fabs(a) + std::fabs(b) + 1.0;
  POLYAST_CHECK(std::fabs(a - b) / denom < 1e-6,
                std::string("variant diverges from reference: ") + what);
}

/// The shared pool for all benchmarks; --threads N via the POLYAST_THREADS
/// environment variable (stands in for the 8-core / 32-core machines).
inline runtime::ThreadPool& pool() {
  initObs();
  static runtime::ThreadPool instance([] {
    if (const char* env = std::getenv("POLYAST_THREADS"))
      return static_cast<unsigned>(std::atoi(env));
    return 0u;
  }());
  return instance;
}

/// Registers the GFLOP/s counter for the current iteration count.
inline void reportGflops(benchmark::State& state, double flopsPerIter) {
  state.counters["GF/s"] = benchmark::Counter(
      flopsPerIter * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

constexpr std::int64_t kTile = 32;      ///< paper: tile size 32
constexpr std::int64_t kTimeTile = 5;   ///< paper: outer time-tile size 5

}  // namespace polyast::bench
