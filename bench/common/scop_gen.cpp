#include "common/scop_gen.hpp"

#include "ir/builder.hpp"
#include "ir/expr.hpp"
#include "support/error.hpp"

namespace polyast::scopgen {

namespace {

using ir::AffExpr;
using ir::AssignOp;
using ir::ExprPtr;
using ir::ProgramBuilder;

/// splitmix64: tiny, deterministic, and identical on every platform —
/// exactly what a reproducible generator needs (std::mt19937's
/// distributions are not bit-stable across standard libraries).
struct SplitMix64 {
  std::uint64_t state;
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, bound).
  std::int64_t below(std::int64_t bound) {
    return static_cast<std::int64_t>(next() % static_cast<std::uint64_t>(bound));
  }
};

AffExpr v(const std::string& name) { return AffExpr::term(name); }
AffExpr n(std::int64_t c) { return AffExpr(c); }

std::string iterName(int level) { return "i" + std::to_string(level); }

/// One chain of `size` nested loops with a two-statement recurrence at
/// the bottom. Accesses pair the outermost/innermost iterators, so every
/// dependence test works in the full 2*size-dimensional joint space.
ir::Program genDeep(const GenOptions& opt, SplitMix64& rng) {
  int depth = opt.size;
  ProgramBuilder b("scopgen_deep");
  b.param("N", opt.extent);
  // Subscripts sum two iterators plus a small shift; 2N+4 covers them.
  AffExpr dim = v("N") * 2 + n(4);
  b.array("A", {dim, dim});
  b.array("B", {dim, dim});
  for (int l = 0; l < depth; ++l) b.beginLoop(iterName(l), 0, b.p("N"));
  AffExpr row = v(iterName(0)) + v(iterName(depth - 1));
  AffExpr col = v(iterName(depth / 2)) + v(iterName(depth - 1));
  std::int64_t s1 = 1 + rng.below(2);
  std::int64_t s2 = rng.below(3);
  // S0 carries a recurrence on A (flow dep at several levels); S1 reads
  // A's freshly written cell, adding a loop-independent edge.
  b.stmt("S", "A", {row, col},
         AssignOp::Set,
         ir::arrayRef("A", {row - n(s1), col}) +
             ir::arrayRef("B", {row, col + n(s2)}));
  b.stmt("T", "B", {row, col + n(s2)},
         AssignOp::Set,
         ir::arrayRef("A", {row, col}) * ir::floatLit(0.5));
  for (int l = 0; l < depth; ++l) b.endLoop();
  return b.build();
}

/// `size` separate 2-deep nests, statement k writing A<k+1> from A<k> —
/// a producer→consumer chain whose all-pairs dependence scan and fusion
/// structure scale quadratically with size.
ir::Program genWide(const GenOptions& opt, SplitMix64& rng) {
  int count = opt.size;
  ProgramBuilder b("scopgen_wide");
  b.param("N", opt.extent);
  AffExpr dim = v("N") + n(4);
  for (int k = 0; k <= count; ++k)
    b.array("A" + std::to_string(k), {dim, dim});
  for (int k = 0; k < count; ++k) {
    std::string src = "A" + std::to_string(k);
    std::string dst = "A" + std::to_string(k + 1);
    std::int64_t shift = rng.below(3);
    b.beginLoop("i", 0, b.p("N"));
    b.beginLoop("j", 0, b.p("N"));
    b.stmt("S" + std::to_string(k), dst, {v("i"), v("j")},
           AssignOp::Set,
           ir::arrayRef(src, {v("i"), v("j")}) +
               ir::arrayRef(src, {v("i"), v("j") + n(shift)}));
    b.endLoop();
    b.endLoop();
  }
  return b.build();
}

/// `size` statements sharing one 2-deep nest, rotating writes through 3
/// shared arrays with shifted reads of the other two — most statement
/// pairs end up dependence-connected, so the selection search works on
/// large SCCs.
ir::Program genDense(const GenOptions& opt, SplitMix64& rng) {
  int count = opt.size;
  ProgramBuilder b("scopgen_dense");
  b.param("N", opt.extent);
  AffExpr dim = v("N") + n(4);
  const char* arrays[3] = {"A", "B", "C"};
  for (const char* a : arrays) b.array(a, {dim, dim});
  b.beginLoop("i", 0, b.p("N"));
  b.beginLoop("j", 0, b.p("N"));
  for (int m = 0; m < count; ++m) {
    const char* w = arrays[m % 3];
    const char* r1 = arrays[(m + 1) % 3];
    const char* r2 = arrays[(m + 2) % 3];
    std::int64_t s1 = rng.below(3);
    std::int64_t s2 = rng.below(2);
    b.stmt("S" + std::to_string(m), w, {v("i") + n(s2), v("j")},
           AssignOp::Set,
           ir::arrayRef(r1, {v("i"), v("j") + n(s1)}) +
               ir::arrayRef(r2, {v("i") + n(s2), v("j")}) * ir::floatLit(0.25));
  }
  b.endLoop();
  b.endLoop();
  return b.build();
}

}  // namespace

const std::vector<std::string>& families() {
  static const std::vector<std::string> f = {"deep", "wide", "dense"};
  return f;
}

std::string label(const GenOptions& opt) {
  return opt.family + "(size=" + std::to_string(opt.size) +
         ",seed=" + std::to_string(opt.seed) +
         ",extent=" + std::to_string(opt.extent) + ")";
}

ir::Program generate(const GenOptions& opt) {
  POLYAST_CHECK(opt.size > 0, "scopgen: size must be positive");
  SplitMix64 rng{opt.seed};
  if (opt.family == "deep") {
    POLYAST_CHECK(opt.size >= 2, "scopgen: deep needs depth >= 2");
    return genDeep(opt, rng);
  }
  if (opt.family == "wide") return genWide(opt, rng);
  if (opt.family == "dense") return genDense(opt, rng);
  POLYAST_CHECK(false, "scopgen: unknown family '" + opt.family +
                           "' (deep, wide, dense)");
  return ir::Program();  // unreachable
}

}  // namespace polyast::scopgen
