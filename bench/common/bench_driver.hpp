// Benchmark registration helper: validates a variant against the reference
// implementation once, then times it with the reset excluded.
#pragma once

#include "common/bench_common.hpp"

namespace polyast::bench {

/// Runs one timed benchmark over `variant`, after a one-time differential
/// validation against `reference` on the same problem instance.
template <typename Problem, typename Ref, typename Variant>
void timeVariant(benchmark::State& state, Problem& p, Ref reference,
                 Variant variant, const char* label) {
  // One-time validation (per benchmark registration).
  p.reset();
  reference(p);
  double want = p.check();
  p.reset();
  variant(p);
  expectClose(p.check(), want, label);

  for (auto _ : state) {
    state.PauseTiming();
    p.reset();
    state.ResumeTiming();
    variant(p);
    benchmark::ClobberMemory();
  }
  reportGflops(state, p.flops());
}

}  // namespace polyast::bench
