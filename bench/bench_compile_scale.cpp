// bench_compile_scale — compile-time stress driver over the synthetic
// SCoP generator (common/scop_gen.hpp).
//
// Usage:
//   bench_compile_scale [--out FILE] [--pipeline NAME]
//                       [--families deep,wide,dense] [--scale default|small]
//                       [--seed N] [--list]
//
// For each family it generates the synthetic program, runs the selected
// pipeline under a selfprof::Collector bracket, and prints one line of
// timing to stderr. --out writes the polyast-compile-profile-v1 artifact
// with one row per family; bench_compare ingests those rows as
// `compile@<family>` series (wall = compile_ms), so compile-time
// regressions at scale trip the same blocking gate kernel wall-time
// uses. Flags accept both "--flag value" and "--flag=value".
//
// Unlike the google-benchmark drivers this is a plain executable: the
// measured quantity is one deterministic pipeline run per family
// (repeats are the caller's job — CI runs it 3× and lets
// bench_compare's median-of-repeats collapsing do the rest).
#include <chrono>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "common/scop_gen.hpp"
#include "flow/presets.hpp"
#include "ir/ast.hpp"
#include "obs/selfprof.hpp"
#include "support/error.hpp"

using namespace polyast;

namespace {

int usage() {
  std::cerr << "usage: bench_compile_scale [--out FILE] [--pipeline NAME]\n"
               "                           [--families deep,wide,dense]\n"
               "                           [--scale default|small] [--seed N]"
               " [--list]\n";
  return 4;
}

/// Family scale presets: `default` stresses well beyond PolyBench shapes
/// (depth-7 nests, 24-statement chains); `small` keeps ctest smoke runs
/// fast while exercising every code path.
int familySize(const std::string& family, const std::string& scale) {
  bool small = scale == "small";
  if (family == "deep") return small ? 4 : 7;
  if (family == "wide") return small ? 6 : 24;
  if (family == "dense") return small ? 4 : 12;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out;
  std::string pipeline = "polyast";
  std::string familiesArg;
  std::string scale = "default";
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inlineValue;
    bool hasInline = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      inlineValue = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      hasInline = true;
    }
    auto next = [&]() -> std::string {
      if (hasInline) return inlineValue;
      if (i + 1 >= argc) {
        usage();
        exit(4);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      for (const auto& f : scopgen::families()) std::cout << f << "\n";
      return 0;
    }
    if (arg == "--out") out = next();
    else if (arg == "--pipeline") pipeline = next();
    else if (arg == "--families") familiesArg = next();
    else if (arg == "--scale") scale = next();
    else if (arg == "--seed") {
      try {
        seed = std::stoull(next());
      } catch (const std::exception&) {
        return usage();
      }
    } else return usage();
  }
  if (scale != "default" && scale != "small") return usage();
  if (!flow::hasPipelinePreset(pipeline)) {
    std::cerr << "unknown pipeline '" << pipeline << "'\n";
    return 4;
  }

  std::vector<std::string> families;
  if (familiesArg.empty()) {
    families = scopgen::families();
  } else {
    std::string list = familiesArg;
    while (!list.empty()) {
      auto comma = list.find(',');
      families.push_back(list.substr(0, comma));
      list = comma == std::string::npos ? "" : list.substr(comma + 1);
    }
  }

  obs::selfprof::Collector collector;
  std::string generator;
  try {
    for (const auto& family : families) {
      scopgen::GenOptions gopt;
      gopt.family = family;
      gopt.seed = seed;
      gopt.size = familySize(family, scale);
      if (gopt.size == 0) {
        std::cerr << "unknown family '" << family << "' (deep, wide, dense)\n";
        return 4;
      }
      ir::Program program = scopgen::generate(gopt);
      std::int64_t stmts = 0;
      std::set<const ir::Loop*> loopSet;
      for (const auto& [id, loops] : program.enclosingLoops()) {
        ++stmts;
        for (const auto& l : loops) loopSet.insert(l.get());
      }
      if (!generator.empty()) generator += " ";
      generator += scopgen::label(gopt);

      flow::PipelineOptions options;
      flow::PassPipeline pipe = flow::makePipeline(pipeline, options);
      flow::PassContext ctx;
      collector.beginScop();
      auto t0 = std::chrono::steady_clock::now();
      pipe.run(program, ctx);
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
      collector.endScop(family, stmts,
                        static_cast<std::int64_t>(loopSet.size()), ms);
      std::cerr << "compile@" << family << ": " << ms << " ms (" << stmts
                << " stmts, " << loopSet.size() << " loops, "
                << ctx.report.passes.size() << " passes)\n";
    }
    if (!out.empty())
      obs::selfprof::writeCompileProfileFile(
          out, collector.finish(pipeline, generator));
  } catch (const ::polyast::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
