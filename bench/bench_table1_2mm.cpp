// Table I: 2mm performance comparison — original vs PoCC (maximal fusion,
// the Fig. 2 structure) vs our flow (the Fig. 3 structure).
//
// Paper (absolute numbers are machine-specific; the *ordering* and rough
// ratios are the reproduction target):
//   Nehalem: original 2.4 GF/s | PoCC 14 GF/s | our flow 19 GF/s
//   Power7:  original 0.5 GF/s | PoCC 29 GF/s | our flow 62 GF/s
#include "common/backend_bench.hpp"
#include "common/bench_driver.hpp"
#include "common/native_blas.hpp"

namespace polyast::bench {
namespace {

// POLYAST_BENCH_BACKEND=native adds interp-vs-native IR execution rows.
const bool kBackendBenches = [] {
  registerBackendBenches("table1/2mm", "2mm");
  return true;
}();

Mm2Problem& problem() {
  static Mm2Problem p(320);
  return p;
}

void BM_original(benchmark::State& s) {
  timeVariant(s, problem(), mm2Orig, mm2Orig, "table1/original");
}
void BM_pocc_maxfuse(benchmark::State& s) {
  // The paper's Fig. 2 code: maximal fusion with the triangular c2 loop
  // and the vectorization-hostile tmp[c1][c2-c7] access.
  timeVariant(s, problem(), mm2Orig,
              [](Mm2Problem& p) { mm2PoccMaxfuse(p, pool()); },
              "table1/pocc");
}
void BM_polyast(benchmark::State& s) {
  timeVariant(s, problem(), mm2Orig,
              [](Mm2Problem& p) { mm2Polyast(p, pool()); },
              "table1/polyast");
}

BENCHMARK(BM_original)->Name("table1/2mm/original")->UseRealTime();
BENCHMARK(BM_pocc_maxfuse)->Name("table1/2mm/pocc_maxfuse")->UseRealTime();
BENCHMARK(BM_polyast)->Name("table1/2mm/our_flow")->UseRealTime();

}  // namespace
}  // namespace polyast::bench

BENCHMARK_MAIN();
