// Figures 10-12 stand-in: thread-count sweep (the paper's second machine,
// a 32-core Power7, re-runs Figs. 7-9 at higher parallelism). One
// representative kernel per parallelism class, swept over explicit thread
// counts — on a multicore host this reproduces the scaling dimension; on a
// single core every row degenerates to the same number, which is itself
// the documented substitution.
#include "common/backend_bench.hpp"
#include "common/bench_common.hpp"
#include "common/native_blas.hpp"
#include "common/native_pipeline.hpp"
#include "common/native_reduction.hpp"

namespace polyast::bench {
namespace {

// POLYAST_BENCH_BACKEND=native adds interp-vs-native IR execution rows
// (gemm: the kernel whose native-vs-interpreted gap the regression gate
// tracks).
const bool kBackendBenches = [] {
  registerBackendBenches("fig10/gemm_polyast", "gemm");
  return true;
}();

void BM_gemm_threads(benchmark::State& state) {
  static GemmProblem p(256);
  runtime::ThreadPool localPool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    p.reset();
    state.ResumeTiming();
    gemmPolyast(p, localPool);
    benchmark::ClobberMemory();
  }
  reportGflops(state, p.flops());
}

void BM_atax_threads(benchmark::State& state) {
  static AtaxProblem p(1400, 1400);
  runtime::ThreadPool localPool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    p.reset();
    state.ResumeTiming();
    ataxPolyast(p, localPool);
    benchmark::ClobberMemory();
  }
  reportGflops(state, p.flops());
}

void BM_seidel_pipeline_threads(benchmark::State& state) {
  static Seidel2dProblem p(10, 500);
  runtime::ThreadPool localPool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    p.reset();
    state.ResumeTiming();
    seidel2dPolyast(p, localPool);
    benchmark::ClobberMemory();
  }
  reportGflops(state, p.flops());
}

void BM_seidel_wavefront_threads(benchmark::State& state) {
  static Seidel2dProblem p(10, 500);
  runtime::ThreadPool localPool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    p.reset();
    state.ResumeTiming();
    seidel2dPocc(p, localPool);
    benchmark::ClobberMemory();
  }
  reportGflops(state, p.flops());
}

BENCHMARK(BM_gemm_threads)
    ->Name("fig10/gemm_polyast/threads")->UseRealTime()
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_atax_threads)
    ->Name("fig11/atax_polyast/threads")->UseRealTime()
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_seidel_pipeline_threads)
    ->Name("fig12/seidel_pipeline/threads")->UseRealTime()
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_seidel_wavefront_threads)
    ->Name("fig12/seidel_wavefront/threads")->UseRealTime()
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace polyast::bench

BENCHMARK_MAIN();
