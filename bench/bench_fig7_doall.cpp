// Figure 7: PolyBench kernels whose dominant parallelism is doall
// (2mm, 3mm, doitgen, fdtd-apml, gemm, gesummv, syr2k, syrk), comparing
// the variants of Sec. V-A: orig (≈ icc-auto), pocc, pocc_vect, iterative
// (best of the legal PoCC variants), poly+ast.
//
// GF/s appears as a per-row counter; higher is better. On a single-core
// host the deltas reflect loop structure (vectorization + locality); use
// POLYAST_THREADS=N on a multicore host for the full figure.
#include "common/bench_driver.hpp"
#include "common/native_blas.hpp"

namespace polyast::bench {
namespace {

// ---- gemm ----------------------------------------------------------------
GemmProblem& gemmP() {
  static GemmProblem p(256);
  return p;
}
void BM_gemm_orig(benchmark::State& s) {
  timeVariant(s, gemmP(), gemmOrig, gemmOrig, "gemm/orig");
}
void BM_gemm_pocc(benchmark::State& s) {
  timeVariant(s, gemmP(), gemmOrig,
              [](GemmProblem& p) { gemmPocc(p, pool()); }, "gemm/pocc");
}
void BM_gemm_pocc_vect(benchmark::State& s) {
  timeVariant(s, gemmP(), gemmOrig,
              [](GemmProblem& p) { gemmPoccVect(p, pool()); },
              "gemm/pocc_vect");
}
void BM_gemm_polyast(benchmark::State& s) {
  timeVariant(s, gemmP(), gemmOrig,
              [](GemmProblem& p) { gemmPolyast(p, pool()); },
              "gemm/polyast");
}
BENCHMARK(BM_gemm_orig)->Name("fig7/gemm/orig")->UseRealTime();
BENCHMARK(BM_gemm_pocc)->Name("fig7/gemm/pocc")->UseRealTime();
BENCHMARK(BM_gemm_pocc_vect)->Name("fig7/gemm/pocc_vect")->UseRealTime();
BENCHMARK(BM_gemm_polyast)->Name("fig7/gemm/polyast")->UseRealTime();

// ---- 2mm -----------------------------------------------------------------
Mm2Problem& mm2P() {
  static Mm2Problem p(240);
  return p;
}
void BM_2mm_orig(benchmark::State& s) {
  timeVariant(s, mm2P(), mm2Orig, mm2Orig, "2mm/orig");
}
void BM_2mm_pocc(benchmark::State& s) {
  timeVariant(s, mm2P(), mm2Orig,
              [](Mm2Problem& p) { mm2Pocc(p, pool()); }, "2mm/pocc");
}
void BM_2mm_pocc_vect(benchmark::State& s) {
  timeVariant(s, mm2P(), mm2Orig,
              [](Mm2Problem& p) { mm2PoccVect(p, pool()); },
              "2mm/pocc_vect");
}
void BM_2mm_polyast(benchmark::State& s) {
  timeVariant(s, mm2P(), mm2Orig,
              [](Mm2Problem& p) { mm2Polyast(p, pool()); }, "2mm/polyast");
}
BENCHMARK(BM_2mm_orig)->Name("fig7/2mm/orig")->UseRealTime();
BENCHMARK(BM_2mm_pocc)->Name("fig7/2mm/pocc")->UseRealTime();
BENCHMARK(BM_2mm_pocc_vect)->Name("fig7/2mm/pocc_vect")->UseRealTime();
BENCHMARK(BM_2mm_polyast)->Name("fig7/2mm/polyast")->UseRealTime();

// ---- 3mm -----------------------------------------------------------------
Mm3Problem& mm3P() {
  static Mm3Problem p(220);
  return p;
}
void BM_3mm_orig(benchmark::State& s) {
  timeVariant(s, mm3P(), mm3Orig, mm3Orig, "3mm/orig");
}
void BM_3mm_pocc(benchmark::State& s) {
  timeVariant(s, mm3P(), mm3Orig,
              [](Mm3Problem& p) { mm3Pocc(p, pool()); }, "3mm/pocc");
}
void BM_3mm_pocc_vect(benchmark::State& s) {
  timeVariant(s, mm3P(), mm3Orig,
              [](Mm3Problem& p) { mm3PoccVect(p, pool()); },
              "3mm/pocc_vect");
}
void BM_3mm_polyast(benchmark::State& s) {
  timeVariant(s, mm3P(), mm3Orig,
              [](Mm3Problem& p) { mm3Polyast(p, pool()); }, "3mm/polyast");
}
BENCHMARK(BM_3mm_orig)->Name("fig7/3mm/orig")->UseRealTime();
BENCHMARK(BM_3mm_pocc)->Name("fig7/3mm/pocc")->UseRealTime();
BENCHMARK(BM_3mm_pocc_vect)->Name("fig7/3mm/pocc_vect")->UseRealTime();
BENCHMARK(BM_3mm_polyast)->Name("fig7/3mm/polyast")->UseRealTime();

// ---- syrk ------------------------------------------------------------------
SyrkProblem& syrkP() {
  static SyrkProblem p(256, 256);
  return p;
}
void BM_syrk_orig(benchmark::State& s) {
  timeVariant(s, syrkP(), syrkOrig, syrkOrig, "syrk/orig");
}
void BM_syrk_pocc(benchmark::State& s) {
  timeVariant(s, syrkP(), syrkOrig,
              [](SyrkProblem& p) { syrkPocc(p, pool()); }, "syrk/pocc");
}
void BM_syrk_polyast(benchmark::State& s) {
  timeVariant(s, syrkP(), syrkOrig,
              [](SyrkProblem& p) { syrkPolyast(p, pool()); },
              "syrk/polyast");
}
BENCHMARK(BM_syrk_orig)->Name("fig7/syrk/orig")->UseRealTime();
BENCHMARK(BM_syrk_pocc)->Name("fig7/syrk/pocc")->UseRealTime();
BENCHMARK(BM_syrk_polyast)->Name("fig7/syrk/polyast")->UseRealTime();

// ---- syr2k -----------------------------------------------------------------
Syr2kProblem& syr2kP() {
  static Syr2kProblem p(220, 220);
  return p;
}
void BM_syr2k_orig(benchmark::State& s) {
  timeVariant(s, syr2kP(), syr2kOrig, syr2kOrig, "syr2k/orig");
}
void BM_syr2k_pocc(benchmark::State& s) {
  timeVariant(s, syr2kP(), syr2kOrig,
              [](Syr2kProblem& p) { syr2kPocc(p, pool()); }, "syr2k/pocc");
}
void BM_syr2k_polyast(benchmark::State& s) {
  timeVariant(s, syr2kP(), syr2kOrig,
              [](Syr2kProblem& p) { syr2kPolyast(p, pool()); },
              "syr2k/polyast");
}
BENCHMARK(BM_syr2k_orig)->Name("fig7/syr2k/orig")->UseRealTime();
BENCHMARK(BM_syr2k_pocc)->Name("fig7/syr2k/pocc")->UseRealTime();
BENCHMARK(BM_syr2k_polyast)->Name("fig7/syr2k/polyast")->UseRealTime();

// ---- doitgen ---------------------------------------------------------------
DoitgenProblem& doitgenP() {
  static DoitgenProblem p(48, 48, 48);
  return p;
}
void BM_doitgen_orig(benchmark::State& s) {
  timeVariant(s, doitgenP(), doitgenOrig, doitgenOrig, "doitgen/orig");
}
void BM_doitgen_pocc(benchmark::State& s) {
  timeVariant(s, doitgenP(), doitgenOrig,
              [](DoitgenProblem& p) { doitgenPocc(p, pool()); },
              "doitgen/pocc");
}
void BM_doitgen_polyast(benchmark::State& s) {
  timeVariant(s, doitgenP(), doitgenOrig,
              [](DoitgenProblem& p) { doitgenPolyast(p, pool()); },
              "doitgen/polyast");
}
BENCHMARK(BM_doitgen_orig)->Name("fig7/doitgen/orig")->UseRealTime();
BENCHMARK(BM_doitgen_pocc)->Name("fig7/doitgen/pocc")->UseRealTime();
BENCHMARK(BM_doitgen_polyast)->Name("fig7/doitgen/polyast")->UseRealTime();

// ---- gesummv ----------------------------------------------------------------
GesummvProblem& gesummvP() {
  static GesummvProblem p(1500);
  return p;
}
void BM_gesummv_orig(benchmark::State& s) {
  timeVariant(s, gesummvP(), gesummvOrig, gesummvOrig, "gesummv/orig");
}
void BM_gesummv_pocc(benchmark::State& s) {
  timeVariant(s, gesummvP(), gesummvOrig,
              [](GesummvProblem& p) { gesummvPocc(p, pool()); },
              "gesummv/pocc");
}
void BM_gesummv_polyast(benchmark::State& s) {
  timeVariant(s, gesummvP(), gesummvOrig,
              [](GesummvProblem& p) { gesummvPolyast(p, pool()); },
              "gesummv/polyast");
}
BENCHMARK(BM_gesummv_orig)->Name("fig7/gesummv/orig")->UseRealTime();
BENCHMARK(BM_gesummv_pocc)->Name("fig7/gesummv/pocc")->UseRealTime();
BENCHMARK(BM_gesummv_polyast)->Name("fig7/gesummv/polyast")->UseRealTime();

// ---- fdtd-apml -----------------------------------------------------------
FdtdApmlProblem& apmlP() {
  static FdtdApmlProblem p(96, 96, 96);
  return p;
}
void BM_apml_orig(benchmark::State& s) {
  timeVariant(s, apmlP(), fdtdApmlOrig, fdtdApmlOrig, "fdtd-apml/orig");
}
void BM_apml_pocc(benchmark::State& s) {
  timeVariant(s, apmlP(), fdtdApmlOrig,
              [](FdtdApmlProblem& p) { fdtdApmlPocc(p, pool()); },
              "fdtd-apml/pocc");
}
void BM_apml_polyast(benchmark::State& s) {
  timeVariant(s, apmlP(), fdtdApmlOrig,
              [](FdtdApmlProblem& p) { fdtdApmlPolyast(p, pool()); },
              "fdtd-apml/polyast");
}
BENCHMARK(BM_apml_orig)->Name("fig7/fdtd-apml/orig")->UseRealTime();
BENCHMARK(BM_apml_pocc)->Name("fig7/fdtd-apml/pocc")->UseRealTime();
BENCHMARK(BM_apml_polyast)->Name("fig7/fdtd-apml/polyast")->UseRealTime();

}  // namespace
}  // namespace polyast::bench

BENCHMARK_MAIN();
