// Figure 9: kernels with pipeline parallelism (adi, fdtd-2d,
// jacobi-1d-imper, jacobi-2d-imper, seidel-2d). The poly+AST flow uses the
// point-to-point pipeline construct; the baseline uses barriered doall /
// wavefront schedules. The paper runs these on the `large` dataset to
// provide enough parallelism.
#include "common/bench_driver.hpp"
#include "common/native_pipeline.hpp"

namespace polyast::bench {
namespace {

#define POLYAST_BENCH3(KERNEL, PROB, ORIG, POCC, POLYAST)                   \
  PROB& KERNEL##P();                                                        \
  void BM_##KERNEL##_orig(benchmark::State& s) {                            \
    timeVariant(s, KERNEL##P(), ORIG, ORIG, #KERNEL "/orig");               \
  }                                                                         \
  void BM_##KERNEL##_pocc(benchmark::State& s) {                            \
    timeVariant(s, KERNEL##P(), ORIG, [](PROB& p) { POCC(p, pool()); },     \
                #KERNEL "/pocc");                                           \
  }                                                                         \
  void BM_##KERNEL##_polyast(benchmark::State& s) {                         \
    timeVariant(s, KERNEL##P(), ORIG, [](PROB& p) { POLYAST(p, pool()); },  \
                #KERNEL "/polyast");                                        \
  }                                                                         \
  BENCHMARK(BM_##KERNEL##_orig)->Name("fig9/" #KERNEL "/orig")->UseRealTime();      \
  BENCHMARK(BM_##KERNEL##_pocc)->Name("fig9/" #KERNEL "/pocc")->UseRealTime();      \
  BENCHMARK(BM_##KERNEL##_polyast)->Name("fig9/" #KERNEL "/polyast")->UseRealTime();

POLYAST_BENCH3(jacobi1d, Jacobi1dProblem, jacobi1dOrig, jacobi1dPocc,
               jacobi1dPolyast)
Jacobi1dProblem& jacobi1dP() {
  static Jacobi1dProblem p(100, 200000);
  return p;
}

// Ragged-pipeline variant: isolates what the rectangular skew padding of
// pipeline2D costs against pipelineDynamic2D's need()-encoded shift.
void BM_jacobi1d_polyast_dyn(benchmark::State& s) {
  timeVariant(s, jacobi1dP(), jacobi1dOrig,
              [](Jacobi1dProblem& p) { jacobi1dPolyastDynamic(p, pool()); },
              "jacobi1d/polyast-dyn");
}
BENCHMARK(BM_jacobi1d_polyast_dyn)
    ->Name("fig9/jacobi1d/polyast-dyn")
    ->UseRealTime();

POLYAST_BENCH3(jacobi2d, Jacobi2dProblem, jacobi2dOrig, jacobi2dPocc,
               jacobi2dPolyast)
Jacobi2dProblem& jacobi2dP() {
  static Jacobi2dProblem p(30, 500);
  return p;
}

POLYAST_BENCH3(seidel2d, Seidel2dProblem, seidel2dOrig, seidel2dPocc,
               seidel2dPolyast)
Seidel2dProblem& seidel2dP() {
  static Seidel2dProblem p(20, 500);
  return p;
}

POLYAST_BENCH3(fdtd2d, Fdtd2dProblem, fdtd2dOrig, fdtd2dPocc, fdtd2dPolyast)
Fdtd2dProblem& fdtd2dP() {
  static Fdtd2dProblem p(30, 400, 400);
  return p;
}

POLYAST_BENCH3(adi, AdiProblem, adiOrig, adiPocc, adiPolyast)
AdiProblem& adiP() {
  static AdiProblem p(10, 400);
  return p;
}

}  // namespace
}  // namespace polyast::bench

BENCHMARK_MAIN();
