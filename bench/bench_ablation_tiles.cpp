// Ablation: tile-size sensitivity of the poly+AST gemm structure (the
// paper fixes 32 for each tilable dimension; Sec. IV-C lists tile-size
// exploration as future work). Also validates the DL model's premise that
// mem_cost(t) has a capacity-bounded sweet spot.
#include "common/bench_common.hpp"
#include "common/bench_driver.hpp"

namespace polyast::bench {
namespace {

constexpr std::int64_t N = 320;

struct TiledGemm {
  std::vector<double> C, A, B;
  TiledGemm() : C(N * N), A(N * N), B(N * N) {
    seed(A, "A");
    seed(B, "B");
    reset();
  }
  void reset() { seed(C, "C"); }
};

void gemmTiled(TiledGemm& p, std::int64_t tile) {
  runtime::parallelFor(pool(), 0, N, [&](std::int64_t i) {
    double* __restrict c = &p.C[i * N];
    for (std::int64_t kt = 0; kt < N; kt += tile)
      for (std::int64_t jt = 0; jt < N; jt += tile) {
        std::int64_t kHi = std::min(N, kt + tile);
        std::int64_t jHi = std::min(N, jt + tile);
        for (std::int64_t k = kt; k < kHi; ++k) {
          double a = p.A[i * N + k];
          const double* __restrict b = &p.B[k * N];
          for (std::int64_t j = jt; j < jHi; ++j) c[j] += a * b[j];
        }
      }
  });
}

void BM_tile(benchmark::State& state) {
  static TiledGemm p;
  std::int64_t tile = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    p.reset();
    state.ResumeTiming();
    gemmTiled(p, tile);
    benchmark::ClobberMemory();
  }
  reportGflops(state, 2.0 * static_cast<double>(N) * N * N);
}

BENCHMARK(BM_tile)
    ->Name("ablation/gemm_tile_size")->UseRealTime()
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(N);  // N == untiled

}  // namespace
}  // namespace polyast::bench

BENCHMARK_MAIN();
