// Figure 6: pipeline parallelism (point-to-point synchronization) versus
// wavefront doall (all-to-all barriers) on the same dependence pattern.
//
// Two comparisons:
//   * wall-clock GF/s on a seidel-style sweep over a cell grid, for
//     several grid shapes (start-up/draining hurts wavefront most when
//     the grid is long and thin),
//   * synchronization structure: the pipeline performs point-to-point
//     waits only; the wavefront executes rows+cols-1 all-to-all barriers
//     (reported as counters).
#include "common/bench_common.hpp"
#include "common/native_pipeline.hpp"

namespace polyast::bench {
namespace {

/// Synthetic cell work: a small stencil block so synchronization overhead
/// is visible but not dominant.
struct CellGrid {
  std::int64_t rows, cols, work;
  std::vector<double> data;
  CellGrid(std::int64_t r, std::int64_t c, std::int64_t w)
      : rows(r), cols(c), work(w),
        data(static_cast<std::size_t>((r + 1) * (c + 1) * w)) {
    seed(data, "grid");
  }
  void cell(std::int64_t r, std::int64_t c) {
    // Depends on north and west blocks (true pipeline pattern).
    double* __restrict me =
        &data[static_cast<std::size_t>(((r + 1) * (cols + 1) + (c + 1)) *
                                       work)];
    const double* __restrict north =
        &data[static_cast<std::size_t>((r * (cols + 1) + (c + 1)) * work)];
    const double* __restrict west =
        &data[static_cast<std::size_t>(((r + 1) * (cols + 1) + c) * work)];
    for (std::int64_t i = 0; i < work; ++i)
      me[i] = 0.4 * me[i] + 0.3 * north[i] + 0.3 * west[i];
  }
  double flops() const {
    return 5.0 * static_cast<double>(rows) * static_cast<double>(cols) *
           static_cast<double>(work);
  }
};

void runShape(benchmark::State& state, std::int64_t rows, std::int64_t cols,
              bool usePipeline) {
  CellGrid grid(rows, cols, 2048);
  runtime::SyncStats stats;
  for (auto _ : state) {
    auto cell = [&](std::int64_t r, std::int64_t c) { grid.cell(r, c); };
    stats = usePipeline ? runtime::pipeline2D(pool(), rows, cols, cell)
                        : runtime::wavefront2D(pool(), rows, cols, cell);
    benchmark::ClobberMemory();
  }
  reportGflops(state, grid.flops());
  state.counters["barriers"] = static_cast<double>(stats.barriers);
  state.counters["p2p_waits"] = static_cast<double>(stats.pointToPointWaits);
  state.counters["spin_iters"] = static_cast<double>(stats.spinIterations);
}

void BM_pipe_square(benchmark::State& s) { runShape(s, 64, 64, true); }
void BM_wave_square(benchmark::State& s) { runShape(s, 64, 64, false); }
void BM_pipe_wide(benchmark::State& s) { runShape(s, 8, 512, true); }
void BM_wave_wide(benchmark::State& s) { runShape(s, 8, 512, false); }
void BM_pipe_tall(benchmark::State& s) { runShape(s, 512, 8, true); }
void BM_wave_tall(benchmark::State& s) { runShape(s, 512, 8, false); }

BENCHMARK(BM_pipe_square)->Name("fig6/pipeline/64x64")->UseRealTime();
BENCHMARK(BM_wave_square)->Name("fig6/wavefront/64x64")->UseRealTime();
BENCHMARK(BM_pipe_wide)->Name("fig6/pipeline/8x512")->UseRealTime();
BENCHMARK(BM_wave_wide)->Name("fig6/wavefront/8x512")->UseRealTime();
BENCHMARK(BM_pipe_tall)->Name("fig6/pipeline/512x8")->UseRealTime();
BENCHMARK(BM_wave_tall)->Name("fig6/wavefront/512x8")->UseRealTime();

// The concrete seidel-2d instantiation of the same contrast.
void BM_seidel_pipe(benchmark::State& s) {
  static Seidel2dProblem p(10, 500);
  for (auto _ : s) {
    s.PauseTiming();
    p.reset();
    s.ResumeTiming();
    seidel2dPolyast(p, pool());
  }
  reportGflops(s, p.flops());
}
void BM_seidel_wave(benchmark::State& s) {
  static Seidel2dProblem p(10, 500);
  for (auto _ : s) {
    s.PauseTiming();
    p.reset();
    s.ResumeTiming();
    seidel2dPocc(p, pool());
  }
  reportGflops(s, p.flops());
}
BENCHMARK(BM_seidel_pipe)->Name("fig6/seidel-2d/pipeline")->UseRealTime();
BENCHMARK(BM_seidel_wave)->Name("fig6/seidel-2d/wavefront")->UseRealTime();

}  // namespace
}  // namespace polyast::bench

BENCHMARK_MAIN();
