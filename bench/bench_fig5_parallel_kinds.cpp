// Figure 5: the three micro-examples contrasting the poly+AST strategy
// (use the outermost parallelism *of the locality-best loop order*,
// whatever its kind) against the doall-only strategy (permute until the
// outer loop is doall, sacrificing per-thread locality).
//
//   copy:      A[i][j] = alpha * B[i][j]        — both flows identical
//   colsum:    S[j]   += alpha * X[i][j]        — reduction vs permuted doall
//   stencil:   C[i][j] = f(C[i-1][j], ...)      — pipeline vs permuted doall
#include "common/bench_common.hpp"

namespace polyast::bench {
namespace {

constexpr std::int64_t N = 1500;

struct Fig5Data {
  std::vector<double> A, B, S, X, C;
  Fig5Data()
      : A(N * N), B(N * N), S(N), X(N * N), C(N * N) {
    seed(B, "B");
    seed(X, "X");
    reset();
  }
  void reset() {
    std::fill(A.begin(), A.end(), 0.0);
    std::fill(S.begin(), S.end(), 0.0);
    seed(C, "C");
  }
};

Fig5Data& data() {
  static Fig5Data d;
  return d;
}

const double alpha = 1.5;

// ---- copy (doall in both flows) ------------------------------------------
void BM_copy(benchmark::State& state) {
  auto& d = data();
  for (auto _ : state) {
    runtime::parallelForBlocked(pool(), 0, N, [&](std::int64_t lo,
                                                  std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i)
        for (std::int64_t j = 0; j < N; ++j)
          d.A[i * N + j] = alpha * d.B[i * N + j];
    });
    benchmark::ClobberMemory();
  }
  reportGflops(state, static_cast<double>(N) * N);
}
BENCHMARK(BM_copy)->Name("fig5/copy/both")->UseRealTime();

// ---- column sum ------------------------------------------------------------
void BM_colsum_reduction(benchmark::State& state) {
  // poly+AST: (i, j) order kept (stride-1 X rows), S as array reduction.
  auto& d = data();
  for (auto _ : state) {
    state.PauseTiming();
    std::fill(d.S.begin(), d.S.end(), 0.0);
    state.ResumeTiming();
    runtime::parallelReduce(
        pool(), 0, N, d.S.data(), static_cast<std::size_t>(N),
        [&](double* sPriv, std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            const double* __restrict x = &d.X[i * N];
            for (std::int64_t j = 0; j < N; ++j) sPriv[j] += alpha * x[j];
          }
        });
    benchmark::ClobberMemory();
  }
  reportGflops(state, 2.0 * static_cast<double>(N) * N);
}
void BM_colsum_doall(benchmark::State& state) {
  // doall-only: j permuted outermost — each thread walks an X column
  // (stride N).
  auto& d = data();
  for (auto _ : state) {
    state.PauseTiming();
    std::fill(d.S.begin(), d.S.end(), 0.0);
    state.ResumeTiming();
    runtime::parallelFor(pool(), 0, N, [&](std::int64_t j) {
      double acc = 0.0;
      for (std::int64_t i = 0; i < N; ++i) acc += alpha * d.X[i * N + j];
      d.S[j] += acc;
    });
    benchmark::ClobberMemory();
  }
  reportGflops(state, 2.0 * static_cast<double>(N) * N);
}
BENCHMARK(BM_colsum_reduction)->Name("fig5/colsum/polyast_reduction")->UseRealTime();
BENCHMARK(BM_colsum_doall)->Name("fig5/colsum/doall_only")->UseRealTime();

// ---- column stencil ----------------------------------------------------------
void BM_stencil_pipeline(benchmark::State& state) {
  // poly+AST: keep (i, j) — stride-1 inner j — and pipeline the i-carried
  // dependence over row blocks.
  auto& d = data();
  constexpr std::int64_t kBlk = 64;
  std::int64_t rb = (N - 2 + kBlk - 1) / kBlk;
  std::int64_t cb = (N + kBlk - 1) / kBlk;
  for (auto _ : state) {
    state.PauseTiming();
    seed(d.C, "C");
    state.ResumeTiming();
    runtime::pipeline2D(pool(), rb, cb, [&](std::int64_t r, std::int64_t c) {
      std::int64_t ilo = 1 + r * kBlk, ihi = std::min(N - 1, ilo + kBlk);
      std::int64_t jlo = c * kBlk, jhi = std::min(N, jlo + kBlk);
      for (std::int64_t i = ilo; i < ihi; ++i) {
        const double* __restrict cn = &d.C[(i - 1) * N];
        double* __restrict cc = &d.C[i * N];
        const double* __restrict cs = &d.C[(i + 1) * N];
        for (std::int64_t j = jlo; j < jhi; ++j)
          cc[j] = 0.33 * (cn[j] + cc[j] + cs[j]);
      }
    });
    benchmark::ClobberMemory();
  }
  reportGflops(state, 3.0 * static_cast<double>(N - 2) * N);
}
void BM_stencil_doall(benchmark::State& state) {
  // doall-only: j permuted outermost (legal — no j-carried dependence) so
  // every thread walks C columns with stride N.
  auto& d = data();
  for (auto _ : state) {
    state.PauseTiming();
    seed(d.C, "C");
    state.ResumeTiming();
    runtime::parallelFor(pool(), 0, N, [&](std::int64_t j) {
      for (std::int64_t i = 1; i < N - 1; ++i)
        d.C[i * N + j] = 0.33 * (d.C[(i - 1) * N + j] + d.C[i * N + j] +
                                 d.C[(i + 1) * N + j]);
    });
    benchmark::ClobberMemory();
  }
  reportGflops(state, 3.0 * static_cast<double>(N - 2) * N);
}
BENCHMARK(BM_stencil_pipeline)->Name("fig5/stencil/polyast_pipeline")->UseRealTime();
BENCHMARK(BM_stencil_doall)->Name("fig5/stencil/doall_only")->UseRealTime();

}  // namespace
}  // namespace polyast::bench

BENCHMARK_MAIN();
