// Figure 8: kernels whose dominant parallelism is a reduction
// (atax, bicg, cholesky, correlation, covariance, gemver, mvt, symm,
// trisolv). The poly+AST flow keeps the locality-best order and uses the
// array-reduction runtime; the doall-only baseline permutes loops to find
// an outer doall (column walks over the matrices).
#include "common/bench_driver.hpp"
#include "common/native_reduction.hpp"

namespace polyast::bench {
namespace {

#define POLYAST_BENCH3(KERNEL, PROB, ORIG, POCC, POLYAST)                   \
  PROB& KERNEL##P();                                                        \
  void BM_##KERNEL##_orig(benchmark::State& s) {                            \
    timeVariant(s, KERNEL##P(), ORIG, ORIG, #KERNEL "/orig");               \
  }                                                                         \
  void BM_##KERNEL##_pocc(benchmark::State& s) {                            \
    timeVariant(s, KERNEL##P(), ORIG, [](PROB& p) { POCC(p, pool()); },     \
                #KERNEL "/pocc");                                           \
  }                                                                         \
  void BM_##KERNEL##_polyast(benchmark::State& s) {                         \
    timeVariant(s, KERNEL##P(), ORIG, [](PROB& p) { POLYAST(p, pool()); },  \
                #KERNEL "/polyast");                                        \
  }                                                                         \
  BENCHMARK(BM_##KERNEL##_orig)->Name("fig8/" #KERNEL "/orig")->UseRealTime();      \
  BENCHMARK(BM_##KERNEL##_pocc)->Name("fig8/" #KERNEL "/pocc")->UseRealTime();      \
  BENCHMARK(BM_##KERNEL##_polyast)->Name("fig8/" #KERNEL "/polyast")->UseRealTime();

POLYAST_BENCH3(atax, AtaxProblem, ataxOrig, ataxPocc, ataxPolyast)
AtaxProblem& ataxP() {
  static AtaxProblem p(1400, 1400);
  return p;
}

POLYAST_BENCH3(bicg, BicgProblem, bicgOrig, bicgPocc, bicgPolyast)
BicgProblem& bicgP() {
  static BicgProblem p(1400, 1400);
  return p;
}

POLYAST_BENCH3(mvt, MvtProblem, mvtOrig, mvtPocc, mvtPolyast)
MvtProblem& mvtP() {
  static MvtProblem p(1400);
  return p;
}

POLYAST_BENCH3(gemver, GemverProblem, gemverOrig, gemverPocc, gemverPolyast)
GemverProblem& gemverP() {
  static GemverProblem p(1200);
  return p;
}

POLYAST_BENCH3(symm, SymmProblem, symmOrig, symmPocc, symmPolyast)
SymmProblem& symmP() {
  static SymmProblem p(256, 256);
  return p;
}

// Guided-schedule variant: measures what the shared-counter schedule buys
// on symm's triangular trip space over static contiguous chunks.
void BM_symm_polyast_guided(benchmark::State& s) {
  timeVariant(s, symmP(), symmOrig,
              [](SymmProblem& p) { symmPolyastGuided(p, pool()); },
              "symm/polyast-guided");
}
BENCHMARK(BM_symm_polyast_guided)
    ->Name("fig8/symm/polyast-guided")
    ->UseRealTime();

POLYAST_BENCH3(trisolv, TrisolvProblem, trisolvOrig, trisolvPocc,
               trisolvPolyast)
TrisolvProblem& trisolvP() {
  static TrisolvProblem p(1600);
  return p;
}

POLYAST_BENCH3(cholesky, CholeskyProblem, choleskyOrig, choleskyPocc,
               choleskyPolyast)
CholeskyProblem& choleskyP() {
  static CholeskyProblem p(400);
  return p;
}

POLYAST_BENCH3(correlation, CorrelationProblem, correlationOrig,
               correlationPocc, correlationPolyast)
CorrelationProblem& correlationP() {
  static CorrelationProblem p(450, 450);
  return p;
}

POLYAST_BENCH3(covariance, CovarianceProblem, covarianceOrig,
               covariancePocc, covariancePolyast)
CovarianceProblem& covarianceP() {
  static CovarianceProblem p(450, 450);
  return p;
}

}  // namespace
}  // namespace polyast::bench

BENCHMARK_MAIN();
