#!/usr/bin/env bash
# clang-tidy warning-count gate (see .clang-tidy for the check set).
#
# Runs clang-tidy over every translation unit in the compile database and
# compares the number of distinct warnings against the checked-in
# baseline (ci/clang-tidy-baseline.txt). The count must never increase;
# when a PR removes warnings, re-run with --update-baseline and commit
# the lowered number so the gate ratchets down.
#
# Usage: tools/check_clang_tidy.sh BUILD_DIR [--update-baseline]
#
# The baseline value -1 means "uncalibrated": the script prints the
# measured count and exits 0 so a maintainer can record the first real
# number (CI uploads the log as an artifact either way).
set -euo pipefail

build_dir=${1:?usage: $0 BUILD_DIR [--update-baseline]}
update=${2:-}
repo_root=$(cd "$(dirname "$0")/.." && pwd)
baseline_file="$repo_root/ci/clang-tidy-baseline.txt"

[ -f "$build_dir/compile_commands.json" ] || {
  echo "error: $build_dir has no compile_commands.json" \
       "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
  exit 1
}

runner=$(command -v run-clang-tidy || command -v run-clang-tidy-18 || true)
[ -n "$runner" ] || { echo "error: run-clang-tidy not found" >&2; exit 1; }

log=$(mktemp)
# run-clang-tidy exits non-zero when any warning fires; the gate is the
# count comparison below, not the raw exit code.
"$runner" -quiet -p "$build_dir" "$repo_root/(src|tools)/.*\.cpp$" \
  >"$log" 2>&1 || true

# One line per distinct warning site (file:line:col + check name), so a
# header warning surfacing in many TUs counts once.
count=$(grep -E 'warning: .* \[[a-z0-9,-]+\]$' "$log" | sort -u | wc -l)
echo "clang-tidy: $count distinct warning(s)"
grep -E 'warning: .* \[[a-z0-9,-]+\]$' "$log" | sort -u | head -50 || true

if [ "$update" = "--update-baseline" ]; then
  printf '%s\n' "$count" >"$baseline_file"
  echo "baseline updated: $baseline_file = $count"
  exit 0
fi

baseline=$(grep -v '^#' "$baseline_file" | head -1)
if [ "$baseline" = "-1" ]; then
  echo "baseline uncalibrated; measured $count." \
       "Record it with: $0 $build_dir --update-baseline"
  exit 0
fi
if [ "$count" -gt "$baseline" ]; then
  echo "FAIL: $count warning(s) > baseline $baseline" \
       "(fix the new warnings; the count must not increase)" >&2
  exit 1
fi
if [ "$count" -lt "$baseline" ]; then
  echo "NOTE: $count < baseline $baseline —" \
       "ratchet down with --update-baseline"
fi
echo "OK: $count <= baseline $baseline"
