#!/usr/bin/env bash
# clang-tidy warning gate (see .clang-tidy for the check set).
#
# Runs clang-tidy over every translation unit in the compile database and
# counts distinct warnings (file:line:col + check name, so a header
# warning surfacing in many TUs counts once). The gate then enforces the
# mode recorded in ci/clang-tidy-baseline.txt:
#
#   auto  — enforcing merge-base diff mode (the default): the same count
#           is measured at the merge-base of HEAD and --base-ref in a
#           temporary git worktree, and the gate FAILS when HEAD has more
#           distinct warnings than the base. No checked-in number to go
#           stale; every PR is compared against exactly the code it
#           branched from.
#   N     — fixed ceiling (legacy ratchet): fail when the count exceeds
#           N; re-record a lower N with --update-baseline when a PR
#           removes warnings.
#   -1    — uncalibrated: print the measured count and exit 0.
#
# Usage: tools/check_clang_tidy.sh BUILD_DIR [--update-baseline]
#                                            [--base-ref REF]
#
# --base-ref defaults to origin/main (falling back to main). When the
# base cannot be resolved at all (e.g. a shallow clone or the very first
# push of a branch) the gate reports the head count and exits 0 — the
# enforcing comparison happens on the PR, where the base is known.
set -euo pipefail

usage() {
  echo "usage: $0 BUILD_DIR [--update-baseline] [--base-ref REF]" >&2
  exit 1
}

build_dir=${1:-}
[ -n "$build_dir" ] || usage
shift
update=0
base_ref=
while [ $# -gt 0 ]; do
  case $1 in
    --update-baseline) update=1 ;;
    --base-ref) base_ref=${2:?--base-ref needs a ref}; shift ;;
    --base-ref=*) base_ref=${1#*=} ;;
    *) usage ;;
  esac
  shift
done

repo_root=$(cd "$(dirname "$0")/.." && pwd)
baseline_file="$repo_root/ci/clang-tidy-baseline.txt"

[ -f "$build_dir/compile_commands.json" ] || {
  echo "error: $build_dir has no compile_commands.json" \
       "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
  exit 1
}

runner=$(command -v run-clang-tidy || command -v run-clang-tidy-18 || true)
[ -n "$runner" ] || { echo "error: run-clang-tidy not found" >&2; exit 1; }

# Prints one line per distinct warning site found under $2 (a tree root)
# using the compile database in $1. run-clang-tidy exits non-zero when
# any warning fires; the gate is the comparison below, not the exit code.
list_warnings() {
  local log
  log=$(mktemp)
  "$runner" -quiet -p "$1" "$2/(src|tools)/.*\.cpp$" >"$log" 2>&1 || true
  grep -E 'warning: .* \[[a-z0-9,-]+\]$' "$log" | sort -u || true
  rm -f "$log"
}

head_lines=$(mktemp)
list_warnings "$build_dir" "$repo_root" >"$head_lines"
count=$(wc -l <"$head_lines")
echo "clang-tidy: $count distinct warning(s) at HEAD"
head -50 "$head_lines"
rm -f "$head_lines"

if [ "$update" = 1 ]; then
  printf '%s\n' "$count" >"$baseline_file"
  echo "baseline updated: $baseline_file = $count"
  exit 0
fi

baseline=$(grep -v '^#' "$baseline_file" | head -1)

if [ "$baseline" = "auto" ]; then
  ref=${base_ref:-origin/main}
  base_sha=$(git -C "$repo_root" merge-base HEAD "$ref" 2>/dev/null || true)
  [ -n "$base_sha" ] ||
    base_sha=$(git -C "$repo_root" merge-base HEAD main 2>/dev/null || true)
  if [ -z "$base_sha" ]; then
    echo "NOTE: cannot resolve a base commit (ref '$ref');" \
         "measured $count warning(s), diff gate skipped"
    exit 0
  fi
  if [ "$(git -C "$repo_root" rev-parse HEAD)" = "$base_sha" ]; then
    echo "OK: HEAD is the base commit ($count warning(s), nothing to diff)"
    exit 0
  fi
  worktree=$(mktemp -d)
  cleanup() {
    git -C "$repo_root" worktree remove --force "$worktree" \
      >/dev/null 2>&1 || true
    rm -rf "$worktree"
  }
  trap cleanup EXIT
  git -C "$repo_root" worktree add --detach "$worktree" "$base_sha" \
    >/dev/null
  cmake -S "$worktree" -B "$worktree/build" -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  base_lines=$(mktemp)
  list_warnings "$worktree/build" "$worktree" >"$base_lines"
  base_count=$(wc -l <"$base_lines")
  rm -f "$base_lines"
  echo "clang-tidy: $base_count distinct warning(s) at base" \
       "${base_sha:0:12}"
  if [ "$count" -gt "$base_count" ]; then
    echo "FAIL: HEAD has $count warning(s) > base $base_count" \
         "(fix the new warnings; the count must not increase)" >&2
    exit 1
  fi
  echo "OK: $count <= base $base_count"
  exit 0
fi

if [ "$baseline" = "-1" ]; then
  echo "baseline uncalibrated; measured $count." \
       "Record it with: $0 $build_dir --update-baseline"
  exit 0
fi
if [ "$count" -gt "$baseline" ]; then
  echo "FAIL: $count warning(s) > baseline $baseline" \
       "(fix the new warnings; the count must not increase)" >&2
  exit 1
fi
if [ "$count" -lt "$baseline" ]; then
  echo "NOTE: $count < baseline $baseline —" \
       "ratchet down with --update-baseline"
fi
echo "OK: $count <= baseline $baseline"
