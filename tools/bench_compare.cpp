// bench_compare — the benchmark-regression gate.
//
// Ingests per-kernel timing/counter data (polyast-dlcheck-v1 artifacts
// from `polyastc --execute --perf-out`, polyast-metrics-v1 files from
// the benches' POLYAST_BENCH_METRICS, and/or polyast-compile-profile-v1
// artifacts from `polyastc --compile-profile-out` / bench_compile_scale),
// appends one entry to a versioned history file (BENCH_<host>.json,
// schema polyast-bench-history-v1), compares against the previous entry,
// and exits nonzero when any kernel's wall time regressed beyond the
// threshold.
//
// Usage:
//   bench_compare --history FILE [--dlcheck FILE]... [--metrics FILE]...
//                 [--compile-profile FILE]...
//                 [--label STR] [--timestamp STR] [--host STR]
//                 [--threshold PCT] [--max-entries N] [--record-only]
//   bench_compare --selftest
//
//   --dlcheck FILE    one sample per kernel in the artifact (wall_ns +
//                     hardware counters when not degraded); kernels
//                     measured on a non-default execution backend are
//                     named `kernel@backend` so native and interpreted
//                     timings form separate history series
//   --metrics FILE    one sample named after the file's basename;
//                     wall_ns comes from the `perf.wall_ns` counter
//                     (fallback: gauge `flow.total_millis` * 1e6),
//                     counters from every `perf.*` counter and gauge
//                     (the benches' backend-comparison gauges
//                     `perf.backend_*` ride along here)
//   --compile-profile FILE  one sample per SCoP row, named
//                     `compile@<scop>` with wall_ns = compile_ms * 1e6;
//                     the row's selfprof counters plus rss_hwm_kb /
//                     statements / loops ride along, so compile-time
//                     regressions gate exactly like kernel wall time
//
// Passing the same suite artifact several times (CI runs the measurement
// N>=3 times) collapses repeated samples of one kernel to their median
// wall time; the observed spread is kept as `wall_ns_min` / `wall_ns_max`
// / `wall_spread_pct` / `repeats` counters, so the history characterizes
// the runner's timing variance instead of hiding it.
//   --threshold PCT   per-kernel wall-time growth that fails the gate
//                     (default 10)
//   --auto-threshold  variance characterization: judge each series
//                     against its own measured noise instead of the
//                     global threshold. A series' noise floor is the
//                     largest `wall_spread_pct` ever recorded for it
//                     (all history entries plus the head run); its gate
//                     is clamp(--threshold-floor,
//                     --threshold-mult x noise_floor, --max-threshold).
//                     Quiet kernels gate tightly; a kernel whose repeats
//                     routinely disagree by 8% is not failed at 5%.
//   --threshold-floor PCT  auto-threshold lower clamp (default 5)
//   --threshold-mult M     auto-threshold noise multiplier (default 3)
//   --max-threshold PCT    auto-threshold upper clamp (default 25)
//   --max-entries N   history entries kept after appending (default 50)
//   --record-only     append + report, never fail (CI seeding mode)
//   --selftest        run the built-in first-run / no-regression /
//                     injected-20%-slowdown / auto-threshold /
//                     compile-profile-gate / cross-entry-noise checks
//                     and exit
//
// Setting POLYAST_BENCH_GATE=warn in the environment downgrades detected
// regressions to a warning (exit 0) — the escape hatch for unblocking CI
// while a noisy runner or an accepted slowdown is being dealt with.
//
// Exit codes: 0 ok (including first run), 1 usage/io/malformed input,
// 5 regression detected.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_history.hpp"
#include "obs/json.hpp"
#include "support/error.hpp"

using namespace polyast;

namespace {

int usage() {
  std::cerr
      << "usage: bench_compare --history FILE [--dlcheck FILE]..."
         " [--metrics FILE]...\n"
         "                     [--compile-profile FILE]...\n"
         "                     [--label STR] [--timestamp STR] [--host STR]\n"
         "                     [--threshold PCT] [--auto-threshold]\n"
         "                     [--threshold-floor PCT] [--threshold-mult M]\n"
         "                     [--max-threshold PCT] [--max-entries N]"
         " [--record-only]\n"
         "       bench_compare --selftest\n"
         "POLYAST_BENCH_GATE=warn downgrades regressions to exit 0\n"
         "exit codes: 0 ok/first-run, 1 usage/io, 5 regression\n";
  return 1;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  POLYAST_CHECK(in.good(), "cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Samples from a polyast-dlcheck-v1 artifact: one per kernel.
void ingestDlCheck(const std::string& path,
                   std::vector<obs::BenchKernelSample>& out) {
  obs::JsonValue root = obs::parseJson(slurp(path));
  const obs::JsonValue* schema = root.find("schema");
  POLYAST_CHECK(schema && schema->isString() &&
                    schema->text == "polyast-dlcheck-v1",
                path + ": not a polyast-dlcheck-v1 artifact");
  const obs::JsonValue* kernels = root.find("kernels");
  POLYAST_CHECK(kernels && kernels->isArray(), path + ": no kernels array");
  for (const obs::JsonValue& k : kernels->items) {
    obs::BenchKernelSample sample;
    const obs::JsonValue* name = k.find("kernel");
    POLYAST_CHECK(name && name->isString(), path + ": kernel without name");
    sample.kernel = name->text;
    // Native-backend measurements get their own history series: a JIT run
    // and an interpreted run of one kernel are different experiments.
    // Likewise packed-SIMD native runs ("simd":"on") vs scalar native —
    // they execute different machine code, so `gemm@native-simd` and
    // `gemm@native` are separate series.
    if (const obs::JsonValue* backend = k.find("backend");
        backend && backend->isString() && backend->text != "interp") {
      sample.kernel += "@" + backend->text;
      if (const obs::JsonValue* simd = k.find("simd");
          simd && simd->isString() && simd->text == "on")
        sample.kernel += "-simd";
    }
    // Relaxed-reduction schedules too: the widened schedule space changes
    // what executes, so strict and relaxed timings must not be compared
    // against each other.
    if (const obs::JsonValue* red = k.find("reductions");
        red && red->isString() && red->text == "relaxed")
      sample.kernel += "@relaxed";
    const obs::JsonValue* measured = k.find("measured");
    POLYAST_CHECK(measured && measured->isObject(),
                  path + ": kernel without measured object");
    const obs::JsonValue* wall = measured->find("wall_ns");
    POLYAST_CHECK(wall && wall->isNumber(),
                  path + ": measured without wall_ns");
    sample.wallNs = wall->number;
    if (const obs::JsonValue* c = measured->find("counters");
        c && c->isObject())
      for (const auto& [cname, cv] : c->members)
        if (cv.isNumber()) sample.counters[cname] = cv.number;
    out.push_back(std::move(sample));
  }
}

/// Samples from a polyast-compile-profile-v1 artifact: one per SCoP row,
/// as `compile@<scop>` series. The measured quantity is the compiler's
/// own per-SCoP wall time (`compile_ms`), so a scheduling-search or
/// FM-core slowdown trips the same gate machinery as a kernel runtime
/// regression. The row's operation counters and shape (statements,
/// loops, rss_hwm_kb) ride along as counters for post-hoc diagnosis.
void ingestCompileProfile(const std::string& path,
                          std::vector<obs::BenchKernelSample>& out) {
  obs::JsonValue root = obs::parseJson(slurp(path));
  const obs::JsonValue* schema = root.find("schema");
  POLYAST_CHECK(schema && schema->isString() &&
                    schema->text == "polyast-compile-profile-v1",
                path + ": not a polyast-compile-profile-v1 artifact");
  const obs::JsonValue* scops = root.find("scops");
  POLYAST_CHECK(scops && scops->isArray(), path + ": no scops array");
  for (const obs::JsonValue& s : scops->items) {
    obs::BenchKernelSample sample;
    const obs::JsonValue* name = s.find("scop");
    POLYAST_CHECK(name && name->isString(), path + ": scop without name");
    sample.kernel = "compile@" + name->text;
    const obs::JsonValue* ms = s.find("compile_ms");
    POLYAST_CHECK(ms && ms->isNumber(), path + ": scop without compile_ms");
    sample.wallNs = ms->number * 1e6;
    if (const obs::JsonValue* c = s.find("counters"); c && c->isObject())
      for (const auto& [cname, cv] : c->members)
        if (cv.isNumber()) sample.counters[cname] = cv.number;
    for (const char* shape : {"statements", "loops", "rss_hwm_kb"})
      if (const obs::JsonValue* v = s.find(shape); v && v->isNumber())
        sample.counters[shape] = v->number;
    out.push_back(std::move(sample));
  }
}

std::string baseName(const std::string& path) {
  std::string name = path;
  if (auto slash = name.find_last_of('/'); slash != std::string::npos)
    name = name.substr(slash + 1);
  if (auto dot = name.find_last_of('.'); dot != std::string::npos)
    name = name.substr(0, dot);
  return name;
}

/// One sample from a polyast-metrics-v1 snapshot (a whole bench process),
/// named after the file.
void ingestMetrics(const std::string& path,
                   std::vector<obs::BenchKernelSample>& out) {
  obs::JsonValue root = obs::parseJson(slurp(path));
  const obs::JsonValue* schema = root.find("schema");
  POLYAST_CHECK(schema && schema->isString() &&
                    schema->text == "polyast-metrics-v1",
                path + ": not a polyast-metrics-v1 artifact");
  obs::BenchKernelSample sample;
  sample.kernel = baseName(path);
  const obs::JsonValue* counters = root.find("counters");
  if (counters && counters->isObject()) {
    for (const auto& [name, v] : counters->members) {
      if (name.rfind("perf.", 0) == 0 && v.isNumber())
        sample.counters[name.substr(5)] = v.number;
    }
  }
  if (const obs::JsonValue* gauges = root.find("gauges");
      gauges && gauges->isObject()) {
    // perf.* gauges (e.g. the benches' backend_interp_wall_ns /
    // backend_native_wall_ns comparison) ride along as counters.
    for (const auto& [name, v] : gauges->members) {
      if (name.rfind("perf.", 0) == 0 && v.isNumber())
        sample.counters.emplace(name.substr(5), v.number);
    }
  }
  if (auto it = sample.counters.find("wall_ns");
      it != sample.counters.end()) {
    sample.wallNs = it->second;
    sample.counters.erase(it);
  } else if (const obs::JsonValue* gauges = root.find("gauges")) {
    const obs::JsonValue* total =
        gauges->isObject() ? gauges->find("flow.total_millis") : nullptr;
    POLYAST_CHECK(total && total->isNumber(),
                  path + ": no perf.wall_ns counter and no "
                         "flow.total_millis gauge to time by");
    sample.wallNs = total->number * 1e6;
  }
  out.push_back(std::move(sample));
}

/// Collapses repeated samples of one kernel (the same suite measured
/// N times) into a single median-wall-time sample that carries the
/// observed spread: `wall_ns_min`, `wall_ns_max`, `wall_spread_pct`
/// ((max-min)/median) and `repeats` counters. Single samples pass
/// through untouched. First-appearance order is preserved.
void collapseRepeats(std::vector<obs::BenchKernelSample>& samples) {
  std::vector<std::string> order;
  std::map<std::string, std::vector<obs::BenchKernelSample>> byKernel;
  for (auto& s : samples) {
    if (byKernel.find(s.kernel) == byKernel.end()) order.push_back(s.kernel);
    byKernel[s.kernel].push_back(std::move(s));
  }
  samples.clear();
  for (const auto& kernel : order) {
    auto& group = byKernel[kernel];
    if (group.size() == 1) {
      samples.push_back(std::move(group.front()));
      continue;
    }
    std::sort(group.begin(), group.end(),
              [](const obs::BenchKernelSample& a,
                 const obs::BenchKernelSample& b) {
                return a.wallNs < b.wallNs;
              });
    // The median sample keeps its own hardware counters — averaging
    // counters across repeats would fabricate a reading no run produced.
    obs::BenchKernelSample median = group[(group.size() - 1) / 2];
    const double lo = group.front().wallNs;
    const double hi = group.back().wallNs;
    median.counters["wall_ns_min"] = lo;
    median.counters["wall_ns_max"] = hi;
    if (median.wallNs > 0.0)
      median.counters["wall_spread_pct"] = (hi - lo) / median.wallNs * 100.0;
    median.counters["repeats"] = static_cast<double>(group.size());
    samples.push_back(std::move(median));
  }
}

/// Per-series gates for --auto-threshold:
/// clamp(floorPct, mult x noise_floor, capPct) per kernel.
std::map<std::string, double> characterizedThresholds(
    const obs::BenchHistory& history, const obs::BenchEntry& head,
    double floorPct, double mult, double capPct) {
  std::map<std::string, double> out;
  for (const auto& [kernel, noise] :
       obs::characterizeNoiseFloor(history, head))
    out[kernel] = std::clamp(mult * noise, floorPct, capPct);
  return out;
}

void printResult(const obs::BenchCompareResult& res, double thresholdPct,
                 bool autoThreshold) {
  if (res.firstRun) {
    std::cerr << "bench_compare: first run, history seeded (no baseline to"
                 " compare against)\n";
    return;
  }
  for (const auto& d : res.deltas) {
    std::fprintf(stderr,
                 "  %-24s %12.0f ns -> %12.0f ns  %+7.2f%% (gate +%.1f%%)%s\n",
                 d.kernel.c_str(), d.baseNs, d.headNs, d.deltaPct,
                 d.thresholdPct, d.regression ? "  REGRESSION" : "");
  }
  for (const auto& k : res.added)
    std::cerr << "  " << k << ": new kernel (no baseline)\n";
  for (const auto& k : res.removed)
    std::cerr << "  " << k << ": dropped since previous entry\n";
  std::cerr << "bench_compare: " << res.deltas.size() << " kernel(s), "
            << res.regressions << " regression(s) beyond ";
  if (autoThreshold)
    std::cerr << "their characterized per-series thresholds\n";
  else
    std::cerr << "+" << thresholdPct << "%\n";
}

/// Built-in check of the gate itself: first-run, no-regression, and an
/// injected 20% slowdown that the default threshold must catch, exercised
/// through a real file round-trip.
int selftest() {
  const std::string path = "bench_compare_selftest_history.json";
  auto entry = [](double gemmNs, double mvtNs) {
    obs::BenchEntry e;
    e.label = "selftest";
    e.kernels.push_back({"gemm", gemmNs, {{"cycles", gemmNs * 3.0}}});
    e.kernels.push_back({"mvt", mvtNs, {}});
    return e;
  };
  int failures = 0;
  auto expect = [&](bool ok, const char* what) {
    std::cerr << "  " << (ok ? "ok" : "FAIL") << ": " << what << "\n";
    if (!ok) ++failures;
  };
  try {
    // 1. First run: empty history, nothing to compare.
    obs::BenchHistory history = obs::loadBenchHistory(path + ".missing", "ci");
    obs::BenchCompareResult r =
        obs::compareAgainstLatest(history, entry(1000000, 500000), 10.0);
    expect(r.firstRun && r.regressions == 0, "first run records only");
    history.entries.push_back(entry(1000000, 500000));
    obs::saveBenchHistory(path, history);

    // 2. No regression: same times within noise (+2%).
    history = obs::loadBenchHistory(path, "ci");
    expect(history.entries.size() == 1, "history round-trips through disk");
    r = obs::compareAgainstLatest(history, entry(1020000, 495000), 10.0);
    expect(!r.firstRun && r.regressions == 0 && r.deltas.size() == 2,
           "2% drift passes a 10% gate");

    // 3. Injected 20% slowdown on gemm must be detected.
    r = obs::compareAgainstLatest(history, entry(1200000, 500000), 10.0);
    bool caught = r.regressions == 1 && !r.deltas.empty();
    bool rightKernel = false;
    for (const auto& d : r.deltas)
      if (d.kernel == "gemm" && d.regression &&
          std::fabs(d.deltaPct - 20.0) < 0.5)
        rightKernel = true;
    expect(caught && rightKernel, "injected 20% slowdown detected on gemm");

    // 4. The slowdown passes a record-only style looser threshold of 25%.
    r = obs::compareAgainstLatest(history, entry(1200000, 500000), 25.0);
    expect(r.regressions == 0, "20% slowdown passes a 25% threshold");

    // 5. Three repeats of one kernel collapse to the median with the
    // spread characterized.
    std::vector<obs::BenchKernelSample> reps;
    reps.push_back({"gemm", 1100000, {}});
    reps.push_back({"gemm", 1000000, {}});
    reps.push_back({"gemm", 1050000, {}});
    reps.push_back({"mvt", 500000, {}});
    collapseRepeats(reps);
    bool medianOk = reps.size() == 2 && reps[0].kernel == "gemm" &&
                    reps[0].wallNs == 1050000 && reps[1].wallNs == 500000;
    bool spreadOk = medianOk &&
                    reps[0].counters.at("wall_ns_min") == 1000000 &&
                    reps[0].counters.at("wall_ns_max") == 1100000 &&
                    reps[0].counters.at("repeats") == 3 &&
                    std::fabs(reps[0].counters.at("wall_spread_pct") -
                              100000.0 / 1050000.0 * 100.0) < 1e-9 &&
                    reps[1].counters.count("repeats") == 0;
    expect(medianOk && spreadOk,
           "3 repeats collapse to median with spread counters");

    // 6. --auto-threshold: a quiet series gates at the floor (a real 20%
    // slowdown is still caught), a noisy one absorbs its own spread (a
    // noise-floor-sized delta passes instead of flapping the gate).
    obs::BenchHistory noisyHist;
    noisyHist.host = "ci";
    obs::BenchEntry base = entry(1000000, 500000);
    base.kernels[0].counters["wall_spread_pct"] = 1.0;  // gemm: quiet
    base.kernels[1].counters["wall_spread_pct"] = 6.0;  // mvt: noisy
    noisyHist.entries.push_back(base);
    obs::BenchEntry drift = entry(1200000, 575000);  // gemm +20%, mvt +15%
    auto gates = characterizedThresholds(noisyHist, drift, 5.0, 3.0, 25.0);
    r = obs::compareAgainstLatest(noisyHist, drift, 10.0, &gates);
    bool gemmCaught = false;
    bool mvtPassed = false;
    for (const auto& d : r.deltas) {
      if (d.kernel == "gemm")
        gemmCaught = d.regression && d.thresholdPct == 5.0;
      if (d.kernel == "mvt")
        mvtPassed = !d.regression && d.thresholdPct == 18.0;
    }
    expect(r.regressions == 1 && gemmCaught && mvtPassed,
           "auto-threshold: 20% slowdown caught at the floor, 15% drift on"
           " a 6%-spread series passes its 18% gate");

    // 7. compile@<scop> series from a compile-profile artifact gate
    // exactly like kernel wall time: an injected 20% compile slowdown on
    // one family is caught, the flat family passes.
    auto writeProfile = [](const std::string& file, double deepMs,
                           double wideMs) {
      std::ofstream out(file);
      out << "{\"schema\":\"polyast-compile-profile-v1\","
             "\"pipeline\":\"polyast\",\"scops\":["
             "{\"scop\":\"deep\",\"statements\":2,\"loops\":7,"
             "\"compile_ms\":" << deepMs << ",\"rss_hwm_kb\":0,"
             "\"counters\":{\"fm.eliminations\":10}},"
             "{\"scop\":\"wide\",\"statements\":24,\"loops\":48,"
             "\"compile_ms\":" << wideMs << ",\"rss_hwm_kb\":0,"
             "\"counters\":{\"fm.eliminations\":4}}],"
             "\"residual\":{\"counters\":{\"fm.eliminations\":0}},"
             "\"totals\":{\"rss_hwm_kb\":0,"
             "\"counters\":{\"fm.eliminations\":14}}}\n";
    };
    const std::string profBase = path + ".profile_base.json";
    const std::string profHead = path + ".profile_head.json";
    writeProfile(profBase, 100.0, 40.0);
    writeProfile(profHead, 120.0, 40.5);
    obs::BenchHistory compHist;
    compHist.host = "ci";
    obs::BenchEntry compBase;
    ingestCompileProfile(profBase, compBase.kernels);
    bool ingested = compBase.kernels.size() == 2 &&
                    compBase.kernels[0].kernel == "compile@deep" &&
                    compBase.kernels[0].wallNs == 100.0 * 1e6 &&
                    compBase.kernels[0].counters.at("fm.eliminations") == 10 &&
                    compBase.kernels[0].counters.at("statements") == 2;
    compHist.entries.push_back(compBase);
    obs::BenchEntry compHead;
    ingestCompileProfile(profHead, compHead.kernels);
    r = obs::compareAgainstLatest(compHist, compHead, 10.0);
    bool deepCaught = false;
    bool widePassed = false;
    for (const auto& d : r.deltas) {
      if (d.kernel == "compile@deep")
        deepCaught = d.regression && std::fabs(d.deltaPct - 20.0) < 0.5;
      if (d.kernel == "compile@wide") widePassed = !d.regression;
    }
    expect(ingested && r.regressions == 1 && deepCaught && widePassed,
           "compile-profile rows gate as compile@<scop>: injected 20%"
           " compile slowdown caught");
    std::remove(profBase.c_str());
    std::remove(profHead.c_str());

    // 8. Series without wall_spread_pct anywhere (single-shot compile@
    // rows) get their noise floor from cross-entry wall-time variation,
    // head excluded: 100/108/100 ms history -> 8% spread -> a 24% gate,
    // so a 15% head drift passes instead of flapping at the 5% floor.
    obs::BenchHistory crossHist;
    crossHist.host = "ci";
    for (double ms : {100.0, 108.0, 100.0}) {
      obs::BenchEntry e;
      e.label = "selftest";
      e.kernels.push_back({"compile@deep", ms * 1e6, {}});
      crossHist.entries.push_back(std::move(e));
    }
    obs::BenchEntry crossHead;
    crossHead.kernels.push_back({"compile@deep", 115.0 * 1e6, {}});
    gates = characterizedThresholds(crossHist, crossHead, 5.0, 3.0, 25.0);
    r = obs::compareAgainstLatest(crossHist, crossHead, 10.0, &gates);
    bool gateWidened = gates.count("compile@deep") &&
                       std::fabs(gates.at("compile@deep") - 24.0) < 1e-9;
    expect(gateWidened && r.regressions == 0,
           "cross-entry noise floor: 8% run-to-run spread widens the gate"
           " to 24%, 15% drift passes");
  } catch (const Error& e) {
    std::cerr << "  FAIL: exception: " << e.what() << "\n";
    ++failures;
  }
  std::remove(path.c_str());
  std::cerr << "bench_compare --selftest: "
            << (failures == 0 ? "all checks passed" : "CHECKS FAILED")
            << "\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string historyPath;
  std::vector<std::string> dlcheckFiles;
  std::vector<std::string> metricsFiles;
  std::vector<std::string> compileProfileFiles;
  std::string label = "local";
  std::string timestamp;
  std::string host = "local";
  double thresholdPct = 10.0;
  bool autoThreshold = false;
  double thresholdFloor = 5.0;
  double thresholdMult = 3.0;
  double maxThreshold = 25.0;
  std::size_t maxEntries = 50;
  bool recordOnly = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inlineValue;
    bool hasInline = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      inlineValue = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      hasInline = true;
    }
    auto next = [&]() -> std::string {
      if (hasInline) return inlineValue;
      if (i + 1 >= argc) {
        usage();
        exit(1);
      }
      return argv[++i];
    };
    if (arg == "--selftest") return selftest();
    else if (arg == "--history") historyPath = next();
    else if (arg == "--dlcheck") dlcheckFiles.push_back(next());
    else if (arg == "--metrics") metricsFiles.push_back(next());
    else if (arg == "--compile-profile") compileProfileFiles.push_back(next());
    else if (arg == "--label") label = next();
    else if (arg == "--timestamp") timestamp = next();
    else if (arg == "--host") host = next();
    else if (arg == "--threshold") thresholdPct = std::stod(next());
    else if (arg == "--auto-threshold") autoThreshold = true;
    else if (arg == "--threshold-floor") thresholdFloor = std::stod(next());
    else if (arg == "--threshold-mult") thresholdMult = std::stod(next());
    else if (arg == "--max-threshold") maxThreshold = std::stod(next());
    else if (arg == "--max-entries")
      maxEntries = static_cast<std::size_t>(std::stoul(next()));
    else if (arg == "--record-only") recordOnly = true;
    else return usage();
  }
  if (historyPath.empty() || (dlcheckFiles.empty() && metricsFiles.empty() &&
                              compileProfileFiles.empty()))
    return usage();

  try {
    obs::BenchEntry head;
    head.label = label;
    head.timestamp = timestamp;
    for (const auto& f : dlcheckFiles) ingestDlCheck(f, head.kernels);
    for (const auto& f : metricsFiles) ingestMetrics(f, head.kernels);
    for (const auto& f : compileProfileFiles)
      ingestCompileProfile(f, head.kernels);
    POLYAST_CHECK(!head.kernels.empty(), "no kernel samples in the inputs");
    collapseRepeats(head.kernels);

    obs::BenchHistory history = obs::loadBenchHistory(historyPath, host);
    if (history.host.empty()) history.host = host;
    std::map<std::string, double> gates;
    if (autoThreshold)
      gates = characterizedThresholds(history, head, thresholdFloor,
                                      thresholdMult, maxThreshold);
    obs::BenchCompareResult res = obs::compareAgainstLatest(
        history, head, thresholdPct, autoThreshold ? &gates : nullptr);
    history.entries.push_back(std::move(head));
    obs::saveBenchHistory(historyPath, history, maxEntries);
    printResult(res, thresholdPct, autoThreshold);
    std::cerr << "bench_compare: history '" << historyPath << "' now has "
              << history.entries.size() << " entr"
              << (history.entries.size() == 1 ? "y" : "ies") << "\n";
    if (res.regressions > 0 && !recordOnly) {
      if (const char* gate = std::getenv("POLYAST_BENCH_GATE");
          gate && std::string(gate) == "warn") {
        std::cerr << "bench_compare: POLYAST_BENCH_GATE=warn set —"
                     " reporting the regression(s) without failing\n";
        return 0;
      }
      return 5;
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "bench_compare: error: " << e.what() << "\n";
    return 1;
  }
}
