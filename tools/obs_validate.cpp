// obs_validate — schema validator for observability artifacts.
//
// Usage:
//   obs_validate --trace FILE [--require-span NAME]... [--min-threads N]
//   obs_validate --metrics FILE [--require-counter NAME]...
//                [--require-histogram NAME]...
//                (--require-counter matches counters and gauges)
//   obs_validate --diagnostics FILE [--require-analysis NAME]...
//                [--max-errors N]
//   obs_validate --dlcheck FILE [--require-kernel NAME]...
//                [--min-kernels N] [--require-backend NAME]
//                [--require-simd on|off]
//   obs_validate --attrib FILE [--require-kernel NAME]...
//                [--min-kernels N] [--require-backend NAME]
//                [--min-constructs N]
//   obs_validate --compile-profile FILE [--require-scop NAME]...
//                [--min-scops N]
//
// Used by CI to check that the files produced by `polyastc --trace-out /
// --metrics-out` (and by the benches) conform to the documented schemas
// (docs/OBSERVABILITY.md):
//
//   * trace: Chrome trace-event JSON — top-level object with a
//     "traceEvents" array; every event has string "ph" and "name" plus
//     numeric "pid"/"tid"; "X" events additionally carry numeric
//     "ts"/"dur"; "M" events are thread_name metadata. --require-span
//     asserts that a complete span with the given name exists;
//     --min-threads asserts the number of distinct tids with "X" events.
//   * metrics: "schema" == "polyast-metrics-v1"; "counters"/"gauges"/
//     "histograms"/"notes" objects with the documented member shapes;
//     histogram bucket_counts has |bounds|+1 entries summing to "count".
//   * diagnostics: "schema" == "polyast-diagnostics-v1" as written by
//     `polyastc --diagnostics-out` (docs/ANALYSIS.md) — string
//     program/pipeline, a summary whose errors/warnings/remarks counts
//     match the diagnostics array, and per-diagnostic string fields with
//     severity in {error, warning, remark} and an all-string detail
//     object. --require-analysis asserts at least one diagnostic from the
//     named analysis; --max-errors bounds summary.errors.
//   * dlcheck: "schema" == "polyast-dlcheck-v1" as written by `polyastc
//     --execute --perf-out` — per-kernel predicted (lines/cost/nests) and
//     measured (wall_ns/counters, with degraded bookkeeping) objects plus
//     a summary whose kernel_count matches and whose rank_correlation
//     entries are each null or a number in [-1, 1]. Non-degraded kernels
//     must carry hardware counters; degraded ones must say why. Every
//     kernel entry names the execution backend that produced it.
//     --require-kernel asserts a kernel entry exists; --min-kernels
//     bounds the suite size from below; --require-backend asserts every
//     entry was executed by the named backend (e.g. "native" to catch a
//     silently-degraded JIT run). The optional "simd" field must be
//     "on"/"off" (whether the native run executed packed SIMD
//     microkernels); --require-simd asserts it on every entry — e.g.
//     "on" to catch a toolchain silently rejecting the vector TU.
//   * attrib: "schema" == "polyast-attrib-v1" as written by `polyastc
//     --attrib-out` — per-kernel total/residual readings plus one row per
//     parallel construct (id/kind/iter/nest/enters, predicted
//     lines/cost/iters/nests, measured wall/tsc/counters). The telescoping
//     invariant is enforced: residual + sum(construct rows) must equal the
//     kernel total *exactly* for wall_ns, and for every hardware counter
//     that all rows carry (a counter missing from some row — e.g. a
//     mid-run group-read failure — is skipped, not failed). Per-kernel and
//     pooled rank_correlation entries must each be null or in [-1, 1].
//     --require-kernel / --min-kernels / --require-backend as for dlcheck;
//     --min-constructs bounds the pooled construct count from below.
//   * compile-profile: "schema" == "polyast-compile-profile-v1" as
//     written by `polyastc --compile-profile-out` / `bench_compile_scale
//     --out` — string pipeline (plus optional generator provenance), one
//     row per SCoP (scop/statements/loops/compile_ms/rss_hwm_kb and a
//     counters object), a residual, and totals. Every counters object
//     must carry the same counter names with non-negative integer
//     values; per-row outcome counters must be internally consistent
//     (dep.proven + dep.disproven == dep.tests, dep.sampled_tests <=
//     dep.tests); row rss_hwm_kb gauges cannot exceed the totals gauge
//     (VmHWM is monotone); and the telescoping invariant is exact:
//     residual + sum(rows) == totals for every counter. --require-scop
//     asserts a row exists; --min-scops bounds the row count from below.
//
// Exit code 0 when valid, 1 with a diagnostic on stderr otherwise.
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "support/error.hpp"

using namespace polyast;

namespace {

int usage() {
  std::cerr << "usage: obs_validate --trace FILE [--require-span NAME]..."
               " [--min-threads N]\n"
               "       obs_validate --metrics FILE"
               " [--require-counter NAME]... [--require-histogram NAME]...\n"
               "       obs_validate --diagnostics FILE"
               " [--require-analysis NAME]... [--max-errors N]\n"
               "       obs_validate --dlcheck FILE"
               " [--require-kernel NAME]... [--min-kernels N]\n"
               "                    [--require-backend NAME]"
               " [--require-simd on|off]\n"
               "       obs_validate --attrib FILE"
               " [--require-kernel NAME]... [--min-kernels N]\n"
               "                    [--require-backend NAME]"
               " [--min-constructs N]\n"
               "       obs_validate --compile-profile FILE"
               " [--require-scop NAME]... [--min-scops N]\n";
  return 2;
}

int fail(const std::string& what) {
  std::cerr << "obs_validate: " << what << "\n";
  return 1;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  POLYAST_CHECK(in.good(), "cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool isFiniteNumber(const obs::JsonValue* v) {
  return v && v->isNumber() && std::isfinite(v->number);
}

int validateTrace(const obs::JsonValue& root,
                  const std::vector<std::string>& requiredSpans,
                  std::int64_t minThreads) {
  if (!root.isObject()) return fail("trace: top level is not an object");
  const obs::JsonValue* events = root.find("traceEvents");
  if (!events || !events->isArray())
    return fail("trace: missing traceEvents array");
  std::set<std::string> spanNames;
  std::set<double> spanTids;
  std::size_t index = 0;
  for (const auto& ev : events->items) {
    std::string at = "trace: event " + std::to_string(index++);
    if (!ev.isObject()) return fail(at + " is not an object");
    const obs::JsonValue* ph = ev.find("ph");
    if (!ph || !ph->isString()) return fail(at + ": missing string ph");
    const obs::JsonValue* name = ev.find("name");
    if (!name || !name->isString()) return fail(at + ": missing string name");
    if (!isFiniteNumber(ev.find("pid")) || !isFiniteNumber(ev.find("tid")))
      return fail(at + ": missing numeric pid/tid");
    if (ph->text == "X") {
      if (!isFiniteNumber(ev.find("ts")) || !isFiniteNumber(ev.find("dur")))
        return fail(at + ": X event missing numeric ts/dur");
      if (ev.find("dur")->number < 0)
        return fail(at + ": negative span duration");
      spanNames.insert(name->text);
      spanTids.insert(ev.find("tid")->number);
    } else if (ph->text == "i") {
      if (!isFiniteNumber(ev.find("ts")))
        return fail(at + ": instant event missing numeric ts");
    } else if (ph->text == "M") {
      if (name->text != "thread_name")
        return fail(at + ": unexpected metadata event '" + name->text + "'");
      const obs::JsonValue* args = ev.find("args");
      if (!args || !args->isObject() || !args->find("name") ||
          !args->find("name")->isString())
        return fail(at + ": thread_name metadata missing args.name");
    } else {
      return fail(at + ": unknown event phase '" + ph->text + "'");
    }
  }
  for (const auto& want : requiredSpans)
    if (!spanNames.count(want))
      return fail("trace: required span '" + want + "' not found");
  if (static_cast<std::int64_t>(spanTids.size()) < minThreads)
    return fail("trace: spans cover " + std::to_string(spanTids.size()) +
                " thread(s), expected >= " + std::to_string(minThreads));
  std::cout << "trace ok: " << events->items.size() << " events, "
            << spanNames.size() << " span names, " << spanTids.size()
            << " threads\n";
  return 0;
}

int validateMetrics(const obs::JsonValue& root,
                    const std::vector<std::string>& requiredCounters,
                    const std::vector<std::string>& requiredHistograms) {
  if (!root.isObject()) return fail("metrics: top level is not an object");
  const obs::JsonValue* schema = root.find("schema");
  if (!schema || !schema->isString() || schema->text != "polyast-metrics-v1")
    return fail("metrics: missing schema \"polyast-metrics-v1\"");
  for (const char* section : {"counters", "gauges", "histograms", "notes"}) {
    const obs::JsonValue* s = root.find(section);
    if (!s || !s->isObject())
      return fail(std::string("metrics: missing object \"") + section + "\"");
  }
  for (const auto& [name, v] : root.find("counters")->members)
    if (!v.isNumber() || v.number != std::floor(v.number))
      return fail("metrics: counter '" + name + "' is not an integer");
  for (const auto& [name, v] : root.find("gauges")->members)
    if (!v.isNumber()) return fail("metrics: gauge '" + name + "' not a number");
  for (const auto& [name, v] : root.find("notes")->members)
    if (!v.isString()) return fail("metrics: note '" + name + "' not a string");
  for (const auto& [name, h] : root.find("histograms")->members) {
    std::string at = "metrics: histogram '" + name + "'";
    if (!h.isObject()) return fail(at + " is not an object");
    const obs::JsonValue* bounds = h.find("bounds");
    const obs::JsonValue* buckets = h.find("bucket_counts");
    if (!bounds || !bounds->isArray() || !buckets || !buckets->isArray())
      return fail(at + ": missing bounds/bucket_counts arrays");
    if (buckets->items.size() != bounds->items.size() + 1)
      return fail(at + ": bucket_counts must have |bounds|+1 entries");
    if (!isFiniteNumber(h.find("count")) || !isFiniteNumber(h.find("sum")))
      return fail(at + ": missing numeric count/sum");
    double inBuckets = 0;
    for (const auto& b : buckets->items) {
      if (!b.isNumber() || b.number < 0)
        return fail(at + ": bad bucket count");
      inBuckets += b.number;
    }
    if (inBuckets != h.find("count")->number)
      return fail(at + ": bucket counts do not sum to count");
    double prev = -std::numeric_limits<double>::infinity();
    for (const auto& b : bounds->items) {
      if (!b.isNumber() || b.number <= prev)
        return fail(at + ": bounds not strictly increasing");
      prev = b.number;
    }
  }
  for (const auto& want : requiredCounters)
    if (!root.find("counters")->find(want) && !root.find("gauges")->find(want))
      return fail("metrics: required counter/gauge '" + want + "' not found");
  for (const auto& want : requiredHistograms)
    if (!root.find("histograms")->find(want))
      return fail("metrics: required histogram '" + want + "' not found");
  std::cout << "metrics ok: " << root.find("counters")->members.size()
            << " counters, " << root.find("gauges")->members.size()
            << " gauges, " << root.find("histograms")->members.size()
            << " histograms, " << root.find("notes")->members.size()
            << " notes\n";
  return 0;
}

int validateDiagnostics(const obs::JsonValue& root,
                        const std::vector<std::string>& requiredAnalyses,
                        std::int64_t maxErrors) {
  if (!root.isObject()) return fail("diagnostics: top level is not an object");
  const obs::JsonValue* schema = root.find("schema");
  if (!schema || !schema->isString() ||
      schema->text != "polyast-diagnostics-v1")
    return fail("diagnostics: missing schema \"polyast-diagnostics-v1\"");
  for (const char* field : {"program", "pipeline"}) {
    const obs::JsonValue* v = root.find(field);
    if (!v || !v->isString())
      return fail(std::string("diagnostics: missing string \"") + field +
                  "\"");
  }
  const obs::JsonValue* summary = root.find("summary");
  if (!summary || !summary->isObject())
    return fail("diagnostics: missing summary object");
  for (const char* field : {"errors", "warnings", "remarks"}) {
    const obs::JsonValue* v = summary->find(field);
    if (!isFiniteNumber(v) || v->number != std::floor(v->number) ||
        v->number < 0)
      return fail(std::string("diagnostics: summary.") + field +
                  " is not a non-negative integer");
  }
  const obs::JsonValue* diags = root.find("diagnostics");
  if (!diags || !diags->isArray())
    return fail("diagnostics: missing diagnostics array");
  std::size_t counts[3] = {0, 0, 0};  // error, warning, remark
  std::set<std::string> analyses;
  std::size_t index = 0;
  for (const auto& d : diags->items) {
    std::string at = "diagnostics: entry " + std::to_string(index++);
    if (!d.isObject()) return fail(at + " is not an object");
    for (const char* field :
         {"severity", "analysis", "code", "message", "location",
          "after_pass"}) {
      const obs::JsonValue* v = d.find(field);
      if (!v || !v->isString())
        return fail(at + ": missing string \"" + field + "\"");
    }
    const std::string& sev = d.find("severity")->text;
    if (sev == "error") ++counts[0];
    else if (sev == "warning") ++counts[1];
    else if (sev == "remark") ++counts[2];
    else return fail(at + ": unknown severity '" + sev + "'");
    analyses.insert(d.find("analysis")->text);
    const obs::JsonValue* detail = d.find("detail");
    if (!detail || !detail->isObject())
      return fail(at + ": missing detail object");
    for (const auto& [key, v] : detail->members)
      if (!v.isString())
        return fail(at + ": detail." + key + " is not a string");
    // Reduction-edge provenance: whenever an analysis reports a
    // reduction-classified dependence — the reductions pass always, the
    // race analysis when detail.reduction_class is present — the finding
    // must name the statement pair, the dependence level, and the
    // covering construct, or it is not actionable.
    const std::string& from = d.find("analysis")->text;
    if (from == "reductions" || detail->find("reduction_class")) {
      for (const char* field : {"array", "src", "dst", "level",
                                "construct_id"}) {
        const obs::JsonValue* v = detail->find(field);
        if (!v || !v->isString() || v->text.empty())
          return fail(at + ": reduction-edge diagnostic missing detail." +
                      field);
      }
      if (from == "reductions") {
        for (const char* field : {"class", "construct", "construct_kind"}) {
          const obs::JsonValue* v = detail->find(field);
          if (!v || !v->isString() || v->text.empty())
            return fail(at + ": reductions diagnostic missing detail." +
                        field);
        }
      }
    }
  }
  const char* names[3] = {"errors", "warnings", "remarks"};
  for (int s = 0; s < 3; ++s)
    if (summary->find(names[s])->number != static_cast<double>(counts[s]))
      return fail(std::string("diagnostics: summary.") + names[s] +
                  " does not match the diagnostics array");
  for (const auto& want : requiredAnalyses)
    if (!analyses.count(want))
      return fail("diagnostics: no diagnostic from analysis '" + want + "'");
  if (maxErrors >= 0 && static_cast<std::int64_t>(counts[0]) > maxErrors)
    return fail("diagnostics: " + std::to_string(counts[0]) +
                " error(s), expected <= " + std::to_string(maxErrors));
  std::cout << "diagnostics ok: " << diags->items.size() << " entries, "
            << counts[0] << " errors, " << counts[1] << " warnings, "
            << counts[2] << " remarks\n";
  return 0;
}

int validateDlCheck(const obs::JsonValue& root,
                    const std::vector<std::string>& requiredKernels,
                    std::int64_t minKernels,
                    const std::string& requiredBackend,
                    const std::string& requiredSimd) {
  if (!root.isObject()) return fail("dlcheck: top level is not an object");
  const obs::JsonValue* schema = root.find("schema");
  if (!schema || !schema->isString() || schema->text != "polyast-dlcheck-v1")
    return fail("dlcheck: missing schema \"polyast-dlcheck-v1\"");
  const obs::JsonValue* threads = root.find("threads");
  if (!isFiniteNumber(threads) || threads->number < 1)
    return fail("dlcheck: missing positive numeric threads");
  const obs::JsonValue* degraded = root.find("degraded");
  if (!degraded || degraded->kind != obs::JsonValue::Kind::Bool)
    return fail("dlcheck: missing boolean degraded");
  const obs::JsonValue* kernels = root.find("kernels");
  if (!kernels || !kernels->isArray())
    return fail("dlcheck: missing kernels array");
  std::set<std::string> names;
  std::size_t degradedKernels = 0;
  std::size_t index = 0;
  for (const auto& k : kernels->items) {
    std::string at = "dlcheck: kernel " + std::to_string(index++);
    if (!k.isObject()) return fail(at + " is not an object");
    for (const char* field : {"kernel", "pipeline", "backend"}) {
      const obs::JsonValue* v = k.find(field);
      if (!v || !v->isString())
        return fail(at + ": missing string \"" + field + "\"");
    }
    at = "dlcheck: kernel '" + k.find("kernel")->text + "'";
    if (!requiredBackend.empty() &&
        k.find("backend")->text != requiredBackend)
      return fail(at + ": backend '" + k.find("backend")->text +
                  "', expected '" + requiredBackend + "'");
    if (!names.insert(k.find("kernel")->text).second)
      return fail(at + ": duplicate entry");
    const obs::JsonValue* simd = k.find("simd");
    if (simd && (!simd->isString() ||
                 (simd->text != "on" && simd->text != "off")))
      return fail(at + ": simd is not \"on\"/\"off\"");
    if (!requiredSimd.empty() && (!simd || simd->text != requiredSimd))
      return fail(at + ": simd '" + (simd ? simd->text : "(missing)") +
                  "', expected '" + requiredSimd + "'");
    const obs::JsonValue* pred = k.find("predicted");
    if (!pred || !pred->isObject())
      return fail(at + ": missing predicted object");
    for (const char* field : {"lines", "cost", "nests"}) {
      const obs::JsonValue* v = pred->find(field);
      if (!isFiniteNumber(v) || v->number < 0)
        return fail(at + ": predicted." + field +
                    " is not a non-negative number");
    }
    const obs::JsonValue* meas = k.find("measured");
    if (!meas || !meas->isObject())
      return fail(at + ": missing measured object");
    for (const char* field :
         {"wall_ns", "tsc_cycles", "multiplex_ratio", "threads",
          "threads_degraded"}) {
      const obs::JsonValue* v = meas->find(field);
      if (!isFiniteNumber(v) || v->number < 0)
        return fail(at + ": measured." + field +
                    " is not a non-negative number");
    }
    const obs::JsonValue* kd = meas->find("degraded");
    if (!kd || kd->kind != obs::JsonValue::Kind::Bool)
      return fail(at + ": measured.degraded is not a boolean");
    const obs::JsonValue* counters = meas->find("counters");
    if (!counters || !counters->isObject())
      return fail(at + ": missing measured.counters object");
    for (const auto& [cname, cv] : counters->members)
      if (!isFiniteNumber(&cv) || cv.number < 0)
        return fail(at + ": counter '" + cname + "' is not a non-negative"
                    " number");
    if (kd->boolValue) {
      ++degradedKernels;
      // A degraded measurement must say why (the whole point of the
      // obs.perf.degraded contract) and still carry wall time.
      const obs::JsonValue* reason = meas->find("degraded_reason");
      if (!reason || !reason->isString() || reason->text.empty())
        return fail(at + ": degraded without degraded_reason");
      if (meas->find("wall_ns")->number <= 0)
        return fail(at + ": degraded measurement without wall time");
    } else if (counters->members.empty()) {
      return fail(at + ": non-degraded measurement without counters");
    }
  }
  if (degradedKernels > 0 && !degraded->boolValue)
    return fail("dlcheck: degraded kernels present but top-level degraded"
                " is false");
  const obs::JsonValue* summary = root.find("summary");
  if (!summary || !summary->isObject())
    return fail("dlcheck: missing summary object");
  const obs::JsonValue* count = summary->find("kernel_count");
  if (!isFiniteNumber(count) ||
      count->number != static_cast<double>(kernels->items.size()))
    return fail("dlcheck: summary.kernel_count does not match the kernels"
                " array");
  const obs::JsonValue* corr = summary->find("rank_correlation");
  if (!corr || !corr->isObject())
    return fail("dlcheck: missing summary.rank_correlation object");
  for (const auto& [series, v] : corr->members) {
    if (v.kind == obs::JsonValue::Kind::Null) continue;
    if (!v.isNumber() || v.number < -1.0 || v.number > 1.0)
      return fail("dlcheck: rank_correlation." + series +
                  " is not null or in [-1, 1]");
  }
  for (const auto& want : requiredKernels)
    if (!names.count(want))
      return fail("dlcheck: required kernel '" + want + "' not found");
  if (static_cast<std::int64_t>(names.size()) < minKernels)
    return fail("dlcheck: " + std::to_string(names.size()) +
                " kernel(s), expected >= " + std::to_string(minKernels));
  std::cout << "dlcheck ok: " << names.size() << " kernels ("
            << degradedKernels << " degraded)\n";
  return 0;
}

/// Validates one reading object ({wall_ns, tsc_cycles, counters{...}},
/// optionally with degraded bookkeeping) and collects its numbers into
/// `wall`/`counters` for the telescoping sum check.
int readAttribReading(const obs::JsonValue* r, const std::string& at,
                      bool withDegraded, double* wall,
                      std::map<std::string, double>* counters,
                      std::set<std::string>* missing) {
  if (!r || !r->isObject()) return fail(at + " is not an object");
  for (const char* field : {"wall_ns", "tsc_cycles"}) {
    const obs::JsonValue* v = r->find(field);
    if (!isFiniteNumber(v) || v->number < 0)
      return fail(at + "." + field + " is not a non-negative number");
  }
  if (withDegraded) {
    const obs::JsonValue* d = r->find("degraded");
    if (!d || d->kind != obs::JsonValue::Kind::Bool)
      return fail(at + ".degraded is not a boolean");
    if (d->boolValue) {
      const obs::JsonValue* reason = r->find("degraded_reason");
      if (!reason || !reason->isString() || reason->text.empty())
        return fail(at + ": degraded without degraded_reason");
    }
  }
  const obs::JsonValue* cs = r->find("counters");
  if (!cs || !cs->isObject())
    return fail(at + ": missing counters object");
  for (const auto& [cname, cv] : cs->members)
    if (!isFiniteNumber(&cv) || cv.number < 0)
      return fail(at + ": counter '" + cname +
                  "' is not a non-negative number");
  if (wall) *wall += r->find("wall_ns")->number;
  if (counters && missing) {
    // A counter absent from this reading cannot participate in an exact
    // sum check across readings.
    for (const auto& [cname, total] : *counters)
      if (!cs->find(cname)) missing->insert(cname);
    for (const auto& [cname, cv] : cs->members) (*counters)[cname] += cv.number;
  }
  return 0;
}

int checkRankCorrelation(const obs::JsonValue* parent,
                         const std::string& at) {
  const obs::JsonValue* corr =
      parent ? parent->find("rank_correlation") : nullptr;
  if (!corr || !corr->isObject())
    return fail(at + ": missing rank_correlation object");
  for (const auto& [series, v] : corr->members) {
    if (v.kind == obs::JsonValue::Kind::Null) continue;
    if (!v.isNumber() || v.number < -1.0 || v.number > 1.0)
      return fail(at + ": rank_correlation." + series +
                  " is not null or in [-1, 1]");
  }
  return 0;
}

int validateAttrib(const obs::JsonValue& root,
                   const std::vector<std::string>& requiredKernels,
                   std::int64_t minKernels,
                   const std::string& requiredBackend,
                   std::int64_t minConstructs) {
  if (!root.isObject()) return fail("attrib: top level is not an object");
  const obs::JsonValue* schema = root.find("schema");
  if (!schema || !schema->isString() || schema->text != "polyast-attrib-v1")
    return fail("attrib: missing schema \"polyast-attrib-v1\"");
  const obs::JsonValue* threads = root.find("threads");
  if (!isFiniteNumber(threads) || threads->number < 1)
    return fail("attrib: missing positive numeric threads");
  const obs::JsonValue* degraded = root.find("degraded");
  if (!degraded || degraded->kind != obs::JsonValue::Kind::Bool)
    return fail("attrib: missing boolean degraded");
  const obs::JsonValue* kernels = root.find("kernels");
  if (!kernels || !kernels->isArray())
    return fail("attrib: missing kernels array");
  std::set<std::string> names;
  std::size_t totalConstructs = 0;
  std::size_t index = 0;
  for (const auto& k : kernels->items) {
    std::string at = "attrib: kernel " + std::to_string(index++);
    if (!k.isObject()) return fail(at + " is not an object");
    for (const char* field : {"kernel", "pipeline", "backend"}) {
      const obs::JsonValue* v = k.find(field);
      if (!v || !v->isString())
        return fail(at + ": missing string \"" + field + "\"");
    }
    at = "attrib: kernel '" + k.find("kernel")->text + "'";
    if (!requiredBackend.empty() &&
        k.find("backend")->text != requiredBackend)
      return fail(at + ": backend '" + k.find("backend")->text +
                  "', expected '" + requiredBackend + "'");
    if (!names.insert(k.find("kernel")->text).second)
      return fail(at + ": duplicate entry");

    double totalWall = 0;
    std::map<std::string, double> totalCounters;
    std::set<std::string> unusedMissing;
    if (int rc = readAttribReading(k.find("total"), at + ".total",
                                   /*withDegraded=*/true, &totalWall,
                                   &totalCounters, &unusedMissing))
      return rc;

    // Telescoping sum: residual + every construct row == total.
    double sumWall = 0;
    std::map<std::string, double> sumCounters;
    std::set<std::string> missing;
    if (int rc = readAttribReading(k.find("residual"), at + ".residual",
                                   /*withDegraded=*/false, &sumWall,
                                   &sumCounters, &missing))
      return rc;
    const obs::JsonValue* constructs = k.find("constructs");
    if (!constructs || !constructs->isArray())
      return fail(at + ": missing constructs array");
    std::set<double> ids;
    for (const auto& c : constructs->items) {
      std::string cat = at + " construct " + std::to_string(ids.size());
      if (!c.isObject()) return fail(cat + " is not an object");
      for (const char* field : {"kind", "iter", "nest"}) {
        const obs::JsonValue* v = c.find(field);
        if (!v || !v->isString())
          return fail(cat + ": missing string \"" + field + "\"");
      }
      const obs::JsonValue* id = c.find("id");
      if (!isFiniteNumber(id) || id->number < 0)
        return fail(cat + ": missing non-negative numeric id");
      if (!ids.insert(id->number).second)
        return fail(cat + ": duplicate construct id");
      const obs::JsonValue* enters = c.find("enters");
      if (!isFiniteNumber(enters) || enters->number < 1)
        return fail(cat + ": enters is not a positive number");
      const obs::JsonValue* pred = c.find("predicted");
      if (!pred || !pred->isObject())
        return fail(cat + ": missing predicted object");
      for (const char* field : {"lines", "cost", "iters", "nests"}) {
        const obs::JsonValue* v = pred->find(field);
        if (!isFiniteNumber(v) || v->number < 0)
          return fail(cat + ": predicted." + field +
                      " is not a non-negative number");
      }
      if (int rc = readAttribReading(c.find("measured"), cat + ".measured",
                                     /*withDegraded=*/false, &sumWall,
                                     &sumCounters, &missing))
        return rc;
    }
    totalConstructs += ids.size();

    if (sumWall != totalWall)
      return fail(at + ": residual + construct wall_ns (" +
                  std::to_string(sumWall) + ") != total wall_ns (" +
                  std::to_string(totalWall) + ")");
    for (const auto& [cname, total] : totalCounters) {
      // Exact per-counter telescoping, unless some row lacks the counter
      // (a group read failed mid-run) — then the sum is undefined.
      if (missing.count(cname)) continue;
      auto it = sumCounters.find(cname);
      if (it == sumCounters.end() || it->second != total)
        return fail(at + ": residual + construct '" + cname +
                    "' does not sum to the total");
    }

    const obs::JsonValue* summary = k.find("summary");
    if (!summary || !summary->isObject())
      return fail(at + ": missing summary object");
    const obs::JsonValue* count = summary->find("construct_count");
    if (!isFiniteNumber(count) ||
        count->number != static_cast<double>(ids.size()))
      return fail(at + ": summary.construct_count does not match the"
                  " constructs array");
    if (int rc = checkRankCorrelation(summary, at + ".summary")) return rc;
  }

  const obs::JsonValue* summary = root.find("summary");
  if (!summary || !summary->isObject())
    return fail("attrib: missing summary object");
  const obs::JsonValue* count = summary->find("kernel_count");
  if (!isFiniteNumber(count) ||
      count->number != static_cast<double>(kernels->items.size()))
    return fail("attrib: summary.kernel_count does not match the kernels"
                " array");
  const obs::JsonValue* ccount = summary->find("construct_count");
  if (!isFiniteNumber(ccount) ||
      ccount->number != static_cast<double>(totalConstructs))
    return fail("attrib: summary.construct_count does not match the"
                " per-kernel construct arrays");
  if (int rc = checkRankCorrelation(summary, "attrib: summary")) return rc;
  for (const auto& want : requiredKernels)
    if (!names.count(want))
      return fail("attrib: required kernel '" + want + "' not found");
  if (static_cast<std::int64_t>(names.size()) < minKernels)
    return fail("attrib: " + std::to_string(names.size()) +
                " kernel(s), expected >= " + std::to_string(minKernels));
  if (static_cast<std::int64_t>(totalConstructs) < minConstructs)
    return fail("attrib: " + std::to_string(totalConstructs) +
                " construct(s), expected >= " +
                std::to_string(minConstructs));
  std::cout << "attrib ok: " << names.size() << " kernels, "
            << totalConstructs << " constructs\n";
  return 0;
}

/// Validates a counters object: every member a non-negative integer.
/// Accumulates into `sums` when given.
int readProfileCounters(const obs::JsonValue* cs, const std::string& at,
                        std::map<std::string, double>* sums) {
  if (!cs || !cs->isObject())
    return fail(at + ": missing counters object");
  for (const auto& [cname, cv] : cs->members) {
    if (!isFiniteNumber(&cv) || cv.number < 0 ||
        cv.number != std::floor(cv.number))
      return fail(at + ": counter '" + cname +
                  "' is not a non-negative integer");
    if (sums) (*sums)[cname] += cv.number;
  }
  return 0;
}

int validateCompileProfile(const obs::JsonValue& root,
                           const std::vector<std::string>& requiredScops,
                           std::int64_t minScops) {
  if (!root.isObject())
    return fail("compile-profile: top level is not an object");
  const obs::JsonValue* schema = root.find("schema");
  if (!schema || !schema->isString() ||
      schema->text != "polyast-compile-profile-v1")
    return fail("compile-profile: missing schema"
                " \"polyast-compile-profile-v1\"");
  const obs::JsonValue* pipeline = root.find("pipeline");
  if (!pipeline || !pipeline->isString() || pipeline->text.empty())
    return fail("compile-profile: missing string pipeline");
  const obs::JsonValue* generator = root.find("generator");
  if (generator && !generator->isString())
    return fail("compile-profile: generator is not a string");

  const obs::JsonValue* totals = root.find("totals");
  if (!totals || !totals->isObject())
    return fail("compile-profile: missing totals object");
  const obs::JsonValue* totalRss = totals->find("rss_hwm_kb");
  if (!isFiniteNumber(totalRss) || totalRss->number < 0)
    return fail("compile-profile: totals.rss_hwm_kb is not a non-negative"
                " number");
  std::map<std::string, double> totalCounters;
  if (int rc = readProfileCounters(totals->find("counters"),
                                   "compile-profile: totals",
                                   &totalCounters))
    return rc;

  // Every counters object (rows, residual) must carry exactly the
  // totals' counter names — a missing name would silently break the
  // telescoping check, an extra one could never telescope.
  auto sameNames = [&](const obs::JsonValue* cs, const std::string& at) -> int {
    if (cs->members.size() != totalCounters.size())
      return fail(at + ": counter names do not match totals");
    for (const auto& [cname, cv] : cs->members)
      if (!totalCounters.count(cname))
        return fail(at + ": counter '" + cname + "' not present in totals");
    return 0;
  };

  const obs::JsonValue* scops = root.find("scops");
  if (!scops || !scops->isArray())
    return fail("compile-profile: missing scops array");
  std::set<std::string> names;
  std::map<std::string, double> rowSums;
  for (const auto& row : scops->items) {
    std::string at = "compile-profile: scop " + std::to_string(names.size());
    if (!row.isObject()) return fail(at + " is not an object");
    const obs::JsonValue* name = row.find("scop");
    if (!name || !name->isString() || name->text.empty())
      return fail(at + ": missing string scop");
    at = "compile-profile: scop '" + name->text + "'";
    if (!names.insert(name->text).second)
      return fail(at + ": duplicate entry");
    const obs::JsonValue* stmts = row.find("statements");
    if (!isFiniteNumber(stmts) || stmts->number < 1 ||
        stmts->number != std::floor(stmts->number))
      return fail(at + ": statements is not a positive integer");
    const obs::JsonValue* loops = row.find("loops");
    if (!isFiniteNumber(loops) || loops->number < 0 ||
        loops->number != std::floor(loops->number))
      return fail(at + ": loops is not a non-negative integer");
    const obs::JsonValue* ms = row.find("compile_ms");
    if (!isFiniteNumber(ms) || ms->number < 0)
      return fail(at + ": compile_ms is not a non-negative number");
    const obs::JsonValue* rss = row.find("rss_hwm_kb");
    if (!isFiniteNumber(rss) || rss->number < 0)
      return fail(at + ": rss_hwm_kb is not a non-negative number");
    // VmHWM is monotone over the process lifetime, so no row can exceed
    // the final total.
    if (rss->number > totalRss->number)
      return fail(at + ": rss_hwm_kb exceeds totals.rss_hwm_kb");
    const obs::JsonValue* cs = row.find("counters");
    if (int rc = readProfileCounters(cs, at, &rowSums)) return rc;
    if (int rc = sameNames(cs, at)) return rc;
    // Outcome consistency: every dependence test either proves or
    // disproves, and only tests can be sampled.
    auto counter = [&](const char* cname) -> double {
      const obs::JsonValue* v = cs->find(cname);
      return v ? v->number : 0.0;
    };
    if (counter("dep.proven") + counter("dep.disproven") !=
        counter("dep.tests"))
      return fail(at + ": dep.proven + dep.disproven != dep.tests");
    if (counter("dep.sampled_tests") > counter("dep.tests"))
      return fail(at + ": dep.sampled_tests exceeds dep.tests");
  }

  const obs::JsonValue* residual = root.find("residual");
  if (!residual || !residual->isObject())
    return fail("compile-profile: missing residual object");
  std::map<std::string, double> residualSums;
  const obs::JsonValue* rcs = residual->find("counters");
  if (int rc = readProfileCounters(rcs, "compile-profile: residual",
                                   &residualSums))
    return rc;
  if (int rc = sameNames(rcs, "compile-profile: residual")) return rc;

  // The telescoping invariant: work outside any SCoP bracket (residual)
  // plus the per-SCoP rows must reproduce the process totals *exactly*.
  for (const auto& [cname, total] : totalCounters) {
    double sum = residualSums[cname] + rowSums[cname];
    if (sum != total)
      return fail("compile-profile: residual + rows for '" + cname + "' (" +
                  std::to_string(sum) + ") != total (" +
                  std::to_string(total) + ")");
  }

  for (const auto& want : requiredScops)
    if (!names.count(want))
      return fail("compile-profile: required scop '" + want + "' not found");
  if (static_cast<std::int64_t>(names.size()) < minScops)
    return fail("compile-profile: " + std::to_string(names.size()) +
                " scop(s), expected >= " + std::to_string(minScops));
  std::cout << "compile-profile ok: " << names.size() << " scops, "
            << totalCounters.size() << " counters, pipeline '"
            << pipeline->text << "'\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string traceFile;
  std::string metricsFile;
  std::string diagnosticsFile;
  std::string dlcheckFile;
  std::string attribFile;
  std::string compileProfileFile;
  std::vector<std::string> requiredScops;
  std::vector<std::string> requiredSpans;
  std::vector<std::string> requiredCounters;
  std::vector<std::string> requiredHistograms;
  std::vector<std::string> requiredAnalyses;
  std::vector<std::string> requiredKernels;
  std::string requiredBackend;
  std::string requiredSimd;
  std::int64_t minThreads = 0;
  std::int64_t maxErrors = -1;
  std::int64_t minKernels = 0;
  std::int64_t minConstructs = 0;
  std::int64_t minScops = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inlineValue;
    bool hasInline = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      inlineValue = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      hasInline = true;
    }
    auto next = [&]() -> std::string {
      if (hasInline) return inlineValue;
      if (i + 1 >= argc) {
        usage();
        exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trace") traceFile = next();
    else if (arg == "--metrics") metricsFile = next();
    else if (arg == "--diagnostics") diagnosticsFile = next();
    else if (arg == "--dlcheck") dlcheckFile = next();
    else if (arg == "--attrib") attribFile = next();
    else if (arg == "--compile-profile") compileProfileFile = next();
    else if (arg == "--require-scop") requiredScops.push_back(next());
    else if (arg == "--require-span") requiredSpans.push_back(next());
    else if (arg == "--require-counter") requiredCounters.push_back(next());
    else if (arg == "--require-histogram") requiredHistograms.push_back(next());
    else if (arg == "--require-analysis") requiredAnalyses.push_back(next());
    else if (arg == "--require-kernel") requiredKernels.push_back(next());
    else if (arg == "--require-backend") requiredBackend = next();
    else if (arg == "--require-simd") requiredSimd = next();
    else if (arg == "--min-threads") minThreads = std::stoll(next());
    else if (arg == "--max-errors") maxErrors = std::stoll(next());
    else if (arg == "--min-kernels") minKernels = std::stoll(next());
    else if (arg == "--min-constructs") minConstructs = std::stoll(next());
    else if (arg == "--min-scops") minScops = std::stoll(next());
    else return usage();
  }
  int modes = (traceFile.empty() ? 0 : 1) + (metricsFile.empty() ? 0 : 1) +
              (diagnosticsFile.empty() ? 0 : 1) + (dlcheckFile.empty() ? 0 : 1) +
              (attribFile.empty() ? 0 : 1) +
              (compileProfileFile.empty() ? 0 : 1);
  if (modes != 1) return usage();
  try {
    if (!traceFile.empty())
      return validateTrace(obs::parseJson(slurp(traceFile)), requiredSpans,
                           minThreads);
    if (!metricsFile.empty())
      return validateMetrics(obs::parseJson(slurp(metricsFile)),
                             requiredCounters, requiredHistograms);
    if (!dlcheckFile.empty())
      return validateDlCheck(obs::parseJson(slurp(dlcheckFile)),
                             requiredKernels, minKernels, requiredBackend,
                             requiredSimd);
    if (!attribFile.empty())
      return validateAttrib(obs::parseJson(slurp(attribFile)), requiredKernels,
                            minKernels, requiredBackend, minConstructs);
    if (!compileProfileFile.empty())
      return validateCompileProfile(obs::parseJson(slurp(compileProfileFile)),
                                    requiredScops, minScops);
    return validateDiagnostics(obs::parseJson(slurp(diagnosticsFile)),
                               requiredAnalyses, maxErrors);
  } catch (const ::polyast::Error& e) {
    return fail(e.what());
  }
}
