// polyastc — the source-to-source compiler driver.
//
// Usage:
//   polyastc --list
//   polyastc <kernel> [--flow polyast|pocc|pocc-maxfuse|none]
//            [--emit c|ir] [--tile N] [--time-tile N]
//            [--no-tiling] [--no-regtile] [--no-openmp]
//
// Examples:
//   polyastc 2mm --flow polyast --emit c > 2mm_opt.c && cc -O3 2mm_opt.c
//   polyastc gemm --flow pocc --emit ir
#include <cstring>
#include <iostream>
#include <string>

#include "baseline/pluto.hpp"
#include "support/error.hpp"
#include "ir/cemit.hpp"
#include "kernels/polybench.hpp"
#include "transform/flow.hpp"

using namespace polyast;

namespace {

int usage() {
  std::cerr
      << "usage: polyastc <kernel>|--list [--flow polyast|pocc|pocc-maxfuse|"
         "none]\n"
         "                [--emit c|ir] [--tile N] [--time-tile N]\n"
         "                [--no-tiling] [--no-regtile] [--no-openmp]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string kernel = argv[1];
  if (kernel == "--list") {
    for (const auto& k : kernels::allKernels())
      std::cout << k.name << "\t" << k.description << "\n";
    return 0;
  }

  std::string flow = "polyast";
  std::string emit = "c";
  transform::FlowOptions options;
  bool openmp = true;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        exit(2);
      }
      return argv[++i];
    };
    if (arg == "--flow") flow = next();
    else if (arg == "--emit") emit = next();
    else if (arg == "--tile") options.ast.tileSize = std::stoll(next());
    else if (arg == "--time-tile") options.ast.timeTileSize = std::stoll(next());
    else if (arg == "--no-tiling") options.enableTiling = false;
    else if (arg == "--no-regtile") options.enableRegisterTiling = false;
    else if (arg == "--no-openmp") openmp = false;
    else return usage();
  }

  ir::Program program;
  try {
    program = kernels::buildKernel(kernel);
  } catch (const ::polyast::Error&) {
    std::cerr << "unknown kernel '" << kernel << "' (try --list)\n";
    return 1;
  }

  ir::Program out;
  if (flow == "polyast") {
    transform::FlowReport report;
    out = transform::optimize(program, options, &report);
    std::cerr << "polyast: affine="
              << (report.affineStageSucceeded ? "ok" : "identity")
              << " skews=" << report.skewsApplied
              << " bands=" << report.bandsTiled
              << " unrolls=" << report.loopsUnrolled << "\n";
  } else if (flow == "pocc" || flow == "pocc-maxfuse") {
    baseline::PlutoOptions popt;
    popt.ast = options.ast;
    if (flow == "pocc-maxfuse") popt.fuse = baseline::PlutoOptions::Fuse::Max;
    baseline::PlutoReport report;
    out = baseline::plutoOptimize(program, popt, &report);
    std::cerr << "pocc: bands=" << report.bandsTiled
              << " wavefronts=" << report.wavefronts << "\n";
  } else if (flow == "none") {
    out = program;
  } else {
    return usage();
  }

  if (emit == "ir") {
    std::cout << ir::printProgram(out);
  } else if (emit == "c") {
    ir::CEmitOptions copt;
    copt.openmp = openmp;
    std::cout << ir::emitC(out, copt);
  } else {
    return usage();
  }
  return 0;
}
