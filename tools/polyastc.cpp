// polyastc — the source-to-source compiler driver.
//
// Usage:
//   polyastc --list
//   polyastc --list-pipelines
//   polyastc --analysis-selfcheck
//   polyastc <kernel> [--pipeline NAME | --flow polyast|pocc|pocc-maxfuse|none]
//            [--emit c|ir|none] [--tile N] [--time-tile N]
//            [--simd on|off]
//            [--no-tiling] [--no-regtile] [--no-openmp]
//            [--verify-each-pass] [--dump-after PASS|all]
//            [--reductions strict|relaxed]
//            [--analyze[=legality,races,bounds,reductions]]
//            [--fail-on error|warning]
//            [--diagnostics-out FILE]
//            [--execute] [--backend interp|native] [--threads N]
//            [--perf] [--perf-out FILE] [--attrib-out FILE]
//            [--trace-out FILE] [--metrics-out FILE] [--obs-summary]
//            [--compile-profile-out FILE]
//
// Flags also accept the --flag=value form. --flow is kept for
// compatibility and maps onto the pipeline presets (polyast, pocc,
// pocc-maxfuse, identity); --pipeline selects any registered preset,
// including the ablation variants (see --list-pipelines).
//
// <kernel> may be `all`: every suite kernel runs through the same flags
// (emission is suppressed). Combined with --execute --perf --perf-out
// this produces the suite-level polyast-dlcheck-v1 artifact.
//
// --verify-each-pass runs the interpreter oracle after every pass on
// verification-scale parameters (extents sized to cross at least two
// full tiles, so the steady-state tiled code actually executes) and
// attributes any semantic break to the pass that introduced it. Verification continues past a break (the reference
// is rebased onto the broken output, so each pass is judged only on the
// divergence it introduces itself); every breaking pass is recorded as a
// `flow.verify.breaks` metric plus a "semantics-break" trace instant.
//
// --analyze interleaves the static analyses (src/analysis) with the
// pipeline: legality (violated baseline dependences), races (parallel
// marks re-proven), reductions (relaxed reduction schedules re-proven
// from the post-transform dependence graph), bounds (subscripts vs
// extents + lints) — after the input and after every pass. Optionally restrict to a comma-separated
// subset. --fail-on picks the severity that fails the run (default
// error); --diagnostics-out writes the polyast-diagnostics-v1 JSON
// (validated by tools/obs_validate --diagnostics).
//
// --analysis-selfcheck runs the mutation corpus: each seeded-illegal
// transform (flipped permutation, dropped sync, over-fused loops, ...)
// must be flagged by the matching analysis.
//
// Exit codes (docs/ANALYSIS.md):
//   0  success
//   2  static analysis reported findings at/above --fail-on (or the
//      self-check missed a mutation)
//   3  dynamic verification break (--verify-each-pass oracle or
//      --execute divergence)
//   4  usage error (bad flag, unknown kernel/pipeline/emit mode)
//
// Observability (docs/OBSERVABILITY.md):
//   --trace-out FILE    enable the global tracer; write a Chrome
//                       trace-event JSON (chrome://tracing / Perfetto)
//                       with one span per executed pass and — with
//                       --execute — per-thread runtime lanes.
//   --metrics-out FILE  write the metrics registry (DL query counts,
//                       dependence-test counters, runtime sync/wait
//                       stats, ...) as JSON, or CSV if FILE ends in .csv.
//                       Also turns on latency timing (histograms).
//   --obs-summary       print a human-readable metrics table to stderr.
//   --execute           run the transformed program on the parallel
//                       runtime at test scale (doall/pipeline marks map
//                       onto the thread pool) and validate the buffers
//                       against a sequential interpretation.
//   --backend NAME      execution backend for --execute: `interp`
//                       (default, interpreted executor) or `native`
//                       (JIT-compile the program to a shared object via
//                       the system C toolchain — cached under
//                       $POLYAST_JIT_CACHE — and run the machine code
//                       on the same thread pool; degrades to interp
//                       with a reported reason when no toolchain is
//                       usable or POLYAST_JIT=off).
//   --perf              measure the --execute run with per-thread
//                       hardware-counter sessions (src/obs/perf.hpp;
//                       implies --execute). Degrades gracefully to
//                       wall/TSC-only when perf_event_open is
//                       unavailable (POLYAST_PERF=off forces this).
//   --perf-out FILE     write the polyast-dlcheck-v1 JSON: the DL
//                       model's predicted distinct lines per kernel
//                       next to the measured counters, plus a
//                       suite-level rank-correlation summary (implies
//                       --perf).
//   --attrib-out FILE   write the polyast-attrib-v1 JSON (implies
//                       --perf): per parallel construct — doall,
//                       reduction, pipeline — the counter deltas
//                       attributed at construct boundaries, next to the
//                       DL model's per-nest predictions, with
//                       per-kernel and pooled rank correlations. Works
//                       on both backends (native kernels report
//                       construct boundaries through the capi hook
//                       table).
//   --compile-profile-out FILE
//                       write the polyast-compile-profile-v1 JSON: the
//                       compiler's own hot-path counters (FM
//                       eliminations, IntSet ops, dependence tests with
//                       sampled cost, selection-search candidates) as
//                       per-kernel rows that telescope exactly to the
//                       process totals, plus compile wall time and
//                       peak-RSS gauges (validated by tools/obs_validate
//                       --compile-profile; see docs/OBSERVABILITY.md).
//
// Examples:
//   polyastc 2mm --pipeline polyast --emit c > 2mm_opt.c && cc -O3 2mm_opt.c
//   polyastc gemm --pipeline pocc-vect --emit ir
//   polyastc seidel-2d --pipeline polyast --verify-each-pass --dump-after all
//   polyastc gemm --pipeline polyast --execute \
//       --trace-out trace.json --metrics-out metrics.json
#include <algorithm>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "analysis/mutations.hpp"
#include "dl/dl_predict.hpp"
#include "exec/backend.hpp"
#include "exec/native_exec.hpp"
#include "exec/par_exec.hpp"
#include "flow/analyze.hpp"
#include "flow/presets.hpp"
#include "ir/cemit.hpp"
#include "kernels/polybench.hpp"
#include "obs/attrib.hpp"
#include "obs/dlcheck.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/selfprof.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

using namespace polyast;

namespace {

int usage() {
  std::cerr
      << "usage: polyastc <kernel>|--list|--list-pipelines"
         "|--analysis-selfcheck\n"
         "                [--pipeline NAME] [--flow polyast|pocc|"
         "pocc-maxfuse|none]\n"
         "                [--emit c|ir|none] [--tile N] [--time-tile N]\n"
         "                [--simd on|off]\n"
         "                [--no-tiling] [--no-regtile] [--no-openmp]\n"
         "                [--verify-each-pass] [--dump-after PASS|all]\n"
         "                [--reductions strict|relaxed]\n"
         "                [--analyze[=legality,races,bounds,reductions]]"
         " [--fail-on error|warning]\n"
         "                [--diagnostics-out FILE]\n"
         "                [--execute] [--backend interp|native]"
         " [--threads N] [--perf]\n"
         "                [--perf-out FILE] [--attrib-out FILE]\n"
         "                [--trace-out FILE] [--metrics-out FILE]"
         " [--obs-summary]\n"
         "                [--compile-profile-out FILE]\n"
         "kernel may be 'all' to run every suite kernel (no emission)\n"
         "exit codes: 0 ok, 2 analysis findings, 3 dynamic verification"
         " break, 4 usage\n";
  return 4;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string kernel = argv[1];
  if (kernel == "--list") {
    for (const auto& k : kernels::allKernels())
      std::cout << k.name << "\t" << k.description << "\n";
    return 0;
  }
  if (kernel == "--list-pipelines") {
    for (const auto& name : flow::pipelinePresets()) std::cout << name << "\n";
    return 0;
  }
  if (kernel == "--analysis-selfcheck") {
    auto outcomes = analysis::runMutationCorpus(
        [](const std::string& k) { return kernels::buildKernel(k); },
        &std::cerr);
    bool ok = analysis::allMutationsCaught(outcomes);
    std::cerr << "analysis self-check: " << outcomes.size()
              << " mutation(s), " << (ok ? "all caught" : "MISSED SOME")
              << "\n";
    return ok ? 0 : 2;
  }

  std::string pipeline = "polyast";
  std::string emit = "c";
  std::string traceOut;
  std::string metricsOut;
  bool obsSummary = false;
  bool execute = false;
  std::string backend = "interp";
  bool perf = false;
  std::string perfOut;
  std::string attribOut;
  std::string compileProfileOut;
  unsigned threads = 0;
  flow::PipelineOptions options;
  flow::DumpOptions dump;
  bool openmp = true;
  bool verifyEachPass = false;
  bool analyze = false;
  std::string analyzeList;
  std::string failOn = "error";
  std::string diagnosticsOut;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both "--flag value" and "--flag=value".
    std::string inlineValue;
    bool hasInline = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      inlineValue = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      hasInline = true;
    }
    auto next = [&]() -> std::string {
      if (hasInline) return inlineValue;
      if (i + 1 >= argc) {
        usage();
        exit(4);
      }
      return argv[++i];
    };
    auto nextInt = [&]() -> std::int64_t {
      std::string v = next();
      try {
        return std::stoll(v);
      } catch (const std::exception&) {
        std::cerr << "expected a number for " << arg << ", got '" << v
                  << "'\n";
        exit(4);
      }
    };
    if (arg == "--pipeline") pipeline = next();
    else if (arg == "--flow") {
      std::string flowName = next();
      if (flowName == "polyast") pipeline = "polyast";
      else if (flowName == "pocc") pipeline = "pocc";
      else if (flowName == "pocc-maxfuse") pipeline = "pocc-maxfuse";
      else if (flowName == "none") pipeline = "identity";
      else return usage();
    } else if (arg == "--emit") emit = next();
    else if (arg == "--reductions") {
      std::string mode = next();
      if (mode == "strict")
        options.affine.reductions = poly::ReductionMode::Strict;
      else if (mode == "relaxed")
        options.affine.reductions = poly::ReductionMode::Relaxed;
      else {
        std::cerr << "expected strict|relaxed for --reductions, got '"
                  << mode << "'\n";
        return 4;
      }
    }
    else if (arg == "--simd") {
      std::string mode = next();
      if (mode == "on") options.ast.simd = true;
      else if (mode == "off") options.ast.simd = false;
      else {
        std::cerr << "expected on|off for --simd, got '" << mode << "'\n";
        return 4;
      }
    }
    else if (arg == "--tile") options.ast.tileSize = nextInt();
    else if (arg == "--time-tile") options.ast.timeTileSize = nextInt();
    else if (arg == "--no-tiling") options.enableTiling = false;
    else if (arg == "--no-regtile") options.enableRegisterTiling = false;
    else if (arg == "--no-openmp") openmp = false;
    else if (arg == "--verify-each-pass") verifyEachPass = true;
    else if (arg == "--analyze") {
      analyze = true;
      if (hasInline) analyzeList = inlineValue;
    } else if (arg == "--fail-on") failOn = next();
    else if (arg == "--diagnostics-out") diagnosticsOut = next();
    else if (arg == "--trace-out") traceOut = next();
    else if (arg == "--metrics-out") metricsOut = next();
    else if (arg == "--obs-summary") obsSummary = true;
    else if (arg == "--execute") execute = true;
    else if (arg == "--backend") backend = next();
    else if (arg == "--perf") perf = true;
    else if (arg == "--perf-out") {
      perfOut = next();
      perf = true;
    } else if (arg == "--attrib-out") {
      attribOut = next();
      perf = true;
    } else if (arg == "--compile-profile-out") compileProfileOut = next();
    else if (arg == "--threads") threads = static_cast<unsigned>(nextInt());
    else if (arg == "--dump-after") {
      dump.after.insert(next());
      dump.stream = &std::cerr;
    } else return usage();
  }
  if (perf) execute = true;  // counters measure the parallel run
  if (!exec::hasBackend(backend)) {
    std::cerr << "unknown backend '" << backend << "' (";
    bool first = true;
    for (const auto& n : exec::backendNames()) {
      if (!first) std::cerr << ", ";
      std::cerr << n;
      first = false;
    }
    std::cerr << ")\n";
    return 4;
  }
  if (!flow::hasPipelinePreset(pipeline)) {
    std::cerr << "unknown pipeline '" << pipeline
              << "' (try --list-pipelines)\n";
    return 4;
  }
  if (failOn != "error" && failOn != "warning") return usage();

  analysis::AnalysisOptions aopt;
  if (!analyzeList.empty()) {
    aopt.legality = aopt.races = aopt.bounds = aopt.reductions = false;
    std::string list = analyzeList;
    while (!list.empty()) {
      auto comma = list.find(',');
      std::string name = list.substr(0, comma);
      list = comma == std::string::npos ? "" : list.substr(comma + 1);
      if (name == "legality") aopt.legality = true;
      else if (name == "races") aopt.races = true;
      else if (name == "bounds") aopt.bounds = true;
      else if (name == "reductions") aopt.reductions = true;
      else {
        std::cerr << "unknown analysis '" << name
                  << "' (legality, races, bounds, reductions)\n";
        return 4;
      }
    }
  }
  // Tell the analyses which scheduling contract the pipeline ran under:
  // in relaxed mode a violated relaxable baseline edge is the licensed
  // reassociation (legality remark), and the reductions pass carries the
  // proof obligation for it.
  aopt.relaxedReductions =
      options.affine.reductions == poly::ReductionMode::Relaxed;

  if (!traceOut.empty()) obs::Tracer::global().setEnabled(true);
  // Metrics counters are always on; per-event latency timing (histograms)
  // only when someone will consume them.
  if (!metricsOut.empty() || obsSummary)
    obs::Registry::global().setTimingEnabled(true);

  if (emit != "c" && emit != "ir" && emit != "none") return usage();

  std::vector<std::string> kernelNames;
  if (kernel == "all") {
    for (const auto& k : kernels::allKernels()) kernelNames.push_back(k.name);
    emit = "none";  // 22 concatenated translation units help nobody
  } else {
    kernelNames.push_back(kernel);
  }

  // One pool for every measured kernel, created on first use so plain
  // compilations never spin up threads.
  std::unique_ptr<runtime::ThreadPool> pool;
  // One backend across the kernel loop: a `all`-suite native run reuses
  // the process's loaded kernels and reports cache hits per program.
  std::unique_ptr<exec::Backend> execBackend;
  obs::DlCheckReport dlreport;
  obs::AttribReport attribReport;
  // Per-kernel brackets around pipe.run: the counter deltas become one
  // profile row per kernel, telescoping to the process totals.
  obs::selfprof::Collector selfprofCollector;
  bool dynamicBroken = false;
  bool analysisFailed = false;
  ir::Program out;  // last kernel's result, for emission

  for (const auto& kernelName : kernelNames) {
    ir::Program program;
    try {
      program = kernels::buildKernel(kernelName);
    } catch (const ::polyast::Error&) {
      std::cerr << "unknown kernel '" << kernelName << "' (try --list)\n";
      return 4;
    }

    // Test-scale parameters, conditioned inputs (solver kernels need e.g.
    // diagonally dominant matrices). Shared by --execute, the analysis
    // witness search, and the DL predictions in the dlcheck artifact.
    std::map<std::string, std::int64_t> params;
    for (const auto& name : program.params)
      params[name] = name == "TSTEPS" ? 3 : 7;

    flow::PassContext ctx;
    ctx.dump = dump;
    if (verifyEachPass) {
      // Verification-scale parameters: the spatial extents must exceed the
      // tile size (two full tiles plus an odd remainder) and the time
      // extent the time-tile size, or the oracle only ever executes the
      // degenerate boundary-tile special case and proves nothing about the
      // steady state the tiled code spends its life in.
      std::map<std::string, std::int64_t> verifyParams;
      for (const auto& name : program.params)
        verifyParams[name] = name == "TSTEPS"
                                 ? options.ast.timeTileSize + 2
                                 : 2 * options.ast.tileSize + 5;
      ctx.verify.enabled = true;
      ctx.verify.continueAfterFailure = true;
      ctx.verify.makeContext = [verifyParams](const ir::Program& p) {
        return kernels::makeContext(p, verifyParams);
      };
    }

    std::shared_ptr<analysis::AnalysisSession> session;
    try {
      flow::PassPipeline pipe = flow::makePipeline(pipeline, options);
      if (analyze) {
        aopt.witnessParams = params;
        session = std::make_shared<analysis::AnalysisSession>(aopt);
        pipe = flow::withAnalysis(pipe, session);
      }
      if (!compileProfileOut.empty()) selfprofCollector.beginScop();
      out = pipe.run(program, ctx);
      if (!compileProfileOut.empty()) {
        std::int64_t stmts = 0;
        std::set<const ir::Loop*> loopSet;
        for (const auto& [id, loops] : program.enclosingLoops()) {
          ++stmts;
          for (const auto& l : loops) loopSet.insert(l.get());
        }
        selfprofCollector.endScop(kernelName, stmts,
                                  static_cast<std::int64_t>(loopSet.size()),
                                  ctx.report.totalMillis);
      }
      std::cerr << "pipeline '" << pipeline << "' on " << kernelName << " ("
                << ctx.report.passes.size() << " passes"
                << (verifyEachPass ? ", oracle-verified" : "") << "):\n"
                << ctx.report.summary();
      if (int broken = ctx.report.brokenPasses(); broken > 0) {
        std::cerr << "error: " << broken << " pass(es) broke semantics\n";
        dynamicBroken = true;
      }
    } catch (const flow::VerificationError& e) {
      std::cerr << "pipeline '" << pipeline << "' FAILED VERIFICATION on "
                << kernelName << "\n"
                << ctx.report.summary() << "error: " << e.what() << "\n";
      return 3;
    }

    if (session) {
      const auto& engine = session->engine();
      std::cerr << "analysis:\n" << engine.summary();
      if (!diagnosticsOut.empty() &&
          !analysis::writeDiagnosticsFile(diagnosticsOut, engine,
                                          program.name, pipeline)) {
        std::cerr << "error: cannot write " << diagnosticsOut << "\n";
        return 1;
      }
      std::size_t fatal =
          engine.errors() + (failOn == "warning" ? engine.warnings() : 0);
      if (fatal > 0) {
        std::cerr << "error: " << fatal << " analysis finding(s) at/above --"
                  << "fail-on=" << failOn << "\n";
        analysisFailed = true;
      }
    }

    if (execute) {
      // Run the transformed program on the selected execution backend and
      // check it against a plain sequential interpretation of the same
      // program. Doall and pipeline execution reorder whole statement
      // instances, so every cell's arithmetic is bit-identical; reduction
      // privatization reassociates the accumulated sums, so those runs get
      // a tolerance (Backend::toleranceFor).
      if (!pool) pool = std::make_unique<runtime::ThreadPool>(threads);
      if (!execBackend) execBackend = exec::makeBackend(backend);
      exec::Context seq = kernels::makeContext(out, params);
      exec::Context par = kernels::makeContext(out, params);
      obs::PerfAggregate agg;
      // Construct-level attribution rides along with --perf: the profiler
      // is installed across verify() — the sequential oracle runs hookless
      // (it never dispatches constructs), and the backend run brackets
      // itself with beginRun/endRun on its driving thread.
      std::unique_ptr<obs::ConstructProfiler> cprof;
      if (perf) {
        cprof = std::make_unique<obs::ConstructProfiler>();
        cprof->install();
      }
      exec::ParallelRunReport rep;
      exec::VerifyResult check = execBackend->verify(
          out, par, seq, *pool, &rep, perf ? &agg : nullptr);
      if (cprof) cprof->uninstall();
      std::cerr << rep.summary() << "\n"
                << "parallel vs sequential max abs diff: "
                << check.maxAbsDiff << " on " << pool->threadCount()
                << " threads (tolerance " << check.tolerance << ")\n";
      if (!check.passed()) {
        std::cerr << "error: parallel execution diverged\n";
        dynamicBroken = true;
      }

      if (perf) {
        agg.recordTo(obs::Registry::global());
        dl::ProgramPrediction pred = dl::predictProgram(out, params);
        obs::DlCheckKernel entry;
        entry.kernel = kernelName;
        entry.pipeline = pipeline;
        entry.backend = rep.backend;
        entry.reductions = aopt.relaxedReductions ? "relaxed" : "strict";
        // Effective, not requested: a scalar retry after a rejected
        // vector TU (or an interp degradation) reports "off".
        auto* native = dynamic_cast<exec::NativeBackend*>(execBackend.get());
        entry.simd = native && native->usedSimd() ? "on" : "off";
        entry.predictedLines = pred.predictedLines;
        entry.predictedCost = pred.predictedCost;
        entry.nests = static_cast<int>(pred.nests.size());
        entry.measured = agg.totals();
        entry.threadsMeasured = agg.threadsMeasured();
        entry.threadsDegraded = agg.threadsDegraded();
        std::cerr << "perf " << kernelName << ": wall_ns="
                  << entry.measured.wallNs;
        for (const auto& [cname, v] : entry.measured.counters)
          std::cerr << " " << cname << "=" << v;
        if (entry.threadsDegraded > 0)
          std::cerr << " (degraded: " << entry.measured.degradedReason << ")";
        std::cerr << " | predicted lines=" << entry.predictedLines << "\n";
        dlreport.kernels.push_back(std::move(entry));

        // Construct-level attribution: pair the profiler's measured rows
        // with the DL model's per-nest predictions. A nest belongs to the
        // construct whose iterator chain prefixes the nest's chain (the
        // construct's marked loop encloses the nest); sequential nests
        // match no construct and stay in the residual.
        obs::AttribKernel ak;
        ak.kernel = kernelName;
        ak.pipeline = pipeline;
        ak.backend = cprof->backend().empty() ? rep.backend
                                              : cprof->backend();
        ak.total = cprof->total();
        ak.residual = cprof->residual();
        std::map<std::int64_t, std::vector<std::string>> chains;
        for (const auto& c : ir::collectParallelConstructs(out))
          chains[c.id] = c.chain;
        for (const auto& row : cprof->rows()) {
          obs::AttribConstruct ac;
          ac.id = row.id;
          ac.kind = row.kind;
          ac.iter = row.iter;
          ac.enters = row.enters;
          ac.measured = row.measured;
          const std::vector<std::string>& chain = chains[row.id];
          for (std::size_t ci = 0; ci < chain.size(); ++ci)
            ac.nest += (ci ? "." : "") + chain[ci];
          for (const auto& n : pred.nests) {
            if (n.iters.size() < chain.size()) continue;
            if (!std::equal(chain.begin(), chain.end(), n.iters.begin()))
              continue;
            ac.predictedLines += n.predictedLines;
            ac.predictedCost += n.memCostPerIter * n.totalIterations;
            ac.predictedIters += n.totalIterations;
            ++ac.predictedNests;
          }
          std::cerr << "attrib " << kernelName << "@" << ak.backend << " ["
                    << ac.id << "] " << ac.kind << ":" << ac.nest
                    << " enters=" << ac.enters << " wall_ns="
                    << ac.measured.wallNs;
          for (const auto& [cname, v] : ac.measured.counters)
            std::cerr << " " << cname << "=" << v;
          std::cerr << " | predicted cost=" << ac.predictedCost << "\n";
          ak.constructs.push_back(std::move(ac));
        }
        attribReport.kernels.push_back(std::move(ak));
      }
    }
  }

  if (pool) {
    dlreport.threads = static_cast<int>(pool->threadCount());
    attribReport.threads = static_cast<int>(pool->threadCount());
  }

  try {
    if (perf && !perfOut.empty()) obs::writeDlCheckFile(perfOut, dlreport);
    if (perf && !attribOut.empty())
      obs::writeAttribFile(attribOut, attribReport);
    if (!compileProfileOut.empty())
      obs::selfprof::writeCompileProfileFile(compileProfileOut,
                                             selfprofCollector.finish(pipeline));
    if (!traceOut.empty())
      obs::writeChromeTraceFile(traceOut, obs::Tracer::global());
    if (!metricsOut.empty()) {
      // Mirror the self-profiling totals as selfprof.* counters so one
      // metrics artifact carries them next to the flow.* pass metrics.
      obs::selfprof::mirrorToRegistry(obs::Registry::global());
      obs::writeMetricsFile(metricsOut, obs::Registry::global().snapshot());
    }
  } catch (const ::polyast::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (obsSummary)
    std::cerr << obs::metricsSummary(obs::Registry::global().snapshot());

  if (emit == "ir") {
    std::cout << ir::printProgram(out);
  } else if (emit == "c") {
    ir::CEmitOptions copt;
    copt.openmp = openmp;
    std::cout << ir::emitC(out, copt);
  }
  // Dynamic breaks outrank static findings: the oracle caught an actual
  // wrong answer, not just a possible one.
  if (dynamicBroken) return 3;
  if (analysisFailed) return 2;
  return 0;
}
