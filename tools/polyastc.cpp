// polyastc — the source-to-source compiler driver.
//
// Usage:
//   polyastc --list
//   polyastc --list-pipelines
//   polyastc <kernel> [--pipeline NAME | --flow polyast|pocc|pocc-maxfuse|none]
//            [--emit c|ir] [--tile N] [--time-tile N]
//            [--no-tiling] [--no-regtile] [--no-openmp]
//            [--verify-each-pass] [--dump-after PASS|all]
//
// Flags also accept the --flag=value form. --flow is kept for
// compatibility and maps onto the pipeline presets (polyast, pocc,
// pocc-maxfuse, identity); --pipeline selects any registered preset,
// including the ablation variants (see --list-pipelines).
//
// --verify-each-pass runs the interpreter oracle after every pass on
// test-scale parameters and attributes any semantic break to the pass
// that introduced it; the per-pass report (timings, counters, oracle
// verdicts) is printed to stderr.
//
// Examples:
//   polyastc 2mm --pipeline polyast --emit c > 2mm_opt.c && cc -O3 2mm_opt.c
//   polyastc gemm --pipeline pocc-vect --emit ir
//   polyastc seidel-2d --pipeline polyast --verify-each-pass --dump-after all
#include <cstring>
#include <iostream>
#include <string>

#include "flow/presets.hpp"
#include "ir/cemit.hpp"
#include "kernels/polybench.hpp"
#include "support/error.hpp"

using namespace polyast;

namespace {

int usage() {
  std::cerr
      << "usage: polyastc <kernel>|--list|--list-pipelines\n"
         "                [--pipeline NAME] [--flow polyast|pocc|"
         "pocc-maxfuse|none]\n"
         "                [--emit c|ir] [--tile N] [--time-tile N]\n"
         "                [--no-tiling] [--no-regtile] [--no-openmp]\n"
         "                [--verify-each-pass] [--dump-after PASS|all]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string kernel = argv[1];
  if (kernel == "--list") {
    for (const auto& k : kernels::allKernels())
      std::cout << k.name << "\t" << k.description << "\n";
    return 0;
  }
  if (kernel == "--list-pipelines") {
    for (const auto& name : flow::pipelinePresets()) std::cout << name << "\n";
    return 0;
  }

  std::string pipeline = "polyast";
  std::string emit = "c";
  flow::PipelineOptions options;
  flow::PassContext ctx;
  bool openmp = true;
  bool verifyEachPass = false;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both "--flag value" and "--flag=value".
    std::string inlineValue;
    bool hasInline = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      inlineValue = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      hasInline = true;
    }
    auto next = [&]() -> std::string {
      if (hasInline) return inlineValue;
      if (i + 1 >= argc) {
        usage();
        exit(2);
      }
      return argv[++i];
    };
    auto nextInt = [&]() -> std::int64_t {
      std::string v = next();
      try {
        return std::stoll(v);
      } catch (const std::exception&) {
        std::cerr << "expected a number for " << arg << ", got '" << v
                  << "'\n";
        exit(2);
      }
    };
    if (arg == "--pipeline") pipeline = next();
    else if (arg == "--flow") {
      std::string flowName = next();
      if (flowName == "polyast") pipeline = "polyast";
      else if (flowName == "pocc") pipeline = "pocc";
      else if (flowName == "pocc-maxfuse") pipeline = "pocc-maxfuse";
      else if (flowName == "none") pipeline = "identity";
      else return usage();
    } else if (arg == "--emit") emit = next();
    else if (arg == "--tile") options.ast.tileSize = nextInt();
    else if (arg == "--time-tile") options.ast.timeTileSize = nextInt();
    else if (arg == "--no-tiling") options.enableTiling = false;
    else if (arg == "--no-regtile") options.enableRegisterTiling = false;
    else if (arg == "--no-openmp") openmp = false;
    else if (arg == "--verify-each-pass") verifyEachPass = true;
    else if (arg == "--dump-after") {
      ctx.dump.after.insert(next());
      ctx.dump.stream = &std::cerr;
    } else return usage();
  }
  if (!flow::hasPipelinePreset(pipeline)) {
    std::cerr << "unknown pipeline '" << pipeline
              << "' (try --list-pipelines)\n";
    return 2;
  }

  ir::Program program;
  try {
    program = kernels::buildKernel(kernel);
  } catch (const ::polyast::Error&) {
    std::cerr << "unknown kernel '" << kernel << "' (try --list)\n";
    return 1;
  }

  if (verifyEachPass) {
    ctx.verify.enabled = true;
    // Test-scale parameters, conditioned inputs (solver kernels need
    // e.g. diagonally dominant matrices).
    std::map<std::string, std::int64_t> params;
    for (const auto& name : program.params)
      params[name] = name == "TSTEPS" ? 3 : 7;
    ctx.verify.makeContext = [params](const ir::Program& p) {
      return kernels::makeContext(p, params);
    };
  }

  ir::Program out;
  try {
    flow::PassPipeline pipe = flow::makePipeline(pipeline, options);
    out = pipe.run(program, ctx);
    std::cerr << "pipeline '" << pipeline << "' (" << ctx.report.passes.size()
              << " passes" << (verifyEachPass ? ", oracle-verified" : "")
              << "):\n"
              << ctx.report.summary();
  } catch (const flow::VerificationError& e) {
    std::cerr << "pipeline '" << pipeline << "' FAILED VERIFICATION\n"
              << ctx.report.summary() << "error: " << e.what() << "\n";
    return 1;
  }

  if (emit == "ir") {
    std::cout << ir::printProgram(out);
  } else if (emit == "c") {
    ir::CEmitOptions copt;
    copt.openmp = openmp;
    std::cout << ir::emitC(out, copt);
  } else {
    return usage();
  }
  return 0;
}
